// Quickstart: define a schema with classic DDL, let the advisor derive a
// BDCC design (Algorithm 2), build the clustered tables (Algorithm 1), and
// run a query that benefits from co-clustering.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "advisor/advisor.h"
#include "advisor/report.h"
#include "catalog/ddl_parser.h"
#include "common/rng.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "opt/logical_plan.h"
#include "opt/planner.h"
#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

using namespace bdcc;  // NOLINT

int main() {
  // 1. A TPC-H database at a small scale factor, physically designed three
  //    ways: Plain (no indexing), PK (primary-key order), and BDCC (the
  //    advisor's co-clustered design from the paper's DDL hints).
  tpch::TpchDbOptions options;
  options.scale_factor = 0.01;
  auto db = tpch::TpchDb::Create(options).ValueOrDie();

  // 2. What did the advisor decide? (The paper's Section IV tables.)
  std::printf("=== Dimensions chosen by Algorithm 2 ===\n%s\n",
              advisor::RenderDimensionTable(db->design()).c_str());
  std::printf("=== Dimension uses and masks ===\n%s\n",
              advisor::RenderDimensionUseTable(
                  db->design(), interleave::Policy::kRoundRobinPerUse)
                  .c_str());

  // 3. Run TPC-H Q3 against all three designs and compare.
  for (opt::Scheme scheme :
       {opt::Scheme::kPlain, opt::Scheme::kPk, opt::Scheme::kBdcc}) {
    exec::ExecContext exec_ctx(db->pool(scheme));
    std::vector<std::string> notes;
    tpch::QueryContext ctx;
    ctx.db = &db->db(scheme);
    ctx.exec = &exec_ctx;
    ctx.notes = &notes;
    ctx.scale_factor = options.scale_factor;
    auto result = tpch::RunTpchQuery(3, ctx).ValueOrDie();
    std::printf("Q3 on %-5s: %llu rows, peak operator memory %llu KB\n",
                opt::SchemeName(scheme),
                static_cast<unsigned long long>(result.num_rows),
                static_cast<unsigned long long>(
                    exec_ctx.memory()->peak_bytes() / 1024));
    for (const std::string& n : notes) {
      std::printf("    plan: %s\n", n.c_str());
    }
  }
  std::printf(
      "\nThe BDCC plan pushes the date selection into both ORDERS and\n"
      "LINEITEM scatter scans (co-clustering) and sandwiches the joins —\n"
      "same answers, less data touched, less memory.\n");
  return 0;
}
