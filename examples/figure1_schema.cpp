// The paper's Figure 1, end to end: three dimensions (geography D1, year
// D2, range-binned D3), fact tables A (D1,D2), C (D1,D3), and B, which is
// FK-connected to both and therefore co-clustered with each — plus the
// scatter scan retrieving A in the orders (D1), (D2), (D1,D2), (D2,D1).
//
//   $ ./build/examples/figure1_schema
#include <cstdio>

#include "bdcc/bdcc_table.h"
#include "bdcc/binning.h"
#include "bdcc/scatter_scan.h"
#include "catalog/catalog.h"
#include "common/bits.h"
#include <map>

#include "common/rng.h"

using namespace bdcc;  // NOLINT

namespace {

class Resolver : public TableResolver {
 public:
  Resolver(const std::map<std::string, Table>* t, const catalog::Catalog* c)
      : t_(t), c_(c) {}
  Result<const Table*> GetTable(const std::string& name) const override {
    auto it = t_->find(name);
    if (it == t_->end()) return Status::NotFound(name);
    return &it->second;
  }
  Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const override {
    return c_->GetForeignKey(id);
  }

 private:
  const std::map<std::string, Table>* t_;
  const catalog::Catalog* c_;
};

}  // namespace

int main() {
  std::map<std::string, Table> tables;
  catalog::Catalog cat;
  Rng rng(1);

  // Dimension D1: four continents. D2: four years. (Hosted by tiny tables.)
  {
    Table d1("DIM1");
    Column k(TypeId::kInt32), name(TypeId::kString);
    const char* continents[] = {"Africa", "America", "Asia", "Europe"};
    for (int i = 0; i < 4; ++i) {
      k.AppendInt32(i);
      name.AppendString(continents[i]);
    }
    d1.AddColumn("d1_key", std::move(k)).AbortIfNotOK();
    d1.AddColumn("continent", std::move(name)).AbortIfNotOK();
    tables.emplace("DIM1", std::move(d1));

    Table d2("DIM2");
    Column k2(TypeId::kInt32), year(TypeId::kInt32);
    for (int i = 0; i < 4; ++i) {
      k2.AppendInt32(i);
      year.AppendInt32(1997 + i);
    }
    d2.AddColumn("d2_key", std::move(k2)).AbortIfNotOK();
    d2.AddColumn("year", std::move(year)).AbortIfNotOK();
    tables.emplace("DIM2", std::move(d2));
  }
  // Fact table A references both dimensions.
  {
    Table a("A");
    Column key(TypeId::kInt32), f1(TypeId::kInt32), f2(TypeId::kInt32);
    for (int i = 0; i < 64; ++i) {
      key.AppendInt32(i);
      f1.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 3)));
      f2.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 3)));
    }
    a.AddColumn("a_key", std::move(key)).AbortIfNotOK();
    a.AddColumn("a_d1", std::move(f1)).AbortIfNotOK();
    a.AddColumn("a_d2", std::move(f2)).AbortIfNotOK();
    tables.emplace("A", std::move(a));
  }

  cat.AddTable({"DIM1",
                {{"d1_key", TypeId::kInt32}, {"continent", TypeId::kString}},
                {"d1_key"}})
      .AbortIfNotOK();
  cat.AddTable({"DIM2",
                {{"d2_key", TypeId::kInt32}, {"year", TypeId::kInt32}},
                {"d2_key"}})
      .AbortIfNotOK();
  cat.AddTable({"A",
                {{"a_key", TypeId::kInt32},
                 {"a_d1", TypeId::kInt32},
                 {"a_d2", TypeId::kInt32}},
                {"a_key"}})
      .AbortIfNotOK();
  cat.AddForeignKey({"FK_A_D1", "A", {"a_d1"}, "DIM1", {"d1_key"}})
      .AbortIfNotOK();
  cat.AddForeignKey({"FK_A_D2", "A", {"a_d2"}, "DIM2", {"d2_key"}})
      .AbortIfNotOK();

  // Dimensions and uses (Definitions 1-3), round-robin interleaved into a
  // 4-bit key exactly like the figure (D1 bits red, D2 bits blue).
  auto d1 = std::make_shared<const Dimension>(
      binning::CreateRangeDimension("D1", "DIM1", "d1_key", 0, 3, 2)
          .ValueOrDie());
  auto d2 = std::make_shared<const Dimension>(
      binning::CreateRangeDimension("D2", "DIM2", "d2_key", 0, 3, 2)
          .ValueOrDie());
  std::vector<DimensionUse> uses(2);
  uses[0].dimension = d1;
  uses[0].path.fk_ids = {"FK_A_D1"};
  uses[1].dimension = d2;
  uses[1].path.fk_ids = {"FK_A_D2"};

  Resolver resolver(&tables, &cat);
  BdccBuildOptions build;
  build.tuning.efficient_access_bytes = 16;  // keep full granularity
  BdccTable a = BuildBdccTable(tables.at("A").Clone(), uses, resolver, build)
                    .ValueOrDie();

  std::printf("BDCC table A: %d bits, masks D1=%s D2=%s\n", a.full_bits(),
              bits::FormatMask(a.uses()[0].mask, 4).c_str(),
              bits::FormatMask(a.uses()[1].mask, 4).c_str());
  std::printf("count table: %zu groups at %d bits\n\n",
              a.count_table().num_groups(), a.count_bits());

  // The BDCCscan orders of the paper: (D1), (D2), (D1,D2), (D2,D1).
  struct OrderCase {
    const char* label;
    std::vector<size_t> order;
  };
  for (const OrderCase& oc :
       {OrderCase{"(D1)", {0}}, OrderCase{"(D2)", {1}},
        OrderCase{"(D1,D2)", {0, 1}}, OrderCase{"(D2,D1)", {1, 0}}}) {
    auto ranges = PlanScatterScan(a, oc.order).ValueOrDie();
    std::printf("scatter scan %-8s:", oc.label);
    for (const GroupRange& r : ranges) {
      std::printf(" [D1=%llu D2=%llu x%llu]",
                  static_cast<unsigned long long>(GroupValueOfUse(a, 0, r.key)),
                  static_cast<unsigned long long>(GroupValueOfUse(a, 1, r.key)),
                  static_cast<unsigned long long>(r.row_end - r.row_begin));
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote how the same stored table serves every major-minor order —\n"
      "the offsets all come from the count table (no data movement).\n");
  return 0;
}
