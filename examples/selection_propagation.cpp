// Demonstrates the paper's three claimed benefits on TPC-H Q5:
//  (i)  selection pushdown    — the region filter prunes scatter-scan
//                               groups of the NATION-clustered tables,
//  (ii) selection propagation — the pruning reaches SUPPLIER and LINEITEM
//                               through the shared D_NATION dimension,
//  (iii) join acceleration    — co-clustered joins run as sandwich joins.
//
//   $ ./build/examples/selection_propagation
#include <cstdio>

#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

using namespace bdcc;  // NOLINT

int main() {
  tpch::TpchDbOptions options;
  options.scale_factor = 0.02;
  auto db = tpch::TpchDb::Create(options).ValueOrDie();

  struct Config {
    const char* label;
    bool pruning;
    bool sandwich;
  };
  for (const Config& cfg : {Config{"no BDCC features", false, false},
                            Config{"+ pushdown/propagation", true, false},
                            Config{"+ sandwich operators", true, true}}) {
    exec::ExecContext exec_ctx(db->pool(opt::Scheme::kBdcc));
    db->ResetIo();
    std::vector<std::string> notes;
    tpch::QueryContext ctx;
    ctx.db = &db->bdcc();
    ctx.exec = &exec_ctx;
    ctx.notes = &notes;
    ctx.scale_factor = options.scale_factor;
    ctx.planner.enable_group_pruning = cfg.pruning;
    ctx.planner.enable_sandwich = cfg.sandwich;
    auto result = tpch::RunTpchQuery(5, ctx).ValueOrDie();
    const exec::ExecStats& stats = *exec_ctx.stats();
    std::printf(
        "%-26s rows=%llu scanned=%8llu groups pruned=%5llu "
        "sandwich parts=%4llu peak-mem=%6lluKB sim-I/O=%.2fms\n",
        cfg.label, static_cast<unsigned long long>(result.num_rows),
        static_cast<unsigned long long>(stats.rows_scanned),
        static_cast<unsigned long long>(stats.groups_pruned),
        static_cast<unsigned long long>(stats.sandwich_partitions),
        static_cast<unsigned long long>(exec_ctx.memory()->peak_bytes() /
                                        1024),
        db->device(opt::Scheme::kBdcc)->stats().simulated_seconds * 1e3);
    if (cfg.pruning && !cfg.sandwich) {
      for (const std::string& n : notes) {
        std::printf("    %s\n", n.c_str());
      }
    }
  }
  std::printf(
      "\nSame result rows every time; the ASIA filter on REGION propagates\n"
      "to SUPPLIER and LINEITEM because they share D_NATION bits, and the\n"
      "co-clustered joins drop their memory to one partition at a time.\n");
  return 0;
}
