// Drive Algorithm 2 on a custom (non-TPC-H) snowflake schema written in
// plain DDL, showing that the advisor generalizes beyond the paper's
// evaluation schema: dimensions are discovered from CREATE INDEX hints,
// uses are inherited over declared FKs, and each table self-tunes its
// count-table granularity per Algorithm 1.
//
//   $ ./build/examples/design_advisor
#include <cstdio>

#include "advisor/advisor.h"
#include "advisor/report.h"
#include "catalog/ddl_parser.h"
#include "common/rng.h"

using namespace bdcc;  // NOLINT

namespace {

constexpr const char* kDdl = R"ddl(
CREATE TABLE STORE (
  store_id   INT NOT NULL,
  region     INT NOT NULL,
  opened     DATE NOT NULL,
  PRIMARY KEY (store_id)
);
CREATE TABLE PRODUCT (
  product_id INT NOT NULL,
  category   INT NOT NULL,
  PRIMARY KEY (product_id)
);
CREATE TABLE SALE (
  sale_id    INT NOT NULL,
  store_id   INT NOT NULL,
  product_id INT NOT NULL,
  sale_date  DATE NOT NULL,
  amount     DECIMAL(15,2) NOT NULL,
  PRIMARY KEY (sale_id),
  FOREIGN KEY FK_SALE_STORE (store_id) REFERENCES STORE (store_id),
  FOREIGN KEY FK_SALE_PRODUCT (product_id) REFERENCES PRODUCT (product_id)
);
CREATE TABLE RETURNED (
  return_id  INT NOT NULL,
  sale_id    INT NOT NULL,
  PRIMARY KEY (return_id),
  FOREIGN KEY FK_RET_SALE (sale_id) REFERENCES SALE (sale_id)
);

CREATE INDEX region_idx ON STORE (region);
CREATE INDEX category_idx ON PRODUCT (category);
CREATE INDEX saledate_idx ON SALE (sale_date);
CREATE INDEX sale_store_fk_idx ON SALE (store_id);
CREATE INDEX sale_product_fk_idx ON SALE (product_id);
CREATE INDEX ret_sale_fk_idx ON RETURNED (sale_id);
)ddl";

class Resolver : public TableResolver {
 public:
  Resolver(const std::map<std::string, Table>* t, const catalog::Catalog* c)
      : t_(t), c_(c) {}
  Result<const Table*> GetTable(const std::string& name) const override {
    auto it = t_->find(name);
    if (it == t_->end()) return Status::NotFound(name);
    return &it->second;
  }
  Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const override {
    return c_->GetForeignKey(id);
  }

 private:
  const std::map<std::string, Table>* t_;
  const catalog::Catalog* c_;
};

}  // namespace

int main() {
  catalog::Catalog cat;
  catalog::ParseDdl(kDdl, &cat).AbortIfNotOK();

  // Synthetic data for the schema.
  std::map<std::string, Table> tables;
  Rng rng(7);
  {
    Table store("STORE");
    Column id(TypeId::kInt32), region(TypeId::kInt32), opened(TypeId::kDate);
    for (int i = 0; i < 200; ++i) {
      id.AppendInt32(i);
      region.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 7)));
      opened.AppendDate(ParseDate("2010-01-01") +
                        static_cast<int32_t>(rng.Uniform(0, 3650)));
    }
    store.AddColumn("store_id", std::move(id)).AbortIfNotOK();
    store.AddColumn("region", std::move(region)).AbortIfNotOK();
    store.AddColumn("opened", std::move(opened)).AbortIfNotOK();
    tables.emplace("STORE", std::move(store));
  }
  {
    Table product("PRODUCT");
    Column id(TypeId::kInt32), cat_col(TypeId::kInt32);
    for (int i = 0; i < 5000; ++i) {
      id.AppendInt32(i);
      cat_col.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 99)));
    }
    product.AddColumn("product_id", std::move(id)).AbortIfNotOK();
    product.AddColumn("category", std::move(cat_col)).AbortIfNotOK();
    tables.emplace("PRODUCT", std::move(product));
  }
  {
    Table sale("SALE");
    Column id(TypeId::kInt32), store(TypeId::kInt32), product(TypeId::kInt32),
        date(TypeId::kDate), amount(TypeId::kFloat64);
    for (int i = 0; i < 100000; ++i) {
      id.AppendInt32(i);
      store.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 199)));
      product.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 4999)));
      date.AppendDate(ParseDate("2018-01-01") +
                      static_cast<int32_t>(rng.Uniform(0, 2000)));
      amount.AppendFloat64(rng.NextDouble() * 500);
    }
    sale.AddColumn("sale_id", std::move(id)).AbortIfNotOK();
    sale.AddColumn("store_id", std::move(store)).AbortIfNotOK();
    sale.AddColumn("product_id", std::move(product)).AbortIfNotOK();
    sale.AddColumn("sale_date", std::move(date)).AbortIfNotOK();
    sale.AddColumn("amount", std::move(amount)).AbortIfNotOK();
    tables.emplace("SALE", std::move(sale));
  }
  {
    Table ret("RETURNED");
    Column id(TypeId::kInt32), sale(TypeId::kInt32);
    for (int i = 0; i < 8000; ++i) {
      id.AppendInt32(i);
      sale.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 99999)));
    }
    ret.AddColumn("return_id", std::move(id)).AbortIfNotOK();
    ret.AddColumn("sale_id", std::move(sale)).AbortIfNotOK();
    tables.emplace("RETURNED", std::move(ret));
  }

  Resolver resolver(&tables, &cat);
  advisor::AdvisorOptions options;
  auto design = advisor::DesignSchema(cat, resolver, options).ValueOrDie();

  std::printf("=== Dimensions (from index hints) ===\n%s\n",
              advisor::RenderDimensionTable(design).c_str());
  std::printf("=== Dimension uses (inherited over FKs) ===\n%s\n",
              advisor::RenderDimensionUseTable(
                  design, interleave::Policy::kRoundRobinPerUse)
                  .c_str());

  std::map<std::string, Table> sources;
  for (const auto& [name, t] : tables) sources.emplace(name, t.Clone());
  auto built = advisor::BuildDesignedTables(design, std::move(sources),
                                            resolver, options)
                   .ValueOrDie();
  std::printf("=== Built tables (Algorithm 1 self-tuned) ===\n%s",
              advisor::RenderBuiltTables(built).c_str());
  std::printf(
      "\nRETURNED ends up co-clustered with SALE on region, category AND\n"
      "date — three dimensions it never declared itself, all inherited\n"
      "through FK_RET_SALE, exactly the paper's inductive rule.\n");
  return 0;
}
