#!/usr/bin/env python3
"""Warn-only benchmark regression check over well-formed inputs.

Compares the JSON lines emitted by the CI bench smoke run against the
committed perf-trajectory baselines (BENCH_pr5.json). Rows are matched on
their config keys (bench/mode/build_rows/threads, and any other non-metric
fields); for each matched row, every *throughput* metric (keys ending in
"_per_s") that dropped more than the threshold, and every *tail-latency*
metric (keys ending in "p99_ms") that rose more than the threshold, prints
a GitHub warning annotation. Regressions never fail the build: machine-to-machine variance
(the committed baselines may come from a different core count — see the
host_cpus field) makes a hard gate meaningless, but a printed warning makes
a real regression visible in the PR checks.

Broken *inputs* do fail the build, though: an unreadable file, a file with
zero valid benchmark rows, or a line that looks like JSON but does not
parse all exit non-zero. A silently-empty comparison reads as "no
regressions" in CI when it actually means "the smoke run produced garbage".

Rows whose host_cpus differs between baseline and smoke run are skipped
outright: a wall-clock comparison across machines with different core
counts is noise, not signal. The summary line reports how many rows were
skipped for that reason.

Usage: check_bench_regression.py <smoke.jsonl> <baseline.json> [threshold]
"""
import json
import sys

# Fields that describe the measurement rather than the configuration.
METRIC_PREFIXES = ("build_ms", "probe_ms", "wall_ms", "time_ms")
METRIC_SUFFIXES = ("_per_s", "_ms", "_kb", "_bytes")
METRIC_NAMES = ("qps",)
# host_cpus is handled by the explicit mismatch skip; the lifecycle
# counters (morsels_cancelled & co.) are emitted only when nonzero, so they
# must not take part in row matching or healthy baseline rows would never
# match a faulted smoke row and vice versa.
IGNORED_KEYS = (
    "host_cpus",
    "out_rows",
    "partitions",
    "morsels_cancelled",
    "budget_denials",
    "faults_injected",
    # Delta-leg counters (nonzero only when a plan scanned unmerged
    # appends) and the derived merge-restore ratio: informational, never
    # part of row identity.
    "delta_rows_scanned",
    "delta_chunks",
    "merges_completed",
    "restore_ratio",
    # Throughput-bench outcome counters: how many queries landed in each
    # terminal state varies run to run (shedding is timing-dependent), so
    # they can neither key a row nor be compared as a metric.
    "ok",
    "shed",
    "cancelled",
    "exhausted",
    "errors",
    "retries",
)


def is_metric(key):
    return (
        key.endswith(METRIC_SUFFIXES)
        or key.startswith(METRIC_PREFIXES)
        or key in METRIC_NAMES
    )


def config_key(row):
    items = []
    for k, v in sorted(row.items()):
        if is_metric(k) or k in IGNORED_KEYS:
            continue
        items.append((k, v))
    return tuple(items)


def load_rows(path):
    """Parse one JSON-lines file into {config_key: row}.

    Blank lines and non-JSON chatter (benchmark table output sharing the
    stream) are tolerated; a line that *starts* like JSON but fails to
    parse, an unreadable file, or a file with no benchmark rows at all is
    a fatal input error (exit 1) rather than a silent zero-row comparison.
    """
    rows = {}
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as e:
                    sys.exit(f"error: {path}:{lineno}: malformed JSON: {e}")
                if "bench" in row:
                    rows[config_key(row)] = row
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not rows:
        sys.exit(f"error: {path}: no benchmark JSON rows found")
    return rows


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    smoke = load_rows(sys.argv[1])
    baseline = load_rows(sys.argv[2])
    try:
        threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25
    except ValueError:
        sys.exit(f"error: threshold must be a number, got {sys.argv[3]!r}")

    matched = warned = skipped = 0
    for key, base_row in baseline.items():
        got = smoke.get(key)
        if got is None:
            skipped += 1  # baseline config absent from the smoke run
            continue
        if base_row.get("host_cpus") != got.get("host_cpus"):
            skipped += 1  # host_cpus mismatch: cross-machine noise
            continue
        matched += 1
        for metric, base_val in base_row.items():
            # Throughput (higher is better) warns on a drop; p99 tail
            # latency (lower is better) warns on a rise. Mean/p50 latency
            # is deliberately not gated — the tail is what the serving
            # layer's admission limits are supposed to protect.
            if metric.endswith("_per_s") or metric in METRIC_NAMES:
                direction = "dropped"
            elif metric.endswith("p99_ms"):
                direction = "rose"
            else:
                continue
            new_val = got.get(metric)
            if not isinstance(base_val, (int, float)) or not base_val:
                continue
            if not isinstance(new_val, (int, float)):
                continue
            delta = (
                1.0 - new_val / base_val
                if direction == "dropped"
                else new_val / base_val - 1.0
            )
            if delta > threshold:
                cfg = " ".join(f"{k}={v}" for k, v in key)
                print(
                    f"::warning title=bench regression::{cfg} {metric} "
                    f"{direction} {delta * 100:.0f}% "
                    f"({base_val:.3g} -> {new_val:.3g})"
                )
                warned += 1
    print(
        f"bench-regression: {matched} matched, {skipped} skipped, "
        f"{warned} warned (threshold {threshold * 100:.0f}%)"
    )
    return 0  # regressions warn-only by design; input errors exited above


if __name__ == "__main__":
    sys.exit(main())
