// Algorithm 2 (Semi-automatic Schema Design).
//
// Input: a catalog with declared foreign keys plus CREATE INDEX statements
// interpreted as BDCC hints. Output: the set of dimensions to create and,
// per table, the ordered list of dimension uses; then the BDCC tables are
// built at self-tuned granularity via Algorithm 1.
//
// Phases (paper):
//  (i)   Traverse the schema DAG from the leaves. For each table, walk its
//        index declarations: an index equal to a foreign key inherits all
//        dimension uses of the referenced table (FK id prepended to their
//        paths); any other index identifies a new dimension.
//  (ii)  Create each dimension with frequency-balanced binning over the
//        union of all tables that use it, capped at bits(D) <= max_bits.
//  (iii) BDCC-cluster every table with >= 1 use via Algorithm 1.
#ifndef BDCC_ADVISOR_ADVISOR_H_
#define BDCC_ADVISOR_ADVISOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bdcc/bdcc_table.h"
#include "bdcc/binning.h"
#include "bdcc/dimension_use.h"
#include "catalog/catalog.h"
#include "common/result.h"

namespace bdcc {
namespace advisor {

struct AdvisorOptions {
  /// Granularity cap (paper: bits(D) <= 13).
  int max_dimension_bits = 13;
  /// Headroom bits for open-ended key domains (single DATE-typed keys get
  /// one extra bit of bin-number space so future days keep fresh numbers).
  int date_headroom_bits = 1;
  /// Options forwarded to Algorithm 1 for phase (iii).
  BdccBuildOptions build;
};

/// A table's designed clustering: ordered dimension uses (masks assigned
/// when the table is built).
struct TableDesign {
  std::string table;
  std::vector<DimensionUse> uses;
};

/// Complete output of Algorithm 2 phases (i)+(ii).
struct SchemaDesign {
  std::vector<DimensionPtr> dimensions;
  std::vector<TableDesign> tables;  // topological (leaves first)

  const TableDesign* FindTable(const std::string& name) const;
  DimensionPtr FindDimension(const std::string& name) const;
};

/// \brief Derive the design (phases (i) and (ii); data is consulted only to
/// histogram dimension keys).
Result<SchemaDesign> DesignSchema(const catalog::Catalog& catalog,
                                  const TableResolver& resolver,
                                  const AdvisorOptions& options = {});

/// \brief Phase (iii): build all BDCC tables of a design. `tables` supplies
/// the source data by name and is consumed (sources are moved out).
Result<std::map<std::string, BdccTable>> BuildDesignedTables(
    const SchemaDesign& design, std::map<std::string, Table> tables,
    const TableResolver& resolver, const AdvisorOptions& options = {});

/// Derive a dimension name from an index hint: "date_idx" -> "D_DATE";
/// falls back to "D_<TABLE>".
std::string DimensionNameFromHint(const catalog::IndexHint& hint);

}  // namespace advisor
}  // namespace bdcc

#endif  // BDCC_ADVISOR_ADVISOR_H_
