#include "advisor/advisor.h"

#include <algorithm>
#include <cctype>

#include "advisor/dimension_builder.h"
#include "catalog/schema_graph.h"

namespace bdcc {
namespace advisor {

namespace {

// A dimension identified in phase (i), before its bins exist.
struct ProtoDimension {
  std::string name;
  std::string table;
  std::vector<std::string> key_columns;
};

// A use referencing a proto-dimension by index.
struct ProtoUse {
  size_t proto_index;
  DimensionPath path;
};

}  // namespace

std::string DimensionNameFromHint(const catalog::IndexHint& hint) {
  std::string base = hint.name;
  for (const char* suffix : {"_idx", "_index", "_IDX", "_INDEX"}) {
    size_t len = std::string(suffix).size();
    if (base.size() > len && base.compare(base.size() - len, len, suffix) == 0) {
      base = base.substr(0, base.size() - len);
      break;
    }
  }
  if (base.empty()) base = hint.table;
  std::transform(base.begin(), base.end(), base.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return "D_" + base;
}

const TableDesign* SchemaDesign::FindTable(const std::string& name) const {
  for (const TableDesign& t : tables) {
    if (t.table == name) return &t;
  }
  return nullptr;
}

DimensionPtr SchemaDesign::FindDimension(const std::string& name) const {
  for (const DimensionPtr& d : dimensions) {
    if (d->name() == name) return d;
  }
  return nullptr;
}

Result<SchemaDesign> DesignSchema(const catalog::Catalog& catalog,
                                  const TableResolver& resolver,
                                  const AdvisorOptions& options) {
  catalog::SchemaGraph graph(&catalog);
  BDCC_ASSIGN_OR_RETURN(std::vector<std::string> order,
                        graph.TopologicalFromLeaves());

  // ---- Phase (i): identify dimensions and dimension uses. ----
  std::vector<ProtoDimension> protos;
  std::map<std::string, std::vector<ProtoUse>> uses_by_table;

  auto find_or_add_proto = [&](const std::string& name,
                               const std::string& table,
                               const std::vector<std::string>& key) {
    for (size_t i = 0; i < protos.size(); ++i) {
      if (protos[i].table == table && protos[i].key_columns == key) return i;
    }
    protos.push_back(ProtoDimension{name, table, key});
    return protos.size() - 1;
  };

  for (const std::string& table : order) {
    std::vector<ProtoUse>& uses = uses_by_table[table];
    for (const catalog::IndexHint* hint : catalog.IndexesOn(table)) {
      const catalog::ForeignKey* fk = catalog.IndexMatchesForeignKey(*hint);
      if (fk != nullptr) {
        // Inherit the referenced table's uses, FK id prepended.
        for (const ProtoUse& inherited : uses_by_table[fk->to_table]) {
          ProtoUse u;
          u.proto_index = inherited.proto_index;
          u.path = inherited.path.Prepend(fk->id);
          // Same dimension over the same path would be a duplicate.
          bool dup = std::any_of(uses.begin(), uses.end(), [&](const ProtoUse& e) {
            return e.proto_index == u.proto_index && e.path == u.path;
          });
          if (!dup) uses.push_back(std::move(u));
        }
      } else {
        // A new dimension hosted by this table.
        size_t proto =
            find_or_add_proto(DimensionNameFromHint(*hint), table, hint->columns);
        ProtoUse u;
        u.proto_index = proto;
        bool dup = std::any_of(uses.begin(), uses.end(), [&](const ProtoUse& e) {
          return e.proto_index == u.proto_index && e.path == u.path;
        });
        if (!dup) uses.push_back(std::move(u));
      }
    }
  }

  // ---- Phase (ii): create the dimensions over their usage unions. ----
  SchemaDesign design;
  std::vector<DimensionPtr> dims(protos.size());
  for (size_t p = 0; p < protos.size(); ++p) {
    std::vector<UsageRef> usages;
    for (const auto& [table, uses] : uses_by_table) {
      for (const ProtoUse& u : uses) {
        if (u.proto_index == p) usages.push_back(UsageRef{table, u.path});
      }
    }
    binning::BinningOptions bin_opts;
    bin_opts.max_bits = options.max_dimension_bits;
    // Open-ended single-date keys get headroom (see DESIGN.md §4.7).
    BDCC_ASSIGN_OR_RETURN(const catalog::TableDef* host_def,
                          catalog.GetTable(protos[p].table));
    if (protos[p].key_columns.size() == 1) {
      BDCC_ASSIGN_OR_RETURN(TypeId t,
                            host_def->ColumnType(protos[p].key_columns[0]));
      if (t == TypeId::kDate) bin_opts.headroom_bits = options.date_headroom_bits;
    }
    BDCC_ASSIGN_OR_RETURN(
        DimensionPtr dim,
        BuildDimensionFromUsages(protos[p].name, protos[p].table,
                                 protos[p].key_columns, usages, resolver,
                                 bin_opts));
    dims[p] = dim;
    design.dimensions.push_back(dim);
  }

  // Emit per-table designs in topological order (tables with >= 1 use).
  for (const std::string& table : order) {
    const std::vector<ProtoUse>& uses = uses_by_table[table];
    if (uses.empty()) continue;
    TableDesign td;
    td.table = table;
    for (const ProtoUse& u : uses) {
      DimensionUse use;
      use.dimension = dims[u.proto_index];
      use.path = u.path;
      td.uses.push_back(std::move(use));
    }
    design.tables.push_back(std::move(td));
  }
  return design;
}

Result<std::map<std::string, BdccTable>> BuildDesignedTables(
    const SchemaDesign& design, std::map<std::string, Table> tables,
    const TableResolver& resolver, const AdvisorOptions& options) {
  std::map<std::string, BdccTable> out;
  for (const TableDesign& td : design.tables) {
    auto it = tables.find(td.table);
    if (it == tables.end()) {
      return Status::NotFound("no source data for designed table " + td.table);
    }
    BDCC_ASSIGN_OR_RETURN(
        BdccTable built,
        BuildBdccTable(std::move(it->second), td.uses, resolver,
                       options.build));
    out.emplace(td.table, std::move(built));
  }
  return out;
}

}  // namespace advisor
}  // namespace bdcc
