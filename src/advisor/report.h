// Renders the advisor's output in the paper's tabular notation
// (Section IV's dimension table and dimension-use/mask table).
#ifndef BDCC_ADVISOR_REPORT_H_
#define BDCC_ADVISOR_REPORT_H_

#include <map>
#include <string>

#include "advisor/advisor.h"
#include "bdcc/bdcc_table.h"

namespace bdcc {
namespace advisor {

/// "BDCC dimension D | bits(D) | table T(D) | key K(D)" rows.
std::string RenderDimensionTable(const SchemaDesign& design);

/// "BDCC Table | D(Ui) | P(Ui) | M(Ui)" rows with masks in the paper's
/// leading-zero-trimmed binary form, computed at full granularity under
/// `policy` (optionally reduced per table via `built` granularities).
std::string RenderDimensionUseTable(const SchemaDesign& design,
                                    interleave::Policy policy);

/// Same, but for built tables: masks at the count-table granularity chosen
/// by Algorithm 1, plus the self-tune decision per table.
std::string RenderBuiltTables(const std::map<std::string, BdccTable>& built);

/// Mask string in the paper's format (leading zeros trimmed).
std::string PaperMask(uint64_t mask, int width);

}  // namespace advisor
}  // namespace bdcc

#endif  // BDCC_ADVISOR_REPORT_H_
