// Algorithm 2 phase (ii): create a dimension from the distribution of its
// key across ALL tables that use it (tech report [4]'s union histogram).
#ifndef BDCC_ADVISOR_DIMENSION_BUILDER_H_
#define BDCC_ADVISOR_DIMENSION_BUILDER_H_

#include <string>
#include <vector>

#include "bdcc/bdcc_table.h"
#include "bdcc/binning.h"
#include "bdcc/dimension.h"
#include "bdcc/dimension_use.h"
#include "common/result.h"

namespace bdcc {
namespace advisor {

/// One usage site of a dimension being created: the using table plus the
/// path from it to the host.
struct UsageRef {
  std::string table;
  DimensionPath path;
};

/// \brief Histogram the dimension key over the union of all usage sites
/// (each usage contributes its joined row count to the key values it
/// reaches), then bin per `options`.
Result<DimensionPtr> BuildDimensionFromUsages(
    std::string name, const std::string& host_table,
    const std::vector<std::string>& key_columns,
    const std::vector<UsageRef>& usages, const TableResolver& resolver,
    const binning::BinningOptions& options);

}  // namespace advisor
}  // namespace bdcc

#endif  // BDCC_ADVISOR_DIMENSION_BUILDER_H_
