#include "advisor/report.h"

#include <cstdio>

#include "common/bits.h"

namespace bdcc {
namespace advisor {

std::string PaperMask(uint64_t mask, int width) {
  std::string full = bits::FormatMask(mask, width);
  size_t first = full.find('1');
  if (first == std::string::npos) return "0";
  return full.substr(first);
}

std::string RenderDimensionTable(const SchemaDesign& design) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-12s %8s  %-10s %s\n", "dimension D",
                "bits(D)", "table T(D)", "key K(D)");
  out += line;
  for (const DimensionPtr& d : design.dimensions) {
    std::string key;
    for (size_t i = 0; i < d->key_columns().size(); ++i) {
      if (i) key += ",";
      key += d->key_columns()[i];
    }
    std::snprintf(line, sizeof(line), "%-12s %8d  %-10s %s\n",
                  d->name().c_str(), d->bits(), d->table().c_str(),
                  key.c_str());
    out += line;
  }
  return out;
}

std::string RenderDimensionUseTable(const SchemaDesign& design,
                                    interleave::Policy policy) {
  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line), "%-10s %-12s %-28s %s\n", "BDCC Table",
                "D(Ui)", "P(Ui)", "M(Ui)");
  out += line;
  for (const TableDesign& td : design.tables) {
    std::vector<int> use_bits;
    for (const DimensionUse& u : td.uses) {
      use_bits.push_back(u.dimension->bits());
    }
    auto spec_result = interleave::BuildMasks(use_bits, policy);
    if (!spec_result.ok()) continue;
    const interleave::InterleaveSpec& spec = spec_result.value();
    for (size_t i = 0; i < td.uses.size(); ++i) {
      std::snprintf(line, sizeof(line), "%-10s %-12s %-28s %s\n",
                    i == 0 ? td.table.c_str() : "",
                    td.uses[i].dimension->name().c_str(),
                    td.uses[i].path.ToString().c_str(),
                    PaperMask(spec.masks[i], spec.total_bits).c_str());
      out += line;
    }
  }
  return out;
}

std::string RenderBuiltTables(const std::map<std::string, BdccTable>& built) {
  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line),
                "%-10s %6s %6s  %-18s %10s  %s\n", "table", "B", "b",
                "densest column", "bytes/row", "groups");
  out += line;
  for (const auto& [name, table] : built) {
    std::snprintf(line, sizeof(line), "%-10s %6d %6d  %-18s %10.1f  %zu\n",
                  name.c_str(), table.full_bits(), table.count_bits(),
                  table.decision().densest_column.c_str(),
                  table.decision().densest_bytes_per_row,
                  table.count_table().num_groups());
    out += line;
    for (size_t u = 0; u < table.uses().size(); ++u) {
      const DimensionUse& use = table.uses()[u];
      std::snprintf(line, sizeof(line), "    %-12s %-28s %s\n",
                    use.dimension->name().c_str(),
                    use.path.ToString().c_str(),
                    PaperMask(use.mask, table.full_bits()).c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace advisor
}  // namespace bdcc
