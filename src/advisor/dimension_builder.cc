#include "advisor/dimension_builder.h"

#include <algorithm>
#include <numeric>

namespace bdcc {
namespace advisor {

Result<DimensionPtr> BuildDimensionFromUsages(
    std::string name, const std::string& host_table,
    const std::vector<std::string>& key_columns,
    const std::vector<UsageRef>& usages, const TableResolver& resolver,
    const binning::BinningOptions& options) {
  BDCC_ASSIGN_OR_RETURN(const Table* host, resolver.GetTable(host_table));
  uint64_t host_rows = host->num_rows();
  if (host_rows == 0) {
    return Status::InvalidArgument("dimension host table " + host_table +
                                   " is empty");
  }

  // Usage counts per *host row*: seed each usage's propagation with row
  // ordinals so the result maps context rows to host rows.
  std::vector<uint64_t> counts(host_rows, 0);
  for (const UsageRef& usage : usages) {
    BDCC_ASSIGN_OR_RETURN(const Table* context, resolver.GetTable(usage.table));
    std::vector<uint64_t> ordinals(host_rows);
    std::iota(ordinals.begin(), ordinals.end(), 0);
    BDCC_ASSIGN_OR_RETURN(
        std::vector<uint64_t> host_row_of,
        PropagateThroughPath(*context, usage.path, host_table, resolver,
                             std::move(ordinals)));
    for (uint64_t hr : host_row_of) counts[hr] += 1;
  }

  // Distinct key values with aggregated frequencies, sorted by value.
  std::vector<int> key_cols;
  for (const std::string& k : key_columns) {
    BDCC_ASSIGN_OR_RETURN(int idx, host->ColumnIndex(k));
    key_cols.push_back(idx);
  }
  std::vector<uint32_t> order(host_rows);
  std::iota(order.begin(), order.end(), 0);
  auto key_of = [&](uint32_t row) {
    CompositeValue v;
    v.reserve(key_cols.size());
    for (int idx : key_cols) v.push_back(host->column(idx).GetValue(row));
    return v;
  };
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return CompareComposite(key_of(a), key_of(b)) < 0;
  });

  std::vector<binning::ValueFrequency> values;
  for (uint64_t i = 0; i < host_rows;) {
    CompositeValue v = key_of(order[i]);
    uint64_t freq = 0;
    uint64_t j = i;
    while (j < host_rows && CompareComposite(key_of(order[j]), v) == 0) {
      freq += counts[order[j]];
      ++j;
    }
    // Keys never referenced still deserve a bin (robustness for future
    // queries); weight them minimally.
    values.push_back(binning::ValueFrequency{std::move(v), freq + 1});
    i = j;
  }

  BDCC_ASSIGN_OR_RETURN(
      Dimension dim,
      binning::CreateDimension(std::move(name), host_table, key_columns,
                               values, options));
  return std::make_shared<const Dimension>(std::move(dim));
}

}  // namespace advisor
}  // namespace bdcc
