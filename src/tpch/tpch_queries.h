// The 22 TPC-H queries as logical plans (with multi-stage execution for the
// queries whose SQL has scalar subqueries: Q11, Q15, Q17, Q22).
#ifndef BDCC_TPCH_TPCH_QUERIES_H_
#define BDCC_TPCH_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "exec/operator.h"
#include "opt/planner.h"

namespace bdcc {
namespace tpch {

struct QueryContext {
  const opt::PhysicalDb* db = nullptr;
  opt::PlannerOptions planner;
  exec::ExecContext* exec = nullptr;
  /// Optional sink for planner notes (mechanism attribution).
  std::vector<std::string>* notes = nullptr;
  /// Needed by Q11 (its HAVING fraction is 0.0001/SF per the spec).
  double scale_factor = 0.01;
};

/// Compile and fully execute one logical plan under `ctx`.
Result<exec::Batch> RunPlan(const opt::NodePtr& plan, QueryContext& ctx);

/// Run TPC-H query `number` (1..22); returns the final result batch.
Result<exec::Batch> RunTpchQuery(int number, QueryContext& ctx);

/// Short description, e.g. "Q3 shipping priority".
const char* TpchQueryTitle(int number);

inline constexpr int kNumTpchQueries = 22;

}  // namespace tpch
}  // namespace bdcc

#endif  // BDCC_TPCH_TPCH_QUERIES_H_
