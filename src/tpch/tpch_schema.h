// TPC-H logical schema (DDL text) plus the paper's Section IV BDCC hints.
#ifndef BDCC_TPCH_TPCH_SCHEMA_H_
#define BDCC_TPCH_TPCH_SCHEMA_H_

#include "catalog/catalog.h"
#include "common/result.h"

namespace bdcc {
namespace tpch {

/// CREATE TABLE statements with primary keys and the named foreign keys
/// used in dimension paths (FK_N_R, FK_S_N, FK_C_N, FK_PS_P, FK_PS_S,
/// FK_O_C, FK_L_O, FK_L_P, FK_L_S, FK_L_PS).
const char* TpchTableDdl();

/// The paper's BDCC hints: date_idx, part_idx, nation_idx plus the foreign-
/// key reference indexes (o_custkey, s_nationkey, c_nationkey, l_orderkey,
/// l_suppkey, l_partkey, ps_partkey, ps_suppkey). Index declaration order
/// on LINEITEM (orderkey, suppkey, partkey) reproduces the published
/// dimension-use table's mask assignment.
const char* TpchHintDdl();

/// Parse the DDL into a catalog. `with_hints` adds the CREATE INDEX hints.
Result<catalog::Catalog> MakeTpchCatalog(bool with_hints = true);

}  // namespace tpch
}  // namespace bdcc

#endif  // BDCC_TPCH_TPCH_SCHEMA_H_
