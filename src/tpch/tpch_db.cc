#include "tpch/tpch_db.h"

#include <algorithm>
#include <numeric>

#include "storage/compression/codec.h"

namespace bdcc {
namespace tpch {

namespace {

// Resolver over a map of tables plus the catalog's FKs.
class MapResolver : public TableResolver {
 public:
  MapResolver(const std::map<std::string, Table>* tables,
              const catalog::Catalog* catalog)
      : tables_(tables), catalog_(catalog) {}

  Result<const Table*> GetTable(const std::string& name) const override {
    auto it = tables_->find(name);
    if (it == tables_->end()) return Status::NotFound("no table " + name);
    return &it->second;
  }
  Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const override {
    return catalog_->GetForeignKey(id);
  }

 private:
  const std::map<std::string, Table>* tables_;
  const catalog::Catalog* catalog_;
};

std::map<std::string, Table> CloneAll(const std::map<std::string, Table>& in) {
  std::map<std::string, Table> out;
  for (const auto& [name, table] : in) {
    out.emplace(name, table.Clone());
  }
  return out;
}

}  // namespace

class TpchDb::PhysicalDbImpl : public opt::PhysicalDb {
 public:
  PhysicalDbImpl(opt::Scheme scheme, const TpchDb* owner)
      : scheme_(scheme), owner_(owner) {}

  opt::Scheme scheme() const override { return scheme_; }
  const catalog::Catalog& schema_catalog() const override {
    return owner_->catalog_;
  }

  const Table* storage(const std::string& table) const override {
    switch (scheme_) {
      case opt::Scheme::kPlain: {
        auto it = owner_->plain_tables_.find(table);
        return it == owner_->plain_tables_.end() ? nullptr : &it->second;
      }
      case opt::Scheme::kPk: {
        auto it = owner_->pk_tables_.find(table);
        return it == owner_->pk_tables_.end() ? nullptr : &it->second;
      }
      case opt::Scheme::kBdcc: {
        auto it = owner_->bdcc_tables_.find(table);
        if (it != owner_->bdcc_tables_.end()) return &it->second.data();
        auto it2 = owner_->bdcc_extra_.find(table);
        return it2 == owner_->bdcc_extra_.end() ? nullptr : &it2->second;
      }
    }
    return nullptr;
  }

  const BdccTable* bdcc(const std::string& table) const override {
    if (scheme_ != opt::Scheme::kBdcc) return nullptr;
    auto it = owner_->bdcc_tables_.find(table);
    return it == owner_->bdcc_tables_.end() ? nullptr : &it->second;
  }

  std::string sorted_on(const std::string& table) const override {
    if (scheme_ != opt::Scheme::kPk) return "";
    auto def = owner_->catalog_.GetTable(table);
    if (!def.ok() || def.value()->primary_key.empty()) return "";
    return def.value()->primary_key[0];
  }

  bool unique_key(const std::string& table,
                  const std::string& column) const override {
    auto def = owner_->catalog_.GetTable(table);
    return def.ok() && def.value()->primary_key.size() == 1 &&
           def.value()->primary_key[0] == column;
  }

 private:
  opt::Scheme scheme_;
  const TpchDb* owner_;
};

Result<std::unique_ptr<TpchDb>> TpchDb::Create(const TpchDbOptions& options) {
  std::unique_ptr<TpchDb> db(new TpchDb());
  db->options_ = options;
  BDCC_ASSIGN_OR_RETURN(db->catalog_, MakeTpchCatalog(/*with_hints=*/true));

  DbgenOptions gen;
  gen.scale_factor = options.scale_factor;
  gen.seed = options.seed;
  using TableMap = std::map<std::string, Table>;
  BDCC_ASSIGN_OR_RETURN(TableMap base, GenerateTpch(gen));

  for (int s = 0; s < 3; ++s) {
    db->io_[s].device = std::make_unique<io::DeviceModel>(options.device);
    db->io_[s].pool = std::make_unique<io::BufferPool>(
        db->io_[s].device.get(), options.buffer_pool_bytes);
  }

  // ---- Plain: insertion order. ----
  if (options.build_plain) {
    db->plain_tables_ = CloneAll(base);
    for (auto& [name, table] : db->plain_tables_) {
      table.BuildZoneMaps(options.zone_rows);
      table.BuildEncodedLanes();
      if (options.attach_buffer_pools) {
        table.RegisterWithBufferPool(
            db->io_[static_cast<int>(opt::Scheme::kPlain)].pool.get());
      }
    }
  }

  // ---- PK: sorted on the primary key. ----
  if (options.build_pk) {
    db->pk_tables_ = CloneAll(base);
    for (auto& [name, table] : db->pk_tables_) {
      auto def_result = db->catalog_.GetTable(name);
      if (def_result.ok() && !def_result.value()->primary_key.empty()) {
        // dbgen emits rows in PK order already, but sort defensively so the
        // PK scheme's merge-join precondition never silently depends on
        // generator internals.
        const std::vector<std::string>& pk = def_result.value()->primary_key;
        std::vector<int> key_idx;
        for (const std::string& k : pk) {
          BDCC_ASSIGN_OR_RETURN(int idx, table.ColumnIndex(k));
          key_idx.push_back(idx);
        }
        std::vector<uint32_t> perm(table.num_rows());
        std::iota(perm.begin(), perm.end(), 0);
        std::stable_sort(perm.begin(), perm.end(),
                         [&](uint32_t a, uint32_t b) {
                           for (int idx : key_idx) {
                             const Column& c = table.column(idx);
                             Value va = c.GetValue(a), vb = c.GetValue(b);
                             int cmp = va.Compare(vb);
                             if (cmp != 0) return cmp < 0;
                           }
                           return false;
                         });
        table = table.ApplyPermutation(perm);
      }
      table.BuildZoneMaps(options.zone_rows);
      table.BuildEncodedLanes();
      if (options.attach_buffer_pools) {
        table.RegisterWithBufferPool(
            db->io_[static_cast<int>(opt::Scheme::kPk)].pool.get());
      }
    }
  }

  // ---- BDCC: Algorithm 2. ----
  if (options.build_bdcc) {
    MapResolver resolver(&base, &db->catalog_);
    advisor::AdvisorOptions adv = options.advisor;
    adv.build.zone_rows = options.zone_rows;
    BDCC_ASSIGN_OR_RETURN(db->design_,
                          advisor::DesignSchema(db->catalog_, resolver, adv));
    std::map<std::string, Table> sources = CloneAll(base);
    BDCC_ASSIGN_OR_RETURN(
        db->bdcc_tables_,
        advisor::BuildDesignedTables(db->design_, std::move(sources), resolver,
                                     adv));
    // Tables the design left unclustered stay plain.
    for (const auto& [name, table] : base) {
      if (db->bdcc_tables_.count(name) == 0) {
        Table clone = table.Clone();
        clone.BuildZoneMaps(options.zone_rows);
        clone.BuildEncodedLanes();
        db->bdcc_extra_.emplace(name, std::move(clone));
      }
    }
    if (options.attach_buffer_pools) {
      io::BufferPool* pool =
          db->io_[static_cast<int>(opt::Scheme::kBdcc)].pool.get();
      for (auto& [name, table] : db->bdcc_tables_) {
        table.mutable_data().RegisterWithBufferPool(pool);
      }
      for (auto& [name, table] : db->bdcc_extra_) {
        table.RegisterWithBufferPool(pool);
      }
    }
  }

  db->plain_db_ =
      std::make_unique<PhysicalDbImpl>(opt::Scheme::kPlain, db.get());
  db->pk_db_ = std::make_unique<PhysicalDbImpl>(opt::Scheme::kPk, db.get());
  db->bdcc_db_ =
      std::make_unique<PhysicalDbImpl>(opt::Scheme::kBdcc, db.get());
  return db;
}

TpchDb::~TpchDb() = default;

const opt::PhysicalDb& TpchDb::plain() const { return *plain_db_; }
const opt::PhysicalDb& TpchDb::pk() const { return *pk_db_; }
const opt::PhysicalDb& TpchDb::bdcc() const { return *bdcc_db_; }

const opt::PhysicalDb& TpchDb::db(opt::Scheme scheme) const {
  switch (scheme) {
    case opt::Scheme::kPlain:
      return *plain_db_;
    case opt::Scheme::kPk:
      return *pk_db_;
    case opt::Scheme::kBdcc:
      return *bdcc_db_;
  }
  return *plain_db_;
}

io::DeviceModel* TpchDb::device(opt::Scheme scheme) {
  return io_[static_cast<int>(scheme)].device.get();
}

io::BufferPool* TpchDb::pool(opt::Scheme scheme) {
  return io_[static_cast<int>(scheme)].pool.get();
}

void TpchDb::ResetIo() {
  for (int s = 0; s < 3; ++s) {
    if (io_[s].pool) {
      io_[s].pool->Clear();
      io_[s].pool->ResetStats();
    }
    if (io_[s].device) io_[s].device->ResetStats();
  }
}

uint64_t TpchDb::DiskBytes(opt::Scheme scheme) const {
  uint64_t total = 0;
  auto add_table = [&](const Table& t) { total += t.DiskBytes(); };
  switch (scheme) {
    case opt::Scheme::kPlain:
      for (const auto& [n, t] : plain_tables_) add_table(t);
      break;
    case opt::Scheme::kPk:
      for (const auto& [n, t] : pk_tables_) add_table(t);
      break;
    case opt::Scheme::kBdcc:
      for (const auto& [n, t] : bdcc_tables_) add_table(t.data());
      for (const auto& [n, t] : bdcc_extra_) add_table(t);
      break;
  }
  return total;
}

}  // namespace tpch
}  // namespace bdcc
