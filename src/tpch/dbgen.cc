#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.h"

namespace bdcc {
namespace tpch {

namespace {

const char* kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                               "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
// TPC-H nation list: nationkey -> (name, regionkey).
const NationDef kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0},{"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT SPECIFIED", "5-LOW"};
const char* kInstructions[4] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                                "TAKE BACK RETURN"};
const char* kModes[7] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                         "FOB"};
const char* kTypeSyl1[6] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                            "PROMO"};
const char* kTypeSyl2[5] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                            "BRUSHED"};
const char* kTypeSyl3[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSyl1[5] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainerSyl2[8] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                                 "CAN", "DRUM"};
// P_NAME color words (subset of the spec's 92; includes the query-sensitive
// "green" and "forest").
const char* kColors[40] = {
    "almond",   "antique",  "aquamarine", "azure",   "beige",   "bisque",
    "black",    "blanched", "blue",       "blush",   "brown",   "burlywood",
    "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
    "cream",    "cyan",     "dark",       "deep",    "dim",     "dodger",
    "drab",     "firebrick", "floral",    "forest",  "frosted", "gainsboro",
    "ghost",    "goldenrod", "green",     "grey",    "honeydew", "hot",
    "indian",   "ivory",    "khaki",      "lace"};
// Comment vocabulary; "special"/"requests" (Q13) and "Customer"/"Complaints"
// (Q16) are injected explicitly, never produced by the base vocabulary.
const char* kWords[36] = {
    "furiously", "quickly", "carefully", "blithely",  "slyly",    "ideas",
    "packages",  "deposits", "accounts", "theodolites", "dependencies",
    "instructions", "foxes", "pinto",    "beans",     "sauternes", "asymptotes",
    "courts",    "dolphins", "multipliers", "sleep",  "wake",     "cajole",
    "nag",       "haggle",   "boost",    "detect",    "engage",   "integrate",
    "print",     "above",    "against",  "along",     "among",    "around",
    "beneath"};

std::string RandomWords(Rng* rng, int min_words, int max_words) {
  int n = static_cast<int>(rng->Uniform(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i) out += " ";
    out += kWords[rng->Uniform(0, 35)];
  }
  return out;
}

std::string Numbered(const char* prefix, int64_t n, int width) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s#%0*lld", prefix, width,
                static_cast<long long>(n));
  return buf;
}

std::string Phone(int nationkey, Rng* rng) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d-%03d-%03d-%04d", 10 + nationkey,
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(1000, 9999)));
  return buf;
}

double Money(Rng* rng, double lo, double hi) {
  double cents = std::floor(rng->NextDouble() * (hi - lo) * 100.0);
  return lo + cents / 100.0;
}

}  // namespace

TpchCardinalities TpchCardinalities::At(double sf) {
  TpchCardinalities c;
  auto scale = [&](double base) {
    return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(base * sf)));
  };
  c.supplier = scale(10000);
  c.customer = scale(150000);
  c.part = scale(200000);
  c.partsupp = c.part * 4;
  c.orders = c.customer * 10;
  return c;
}

int32_t PartSuppSupplier(int32_t partkey, int j, int32_t num_suppliers) {
  // TPC-H spec 4.2.3: s = (p + (j * (S/4 + (p-1)/S))) % S + 1.
  int64_t p = partkey, s = num_suppliers;
  return static_cast<int32_t>((p + (j * (s / 4 + (p - 1) / s))) % s + 1);
}

Result<std::map<std::string, Table>> GenerateTpch(const DbgenOptions& options) {
  if (options.scale_factor <= 0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  TpchCardinalities card = TpchCardinalities::At(options.scale_factor);
  Rng rng(options.seed);
  std::map<std::string, Table> out;

  const int32_t kStartDate = ParseDate("1992-01-01");
  const int32_t kEndDate = ParseDate("1998-12-31");
  const int32_t kCurrentDate = ParseDate("1995-06-17");
  const int32_t kMaxOrderDate = kEndDate - 151;

  // ---- REGION ----
  {
    Table t("REGION");
    Column key(TypeId::kInt32), name(TypeId::kString), comment(TypeId::kString);
    for (int r = 0; r < 5; ++r) {
      key.AppendInt32(r);
      name.AppendString(kRegionNames[r]);
      comment.AppendString(RandomWords(&rng, 4, 10));
    }
    BDCC_RETURN_NOT_OK(t.AddColumn("r_regionkey", std::move(key)));
    BDCC_RETURN_NOT_OK(t.AddColumn("r_name", std::move(name)));
    BDCC_RETURN_NOT_OK(t.AddColumn("r_comment", std::move(comment)));
    out.emplace("REGION", std::move(t));
  }

  // ---- NATION ----
  {
    Table t("NATION");
    Column key(TypeId::kInt32), name(TypeId::kString), region(TypeId::kInt32),
        comment(TypeId::kString);
    for (int n = 0; n < 25; ++n) {
      key.AppendInt32(n);
      name.AppendString(kNations[n].name);
      region.AppendInt32(kNations[n].region);
      comment.AppendString(RandomWords(&rng, 4, 10));
    }
    BDCC_RETURN_NOT_OK(t.AddColumn("n_nationkey", std::move(key)));
    BDCC_RETURN_NOT_OK(t.AddColumn("n_name", std::move(name)));
    BDCC_RETURN_NOT_OK(t.AddColumn("n_regionkey", std::move(region)));
    BDCC_RETURN_NOT_OK(t.AddColumn("n_comment", std::move(comment)));
    out.emplace("NATION", std::move(t));
  }

  // ---- SUPPLIER ----
  {
    Table t("SUPPLIER");
    Column key(TypeId::kInt32), name(TypeId::kString), addr(TypeId::kString),
        nation(TypeId::kInt32), phone(TypeId::kString),
        acctbal(TypeId::kFloat64), comment(TypeId::kString);
    for (int64_t s = 1; s <= static_cast<int64_t>(card.supplier); ++s) {
      int nk = static_cast<int>(rng.Uniform(0, 24));
      key.AppendInt32(static_cast<int32_t>(s));
      name.AppendString(Numbered("Supplier", s, 9));
      addr.AppendString(RandomWords(&rng, 2, 4));
      nation.AppendInt32(nk);
      phone.AppendString(Phone(nk, &rng));
      acctbal.AppendFloat64(Money(&rng, -999.99, 9999.99));
      // Q16: ~5 per 10000 suppliers carry the complaints pattern.
      if (s % 1999 == 17) {
        comment.AppendString("take Customer slow Complaints " +
                             RandomWords(&rng, 2, 5));
      } else {
        comment.AppendString(RandomWords(&rng, 5, 12));
      }
    }
    BDCC_RETURN_NOT_OK(t.AddColumn("s_suppkey", std::move(key)));
    BDCC_RETURN_NOT_OK(t.AddColumn("s_name", std::move(name)));
    BDCC_RETURN_NOT_OK(t.AddColumn("s_address", std::move(addr)));
    BDCC_RETURN_NOT_OK(t.AddColumn("s_nationkey", std::move(nation)));
    BDCC_RETURN_NOT_OK(t.AddColumn("s_phone", std::move(phone)));
    BDCC_RETURN_NOT_OK(t.AddColumn("s_acctbal", std::move(acctbal)));
    BDCC_RETURN_NOT_OK(t.AddColumn("s_comment", std::move(comment)));
    out.emplace("SUPPLIER", std::move(t));
  }

  // ---- PART ----
  {
    Table t("PART");
    Column key(TypeId::kInt32), name(TypeId::kString), mfgr(TypeId::kString),
        brand(TypeId::kString), type(TypeId::kString), size(TypeId::kInt32),
        container(TypeId::kString), retail(TypeId::kFloat64),
        comment(TypeId::kString);
    for (int64_t p = 1; p <= static_cast<int64_t>(card.part); ++p) {
      key.AppendInt32(static_cast<int32_t>(p));
      // p_name: five distinct color words.
      std::string pname;
      for (int w = 0; w < 5; ++w) {
        if (w) pname += " ";
        pname += kColors[rng.Uniform(0, 39)];
      }
      name.AppendString(pname);
      int m = static_cast<int>(rng.Uniform(1, 5));
      int b = static_cast<int>(rng.Uniform(1, 5));
      mfgr.AppendString(Numbered("Manufacturer", m, 1));
      char bb[16];
      std::snprintf(bb, sizeof(bb), "Brand#%d%d", m, b);
      brand.AppendString(bb);
      std::string ptype = std::string(kTypeSyl1[rng.Uniform(0, 5)]) + " " +
                          kTypeSyl2[rng.Uniform(0, 4)] + " " +
                          kTypeSyl3[rng.Uniform(0, 4)];
      type.AppendString(ptype);
      size.AppendInt32(static_cast<int32_t>(rng.Uniform(1, 50)));
      container.AppendString(std::string(kContainerSyl1[rng.Uniform(0, 4)]) +
                             " " + kContainerSyl2[rng.Uniform(0, 7)]);
      // Spec formula, in dollars.
      retail.AppendFloat64(
          (90000.0 + ((p / 10) % 20001) + 100.0 * (p % 1000)) / 100.0);
      comment.AppendString(RandomWords(&rng, 2, 6));
    }
    BDCC_RETURN_NOT_OK(t.AddColumn("p_partkey", std::move(key)));
    BDCC_RETURN_NOT_OK(t.AddColumn("p_name", std::move(name)));
    BDCC_RETURN_NOT_OK(t.AddColumn("p_mfgr", std::move(mfgr)));
    BDCC_RETURN_NOT_OK(t.AddColumn("p_brand", std::move(brand)));
    BDCC_RETURN_NOT_OK(t.AddColumn("p_type", std::move(type)));
    BDCC_RETURN_NOT_OK(t.AddColumn("p_size", std::move(size)));
    BDCC_RETURN_NOT_OK(t.AddColumn("p_container", std::move(container)));
    BDCC_RETURN_NOT_OK(t.AddColumn("p_retailprice", std::move(retail)));
    BDCC_RETURN_NOT_OK(t.AddColumn("p_comment", std::move(comment)));
    out.emplace("PART", std::move(t));
  }

  // ---- PARTSUPP ----
  {
    Table t("PARTSUPP");
    Column pk(TypeId::kInt32), sk(TypeId::kInt32), avail(TypeId::kInt32),
        cost(TypeId::kFloat64), comment(TypeId::kString);
    int32_t S = static_cast<int32_t>(card.supplier);
    for (int64_t p = 1; p <= static_cast<int64_t>(card.part); ++p) {
      for (int j = 0; j < 4; ++j) {
        pk.AppendInt32(static_cast<int32_t>(p));
        sk.AppendInt32(PartSuppSupplier(static_cast<int32_t>(p), j, S));
        avail.AppendInt32(static_cast<int32_t>(rng.Uniform(1, 9999)));
        cost.AppendFloat64(Money(&rng, 1.0, 1000.0));
        comment.AppendString(RandomWords(&rng, 4, 10));
      }
    }
    BDCC_RETURN_NOT_OK(t.AddColumn("ps_partkey", std::move(pk)));
    BDCC_RETURN_NOT_OK(t.AddColumn("ps_suppkey", std::move(sk)));
    BDCC_RETURN_NOT_OK(t.AddColumn("ps_availqty", std::move(avail)));
    BDCC_RETURN_NOT_OK(t.AddColumn("ps_supplycost", std::move(cost)));
    BDCC_RETURN_NOT_OK(t.AddColumn("ps_comment", std::move(comment)));
    out.emplace("PARTSUPP", std::move(t));
  }

  // ---- CUSTOMER ----
  {
    Table t("CUSTOMER");
    Column key(TypeId::kInt32), name(TypeId::kString), addr(TypeId::kString),
        nation(TypeId::kInt32), phone(TypeId::kString),
        acctbal(TypeId::kFloat64), segment(TypeId::kString),
        comment(TypeId::kString);
    for (int64_t c = 1; c <= static_cast<int64_t>(card.customer); ++c) {
      int nk = static_cast<int>(rng.Uniform(0, 24));
      key.AppendInt32(static_cast<int32_t>(c));
      name.AppendString(Numbered("Customer", c, 9));
      addr.AppendString(RandomWords(&rng, 2, 4));
      nation.AppendInt32(nk);
      phone.AppendString(Phone(nk, &rng));
      acctbal.AppendFloat64(Money(&rng, -999.99, 9999.99));
      segment.AppendString(kSegments[rng.Uniform(0, 4)]);
      comment.AppendString(RandomWords(&rng, 6, 14));
    }
    BDCC_RETURN_NOT_OK(t.AddColumn("c_custkey", std::move(key)));
    BDCC_RETURN_NOT_OK(t.AddColumn("c_name", std::move(name)));
    BDCC_RETURN_NOT_OK(t.AddColumn("c_address", std::move(addr)));
    BDCC_RETURN_NOT_OK(t.AddColumn("c_nationkey", std::move(nation)));
    BDCC_RETURN_NOT_OK(t.AddColumn("c_phone", std::move(phone)));
    BDCC_RETURN_NOT_OK(t.AddColumn("c_acctbal", std::move(acctbal)));
    BDCC_RETURN_NOT_OK(t.AddColumn("c_mktsegment", std::move(segment)));
    BDCC_RETURN_NOT_OK(t.AddColumn("c_comment", std::move(comment)));
    out.emplace("CUSTOMER", std::move(t));
  }

  // ---- ORDERS + LINEITEM ----
  {
    Table to("ORDERS");
    Column o_key(TypeId::kInt32), o_cust(TypeId::kInt32),
        o_status(TypeId::kString), o_total(TypeId::kFloat64),
        o_date(TypeId::kDate), o_prio(TypeId::kString),
        o_clerk(TypeId::kString), o_ship(TypeId::kInt32),
        o_comment(TypeId::kString);
    Table tl("LINEITEM");
    Column l_okey(TypeId::kInt32), l_part(TypeId::kInt32),
        l_supp(TypeId::kInt32), l_line(TypeId::kInt32),
        l_qty(TypeId::kFloat64), l_ext(TypeId::kFloat64),
        l_disc(TypeId::kFloat64), l_tax(TypeId::kFloat64),
        l_rflag(TypeId::kString), l_status(TypeId::kString),
        l_sdate(TypeId::kDate), l_cdate(TypeId::kDate),
        l_rdate(TypeId::kDate), l_instr(TypeId::kString),
        l_mode(TypeId::kString), l_comment(TypeId::kString);

    int32_t S = static_cast<int32_t>(card.supplier);
    int64_t P = static_cast<int64_t>(card.part);
    int64_t C = static_cast<int64_t>(card.customer);
    int clerks = std::max<int>(1, static_cast<int>(card.orders / 1000));

    for (int64_t o = 1; o <= static_cast<int64_t>(card.orders); ++o) {
      // Customers with custkey % 3 == 0 never order (spec; enables Q22).
      int64_t cust;
      do {
        cust = rng.Uniform(1, static_cast<int64_t>(C));
      } while (C > 3 && cust % 3 == 0);
      int32_t odate = static_cast<int32_t>(
          rng.Uniform(kStartDate, kMaxOrderDate));
      int nlines = static_cast<int>(rng.Uniform(1, 7));
      double total = 0.0;
      int all_f = 1, all_o = 1;
      for (int line = 1; line <= nlines; ++line) {
        int64_t partkey = rng.Uniform(1, P);
        int j = static_cast<int>(rng.Uniform(0, 3));
        int32_t suppkey =
            PartSuppSupplier(static_cast<int32_t>(partkey), j, S);
        double qty = static_cast<double>(rng.Uniform(1, 50));
        double retail =
            (90000.0 + ((partkey / 10) % 20001) + 100.0 * (partkey % 1000)) /
            100.0;
        double ext = qty * retail;
        double disc = static_cast<double>(rng.Uniform(0, 10)) / 100.0;
        double tax = static_cast<double>(rng.Uniform(0, 8)) / 100.0;
        int32_t sdate = odate + static_cast<int32_t>(rng.Uniform(1, 121));
        int32_t cdate = odate + static_cast<int32_t>(rng.Uniform(30, 90));
        int32_t rdate = sdate + static_cast<int32_t>(rng.Uniform(1, 30));
        const char* status = sdate > kCurrentDate ? "O" : "F";
        if (*status == 'O') {
          all_f = 0;
        } else {
          all_o = 0;
        }
        const char* rflag =
            rdate <= kCurrentDate ? (rng.Chance(0.5) ? "R" : "A") : "N";
        l_okey.AppendInt32(static_cast<int32_t>(o));
        l_part.AppendInt32(static_cast<int32_t>(partkey));
        l_supp.AppendInt32(suppkey);
        l_line.AppendInt32(line);
        l_qty.AppendFloat64(qty);
        l_ext.AppendFloat64(ext);
        l_disc.AppendFloat64(disc);
        l_tax.AppendFloat64(tax);
        l_rflag.AppendString(rflag);
        l_status.AppendString(status);
        l_sdate.AppendDate(sdate);
        l_cdate.AppendDate(cdate);
        l_rdate.AppendDate(rdate);
        l_instr.AppendString(kInstructions[rng.Uniform(0, 3)]);
        l_mode.AppendString(kModes[rng.Uniform(0, 6)]);
        l_comment.AppendString(RandomWords(&rng, 3, 8));
        total += ext * (1.0 + tax) * (1.0 - disc);
      }
      o_key.AppendInt32(static_cast<int32_t>(o));
      o_cust.AppendInt32(static_cast<int32_t>(cust));
      o_status.AppendString(all_f ? "F" : (all_o ? "O" : "P"));
      o_total.AppendFloat64(total);
      o_date.AppendDate(odate);
      o_prio.AppendString(kPriorities[rng.Uniform(0, 4)]);
      o_clerk.AppendString(
          Numbered("Clerk", rng.Uniform(1, clerks), 9));
      o_ship.AppendInt32(0);
      // Q13: ~2% of orders carry the "special ... requests" pattern.
      if (rng.Chance(0.02)) {
        o_comment.AppendString("the special packages wake requests " +
                               RandomWords(&rng, 2, 4));
      } else {
        o_comment.AppendString(RandomWords(&rng, 5, 12));
      }
    }
    BDCC_RETURN_NOT_OK(to.AddColumn("o_orderkey", std::move(o_key)));
    BDCC_RETURN_NOT_OK(to.AddColumn("o_custkey", std::move(o_cust)));
    BDCC_RETURN_NOT_OK(to.AddColumn("o_orderstatus", std::move(o_status)));
    BDCC_RETURN_NOT_OK(to.AddColumn("o_totalprice", std::move(o_total)));
    BDCC_RETURN_NOT_OK(to.AddColumn("o_orderdate", std::move(o_date)));
    BDCC_RETURN_NOT_OK(to.AddColumn("o_orderpriority", std::move(o_prio)));
    BDCC_RETURN_NOT_OK(to.AddColumn("o_clerk", std::move(o_clerk)));
    BDCC_RETURN_NOT_OK(to.AddColumn("o_shippriority", std::move(o_ship)));
    BDCC_RETURN_NOT_OK(to.AddColumn("o_comment", std::move(o_comment)));
    out.emplace("ORDERS", std::move(to));

    BDCC_RETURN_NOT_OK(tl.AddColumn("l_orderkey", std::move(l_okey)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_partkey", std::move(l_part)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_suppkey", std::move(l_supp)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_linenumber", std::move(l_line)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_quantity", std::move(l_qty)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_extendedprice", std::move(l_ext)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_discount", std::move(l_disc)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_tax", std::move(l_tax)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_returnflag", std::move(l_rflag)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_linestatus", std::move(l_status)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_shipdate", std::move(l_sdate)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_commitdate", std::move(l_cdate)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_receiptdate", std::move(l_rdate)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_shipinstruct", std::move(l_instr)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_shipmode", std::move(l_mode)));
    BDCC_RETURN_NOT_OK(tl.AddColumn("l_comment", std::move(l_comment)));
    out.emplace("LINEITEM", std::move(tl));
  }
  return out;
}

}  // namespace tpch
}  // namespace bdcc
