// TPC-H queries 12-16.
#include "opt/logical_plan.h"
#include "tpch/queries/queries_internal.h"

namespace bdcc {
namespace tpch {
namespace queries {

using exec::AggCount;
using exec::AggCountDistinct;
using exec::AggCountStar;
using exec::AggMax;
using exec::AggSum;
using exec::Col;
using exec::JoinType;
using exec::LitF64;
using exec::LitI64;
using exec::LitStr;
using exec::SortKey;
using opt::LAgg;
using opt::LFilter;
using opt::LJoin;
using opt::LProject;
using opt::LScan;
using opt::LSort;
using opt::NodePtr;
using opt::SargEq;
using opt::SargRange;

namespace {

Value D(const char* iso) { return Value::Date(ParseDate(iso)); }

exec::ExprPtr DiscPrice() {
  return exec::Mul(Col("l_extendedprice"),
                   exec::Sub(LitF64(1.0), Col("l_discount")));
}

}  // namespace

// Q12: shipping modes and order priority (MAIL/SHIP, 1994).
Result<exec::Batch> RunQ12(QueryContext& ctx) {
  NodePtr li = LScan(
      "LINEITEM",
      {"l_orderkey", "l_shipmode", "l_receiptdate", "l_commitdate",
       "l_shipdate"},
      {SargRange("l_receiptdate", D("1994-01-01"), D("1994-12-31"))},
      exec::AndAll({exec::InStrings(Col("l_shipmode"), {"MAIL", "SHIP"}),
                    exec::Lt(Col("l_commitdate"), Col("l_receiptdate")),
                    exec::Lt(Col("l_shipdate"), Col("l_commitdate"))}));
  NodePtr j = LJoin(li, LScan("ORDERS", {"o_orderkey", "o_orderpriority"}),
                    JoinType::kInner, {"l_orderkey"}, {"o_orderkey"},
                    "FK_L_O");
  exec::ExprPtr is_high =
      exec::Or(exec::Eq(Col("o_orderpriority"), LitStr("1-URGENT")),
               exec::Eq(Col("o_orderpriority"), LitStr("2-HIGH")));
  exec::ExprPtr is_high2 =
      exec::Or(exec::Eq(Col("o_orderpriority"), LitStr("1-URGENT")),
               exec::Eq(Col("o_orderpriority"), LitStr("2-HIGH")));
  NodePtr agg = LAgg(
      j, {"l_shipmode"},
      {AggSum(exec::CaseWhen(is_high, LitI64(1), LitI64(0)),
              "high_line_count"),
       AggSum(exec::CaseWhen(exec::Not(is_high2), LitI64(1), LitI64(0)),
              "low_line_count")});
  return RunPlan(LSort(agg, {SortKey{"l_shipmode"}}), ctx);
}

// Q13: customer distribution (orders without "special requests").
Result<exec::Batch> RunQ13(QueryContext& ctx) {
  NodePtr cust = LScan("CUSTOMER", {"c_custkey"});
  NodePtr orders =
      LScan("ORDERS", {"o_orderkey", "o_custkey", "o_comment"}, {},
            exec::NotLike(Col("o_comment"), "%special%requests%"));
  NodePtr j = LJoin(cust, orders, JoinType::kLeftOuter, {"c_custkey"},
                    {"o_custkey"}, "FK_O_C");
  NodePtr per_customer =
      LAgg(j, {"c_custkey"}, {AggCount(Col("o_orderkey"), "c_count")});
  NodePtr dist =
      LAgg(per_customer, {"c_count"}, {AggCountStar("custdist")});
  return RunPlan(
      LSort(dist, {SortKey{"custdist", true}, SortKey{"c_count", true}}),
      ctx);
}

// Q14: promotion effect (1995-09).
Result<exec::Batch> RunQ14(QueryContext& ctx) {
  NodePtr li = LScan(
      "LINEITEM",
      {"l_partkey", "l_extendedprice", "l_discount", "l_shipdate"},
      {SargRange("l_shipdate", D("1995-09-01"), D("1995-09-30"))});
  NodePtr j = LJoin(li, LScan("PART", {"p_partkey", "p_type"}),
                    JoinType::kInner, {"l_partkey"}, {"p_partkey"},
                    "FK_L_P");
  NodePtr agg = LAgg(
      j, {},
      {AggSum(exec::CaseWhen(exec::Like(Col("p_type"), "PROMO%"),
                             DiscPrice(), LitF64(0.0)),
              "promo"),
       AggSum(DiscPrice(), "total")});
  NodePtr out = LProject(
      agg, {{"promo_revenue",
             exec::Div(exec::Mul(LitF64(100.0), Col("promo")),
                       Col("total"))}});
  return RunPlan(out, ctx);
}

// Q15: top supplier (revenue view over 1996Q1).
Result<exec::Batch> RunQ15(QueryContext& ctx) {
  auto view = []() {
    NodePtr li = LScan(
        "LINEITEM",
        {"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"},
        {SargRange("l_shipdate", D("1996-01-01"), D("1996-03-31"))});
    return LAgg(li, {"l_suppkey"}, {AggSum(DiscPrice(), "total_revenue")});
  };
  BDCC_ASSIGN_OR_RETURN(
      exec::Batch max_batch,
      RunPlan(LAgg(view(), {}, {AggMax(Col("total_revenue"), "m")}), ctx));
  BDCC_ASSIGN_OR_RETURN(double max_revenue, ScalarOf(max_batch));

  NodePtr best = LFilter(
      view(), exec::Eq(Col("total_revenue"), LitF64(max_revenue)));
  NodePtr j = LJoin(
      LScan("SUPPLIER", {"s_suppkey", "s_name", "s_address", "s_phone"}),
      best, JoinType::kInner, {"s_suppkey"}, {"l_suppkey"}, "");
  return RunPlan(LSort(j, {SortKey{"s_suppkey"}}), ctx);
}

// Q16: parts/supplier relationship (excluding complaints suppliers).
Result<exec::Batch> RunQ16(QueryContext& ctx) {
  NodePtr ps = LScan("PARTSUPP", {"ps_partkey", "ps_suppkey"});
  NodePtr part = LScan(
      "PART", {"p_partkey", "p_brand", "p_type", "p_size"}, {},
      exec::AndAll(
          {exec::Ne(Col("p_brand"), LitStr("Brand#45")),
           exec::NotLike(Col("p_type"), "MEDIUM POLISHED%"),
           exec::InInts(Col("p_size"), {49, 14, 23, 45, 19, 3, 36, 9})}));
  NodePtr j = LJoin(ps, part, JoinType::kInner, {"ps_partkey"},
                    {"p_partkey"}, "FK_PS_P");
  NodePtr complainers =
      LScan("SUPPLIER", {"s_suppkey", "s_comment"}, {},
            exec::Like(Col("s_comment"), "%Customer%Complaints%"));
  j = LJoin(j, complainers, JoinType::kLeftAnti, {"ps_suppkey"},
            {"s_suppkey"}, "FK_PS_S");
  NodePtr agg =
      LAgg(j, {"p_brand", "p_type", "p_size"},
           {AggCountDistinct(Col("ps_suppkey"), "supplier_cnt")});
  return RunPlan(LSort(agg, {SortKey{"supplier_cnt", true},
                             SortKey{"p_brand"}, SortKey{"p_type"},
                             SortKey{"p_size"}}),
                 ctx);
}

}  // namespace queries
}  // namespace tpch
}  // namespace bdcc
