// TPC-H queries 17-22.
#include "opt/logical_plan.h"
#include "tpch/queries/queries_internal.h"

namespace bdcc {
namespace tpch {
namespace queries {

using exec::AggAvg;
using exec::AggCountDistinct;
using exec::AggCountStar;
using exec::AggSum;
using exec::Col;
using exec::JoinType;
using exec::LitF64;
using exec::LitI64;
using exec::LitStr;
using exec::SortKey;
using opt::LAgg;
using opt::LFilter;
using opt::LJoin;
using opt::LProject;
using opt::LScan;
using opt::LSort;
using opt::NodePtr;
using opt::SargEq;
using opt::SargPrefixLike;
using opt::SargRange;

namespace {

Value D(const char* iso) { return Value::Date(ParseDate(iso)); }

exec::ExprPtr DiscPrice() {
  return exec::Mul(Col("l_extendedprice"),
                   exec::Sub(LitF64(1.0), Col("l_discount")));
}

const std::vector<std::string> kQ22Codes = {"13", "31", "23", "29",
                                            "30", "18", "17"};

}  // namespace

// Q17: small-quantity-order revenue (Brand#23, MED BOX).
Result<exec::Batch> RunQ17(QueryContext& ctx) {
  auto part = []() {
    return LScan("PART", {"p_partkey", "p_brand", "p_container"},
                 {SargEq("p_brand", Value::String("Brand#23")),
                  SargEq("p_container", Value::String("MED BOX"))});
  };
  NodePtr sub = LJoin(LScan("LINEITEM", {"l_partkey", "l_quantity"}), part(),
                      JoinType::kInner, {"l_partkey"}, {"p_partkey"},
                      "FK_L_P");
  sub = LAgg(sub, {"l_partkey"}, {AggAvg(Col("l_quantity"), "avg_qty")});
  sub = LProject(sub, {{"ap_partkey", Col("l_partkey")},
                       {"avg_qty", Col("avg_qty")}});

  NodePtr main = LJoin(
      LScan("LINEITEM", {"l_partkey", "l_quantity", "l_extendedprice"}),
      part(), JoinType::kInner, {"l_partkey"}, {"p_partkey"}, "FK_L_P");
  main = LJoin(main, sub, JoinType::kInner, {"l_partkey"}, {"ap_partkey"},
               "");
  main = LFilter(main, exec::Lt(Col("l_quantity"),
                                exec::Mul(LitF64(0.2), Col("avg_qty"))));
  NodePtr agg = LAgg(main, {}, {AggSum(Col("l_extendedprice"), "s")});
  return RunPlan(
      LProject(agg, {{"avg_yearly", exec::Div(Col("s"), LitF64(7.0))}}), ctx);
}

// Q18: large volume customers (sum qty > 300).
Result<exec::Batch> RunQ18(QueryContext& ctx) {
  NodePtr inner = LAgg(LScan("LINEITEM", {"l_orderkey", "l_quantity"}),
                       {"l_orderkey"},
                       {AggSum(Col("l_quantity"), "sum_qty_all")});
  NodePtr big = LProject(
      LFilter(inner, exec::Gt(Col("sum_qty_all"), LitF64(300.0))),
      {{"big_orderkey", Col("l_orderkey")}});
  NodePtr orders = LScan(
      "ORDERS", {"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"});
  NodePtr o2 = LJoin(orders, big, JoinType::kLeftSemi, {"o_orderkey"},
                     {"big_orderkey"}, "");
  NodePtr o3 = LJoin(o2, LScan("CUSTOMER", {"c_custkey", "c_name"}),
                     JoinType::kInner, {"o_custkey"}, {"c_custkey"},
                     "FK_O_C");
  NodePtr j = LJoin(LScan("LINEITEM", {"l_orderkey", "l_quantity"}), o3,
                    JoinType::kInner, {"l_orderkey"}, {"o_orderkey"},
                    "FK_L_O");
  NodePtr agg = LAgg(
      j, {"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
      {AggSum(Col("l_quantity"), "sum_qty")});
  return RunPlan(
      LSort(agg, {SortKey{"o_totalprice", true}, SortKey{"o_orderdate"}},
            100),
      ctx);
}

// Q19: discounted revenue (three brand/container/quantity classes).
Result<exec::Batch> RunQ19(QueryContext& ctx) {
  NodePtr li = LScan(
      "LINEITEM",
      {"l_partkey", "l_quantity", "l_extendedprice", "l_discount",
       "l_shipinstruct", "l_shipmode"},
      {}, exec::And(exec::InStrings(Col("l_shipmode"), {"AIR", "AIR REG"}),
                    exec::Eq(Col("l_shipinstruct"),
                             LitStr("DELIVER IN PERSON"))));
  NodePtr j = LJoin(
      li, LScan("PART", {"p_partkey", "p_brand", "p_container", "p_size"}),
      JoinType::kInner, {"l_partkey"}, {"p_partkey"}, "FK_L_P");
  auto clause = [](const char* brand, std::vector<std::string> containers,
                   double qlo, double qhi, int64_t smax) {
    return exec::AndAll(
        {exec::Eq(Col("p_brand"), LitStr(brand)),
         exec::InStrings(Col("p_container"), std::move(containers)),
         exec::Between(Col("l_quantity"), LitF64(qlo), LitF64(qhi)),
         exec::Between(Col("p_size"), LitI64(1), LitI64(smax))});
  };
  j = LFilter(
      j, exec::Or(
             clause("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"},
                    1, 11, 5),
             exec::Or(clause("Brand#23",
                             {"MED BAG", "MED BOX", "MED PKG", "MED PACK"},
                             10, 20, 10),
                      clause("Brand#34",
                             {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20,
                             30, 15))));
  return RunPlan(LAgg(j, {}, {AggSum(DiscPrice(), "revenue")}), ctx);
}

// Q20: potential part promotion (forest%, CANADA, 1994).
Result<exec::Batch> RunQ20(QueryContext& ctx) {
  NodePtr sub = LAgg(
      LScan("LINEITEM", {"l_partkey", "l_suppkey", "l_quantity", "l_shipdate"},
            {SargRange("l_shipdate", D("1994-01-01"), D("1994-12-31"))}),
      {"l_partkey", "l_suppkey"}, {AggSum(Col("l_quantity"), "sq")});
  sub = LProject(sub, {{"lp", Col("l_partkey")},
                       {"ls", Col("l_suppkey")},
                       {"sq", Col("sq")}});
  NodePtr ps =
      LScan("PARTSUPP", {"ps_partkey", "ps_suppkey", "ps_availqty"});
  NodePtr j = LJoin(ps, sub, JoinType::kInner,
                    {"ps_partkey", "ps_suppkey"}, {"lp", "ls"}, "");
  j = LFilter(j, exec::Gt(Col("ps_availqty"),
                          exec::Mul(LitF64(0.5), Col("sq"))));
  j = LJoin(j,
            LScan("PART", {"p_partkey", "p_name"},
                  {SargPrefixLike("p_name", "forest%")}),
            JoinType::kLeftSemi, {"ps_partkey"}, {"p_partkey"}, "FK_PS_P");

  NodePtr supp = LScan("SUPPLIER",
                       {"s_suppkey", "s_name", "s_address", "s_nationkey"});
  supp = LJoin(supp,
               LScan("NATION", {"n_nationkey", "n_name"},
                     {SargEq("n_name", Value::String("CANADA"))}),
               JoinType::kLeftSemi, {"s_nationkey"}, {"n_nationkey"},
               "FK_S_N");
  NodePtr out = LJoin(supp, j, JoinType::kLeftSemi, {"s_suppkey"},
                      {"ps_suppkey"}, "FK_PS_S");
  out = LProject(out, {{"s_name", Col("s_name")},
                       {"s_address", Col("s_address")}});
  return RunPlan(LSort(out, {SortKey{"s_name"}}), ctx);
}

// Q21: suppliers who kept orders waiting (SAUDI ARABIA).
Result<exec::Batch> RunQ21(QueryContext& ctx) {
  NodePtr a1 = LAgg(LScan("LINEITEM", {"l_orderkey", "l_suppkey"}),
                    {"l_orderkey"},
                    {AggCountDistinct(Col("l_suppkey"), "nsupp")});
  a1 = LProject(a1, {{"ok1", Col("l_orderkey")}, {"nsupp", Col("nsupp")}});
  NodePtr a2 = LAgg(
      LScan("LINEITEM",
            {"l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"}, {},
            exec::Gt(Col("l_receiptdate"), Col("l_commitdate"))),
      {"l_orderkey"}, {AggCountDistinct(Col("l_suppkey"), "nlate")});
  a2 = LProject(a2, {{"ok2", Col("l_orderkey")}, {"nlate", Col("nlate")}});

  NodePtr l1 = LScan(
      "LINEITEM",
      {"l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"}, {},
      exec::Gt(Col("l_receiptdate"), Col("l_commitdate")));
  NodePtr j = LJoin(l1,
                    LScan("ORDERS", {"o_orderkey", "o_orderstatus"},
                          {SargEq("o_orderstatus", Value::String("F"))}),
                    JoinType::kInner, {"l_orderkey"}, {"o_orderkey"},
                    "FK_L_O");
  j = LJoin(j, LScan("SUPPLIER", {"s_suppkey", "s_name", "s_nationkey"}),
            JoinType::kInner, {"l_suppkey"}, {"s_suppkey"}, "FK_L_S");
  j = LJoin(j,
            LScan("NATION", {"n_nationkey", "n_name"},
                  {SargEq("n_name", Value::String("SAUDI ARABIA"))}),
            JoinType::kInner, {"s_nationkey"}, {"n_nationkey"}, "FK_S_N");
  j = LJoin(j, a1, JoinType::kInner, {"l_orderkey"}, {"ok1"}, "");
  j = LJoin(j, a2, JoinType::kInner, {"l_orderkey"}, {"ok2"}, "");
  j = LFilter(j, exec::And(exec::Ge(Col("nsupp"), LitI64(2)),
                           exec::Eq(Col("nlate"), LitI64(1))));
  NodePtr agg = LAgg(j, {"s_name"}, {AggCountStar("numwait")});
  return RunPlan(
      LSort(agg, {SortKey{"numwait", true}, SortKey{"s_name"}}, 100), ctx);
}

// Q22: global sales opportunity (country codes, idle customers).
Result<exec::Batch> RunQ22(QueryContext& ctx) {
  auto in_codes = []() {
    return exec::InStrings(exec::StrPrefix(Col("c_phone"), 2), kQ22Codes);
  };
  NodePtr avg_scan = LScan(
      "CUSTOMER", {"c_custkey", "c_phone", "c_acctbal"}, {},
      exec::And(in_codes(), exec::Gt(Col("c_acctbal"), LitF64(0.0))));
  BDCC_ASSIGN_OR_RETURN(
      exec::Batch avg_batch,
      RunPlan(LAgg(avg_scan, {}, {AggAvg(Col("c_acctbal"), "a")}), ctx));
  BDCC_ASSIGN_OR_RETURN(double avg_bal, ScalarOf(avg_batch));

  NodePtr cust = LScan(
      "CUSTOMER", {"c_custkey", "c_phone", "c_acctbal"}, {},
      exec::And(in_codes(), exec::Gt(Col("c_acctbal"), LitF64(avg_bal))));
  NodePtr j = LJoin(cust, LScan("ORDERS", {"o_orderkey", "o_custkey"}),
                    JoinType::kLeftAnti, {"c_custkey"}, {"o_custkey"},
                    "FK_O_C");
  NodePtr proj = LProject(j, {{"cntrycode", exec::StrPrefix(Col("c_phone"), 2)},
                              {"c_acctbal", Col("c_acctbal")}});
  NodePtr agg = LAgg(proj, {"cntrycode"},
                     {AggCountStar("numcust"),
                      AggSum(Col("c_acctbal"), "totacctbal")});
  return RunPlan(LSort(agg, {SortKey{"cntrycode"}}), ctx);
}

}  // namespace queries
}  // namespace tpch
}  // namespace bdcc
