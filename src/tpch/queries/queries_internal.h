// Internal: per-query entry points (implemented across q*.cc files).
#ifndef BDCC_TPCH_QUERIES_QUERIES_INTERNAL_H_
#define BDCC_TPCH_QUERIES_QUERIES_INTERNAL_H_

#include "tpch/tpch_queries.h"

namespace bdcc {
namespace tpch {
namespace queries {

Result<exec::Batch> RunQ1(QueryContext& ctx);
Result<exec::Batch> RunQ2(QueryContext& ctx);
Result<exec::Batch> RunQ3(QueryContext& ctx);
Result<exec::Batch> RunQ4(QueryContext& ctx);
Result<exec::Batch> RunQ5(QueryContext& ctx);
Result<exec::Batch> RunQ6(QueryContext& ctx);
Result<exec::Batch> RunQ7(QueryContext& ctx);
Result<exec::Batch> RunQ8(QueryContext& ctx);
Result<exec::Batch> RunQ9(QueryContext& ctx);
Result<exec::Batch> RunQ10(QueryContext& ctx);
Result<exec::Batch> RunQ11(QueryContext& ctx);
Result<exec::Batch> RunQ12(QueryContext& ctx);
Result<exec::Batch> RunQ13(QueryContext& ctx);
Result<exec::Batch> RunQ14(QueryContext& ctx);
Result<exec::Batch> RunQ15(QueryContext& ctx);
Result<exec::Batch> RunQ16(QueryContext& ctx);
Result<exec::Batch> RunQ17(QueryContext& ctx);
Result<exec::Batch> RunQ18(QueryContext& ctx);
Result<exec::Batch> RunQ19(QueryContext& ctx);
Result<exec::Batch> RunQ20(QueryContext& ctx);
Result<exec::Batch> RunQ21(QueryContext& ctx);
Result<exec::Batch> RunQ22(QueryContext& ctx);

/// First cell of a single-row result as double (scalar-subquery stages).
Result<double> ScalarOf(const exec::Batch& batch);

}  // namespace queries
}  // namespace tpch
}  // namespace bdcc

#endif  // BDCC_TPCH_QUERIES_QUERIES_INTERNAL_H_
