// TPC-H queries 7-11.
#include "opt/logical_plan.h"
#include "tpch/queries/queries_internal.h"

namespace bdcc {
namespace tpch {
namespace queries {

using exec::AggCountStar;
using exec::AggSum;
using exec::Col;
using exec::JoinType;
using exec::LitF64;
using exec::LitStr;
using exec::SortKey;
using opt::LAgg;
using opt::LFilter;
using opt::LJoin;
using opt::LProject;
using opt::LScan;
using opt::LSort;
using opt::NodePtr;
using opt::SargEq;
using opt::SargRange;

namespace {

Value D(const char* iso) { return Value::Date(ParseDate(iso)); }

exec::ExprPtr DiscPrice() {
  return exec::Mul(Col("l_extendedprice"),
                   exec::Sub(LitF64(1.0), Col("l_discount")));
}

}  // namespace

// Q7: volume shipping (FRANCE <-> GERMANY, 1995-1996).
Result<exec::Batch> RunQ7(QueryContext& ctx) {
  auto nation_alias = [](const char* key_name, const char* name_name) {
    NodePtr scan = LScan(
        "NATION", {"n_nationkey", "n_name"}, {},
        exec::InStrings(Col("n_name"), {"FRANCE", "GERMANY"}));
    return LProject(scan, {{key_name, Col("n_nationkey")},
                           {name_name, Col("n_name")}});
  };
  NodePtr li = LScan(
      "LINEITEM",
      {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount",
       "l_shipdate"},
      {SargRange("l_shipdate", D("1995-01-01"), D("1996-12-31"))});
  NodePtr j = LJoin(li, LScan("ORDERS", {"o_orderkey", "o_custkey"}),
                    JoinType::kInner, {"l_orderkey"}, {"o_orderkey"},
                    "FK_L_O");
  j = LJoin(j, LScan("CUSTOMER", {"c_custkey", "c_nationkey"}),
            JoinType::kInner, {"o_custkey"}, {"c_custkey"}, "FK_O_C");
  j = LJoin(j, nation_alias("cust_nkey", "cust_nation"), JoinType::kInner,
            {"c_nationkey"}, {"cust_nkey"}, "FK_C_N");
  j = LJoin(j, LScan("SUPPLIER", {"s_suppkey", "s_nationkey"}),
            JoinType::kInner, {"l_suppkey"}, {"s_suppkey"}, "FK_L_S");
  j = LJoin(j, nation_alias("supp_nkey", "supp_nation"), JoinType::kInner,
            {"s_nationkey"}, {"supp_nkey"}, "FK_S_N");
  j = LFilter(
      j, exec::Or(exec::And(exec::Eq(Col("supp_nation"), LitStr("FRANCE")),
                            exec::Eq(Col("cust_nation"), LitStr("GERMANY"))),
                  exec::And(exec::Eq(Col("supp_nation"), LitStr("GERMANY")),
                            exec::Eq(Col("cust_nation"), LitStr("FRANCE")))));
  NodePtr proj = LProject(j, {{"supp_nation", Col("supp_nation")},
                              {"cust_nation", Col("cust_nation")},
                              {"l_year", exec::Year(Col("l_shipdate"))},
                              {"volume", DiscPrice()}});
  NodePtr agg = LAgg(proj, {"supp_nation", "cust_nation", "l_year"},
                     {AggSum(Col("volume"), "revenue")});
  return RunPlan(LSort(agg, {SortKey{"supp_nation"}, SortKey{"cust_nation"},
                             SortKey{"l_year"}}),
                 ctx);
}

// Q8: national market share (BRAZIL in AMERICA, ECONOMY ANODIZED STEEL).
Result<exec::Batch> RunQ8(QueryContext& ctx) {
  NodePtr li = LScan("LINEITEM", {"l_orderkey", "l_partkey", "l_suppkey",
                                  "l_extendedprice", "l_discount"});
  NodePtr orders =
      LScan("ORDERS", {"o_orderkey", "o_custkey", "o_orderdate"},
            {SargRange("o_orderdate", D("1995-01-01"), D("1996-12-31"))});
  NodePtr j = LJoin(li, orders, JoinType::kInner, {"l_orderkey"},
                    {"o_orderkey"}, "FK_L_O");
  NodePtr part =
      LScan("PART", {"p_partkey", "p_type"},
            {SargEq("p_type", Value::String("ECONOMY ANODIZED STEEL"))});
  j = LJoin(j, part, JoinType::kInner, {"l_partkey"}, {"p_partkey"},
            "FK_L_P");
  j = LJoin(j, LScan("CUSTOMER", {"c_custkey", "c_nationkey"}),
            JoinType::kInner, {"o_custkey"}, {"c_custkey"}, "FK_O_C");
  j = LJoin(j, LScan("NATION", {"n_nationkey", "n_regionkey"}),
            JoinType::kInner, {"c_nationkey"}, {"n_nationkey"}, "FK_C_N");
  j = LJoin(j,
            LScan("REGION", {"r_regionkey", "r_name"},
                  {SargEq("r_name", Value::String("AMERICA"))}),
            JoinType::kInner, {"n_regionkey"}, {"r_regionkey"}, "FK_N_R");
  j = LJoin(j, LScan("SUPPLIER", {"s_suppkey", "s_nationkey"}),
            JoinType::kInner, {"l_suppkey"}, {"s_suppkey"}, "FK_L_S");
  NodePtr n2 = LProject(LScan("NATION", {"n_nationkey", "n_name"}),
                        {{"supp_nkey", Col("n_nationkey")},
                         {"supp_nation", Col("n_name")}});
  j = LJoin(j, n2, JoinType::kInner, {"s_nationkey"}, {"supp_nkey"},
            "FK_S_N");
  NodePtr proj = LProject(j, {{"o_year", exec::Year(Col("o_orderdate"))},
                              {"volume", DiscPrice()},
                              {"supp_nation", Col("supp_nation")}});
  NodePtr agg = LAgg(
      proj, {"o_year"},
      {AggSum(exec::CaseWhen(exec::Eq(Col("supp_nation"), LitStr("BRAZIL")),
                             Col("volume"), LitF64(0.0)),
              "brazil_volume"),
       AggSum(Col("volume"), "total_volume")});
  NodePtr share =
      LProject(agg, {{"o_year", Col("o_year")},
                     {"mkt_share",
                      exec::Div(Col("brazil_volume"), Col("total_volume"))}});
  return RunPlan(LSort(share, {SortKey{"o_year"}}), ctx);
}

// Q9: product type profit measure (%green%).
Result<exec::Batch> RunQ9(QueryContext& ctx) {
  NodePtr li =
      LScan("LINEITEM", {"l_orderkey", "l_partkey", "l_suppkey",
                         "l_quantity", "l_extendedprice", "l_discount"});
  NodePtr j = LJoin(li, LScan("ORDERS", {"o_orderkey", "o_orderdate"}),
                    JoinType::kInner, {"l_orderkey"}, {"o_orderkey"},
                    "FK_L_O");
  NodePtr part = LScan("PART", {"p_partkey", "p_name"}, {},
                       exec::Like(Col("p_name"), "%green%"));
  j = LJoin(j, part, JoinType::kInner, {"l_partkey"}, {"p_partkey"},
            "FK_L_P");
  j = LJoin(j, LScan("SUPPLIER", {"s_suppkey", "s_nationkey"}),
            JoinType::kInner, {"l_suppkey"}, {"s_suppkey"}, "FK_L_S");
  j = LJoin(j, LScan("NATION", {"n_nationkey", "n_name"}), JoinType::kInner,
            {"s_nationkey"}, {"n_nationkey"}, "FK_S_N");
  j = LJoin(j,
            LScan("PARTSUPP", {"ps_partkey", "ps_suppkey", "ps_supplycost"}),
            JoinType::kInner, {"l_partkey", "l_suppkey"},
            {"ps_partkey", "ps_suppkey"}, "FK_L_PS");
  NodePtr proj = LProject(
      j, {{"nation", Col("n_name")},
          {"o_year", exec::Year(Col("o_orderdate"))},
          {"amount",
           exec::Sub(DiscPrice(),
                     exec::Mul(Col("ps_supplycost"), Col("l_quantity")))}});
  NodePtr agg =
      LAgg(proj, {"nation", "o_year"}, {AggSum(Col("amount"), "sum_profit")});
  return RunPlan(LSort(agg, {SortKey{"nation"}, SortKey{"o_year", true}}),
                 ctx);
}

// Q10: returned item reporting (1993-10 quarter).
Result<exec::Batch> RunQ10(QueryContext& ctx) {
  NodePtr li = LScan(
      "LINEITEM",
      {"l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"},
      {SargEq("l_returnflag", Value::String("R"))});
  NodePtr orders =
      LScan("ORDERS", {"o_orderkey", "o_custkey", "o_orderdate"},
            {SargRange("o_orderdate", D("1993-10-01"), D("1993-12-31"))});
  NodePtr j = LJoin(li, orders, JoinType::kInner, {"l_orderkey"},
                    {"o_orderkey"}, "FK_L_O");
  j = LJoin(j,
            LScan("CUSTOMER",
                  {"c_custkey", "c_name", "c_acctbal", "c_address", "c_phone",
                   "c_comment", "c_nationkey"}),
            JoinType::kInner, {"o_custkey"}, {"c_custkey"}, "FK_O_C");
  j = LJoin(j, LScan("NATION", {"n_nationkey", "n_name"}), JoinType::kInner,
            {"c_nationkey"}, {"n_nationkey"}, "FK_C_N");
  NodePtr agg = LAgg(j,
                     {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
                      "c_address", "c_comment"},
                     {AggSum(DiscPrice(), "revenue")});
  return RunPlan(LSort(agg, {SortKey{"revenue", true}}, 20), ctx);
}

// Q11: important stock identification (GERMANY).
Result<exec::Batch> RunQ11(QueryContext& ctx) {
  auto base = []() {
    NodePtr ps = LScan("PARTSUPP",
                       {"ps_partkey", "ps_suppkey", "ps_availqty",
                        "ps_supplycost"});
    ps = LJoin(ps, LScan("SUPPLIER", {"s_suppkey", "s_nationkey"}),
               JoinType::kInner, {"ps_suppkey"}, {"s_suppkey"}, "FK_PS_S");
    return LJoin(ps,
                 LScan("NATION", {"n_nationkey", "n_name"},
                       {SargEq("n_name", Value::String("GERMANY"))}),
                 JoinType::kInner, {"s_nationkey"}, {"n_nationkey"},
                 "FK_S_N");
  };
  auto value = []() {
    return exec::Mul(Col("ps_supplycost"), Col("ps_availqty"));
  };
  BDCC_ASSIGN_OR_RETURN(
      exec::Batch total_batch,
      RunPlan(LAgg(base(), {}, {AggSum(value(), "total")}), ctx));
  BDCC_ASSIGN_OR_RETURN(double total, ScalarOf(total_batch));
  double threshold = total * (0.0001 / std::max(ctx.scale_factor, 1e-9));

  NodePtr agg = LAgg(base(), {"ps_partkey"}, {AggSum(value(), "value")});
  NodePtr filtered = LFilter(agg, exec::Gt(Col("value"), LitF64(threshold)));
  return RunPlan(LSort(filtered, {SortKey{"value", true}}), ctx);
}

}  // namespace queries
}  // namespace tpch
}  // namespace bdcc
