// TPC-H queries 1-6 as logical plans (validation parameters).
#include "tpch/queries/queries_internal.h"

#include "opt/logical_plan.h"

namespace bdcc {
namespace tpch {
namespace queries {

using exec::AggAvg;
using exec::AggCountStar;
using exec::AggMin;
using exec::AggSum;
using exec::Col;
using exec::JoinType;
using exec::Like;
using exec::LitF64;
using exec::LitStr;
using exec::Project;
using exec::SortKey;
using opt::LAgg;
using opt::LFilter;
using opt::LJoin;
using opt::LProject;
using opt::LScan;
using opt::LSort;
using opt::NodePtr;
using opt::Sarg;
using opt::SargEq;
using opt::SargRange;

namespace {

Value D(const char* iso) { return Value::Date(ParseDate(iso)); }

exec::ExprPtr DiscPrice() {
  return exec::Mul(Col("l_extendedprice"),
                   exec::Sub(LitF64(1.0), Col("l_discount")));
}

}  // namespace

// Q1: pricing summary report.
Result<exec::Batch> RunQ1(QueryContext& ctx) {
  NodePtr scan = LScan(
      "LINEITEM",
      {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
       "l_discount", "l_tax", "l_shipdate"},
      {SargRange("l_shipdate", std::nullopt, D("1998-09-02"))});
  NodePtr agg = LAgg(
      scan, {"l_returnflag", "l_linestatus"},
      {AggSum(Col("l_quantity"), "sum_qty"),
       AggSum(Col("l_extendedprice"), "sum_base_price"),
       AggSum(DiscPrice(), "sum_disc_price"),
       AggSum(exec::Mul(DiscPrice(), exec::Add(LitF64(1.0), Col("l_tax"))),
              "sum_charge"),
       AggAvg(Col("l_quantity"), "avg_qty"),
       AggAvg(Col("l_extendedprice"), "avg_price"),
       AggAvg(Col("l_discount"), "avg_disc"),
       AggCountStar("count_order")});
  return RunPlan(LSort(agg, {SortKey{"l_returnflag"}, SortKey{"l_linestatus"}}),
                 ctx);
}

// Q2: minimum cost supplier (EUROPE, size 15, %BRASS).
Result<exec::Batch> RunQ2(QueryContext& ctx) {
  auto region = []() {
    return LScan("REGION", {"r_regionkey", "r_name"},
                 {SargEq("r_name", Value::String("EUROPE"))});
  };
  // Subquery: min supply cost per part among European suppliers.
  NodePtr sub = LScan("PARTSUPP", {"ps_partkey", "ps_suppkey", "ps_supplycost"});
  sub = LJoin(sub, LScan("SUPPLIER", {"s_suppkey", "s_nationkey"}),
              JoinType::kInner, {"ps_suppkey"}, {"s_suppkey"}, "FK_PS_S");
  sub = LJoin(sub, LScan("NATION", {"n_nationkey", "n_regionkey"}),
              JoinType::kInner, {"s_nationkey"}, {"n_nationkey"}, "FK_S_N");
  sub = LJoin(sub, region(), JoinType::kInner, {"n_regionkey"},
              {"r_regionkey"}, "FK_N_R");
  sub = LAgg(sub, {"ps_partkey"}, {AggMin(Col("ps_supplycost"), "mc_cost")});
  sub = LProject(sub, {{"mc_partkey", Col("ps_partkey")},
                       {"mc_cost", Col("mc_cost")}});

  NodePtr part =
      LScan("PART", {"p_partkey", "p_mfgr", "p_type", "p_size"},
            {SargEq("p_size", Value::Int32(15))},
            Like(Col("p_type"), "%BRASS"));
  NodePtr main = LScan("PARTSUPP", {"ps_partkey", "ps_suppkey", "ps_supplycost"});
  main = LJoin(main, part, JoinType::kInner, {"ps_partkey"}, {"p_partkey"},
               "FK_PS_P");
  main = LJoin(main,
               LScan("SUPPLIER", {"s_suppkey", "s_name", "s_address",
                                  "s_nationkey", "s_phone", "s_acctbal",
                                  "s_comment"}),
               JoinType::kInner, {"ps_suppkey"}, {"s_suppkey"}, "FK_PS_S");
  main = LJoin(main, LScan("NATION", {"n_nationkey", "n_name", "n_regionkey"}),
               JoinType::kInner, {"s_nationkey"}, {"n_nationkey"}, "FK_S_N");
  main = LJoin(main, region(), JoinType::kInner, {"n_regionkey"},
               {"r_regionkey"}, "FK_N_R");
  main = LJoin(main, sub, JoinType::kInner,
               {"ps_partkey", "ps_supplycost"}, {"mc_partkey", "mc_cost"}, "");
  NodePtr out = LProject(
      main, {{"s_acctbal", Col("s_acctbal")},
             {"s_name", Col("s_name")},
             {"n_name", Col("n_name")},
             {"p_partkey", Col("p_partkey")},
             {"p_mfgr", Col("p_mfgr")},
             {"s_address", Col("s_address")},
             {"s_phone", Col("s_phone")},
             {"s_comment", Col("s_comment")}});
  return RunPlan(LSort(out,
                       {SortKey{"s_acctbal", true}, SortKey{"n_name"},
                        SortKey{"s_name"}, SortKey{"p_partkey"}},
                       100),
                 ctx);
}

// Q3: shipping priority (BUILDING, 1995-03-15).
Result<exec::Batch> RunQ3(QueryContext& ctx) {
  NodePtr li = LScan(
      "LINEITEM",
      {"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"},
      {SargRange("l_shipdate", Value::Date(ParseDate("1995-03-15") + 1),
                 std::nullopt)});
  NodePtr orders = LScan(
      "ORDERS", {"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"},
      {SargRange("o_orderdate", std::nullopt,
                 Value::Date(ParseDate("1995-03-15") - 1))});
  NodePtr cust = LScan("CUSTOMER", {"c_custkey", "c_mktsegment"},
                       {SargEq("c_mktsegment", Value::String("BUILDING"))});
  NodePtr j = LJoin(li, orders, JoinType::kInner, {"l_orderkey"},
                    {"o_orderkey"}, "FK_L_O");
  j = LJoin(j, cust, JoinType::kInner, {"o_custkey"}, {"c_custkey"},
            "FK_O_C");
  NodePtr agg = LAgg(j, {"l_orderkey", "o_orderdate", "o_shippriority"},
                     {AggSum(DiscPrice(), "revenue")});
  return RunPlan(
      LSort(agg, {SortKey{"revenue", true}, SortKey{"o_orderdate"}}, 10), ctx);
}

// Q4: order priority checking (1993-07 quarter).
Result<exec::Batch> RunQ4(QueryContext& ctx) {
  NodePtr orders =
      LScan("ORDERS", {"o_orderkey", "o_orderdate", "o_orderpriority"},
            {SargRange("o_orderdate", D("1993-07-01"), D("1993-09-30"))});
  NodePtr li = LScan("LINEITEM",
                     {"l_orderkey", "l_commitdate", "l_receiptdate"}, {},
                     exec::Lt(Col("l_commitdate"), Col("l_receiptdate")));
  NodePtr j = LJoin(orders, li, JoinType::kLeftSemi, {"o_orderkey"},
                    {"l_orderkey"}, "FK_L_O");
  NodePtr agg =
      LAgg(j, {"o_orderpriority"}, {AggCountStar("order_count")});
  return RunPlan(LSort(agg, {SortKey{"o_orderpriority"}}), ctx);
}

// Q5: local supplier volume (ASIA, 1994).
Result<exec::Batch> RunQ5(QueryContext& ctx) {
  NodePtr li = LScan("LINEITEM",
                     {"l_orderkey", "l_suppkey", "l_extendedprice",
                      "l_discount"});
  NodePtr orders =
      LScan("ORDERS", {"o_orderkey", "o_custkey", "o_orderdate"},
            {SargRange("o_orderdate", D("1994-01-01"), D("1994-12-31"))});
  NodePtr cust = LScan("CUSTOMER", {"c_custkey", "c_nationkey"});
  NodePtr a = LJoin(li, orders, JoinType::kInner, {"l_orderkey"},
                    {"o_orderkey"}, "FK_L_O");
  a = LJoin(a, cust, JoinType::kInner, {"o_custkey"}, {"c_custkey"},
            "FK_O_C");
  NodePtr supp = LScan("SUPPLIER", {"s_suppkey", "s_nationkey"});
  NodePtr nation = LScan("NATION", {"n_nationkey", "n_name", "n_regionkey"});
  NodePtr region = LScan("REGION", {"r_regionkey", "r_name"},
                         {SargEq("r_name", Value::String("ASIA"))});
  NodePtr b = LJoin(supp, nation, JoinType::kInner, {"s_nationkey"},
                    {"n_nationkey"}, "FK_S_N");
  b = LJoin(b, region, JoinType::kInner, {"n_regionkey"}, {"r_regionkey"},
            "FK_N_R");
  NodePtr c = LJoin(a, b, JoinType::kInner, {"l_suppkey"}, {"s_suppkey"},
                    "FK_L_S");
  c = LFilter(c, exec::Eq(Col("c_nationkey"), Col("s_nationkey")));
  NodePtr agg = LAgg(c, {"n_name"}, {AggSum(DiscPrice(), "revenue")});
  return RunPlan(LSort(agg, {SortKey{"revenue", true}}), ctx);
}

// Q6: forecasting revenue change.
Result<exec::Batch> RunQ6(QueryContext& ctx) {
  Sarg qty;
  qty.column = "l_quantity";
  qty.range.hi = Value::Float64(24.0);
  qty.row_expr = exec::Lt(Col("l_quantity"), LitF64(24.0));
  NodePtr scan = LScan(
      "LINEITEM",
      {"l_extendedprice", "l_discount", "l_shipdate", "l_quantity"},
      {SargRange("l_shipdate", D("1994-01-01"), D("1994-12-31")),
       SargRange("l_discount", Value::Float64(0.05), Value::Float64(0.07)),
       qty});
  NodePtr agg =
      LAgg(scan, {},
           {AggSum(exec::Mul(Col("l_extendedprice"), Col("l_discount")),
                   "revenue")});
  return RunPlan(agg, ctx);
}

}  // namespace queries
}  // namespace tpch
}  // namespace bdcc
