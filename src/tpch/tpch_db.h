// The three physical TPC-H databases of the paper's evaluation: Plain
// (no indexing), PK (primary-key ordered; merge joins), and BDCC (the
// advisor's co-clustered design). All are built from the same generated
// rows, each with its own simulated device + buffer pool.
#ifndef BDCC_TPCH_TPCH_DB_H_
#define BDCC_TPCH_TPCH_DB_H_

#include <map>
#include <memory>
#include <string>

#include "advisor/advisor.h"
#include "io/buffer_pool.h"
#include "opt/physical_db.h"
#include "tpch/dbgen.h"
#include "tpch/tpch_schema.h"

namespace bdcc {
namespace tpch {

struct TpchDbOptions {
  double scale_factor = 0.01;
  uint64_t seed = 42;
  uint32_t zone_rows = 1024;
  advisor::AdvisorOptions advisor;
  io::DeviceProfile device = io::DeviceProfile::SsdRaid0();
  uint64_t buffer_pool_bytes = 4ull << 30;  // paper: 4GB buffer space
  bool attach_buffer_pools = true;
  /// Which schemes to materialize (BDCC only, all three, ...).
  bool build_plain = true;
  bool build_pk = true;
  bool build_bdcc = true;
};

/// \brief Owns the generated rows, the catalog, and up to three physical
/// designs, each implementing opt::PhysicalDb.
class TpchDb {
 public:
  static Result<std::unique_ptr<TpchDb>> Create(const TpchDbOptions& options);
  ~TpchDb();  // out-of-line: PhysicalDbImpl is incomplete here

  const catalog::Catalog& schema_catalog() const { return catalog_; }
  const advisor::SchemaDesign& design() const { return design_; }
  const TpchDbOptions& options() const { return options_; }

  const opt::PhysicalDb& plain() const;
  const opt::PhysicalDb& pk() const;
  const opt::PhysicalDb& bdcc() const;
  const opt::PhysicalDb& db(opt::Scheme scheme) const;

  const std::map<std::string, BdccTable>& bdcc_tables() const {
    return bdcc_tables_;
  }

  /// Device/pool of a scheme (simulated I/O accounting).
  io::DeviceModel* device(opt::Scheme scheme);
  io::BufferPool* pool(opt::Scheme scheme);
  /// Drop cached pages & I/O stats of every scheme (cold-run setup).
  void ResetIo();

  /// Total uncompressed / best-codec-compressed bytes of a scheme's tables
  /// (the paper: "all three schemes take roughly 55GB").
  uint64_t DiskBytes(opt::Scheme scheme) const;

 private:
  TpchDb() = default;

  TpchDbOptions options_;
  catalog::Catalog catalog_;
  advisor::SchemaDesign design_;

  std::map<std::string, Table> plain_tables_;
  std::map<std::string, Table> pk_tables_;
  std::map<std::string, BdccTable> bdcc_tables_;
  std::map<std::string, Table> bdcc_extra_;  // tables the advisor left plain

  struct SchemeIo {
    std::unique_ptr<io::DeviceModel> device;
    std::unique_ptr<io::BufferPool> pool;
  };
  SchemeIo io_[3];

  class PhysicalDbImpl;
  std::unique_ptr<PhysicalDbImpl> plain_db_, pk_db_, bdcc_db_;
};

}  // namespace tpch
}  // namespace bdcc

#endif  // BDCC_TPCH_TPCH_DB_H_
