// In-memory TPC-H data generator (dbgen-compatible distributions).
//
// Faithful to the spec where the evaluation depends on it: key/value
// formulas (p_retailprice, partsupp supplier assignment), date windows
// (o_orderdate in [1992-01-01, 1998-08-02], linestatus split at
// 1995-06-17), value domains for every selective column the 22 queries
// touch (segments, priorities, ship modes, brands/types/containers, phone
// country codes = 10 + nationkey, customers without orders = custkey % 3),
// and the text injections Q13/Q16 filter on ("special ... requests",
// "Customer ... Complaints"). Documented deviations: dense order keys and
// simplified comment text (vocabulary-based).
#ifndef BDCC_TPCH_DBGEN_H_
#define BDCC_TPCH_DBGEN_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace bdcc {
namespace tpch {

struct DbgenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

/// Row counts at a scale factor (LINEITEM is approximate: 1-7 per order).
struct TpchCardinalities {
  uint64_t region = 5, nation = 25;
  uint64_t supplier = 0, customer = 0, part = 0, partsupp = 0, orders = 0;
  static TpchCardinalities At(double sf);
};

/// \brief Generate all eight TPC-H tables.
Result<std::map<std::string, Table>> GenerateTpch(const DbgenOptions& options);

/// Supplier of the j-th (j in [0,4)) PARTSUPP row of part `partkey`, out of
/// `num_suppliers` (the spec's permutation formula, reused for l_suppkey so
/// every (l_partkey, l_suppkey) exists in PARTSUPP).
int32_t PartSuppSupplier(int32_t partkey, int j, int32_t num_suppliers);

}  // namespace tpch
}  // namespace bdcc

#endif  // BDCC_TPCH_DBGEN_H_
