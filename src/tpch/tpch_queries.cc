#include "tpch/tpch_queries.h"

#include "tpch/queries/queries_internal.h"

namespace bdcc {
namespace tpch {

Result<exec::Batch> RunPlan(const opt::NodePtr& plan, QueryContext& ctx) {
  ctx.exec->memory()->set_limit(ctx.planner.memory_limit_bytes);
  BDCC_ASSIGN_OR_RETURN(opt::CompiledQuery compiled,
                        opt::Compile(plan, *ctx.db, ctx.planner));
  if (ctx.notes != nullptr) {
    ctx.notes->insert(ctx.notes->end(), compiled.notes.begin(),
                      compiled.notes.end());
  }
  return exec::CollectAll(compiled.root.get(), ctx.exec);
}

namespace queries {

Result<double> ScalarOf(const exec::Batch& batch) {
  if (batch.num_rows != 1 || batch.columns.empty()) {
    return Status::Internal("scalar stage did not produce one row");
  }
  const exec::ColumnVector& c = batch.columns[0];
  switch (c.type) {
    case TypeId::kFloat64:
      return c.f64[0];
    case TypeId::kInt64:
      return static_cast<double>(c.i64[0]);
    default:
      return static_cast<double>(c.i32[0]);
  }
}

}  // namespace queries

Result<exec::Batch> RunTpchQuery(int number, QueryContext& ctx) {
  using namespace queries;  // NOLINT
  switch (number) {
    case 1:
      return RunQ1(ctx);
    case 2:
      return RunQ2(ctx);
    case 3:
      return RunQ3(ctx);
    case 4:
      return RunQ4(ctx);
    case 5:
      return RunQ5(ctx);
    case 6:
      return RunQ6(ctx);
    case 7:
      return RunQ7(ctx);
    case 8:
      return RunQ8(ctx);
    case 9:
      return RunQ9(ctx);
    case 10:
      return RunQ10(ctx);
    case 11:
      return RunQ11(ctx);
    case 12:
      return RunQ12(ctx);
    case 13:
      return RunQ13(ctx);
    case 14:
      return RunQ14(ctx);
    case 15:
      return RunQ15(ctx);
    case 16:
      return RunQ16(ctx);
    case 17:
      return RunQ17(ctx);
    case 18:
      return RunQ18(ctx);
    case 19:
      return RunQ19(ctx);
    case 20:
      return RunQ20(ctx);
    case 21:
      return RunQ21(ctx);
    case 22:
      return RunQ22(ctx);
    default:
      return Status::InvalidArgument("TPC-H query number must be 1..22");
  }
}

const char* TpchQueryTitle(int number) {
  switch (number) {
    case 1:
      return "pricing summary report";
    case 2:
      return "minimum cost supplier";
    case 3:
      return "shipping priority";
    case 4:
      return "order priority checking";
    case 5:
      return "local supplier volume";
    case 6:
      return "forecasting revenue change";
    case 7:
      return "volume shipping";
    case 8:
      return "national market share";
    case 9:
      return "product type profit";
    case 10:
      return "returned item reporting";
    case 11:
      return "important stock identification";
    case 12:
      return "shipping modes and priority";
    case 13:
      return "customer distribution";
    case 14:
      return "promotion effect";
    case 15:
      return "top supplier";
    case 16:
      return "parts/supplier relationship";
    case 17:
      return "small-quantity-order revenue";
    case 18:
      return "large volume customers";
    case 19:
      return "discounted revenue";
    case 20:
      return "potential part promotion";
    case 21:
      return "suppliers who kept orders waiting";
    case 22:
      return "global sales opportunity";
    default:
      return "?";
  }
}

}  // namespace tpch
}  // namespace bdcc
