#include "tpch/tpch_schema.h"

#include "catalog/ddl_parser.h"

namespace bdcc {
namespace tpch {

const char* TpchTableDdl() {
  return R"ddl(
CREATE TABLE REGION (
  r_regionkey INT NOT NULL,
  r_name      VARCHAR(25) NOT NULL,
  r_comment   VARCHAR(152),
  PRIMARY KEY (r_regionkey)
);

CREATE TABLE NATION (
  n_nationkey INT NOT NULL,
  n_name      VARCHAR(25) NOT NULL,
  n_regionkey INT NOT NULL,
  n_comment   VARCHAR(152),
  PRIMARY KEY (n_nationkey),
  FOREIGN KEY FK_N_R (n_regionkey) REFERENCES REGION (r_regionkey)
);

CREATE TABLE SUPPLIER (
  s_suppkey   INT NOT NULL,
  s_name      CHAR(25) NOT NULL,
  s_address   VARCHAR(40) NOT NULL,
  s_nationkey INT NOT NULL,
  s_phone     CHAR(15) NOT NULL,
  s_acctbal   DECIMAL(15,2) NOT NULL,
  s_comment   VARCHAR(101) NOT NULL,
  PRIMARY KEY (s_suppkey),
  FOREIGN KEY FK_S_N (s_nationkey) REFERENCES NATION (n_nationkey)
);

CREATE TABLE CUSTOMER (
  c_custkey    INT NOT NULL,
  c_name       VARCHAR(25) NOT NULL,
  c_address    VARCHAR(40) NOT NULL,
  c_nationkey  INT NOT NULL,
  c_phone      CHAR(15) NOT NULL,
  c_acctbal    DECIMAL(15,2) NOT NULL,
  c_mktsegment CHAR(10) NOT NULL,
  c_comment    VARCHAR(117) NOT NULL,
  PRIMARY KEY (c_custkey),
  FOREIGN KEY FK_C_N (c_nationkey) REFERENCES NATION (n_nationkey)
);

CREATE TABLE PART (
  p_partkey     INT NOT NULL,
  p_name        VARCHAR(55) NOT NULL,
  p_mfgr        CHAR(25) NOT NULL,
  p_brand       CHAR(10) NOT NULL,
  p_type        VARCHAR(25) NOT NULL,
  p_size        INT NOT NULL,
  p_container   CHAR(10) NOT NULL,
  p_retailprice DECIMAL(15,2) NOT NULL,
  p_comment     VARCHAR(23) NOT NULL,
  PRIMARY KEY (p_partkey)
);

CREATE TABLE PARTSUPP (
  ps_partkey    INT NOT NULL,
  ps_suppkey    INT NOT NULL,
  ps_availqty   INT NOT NULL,
  ps_supplycost DECIMAL(15,2) NOT NULL,
  ps_comment    VARCHAR(199) NOT NULL,
  PRIMARY KEY (ps_partkey, ps_suppkey),
  FOREIGN KEY FK_PS_P (ps_partkey) REFERENCES PART (p_partkey),
  FOREIGN KEY FK_PS_S (ps_suppkey) REFERENCES SUPPLIER (s_suppkey)
);

CREATE TABLE ORDERS (
  o_orderkey      INT NOT NULL,
  o_custkey       INT NOT NULL,
  o_orderstatus   CHAR(1) NOT NULL,
  o_totalprice    DECIMAL(15,2) NOT NULL,
  o_orderdate     DATE NOT NULL,
  o_orderpriority CHAR(15) NOT NULL,
  o_clerk         CHAR(15) NOT NULL,
  o_shippriority  INT NOT NULL,
  o_comment       VARCHAR(79) NOT NULL,
  PRIMARY KEY (o_orderkey),
  FOREIGN KEY FK_O_C (o_custkey) REFERENCES CUSTOMER (c_custkey)
);

CREATE TABLE LINEITEM (
  l_orderkey      INT NOT NULL,
  l_partkey       INT NOT NULL,
  l_suppkey       INT NOT NULL,
  l_linenumber    INT NOT NULL,
  l_quantity      DECIMAL(15,2) NOT NULL,
  l_extendedprice DECIMAL(15,2) NOT NULL,
  l_discount      DECIMAL(15,2) NOT NULL,
  l_tax           DECIMAL(15,2) NOT NULL,
  l_returnflag    CHAR(1) NOT NULL,
  l_linestatus    CHAR(1) NOT NULL,
  l_shipdate      DATE NOT NULL,
  l_commitdate    DATE NOT NULL,
  l_receiptdate   DATE NOT NULL,
  l_shipinstruct  CHAR(25) NOT NULL,
  l_shipmode      CHAR(10) NOT NULL,
  l_comment       VARCHAR(44) NOT NULL,
  PRIMARY KEY (l_orderkey, l_linenumber),
  FOREIGN KEY FK_L_O (l_orderkey) REFERENCES ORDERS (o_orderkey),
  FOREIGN KEY FK_L_P (l_partkey) REFERENCES PART (p_partkey),
  FOREIGN KEY FK_L_S (l_suppkey) REFERENCES SUPPLIER (s_suppkey),
  FOREIGN KEY FK_L_PS (l_partkey, l_suppkey)
      REFERENCES PARTSUPP (ps_partkey, ps_suppkey)
);
)ddl";
}

const char* TpchHintDdl() {
  // Section IV of the paper, verbatim semantics. Declaration order matters:
  // Algorithm 2 inherits dimension uses in index order, and the published
  // mask table lists LINEITEM's uses as (D_DATE, D_NATION via customer,
  // D_NATION via supplier, D_PART) — hence l_suppkey before l_partkey.
  return R"ddl(
CREATE INDEX date_idx   ON ORDERS (o_orderdate);
CREATE INDEX part_idx   ON PART (p_partkey);
CREATE INDEX nation_idx ON NATION (n_regionkey, n_nationkey);

CREATE INDEX s_nation_fk_idx ON SUPPLIER (s_nationkey);
CREATE INDEX c_nation_fk_idx ON CUSTOMER (c_nationkey);
CREATE INDEX o_cust_fk_idx   ON ORDERS (o_custkey);
CREATE INDEX ps_part_fk_idx  ON PARTSUPP (ps_partkey);
CREATE INDEX ps_supp_fk_idx  ON PARTSUPP (ps_suppkey);
CREATE INDEX l_order_fk_idx  ON LINEITEM (l_orderkey);
CREATE INDEX l_supp_fk_idx   ON LINEITEM (l_suppkey);
CREATE INDEX l_part_fk_idx   ON LINEITEM (l_partkey);
)ddl";
}

Result<catalog::Catalog> MakeTpchCatalog(bool with_hints) {
  catalog::Catalog cat;
  BDCC_RETURN_NOT_OK(catalog::ParseDdl(TpchTableDdl(), &cat));
  if (with_hints) {
    BDCC_RETURN_NOT_OK(catalog::ParseDdl(TpchHintDdl(), &cat));
  }
  return cat;
}

}  // namespace tpch
}  // namespace bdcc
