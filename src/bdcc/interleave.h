// Bit-interleaving policies for BDCC keys (Algorithm 1 step (i)).
//
// The default is round-robin interleaving in dimension-use order (Z-order
// following the UB-Tree work [7]): position bits are assigned one at a time,
// major to minor, cycling over the uses and skipping uses whose full
// dimension granularity is exhausted. This reproduces the paper's published
// TPC-H mask table exactly (e.g. ORDERS: D_DATE=101010101011111111,
// D_NATION=010101010100000000).
//
// Alternatives mentioned in the paper are provided: per-foreign-key round
// robin (uses sharing an FK split that FK's bit stream) and explicit
// major-minor ordering for manual setups.
#ifndef BDCC_BDCC_INTERLEAVE_H_
#define BDCC_BDCC_INTERLEAVE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace bdcc {
namespace interleave {

enum class Policy {
  kRoundRobinPerUse = 0,
  kRoundRobinPerForeignKey = 1,
  kMajorMinor = 2,
};

const char* PolicyName(Policy policy);

/// \brief Masks assigned to each dimension use over a key of `total_bits`.
struct InterleaveSpec {
  std::vector<uint64_t> masks;  // one per use; disjoint; union == 2^B - 1
  int total_bits = 0;           // B = sum of per-use assigned bits
};

/// \brief Assign masks for uses with granularities `use_bits` (bits(D_i)).
///
/// \param use_bits  full granularity of each use's dimension.
/// \param policy    interleaving policy.
/// \param fk_groups group id per use for kRoundRobinPerForeignKey: uses with
///                  equal group id share one round-robin slot (local
///                  dimensions should each get their own id). Ignored for
///                  other policies (may be empty).
Result<InterleaveSpec> BuildMasks(const std::vector<int>& use_bits,
                                  Policy policy,
                                  const std::vector<int>& fk_groups = {});

/// \brief Reduce a spec to the top `new_total_bits` bits (granularity
/// reduction after Algorithm 1(iii)); per-use masks shift right accordingly.
InterleaveSpec Reduce(const InterleaveSpec& spec, int new_total_bits);

/// \brief Compose a `_bdcc_` key: for each use i, take the major
/// ones(mask_i) bits of bin number `bins[i]` (whose width is dim_bits[i])
/// and deposit them at mask_i's positions (Definition 4).
uint64_t ComposeKey(const uint64_t* bins, const int* dim_bits,
                    const InterleaveSpec& spec);

/// \brief Extract use i's bin-number prefix back out of a key.
uint64_t ExtractUseBits(uint64_t key, uint64_t mask);

}  // namespace interleave
}  // namespace bdcc

#endif  // BDCC_BDCC_INTERLEAVE_H_
