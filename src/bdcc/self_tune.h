// Algorithm 1 (Self-Tuned BDCC Table), step (iii): choose the count-table
// granularity b <= B so that groups of the densest (widest on disk) column
// stay above the efficient random access size AR.
#ifndef BDCC_BDCC_SELF_TUNE_H_
#define BDCC_BDCC_SELF_TUNE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bdcc/group_histogram.h"
#include "storage/table.h"

namespace bdcc {

struct SelfTuneOptions {
  /// Efficient random access size AR in bytes (derive from a DeviceModel via
  /// EfficientRandomAccessSize(); paper: 32KB for flash, MBs for disk).
  uint64_t efficient_access_bytes = 32 * 1024;
  /// Minimum fraction of tuples that must live in groups whose densest-
  /// column size is >= AR ("the vast majority of groups").
  double min_group_fraction = 0.8;
};

struct SelfTuneDecision {
  int chosen_bits = 0;
  std::string densest_column;
  double densest_bytes_per_row = 0.0;
  uint64_t min_rows_per_group = 0;    // AR translated into tuples
  std::vector<double> fraction_by_bits;  // diagnostics, index = granularity
};

/// Density (on-disk bytes per row) of the widest column of `table`.
/// \param[out] name optional: receives the column's name.
double DensestColumnBytesPerRow(const Table& table, std::string* name);

/// \brief Pick the largest granularity b whose tuple-weighted fraction of
/// groups >= AR meets `options.min_group_fraction`.
SelfTuneDecision ChooseCountGranularity(const GroupSizeAnalysis& analysis,
                                        const Table& table,
                                        const SelfTuneOptions& options);

}  // namespace bdcc

#endif  // BDCC_BDCC_SELF_TUNE_H_
