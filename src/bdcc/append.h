// Maintenance under inserts.
//
// The paper's Section III argues for independent (non-hierarchical) bin
// numbering precisely because it is easy to maintain under updates: a new
// tuple's `_bdcc_` key only depends on its own dimension bins. This module
// implements bulk append: compute the new tuples' keys, merge them into the
// clustered order, and refresh TCOUNT — the count-table granularity chosen
// by Algorithm 1 is kept (re-tuning is a rebuild-time decision).
#ifndef BDCC_BDCC_APPEND_H_
#define BDCC_BDCC_APPEND_H_

#include "bdcc/bdcc_table.h"
#include "common/result.h"

namespace bdcc {

struct AppendStats {
  uint64_t rows_appended = 0;
  uint64_t groups_before = 0;
  uint64_t groups_after = 0;
};

/// \brief Compute the `_bdcc_` key of every row of `new_rows` using
/// `table`'s dimension uses and full-granularity masks (Definition 4: a new
/// tuple's key depends only on its own dimension bins, never on old data).
/// `new_rows` must carry the table's name — dimension paths are anchored at
/// it. Shared by bulk append and the delta store.
Result<std::vector<uint64_t>> ComputeBdccKeys(const BdccTable& table,
                                              const Table& new_rows,
                                              const TableResolver& resolver);

/// \brief Merge `new_rows` (same schema as the original source table, same
/// table name) into `table`, preserving the clustered order and count-table
/// granularity. Not supported after small-group consolidation (the physical
/// row order no longer equals the logical order).
Result<AppendStats> AppendToBdccTable(BdccTable* table, const Table& new_rows,
                                      const TableResolver& resolver);

}  // namespace bdcc

#endif  // BDCC_BDCC_APPEND_H_
