#include "bdcc/binning.h"

#include <algorithm>

#include "common/bits.h"
#include "common/macros.h"

namespace bdcc {
namespace binning {

int ChooseBits(uint64_t num_bins, const BinningOptions& options) {
  int needed = bits::CeilLog2(num_bins);
  int chosen = std::min(options.max_bits, needed + options.headroom_bits);
  // Never fewer bits than required to number the bins actually created;
  // bin counts themselves are capped at 2^max_bits by the binning paths.
  return std::max(chosen, std::min(needed, options.max_bits));
}

namespace {

// Spread m ascending bin ordinals across the 2^bits number space so that
// granularity reduction (D|g) unites equal-count neighbor runs.
uint64_t SpreadNumber(uint64_t ordinal, uint64_t m, int bits) {
  return (ordinal << bits) / m;
}

}  // namespace

Result<Dimension> CreateDimension(std::string name, std::string table,
                                  std::vector<std::string> key_columns,
                                  const std::vector<ValueFrequency>& values,
                                  const BinningOptions& options) {
  if (values.empty()) {
    return Status::InvalidArgument("dimension " + name + ": no values");
  }
  for (size_t i = 1; i < values.size(); ++i) {
    if (CompareComposite(values[i - 1].value, values[i].value) >= 0) {
      return Status::InvalidArgument(
          "dimension " + name + ": values must be sorted, distinct");
    }
  }

  uint64_t distinct = values.size();
  uint64_t max_bins = uint64_t{1} << options.max_bits;
  std::vector<Dimension::Bin> bins;

  if (distinct <= max_bins) {
    // Unique bins (Definition 1 (iv)).
    int bits = ChooseBits(distinct, options);
    bins.reserve(distinct);
    for (uint64_t i = 0; i < distinct; ++i) {
      bins.push_back(Dimension::Bin{SpreadNumber(i, distinct, bits),
                                    values[i].value, true});
    }
    return Dimension(std::move(name), std::move(table),
                     std::move(key_columns), bits, std::move(bins));
  }

  // Equal-frequency binning: close a bin once its cumulative share of the
  // total count reaches the proportional target; never split one value.
  uint64_t total = 0;
  for (const ValueFrequency& v : values) total += v.count;
  uint64_t target_bins = max_bins;
  int bits = options.max_bits;

  uint64_t produced = 0;
  uint64_t cumulative = 0;
  size_t i = 0;
  while (i < values.size()) {
    uint64_t remaining_bins = target_bins - produced;
    uint64_t remaining_values = values.size() - i;
    // Per-bin quota of the remaining mass, keeping at least one value each.
    uint64_t quota = (total - cumulative + remaining_bins - 1) / remaining_bins;
    uint64_t in_bin = 0;
    size_t last = i;
    while (last < values.size()) {
      in_bin += values[last].count;
      ++last;
      if (in_bin >= quota &&
          remaining_values - (last - i) >= remaining_bins - 1) {
        break;
      }
      // Leave enough values for the remaining bins.
      if (remaining_values - (last - i) < remaining_bins) break;
    }
    cumulative += in_bin;
    bins.push_back(Dimension::Bin{SpreadNumber(produced, target_bins, bits),
                                  values[last - 1].value, last - i == 1});
    produced += 1;
    i = last;
  }
  BDCC_CHECK(produced <= target_bins);
  return Dimension(std::move(name), std::move(table), std::move(key_columns),
                   bits, std::move(bins));
}

Result<Dimension> CreateRangeDimension(std::string name, std::string table,
                                       std::string key_column, int64_t lo,
                                       int64_t hi, int num_bits) {
  if (hi < lo) return Status::InvalidArgument("range dimension: hi < lo");
  if (num_bits < 1 || num_bits > 32) {
    return Status::InvalidArgument("range dimension: bits must be in [1,32]");
  }
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  uint64_t want = uint64_t{1} << num_bits;
  uint64_t nbins = std::min(span, want);
  int bits = (nbins == want) ? num_bits : bits::CeilLog2(nbins);
  std::vector<Dimension::Bin> bins;
  bins.reserve(nbins);
  for (uint64_t b = 0; b < nbins; ++b) {
    // Upper boundary of bin b: evenly divide the value span.
    int64_t upper = lo + static_cast<int64_t>(((b + 1) * span) / nbins) - 1;
    bool unique = (((b + 1) * span) / nbins - (b * span) / nbins) == 1;
    bins.push_back(Dimension::Bin{SpreadNumber(b, nbins, bits),
                                  {Value::Int64(upper)},
                                  unique});
  }
  return Dimension(std::move(name), std::move(table),
                   {std::move(key_column)}, bits, std::move(bins));
}

}  // namespace binning
}  // namespace bdcc
