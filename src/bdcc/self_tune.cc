#include "bdcc/self_tune.h"

#include <algorithm>
#include <cmath>

namespace bdcc {

double DensestColumnBytesPerRow(const Table& table, std::string* name) {
  double best = 0.0;
  std::string best_name;
  uint64_t rows = table.num_rows();
  if (rows == 0) return 0.0;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    double density = static_cast<double>(table.column(i).DiskBytes()) /
                     static_cast<double>(rows);
    if (density > best) {
      best = density;
      best_name = table.column_name(static_cast<int>(i));
    }
  }
  if (name) *name = best_name;
  return best;
}

SelfTuneDecision ChooseCountGranularity(const GroupSizeAnalysis& analysis,
                                        const Table& table,
                                        const SelfTuneOptions& options) {
  SelfTuneDecision out;
  out.densest_bytes_per_row =
      DensestColumnBytesPerRow(table, &out.densest_column);
  // AR in tuples of the densest column (at least one tuple).
  uint64_t min_rows = 1;
  if (out.densest_bytes_per_row > 0) {
    min_rows = static_cast<uint64_t>(
        std::ceil(static_cast<double>(options.efficient_access_bytes) /
                  out.densest_bytes_per_row));
    if (min_rows == 0) min_rows = 1;
  }
  out.min_rows_per_group = min_rows;

  int full = analysis.full_bits();
  out.fraction_by_bits.resize(full + 1, 0.0);
  for (int b = 0; b <= full; ++b) {
    out.fraction_by_bits[b] = analysis.FractionInGroupsAtLeast(b, min_rows);
  }
  // Largest b still meeting the fraction target; b=0 (single group) always
  // admissible as a fallback.
  out.chosen_bits = 0;
  for (int b = full; b >= 1; --b) {
    if (out.fraction_by_bits[b] >= options.min_group_fraction) {
      out.chosen_bits = b;
      break;
    }
  }
  return out;
}

}  // namespace bdcc
