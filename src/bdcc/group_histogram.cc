#include "bdcc/group_histogram.h"

#include "common/bits.h"
#include "common/macros.h"

namespace bdcc {

GroupSizeAnalysis GroupSizeAnalysis::Build(
    const std::vector<uint64_t>& sorted_keys, int full_bits) {
  GroupSizeAnalysis out;
  out.full_bits_ = full_bits;
  out.total_rows_ = sorted_keys.size();
  out.sizes_.resize(full_bits + 1);

  // Granularity B directly from the sorted keys (one pass).
  std::vector<uint64_t> keys_at_b;
  {
    std::vector<uint64_t>& sizes = out.sizes_[full_bits];
    uint64_t i = 0, n = sorted_keys.size();
    while (i < n) {
      uint64_t k = sorted_keys[i];
      uint64_t j = i + 1;
      while (j < n && sorted_keys[j] == k) ++j;
      sizes.push_back(j - i);
      keys_at_b.push_back(k);
      i = j;
    }
  }
  // Each coarser granularity merges neighbor groups sharing the key prefix.
  std::vector<uint64_t> keys = std::move(keys_at_b);
  for (int b = full_bits - 1; b >= 0; --b) {
    const std::vector<uint64_t>& finer = out.sizes_[b + 1];
    std::vector<uint64_t>& coarser = out.sizes_[b];
    std::vector<uint64_t> coarse_keys;
    size_t i = 0;
    while (i < keys.size()) {
      uint64_t k = keys[i] >> 1;
      uint64_t total = finer[i];
      size_t j = i + 1;
      while (j < keys.size() && (keys[j] >> 1) == k) {
        total += finer[j];
        ++j;
      }
      coarser.push_back(total);
      coarse_keys.push_back(k);
      i = j;
    }
    keys = std::move(coarse_keys);
  }
  return out;
}

std::vector<uint64_t> GroupSizeAnalysis::Histogram(int b) const {
  BDCC_CHECK(b >= 0 && b <= full_bits_);
  std::vector<uint64_t> hist(65, 0);
  int max_bucket = 0;
  for (uint64_t s : sizes_[b]) {
    int bucket = (s == 0) ? 0 : bits::FloorLog2(s);
    hist[bucket]++;
    if (bucket > max_bucket) max_bucket = bucket;
  }
  hist.resize(max_bucket + 1);
  return hist;
}

double GroupSizeAnalysis::FractionInGroupsAtLeast(int b,
                                                  uint64_t min_rows) const {
  BDCC_CHECK(b >= 0 && b <= full_bits_);
  if (total_rows_ == 0) return 1.0;
  uint64_t covered = 0;
  for (uint64_t s : sizes_[b]) {
    if (s >= min_rows) covered += s;
  }
  return static_cast<double>(covered) / static_cast<double>(total_rows_);
}

double GroupSizeAnalysis::MissingGroupFactor(int b) const {
  BDCC_CHECK(b >= 0 && b <= full_bits_);
  double expected = static_cast<double>(uint64_t{1} << b);
  double observed = static_cast<double>(sizes_[b].size());
  return observed == 0 ? 0.0 : expected / observed;
}

}  // namespace bdcc
