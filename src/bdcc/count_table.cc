#include "bdcc/count_table.h"

#include <algorithm>

namespace bdcc {

CountTable CountTable::Build(const std::vector<uint64_t>& sorted_keys,
                             int full_bits, int count_bits) {
  BDCC_CHECK(count_bits >= 0 && count_bits <= full_bits);
  int shift = full_bits - count_bits;
  CountTable ct;
  ct.count_bits_ = count_bits;
  ct.total_ = sorted_keys.size();
  uint64_t i = 0;
  uint64_t n = sorted_keys.size();
  while (i < n) {
    uint64_t group = sorted_keys[i] >> shift;
    uint64_t j = i + 1;
    while (j < n && (sorted_keys[j] >> shift) == group) ++j;
    ct.entries_.push_back(CountEntry{group, j - i, i});
    i = j;
  }
  return ct;
}

size_t CountTable::LowerBound(uint64_t key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const CountEntry& e, uint64_t k) { return e.key < k; });
  return static_cast<size_t>(it - entries_.begin());
}

}  // namespace bdcc
