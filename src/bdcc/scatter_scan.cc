#include "bdcc/scatter_scan.h"

#include <algorithm>

#include "common/bits.h"

namespace bdcc {

std::vector<GroupRange> PlanNaturalScan(const BdccTable& table) {
  const CountTable& ct = table.count_table();
  std::vector<GroupRange> out;
  out.reserve(ct.num_groups());
  for (size_t i = 0; i < ct.num_groups(); ++i) {
    const CountEntry& e = ct.entry(i);
    out.push_back(GroupRange{e.key, e.row_begin, e.row_begin + e.count,
                             static_cast<uint32_t>(i)});
  }
  return out;
}

Result<std::vector<GroupRange>> PlanScatterScan(
    const BdccTable& table, const std::vector<size_t>& use_order) {
  for (size_t u : use_order) {
    if (u >= table.uses().size()) {
      return Status::InvalidArgument("scatter scan: use index out of range");
    }
  }
  std::vector<GroupRange> groups = PlanNaturalScan(table);

  // Build the permuted sort key per group: listed uses major-to-minor,
  // remaining bits minor-most in original order.
  int b = table.count_bits();
  uint64_t covered = 0;
  std::vector<uint64_t> masks;
  for (size_t u : use_order) {
    uint64_t m = table.ReducedMask(u);
    masks.push_back(m);
    covered |= m;
  }
  uint64_t remaining = bits::LowMask(b) & ~covered;

  auto sort_key = [&](uint64_t key) {
    uint64_t out = 0;
    for (uint64_t m : masks) {
      out = (out << bits::Ones(m)) | bits::ExtractBits(key, m);
    }
    out = (out << bits::Ones(remaining)) | bits::ExtractBits(key, remaining);
    return out;
  };
  std::stable_sort(groups.begin(), groups.end(),
                   [&](const GroupRange& x, const GroupRange& y) {
                     return sort_key(x.key) < sort_key(y.key);
                   });
  return groups;
}

std::vector<GroupRange> FilterGroupsByPrefix(const BdccTable& table,
                                             std::vector<GroupRange> groups,
                                             size_t use_idx,
                                             uint64_t lo_prefix,
                                             uint64_t hi_prefix) {
  uint64_t mask = table.ReducedMask(use_idx);
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [&](const GroupRange& g) {
                                uint64_t v = bits::ExtractBits(g.key, mask);
                                return v < lo_prefix || v > hi_prefix;
                              }),
               groups.end());
  return groups;
}

uint64_t GroupValueOfUse(const BdccTable& table, size_t use_idx,
                         uint64_t group_key) {
  return bits::ExtractBits(group_key, table.ReducedMask(use_idx));
}

}  // namespace bdcc
