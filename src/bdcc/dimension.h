// BDCC Dimension (Definition 1 of the paper).
//
// A dimension D = <T, K, S> is an order-respecting surjective mapping from
// the dimension key K of table T onto bin numbers. Properties (paper):
//   (i)   bin numbers ascend,
//   (ii)  bins never overlap,
//   (iii) bins are value-ordered (MAX(V_i) < MIN(V_j) for i<j),
//   (iv)  a bin is unique if it holds a single value,
//   (v)   bin_D(v) = n_i for v in V_i,
//   (vi)  bits(D) = ceil(log2 |S|) is the granularity,
//   (vii) D|g chops the (bits(D)-g) least significant bits of all bin
//         numbers and unites bins that collide.
//
// Bin numbers are *spread* over the full 2^bits(D) range
// (n_i = floor(i * 2^bits / m)) so that granularity reduction (vii) unites
// roughly equal-frequency neighbor bins — the behaviour the paper's
// frequency-balanced dimension creation [4] relies on.
#ifndef BDCC_BDCC_DIMENSION_H_
#define BDCC_BDCC_DIMENSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace bdcc {

/// Multi-attribute dimension key value (lexicographic order).
using CompositeValue = std::vector<Value>;

/// Three-way lexicographic comparison of composite values.
int CompareComposite(const CompositeValue& a, const CompositeValue& b);

/// \brief A BDCC dimension: named, hosted by a table, keyed by K(D), with a
/// finite ordered sequence of bins.
class Dimension {
 public:
  struct Bin {
    uint64_t number;          // n_i, strictly ascending, < 2^bits
    CompositeValue max_incl;  // MAX(V_i): inclusive upper boundary
    bool unique;              // |V_i| == 1
  };

  Dimension(std::string name, std::string table,
            std::vector<std::string> key_columns, int bits,
            std::vector<Bin> bins);

  const std::string& name() const { return name_; }
  /// T(D): the table hosting the dimension key.
  const std::string& table() const { return table_; }
  /// K(D).
  const std::vector<std::string>& key_columns() const { return key_columns_; }
  /// bits(D) (vi); may exceed ceil(log2 m) when headroom was requested.
  int bits() const { return bits_; }
  /// m(D) = |S|.
  size_t num_bins() const { return bins_.size(); }
  const Bin& bin(size_t i) const { return bins_[i]; }

  /// bin_D(v) (v): bin *number* of a composite value. Values above the last
  /// boundary clamp into the last bin (open-ended domains).
  uint64_t BinOf(const CompositeValue& value) const;

  /// Fast path for single integer-backed keys.
  bool HasIntFastPath() const { return !int_maxima_.empty(); }
  uint64_t BinOfInt(int64_t value) const;

  /// Index (0..m-1) of the bin with number `bin_number`'s prefix; used to
  /// translate a bin number back to its ordinal position.
  size_t OrdinalOfBinNumber(uint64_t bin_number) const;

  /// \brief The bin-number range [lo, hi] (inclusive) that covers all values
  /// in [lo_value, hi_value]; used by selection pushdown. Either side of the
  /// value range may be unbounded (nullptr).
  void BinRange(const CompositeValue* lo_value, const CompositeValue* hi_value,
                uint64_t* lo_bin, uint64_t* hi_bin) const;

  /// \brief Like BinRange, but bounds may be *prefixes* of the composite key
  /// (fewer attributes): lo extends with -inf, hi with +inf. This is how a
  /// region equi-selection maps to a consecutive D_NATION bin range (paper,
  /// Section IV). Returns false when the range is empty.
  bool BinRangePrefix(const CompositeValue* lo_prefix,
                      const CompositeValue* hi_prefix, uint64_t* lo_bin,
                      uint64_t* hi_bin) const;

  /// D|g (vii): reduced-granularity dimension (g < bits()).
  Result<Dimension> WithReducedGranularity(int g) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::string table_;
  std::vector<std::string> key_columns_;
  int bits_;
  std::vector<Bin> bins_;
  std::vector<int64_t> int_maxima_;  // fast path boundaries (single int key)
};

using DimensionPtr = std::shared_ptr<const Dimension>;

}  // namespace bdcc

#endif  // BDCC_BDCC_DIMENSION_H_
