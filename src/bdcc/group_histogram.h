// Per-granularity group-size analysis ("correlated dimensions" handling).
//
// During bulk load a piggy-backed aggregation computes, for every possible
// count-table granularity b <= B, a logarithmic group-size histogram
// (entry x counts groups of size in [2^x, 2^(x+1))). Correlated or
// hierarchical dimensions produce fewer/skewed groups ("puff pastry");
// Algorithm 1 reads these histograms to pick a granularity whose groups
// stay above the efficient random access size AR regardless.
#ifndef BDCC_BDCC_GROUP_HISTOGRAM_H_
#define BDCC_BDCC_GROUP_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace bdcc {

/// \brief Group sizes and log2 histograms for every granularity 0..B.
class GroupSizeAnalysis {
 public:
  GroupSizeAnalysis() = default;

  /// Build from keys sorted ascending at full granularity `full_bits`.
  static GroupSizeAnalysis Build(const std::vector<uint64_t>& sorted_keys,
                                 int full_bits);

  int full_bits() const { return full_bits_; }
  uint64_t total_rows() const { return total_rows_; }

  /// Number of non-empty groups at granularity b.
  uint64_t NumGroups(int b) const { return sizes_[b].size(); }

  /// Group sizes (tuple counts, key-ascending) at granularity b.
  const std::vector<uint64_t>& Sizes(int b) const { return sizes_[b]; }

  /// Log2 histogram at granularity b: hist[x] = #groups with size in
  /// [2^x, 2^(x+1)).
  std::vector<uint64_t> Histogram(int b) const;

  /// Fraction of *tuples* living in groups of at least `min_rows` tuples at
  /// granularity b (Algorithm 1's "most groups above AR" criterion,
  /// tuple-weighted so a few tiny groups cannot veto a granularity).
  double FractionInGroupsAtLeast(int b, uint64_t min_rows) const;

  /// Expected group count at b if dimensions were independent (2^b) vs.
  /// observed; a large gap signals correlation/hierarchy.
  double MissingGroupFactor(int b) const;

 private:
  int full_bits_ = 0;
  uint64_t total_rows_ = 0;
  // sizes_[b] = group sizes at granularity b (index 0..full_bits_).
  std::vector<std::vector<uint64_t>> sizes_;
};

}  // namespace bdcc

#endif  // BDCC_BDCC_GROUP_HISTOGRAM_H_
