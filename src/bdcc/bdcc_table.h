// BDCC table (Definition 4) and its builder (Algorithm 1).
//
// A BDCC table T_BDCC = <T, U_1..U_d, b> replaces source table T: every
// tuple gets an artificial `_bdcc_` key composed from the major bits of its
// dimension bin numbers (per-use masks), the table is stored sorted on that
// key, and a TCOUNT metadata table records group frequencies at a self-tuned
// reduced granularity b <= B.
#ifndef BDCC_BDCC_BDCC_TABLE_H_
#define BDCC_BDCC_BDCC_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "bdcc/count_table.h"
#include "bdcc/dimension_use.h"
#include "bdcc/group_histogram.h"
#include "bdcc/interleave.h"
#include "bdcc/self_tune.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/table.h"

namespace bdcc {

/// Name of the artificial clustering-key column.
inline constexpr const char* kBdccColumnName = "_bdcc_";

/// \brief Resolves table names and FK ids during dimension-path traversal.
class TableResolver {
 public:
  virtual ~TableResolver() = default;
  virtual Result<const Table*> GetTable(const std::string& name) const = 0;
  virtual Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const = 0;
};

struct BdccBuildOptions {
  interleave::Policy policy = interleave::Policy::kRoundRobinPerUse;
  /// Group id per use for the per-FK policy (see interleave::BuildMasks).
  std::vector<int> fk_groups;
  SelfTuneOptions tuning;
  /// Zone-map granularity for the clustered table (MinMax indexes).
  uint32_t zone_rows = 1024;
};

/// \brief A clustered, counted, zone-mapped BDCC table.
class BdccTable {
 public:
  const Table& data() const { return data_; }
  Table& mutable_data() { return data_; }
  const std::string& name() const { return data_.name(); }

  const std::vector<DimensionUse>& uses() const { return uses_; }
  /// B: full granularity the table was sorted at.
  int full_bits() const { return full_spec_.total_bits; }
  /// b: granularity of the count table (Algorithm 1's choice).
  int count_bits() const { return count_table_.count_bits(); }

  const interleave::InterleaveSpec& full_spec() const { return full_spec_; }
  /// Use mask reduced to count-table granularity.
  uint64_t ReducedMask(size_t use_idx) const;

  const CountTable& count_table() const { return count_table_; }
  CountTable& mutable_count_table() { return count_table_; }
  const GroupSizeAnalysis& analysis() const { return analysis_; }
  const SelfTuneDecision& decision() const { return decision_; }

  /// Index of the `_bdcc_` column in data().
  int bdcc_column_index() const { return bdcc_col_; }

  /// Logical tuple count (count-table total; the physical table may hold
  /// extra appended copies after small-group consolidation).
  uint64_t logical_rows() const { return count_table_.total_count(); }

  /// \brief Map a dimension bin-number range [lo_bin, hi_bin] (full bin
  /// numbers of use `use_idx`'s dimension) to the matching prefix range at
  /// the count-table granularity. Returns false if the use has zero bits at
  /// that granularity (no pruning possible).
  bool BinRangeToGroupPrefix(size_t use_idx, uint64_t lo_bin, uint64_t hi_bin,
                             uint64_t* lo_prefix, uint64_t* hi_prefix) const;

  std::string DescribeUses() const;

  /// \brief New version of this table with replacement storage and counts:
  /// same uses, masks, granularity and design metadata, different rows. The
  /// delta subsystem's merge publication path — the old version stays alive
  /// untouched for readers pinned to earlier snapshots. `data` must have the
  /// same column schema (including `_bdcc_`) and be sorted on the key.
  BdccTable WithData(Table data, CountTable counts) const;

 private:
  friend Result<BdccTable> BuildBdccTable(Table source,
                                          std::vector<DimensionUse> uses,
                                          const TableResolver& resolver,
                                          const BdccBuildOptions& options);
  explicit BdccTable(Table data) : data_(std::move(data)) {}

  Table data_;
  std::vector<DimensionUse> uses_;  // masks at full granularity B
  interleave::InterleaveSpec full_spec_;
  CountTable count_table_;
  GroupSizeAnalysis analysis_;
  SelfTuneDecision decision_;
  int bdcc_col_ = -1;
};

/// \brief Pull per-row values of the host table down a dimension path: given
/// one value per *host* row, returns one value per *context* row by chaining
/// FK lookups. Seeding with row ordinals yields a context-row -> host-row
/// mapping (used by dimension creation to histogram the union of tables).
Result<std::vector<uint64_t>> PropagateThroughPath(
    const Table& context, const DimensionPath& path,
    const std::string& host_table, const TableResolver& resolver,
    std::vector<uint64_t> host_values);

/// \brief Compute, for each row of `context`, the bin number of dimension
/// use `use` by traversing its FK path (exposed for testing).
Result<std::vector<uint64_t>> ComputeBinColumn(const Table& context,
                                               const DimensionUse& use,
                                               const TableResolver& resolver);

/// \brief Algorithm 1: build a round-robin (by default) clustered BDCC table
/// at maximal granularity, analyze group sizes, and keep TCOUNT at the
/// self-tuned granularity. The masks in `uses` are ignored on input and
/// assigned by the interleaving policy.
Result<BdccTable> BuildBdccTable(Table source, std::vector<DimensionUse> uses,
                                 const TableResolver& resolver,
                                 const BdccBuildOptions& options = {});

}  // namespace bdcc

#endif  // BDCC_BDCC_BDCC_TABLE_H_
