#include "bdcc/dimension_use.h"

#include "common/bits.h"

namespace bdcc {

std::string DimensionPath::ToString() const {
  if (fk_ids.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < fk_ids.size(); ++i) {
    if (i) out += ".";
    out += fk_ids[i];
  }
  return out;
}

DimensionPath DimensionPath::Prepend(const std::string& fk_id) const {
  DimensionPath out;
  out.fk_ids.reserve(fk_ids.size() + 1);
  out.fk_ids.push_back(fk_id);
  out.fk_ids.insert(out.fk_ids.end(), fk_ids.begin(), fk_ids.end());
  return out;
}

int DimensionUse::bits_used() const { return bits::Ones(mask); }

std::string DimensionUse::ToString(int key_width) const {
  return dimension->name() + " path=" + path.ToString() +
         " mask=" + bits::FormatMask(mask, key_width);
}

}  // namespace bdcc
