// Dimension creation (the binning algorithms of tech report [4]).
//
// Given the distinct values of a dimension key (with frequencies, gathered
// over the union of all tables that use the dimension), create balanced
// bins: unique bins when the domain fits the granularity cap, equal-
// frequency bins otherwise. Range binning is available for numeric keys.
#ifndef BDCC_BDCC_BINNING_H_
#define BDCC_BDCC_BINNING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bdcc/dimension.h"
#include "common/result.h"

namespace bdcc {
namespace binning {

struct BinningOptions {
  /// Cap on bits(D); the paper uses bits(D) <= 13 for TPC-H.
  int max_bits = 13;
  /// Extra bits of bin-number headroom for open-ended (growing) domains —
  /// e.g. date keys — so future values keep getting fresh bin numbers.
  int headroom_bits = 0;
};

/// A distinct key value with its observed frequency.
struct ValueFrequency {
  CompositeValue value;
  uint64_t count = 1;
};

/// \brief Create a dimension over sorted distinct `values`.
///
/// If the number of distinct values fits within 2^max_bits, every value gets
/// a unique bin; otherwise equal-frequency binning packs values into
/// 2^max_bits bins without ever splitting one value across bins.
Result<Dimension> CreateDimension(std::string name, std::string table,
                                  std::vector<std::string> key_columns,
                                  const std::vector<ValueFrequency>& values,
                                  const BinningOptions& options = {});

/// \brief Equal-width range binning over a numeric domain [lo, hi] with
/// 2^bits bins (the paper's Figure 1 dimension D3 style).
Result<Dimension> CreateRangeDimension(std::string name, std::string table,
                                       std::string key_column, int64_t lo,
                                       int64_t hi, int num_bits);

/// bits(D) chosen for `m` bins under `options` (exposed for tests):
/// min(max_bits, ceil(log2 m) + headroom).
int ChooseBits(uint64_t num_bins, const BinningOptions& options);

}  // namespace binning
}  // namespace bdcc

#endif  // BDCC_BDCC_BINNING_H_
