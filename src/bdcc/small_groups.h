// Small-group consolidation ("puff pastry" fix-up, Section III).
//
// After bulk load, the low percentage of data living in groups smaller than
// AR is copied and appended once more to the table, consecutively; the
// count table redirects those groups to the appended copies, so frequently
// re-accessed tiny groups share buffer-pool pages.
#ifndef BDCC_BDCC_SMALL_GROUPS_H_
#define BDCC_BDCC_SMALL_GROUPS_H_

#include <cstdint>

#include "bdcc/bdcc_table.h"
#include "common/result.h"

namespace bdcc {

struct ConsolidationStats {
  uint64_t groups_moved = 0;
  uint64_t rows_copied = 0;
  double data_fraction_moved = 0.0;
};

/// \brief Copy every group whose densest-column footprint is below
/// `options.efficient_access_bytes` to a consecutive region appended at the
/// end of the table, and redirect the count table there.
Result<ConsolidationStats> ConsolidateSmallGroups(
    BdccTable* table, const SelfTuneOptions& options);

}  // namespace bdcc

#endif  // BDCC_BDCC_SMALL_GROUPS_H_
