#include "bdcc/dimension.h"

#include <algorithm>

#include "common/bits.h"
#include "common/macros.h"

namespace bdcc {

int CompareComposite(const CompositeValue& a, const CompositeValue& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

Dimension::Dimension(std::string name, std::string table,
                     std::vector<std::string> key_columns, int bits,
                     std::vector<Bin> bins)
    : name_(std::move(name)),
      table_(std::move(table)),
      key_columns_(std::move(key_columns)),
      bits_(bits),
      bins_(std::move(bins)) {
  BDCC_CHECK_MSG(!bins_.empty(), "dimension needs at least one bin");
  BDCC_CHECK(bits_ >= bits::CeilLog2(bins_.size()));
  // Validate Definition 1 invariants (i)-(iii).
  for (size_t i = 1; i < bins_.size(); ++i) {
    BDCC_CHECK_MSG(bins_[i - 1].number < bins_[i].number,
                   "bin numbers must ascend");
    BDCC_CHECK_MSG(
        CompareComposite(bins_[i - 1].max_incl, bins_[i].max_incl) < 0,
        "bin boundaries must ascend");
  }
  BDCC_CHECK(bins_.back().number < (uint64_t{1} << bits_));
  // Int fast path when the key is a single integer-backed attribute.
  if (bins_[0].max_incl.size() == 1) {
    TypeId t = bins_[0].max_incl[0].type();
    if (t != TypeId::kString && t != TypeId::kFloat64) {
      int_maxima_.reserve(bins_.size());
      for (const Bin& b : bins_) {
        int_maxima_.push_back(b.max_incl[0].AsInt64());
      }
    }
  }
}

uint64_t Dimension::BinOf(const CompositeValue& value) const {
  if (HasIntFastPath() && value.size() == 1) {
    return BinOfInt(value[0].AsInt64());
  }
  // First bin whose max_incl >= value.
  auto it = std::lower_bound(
      bins_.begin(), bins_.end(), value,
      [](const Bin& bin, const CompositeValue& v) {
        return CompareComposite(bin.max_incl, v) < 0;
      });
  if (it == bins_.end()) --it;  // clamp above-domain values into last bin
  return it->number;
}

uint64_t Dimension::BinOfInt(int64_t value) const {
  BDCC_CHECK(!int_maxima_.empty());
  auto it = std::lower_bound(int_maxima_.begin(), int_maxima_.end(), value);
  size_t idx = (it == int_maxima_.end())
                   ? int_maxima_.size() - 1
                   : static_cast<size_t>(it - int_maxima_.begin());
  return bins_[idx].number;
}

size_t Dimension::OrdinalOfBinNumber(uint64_t bin_number) const {
  auto it = std::lower_bound(
      bins_.begin(), bins_.end(), bin_number,
      [](const Bin& bin, uint64_t n) { return bin.number < n; });
  if (it == bins_.end()) return bins_.size() - 1;
  return static_cast<size_t>(it - bins_.begin());
}

void Dimension::BinRange(const CompositeValue* lo_value,
                         const CompositeValue* hi_value, uint64_t* lo_bin,
                         uint64_t* hi_bin) const {
  *lo_bin = lo_value ? BinOf(*lo_value) : bins_.front().number;
  *hi_bin = hi_value ? BinOf(*hi_value) : bins_.back().number;
}

bool Dimension::BinRangePrefix(const CompositeValue* lo_prefix,
                               const CompositeValue* hi_prefix,
                               uint64_t* lo_bin, uint64_t* hi_bin) const {
  // Compare only the shared prefix length; a bin whose max equals the hi
  // prefix on those attributes may still contain matching values.
  auto prefix_cmp = [](const CompositeValue& a, const CompositeValue& b) {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c;
    }
    return 0;
  };
  size_t lo_idx = 0;
  if (lo_prefix != nullptr) {
    // First bin with max >= lo (-inf extension: prefix-equal counts as >=).
    auto it = std::lower_bound(
        bins_.begin(), bins_.end(), *lo_prefix,
        [&](const Bin& bin, const CompositeValue& v) {
          return prefix_cmp(bin.max_incl, v) < 0;
        });
    if (it == bins_.end()) return false;
    lo_idx = static_cast<size_t>(it - bins_.begin());
  }
  size_t hi_idx = bins_.size() - 1;
  if (hi_prefix != nullptr) {
    // First bin with max strictly greater than hi (+inf extension: prefix-
    // equal maxima still satisfy <= hi), then step back... but that bin may
    // itself contain values <= hi, so include it unless it starts beyond.
    auto it = std::upper_bound(
        bins_.begin(), bins_.end(), *hi_prefix,
        [&](const CompositeValue& v, const Bin& bin) {
          return prefix_cmp(v, bin.max_incl) < 0;
        });
    // `it` = first bin with max > hi-extended; that bin can still overlap
    // [.., hi] (its min may be <= hi), so include it.
    hi_idx = (it == bins_.end()) ? bins_.size() - 1
                                 : static_cast<size_t>(it - bins_.begin());
  }
  if (hi_idx < lo_idx) return false;
  *lo_bin = bins_[lo_idx].number;
  *hi_bin = bins_[hi_idx].number;
  return true;
}

Result<Dimension> Dimension::WithReducedGranularity(int g) const {
  if (g < 0 || g >= bits_) {
    return Status::InvalidArgument("reduced granularity must be in [0, bits)");
  }
  int chop = bits_ - g;
  std::vector<Bin> reduced;
  for (const Bin& b : bins_) {
    uint64_t number = b.number >> chop;
    if (!reduced.empty() && reduced.back().number == number) {
      // Unite: extend boundary; united bin is unique only if it stays single.
      reduced.back().max_incl = b.max_incl;
      reduced.back().unique = false;
    } else {
      reduced.push_back(Bin{number, b.max_incl, b.unique});
    }
  }
  return Dimension(name_ + "|" + std::to_string(g), table_, key_columns_, g,
                   std::move(reduced));
}

std::string Dimension::ToString() const {
  std::string out = name_ + "(" + table_ + ": ";
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (i) out += ",";
    out += key_columns_[i];
  }
  out += ") bits=" + std::to_string(bits_) +
         " bins=" + std::to_string(bins_.size());
  return out;
}

}  // namespace bdcc
