#include "bdcc/small_groups.h"

#include <cmath>

namespace bdcc {

Result<ConsolidationStats> ConsolidateSmallGroups(
    BdccTable* table, const SelfTuneOptions& options) {
  BDCC_CHECK(table != nullptr);
  ConsolidationStats stats;
  double density = table->decision().densest_bytes_per_row;
  if (density <= 0) {
    density = DensestColumnBytesPerRow(table->data(), nullptr);
  }
  uint64_t min_rows = 1;
  if (density > 0) {
    min_rows = static_cast<uint64_t>(std::ceil(
        static_cast<double>(options.efficient_access_bytes) / density));
  }

  Table& data = table->mutable_data();
  CountTable& ct = table->mutable_count_table();
  uint64_t logical = table->logical_rows();
  // Snapshot: appended rows must be gathered from the *original* region, so
  // collect the ranges first, then append.
  struct Move {
    size_t entry;
    uint64_t begin;
    uint64_t count;
  };
  std::vector<Move> moves;
  for (size_t i = 0; i < ct.num_groups(); ++i) {
    const CountEntry& e = ct.entry(i);
    if (e.count < min_rows) {
      moves.push_back(Move{i, e.row_begin, e.count});
    }
  }
  if (moves.empty()) return stats;

  uint64_t append_at = data.num_rows();
  for (const Move& m : moves) {
    data.AppendRowsFrom(data, m.begin, m.begin + m.count);
    ct.Redirect(m.entry, append_at);
    append_at += m.count;
    stats.rows_copied += m.count;
  }
  stats.groups_moved = moves.size();
  stats.data_fraction_moved =
      logical == 0 ? 0.0
                   : static_cast<double>(stats.rows_copied) /
                         static_cast<double>(logical);
  // Physical layout changed; refresh the MinMax indexes (and the encoded
  // mirrors the appends above invalidated).
  data.BuildZoneMaps(data.zone_rows() == 0 ? 1024 : data.zone_rows());
  data.BuildEncodedLanes();
  return stats;
}

}  // namespace bdcc
