#include "bdcc/bdcc_table.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/bits.h"

namespace bdcc {

namespace {

// Encode a (1 or 2)-column integer key of `table` at `row` into a uint64.
// Two-column keys must both be int32-backed (packed high/low).
Result<uint64_t> EncodeKey(const Table& table, const std::vector<int>& cols,
                           uint64_t row) {
  if (cols.size() == 1) {
    const Column& c = table.column(cols[0]);
    if (c.type() == TypeId::kInt64) {
      return static_cast<uint64_t>(c.i64()[row]);
    }
    if (IsI32Backed(c.type()) || c.type() == TypeId::kString) {
      return static_cast<uint64_t>(static_cast<uint32_t>(c.i32()[row]));
    }
    return Status::NotImplemented("FK key over float column");
  }
  if (cols.size() == 2) {
    const Column& a = table.column(cols[0]);
    const Column& b = table.column(cols[1]);
    if (!IsI32Backed(a.type()) || !IsI32Backed(b.type())) {
      return Status::NotImplemented("composite FK keys must be int32-backed");
    }
    return (static_cast<uint64_t>(static_cast<uint32_t>(a.i32()[row])) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(b.i32()[row]));
  }
  return Status::NotImplemented("FK keys wider than 2 columns");
}

Result<std::vector<int>> ColumnIndices(const Table& table,
                                       const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    BDCC_ASSIGN_OR_RETURN(int idx, table.ColumnIndex(n));
    out.push_back(idx);
  }
  return out;
}

// Bin numbers for every row of the dimension's host table.
Result<std::vector<uint64_t>> HostBins(const Table& host,
                                       const Dimension& dim) {
  BDCC_ASSIGN_OR_RETURN(std::vector<int> key_cols,
                        ColumnIndices(host, dim.key_columns()));
  uint64_t rows = host.num_rows();
  std::vector<uint64_t> bins(rows);
  if (dim.HasIntFastPath() && key_cols.size() == 1 &&
      host.column(key_cols[0]).type() != TypeId::kString) {
    const Column& c = host.column(key_cols[0]);
    if (c.type() == TypeId::kInt64) {
      for (uint64_t r = 0; r < rows; ++r) bins[r] = dim.BinOfInt(c.i64()[r]);
    } else {
      for (uint64_t r = 0; r < rows; ++r) bins[r] = dim.BinOfInt(c.i32()[r]);
    }
    return bins;
  }
  // Generic path (string or composite keys).
  for (uint64_t r = 0; r < rows; ++r) {
    CompositeValue v;
    v.reserve(key_cols.size());
    for (int idx : key_cols) v.push_back(host.column(idx).GetValue(r));
    bins[r] = dim.BinOf(v);
  }
  return bins;
}

}  // namespace

Result<std::vector<uint64_t>> PropagateThroughPath(
    const Table& context, const DimensionPath& path,
    const std::string& host_table, const TableResolver& resolver,
    std::vector<uint64_t> host_values) {
  // Resolve the chain of tables along the path.
  std::vector<const catalog::ForeignKey*> fks;
  for (const std::string& id : path.fk_ids) {
    BDCC_ASSIGN_OR_RETURN(const catalog::ForeignKey* fk,
                          resolver.GetForeignKey(id));
    fks.push_back(fk);
  }
  // Validate chain endpoints.
  std::string expected = context.name();
  for (const catalog::ForeignKey* fk : fks) {
    if (fk->from_table != expected) {
      return Status::InvalidArgument("dimension path broken at " + fk->id +
                                     ": expected from-table " + expected);
    }
    expected = fk->to_table;
  }
  if (expected != host_table) {
    return Status::InvalidArgument("dimension path does not end at " +
                                   host_table);
  }

  std::vector<uint64_t> bins = std::move(host_values);
  for (size_t step = fks.size(); step-- > 0;) {
    const catalog::ForeignKey* fk = fks[step];
    BDCC_ASSIGN_OR_RETURN(const Table* to, resolver.GetTable(fk->to_table));
    const Table* from = nullptr;
    if (step == 0) {
      from = &context;
    } else {
      BDCC_ASSIGN_OR_RETURN(from, resolver.GetTable(fk->from_table));
    }
    BDCC_ASSIGN_OR_RETURN(std::vector<int> to_cols,
                          ColumnIndices(*to, fk->to_columns));
    BDCC_ASSIGN_OR_RETURN(std::vector<int> from_cols,
                          ColumnIndices(*from, fk->from_columns));
    // Map referenced-key -> bin.
    std::unordered_map<uint64_t, uint64_t> key_to_bin;
    key_to_bin.reserve(to->num_rows() * 2);
    for (uint64_t r = 0; r < to->num_rows(); ++r) {
      BDCC_ASSIGN_OR_RETURN(uint64_t key, EncodeKey(*to, to_cols, r));
      key_to_bin[key] = bins[r];
    }
    std::vector<uint64_t> next(from->num_rows());
    for (uint64_t r = 0; r < from->num_rows(); ++r) {
      BDCC_ASSIGN_OR_RETURN(uint64_t key, EncodeKey(*from, from_cols, r));
      auto it = key_to_bin.find(key);
      if (it == key_to_bin.end()) {
        return Status::InvalidArgument(
            "dangling foreign key " + fk->id + " in row " +
            std::to_string(r) + " of " + from->name());
      }
      next[r] = it->second;
    }
    bins = std::move(next);
  }
  return bins;
}

Result<std::vector<uint64_t>> ComputeBinColumn(const Table& context,
                                               const DimensionUse& use,
                                               const TableResolver& resolver) {
  const Dimension& dim = *use.dimension;
  BDCC_ASSIGN_OR_RETURN(const Table* host, resolver.GetTable(dim.table()));
  BDCC_ASSIGN_OR_RETURN(std::vector<uint64_t> host_bins,
                        HostBins(*host, dim));
  return PropagateThroughPath(context, use.path, dim.table(), resolver,
                              std::move(host_bins));
}

uint64_t BdccTable::ReducedMask(size_t use_idx) const {
  BDCC_CHECK(use_idx < uses_.size());
  return uses_[use_idx].mask >> (full_bits() - count_bits());
}

bool BdccTable::BinRangeToGroupPrefix(size_t use_idx, uint64_t lo_bin,
                                      uint64_t hi_bin, uint64_t* lo_prefix,
                                      uint64_t* hi_prefix) const {
  uint64_t reduced = ReducedMask(use_idx);
  int used = bits::Ones(reduced);
  if (used == 0) return false;
  int dim_bits = uses_[use_idx].dimension->bits();
  *lo_prefix = lo_bin >> (dim_bits - used);
  *hi_prefix = hi_bin >> (dim_bits - used);
  return true;
}

std::string BdccTable::DescribeUses() const {
  std::string out;
  for (const DimensionUse& u : uses_) {
    out += "  " + u.ToString(full_bits()) + "\n";
  }
  return out;
}

BdccTable BdccTable::WithData(Table data, CountTable counts) const {
  BDCC_CHECK(data.num_columns() == data_.num_columns());
  BdccTable out(std::move(data));
  out.uses_ = uses_;
  out.full_spec_ = full_spec_;
  out.count_table_ = std::move(counts);
  // The group-size analysis describes the build-time distribution; it only
  // feeds reporting and the (rebuild-time) self-tune decision, so the copy
  // staying slightly stale is fine.
  out.analysis_ = analysis_;
  out.decision_ = decision_;
  out.bdcc_col_ = bdcc_col_;
  return out;
}

Result<BdccTable> BuildBdccTable(Table source, std::vector<DimensionUse> uses,
                                 const TableResolver& resolver,
                                 const BdccBuildOptions& options) {
  if (uses.empty()) {
    return Status::InvalidArgument("BDCC table needs at least one use");
  }
  if (source.HasColumn(kBdccColumnName)) {
    return Status::InvalidArgument("source already has a _bdcc_ column");
  }

  // (i) Assign masks at maximal granularity B = sum bits(D(U_i)).
  std::vector<int> use_bits;
  use_bits.reserve(uses.size());
  for (const DimensionUse& u : uses) use_bits.push_back(u.dimension->bits());
  BDCC_ASSIGN_OR_RETURN(
      interleave::InterleaveSpec spec,
      interleave::BuildMasks(use_bits, options.policy, options.fk_groups));
  for (size_t i = 0; i < uses.size(); ++i) uses[i].mask = spec.masks[i];

  // Per-row bin numbers for every use (FK-path resolution).
  std::vector<std::vector<uint64_t>> bin_columns;
  bin_columns.reserve(uses.size());
  for (const DimensionUse& u : uses) {
    BDCC_ASSIGN_OR_RETURN(std::vector<uint64_t> bins,
                          ComputeBinColumn(source, u, resolver));
    bin_columns.push_back(std::move(bins));
  }

  // (ii) Compose keys at granularity B and sort the table on them.
  uint64_t rows = source.num_rows();
  std::vector<uint64_t> keys(rows);
  {
    std::vector<uint64_t> bins(uses.size());
    for (uint64_t r = 0; r < rows; ++r) {
      for (size_t u = 0; u < uses.size(); ++u) bins[u] = bin_columns[u][r];
      keys[r] = interleave::ComposeKey(bins.data(), use_bits.data(), spec);
    }
  }
  std::vector<uint32_t> perm(rows);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] < keys[b];
  });
  Table sorted = source.ApplyPermutation(perm);
  std::vector<uint64_t> sorted_keys(rows);
  for (uint64_t i = 0; i < rows; ++i) sorted_keys[i] = keys[perm[i]];

  // (ii, piggy-backed) group-size analysis at every granularity, and
  // (iii) the self-tuned count granularity — decided against the *data*
  // columns' densest (the paper's l_comment), before the artificial key
  // column is appended.
  GroupSizeAnalysis analysis =
      GroupSizeAnalysis::Build(sorted_keys, spec.total_bits);
  SelfTuneDecision decision =
      ChooseCountGranularity(analysis, sorted, options.tuning);

  Column bdcc_col(TypeId::kInt64);
  bdcc_col.Reserve(rows);
  for (uint64_t k : sorted_keys) {
    bdcc_col.AppendInt64(static_cast<int64_t>(k));
  }
  BDCC_RETURN_NOT_OK(sorted.AddColumn(kBdccColumnName, std::move(bdcc_col)));

  BdccTable out(std::move(sorted));
  out.bdcc_col_ = static_cast<int>(out.data_.num_columns()) - 1;
  out.uses_ = std::move(uses);
  out.full_spec_ = spec;
  out.analysis_ = std::move(analysis);
  out.decision_ = std::move(decision);

  // (iv) TCOUNT at the reduced granularity.
  out.count_table_ =
      CountTable::Build(sorted_keys, spec.total_bits, out.decision_.chosen_bits);

  // MinMax indexes over the clustered layout, then encoded mirrors of the
  // i32-backed lanes (clustering makes runs long, so RLE bites here).
  out.data_.BuildZoneMaps(options.zone_rows);
  out.data_.BuildEncodedLanes();
  return out;
}

}  // namespace bdcc
