// Dimension paths (Definition 2) and dimension uses (Definition 3).
#ifndef BDCC_BDCC_DIMENSION_USE_H_
#define BDCC_BDCC_DIMENSION_USE_H_

#include <string>
#include <vector>

#include "bdcc/dimension.h"

namespace bdcc {

/// \brief A (possibly empty) chain of foreign-key traversals from a context
/// table to the table hosting a dimension key (Definition 2). Stored as FK
/// identifiers, e.g. {"FK_L_O", "FK_O_C", "FK_C_N"}.
struct DimensionPath {
  std::vector<std::string> fk_ids;

  bool IsLocal() const { return fk_ids.empty(); }
  size_t Length() const { return fk_ids.size(); }

  /// Paper notation: "FK_L_O.FK_O_C.FK_C_N"; "-" for a local dimension.
  std::string ToString() const;

  /// New path with `fk_id` prepended (Algorithm 2's P = FK_T_Tfk . P_fk).
  DimensionPath Prepend(const std::string& fk_id) const;

  bool operator==(const DimensionPath& other) const {
    return fk_ids == other.fk_ids;
  }
};

/// \brief A dimension use U = <D, P, M> (Definition 3): how a table uses a
/// dimension for clustering. The mask M positions the dimension's bits
/// inside the table's `_bdcc_` key; ones(M) <= bits(D).
struct DimensionUse {
  DimensionPtr dimension;
  DimensionPath path;
  uint64_t mask = 0;  // assigned by interleaving (over the full key width)

  int bits_used() const;
  std::string ToString(int key_width) const;

  /// Two uses of the *same* dimension over *different* paths are logically
  /// different dimensions (paper: LINEITEM uses D_NATION twice).
  bool SameLogicalDimension(const DimensionUse& other) const {
    return dimension->name() == other.dimension->name() &&
           path == other.path;
  }
};

}  // namespace bdcc

#endif  // BDCC_BDCC_DIMENSION_USE_H_
