#include "bdcc/interleave.h"

#include <algorithm>
#include <numeric>

#include "common/bits.h"
#include "common/macros.h"

namespace bdcc {
namespace interleave {

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kRoundRobinPerUse:
      return "round-robin";
    case Policy::kRoundRobinPerForeignKey:
      return "round-robin-per-fk";
    case Policy::kMajorMinor:
      return "major-minor";
  }
  return "?";
}

namespace {

Result<InterleaveSpec> RoundRobinPerUse(const std::vector<int>& use_bits) {
  int total = std::accumulate(use_bits.begin(), use_bits.end(), 0);
  InterleaveSpec spec;
  spec.total_bits = total;
  spec.masks.assign(use_bits.size(), 0);
  std::vector<int> assigned(use_bits.size(), 0);
  int position = total - 1;  // next (major-most) free position
  while (position >= 0) {
    bool progressed = false;
    for (size_t u = 0; u < use_bits.size() && position >= 0; ++u) {
      if (assigned[u] < use_bits[u]) {
        spec.masks[u] |= uint64_t{1} << position;
        --position;
        ++assigned[u];
        progressed = true;
      }
    }
    BDCC_CHECK(progressed);
  }
  return spec;
}

Result<InterleaveSpec> RoundRobinPerFk(const std::vector<int>& use_bits,
                                       const std::vector<int>& fk_groups) {
  if (fk_groups.size() != use_bits.size()) {
    return Status::InvalidArgument(
        "per-fk interleaving needs one group id per use");
  }
  int total = std::accumulate(use_bits.begin(), use_bits.end(), 0);
  InterleaveSpec spec;
  spec.total_bits = total;
  spec.masks.assign(use_bits.size(), 0);
  std::vector<int> assigned(use_bits.size(), 0);

  // Distinct groups in first-appearance order.
  std::vector<int> groups;
  for (int g : fk_groups) {
    if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
      groups.push_back(g);
    }
  }
  // Per-group rotating cursor over its member uses.
  std::vector<size_t> cursor(groups.size(), 0);

  int position = total - 1;
  while (position >= 0) {
    bool progressed = false;
    for (size_t gi = 0; gi < groups.size() && position >= 0; ++gi) {
      // Members of this group with remaining bits.
      std::vector<size_t> members;
      for (size_t u = 0; u < use_bits.size(); ++u) {
        if (fk_groups[u] == groups[gi] && assigned[u] < use_bits[u]) {
          members.push_back(u);
        }
      }
      if (members.empty()) continue;
      size_t pick = members[cursor[gi] % members.size()];
      ++cursor[gi];
      spec.masks[pick] |= uint64_t{1} << position;
      --position;
      ++assigned[pick];
      progressed = true;
    }
    if (!progressed) break;
  }
  BDCC_CHECK(position < 0);
  return spec;
}

InterleaveSpec MajorMinor(const std::vector<int>& use_bits) {
  int total = std::accumulate(use_bits.begin(), use_bits.end(), 0);
  InterleaveSpec spec;
  spec.total_bits = total;
  spec.masks.assign(use_bits.size(), 0);
  int position = total - 1;
  for (size_t u = 0; u < use_bits.size(); ++u) {
    for (int b = 0; b < use_bits[u]; ++b) {
      spec.masks[u] |= uint64_t{1} << position;
      --position;
    }
  }
  return spec;
}

}  // namespace

Result<InterleaveSpec> BuildMasks(const std::vector<int>& use_bits,
                                  Policy policy,
                                  const std::vector<int>& fk_groups) {
  if (use_bits.empty()) {
    return Status::InvalidArgument("no dimension uses to interleave");
  }
  int total = 0;
  for (int b : use_bits) {
    if (b < 1) return Status::InvalidArgument("every use needs >= 1 bit");
    total += b;
  }
  if (total > 63) {
    return Status::InvalidArgument(
        "total key width > 63 bits is unsupported");
  }
  switch (policy) {
    case Policy::kRoundRobinPerUse:
      return RoundRobinPerUse(use_bits);
    case Policy::kRoundRobinPerForeignKey:
      return RoundRobinPerFk(use_bits, fk_groups);
    case Policy::kMajorMinor:
      return MajorMinor(use_bits);
  }
  return Status::InvalidArgument("unknown policy");
}

InterleaveSpec Reduce(const InterleaveSpec& spec, int new_total_bits) {
  BDCC_CHECK(new_total_bits >= 0 && new_total_bits <= spec.total_bits);
  int shift = spec.total_bits - new_total_bits;
  InterleaveSpec out;
  out.total_bits = new_total_bits;
  out.masks.reserve(spec.masks.size());
  for (uint64_t m : spec.masks) out.masks.push_back(m >> shift);
  return out;
}

uint64_t ComposeKey(const uint64_t* bins, const int* dim_bits,
                    const InterleaveSpec& spec) {
  uint64_t key = 0;
  for (size_t u = 0; u < spec.masks.size(); ++u) {
    int used = bits::Ones(spec.masks[u]);
    // Major `used` bits of the bin number.
    uint64_t prefix = bins[u] >> (dim_bits[u] - used);
    key |= bits::SpreadBits(prefix, spec.masks[u]);
  }
  return key;
}

uint64_t ExtractUseBits(uint64_t key, uint64_t mask) {
  return bits::ExtractBits(key, mask);
}

}  // namespace interleave
}  // namespace bdcc
