#include "bdcc/append.h"

#include <algorithm>
#include <numeric>

namespace bdcc {

Result<std::vector<uint64_t>> ComputeBdccKeys(const BdccTable& table,
                                              const Table& new_rows,
                                              const TableResolver& resolver) {
  if (new_rows.name() != table.name()) {
    return Status::InvalidArgument(
        "appended rows must carry the table's name (dimension paths are "
        "anchored at it)");
  }
  // Keys for the new tuples: per-use bins down the FK paths, composed with
  // the table's existing masks (Definition 4 — independent of old data).
  std::vector<std::vector<uint64_t>> bins;
  std::vector<int> dim_bits;
  for (const DimensionUse& use : table.uses()) {
    BDCC_ASSIGN_OR_RETURN(std::vector<uint64_t> b,
                          ComputeBinColumn(new_rows, use, resolver));
    bins.push_back(std::move(b));
    dim_bits.push_back(use.dimension->bits());
  }
  uint64_t n_new = new_rows.num_rows();
  std::vector<uint64_t> new_keys(n_new);
  std::vector<uint64_t> row_bins(bins.size());
  for (uint64_t r = 0; r < n_new; ++r) {
    for (size_t u = 0; u < bins.size(); ++u) row_bins[u] = bins[u][r];
    new_keys[r] = interleave::ComposeKey(row_bins.data(), dim_bits.data(),
                                         table.full_spec());
  }
  return new_keys;
}

Result<AppendStats> AppendToBdccTable(BdccTable* table, const Table& new_rows,
                                      const TableResolver& resolver) {
  BDCC_CHECK(table != nullptr);
  if (new_rows.name() != table->name()) {
    return Status::InvalidArgument(
        "appended rows must carry the table's name (dimension paths are "
        "anchored at it)");
  }
  if (table->data().num_rows() != table->logical_rows()) {
    return Status::InvalidArgument(
        "append after small-group consolidation is not supported; rebuild");
  }
  if (new_rows.num_columns() + 1 != table->data().num_columns()) {
    return Status::InvalidArgument("appended rows have a different schema");
  }
  AppendStats stats;
  stats.rows_appended = new_rows.num_rows();
  stats.groups_before = table->count_table().num_groups();
  if (new_rows.num_rows() == 0) {
    stats.groups_after = stats.groups_before;
    return stats;
  }

  BDCC_ASSIGN_OR_RETURN(std::vector<uint64_t> new_keys,
                        ComputeBdccKeys(*table, new_rows, resolver));
  uint64_t n_new = new_rows.num_rows();

  // Stage the new rows with their key column, then merge-sort everything.
  Table staged = new_rows.Clone();
  Column key_col(TypeId::kInt64);
  key_col.Reserve(n_new);
  for (uint64_t k : new_keys) key_col.AppendInt64(static_cast<int64_t>(k));
  BDCC_RETURN_NOT_OK(staged.AddColumn(kBdccColumnName, std::move(key_col)));

  Table combined = table->data().Clone();
  combined.AppendRowsFrom(staged, 0, staged.num_rows());

  uint64_t total = combined.num_rows();
  const auto& all_keys =
      combined.column(table->bdcc_column_index()).i64();
  std::vector<uint32_t> perm(total);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return static_cast<uint64_t>(all_keys[a]) <
           static_cast<uint64_t>(all_keys[b]);
  });
  Table merged = combined.ApplyPermutation(perm);

  std::vector<uint64_t> sorted_keys(total);
  {
    const auto& k = merged.column(table->bdcc_column_index()).i64();
    for (uint64_t i = 0; i < total; ++i) {
      sorted_keys[i] = static_cast<uint64_t>(k[i]);
    }
  }
  uint32_t zone_rows =
      table->data().HasZoneMaps() ? table->data().zone_rows() : 1024;
  merged.BuildZoneMaps(zone_rows);
  if (table->data().HasEncodedLanes()) merged.BuildEncodedLanes();

  int count_bits = table->count_bits();
  table->mutable_data() = std::move(merged);
  table->mutable_count_table() =
      CountTable::Build(sorted_keys, table->full_bits(), count_bits);
  stats.groups_after = table->count_table().num_groups();
  return stats;
}

}  // namespace bdcc
