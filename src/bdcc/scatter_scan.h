// BDCCscan planning: retrieve a BDCC table in any major-minor order of its
// interleaved dimensions, with offsets computed from TCOUNT.
//
// The scan emits group ranges tagged with the reduced `_bdcc_` key; query
// processing extracts per-use group identifiers from the key to drive
// sandwich operators [3]. For table A of the paper's Figure 1 this supports
// the orders (D1), (D2), (D1,D2), (D2,D1).
#ifndef BDCC_BDCC_SCATTER_SCAN_H_
#define BDCC_BDCC_SCATTER_SCAN_H_

#include <cstdint>
#include <vector>

#include "bdcc/bdcc_table.h"
#include "common/result.h"

namespace bdcc {

/// One group of consecutive tuples with equal (reduced) `_bdcc_` value.
struct GroupRange {
  uint64_t key = 0;        // reduced-granularity _bdcc_ value
  uint64_t row_begin = 0;  // physical rows [row_begin, row_end)
  uint64_t row_end = 0;
  uint32_t entry_index = 0;  // index into the count table
};

/// \brief Groups in natural (key-ascending) order — a sequential scan.
std::vector<GroupRange> PlanNaturalScan(const BdccTable& table);

/// \brief Groups ordered by the dimension uses listed in `use_order`
/// (major first). Bits of unlisted uses act as minor-most tiebreaks in
/// their original significance order.
Result<std::vector<GroupRange>> PlanScatterScan(
    const BdccTable& table, const std::vector<size_t>& use_order);

/// \brief Restrict `groups` to those whose use-`use_idx` prefix lies in
/// [lo_prefix, hi_prefix] (selection pushdown on a clustered dimension).
std::vector<GroupRange> FilterGroupsByPrefix(const BdccTable& table,
                                             std::vector<GroupRange> groups,
                                             size_t use_idx,
                                             uint64_t lo_prefix,
                                             uint64_t hi_prefix);

/// Extract the use's group identifier (bin-number prefix) from a group key.
uint64_t GroupValueOfUse(const BdccTable& table, size_t use_idx,
                         uint64_t group_key);

}  // namespace bdcc

#endif  // BDCC_BDCC_SCATTER_SCAN_H_
