// TCOUNT(_bdcc_, count): metadata table counting each bdcc value's
// frequency (Definition 4). Kept at a self-tuned reduced granularity so the
// BDCC scan can read it quickly; entries carry the physical start row so
// small-group consolidation can redirect groups to their appended copies.
#ifndef BDCC_BDCC_COUNT_TABLE_H_
#define BDCC_BDCC_COUNT_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace bdcc {

/// One non-empty group at the count-table granularity.
struct CountEntry {
  uint64_t key = 0;        // reduced-granularity _bdcc_ value
  uint64_t count = 0;      // tuples in the group
  uint64_t row_begin = 0;  // physical start row in the stored table
};

/// \brief Ordered list of non-empty groups with offsets.
class CountTable {
 public:
  CountTable() = default;

  /// Build from the table's sorted full-granularity keys, reducing from
  /// `full_bits` to `count_bits` (chop the difference).
  static CountTable Build(const std::vector<uint64_t>& sorted_keys,
                          int full_bits, int count_bits);

  int count_bits() const { return count_bits_; }
  size_t num_groups() const { return entries_.size(); }
  const CountEntry& entry(size_t i) const { return entries_[i]; }
  const std::vector<CountEntry>& entries() const { return entries_; }

  /// Total tuples across groups.
  uint64_t total_count() const { return total_; }

  /// Index of the first entry with key >= `key` (entries are key-ascending).
  size_t LowerBound(uint64_t key) const;

  /// Redirect group `i` to physical rows starting at `new_row_begin`
  /// (small-group consolidation).
  void Redirect(size_t i, uint64_t new_row_begin) {
    BDCC_CHECK(i < entries_.size());
    entries_[i].row_begin = new_row_begin;
  }

 private:
  int count_bits_ = 0;
  uint64_t total_ = 0;
  std::vector<CountEntry> entries_;
};

}  // namespace bdcc

#endif  // BDCC_BDCC_COUNT_TABLE_H_
