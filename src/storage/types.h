// Type system for the columnar storage and execution layers.
#ifndef BDCC_STORAGE_TYPES_H_
#define BDCC_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/macros.h"

namespace bdcc {

enum class TypeId : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
  kDate = 4,  // int32 days since 1970-01-01
  kBool = 5,
};

const char* TypeName(TypeId type);

/// Width in bytes of a value as stored on "disk" for density accounting.
/// Strings report their dictionary-code width; payload is accounted at the
/// dictionary. See Column::DiskBytes for the full accounting.
int FixedWidth(TypeId type);

/// True for the integer-backed types (stored in the i32 lane).
inline bool IsI32Backed(TypeId t) {
  return t == TypeId::kInt32 || t == TypeId::kDate || t == TypeId::kBool;
}

/// \brief A self-contained scalar used by zone maps, dimension bins, and
/// expression constants. Cheap to copy for numeric payloads.
class Value {
 public:
  Value() : type_(TypeId::kInt64), i_(0) {}
  static Value Int32(int32_t v) { return Value(TypeId::kInt32, v); }
  static Value Int64(int64_t v) { return Value(TypeId::kInt64, v); }
  static Value Float64(double v) {
    Value out;
    out.type_ = TypeId::kFloat64;
    out.d_ = v;
    return out;
  }
  static Value Date(int32_t days) { return Value(TypeId::kDate, days); }
  static Value Bool(bool v) { return Value(TypeId::kBool, v ? 1 : 0); }
  static Value String(std::string_view s) {
    Value out;
    out.type_ = TypeId::kString;
    out.s_ = std::string(s);
    return out;
  }

  TypeId type() const { return type_; }
  int64_t AsInt64() const {
    BDCC_CHECK(type_ != TypeId::kString && type_ != TypeId::kFloat64);
    return i_;
  }
  double AsDouble() const {
    if (type_ == TypeId::kFloat64) return d_;
    BDCC_CHECK(type_ != TypeId::kString);
    return static_cast<double>(i_);
  }
  const std::string& AsString() const {
    BDCC_CHECK(type_ == TypeId::kString);
    return s_;
  }

  /// Three-way comparison; both values must have compatible types
  /// (numeric types compare numerically; strings lexicographically).
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }

  std::string ToString() const;

 private:
  Value(TypeId type, int64_t i) : type_(type), i_(i) {}

  TypeId type_;
  int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
};

/// Days since 1970-01-01 for a proleptic Gregorian date (civil algorithm).
int32_t DaysFromCivil(int year, int month, int day);
/// Inverse of DaysFromCivil.
void CivilFromDays(int32_t days, int* year, int* month, int* day);
/// Render a date value as YYYY-MM-DD.
std::string DateToString(int32_t days);
/// Parse "YYYY-MM-DD".
int32_t ParseDate(std::string_view text);

}  // namespace bdcc

#endif  // BDCC_STORAGE_TYPES_H_
