#include "storage/column.h"

#include "storage/compression/encoded_column.h"

namespace bdcc {

Column::Column(TypeId type) : type_(type) {
  if (type == TypeId::kString) dict_ = std::make_shared<Dictionary>();
}

Column::Column(TypeId type, std::shared_ptr<Dictionary> dict)
    : type_(type), dict_(std::move(dict)) {
  BDCC_CHECK(type == TypeId::kString);
  BDCC_CHECK(dict_ != nullptr);
}

uint64_t Column::size() const {
  switch (type_) {
    case TypeId::kInt64:
      return i64_.size();
    case TypeId::kFloat64:
      return f64_.size();
    default:
      return i32_.size();
  }
}

void Column::Reserve(uint64_t rows) {
  switch (type_) {
    case TypeId::kInt64:
      i64_.reserve(rows);
      break;
    case TypeId::kFloat64:
      f64_.reserve(rows);
      break;
    default:
      i32_.reserve(rows);
      break;
  }
}

void Column::AppendInt32(int32_t v) {
  BDCC_CHECK(type_ == TypeId::kInt32);
  i32_.push_back(v);
}

void Column::AppendInt64(int64_t v) {
  BDCC_CHECK(type_ == TypeId::kInt64);
  i64_.push_back(v);
}

void Column::AppendFloat64(double v) {
  BDCC_CHECK(type_ == TypeId::kFloat64);
  f64_.push_back(v);
}

void Column::AppendDate(int32_t days) {
  BDCC_CHECK(type_ == TypeId::kDate);
  i32_.push_back(days);
}

void Column::AppendBool(bool v) {
  BDCC_CHECK(type_ == TypeId::kBool);
  i32_.push_back(v ? 1 : 0);
}

void Column::AppendString(std::string_view s) {
  BDCC_CHECK(type_ == TypeId::kString);
  i32_.push_back(dict_->GetOrAdd(s));
}

void Column::AppendValue(const Value& v) {
  switch (type_) {
    case TypeId::kInt32:
      AppendInt32(static_cast<int32_t>(v.AsInt64()));
      break;
    case TypeId::kInt64:
      AppendInt64(v.AsInt64());
      break;
    case TypeId::kFloat64:
      AppendFloat64(v.AsDouble());
      break;
    case TypeId::kDate:
      AppendDate(static_cast<int32_t>(v.AsInt64()));
      break;
    case TypeId::kBool:
      AppendBool(v.AsInt64() != 0);
      break;
    case TypeId::kString:
      AppendString(v.AsString());
      break;
  }
}

Value Column::GetValue(uint64_t row) const {
  switch (type_) {
    case TypeId::kInt32:
      return Value::Int32(i32_[row]);
    case TypeId::kInt64:
      return Value::Int64(i64_[row]);
    case TypeId::kFloat64:
      return Value::Float64(f64_[row]);
    case TypeId::kDate:
      return Value::Date(i32_[row]);
    case TypeId::kBool:
      return Value::Bool(i32_[row] != 0);
    case TypeId::kString:
      return Value::String(dict_->Get(i32_[row]));
  }
  return Value();
}

uint64_t Column::DiskBytes() const {
  uint64_t fixed = size() * static_cast<uint64_t>(FixedWidth(type_));
  if (type_ == TypeId::kString) fixed += dict_->payload_bytes();
  return fixed;
}

Column Column::Gather(const std::vector<uint32_t>& perm) const {
  Column out(type_);
  out.Reserve(perm.size());
  switch (type_) {
    case TypeId::kInt64:
      for (uint32_t idx : perm) out.i64_.push_back(i64_[idx]);
      break;
    case TypeId::kFloat64:
      for (uint32_t idx : perm) out.f64_.push_back(f64_[idx]);
      break;
    case TypeId::kString:
      // Re-intern in gathered order: string payloads end up laid out in the
      // new row order (first occurrence), as a real column store stores
      // them — scans of a reordered table stay sequential over the heap.
      for (uint32_t idx : perm) {
        out.i32_.push_back(out.dict_->GetOrAdd(dict_->Get(i32_[idx])));
      }
      break;
    default:
      for (uint32_t idx : perm) out.i32_.push_back(i32_[idx]);
      break;
  }
  return out;
}

void Column::BuildEncoded(uint32_t block_rows) {
  switch (type_) {
    case TypeId::kInt64:
    case TypeId::kFloat64:
      return;  // only i32-backed lanes (incl. string codes) have codecs
    default:
      break;
  }
  encoded_ = std::make_shared<const compression::EncodedLane>(
      compression::EncodedLane::Build(i32_.data(), i32_.size(), block_rows));
}

void Column::AppendFrom(const Column& other, uint64_t row) {
  BDCC_CHECK(type_ == other.type_);
  encoded_.reset();  // encoding is stale once the lane grows
  switch (type_) {
    case TypeId::kInt64:
      i64_.push_back(other.i64_[row]);
      break;
    case TypeId::kFloat64:
      f64_.push_back(other.f64_[row]);
      break;
    case TypeId::kString:
      if (dict_ == other.dict_) {
        i32_.push_back(other.i32_[row]);
      } else {
        i32_.push_back(dict_->GetOrAdd(other.GetString(row)));
      }
      break;
    default:
      i32_.push_back(other.i32_[row]);
      break;
  }
}

}  // namespace bdcc
