// Stored table: a named set of columns with shared row count, optional
// zone maps, and optional buffer-pool registration for I/O accounting.
#ifndef BDCC_STORAGE_TABLE_H_
#define BDCC_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "io/buffer_pool.h"
#include "storage/column.h"
#include "storage/zonemap.h"

namespace bdcc {

/// \brief Columnar table.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  BDCC_DISALLOW_COPY_AND_ASSIGN(Table);

  const std::string& name() const { return name_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Append a column; all columns must have equal length.
  Status AddColumn(std::string name, Column column);

  /// Index of column `name`, or error.
  Result<int> ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  const Column& column(int idx) const { return columns_[idx]; }
  Column& mutable_column(int idx) { return columns_[idx]; }
  const Column& ColumnByName(const std::string& name) const;
  const std::string& column_name(int idx) const { return names_[idx]; }

  /// Total uncompressed on-disk footprint (all columns).
  uint64_t DiskBytes() const;

  /// New table with rows permuted: row i of the result is row perm[i].
  Table ApplyPermutation(const std::vector<uint32_t>& perm) const;

  /// Append rows [begin, end) of `other` (same schema) to this table.
  /// Used by small-group consolidation to co-locate tiny BDCC groups.
  void AppendRowsFrom(const Table& other, uint64_t begin, uint64_t end);

  /// Deep copy of the data (string dictionaries are shared; they are
  /// append-only and clones never extend them through this handle).
  Table Clone() const;

  // -- Zone maps (MinMax indexes) --
  /// Build zone maps for every column at `zone_rows` granularity.
  void BuildZoneMaps(uint32_t zone_rows);
  bool HasZoneMaps() const { return zone_rows_ != 0; }
  uint32_t zone_rows() const { return zone_rows_; }
  /// Zone map of column idx (requires BuildZoneMaps).
  const ZoneMap& zone_map(int idx) const { return zone_maps_[idx]; }

  // -- Encoded lanes (direct execution over compressed data) --
  /// Build per-block encoded mirrors for every codec-eligible column.
  /// Blocks align with zone maps when present (zone_rows granularity) so a
  /// zone-clipped scan span never straddles an encoded block boundary.
  void BuildEncodedLanes();
  bool HasEncodedLanes() const { return has_encoded_lanes_; }

  // -- Buffer pool registration (I/O simulation) --
  /// Register every column with `pool`; scans then charge simulated I/O.
  void RegisterWithBufferPool(io::BufferPool* pool);
  bool HasIoHandles() const { return pool_ != nullptr; }
  io::BufferPool* buffer_pool() const { return pool_; }
  io::ColumnHandle io_handle(int idx) const { return io_handles_[idx]; }

 private:
  std::string name_;
  uint64_t num_rows_ = 0;
  std::vector<std::string> names_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, int> by_name_;
  uint32_t zone_rows_ = 0;
  std::vector<ZoneMap> zone_maps_;
  bool has_encoded_lanes_ = false;
  io::BufferPool* pool_ = nullptr;
  std::vector<io::ColumnHandle> io_handles_;
};

}  // namespace bdcc

#endif  // BDCC_STORAGE_TABLE_H_
