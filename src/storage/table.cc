#include "storage/table.h"

#include "storage/compression/encoded_column.h"

namespace bdcc {

Status Table::AddColumn(std::string name, Column column) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("column exists: " + name);
  }
  if (!columns_.empty() && column.size() != num_rows_) {
    return Status::InvalidArgument(
        "column " + name + " length mismatch in table " + name_);
  }
  num_rows_ = column.size();
  by_name_[name] = static_cast<int>(columns_.size());
  names_.push_back(std::move(name));
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<int> Table::ColumnIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no column " + name + " in table " + name_);
  }
  return it->second;
}

bool Table::HasColumn(const std::string& name) const {
  return by_name_.count(name) > 0;
}

const Column& Table::ColumnByName(const std::string& name) const {
  auto it = by_name_.find(name);
  BDCC_CHECK_MSG(it != by_name_.end(), name.c_str());
  return columns_[it->second];
}

uint64_t Table::DiskBytes() const {
  uint64_t total = 0;
  for (const Column& c : columns_) total += c.DiskBytes();
  return total;
}

Table Table::ApplyPermutation(const std::vector<uint32_t>& perm) const {
  BDCC_CHECK(perm.size() == num_rows_);
  Table out(name_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    Status st = out.AddColumn(names_[i], columns_[i].Gather(perm));
    st.AbortIfNotOK();
  }
  return out;
}

Table Table::Clone() const {
  std::vector<uint32_t> identity(num_rows_);
  for (uint64_t i = 0; i < num_rows_; ++i) {
    identity[i] = static_cast<uint32_t>(i);
  }
  return ApplyPermutation(identity);
}

void Table::AppendRowsFrom(const Table& other, uint64_t begin, uint64_t end) {
  BDCC_CHECK(other.num_columns() == num_columns());
  BDCC_CHECK(end <= other.num_rows() && begin <= end);
  has_encoded_lanes_ = false;  // appenders drop per-column encodings
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (uint64_t r = begin; r < end; ++r) {
      columns_[i].AppendFrom(other.columns_[i], r);
    }
  }
  num_rows_ += end - begin;
}

void Table::BuildZoneMaps(uint32_t zone_rows) {
  zone_rows_ = zone_rows;
  zone_maps_.clear();
  zone_maps_.reserve(columns_.size());
  for (const Column& c : columns_) {
    zone_maps_.push_back(ZoneMap::Build(c, zone_rows));
  }
}

void Table::BuildEncodedLanes() {
  uint32_t block_rows = zone_rows_ != 0
                            ? zone_rows_
                            : compression::EncodedLane::kDefaultBlockRows;
  for (Column& c : columns_) c.BuildEncoded(block_rows);
  has_encoded_lanes_ = true;
}

void Table::RegisterWithBufferPool(io::BufferPool* pool) {
  BDCC_CHECK(pool != nullptr);
  pool_ = pool;
  io_handles_.clear();
  io_handles_.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    io_handles_.push_back(pool->RegisterColumn(
        name_ + "." + names_[i], columns_[i].DiskBytes(), num_rows_));
  }
}

}  // namespace bdcc
