#include "storage/dictionary.h"

#include <algorithm>
#include <numeric>

namespace bdcc {

int32_t Dictionary::GetOrAdd(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  std::string_view stored = arena_.Intern(s);
  int32_t code = static_cast<int32_t>(entries_.size());
  entries_.push_back(stored);
  index_.emplace(stored, code);
  payload_bytes_ += stored.size();
  return code;
}

int32_t Dictionary::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

const std::vector<int32_t>& Dictionary::LexRanks() const {
  if (ranks_valid_for_ != entries_.size()) {
    std::vector<int32_t> order(entries_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      return entries_[static_cast<size_t>(a)] <
             entries_[static_cast<size_t>(b)];
    });
    lex_ranks_.assign(entries_.size(), 0);
    for (size_t rank = 0; rank < order.size(); ++rank) {
      lex_ranks_[static_cast<size_t>(order[rank])] =
          static_cast<int32_t>(rank);
    }
    ranks_valid_for_ = entries_.size();
  }
  return lex_ranks_;
}

}  // namespace bdcc
