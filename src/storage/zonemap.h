// MinMax (zone map) indexes.
//
// Vectorwise "automatically creates MinMax indices on each table" [8]; the
// paper relies on them for pushdown of predicates on attributes *correlated*
// with a clustered dimension (e.g. l_shipdate via o_orderdate locality).
// Zone maps exist identically in all three physical schemes; clustering is
// what makes them selective.
#ifndef BDCC_STORAGE_ZONEMAP_H_
#define BDCC_STORAGE_ZONEMAP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/column.h"
#include "storage/types.h"

namespace bdcc {

/// Inclusive value range; unset bounds mean unbounded.
struct ValueRange {
  std::optional<Value> lo;
  std::optional<Value> hi;

  bool Contains(const Value& v) const {
    if (lo && v.Compare(*lo) < 0) return false;
    if (hi && v.Compare(*hi) > 0) return false;
    return true;
  }
  /// Whether [zmin, zmax] intersects this range.
  bool Overlaps(const Value& zmin, const Value& zmax) const {
    if (lo && zmax.Compare(*lo) < 0) return false;
    if (hi && zmin.Compare(*hi) > 0) return false;
    return true;
  }
  /// Whether every value in [zmin, zmax] satisfies this range — the
  /// all-pass dual of Overlaps; lets scans skip evaluation entirely.
  bool Covers(const Value& zmin, const Value& zmax) const {
    if (lo && zmin.Compare(*lo) < 0) return false;
    if (hi && zmax.Compare(*hi) > 0) return false;
    return true;
  }
};

/// \brief Per-column MinMax summaries over fixed-size row zones.
class ZoneMap {
 public:
  ZoneMap() = default;

  /// Build from a column with `zone_rows` rows per zone.
  static ZoneMap Build(const Column& column, uint32_t zone_rows);

  uint32_t zone_rows() const { return zone_rows_; }
  uint64_t num_zones() const { return mins_.size(); }

  const Value& ZoneMin(uint64_t zone) const { return mins_[zone]; }
  const Value& ZoneMax(uint64_t zone) const { return maxs_[zone]; }

  /// Whether zone `zone` may contain values in `range`.
  bool MayMatch(uint64_t zone, const ValueRange& range) const {
    return range.Overlaps(mins_[zone], maxs_[zone]);
  }

  /// Whether *every* row of zone `zone` satisfies `range`.
  bool AllMatch(uint64_t zone, const ValueRange& range) const {
    return range.Covers(mins_[zone], maxs_[zone]);
  }

 private:
  uint32_t zone_rows_ = 0;
  std::vector<Value> mins_;
  std::vector<Value> maxs_;
};

}  // namespace bdcc

#endif  // BDCC_STORAGE_ZONEMAP_H_
