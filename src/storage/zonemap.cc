#include "storage/zonemap.h"

#include <algorithm>

namespace bdcc {

ZoneMap ZoneMap::Build(const Column& column, uint32_t zone_rows) {
  BDCC_CHECK(zone_rows > 0);
  ZoneMap zm;
  zm.zone_rows_ = zone_rows;
  uint64_t rows = column.size();
  uint64_t zones = (rows + zone_rows - 1) / zone_rows;
  zm.mins_.reserve(zones);
  zm.maxs_.reserve(zones);
  for (uint64_t z = 0; z < zones; ++z) {
    uint64_t begin = z * zone_rows;
    uint64_t end = std::min<uint64_t>(begin + zone_rows, rows);
    Value zmin = column.GetValue(begin);
    Value zmax = zmin;
    for (uint64_t r = begin + 1; r < end; ++r) {
      Value v = column.GetValue(r);
      if (v.Compare(zmin) < 0) zmin = v;
      if (v.Compare(zmax) > 0) zmax = v;
    }
    zm.mins_.push_back(std::move(zmin));
    zm.maxs_.push_back(std::move(zmax));
  }
  return zm;
}

}  // namespace bdcc
