// Insertion-ordered string dictionary with an order-preserving view.
#ifndef BDCC_STORAGE_DICTIONARY_H_
#define BDCC_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/macros.h"

namespace bdcc {

/// \brief Maps strings to dense int32 codes (insertion order).
///
/// Columns of TypeId::kString store codes; the dictionary owns the bytes.
/// BDCC dimensions on string keys need *value order*, which insertion codes
/// do not provide — SortedCodes() supplies the permutation lazily.
class Dictionary {
 public:
  Dictionary() = default;
  BDCC_DISALLOW_COPY_AND_ASSIGN(Dictionary);

  /// Intern `s`, returning its code (existing or fresh).
  int32_t GetOrAdd(std::string_view s);

  /// Code of `s` or -1 if absent.
  int32_t Find(std::string_view s) const;

  std::string_view Get(int32_t code) const {
    BDCC_CHECK(code >= 0 && static_cast<size_t>(code) < entries_.size());
    return entries_[static_cast<size_t>(code)];
  }

  int32_t size() const { return static_cast<int32_t>(entries_.size()); }

  /// Total bytes of string payload (for disk-size accounting).
  uint64_t payload_bytes() const { return payload_bytes_; }

  /// \brief rank[code] = position of the string in lexicographic order.
  /// Recomputed when the dictionary grew since the last call.
  const std::vector<int32_t>& LexRanks() const;

 private:
  Arena arena_;
  std::vector<std::string_view> entries_;
  std::unordered_map<std::string_view, int32_t> index_;
  uint64_t payload_bytes_ = 0;
  mutable std::vector<int32_t> lex_ranks_;
  mutable size_t ranks_valid_for_ = 0;
};

}  // namespace bdcc

#endif  // BDCC_STORAGE_DICTIONARY_H_
