#include "storage/compression/delta.h"

#include "common/macros.h"

namespace bdcc {
namespace compression {

namespace {
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
// Deltas wrap modulo 2^64: extreme operands overflow int64, but zigzag +
// the matching wrapping add in DeltaDecode round-trip every value.
uint64_t WrappingDelta(int64_t a, int64_t b) {
  return static_cast<uint64_t>(a) - static_cast<uint64_t>(b);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}
void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}
size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}
}  // namespace

std::vector<uint8_t> DeltaEncode(const int64_t* input, size_t count) {
  std::vector<uint8_t> out;
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    PutVarint(&out, ZigZag(static_cast<int64_t>(WrappingDelta(input[i], prev))));
    prev = input[i];
  }
  return out;
}

std::vector<int64_t> DeltaDecode(const uint8_t* data, size_t size,
                                 size_t expected_count) {
  std::vector<int64_t> out;
  out.reserve(expected_count);
  size_t off = 0;
  int64_t prev = 0;
  while (out.size() < expected_count) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      BDCC_CHECK(off < size);
      uint8_t byte = data[off++];
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                static_cast<uint64_t>(UnZigZag(v)));
    out.push_back(prev);
  }
  return out;
}

size_t DeltaEncodedSize(const int64_t* input, size_t count) {
  size_t total = 0;
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    total += VarintSize(
        ZigZag(static_cast<int64_t>(WrappingDelta(input[i], prev))));
    prev = input[i];
  }
  return total;
}

}  // namespace compression
}  // namespace bdcc
