#include "storage/compression/encoded_column.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"
#include "common/macros.h"
#include "exec/kernels/kernels.h"
#include "storage/compression/bitpack.h"

namespace bdcc {
namespace compression {

namespace {

// 8-byte window loads in Unpack may start at the last payload byte.
constexpr size_t kPackPad = 8;
constexpr size_t kUnpackChunk = 128;

// Unpack count values starting at value index start_idx, adding `base`.
void Unpack(const uint8_t* packed, uint64_t start_idx, size_t count,
            int width, int32_t base, int32_t* out) {
  uint64_t bitpos = start_idx * static_cast<uint64_t>(width);
  const uint64_t low = bits::LowMask(width);
  for (size_t i = 0; i < count; ++i) {
    uint64_t w;
    std::memcpy(&w, packed + (bitpos >> 3), 8);
    out[i] = base + static_cast<int32_t>((w >> (bitpos & 7)) & low);
    bitpos += static_cast<uint64_t>(width);
  }
}

using SpanVerdict = EncodedLane::SpanVerdict;

SpanVerdict VerdictOf(uint64_t pass, uint64_t total) {
  if (pass == total) return SpanVerdict::kAllPass;
  if (pass == 0) return SpanVerdict::kNonePass;
  return SpanVerdict::kMixed;
}

}  // namespace

EncodedLane EncodedLane::Build(const int32_t* lane, uint64_t rows,
                               uint32_t block_rows) {
  BDCC_CHECK(block_rows > 0);
  EncodedLane out;
  out.rows_ = rows;
  out.block_rows_ = block_rows;
  out.blocks_.reserve(static_cast<size_t>((rows + block_rows - 1) /
                                          block_rows));
  for (uint64_t at = 0; at < rows; at += block_rows) {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(block_rows, rows - at));
    const int32_t* v = lane + at;
    // One pass: run count for RLE, min/max for the FOR-bitpack width.
    size_t runs = 1;
    int32_t mn = v[0], mx = v[0];
    for (size_t i = 1; i < n; ++i) {
      runs += v[i] != v[i - 1];
      mn = std::min(mn, v[i]);
      mx = std::max(mx, v[i]);
    }
    size_t raw_size = n * 4;
    size_t rle_size = runs * 8;
    int width = bits::CeilLog2(
        static_cast<uint64_t>(static_cast<int64_t>(mx) - mn) + 1);
    if (width == 0) width = 1;
    size_t pack_size = width <= kMaxPackWidth ? BitPackedSize(n, width)
                                              : raw_size;

    Block b;
    b.row_begin = at;
    b.row_end = at + n;
    size_t best = raw_size;
    if (rle_size < best) {
      b.codec = Codec::kRle;
      best = rle_size;
    }
    if (width <= kMaxPackWidth && pack_size < best) {
      b.codec = Codec::kBitPack;
      best = pack_size;
    }
    switch (b.codec) {
      case Codec::kRle: {
        b.rle_values.reserve(runs);
        b.rle_ends.reserve(runs);
        size_t i = 0;
        while (i < n) {
          size_t j = i + 1;
          while (j < n && v[j] == v[i]) ++j;
          b.rle_values.push_back(v[i]);
          b.rle_ends.push_back(static_cast<uint32_t>(j));
          i = j;
        }
        break;
      }
      case Codec::kBitPack: {
        b.for_base = mn;
        b.bit_width = width;
        std::vector<uint32_t> shifted(n);
        for (size_t i = 0; i < n; ++i) {
          shifted[i] = static_cast<uint32_t>(
              static_cast<int64_t>(v[i]) - mn);
        }
        b.packed = BitPack(shifted.data(), n, width);
        b.packed.resize(b.packed.size() + kPackPad, 0);
        break;
      }
      default:
        break;  // raw: evaluate over the flat lane
    }
    out.blocks_by_codec_[static_cast<int>(b.codec)]++;
    out.encoded_bytes_ += best;
    out.blocks_.push_back(std::move(b));
  }
  return out;
}

template <typename Eval>
SpanVerdict EncodedLane::EvalBlocks(const int32_t* flat, uint64_t begin,
                                    uint64_t end, uint8_t* mask,
                                    Eval&& eval) const {
  BDCC_CHECK(end <= rows_ && begin <= end);
  bool all_pass = true, none_pass = true;
  uint64_t bi = begin / block_rows_;
  for (uint64_t cur = begin; cur < end;) {
    const Block& blk = blocks_[bi];
    uint64_t e = std::min<uint64_t>(end, blk.row_end);
    SpanVerdict v = eval(blk, cur, e, mask + (cur - begin));
    all_pass &= v == SpanVerdict::kAllPass;
    none_pass &= v == SpanVerdict::kNonePass;
    (void)flat;
    cur = e;
    ++bi;
  }
  if (all_pass && begin < end) return SpanVerdict::kAllPass;
  if (none_pass && begin < end) return SpanVerdict::kNonePass;
  return SpanVerdict::kMixed;
}

SpanVerdict EncodedLane::RangeMask(const int32_t* flat, uint64_t begin,
                                   uint64_t end, int32_t lo, int32_t hi,
                                   uint8_t* mask) const {
  return EvalBlocks(
      flat, begin, end, mask,
      [&](const Block& b, uint64_t s, uint64_t e,
          uint8_t* seg) -> SpanVerdict {
        size_t len = static_cast<size_t>(e - s);
        switch (b.codec) {
          case Codec::kRle: {
            // One comparison per run; failing runs zero their mask span
            // wholesale (run-granular selection).
            uint32_t rs = static_cast<uint32_t>(s - b.row_begin);
            uint32_t re = static_cast<uint32_t>(e - b.row_begin);
            size_t r = std::upper_bound(b.rle_ends.begin(),
                                        b.rle_ends.end(), rs) -
                       b.rle_ends.begin();
            uint64_t pass = 0;
            uint32_t cur = rs;
            while (cur < re) {
              uint32_t run_end = std::min(b.rle_ends[r], re);
              int32_t val = b.rle_values[r];
              if (val >= lo && val <= hi) {
                pass += run_end - cur;
              } else {
                std::memset(seg + (cur - rs), 0, run_end - cur);
              }
              cur = run_end;
              ++r;
            }
            return VerdictOf(pass, len);
          }
          case Codec::kBitPack: {
            // Compare in the packed (frame-of-reference) domain.
            int64_t pl = static_cast<int64_t>(lo) - b.for_base;
            int64_t ph = static_cast<int64_t>(hi) - b.for_base;
            int64_t pmax = (int64_t{1} << b.bit_width) - 1;
            if (ph < 0 || pl > pmax) {
              std::memset(seg, 0, len);
              return SpanVerdict::kNonePass;
            }
            if (pl <= 0 && ph >= pmax) return SpanVerdict::kAllPass;
            int32_t plo = static_cast<int32_t>(std::max<int64_t>(pl, 0));
            int32_t phi = static_cast<int32_t>(std::min(ph, pmax));
            int32_t buf[kUnpackChunk];
            uint64_t idx0 = s - b.row_begin;
            for (size_t off = 0; off < len; off += kUnpackChunk) {
              size_t m = std::min(kUnpackChunk, len - off);
              Unpack(b.packed.data(), idx0 + off, m, b.bit_width, 0, buf);
              exec::kernels::RangeMaskI32(buf, m, plo, phi, seg + off);
            }
            return SpanVerdict::kMixed;
          }
          default:
            exec::kernels::RangeMaskI32(flat + s, len, lo, hi, seg);
            return SpanVerdict::kMixed;
        }
      });
}

SpanVerdict EncodedLane::VerdictMask(const int32_t* flat, uint64_t begin,
                                     uint64_t end, const uint8_t* ok,
                                     size_t num_codes, uint8_t* mask) const {
  return EvalBlocks(
      flat, begin, end, mask,
      [&](const Block& b, uint64_t s, uint64_t e,
          uint8_t* seg) -> SpanVerdict {
        size_t len = static_cast<size_t>(e - s);
        switch (b.codec) {
          case Codec::kRle: {
            uint32_t rs = static_cast<uint32_t>(s - b.row_begin);
            uint32_t re = static_cast<uint32_t>(e - b.row_begin);
            size_t r = std::upper_bound(b.rle_ends.begin(),
                                        b.rle_ends.end(), rs) -
                       b.rle_ends.begin();
            uint64_t pass = 0;
            uint32_t cur = rs;
            while (cur < re) {
              uint32_t run_end = std::min(b.rle_ends[r], re);
              uint32_t code = static_cast<uint32_t>(b.rle_values[r]);
              if (code < num_codes && ok[code]) {
                pass += run_end - cur;
              } else {
                std::memset(seg + (cur - rs), 0, run_end - cur);
              }
              cur = run_end;
              ++r;
            }
            return VerdictOf(pass, len);
          }
          case Codec::kBitPack: {
            int32_t buf[kUnpackChunk];
            uint64_t idx0 = s - b.row_begin;
            for (size_t off = 0; off < len; off += kUnpackChunk) {
              size_t m = std::min(kUnpackChunk, len - off);
              Unpack(b.packed.data(), idx0 + off, m, b.bit_width,
                     b.for_base, buf);
              for (size_t j = 0; j < m; ++j) {
                uint32_t code = static_cast<uint32_t>(buf[j]);
                seg[off + j] &=
                    code < num_codes ? ok[code] : uint8_t{0};
              }
            }
            return SpanVerdict::kMixed;
          }
          default:
            exec::kernels::VerdictMaskI32(flat + s, len, ok, seg);
            return SpanVerdict::kMixed;
        }
      });
}

void EncodedLane::DecodeSpan(const int32_t* flat, uint64_t begin,
                             uint64_t end, int32_t* out) const {
  BDCC_CHECK(end <= rows_ && begin <= end);
  uint64_t bi = begin / block_rows_;
  for (uint64_t cur = begin; cur < end;) {
    const Block& b = blocks_[bi];
    uint64_t e = std::min<uint64_t>(end, b.row_end);
    size_t len = static_cast<size_t>(e - cur);
    int32_t* dst = out + (cur - begin);
    switch (b.codec) {
      case Codec::kRle: {
        uint32_t rs = static_cast<uint32_t>(cur - b.row_begin);
        uint32_t re = static_cast<uint32_t>(e - b.row_begin);
        size_t r = std::upper_bound(b.rle_ends.begin(), b.rle_ends.end(),
                                    rs) -
                   b.rle_ends.begin();
        uint32_t at = rs;
        while (at < re) {
          uint32_t run_end = std::min(b.rle_ends[r], re);
          std::fill(dst + (at - rs), dst + (run_end - rs),
                    b.rle_values[r]);
          at = run_end;
          ++r;
        }
        break;
      }
      case Codec::kBitPack:
        Unpack(b.packed.data(), cur - b.row_begin, len, b.bit_width,
               b.for_base, dst);
        break;
      default:
        std::memcpy(dst, flat + cur, len * 4);
        break;
    }
    cur = e;
    ++bi;
  }
}

}  // namespace compression
}  // namespace bdcc
