// Per-block encoded mirror of an int32 storage lane, built for *direct
// execution*: range/equality sargs evaluate over the encoded form (one
// comparison per RLE run, unpack-compare in registers for bit-packed
// blocks, per-code verdict tables over dict-code lanes) without ever
// decoding the chunk to a flat scratch buffer.
//
// The flat lane stays the source of truth for row emission and gathers —
// an EncodedLane is an auxiliary access path, like a zone map, chosen
// per block from {raw, RLE, FOR-bitpack} by encoded size (codec.h's
// estimator made executable). Raw blocks store nothing and evaluate over
// the flat lane the caller passes in; delta-varint has no direct-eval
// story and is never chosen here.
//
// Build after the table layout is final (like BuildZoneMaps); mutating the
// column afterwards leaves the encoding stale.
#ifndef BDCC_STORAGE_COMPRESSION_ENCODED_COLUMN_H_
#define BDCC_STORAGE_COMPRESSION_ENCODED_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/compression/codec.h"

namespace bdcc {
namespace compression {

class EncodedLane {
 public:
  static constexpr uint32_t kDefaultBlockRows = 4096;
  /// Bit-pack is only chosen when the frame-of-reference width fits packed
  /// values in a positive int32 (so SIMD signed compares apply unchanged).
  static constexpr int kMaxPackWidth = 30;

  /// Summary of one predicate over one span: lets callers skip per-row
  /// work when the encoding proves the span uniform.
  enum class SpanVerdict { kMixed, kAllPass, kNonePass };

  EncodedLane() = default;

  /// Encode lane[0..rows) in blocks of block_rows (last block ragged).
  static EncodedLane Build(const int32_t* lane, uint64_t rows,
                           uint32_t block_rows = kDefaultBlockRows);

  uint64_t rows() const { return rows_; }
  uint32_t block_rows() const { return block_rows_; }
  bool empty() const { return rows_ == 0; }
  /// Histogram of per-block codec choices, indexed by Codec.
  const uint64_t* blocks_by_codec() const { return blocks_by_codec_; }
  /// Bytes of the encoded payload (RLE pairs + packed bits; raw counts 4/row).
  uint64_t encoded_bytes() const { return encoded_bytes_; }

  /// mask[i] &= (lo <= lane[begin+i] <= hi) for i in [0, end-begin),
  /// evaluated over the encoded blocks. `flat` is the whole flat lane (raw
  /// blocks read it directly). Returns what this predicate alone proved
  /// about the span.
  SpanVerdict RangeMask(const int32_t* flat, uint64_t begin, uint64_t end,
                        int32_t lo, int32_t hi, uint8_t* mask) const;

  /// mask[i] &= ok[lane[begin+i]] — dict-code verdict table of size
  /// num_codes (all lane values must be in [0, num_codes)).
  SpanVerdict VerdictMask(const int32_t* flat, uint64_t begin, uint64_t end,
                          const uint8_t* ok, size_t num_codes,
                          uint8_t* mask) const;

  /// Decode rows [begin, end) into out — the flat-decode baseline path
  /// (bench comparison; raw blocks copy from `flat`).
  void DecodeSpan(const int32_t* flat, uint64_t begin, uint64_t end,
                  int32_t* out) const;

 private:
  struct Block {
    Codec codec = Codec::kRaw;
    uint64_t row_begin = 0;
    uint64_t row_end = 0;
    // kRle: runs as (value, inclusive-exclusive end) with block-relative
    // prefix ends; run r covers [r == 0 ? 0 : ends[r-1], ends[r]).
    std::vector<int32_t> rle_values;
    std::vector<uint32_t> rle_ends;
    // kBitPack: frame-of-reference base + LSB-first packed (lane - base),
    // padded so 8-byte window loads never overrun.
    int32_t for_base = 0;
    int bit_width = 0;
    std::vector<uint8_t> packed;
  };

  template <typename Eval>
  SpanVerdict EvalBlocks(const int32_t* flat, uint64_t begin, uint64_t end,
                         uint8_t* mask, Eval&& eval) const;

  uint64_t rows_ = 0;
  uint32_t block_rows_ = kDefaultBlockRows;
  uint64_t blocks_by_codec_[4] = {0, 0, 0, 0};
  uint64_t encoded_bytes_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace compression
}  // namespace bdcc

#endif  // BDCC_STORAGE_COMPRESSION_ENCODED_COLUMN_H_
