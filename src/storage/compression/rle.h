// Run-length encoding for int32 sequences.
#ifndef BDCC_STORAGE_COMPRESSION_RLE_H_
#define BDCC_STORAGE_COMPRESSION_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bdcc {
namespace compression {

/// \brief RLE-encode `input` as (value, run_length) pairs.
std::vector<uint8_t> RleEncode(const int32_t* input, size_t count);

/// \brief Decode a buffer produced by RleEncode; returns decoded values.
std::vector<int32_t> RleDecode(const uint8_t* data, size_t size);

/// Size in bytes RleEncode would produce, without materializing it.
size_t RleEncodedSize(const int32_t* input, size_t count);

}  // namespace compression
}  // namespace bdcc

#endif  // BDCC_STORAGE_COMPRESSION_RLE_H_
