// Per-block codec selection ("automatic compression" in the paper's setup).
//
// Used for footprint accounting and for the clustering-vs-compression
// ablation: BDCC reordering makes columns locally homogeneous, which RLE and
// delta exploit. Tables remain uncompressed in memory for execution; this
// module answers "what would this column cost on disk".
#ifndef BDCC_STORAGE_COMPRESSION_CODEC_H_
#define BDCC_STORAGE_COMPRESSION_CODEC_H_

#include <cstdint>
#include <string>

#include "storage/column.h"

namespace bdcc {
namespace compression {

enum class Codec : uint8_t { kRaw = 0, kRle = 1, kDeltaVarint = 2, kBitPack = 3 };

const char* CodecName(Codec codec);

struct ColumnCompression {
  uint64_t raw_bytes = 0;
  uint64_t compressed_bytes = 0;
  // Histogram of per-block codec choices, indexed by Codec.
  uint64_t blocks_by_codec[4] = {0, 0, 0, 0};

  double ratio() const {
    return compressed_bytes == 0
               ? 1.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(compressed_bytes);
  }
};

/// \brief Estimate the compressed footprint of `column`, choosing the
/// cheapest codec independently per block of `block_rows` values.
/// String columns are estimated over their dictionary codes; dictionary
/// payload is added once.
ColumnCompression EstimateCompression(const Column& column,
                                      uint32_t block_rows = 8192);

}  // namespace compression
}  // namespace bdcc

#endif  // BDCC_STORAGE_COMPRESSION_CODEC_H_
