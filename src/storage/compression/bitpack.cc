#include "storage/compression/bitpack.h"

#include "common/bits.h"
#include "common/macros.h"

namespace bdcc {
namespace compression {

int RequiredBitWidth(const uint32_t* input, size_t count) {
  uint32_t max = 0;
  for (size_t i = 0; i < count; ++i) {
    if (input[i] > max) max = input[i];
  }
  int width = bits::CeilLog2(static_cast<uint64_t>(max) + 1);
  return width == 0 ? 1 : width;
}

size_t BitPackedSize(size_t count, int bit_width) {
  return (count * static_cast<size_t>(bit_width) + 7) / 8;
}

std::vector<uint8_t> BitPack(const uint32_t* input, size_t count,
                             int bit_width) {
  BDCC_CHECK(bit_width >= 1 && bit_width <= 32);
  std::vector<uint8_t> out(BitPackedSize(count, bit_width), 0);
  size_t bitpos = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = input[i] & bits::LowMask(bit_width);
    size_t byte = bitpos >> 3;
    int shift = static_cast<int>(bitpos & 7);
    // Value may straddle up to 5 bytes.
    uint64_t cur = 0;
    for (int b = 0; b < 5 && byte + b < out.size(); ++b) {
      cur |= static_cast<uint64_t>(out[byte + b]) << (8 * b);
    }
    cur |= v << shift;
    for (int b = 0; b < 5 && byte + b < out.size(); ++b) {
      out[byte + b] = static_cast<uint8_t>(cur >> (8 * b));
    }
    bitpos += static_cast<size_t>(bit_width);
  }
  return out;
}

std::vector<uint32_t> BitUnpack(const uint8_t* data, size_t size,
                                size_t count, int bit_width) {
  BDCC_CHECK(bit_width >= 1 && bit_width <= 32);
  std::vector<uint32_t> out;
  out.reserve(count);
  size_t bitpos = 0;
  for (size_t i = 0; i < count; ++i) {
    size_t byte = bitpos >> 3;
    int shift = static_cast<int>(bitpos & 7);
    uint64_t cur = 0;
    for (int b = 0; b < 5 && byte + b < size; ++b) {
      cur |= static_cast<uint64_t>(data[byte + b]) << (8 * b);
    }
    out.push_back(
        static_cast<uint32_t>((cur >> shift) & bits::LowMask(bit_width)));
    bitpos += static_cast<size_t>(bit_width);
  }
  return out;
}

}  // namespace compression
}  // namespace bdcc
