// Delta + zigzag + varint encoding for integer sequences; excels on sorted
// or clustered data — which is exactly what BDCC reordering produces.
#ifndef BDCC_STORAGE_COMPRESSION_DELTA_H_
#define BDCC_STORAGE_COMPRESSION_DELTA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bdcc {
namespace compression {

std::vector<uint8_t> DeltaEncode(const int64_t* input, size_t count);
std::vector<int64_t> DeltaDecode(const uint8_t* data, size_t size,
                                 size_t expected_count);
size_t DeltaEncodedSize(const int64_t* input, size_t count);

}  // namespace compression
}  // namespace bdcc

#endif  // BDCC_STORAGE_COMPRESSION_DELTA_H_
