#include "storage/compression/rle.h"

#include <cstring>

#include "common/macros.h"

namespace bdcc {
namespace compression {

namespace {
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &v, 4);
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
}  // namespace

std::vector<uint8_t> RleEncode(const int32_t* input, size_t count) {
  std::vector<uint8_t> out;
  size_t i = 0;
  while (i < count) {
    size_t j = i + 1;
    while (j < count && input[j] == input[i]) ++j;
    PutU32(&out, static_cast<uint32_t>(input[i]));
    PutU32(&out, static_cast<uint32_t>(j - i));
    i = j;
  }
  return out;
}

std::vector<int32_t> RleDecode(const uint8_t* data, size_t size) {
  BDCC_CHECK(size % 8 == 0);
  std::vector<int32_t> out;
  for (size_t off = 0; off < size; off += 8) {
    int32_t value = static_cast<int32_t>(GetU32(data + off));
    uint32_t run = GetU32(data + off + 4);
    out.insert(out.end(), run, value);
  }
  return out;
}

size_t RleEncodedSize(const int32_t* input, size_t count) {
  size_t runs = 0;
  size_t i = 0;
  while (i < count) {
    size_t j = i + 1;
    while (j < count && input[j] == input[i]) ++j;
    ++runs;
    i = j;
  }
  return runs * 8;
}

}  // namespace compression
}  // namespace bdcc
