#include "storage/compression/codec.h"

#include <algorithm>
#include <vector>

#include "storage/compression/bitpack.h"
#include "storage/compression/delta.h"
#include "storage/compression/rle.h"

namespace bdcc {
namespace compression {

const char* CodecName(Codec codec) {
  switch (codec) {
    case Codec::kRaw:
      return "raw";
    case Codec::kRle:
      return "rle";
    case Codec::kDeltaVarint:
      return "delta";
    case Codec::kBitPack:
      return "bitpack";
  }
  return "?";
}

namespace {

// Best codec size for a block of int32-lane values.
std::pair<Codec, size_t> BestI32(const int32_t* data, size_t count) {
  size_t raw = count * 4;
  size_t best = raw;
  Codec codec = Codec::kRaw;

  size_t rle = RleEncodedSize(data, count);
  if (rle < best) {
    best = rle;
    codec = Codec::kRle;
  }

  std::vector<int64_t> wide(data, data + count);
  size_t delta = DeltaEncodedSize(wide.data(), count);
  if (delta < best) {
    best = delta;
    codec = Codec::kDeltaVarint;
  }

  int32_t lo = *std::min_element(data, data + count);
  if (lo >= 0) {
    std::vector<uint32_t> u(data, data + count);
    int width = RequiredBitWidth(u.data(), count);
    size_t packed = BitPackedSize(count, width);
    if (packed < best) {
      best = packed;
      codec = Codec::kBitPack;
    }
  }
  return {codec, best};
}

std::pair<Codec, size_t> BestI64(const int64_t* data, size_t count) {
  size_t raw = count * 8;
  size_t delta = DeltaEncodedSize(data, count);
  if (delta < raw) return {Codec::kDeltaVarint, delta};
  return {Codec::kRaw, raw};
}

}  // namespace

ColumnCompression EstimateCompression(const Column& column,
                                      uint32_t block_rows) {
  ColumnCompression out;
  out.raw_bytes = column.DiskBytes();
  uint64_t rows = column.size();
  if (rows == 0) return out;

  switch (column.type()) {
    case TypeId::kInt64: {
      const auto& lane = column.i64();
      for (uint64_t at = 0; at < rows; at += block_rows) {
        size_t n = std::min<uint64_t>(block_rows, rows - at);
        auto [codec, sz] = BestI64(lane.data() + at, n);
        out.compressed_bytes += sz;
        out.blocks_by_codec[static_cast<int>(codec)]++;
      }
      break;
    }
    case TypeId::kFloat64: {
      // No float codec implemented: account raw.
      out.compressed_bytes = rows * 8;
      out.blocks_by_codec[static_cast<int>(Codec::kRaw)] +=
          (rows + block_rows - 1) / block_rows;
      break;
    }
    default: {
      const auto& lane = column.i32();
      for (uint64_t at = 0; at < rows; at += block_rows) {
        size_t n = std::min<uint64_t>(block_rows, rows - at);
        auto [codec, sz] = BestI32(lane.data() + at, n);
        out.compressed_bytes += sz;
        out.blocks_by_codec[static_cast<int>(codec)]++;
      }
      if (column.type() == TypeId::kString) {
        out.compressed_bytes += column.dict()->payload_bytes();
      }
      break;
    }
  }
  return out;
}

}  // namespace compression
}  // namespace bdcc
