// Fixed-width bit packing for non-negative int32 values.
#ifndef BDCC_STORAGE_COMPRESSION_BITPACK_H_
#define BDCC_STORAGE_COMPRESSION_BITPACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bdcc {
namespace compression {

/// Bits needed to represent the maximum of `input` (>= 1).
int RequiredBitWidth(const uint32_t* input, size_t count);

/// Pack `input` at `bit_width` bits per value.
std::vector<uint8_t> BitPack(const uint32_t* input, size_t count,
                             int bit_width);

/// Unpack `count` values of `bit_width` bits.
std::vector<uint32_t> BitUnpack(const uint8_t* data, size_t size,
                                size_t count, int bit_width);

/// Bytes BitPack would produce.
size_t BitPackedSize(size_t count, int bit_width);

}  // namespace compression
}  // namespace bdcc

#endif  // BDCC_STORAGE_COMPRESSION_BITPACK_H_
