// Typed in-memory column.
#ifndef BDCC_STORAGE_COLUMN_H_
#define BDCC_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "storage/dictionary.h"
#include "storage/types.h"

namespace bdcc {

namespace compression {
class EncodedLane;
}  // namespace compression

/// \brief A single column of a stored table.
///
/// Storage lanes by type:
///   kInt32/kDate/kBool -> i32 lane (bool as 0/1)
///   kInt64             -> i64 lane
///   kFloat64           -> f64 lane
///   kString            -> i32 lane of dictionary codes + Dictionary
class Column {
 public:
  explicit Column(TypeId type);
  /// String column sharing an existing dictionary (e.g. after reordering).
  Column(TypeId type, std::shared_ptr<Dictionary> dict);

  Column(Column&&) = default;
  Column& operator=(Column&&) = default;
  BDCC_DISALLOW_COPY_AND_ASSIGN(Column);

  TypeId type() const { return type_; }
  uint64_t size() const;

  // -- Appenders (checked against the column type) --
  void AppendInt32(int32_t v);
  void AppendInt64(int64_t v);
  void AppendFloat64(double v);
  void AppendDate(int32_t days);
  void AppendBool(bool v);
  void AppendString(std::string_view s);
  void AppendValue(const Value& v);
  void Reserve(uint64_t rows);

  // -- Typed access --
  const std::vector<int32_t>& i32() const { return i32_; }
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  std::vector<int32_t>& mutable_i32() { return i32_; }
  std::vector<int64_t>& mutable_i64() { return i64_; }
  std::vector<double>& mutable_f64() { return f64_; }
  const std::shared_ptr<Dictionary>& dict() const { return dict_; }

  /// Generic (slow-path) accessor; materializes strings.
  Value GetValue(uint64_t row) const;

  /// String payload at `row` (string columns only).
  std::string_view GetString(uint64_t row) const {
    BDCC_CHECK(type_ == TypeId::kString);
    return dict_->Get(i32_[row]);
  }

  /// Bytes this column would occupy on disk (uncompressed): fixed lane plus
  /// dictionary payload for strings. Drives page counts and density ranking.
  uint64_t DiskBytes() const;

  /// New column with rows permuted: out[i] = this[perm[i]].
  Column Gather(const std::vector<uint32_t>& perm) const;

  /// Append row `row` of `other` (same type; strings re-interned).
  void AppendFrom(const Column& other, uint64_t row);

  // -- Encoded mirror (direct execution over compressed lanes) --
  /// Build the per-block encoded mirror of the i32 lane (i32-backed types
  /// and string code lanes only; no-op otherwise). Call once the layout is
  /// final, like zone maps; mutating the column afterwards leaves it stale
  /// (appenders drop it defensively).
  void BuildEncoded(uint32_t block_rows);
  /// Encoded mirror, or nullptr when absent.
  const compression::EncodedLane* encoded() const { return encoded_.get(); }
  void DropEncoded() { encoded_.reset(); }

 private:
  TypeId type_;
  std::vector<int32_t> i32_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::shared_ptr<Dictionary> dict_;
  std::shared_ptr<const compression::EncodedLane> encoded_;
};

}  // namespace bdcc

#endif  // BDCC_STORAGE_COLUMN_H_
