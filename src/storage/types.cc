#include "storage/types.h"

#include <cstdio>
#include <cstdlib>

namespace bdcc {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kString:
      return "string";
    case TypeId::kDate:
      return "date";
    case TypeId::kBool:
      return "bool";
  }
  return "?";
}

int FixedWidth(TypeId type) {
  switch (type) {
    case TypeId::kInt32:
    case TypeId::kDate:
      return 4;
    case TypeId::kInt64:
    case TypeId::kFloat64:
      return 8;
    case TypeId::kString:
      return 4;  // dictionary code
    case TypeId::kBool:
      return 1;
  }
  return 8;
}

int Value::Compare(const Value& other) const {
  if (type_ == TypeId::kString || other.type_ == TypeId::kString) {
    BDCC_CHECK_MSG(type_ == TypeId::kString && other.type_ == TypeId::kString,
                   "cannot compare string with non-string");
    return s_.compare(other.s_) < 0 ? -1 : (s_ == other.s_ ? 0 : 1);
  }
  if (type_ == TypeId::kFloat64 || other.type_ == TypeId::kFloat64) {
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  return i_ < other.i_ ? -1 : (i_ == other.i_ ? 0 : 1);
}

std::string Value::ToString() const {
  char buf[64];
  switch (type_) {
    case TypeId::kString:
      return s_;
    case TypeId::kFloat64:
      std::snprintf(buf, sizeof(buf), "%.4f", d_);
      return buf;
    case TypeId::kDate:
      return DateToString(static_cast<int32_t>(i_));
    case TypeId::kBool:
      return i_ ? "true" : "false";
    default:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(i_));
      return buf;
  }
}

// Howard Hinnant's civil-days algorithm.
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int32_t z, int* year, int* month, int* day) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

std::string DateToString(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

int32_t ParseDate(std::string_view text) {
  BDCC_CHECK_MSG(text.size() == 10 && text[4] == '-' && text[7] == '-',
                 "date must be YYYY-MM-DD");
  int y = std::atoi(std::string(text.substr(0, 4)).c_str());
  int m = std::atoi(std::string(text.substr(5, 2)).c_str());
  int d = std::atoi(std::string(text.substr(8, 2)).c_str());
  return DaysFromCivil(y, m, d);
}

}  // namespace bdcc
