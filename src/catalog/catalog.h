// Logical schema catalog: table definitions, primary/foreign keys, and the
// CREATE INDEX declarations that Algorithm 2 treats as BDCC hints.
#ifndef BDCC_CATALOG_CATALOG_H_
#define BDCC_CATALOG_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace bdcc {
namespace catalog {

struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kInt64;
};

/// Declared foreign key with an identifier usable in dimension paths
/// (the paper's FK_Ti_Tj notation, e.g. "FK_L_O").
struct ForeignKey {
  std::string id;
  std::string from_table;
  std::vector<std::string> from_columns;
  std::string to_table;
  std::vector<std::string> to_columns;
};

/// CREATE INDEX declaration; interpreted by Algorithm 2 as a schema hint.
struct IndexHint {
  std::string name;
  std::string table;
  std::vector<std::string> columns;
};

struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;

  bool HasColumn(const std::string& col) const;
  Result<TypeId> ColumnType(const std::string& col) const;
};

/// \brief Mutable schema catalog.
class Catalog {
 public:
  Status AddTable(TableDef def);
  Status AddForeignKey(ForeignKey fk);
  Status AddIndex(IndexHint idx);

  bool HasTable(const std::string& name) const;
  Result<const TableDef*> GetTable(const std::string& name) const;
  Result<const ForeignKey*> GetForeignKey(const std::string& id) const;

  const std::vector<TableDef>& tables() const { return tables_; }
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }
  const std::vector<IndexHint>& indexes() const { return indexes_; }

  /// FKs declared on `table` (outgoing), in declaration order.
  std::vector<const ForeignKey*> ForeignKeysFrom(const std::string& table) const;
  /// FKs referencing `table` (incoming).
  std::vector<const ForeignKey*> ForeignKeysTo(const std::string& table) const;
  /// Index hints declared on `table`, in declaration order.
  std::vector<const IndexHint*> IndexesOn(const std::string& table) const;

  /// Whether index columns exactly match an outgoing FK's source columns;
  /// returns that FK or nullptr. (Algorithm 2(i) checks this.)
  const ForeignKey* IndexMatchesForeignKey(const IndexHint& idx) const;

 private:
  std::vector<TableDef> tables_;
  std::vector<ForeignKey> fks_;
  std::vector<IndexHint> indexes_;
  std::unordered_map<std::string, size_t> table_by_name_;
  std::unordered_map<std::string, size_t> fk_by_id_;
};

}  // namespace catalog
}  // namespace bdcc

#endif  // BDCC_CATALOG_CATALOG_H_
