#include "catalog/schema_graph.h"

#include <queue>
#include <unordered_map>

namespace bdcc {
namespace catalog {

Result<std::vector<std::string>> SchemaGraph::TopologicalFromLeaves() const {
  // Kahn's algorithm; edge T -> Tfk means "T references Tfk", and we want
  // referenced-first order, so count outgoing FKs as in-degrees.
  std::unordered_map<std::string, int> pending;
  for (const TableDef& t : catalog_->tables()) {
    pending[t.name] = static_cast<int>(catalog_->ForeignKeysFrom(t.name).size());
  }
  std::queue<std::string> ready;
  // Preserve catalog declaration order among ties for determinism.
  for (const TableDef& t : catalog_->tables()) {
    if (pending[t.name] == 0) ready.push(t.name);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    std::string name = ready.front();
    ready.pop();
    order.push_back(name);
    // Every table referencing `name` has one fewer unresolved reference.
    for (const ForeignKey* fk : catalog_->ForeignKeysTo(name)) {
      if (--pending[fk->from_table] == 0) ready.push(fk->from_table);
    }
  }
  if (order.size() != catalog_->tables().size()) {
    return Status::InvalidArgument("foreign-key graph has a cycle");
  }
  return order;
}

bool SchemaGraph::IsDag() const { return TopologicalFromLeaves().ok(); }

std::vector<std::string> SchemaGraph::Leaves() const {
  std::vector<std::string> out;
  for (const TableDef& t : catalog_->tables()) {
    if (catalog_->ForeignKeysFrom(t.name).empty()) out.push_back(t.name);
  }
  return out;
}

}  // namespace catalog
}  // namespace bdcc
