// Minimal DDL parser: the paper's interface to the DBA is "classic DDL"
// (CREATE TABLE with keys, declared FOREIGN KEYs, CREATE INDEX hints).
//
// Supported grammar (case-insensitive keywords, `--` comments):
//
//   CREATE TABLE name (
//     col TYPE [NOT NULL],
//     ... ,
//     PRIMARY KEY (a [, b ...]),
//     FOREIGN KEY fk_id (a [, ...]) REFERENCES other (x [, ...])
//   );
//   CREATE INDEX idx_name ON name (a [, b ...]);
//
// Types: INT/INTEGER, BIGINT, DOUBLE/FLOAT/DECIMAL[(p,s)]/NUMERIC,
//        VARCHAR[(n)]/CHAR[(n)]/TEXT, DATE, BOOLEAN/BOOL.
#ifndef BDCC_CATALOG_DDL_PARSER_H_
#define BDCC_CATALOG_DDL_PARSER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "common/status.h"

namespace bdcc {
namespace catalog {

/// \brief Parse `ddl` and apply all statements to `catalog`.
Status ParseDdl(std::string_view ddl, Catalog* catalog);

}  // namespace catalog
}  // namespace bdcc

#endif  // BDCC_CATALOG_DDL_PARSER_H_
