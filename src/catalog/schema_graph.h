// Schema DAG over foreign keys; Algorithm 2 traverses it "from the leaves"
// (referenced tables before referencing tables).
#ifndef BDCC_CATALOG_SCHEMA_GRAPH_H_
#define BDCC_CATALOG_SCHEMA_GRAPH_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"

namespace bdcc {
namespace catalog {

/// \brief FK graph utility view over a Catalog.
class SchemaGraph {
 public:
  explicit SchemaGraph(const Catalog* catalog) : catalog_(catalog) {}

  /// \brief Tables ordered so every table appears after all tables it
  /// references (leaves = tables with no outgoing FK come first).
  /// Errors if the FK graph has a cycle.
  Result<std::vector<std::string>> TopologicalFromLeaves() const;

  /// True if no FK cycles exist.
  bool IsDag() const;

  /// Tables with no outgoing foreign keys (pure dimension leaves).
  std::vector<std::string> Leaves() const;

 private:
  const Catalog* catalog_;
};

}  // namespace catalog
}  // namespace bdcc

#endif  // BDCC_CATALOG_SCHEMA_GRAPH_H_
