#include "catalog/ddl_parser.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

namespace bdcc {
namespace catalog {

namespace {

struct Token {
  enum Kind { kIdent, kPunct, kEnd } kind = kEnd;
  std::string text;  // idents verbatim; punct is one of "(),;"
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Token Next() {
    SkipSpace();
    if (pos_ >= input_.size()) return Token{Token::kEnd, ""};
    char c = input_[pos_];
    if (c == '(' || c == ')' || c == ',' || c == ';') {
      ++pos_;
      return Token{Token::kPunct, std::string(1, c)};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      return Token{Token::kIdent, std::string(input_.substr(start, pos_ - start))};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      return Token{Token::kIdent, std::string(input_.substr(start, pos_ - start))};
    }
    // Unknown character: consume to avoid infinite loops.
    ++pos_;
    return Token{Token::kPunct, std::string(1, c)};
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '-') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

class Parser {
 public:
  Parser(std::string_view ddl, Catalog* catalog)
      : lexer_(ddl), catalog_(catalog) {
    Advance();
  }

  Status Run() {
    while (cur_.kind != Token::kEnd) {
      BDCC_RETURN_NOT_OK(Statement());
    }
    return Status::OK();
  }

 private:
  void Advance() { cur_ = lexer_.Next(); }

  bool IsKeyword(const char* kw) const {
    return cur_.kind == Token::kIdent && Upper(cur_.text) == kw;
  }

  Status Expect(const char* what) {
    return Status::ParseError(std::string("expected ") + what + " near '" +
                              cur_.text + "'");
  }

  Status ExpectPunct(char c) {
    if (cur_.kind != Token::kPunct || cur_.text[0] != c) {
      return Expect(std::string(1, c).c_str());
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) return Expect(kw);
    Advance();
    return Status::OK();
  }

  Status Identifier(std::string* out) {
    if (cur_.kind != Token::kIdent) return Expect("identifier");
    *out = cur_.text;
    Advance();
    return Status::OK();
  }

  Status ColumnList(std::vector<std::string>* out) {
    BDCC_RETURN_NOT_OK(ExpectPunct('('));
    while (true) {
      std::string col;
      BDCC_RETURN_NOT_OK(Identifier(&col));
      out->push_back(col);
      if (cur_.kind == Token::kPunct && cur_.text == ",") {
        Advance();
        continue;
      }
      break;
    }
    return ExpectPunct(')');
  }

  // Parse a type name, consuming optional (p[,s]) suffix.
  Status TypeSpec(TypeId* out) {
    std::string name;
    BDCC_RETURN_NOT_OK(Identifier(&name));
    std::string up = Upper(name);
    if (up == "INT" || up == "INTEGER") {
      *out = TypeId::kInt32;
    } else if (up == "BIGINT") {
      *out = TypeId::kInt64;
    } else if (up == "DOUBLE" || up == "FLOAT" || up == "DECIMAL" ||
               up == "NUMERIC") {
      *out = TypeId::kFloat64;
    } else if (up == "VARCHAR" || up == "CHAR" || up == "TEXT") {
      *out = TypeId::kString;
    } else if (up == "DATE") {
      *out = TypeId::kDate;
    } else if (up == "BOOLEAN" || up == "BOOL") {
      *out = TypeId::kBool;
    } else {
      return Status::ParseError("unknown type: " + name);
    }
    // Optional (n) or (p, s).
    if (cur_.kind == Token::kPunct && cur_.text == "(") {
      Advance();
      while (!(cur_.kind == Token::kPunct && cur_.text == ")")) {
        if (cur_.kind == Token::kEnd) return Expect(")");
        Advance();
      }
      Advance();
    }
    return Status::OK();
  }

  Status Statement() {
    BDCC_RETURN_NOT_OK(ExpectKeyword("CREATE"));
    if (IsKeyword("TABLE")) {
      Advance();
      return CreateTable();
    }
    if (IsKeyword("INDEX")) {
      Advance();
      return CreateIndex();
    }
    return Expect("TABLE or INDEX");
  }

  Status CreateTable() {
    TableDef def;
    std::vector<ForeignKey> fks;
    BDCC_RETURN_NOT_OK(Identifier(&def.name));
    BDCC_RETURN_NOT_OK(ExpectPunct('('));
    while (true) {
      if (IsKeyword("PRIMARY")) {
        Advance();
        BDCC_RETURN_NOT_OK(ExpectKeyword("KEY"));
        BDCC_RETURN_NOT_OK(ColumnList(&def.primary_key));
      } else if (IsKeyword("FOREIGN")) {
        Advance();
        BDCC_RETURN_NOT_OK(ExpectKeyword("KEY"));
        ForeignKey fk;
        fk.from_table = def.name;
        BDCC_RETURN_NOT_OK(Identifier(&fk.id));
        BDCC_RETURN_NOT_OK(ColumnList(&fk.from_columns));
        BDCC_RETURN_NOT_OK(ExpectKeyword("REFERENCES"));
        BDCC_RETURN_NOT_OK(Identifier(&fk.to_table));
        BDCC_RETURN_NOT_OK(ColumnList(&fk.to_columns));
        fks.push_back(std::move(fk));
      } else {
        ColumnDef col;
        BDCC_RETURN_NOT_OK(Identifier(&col.name));
        BDCC_RETURN_NOT_OK(TypeSpec(&col.type));
        if (IsKeyword("NOT")) {
          Advance();
          BDCC_RETURN_NOT_OK(ExpectKeyword("NULL"));
        }
        def.columns.push_back(std::move(col));
      }
      if (cur_.kind == Token::kPunct && cur_.text == ",") {
        Advance();
        continue;
      }
      break;
    }
    BDCC_RETURN_NOT_OK(ExpectPunct(')'));
    BDCC_RETURN_NOT_OK(ExpectPunct(';'));
    BDCC_RETURN_NOT_OK(catalog_->AddTable(std::move(def)));
    for (ForeignKey& fk : fks) {
      BDCC_RETURN_NOT_OK(catalog_->AddForeignKey(std::move(fk)));
    }
    return Status::OK();
  }

  Status CreateIndex() {
    IndexHint idx;
    BDCC_RETURN_NOT_OK(Identifier(&idx.name));
    BDCC_RETURN_NOT_OK(ExpectKeyword("ON"));
    BDCC_RETURN_NOT_OK(Identifier(&idx.table));
    BDCC_RETURN_NOT_OK(ColumnList(&idx.columns));
    BDCC_RETURN_NOT_OK(ExpectPunct(';'));
    return catalog_->AddIndex(std::move(idx));
  }

  Lexer lexer_;
  Catalog* catalog_;
  Token cur_;
};

}  // namespace

Status ParseDdl(std::string_view ddl, Catalog* catalog) {
  Parser parser(ddl, catalog);
  return parser.Run();
}

}  // namespace catalog
}  // namespace bdcc
