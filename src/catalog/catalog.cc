#include "catalog/catalog.h"

#include <algorithm>

namespace bdcc {
namespace catalog {

bool TableDef::HasColumn(const std::string& col) const {
  return std::any_of(columns.begin(), columns.end(),
                     [&](const ColumnDef& c) { return c.name == col; });
}

Result<TypeId> TableDef::ColumnType(const std::string& col) const {
  for (const ColumnDef& c : columns) {
    if (c.name == col) return c.type;
  }
  return Status::NotFound("no column " + col + " in " + name);
}

Status Catalog::AddTable(TableDef def) {
  if (table_by_name_.count(def.name)) {
    return Status::AlreadyExists("table " + def.name);
  }
  table_by_name_[def.name] = tables_.size();
  tables_.push_back(std::move(def));
  return Status::OK();
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  if (fk_by_id_.count(fk.id)) {
    return Status::AlreadyExists("foreign key " + fk.id);
  }
  BDCC_ASSIGN_OR_RETURN(const TableDef* from, GetTable(fk.from_table));
  BDCC_ASSIGN_OR_RETURN(const TableDef* to, GetTable(fk.to_table));
  if (fk.from_columns.empty() ||
      fk.from_columns.size() != fk.to_columns.size()) {
    return Status::InvalidArgument("foreign key " + fk.id +
                                   " column count mismatch");
  }
  for (const std::string& c : fk.from_columns) {
    if (!from->HasColumn(c)) {
      return Status::NotFound("fk " + fk.id + ": no column " + c + " in " +
                              fk.from_table);
    }
  }
  for (const std::string& c : fk.to_columns) {
    if (!to->HasColumn(c)) {
      return Status::NotFound("fk " + fk.id + ": no column " + c + " in " +
                              fk.to_table);
    }
  }
  fk_by_id_[fk.id] = fks_.size();
  fks_.push_back(std::move(fk));
  return Status::OK();
}

Status Catalog::AddIndex(IndexHint idx) {
  BDCC_ASSIGN_OR_RETURN(const TableDef* t, GetTable(idx.table));
  for (const std::string& c : idx.columns) {
    if (!t->HasColumn(c)) {
      return Status::NotFound("index " + idx.name + ": no column " + c +
                              " in " + idx.table);
    }
  }
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return table_by_name_.count(name) > 0;
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = table_by_name_.find(name);
  if (it == table_by_name_.end()) {
    return Status::NotFound("no table " + name);
  }
  return &tables_[it->second];
}

Result<const ForeignKey*> Catalog::GetForeignKey(const std::string& id) const {
  auto it = fk_by_id_.find(id);
  if (it == fk_by_id_.end()) {
    return Status::NotFound("no foreign key " + id);
  }
  return &fks_[it->second];
}

std::vector<const ForeignKey*> Catalog::ForeignKeysFrom(
    const std::string& table) const {
  std::vector<const ForeignKey*> out;
  for (const ForeignKey& fk : fks_) {
    if (fk.from_table == table) out.push_back(&fk);
  }
  return out;
}

std::vector<const ForeignKey*> Catalog::ForeignKeysTo(
    const std::string& table) const {
  std::vector<const ForeignKey*> out;
  for (const ForeignKey& fk : fks_) {
    if (fk.to_table == table) out.push_back(&fk);
  }
  return out;
}

std::vector<const IndexHint*> Catalog::IndexesOn(
    const std::string& table) const {
  std::vector<const IndexHint*> out;
  for (const IndexHint& idx : indexes_) {
    if (idx.table == table) out.push_back(&idx);
  }
  return out;
}

const ForeignKey* Catalog::IndexMatchesForeignKey(const IndexHint& idx) const {
  for (const ForeignKey& fk : fks_) {
    if (fk.from_table == idx.table && fk.from_columns == idx.columns) {
      return &fk;
    }
  }
  return nullptr;
}

}  // namespace catalog
}  // namespace bdcc
