// QueryRunner: the concurrent query serving layer.
//
// One QueryRunner fronts the engine for many serving threads (one blocked
// caller per in-flight query, mirroring a TPC-H stream). Execute() walks a
// query through the full lifecycle:
//
//   admit (bounded FIFO queue, per-class slots)
//     -> reserve a budget from the global MemoryPool
//     -> arm the per-attempt ExecContext (budget, session cancel/deadline)
//     -> run the query under the class's task priority
//     -> classify the outcome; on ResourceExhausted, back off and retry
//        with an escalated budget (bounded exponential backoff with
//        deterministic jitter, at most max_retries re-admissions)
//
// Every query terminates in exactly one defined state (Outcome): ok, shed
// (admission refused it — safe to retry after report.retry_after_ms),
// cancelled (session cancel or deadline, wherever it struck), exhausted
// (still ResourceExhausted after max_retries), or error (non-retryable
// failure from the query itself). Shed and exhausted queries have done no
// partial work: their operators were either never opened or fully unwound
// by CollectAll, and tracked memory has drained (report.leaked_bytes
// asserts it).
//
// Thread-safety: Execute() is safe from any number of threads at once.
// A Session must not be shared between concurrent Execute calls, but
// Session::Cancel may race Execute from anywhere.
#ifndef BDCC_SERVE_QUERY_RUNNER_H_
#define BDCC_SERVE_QUERY_RUNNER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/result.h"
#include "common/status.h"
#include "exec/batch.h"
#include "exec/exec_context.h"
#include "serve/admission.h"

namespace bdcc {
namespace serve {

/// Per-client handle for cancellation and deadlines. The runner delegates
/// both to the query's QueryControl while an attempt is executing, so a
/// Cancel lands mid-attempt at the next morsel boundary; between attempts
/// (queued, backing off) the runner polls the session directly.
class Session {
 public:
  Session() = default;

  /// Stop the session's query wherever it is: queued, backing off, or
  /// mid-execution. Idempotent; safe from any thread.
  void Cancel();

  /// Absolute deadline for the whole request — every attempt, queue wait,
  /// and backoff counts against it. Set before Execute().
  void SetDeadline(std::chrono::steady_clock::time_point deadline);
  void SetTimeout(std::chrono::nanoseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  /// Cancelled, or past the deadline.
  bool expired() const;

 private:
  friend class QueryRunner;

  // Route the live attempt's control through this session so Cancel()
  // reaches in-flight operators, and push the session's prior state
  // (cancel already requested, deadline) onto the control.
  void ArmControl(exec::QueryControl* control);
  void DisarmControl();

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // steady_clock ns; 0 = none
  std::mutex mu_;
  exec::QueryControl* active_ = nullptr;  // guarded by mu_
};

/// The defined terminal states of a served query.
enum class Outcome : int {
  kOk = 0,
  /// Admission refused it (queue full or queue-wait limit); no execution
  /// happened. Retry after QueryReport::retry_after_ms.
  kShed = 1,
  /// Session cancel or deadline, wherever it struck (queue, backoff, or
  /// mid-execution); QueryReport::status says which.
  kCancelled = 2,
  /// Still ResourceExhausted after max_retries re-admissions.
  kExhausted = 3,
  /// Non-retryable failure from the query itself (IO error, bad plan...).
  kError = 4,
};

const char* OutcomeName(Outcome outcome);

/// Everything a caller (or the throughput bench) wants to know about one
/// served query.
struct QueryReport {
  Outcome outcome = Outcome::kError;
  Status status;       // OK iff outcome == kOk
  exec::Batch result;  // empty unless outcome == kOk
  /// Execution attempts started (0 when shed before any execution).
  int attempts = 0;
  double queue_wait_ms = 0;   // summed over admissions
  double backoff_ms = 0;      // summed over retries
  double exec_ms = 0;         // summed over attempts
  double retry_after_ms = 0;  // > 0 when shed
  uint64_t budget_bytes = 0;  // last granted budget
  uint64_t peak_bytes = 0;    // max tracked memory over attempts
  /// Tracked bytes still registered after the final unwind; always 0
  /// unless an operator leaked its accounting.
  uint64_t leaked_bytes = 0;
};

struct RunnerConfig {
  AdmissionConfig admission;
  /// Global serving memory pool carved into per-query budgets.
  uint64_t pool_bytes = 256ull << 20;
  /// First-attempt budget; 0 derives pool_bytes / total slots.
  uint64_t default_budget_bytes = 0;
  /// Re-admissions after a ResourceExhausted attempt (K). The budget
  /// doubles on every retry, capped at pool_bytes.
  int max_retries = 3;
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 100.0;
  /// Longest a query holding an admission slot waits for pool memory.
  double pool_wait_limit_ms = 100.0;
  /// Seed of the deterministic backoff-jitter stream.
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// Monotonic counters across all served queries (snapshot with stats()).
struct RunnerStats {
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t exhausted = 0;
  uint64_t errors = 0;
  /// Execution attempts beyond each query's first.
  uint64_t retries = 0;
};

class QueryRunner {
 public:
  /// The query body: runs the plan against `ctx` and returns its result.
  /// `budget_bytes` is the granted budget — already installed on the
  /// context's MemoryTracker; adapters that drive their own planner (e.g.
  /// the TPC-H harness) must propagate it so downstream set_limit calls
  /// agree. The body must leave the operator tree closed on both success
  /// and failure (CollectAll's contract), so the same fn can be re-invoked
  /// for a retry with a larger budget.
  using QueryFn =
      std::function<Result<exec::Batch>(exec::ExecContext* ctx,
                                        uint64_t budget_bytes)>;

  explicit QueryRunner(RunnerConfig config);
  BDCC_DISALLOW_COPY_AND_ASSIGN(QueryRunner);

  /// Serve one query on the calling thread, blocking through queueing,
  /// execution, and retries. `session` (may be null) contributes cancel
  /// and deadline. Never throws for lifecycle reasons; the report's
  /// outcome is always one of the defined terminal states.
  QueryReport Execute(QueryClass cls, const QueryFn& fn,
                      Session* session = nullptr);

  RunnerStats stats() const;
  const AdmissionController& admission() const { return admission_; }
  const MemoryPool& pool() const { return pool_; }
  const RunnerConfig& config() const { return config_; }

 private:
  /// Deterministic jitter factor in [0.5, 1.0) — the n-th draw of the
  /// jitter_seed stream, independent of wall clock and thread timing.
  double JitterFactor();

  /// Sleep `delay_ms` in 1 ms slices, stopping early if the session
  /// expires. Returns false when the session expired.
  bool Backoff(double delay_ms, Session* session, QueryReport* report);

  RunnerConfig config_;
  AdmissionController admission_;
  MemoryPool pool_;
  std::atomic<uint64_t> jitter_draws_{0};
  mutable std::mutex stats_mu_;
  RunnerStats stats_;
};

}  // namespace serve
}  // namespace bdcc

#endif  // BDCC_SERVE_QUERY_RUNNER_H_
