#include "serve/query_runner.h"

#include <algorithm>
#include <thread>

#include "common/fault_injection.h"
#include "common/task_scheduler.h"

namespace bdcc {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Why the session stopped: an explicit Cancel wins over the deadline (the
// caller acted; the clock merely ran).
Status StopStatus(Session* session) {
  if (session != nullptr && !session->cancelled()) {
    return Status::DeadlineExceeded("session deadline exceeded");
  }
  return Status::Cancelled("session cancelled");
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------- Session ----------------

void Session::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ != nullptr) active_->RequestCancel();
}

void Session::SetDeadline(std::chrono::steady_clock::time_point deadline) {
  deadline_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         deadline.time_since_epoch())
                         .count(),
                     std::memory_order_release);
}

bool Session::expired() const {
  if (cancelled()) return true;
  int64_t ns = deadline_ns_.load(std::memory_order_acquire);
  if (ns == 0) return false;
  int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now().time_since_epoch())
                    .count();
  return now >= ns;
}

void Session::ArmControl(exec::QueryControl* control) {
  std::lock_guard<std::mutex> lock(mu_);
  active_ = control;
  // Replay state that arrived before this attempt: a pre-cancelled session
  // must stop the attempt at its first lifecycle check, and the session
  // deadline binds every attempt.
  if (cancelled_.load(std::memory_order_acquire)) control->RequestCancel();
  int64_t ns = deadline_ns_.load(std::memory_order_acquire);
  if (ns != 0) {
    control->SetDeadline(Clock::time_point(std::chrono::nanoseconds(ns)));
  }
}

void Session::DisarmControl() {
  std::lock_guard<std::mutex> lock(mu_);
  active_ = nullptr;
}

// ---------------- QueryRunner ----------------

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kShed:
      return "shed";
    case Outcome::kCancelled:
      return "cancelled";
    case Outcome::kExhausted:
      return "exhausted";
    case Outcome::kError:
      return "error";
  }
  return "unknown";
}

QueryRunner::QueryRunner(RunnerConfig config)
    : config_(config), admission_(config.admission), pool_(config.pool_bytes) {
  BDCC_CHECK_MSG(config_.pool_bytes > 0, "QueryRunner: empty memory pool");
  BDCC_CHECK_MSG(config_.max_retries >= 0, "QueryRunner: negative retries");
}

double QueryRunner::JitterFactor() {
  uint64_t n = jitter_draws_.fetch_add(1, std::memory_order_relaxed);
  uint64_t z = SplitMix64(config_.jitter_seed ^ n);
  // Top 53 bits -> [0,1); fold into [0.5, 1.0) so a retry never waits less
  // than half the nominal backoff (full-jitter collapses to thundering
  // herds at the low end).
  double u = static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
  return 0.5 + 0.5 * u;
}

bool QueryRunner::Backoff(double delay_ms, Session* session,
                          QueryReport* report) {
  Clock::time_point start = Clock::now();
  while (true) {
    double waited = MsSince(start);
    if (waited >= delay_ms) {
      report->backoff_ms += waited;
      return true;
    }
    if (session != nullptr && session->expired()) {
      report->backoff_ms += waited;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

QueryReport QueryRunner::Execute(QueryClass cls, const QueryFn& fn,
                                 Session* session) {
  QueryReport report;
  auto finish = [&](Outcome outcome, Status status) -> QueryReport {
    report.outcome = outcome;
    report.status = std::move(status);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      switch (outcome) {
        case Outcome::kOk:
          ++stats_.ok;
          break;
        case Outcome::kShed:
          ++stats_.shed;
          break;
        case Outcome::kCancelled:
          ++stats_.cancelled;
          break;
        case Outcome::kExhausted:
          ++stats_.exhausted;
          break;
        case Outcome::kError:
          ++stats_.errors;
          break;
      }
    }
    return std::move(report);
  };

  auto expired = [session] { return session != nullptr && session->expired(); };

  uint64_t budget = config_.default_budget_bytes;
  if (budget == 0) {
    int slots = std::max(1, config_.admission.total_slots());
    budget = std::max<uint64_t>(1, config_.pool_bytes /
                                       static_cast<uint64_t>(slots));
  }
  budget = std::min(budget, config_.pool_bytes);

  // One context for every attempt: the retry path re-arms it with
  // PrepareRerun instead of rebuilding, which is exactly the re-Open
  // contract the bench and soak exercise.
  exec::ExecContext ctx;
  common::TaskPriority priority = cls == QueryClass::kInteractive
                                      ? common::TaskPriority::kHigh
                                      : common::TaskPriority::kNormal;

  for (int attempt = 0;; ++attempt) {
    if (expired()) return finish(Outcome::kCancelled, StopStatus(session));

    AdmitResult admit = admission_.Admit(cls, expired);
    report.queue_wait_ms += admit.queue_wait_ms;
    if (!admit.status.ok()) {
      if (admit.status.IsUnavailable()) {
        report.retry_after_ms = admit.retry_after_ms;
        return finish(Outcome::kShed, std::move(admit.status));
      }
      return finish(Outcome::kCancelled, StopStatus(session));
    }

    // Slot held; carve the budget out of the global pool. A refusal here is
    // the same condition as a mid-query ResourceExhausted — ride the same
    // retry path (backoff gives concurrent queries time to finish and
    // return their reservations).
    Status attempt_status = pool_.Reserve(budget, config_.pool_wait_limit_ms,
                                          expired);
    if (attempt_status.ok()) {
      ++report.attempts;
      report.budget_bytes = budget;
      ctx.PrepareRerun(budget);
      if (session != nullptr) session->ArmControl(ctx.control());

      Clock::time_point exec_start = Clock::now();
      {
        common::ScopedTaskPriority scope(priority);
        if (BDCC_UNLIKELY(fault::ShouldFail(fault::kSchedulerInject))) {
          ++ctx.stats()->faults_injected;
          attempt_status = Status::ResourceExhausted(
              "injected dispatch fault (scheduler.inject)");
        } else {
          Result<exec::Batch> result = fn(&ctx, budget);
          if (result.ok()) {
            report.result = std::move(result).value();
          } else {
            attempt_status = std::move(result).status();
          }
        }
      }
      report.exec_ms += MsSince(exec_start);

      if (session != nullptr) session->DisarmControl();
      report.peak_bytes = std::max(report.peak_bytes,
                                   ctx.memory()->peak_bytes());
      report.leaked_bytes = ctx.memory()->current_bytes();
      pool_.Release(budget);
      admission_.Release(cls);
    } else {
      admission_.Release(cls);
      if (attempt_status.IsCancelled()) {
        return finish(Outcome::kCancelled, StopStatus(session));
      }
      // else ResourceExhausted: fall through to the retry classification.
    }

    if (attempt_status.ok()) return finish(Outcome::kOk, Status::OK());
    if (attempt_status.IsCancelled() || attempt_status.IsDeadlineExceeded()) {
      return finish(Outcome::kCancelled, std::move(attempt_status));
    }
    if (!attempt_status.IsResourceExhausted()) {
      return finish(Outcome::kError, std::move(attempt_status));
    }

    // ResourceExhausted: retry with an escalated budget, unless K
    // re-admissions are spent.
    if (attempt >= config_.max_retries) {
      return finish(Outcome::kExhausted, std::move(attempt_status));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.retries;
    }
    double nominal = config_.backoff_base_ms *
                     static_cast<double>(uint64_t{1} << std::min(attempt, 20));
    double delay = std::min(config_.backoff_max_ms, nominal) * JitterFactor();
    if (!Backoff(delay, session, &report)) {
      return finish(Outcome::kCancelled, StopStatus(session));
    }
    budget = std::min(config_.pool_bytes, budget * 2);
  }
}

RunnerStats QueryRunner::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace serve
}  // namespace bdcc
