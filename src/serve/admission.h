// Admission control for concurrent query serving.
//
// Two cooperating gates sit in front of query execution:
//
//  - AdmissionController: a bounded FIFO queue per query class
//    (interactive/batch) in front of a fixed number of execution slots per
//    class. A query whose class queue is full is shed immediately with
//    Status::Unavailable and a retry-after hint scaled by the queue depth;
//    a query that waits longer than the class's queue-wait limit is shed
//    before it ever executes (work not started is work not wasted).
//
//  - MemoryPool: a global byte pool carved into per-query budgets. A query
//    reserves its budget before executing and returns it afterwards, so the
//    aggregate footprint of concurrent queries is bounded by the pool even
//    when each query individually stays under its own MemoryTracker limit.
//
// Both gates block by polling with a short timed wait (the same 1 ms
// pattern as TaskScheduler::TaskGroup::Wait) so an externally flipped
// cancel flag is observed promptly without a dedicated wakeup channel.
//
// Thread-safety: all members of both classes are safe to call from any
// thread; one controller/pool pair is shared by every serving thread.
#ifndef BDCC_SERVE_ADMISSION_H_
#define BDCC_SERVE_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <list>
#include <mutex>

#include "common/macros.h"
#include "common/status.h"

namespace bdcc {
namespace serve {

/// Scheduling class of a query. Interactive queries get their own slots and
/// queue and run their tasks in the scheduler's high-priority lane; batch
/// queries absorb the remaining capacity.
enum class QueryClass : int { kInteractive = 0, kBatch = 1 };
inline constexpr int kNumQueryClasses = 2;

inline const char* QueryClassName(QueryClass cls) {
  return cls == QueryClass::kInteractive ? "interactive" : "batch";
}

/// Per-class admission limits.
struct ClassLimits {
  /// Queries of this class executing at once.
  int slots = 1;
  /// Queries of this class waiting for a slot before new arrivals are shed.
  int queue_capacity = 4;
  /// Longest a query may wait in the queue before being shed (0 = no
  /// limit). Shedding a stale waiter beats executing it: its client has
  /// likely timed out already.
  double max_queue_wait_ms = 0;
};

struct AdmissionConfig {
  ClassLimits limits[kNumQueryClasses];
  /// Base of the retry-after hint attached to queue-full sheds; the hint is
  /// base * (queued + executing + 1) so clients back off harder the deeper
  /// the backlog.
  double retry_after_base_ms = 5.0;

  ClassLimits& of(QueryClass cls) { return limits[static_cast<int>(cls)]; }
  const ClassLimits& of(QueryClass cls) const {
    return limits[static_cast<int>(cls)];
  }
  int total_slots() const {
    int n = 0;
    for (const ClassLimits& l : limits) n += l.slots;
    return n;
  }
};

/// What Admit decided, plus how long the caller queued.
struct AdmitResult {
  /// OK: a slot is held and must be returned with Release(). Unavailable:
  /// shed (queue full or queue-wait limit), retry_after_ms is set.
  /// Cancelled: the caller's cancel predicate fired while queued.
  Status status;
  double queue_wait_ms = 0;
  double retry_after_ms = 0;
};

/// Counters since construction (monotonic; read with stats()).
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_queue_wait = 0;
  uint64_t cancelled_in_queue = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);
  BDCC_DISALLOW_COPY_AND_ASSIGN(AdmissionController);

  /// Block until a slot of `cls` is granted (FIFO within the class) or the
  /// query is shed/cancelled. `cancelled` (may be null) is polled about
  /// once per millisecond while waiting. On OK the caller holds one slot
  /// and must call Release(cls) exactly once after execution.
  AdmitResult Admit(QueryClass cls, const std::function<bool()>& cancelled);

  /// Return a slot taken by a successful Admit.
  void Release(QueryClass cls);

  AdmissionStats stats() const;
  const AdmissionConfig& config() const { return config_; }

 private:
  struct ClassState {
    int executing = 0;
    // FIFO of waiter ids; the front waiter is next to be granted a slot.
    // A cancelled/timed-out waiter erases itself, so the list never holds
    // abandoned entries.
    std::list<uint64_t> queue;
  };

  AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  ClassState classes_[kNumQueryClasses];
  uint64_t next_waiter_id_ = 0;
  AdmissionStats stats_;
};

/// Global serving memory pool: Reserve carves a per-query budget out of the
/// shared capacity, blocking while concurrent queries hold too much of it.
class MemoryPool {
 public:
  explicit MemoryPool(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}
  BDCC_DISALLOW_COPY_AND_ASSIGN(MemoryPool);

  /// Block until `bytes` are reserved, the wait limit passes
  /// (ResourceExhausted — the pool is the resource that ran out), or
  /// `cancelled` (may be null) fires. Requests larger than the capacity
  /// fail immediately. wait_limit_ms 0 means fail immediately unless the
  /// bytes are free right now.
  Status Reserve(uint64_t bytes, double wait_limit_ms,
                 const std::function<bool()>& cancelled);

  /// Return bytes taken by a successful Reserve.
  void Release(uint64_t bytes);

  uint64_t capacity() const { return capacity_; }
  uint64_t reserved() const;

 private:
  const uint64_t capacity_;
  mutable std::mutex mu_;
  uint64_t reserved_ = 0;
};

}  // namespace serve
}  // namespace bdcc

#endif  // BDCC_SERVE_ADMISSION_H_
