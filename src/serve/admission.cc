#include "serve/admission.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <thread>

namespace bdcc {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  for (const ClassLimits& l : config_.limits) {
    BDCC_CHECK_MSG(l.slots >= 1, "AdmissionController: slots must be >= 1");
    BDCC_CHECK_MSG(l.queue_capacity >= 0,
                   "AdmissionController: negative queue capacity");
  }
}

AdmitResult AdmissionController::Admit(
    QueryClass cls, const std::function<bool()>& cancelled) {
  const ClassLimits& limits = config_.of(cls);
  Clock::time_point start = Clock::now();
  AdmitResult result;

  std::unique_lock<std::mutex> lock(mu_);
  ClassState& cs = classes_[static_cast<int>(cls)];

  // Fast path: no backlog and a free slot — skip the queue entirely.
  if (cs.queue.empty() && cs.executing < limits.slots) {
    ++cs.executing;
    ++stats_.admitted;
    return result;
  }

  // Queue-full shed: refuse before queuing, with a hint proportional to the
  // load already ahead of this query.
  if (static_cast<int>(cs.queue.size()) >= limits.queue_capacity) {
    ++stats_.shed_queue_full;
    double depth = static_cast<double>(cs.queue.size() + cs.executing + 1);
    result.retry_after_ms = config_.retry_after_base_ms * depth;
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "%s admission queue full (%zu waiting, %d executing); "
                  "retry after %.0f ms",
                  QueryClassName(cls), cs.queue.size(), cs.executing,
                  result.retry_after_ms);
    result.status = Status::Unavailable(msg);
    return result;
  }

  uint64_t id = next_waiter_id_++;
  cs.queue.push_back(id);
  auto self = std::prev(cs.queue.end());
  while (true) {
    // Timed wait so the cancel predicate and the wait limit are observed
    // even when no Release ever fires (overloaded pool, hung query).
    slot_free_.wait_for(lock, std::chrono::milliseconds(1));
    if (cs.queue.front() == id && cs.executing < limits.slots) {
      cs.queue.erase(self);
      ++cs.executing;
      ++stats_.admitted;
      result.queue_wait_ms = MsSince(start);
      slot_free_.notify_all();  // the new head may also be grantable
      return result;
    }
    if (cancelled != nullptr && cancelled()) {
      cs.queue.erase(self);
      ++stats_.cancelled_in_queue;
      result.queue_wait_ms = MsSince(start);
      result.status = Status::Cancelled("query cancelled while queued");
      slot_free_.notify_all();
      return result;
    }
    double waited = MsSince(start);
    if (limits.max_queue_wait_ms > 0 && waited >= limits.max_queue_wait_ms) {
      cs.queue.erase(self);
      ++stats_.shed_queue_wait;
      result.queue_wait_ms = waited;
      double depth = static_cast<double>(cs.queue.size() + cs.executing + 1);
      result.retry_after_ms = config_.retry_after_base_ms * depth;
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "%s query shed after %.1f ms queue wait (limit %.1f ms); "
                    "retry after %.0f ms",
                    QueryClassName(cls), waited, limits.max_queue_wait_ms,
                    result.retry_after_ms);
      result.status = Status::Unavailable(msg);
      slot_free_.notify_all();
      return result;
    }
  }
}

void AdmissionController::Release(QueryClass cls) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ClassState& cs = classes_[static_cast<int>(cls)];
    BDCC_CHECK_MSG(cs.executing > 0,
                   "AdmissionController::Release without a held slot");
    --cs.executing;
  }
  slot_free_.notify_all();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status MemoryPool::Reserve(uint64_t bytes, double wait_limit_ms,
                           const std::function<bool()>& cancelled) {
  if (bytes > capacity_) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "budget of %llu bytes exceeds the %llu-byte serving pool",
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(capacity_));
    return Status::ResourceExhausted(msg);
  }
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (capacity_ - reserved_ >= bytes) {
      reserved_ += bytes;
      return Status::OK();
    }
    if (cancelled != nullptr && cancelled()) {
      return Status::Cancelled("query cancelled waiting for pool memory");
    }
    double waited = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (waited >= wait_limit_ms) {
      char msg[160];
      std::snprintf(
          msg, sizeof(msg),
          "serving pool exhausted: %llu of %llu bytes reserved, need %llu",
          static_cast<unsigned long long>(reserved_),
          static_cast<unsigned long long>(capacity_),
          static_cast<unsigned long long>(bytes));
      return Status::ResourceExhausted(msg);
    }
    // Poll: releases are frequent (every query end) and the wait is
    // bounded, so a 1 ms cadence costs nothing measurable.
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    lock.lock();
  }
}

void MemoryPool::Release(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  BDCC_CHECK_MSG(bytes <= reserved_, "MemoryPool::Release over-release");
  reserved_ -= bytes;
}

uint64_t MemoryPool::reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

}  // namespace serve
}  // namespace bdcc
