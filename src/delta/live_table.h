// A live BDCC table: versioned base + delta store + snapshot epochs.
//
// LiveTable turns a loaded BdccTable into a table that takes concurrent
// appends while serving reads. Its state is a chain of immutable
// TableSnapshot versions:
//
//   snapshot = { epoch, base version (a whole BdccTable), delta chunk set }
//
// Appends seal a DeltaChunk and publish epoch N+1 with the chunk added;
// merge passes rewrite dirty groups of the base and publish epoch N+1 with
// a new base version and the consumed chunks removed. Publication is a
// pointer swap under one mutex — readers that called OpenSnapshot() keep
// their epoch pinned (shared ownership of the base version and every chunk)
// and are never invalidated; an epoch retires when the last reader handle
// closes. Nothing a reader can reach is ever mutated after publication,
// which is the whole concurrency story: scans need no locks, and a failed
// or cancelled merge simply publishes nothing.
//
// Merge ordering contract: the merged base is byte-for-byte the table a
// serial AppendToBdccTable of the same rows would produce — base rows keep
// their order, delta rows sort in stably after them (append order across
// chunks, key order within) — so scans over {merged base} and {old base +
// delta legs} return identical multisets, and sandwich plans become valid
// again the moment the delta drains.
#ifndef BDCC_DELTA_LIVE_TABLE_H_
#define BDCC_DELTA_LIVE_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bdcc/bdcc_table.h"
#include "common/result.h"
#include "delta/delta_store.h"
#include "exec/exec_context.h"

namespace bdcc {
namespace delta {

/// \brief One immutable published version of a live table. Readers hold it
/// by shared_ptr; everything reachable from it is frozen.
struct TableSnapshot {
  uint64_t epoch = 0;
  /// The clustered base at this epoch (group set, zone maps, count table).
  std::shared_ptr<const BdccTable> base;
  /// Unmerged delta chunks, append order (oldest first).
  std::vector<std::shared_ptr<const DeltaChunk>> chunks;
  /// Total rows across chunks.
  uint64_t delta_rows = 0;
  /// Sequence number of the newest chunk merged into `base` (0 = none):
  /// with chunk sequence numbers assigned 1,2,... per append, the pair
  /// {base, delta_watermark} names this version's split point exactly.
  uint64_t delta_watermark = 0;
};

/// \brief A BDCC table taking live appends: owns the version chain, the
/// delta store, and reader/epoch accounting. Append/OpenSnapshot/Merge are
/// thread-safe; the LiveTable must outlive every snapshot handle it issued.
class LiveTable {
 public:
  struct Options {
    /// Zone-map granularity for delta chunks; 0 adopts the base table's.
    uint32_t zone_rows = 0;
    /// Cap on tracked delta bytes (appends past it get ResourceExhausted);
    /// 0 = unlimited.
    uint64_t delta_memory_limit = 0;
  };

  struct MergeOptions {
    /// Merge at most this many dirty groups per pass, largest delta first
    /// (rows of deferred groups stay in the delta as a residual chunk);
    /// 0 = merge every dirty group.
    size_t max_groups = 0;
  };

  struct MergeStats {
    uint64_t epoch = 0;  // epoch after the pass (unchanged when a no-op)
    uint64_t rows_merged = 0;
    uint64_t groups_merged = 0;
    uint64_t rows_deferred = 0;
  };

  struct Stats {
    uint64_t epoch = 0;
    uint64_t rows_appended = 0;
    uint64_t chunks_appended = 0;
    uint64_t delta_rows = 0;    // current snapshot
    uint64_t delta_chunks = 0;  // current snapshot
    uint64_t delta_bytes = 0;   // tracked chunk bytes still alive
    uint64_t merges_completed = 0;
    uint64_t merges_failed = 0;
    uint64_t rows_merged = 0;
    uint64_t epochs_retired = 0;
    uint64_t open_snapshots = 0;
  };

  /// `resolver` computes appended rows' dimension bins (must outlive the
  /// LiveTable). The base must not have been small-group consolidated (its
  /// physical row order must equal the clustered order, as for bulk append).
  static Result<std::unique_ptr<LiveTable>> Create(
      BdccTable base, const TableResolver* resolver, Options options);
  static Result<std::unique_ptr<LiveTable>> Create(
      BdccTable base, const TableResolver* resolver) {
    return Create(std::move(base), resolver, Options());
  }

  ~LiveTable();
  BDCC_DISALLOW_COPY_AND_ASSIGN(LiveTable);

  const std::string& name() const { return name_; }

  /// Append one batch (source schema, the table's name). On success the new
  /// epoch's snapshot is current; on any failure (schema, fault injection,
  /// memory budget) no state changed. Thread-safe.
  Result<uint64_t> Append(const Table& rows);

  /// Pin the current version. The handle keeps the base version and chunk
  /// set alive; dropping the last handle of a superseded epoch retires it.
  std::shared_ptr<const TableSnapshot> OpenSnapshot();

  /// One incremental re-clustering pass: bucket delta rows by BDCC key,
  /// pick the dirty groups (bounded by `options.max_groups`), rewrite those
  /// groups of the base in key order, and publish a new epoch atomically.
  /// Passes serialize on an internal mutex; appends proceed concurrently
  /// (chunks sealed during the pass stay in the delta). `ctx` (optional)
  /// takes merge counters and supplies the QueryControl polled between
  /// groups — cancel/deadline unwind the pass with nothing published, as
  /// does a fired `delta.merge` fault.
  Result<MergeStats> Merge(const MergeOptions& options,
                           exec::ExecContext* ctx = nullptr);
  Result<MergeStats> Merge() { return Merge(MergeOptions(), nullptr); }

  /// Rows currently in the delta (cheap snapshot read).
  uint64_t delta_rows() const;
  uint64_t epoch() const;
  Stats stats() const;

  DeltaStore& delta_store() { return *store_; }

  /// Called after every successful Append publication (merge triggering).
  /// Runs on the appending thread, outside the publication lock.
  void SetAppendObserver(std::function<void()> observer);

 private:
  LiveTable() = default;

  // Swap `next` in as the current snapshot and retire the previous epoch if
  // it has no open reader handles. Requires mu_ held.
  void PublishLocked(std::shared_ptr<const TableSnapshot> next);
  void OnSnapshotReleased(uint64_t epoch);

  std::string name_;
  const TableResolver* resolver_ = nullptr;
  uint32_t zone_rows_ = 0;
  std::unique_ptr<DeltaStore> store_;

  mutable std::mutex mu_;  // snapshot pointer + reader registry + counters
  std::shared_ptr<const TableSnapshot> current_;
  std::map<uint64_t, uint64_t> readers_;  // epoch -> open handles
  uint64_t next_chunk_seq_ = 1;
  std::vector<uint64_t> chunk_seqs_;  // parallel to current_->chunks
  uint64_t rows_appended_ = 0;
  uint64_t chunks_appended_ = 0;
  uint64_t merges_completed_ = 0;
  uint64_t merges_failed_ = 0;
  uint64_t rows_merged_ = 0;
  uint64_t epochs_retired_ = 0;

  std::mutex observer_mu_;
  std::function<void()> observer_;

  std::mutex merge_mu_;  // one merge pass at a time
};

}  // namespace delta
}  // namespace bdcc

#endif  // BDCC_DELTA_LIVE_TABLE_H_
