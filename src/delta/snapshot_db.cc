#include "delta/snapshot_db.h"

namespace bdcc {
namespace delta {

SnapshotDb::SnapshotDb(const opt::PhysicalDb* base) : base_(base) {
  BDCC_CHECK(base_ != nullptr);
  BDCC_CHECK_MSG(base_->scheme() == opt::Scheme::kBdcc,
                 "SnapshotDb overlays live tables on the BDCC scheme only");
}

void SnapshotDb::AddLiveTable(LiveTable* table) {
  BDCC_CHECK(table != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[table->name()];
  e.live = table;
  e.pinned = table->OpenSnapshot();
}

void SnapshotDb::Refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    // Pin the new epoch before dropping the old handle so the table is
    // never observable unpinned.
    std::shared_ptr<const TableSnapshot> fresh = e.live->OpenSnapshot();
    e.pinned = std::move(fresh);
  }
}

uint64_t SnapshotDb::pinned_epoch(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(table);
  return it == entries_.end() ? 0 : it->second.pinned->epoch;
}

opt::Scheme SnapshotDb::scheme() const { return base_->scheme(); }

const catalog::Catalog& SnapshotDb::schema_catalog() const {
  return base_->schema_catalog();
}

const Table* SnapshotDb::storage(const std::string& table) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(table);
    if (it != entries_.end()) return &it->second.pinned->base->data();
  }
  return base_->storage(table);
}

const BdccTable* SnapshotDb::bdcc(const std::string& table) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(table);
    if (it != entries_.end()) return it->second.pinned->base.get();
  }
  return base_->bdcc(table);
}

std::string SnapshotDb::sorted_on(const std::string& table) const {
  return base_->sorted_on(table);
}

bool SnapshotDb::unique_key(const std::string& table,
                            const std::string& column) const {
  return base_->unique_key(table, column);
}

std::shared_ptr<const TableSnapshot> SnapshotDb::snapshot(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(table);
  return it == entries_.end() ? nullptr : it->second.pinned;
}

}  // namespace delta
}  // namespace bdcc
