#include "delta/delta_merger.h"

#include <thread>
#include <utility>

namespace bdcc {
namespace delta {

DeltaMerger::DeltaMerger(LiveTable* table, common::TaskScheduler* scheduler,
                         Options options)
    : table_(table),
      scheduler_(scheduler),
      options_(options),
      group_(scheduler) {
  BDCC_CHECK(table_ != nullptr && scheduler_ != nullptr);
  if (options_.trigger_rows == 0) options_.trigger_rows = 1;
  if (options_.observe_appends) {
    table_->SetAppendObserver([this] { Poke(); });
  }
}

DeltaMerger::~DeltaMerger() {
  if (options_.observe_appends) table_->SetAppendObserver(nullptr);
  Stop();
}

void DeltaMerger::Poke() {
  if (stopped_.load(std::memory_order_acquire)) return;
  if (table_->delta_rows() < options_.trigger_rows) return;
  bool expected = false;
  if (!in_flight_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    return;  // a chain is already running; it re-checks before finishing
  }
  common::ScopedTaskPriority priority(options_.priority);
  std::lock_guard<std::mutex> lock(group_mu_);
  // Re-check under the lock: Stop() may have drained between the claim and
  // here, and a submit after Wait() would leak a task past shutdown.
  if (stopped_.load(std::memory_order_acquire)) {
    in_flight_.store(false, std::memory_order_release);
    return;
  }
  group_.Submit([this] { RunChain(); });
}

void DeltaMerger::RunChain() {
  while (!stopped_.load(std::memory_order_acquire) &&
         table_->delta_rows() >= options_.trigger_rows) {
    bool ok;
    uint64_t rows_merged = 0;
    {
      std::lock_guard<std::mutex> lock(ctx_mu_);
      LiveTable::MergeOptions merge_options;
      merge_options.max_groups = options_.max_groups_per_pass;
      Result<LiveTable::MergeStats> pass = table_->Merge(merge_options, &ctx_);
      ok = pass.ok();
      if (ok) {
        rows_merged = pass.value().rows_merged;
      } else {
        last_error_ = pass.status();
      }
    }
    if (ok) {
      passes_completed_.fetch_add(1, std::memory_order_relaxed);
      // A fully-deferred pass (all groups over the bound) cannot shrink the
      // delta further; stop rather than spin.
      if (rows_merged == 0) break;
    } else {
      passes_failed_.fetch_add(1, std::memory_order_relaxed);
      break;  // leave the delta intact; the next poke retries
    }
  }
  in_flight_.store(false, std::memory_order_release);
  // An append may have landed after the loop's last delta_rows() read but
  // before the claim release — its Poke saw in_flight_ and was absorbed.
  if (!stopped_.load(std::memory_order_acquire) &&
      table_->delta_rows() >= options_.trigger_rows) {
    Poke();
  }
}

void DeltaMerger::Stop() {
  stopped_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(ctx_mu_);
    ctx_.control()->RequestCancel();
  }
  std::lock_guard<std::mutex> lock(group_mu_);
  group_.Wait();
}

void DeltaMerger::Drain() {
  while (!stopped_.load(std::memory_order_acquire) &&
         (in_flight_.load(std::memory_order_acquire) ||
          table_->delta_rows() >= options_.trigger_rows)) {
    Poke();
    std::this_thread::yield();
  }
}

Status DeltaMerger::last_error() const {
  std::lock_guard<std::mutex> lock(ctx_mu_);
  return last_error_;
}

exec::ExecStats DeltaMerger::background_stats() const {
  std::lock_guard<std::mutex> lock(ctx_mu_);
  return *ctx_.stats();
}

}  // namespace delta
}  // namespace bdcc
