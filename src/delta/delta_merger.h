// Background incremental re-clustering for a live table.
//
// A DeltaMerger hangs a merge policy off a LiveTable: every successful
// append pokes it (via the table's append observer), and when the delta has
// grown past `trigger_rows` it schedules one task on the work-stealing
// scheduler that runs bounded LiveTable::Merge passes until the delta is
// back under the trigger. The task runs in the scheduler's *normal* lane by
// default — re-clustering is batch work; interactive queries' morsels route
// through the high-priority lane and jump ahead of it (see
// common/task_scheduler.h).
//
// At most one pass chain is in flight at a time (an atomic claim); pokes
// while one runs are absorbed, and the chain re-checks the trigger after
// releasing its claim so a concurrent append can never be lost between
// "loop decided to exit" and "claim released". Stop() cancels the in-flight
// pass through the merger's QueryControl (LiveTable::Merge polls it between
// groups and unwinds publishing nothing) and drains the task.
#ifndef BDCC_DELTA_DELTA_MERGER_H_
#define BDCC_DELTA_DELTA_MERGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "common/task_scheduler.h"
#include "delta/live_table.h"
#include "exec/exec_context.h"

namespace bdcc {
namespace delta {

/// \brief Schedules LiveTable merge passes in the background.
class DeltaMerger {
 public:
  struct Options {
    /// Schedule a pass once delta_rows() reaches this many rows.
    uint64_t trigger_rows = 4096;
    /// Bound per pass (LiveTable::MergeOptions::max_groups); 0 = all dirty
    /// groups in one pass.
    size_t max_groups_per_pass = 0;
    /// Scheduling class of merge tasks. Keep kNormal so interactive queries
    /// overtake re-clustering.
    common::TaskPriority priority = common::TaskPriority::kNormal;
    /// Install this merger as `table`'s append observer (pokes on append).
    bool observe_appends = true;
  };

  /// `table` and `scheduler` must outlive the merger.
  DeltaMerger(LiveTable* table, common::TaskScheduler* scheduler,
              Options options);
  DeltaMerger(LiveTable* table, common::TaskScheduler* scheduler)
      : DeltaMerger(table, scheduler, Options()) {}
  ~DeltaMerger();  // Stop()s
  BDCC_DISALLOW_COPY_AND_ASSIGN(DeltaMerger);

  /// Schedule a pass chain if the delta is over the trigger and none is in
  /// flight. Safe from any thread; cheap when nothing to do.
  void Poke();

  /// Cancel any in-flight pass (nothing gets published) and drain the task.
  /// The merger stays stopped; idempotent.
  void Stop();

  /// Block until the delta is below the trigger and no pass is in flight
  /// (helps run scheduler tasks while waiting). For tests and benchmarks.
  void Drain();

  uint64_t passes_completed() const {
    return passes_completed_.load(std::memory_order_relaxed);
  }
  uint64_t passes_failed() const {
    return passes_failed_.load(std::memory_order_relaxed);
  }
  /// First/most recent non-OK merge status (OK when none failed yet).
  Status last_error() const;
  /// Merge counters accumulated across background passes (merges_completed,
  /// faults_injected, morsels_cancelled).
  exec::ExecStats background_stats() const;

 private:
  void RunChain();

  LiveTable* table_;
  common::TaskScheduler* scheduler_;
  Options options_;

  std::atomic<bool> stopped_{false};
  std::atomic<bool> in_flight_{false};
  std::atomic<uint64_t> passes_completed_{0};
  std::atomic<uint64_t> passes_failed_{0};

  // Merge passes run on scheduler workers with this context: its
  // QueryControl is the Stop() channel, its stats accumulate across passes
  // (guarded by ctx_mu_ against concurrent background_stats() readers —
  // passes themselves are serialized by the in-flight claim).
  mutable std::mutex ctx_mu_;
  mutable exec::ExecContext ctx_;
  Status last_error_;  // guarded by ctx_mu_

  std::mutex group_mu_;  // serializes Submit (Poke threads) vs Wait (Stop)
  common::TaskScheduler::TaskGroup group_;
};

}  // namespace delta
}  // namespace bdcc

#endif  // BDCC_DELTA_DELTA_MERGER_H_
