#include "delta/delta_store.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "bdcc/append.h"
#include "common/fault_injection.h"

namespace bdcc {
namespace delta {

namespace {

// Empty table with `base`'s data() schema (including `_bdcc_`). String
// columns get fresh dictionaries: chunks must never intern into the base
// table's shared dictionaries while readers decode them.
Table EmptyChunkTable(const BdccTable& base) {
  const Table& shape = base.data();
  Table out(shape.name());
  for (size_t c = 0; c < shape.num_columns(); ++c) {
    Status s = out.AddColumn(shape.column_name(static_cast<int>(c)),
                             Column(shape.column(static_cast<int>(c)).type()));
    BDCC_CHECK(s.ok());
  }
  return out;
}

}  // namespace

Result<DeltaChunk> DeltaChunk::Build(const BdccTable& base, const Table& rows,
                                     const TableResolver& resolver,
                                     uint32_t zone_rows,
                                     exec::MemoryTracker* memory) {
  if (BDCC_UNLIKELY(fault::ShouldFail(fault::kDeltaAppend))) {
    return Status::IOError("injected append fault (delta chunk build)");
  }
  if (rows.num_columns() + 1 != base.data().num_columns()) {
    return Status::InvalidArgument("appended rows have a different schema");
  }
  BDCC_ASSIGN_OR_RETURN(std::vector<uint64_t> keys,
                        ComputeBdccKeys(base, rows, resolver));

  uint64_t n = rows.num_rows();
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });

  const Table& shape = base.data();
  int bdcc_col = base.bdcc_column_index();
  int src = 0;
  std::vector<uint64_t> sorted_keys(n);
  for (uint64_t i = 0; i < n; ++i) sorted_keys[i] = keys[perm[i]];
  Table data(shape.name());
  for (size_t c = 0; c < shape.num_columns(); ++c) {
    const Column& ref = shape.column(static_cast<int>(c));
    // Fresh dictionaries: chunks must never intern into the base table's
    // shared dictionaries while readers decode them.
    Column col(ref.type());
    col.Reserve(n);
    if (static_cast<int>(c) == bdcc_col) {
      for (uint64_t k : sorted_keys) col.AppendInt64(static_cast<int64_t>(k));
    } else {
      if (shape.column_name(static_cast<int>(c)) != rows.column_name(src) ||
          ref.type() != rows.column(src).type()) {
        return Status::InvalidArgument("appended rows have a different schema");
      }
      const Column& from = rows.column(src++);
      for (uint32_t r : perm) col.AppendFrom(from, r);
    }
    BDCC_RETURN_NOT_OK(
        data.AddColumn(shape.column_name(static_cast<int>(c)), std::move(col)));
  }
  DeltaChunk chunk(std::move(data));
  BDCC_RETURN_NOT_OK(chunk.Seal(base, sorted_keys, zone_rows, memory));
  return chunk;
}

Result<DeltaChunk> DeltaChunk::FromKeyedRows(
    const BdccTable& base,
    const std::vector<std::pair<const DeltaChunk*, uint64_t>>& sources,
    uint32_t zone_rows, exec::MemoryTracker* memory) {
  DeltaChunk chunk(EmptyChunkTable(base));
  for (const auto& [src, row] : sources) {
    chunk.data_.AppendRowsFrom(src->data(), row, row + 1);
  }
  std::vector<uint64_t> keys(sources.size());
  const auto& lane = chunk.data_.column(base.bdcc_column_index()).i64();
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint64_t>(lane[i]);
  }
  BDCC_RETURN_NOT_OK(chunk.Seal(base, keys, zone_rows, memory));
  return chunk;
}

Status DeltaChunk::Seal(const BdccTable& base,
                        const std::vector<uint64_t>& keys, uint32_t zone_rows,
                        exec::MemoryTracker* memory) {
  data_.BuildZoneMaps(zone_rows);
  int shift = base.full_bits() - base.count_bits();
  for (uint64_t i = 0; i < keys.size(); ++i) {
    BDCC_CHECK(i == 0 || keys[i - 1] <= keys[i]);
    uint64_t reduced = keys[i] >> shift;
    if (groups_.empty() || groups_.back().key != reduced) {
      groups_.push_back(GroupSlice{reduced, i, i + 1});
    } else {
      groups_.back().row_end = i + 1;
    }
  }
  bytes_ = data_.DiskBytes();
  if (memory != nullptr) {
    if (!memory->TryAllocate(bytes_)) {
      bytes_ = 0;
      return Status::ResourceExhausted(
          "delta store: appending this batch would exceed the delta memory "
          "budget");
    }
    memory_ = memory;
  }
  return Status::OK();
}

DeltaChunk::DeltaChunk(DeltaChunk&& other) noexcept
    : data_(std::move(other.data_)),
      groups_(std::move(other.groups_)),
      bytes_(other.bytes_),
      memory_(other.memory_) {
  other.bytes_ = 0;
  other.memory_ = nullptr;
}

DeltaChunk& DeltaChunk::operator=(DeltaChunk&& other) noexcept {
  if (this != &other) {
    if (memory_ != nullptr) memory_->Release(bytes_, "delta chunk");
    data_ = std::move(other.data_);
    groups_ = std::move(other.groups_);
    bytes_ = other.bytes_;
    memory_ = other.memory_;
    other.bytes_ = 0;
    other.memory_ = nullptr;
  }
  return *this;
}

DeltaChunk::~DeltaChunk() {
  if (memory_ != nullptr) memory_->Release(bytes_, "delta chunk");
}

Result<std::shared_ptr<const DeltaChunk>> DeltaStore::Append(
    const BdccTable& base, const Table& rows,
    const TableResolver& resolver) const {
  BDCC_ASSIGN_OR_RETURN(
      DeltaChunk chunk,
      DeltaChunk::Build(base, rows, resolver, zone_rows_, &memory_));
  return std::make_shared<const DeltaChunk>(std::move(chunk));
}

}  // namespace delta
}  // namespace bdcc
