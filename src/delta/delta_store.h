// Unclustered append region of a live BDCC table.
//
// Every Append(batch) against a live table seals one immutable DeltaChunk:
// the batch's rows with their `_bdcc_` key column computed up the dimension
// paths (bdcc/append.cc's key computation — Definition 4 makes a new tuple's
// key independent of old data), sorted by that key, zone-mapped at the base
// table's granularity, and pre-bucketed into per-group row slices at the
// count-table granularity so the background merger can pick dirty groups
// without rescanning. Chunks are immutable after Build, which is what makes
// concurrent scan/merge/append safe without read-side locking: readers pin
// a snapshot (see live_table.h) whose chunk set never mutates.
//
// Chunk string columns carry their *own* dictionaries — sharing the base
// table's would mean interning into a dictionary concurrent readers are
// decoding. Scan batches therefore never mix clustered and delta rows (the
// delta-side scan leg cuts batches at chunk boundaries).
//
// Memory: every chunk charges its footprint to the store's MemoryTracker on
// Build and releases it on destruction (when the last snapshot holding the
// chunk closes). A tracker limit turns appends past the budget into clean
// ResourceExhausted refusals with the store unchanged.
#ifndef BDCC_DELTA_DELTA_STORE_H_
#define BDCC_DELTA_DELTA_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bdcc/bdcc_table.h"
#include "common/result.h"
#include "exec/memory_tracker.h"
#include "storage/table.h"

namespace bdcc {
namespace delta {

/// \brief One immutable, sealed batch of appended rows.
class DeltaChunk {
 public:
  /// Rows of one count-table-granularity group inside data() (half-open).
  struct GroupSlice {
    uint64_t key = 0;  // reduced-granularity _bdcc_ value
    uint64_t row_begin = 0;
    uint64_t row_end = 0;
  };

  /// \brief Seal `rows` (source schema, the table's name) into a chunk:
  /// compute keys via `base`'s uses, sort, zone-map, bucket. Fails without
  /// side effects on schema mismatch, key-computation errors, a fired
  /// `delta.append` fault (IOError), or a delta memory budget refusal
  /// (ResourceExhausted).
  static Result<DeltaChunk> Build(const BdccTable& base, const Table& rows,
                                  const TableResolver& resolver,
                                  uint32_t zone_rows,
                                  exec::MemoryTracker* memory);

  /// \brief Seal rows that already carry their `_bdcc_` column (the merge
  /// path's residual chunk: rows of groups a bounded pass deferred).
  /// `sources[i]` = {chunk, row}; rows must be given in full-key order.
  static Result<DeltaChunk> FromKeyedRows(
      const BdccTable& base,
      const std::vector<std::pair<const DeltaChunk*, uint64_t>>& sources,
      uint32_t zone_rows, exec::MemoryTracker* memory);

  DeltaChunk(DeltaChunk&& other) noexcept;
  DeltaChunk& operator=(DeltaChunk&& other) noexcept;
  ~DeltaChunk();
  BDCC_DISALLOW_COPY_AND_ASSIGN(DeltaChunk);

  /// Chunk rows in the base data()'s column schema (including `_bdcc_`),
  /// sorted on the key, with zone maps built.
  const Table& data() const { return data_; }
  uint64_t num_rows() const { return data_.num_rows(); }

  /// Key-ascending per-group slices at the count-table granularity.
  const std::vector<GroupSlice>& groups() const { return groups_; }

  /// Bytes charged to the delta memory tracker.
  uint64_t bytes() const { return bytes_; }

 private:
  explicit DeltaChunk(Table data) : data_(std::move(data)) {}

  // Zone-map, bucket by reduced key, and charge `memory` (shared tail of
  // both build paths; `keys` are the full-granularity sorted keys).
  Status Seal(const BdccTable& base, const std::vector<uint64_t>& keys,
              uint32_t zone_rows, exec::MemoryTracker* memory);

  Table data_;
  std::vector<GroupSlice> groups_;
  uint64_t bytes_ = 0;
  exec::MemoryTracker* memory_ = nullptr;
};

/// \brief Append front of a live table: builds sealed chunks and owns the
/// delta region's memory accounting. Thread-safe — concurrent Append calls
/// build independent chunks (the tracker is atomic); chunk-list publication
/// is the LiveTable's job so it stays atomic with snapshot epochs.
class DeltaStore {
 public:
  /// `zone_rows` is the chunk zone-map granularity (use the base table's);
  /// `memory_limit` > 0 caps the delta region's total tracked bytes.
  DeltaStore(uint32_t zone_rows, uint64_t memory_limit) : zone_rows_(zone_rows) {
    memory_.set_limit(memory_limit);
  }

  /// Seal one append batch against `base` (any version of the table — uses,
  /// masks and schema are version-invariant).
  Result<std::shared_ptr<const DeltaChunk>> Append(
      const BdccTable& base, const Table& rows,
      const TableResolver& resolver) const;

  exec::MemoryTracker* memory() const { return &memory_; }
  uint32_t zone_rows() const { return zone_rows_; }

 private:
  uint32_t zone_rows_;
  mutable exec::MemoryTracker memory_;
};

}  // namespace delta
}  // namespace bdcc

#endif  // BDCC_DELTA_DELTA_STORE_H_
