#include "delta/live_table.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/fault_injection.h"

namespace bdcc {
namespace delta {

namespace {

// One delta row awaiting merge: its full-granularity key plus its home
// (chunk index in the merge's pinned snapshot, row inside the chunk).
struct DeltaRowRef {
  uint64_t key = 0;
  uint32_t chunk = 0;
  uint64_t row = 0;
};

}  // namespace

Result<std::unique_ptr<LiveTable>> LiveTable::Create(
    BdccTable base, const TableResolver* resolver, Options options) {
  BDCC_CHECK(resolver != nullptr);
  if (base.data().num_rows() != base.logical_rows()) {
    return Status::InvalidArgument(
        "live append after small-group consolidation is not supported; the "
        "merge walk needs physical row order == clustered order");
  }
  uint32_t zone_rows = options.zone_rows != 0 ? options.zone_rows
                       : base.data().HasZoneMaps() ? base.data().zone_rows()
                                                   : 1024;
  std::unique_ptr<LiveTable> live(new LiveTable());
  live->name_ = base.name();
  live->resolver_ = resolver;
  live->zone_rows_ = zone_rows;
  live->store_ =
      std::make_unique<DeltaStore>(zone_rows, options.delta_memory_limit);
  auto snap = std::make_shared<TableSnapshot>();
  snap->epoch = 1;
  snap->base = std::make_shared<const BdccTable>(std::move(base));
  live->current_ = std::move(snap);
  return live;
}

LiveTable::~LiveTable() = default;

Result<uint64_t> LiveTable::Append(const Table& rows) {
  if (rows.num_rows() == 0) return 0;
  std::shared_ptr<const BdccTable> base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base = current_->base;
  }
  // Build (sort + zone-map + bucket) outside the lock: keys depend only on
  // the table's uses and masks, which every base version shares.
  BDCC_ASSIGN_OR_RETURN(std::shared_ptr<const DeltaChunk> chunk,
                        store_->Append(*base, rows, *resolver_));
  uint64_t appended = chunk->num_rows();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto next = std::make_shared<TableSnapshot>(*current_);
    next->epoch = current_->epoch + 1;
    next->chunks.push_back(std::move(chunk));
    next->delta_rows += appended;
    chunk_seqs_.push_back(next_chunk_seq_++);
    rows_appended_ += appended;
    ++chunks_appended_;
    PublishLocked(std::move(next));
  }
  std::function<void()> observer;
  {
    std::lock_guard<std::mutex> lock(observer_mu_);
    observer = observer_;
  }
  if (observer) observer();
  return appended;
}

std::shared_ptr<const TableSnapshot> LiveTable::OpenSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const TableSnapshot> snap = current_;
  uint64_t epoch = snap->epoch;
  ++readers_[epoch];
  // Aliasing handle: shares ownership of the snapshot and, on destruction
  // (any thread), checks the reader out of the epoch registry.
  LiveTable* self = this;
  return std::shared_ptr<const TableSnapshot>(
      snap.get(), [self, snap, epoch](const TableSnapshot*) mutable {
        snap.reset();
        self->OnSnapshotReleased(epoch);
      });
}

Result<LiveTable::MergeStats> LiveTable::Merge(const MergeOptions& options,
                                               exec::ExecContext* ctx) {
  std::lock_guard<std::mutex> merge_lock(merge_mu_);

  std::shared_ptr<const TableSnapshot> snap;
  std::vector<uint64_t> seqs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = current_;
    seqs = chunk_seqs_;
  }
  if (snap->chunks.empty()) {
    return MergeStats{snap->epoch, 0, 0, 0};
  }
  const BdccTable& base = *snap->base;
  const int bdcc_col = base.bdcc_column_index();

  // Bucket the delta by dirty group. Chunks are visited oldest-first and
  // rows ascending, so after the stable sort each group's rows sit in
  // (full key, chunk, row) order — exactly the order a serial bulk append's
  // stable sort would have given them.
  std::map<uint64_t, std::vector<DeltaRowRef>> dirty;
  for (uint32_t ci = 0; ci < snap->chunks.size(); ++ci) {
    const DeltaChunk& chunk = *snap->chunks[ci];
    const auto& lane = chunk.data().column(bdcc_col).i64();
    for (const DeltaChunk::GroupSlice& slice : chunk.groups()) {
      std::vector<DeltaRowRef>& rows = dirty[slice.key];
      for (uint64_t r = slice.row_begin; r < slice.row_end; ++r) {
        rows.push_back(DeltaRowRef{static_cast<uint64_t>(lane[r]), ci, r});
      }
    }
  }
  for (auto& [key, rows] : dirty) {
    (void)key;
    std::stable_sort(rows.begin(), rows.end(),
                     [](const DeltaRowRef& a, const DeltaRowRef& b) {
                       return a.key < b.key;
                     });
  }

  // Pick this pass's groups: all of them, or the max_groups with the most
  // delta rows (ties to the smaller key, for determinism).
  std::set<uint64_t> selected;
  if (options.max_groups == 0 || options.max_groups >= dirty.size()) {
    for (const auto& [key, rows] : dirty) selected.insert(key);
  } else {
    std::vector<std::pair<uint64_t, uint64_t>> order;  // {rows, key}
    order.reserve(dirty.size());
    for (const auto& [key, rows] : dirty) order.push_back({rows.size(), key});
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (size_t i = 0; i < options.max_groups; ++i) {
      selected.insert(order[i].second);
    }
  }

  // Build the merged base with fresh dictionaries (live readers keep
  // decoding the old version's) by walking base groups ∪ dirty groups in
  // key order. Clean and deferred groups copy their base span verbatim;
  // selected groups two-pointer merge on full keys, base rows first at ties
  // (AppendToBdccTable's stable-sort puts new rows after old).
  const Table& base_data = base.data();
  const auto& base_keys = base_data.column(bdcc_col).i64();
  Table merged(base_data.name());
  for (size_t c = 0; c < base_data.num_columns(); ++c) {
    BDCC_RETURN_NOT_OK(
        merged.AddColumn(base_data.column_name(static_cast<int>(c)),
                         Column(base_data.column(static_cast<int>(c)).type())));
  }
  std::vector<uint64_t> sorted_keys;
  sorted_keys.reserve(base_data.num_rows() + snap->delta_rows);
  std::vector<std::pair<const DeltaChunk*, uint64_t>> residual_rows;

  MergeStats result;
  auto merge_group = [&](uint64_t row_begin, uint64_t row_end,
                         const std::vector<DeltaRowRef>* delta_rows)
      -> Status {
    if (ctx != nullptr) BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
    if (BDCC_UNLIKELY(fault::ShouldFail(fault::kDeltaMerge))) {
      if (ctx != nullptr) ++ctx->stats()->faults_injected;
      return Status::Internal("injected merge fault (dirty group rewrite)");
    }
    uint64_t i = row_begin;
    size_t j = 0;
    size_t n_delta = delta_rows != nullptr ? delta_rows->size() : 0;
    while (i < row_end || j < n_delta) {
      // Run of base rows with keys <= the next delta key.
      uint64_t run_begin = i;
      while (i < row_end &&
             (j >= n_delta ||
              static_cast<uint64_t>(base_keys[i]) <= (*delta_rows)[j].key)) {
        sorted_keys.push_back(static_cast<uint64_t>(base_keys[i]));
        ++i;
      }
      if (i > run_begin) merged.AppendRowsFrom(base_data, run_begin, i);
      while (j < n_delta &&
             (i >= row_end ||
              (*delta_rows)[j].key < static_cast<uint64_t>(base_keys[i]))) {
        const DeltaRowRef& ref = (*delta_rows)[j];
        merged.AppendRowsFrom(snap->chunks[ref.chunk]->data(), ref.row,
                              ref.row + 1);
        sorted_keys.push_back(ref.key);
        ++j;
      }
    }
    result.rows_merged += n_delta;
    ++result.groups_merged;
    return Status::OK();
  };

  auto run = [&]() -> Status {
    const auto& entries = base.count_table().entries();
    size_t ei = 0;
    auto dit = dirty.begin();
    while (ei < entries.size() || dit != dirty.end()) {
      bool take_base = dit == dirty.end() ||
                       (ei < entries.size() && entries[ei].key < dit->first);
      bool take_delta = ei == entries.size() ||
                        (dit != dirty.end() && dit->first < entries[ei].key);
      if (take_base) {
        // Clean group: bulk copy.
        const CountEntry& e = entries[ei++];
        merged.AppendRowsFrom(base_data, e.row_begin, e.row_begin + e.count);
        for (uint64_t r = 0; r < e.count; ++r) {
          sorted_keys.push_back(
              static_cast<uint64_t>(base_keys[e.row_begin + r]));
        }
        continue;
      }
      const uint64_t key = dit->first;
      const std::vector<DeltaRowRef>& delta_rows = dit->second;
      uint64_t row_begin = 0;
      uint64_t row_end = 0;
      if (!take_delta) {
        row_begin = entries[ei].row_begin;
        row_end = row_begin + entries[ei].count;
        ++ei;
      }
      if (selected.count(key) != 0) {
        BDCC_RETURN_NOT_OK(merge_group(row_begin, row_end, &delta_rows));
      } else {
        // Deferred: base span stays as-is, delta rows ride to the residual
        // chunk (already in (key, chunk, row) order, keys ascending across
        // the map walk).
        if (row_end > row_begin) {
          merged.AppendRowsFrom(base_data, row_begin, row_end);
          for (uint64_t r = row_begin; r < row_end; ++r) {
            sorted_keys.push_back(static_cast<uint64_t>(base_keys[r]));
          }
        }
        for (const DeltaRowRef& ref : delta_rows) {
          residual_rows.push_back({snap->chunks[ref.chunk].get(), ref.row});
        }
        result.rows_deferred += delta_rows.size();
      }
      ++dit;
    }
    return Status::OK();
  };
  Status pass = run();

  std::shared_ptr<const DeltaChunk> residual;
  if (pass.ok() && !residual_rows.empty()) {
    Result<DeltaChunk> r = DeltaChunk::FromKeyedRows(
        base, residual_rows, zone_rows_, store_->memory());
    if (r.ok()) {
      residual = std::make_shared<const DeltaChunk>(std::move(r).value());
    } else {
      pass = r.status();
    }
  }
  if (!pass.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++merges_failed_;
    return pass;
  }

  merged.BuildZoneMaps(base_data.HasZoneMaps() ? base_data.zone_rows()
                                               : zone_rows_);
  if (base_data.HasEncodedLanes()) merged.BuildEncodedLanes();
  if (base_data.HasIoHandles()) {
    merged.RegisterWithBufferPool(base_data.buffer_pool());
  }
  CountTable counts =
      CountTable::Build(sorted_keys, base.full_bits(), base.count_bits());
  auto new_base = std::make_shared<const BdccTable>(
      base.WithData(std::move(merged), std::move(counts)));

  // Publish: new base, residual chunk (its rows predate every surviving
  // chunk), plus any chunks appended since this pass pinned its snapshot.
  // Consumption is tracked by seq *membership*, not a high-water seq: a
  // previous pass's residual carries a seq larger than chunks appended
  // while that pass ran, so the pinned seq list is not ascending.
  std::sort(seqs.begin(), seqs.end());
  const uint64_t consumed_max_seq = seqs.back();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto next = std::make_shared<TableSnapshot>();
    next->epoch = current_->epoch + 1;
    next->base = std::move(new_base);
    next->delta_watermark = consumed_max_seq;
    std::vector<uint64_t> new_seqs;
    if (residual != nullptr) {
      next->delta_rows += residual->num_rows();
      next->chunks.push_back(std::move(residual));
      new_seqs.push_back(next_chunk_seq_++);
    }
    for (size_t i = 0; i < current_->chunks.size(); ++i) {
      if (std::binary_search(seqs.begin(), seqs.end(), chunk_seqs_[i])) {
        continue;  // consumed by this pass (merged or moved to the residual)
      }
      next->delta_rows += current_->chunks[i]->num_rows();
      next->chunks.push_back(current_->chunks[i]);
      new_seqs.push_back(chunk_seqs_[i]);
    }
    chunk_seqs_ = std::move(new_seqs);
    result.epoch = next->epoch;
    PublishLocked(std::move(next));
    ++merges_completed_;
    rows_merged_ += result.rows_merged;
  }
  if (ctx != nullptr) ++ctx->stats()->merges_completed;
  return result;
}

uint64_t LiveTable::delta_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->delta_rows;
}

uint64_t LiveTable::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->epoch;
}

LiveTable::Stats LiveTable::stats() const {
  Stats out;
  std::lock_guard<std::mutex> lock(mu_);
  out.epoch = current_->epoch;
  out.rows_appended = rows_appended_;
  out.chunks_appended = chunks_appended_;
  out.delta_rows = current_->delta_rows;
  out.delta_chunks = current_->chunks.size();
  out.delta_bytes = store_->memory()->current_bytes();
  out.merges_completed = merges_completed_;
  out.merges_failed = merges_failed_;
  out.rows_merged = rows_merged_;
  out.epochs_retired = epochs_retired_;
  for (const auto& [epoch, count] : readers_) out.open_snapshots += count;
  return out;
}

void LiveTable::SetAppendObserver(std::function<void()> observer) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  observer_ = std::move(observer);
}

void LiveTable::PublishLocked(std::shared_ptr<const TableSnapshot> next) {
  uint64_t old_epoch = current_->epoch;
  current_ = std::move(next);
  auto it = readers_.find(old_epoch);
  if (it == readers_.end()) {
    ++epochs_retired_;  // superseded with no readers left (or ever)
  }
}

void LiveTable::OnSnapshotReleased(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = readers_.find(epoch);
  BDCC_CHECK(it != readers_.end() && it->second > 0);
  if (--it->second == 0) {
    readers_.erase(it);
    if (epoch != current_->epoch) ++epochs_retired_;
  }
}

}  // namespace delta
}  // namespace bdcc
