// PhysicalDb adapter serving snapshot-consistent reads over live tables.
//
// A SnapshotDb wraps a base PhysicalDb (kBdcc scheme) and overlays it with
// LiveTables: for each registered live table it pins one TableSnapshot and
// answers storage()/bdcc() from that snapshot's base version and snapshot()
// with the pinned handle, so every plan compiled against the db sees one
// consistent {base version, delta chunk set} pair — regardless of appends
// and merges racing ahead on the LiveTable. Refresh() re-pins the current
// epochs; queries compiled before a Refresh keep their own pins (the
// planner copies the shared_ptr into scan leaves), so in-flight queries and
// new queries can run against different epochs side by side.
//
// Typical serving-loop usage: Refresh() between queries (or on a timer) for
// freshness; never mid-plan.
#ifndef BDCC_DELTA_SNAPSHOT_DB_H_
#define BDCC_DELTA_SNAPSHOT_DB_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "delta/live_table.h"
#include "opt/physical_db.h"

namespace bdcc {
namespace delta {

/// \brief Snapshot-pinning PhysicalDb over a base db plus live tables.
class SnapshotDb : public opt::PhysicalDb {
 public:
  /// `base` must outlive this db and use the kBdcc scheme (live tables are
  /// a BDCC-scheme feature; Plain/PK schemes have no delta machinery).
  explicit SnapshotDb(const opt::PhysicalDb* base);

  /// Overlay `table` (must outlive this db) for its name; pins its current
  /// snapshot. The base db's entry for that name is shadowed.
  void AddLiveTable(LiveTable* table);

  /// Re-pin every live table's current snapshot (call between queries).
  void Refresh();

  /// Epoch this db currently serves for `table` (0 if not live here).
  uint64_t pinned_epoch(const std::string& table) const;

  // PhysicalDb:
  opt::Scheme scheme() const override;
  const catalog::Catalog& schema_catalog() const override;
  const Table* storage(const std::string& table) const override;
  const BdccTable* bdcc(const std::string& table) const override;
  std::string sorted_on(const std::string& table) const override;
  bool unique_key(const std::string& table,
                  const std::string& column) const override;
  std::shared_ptr<const TableSnapshot> snapshot(
      const std::string& table) const override;

 private:
  struct Entry {
    LiveTable* live = nullptr;
    std::shared_ptr<const TableSnapshot> pinned;
  };

  const opt::PhysicalDb* base_;
  mutable std::mutex mu_;  // guards entries' pinned handles across Refresh
  std::map<std::string, Entry> entries_;
};

}  // namespace delta
}  // namespace bdcc

#endif  // BDCC_DELTA_SNAPSHOT_DB_H_
