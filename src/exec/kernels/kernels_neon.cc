// NEON kernel tier (aarch64). NEON is architecturally guaranteed on
// aarch64, so no runtime feature check is needed beyond the tier selection
// in common/simd.cc; on other architectures this TU degrades to a nullptr
// table and dispatch falls back to scalar.
//
// Only the hot range-mask kernels are vectorized here; the remaining
// entries inherit the scalar implementations (null table slots).
#include "exec/kernels/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace bdcc {
namespace exec {
namespace kernels {
namespace internal {

namespace {

void RangeMaskI32Neon(const int32_t* v, size_t n, int32_t lo, int32_t hi,
                      uint8_t* mask) {
  const int32x4_t vlo = vdupq_n_s32(lo);
  const int32x4_t vhi = vdupq_n_s32(hi);
  const uint8x8_t one = vdup_n_u8(1);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    int32x4_t a = vld1q_s32(v + i);
    int32x4_t b = vld1q_s32(v + i + 4);
    uint32x4_t pa = vandq_u32(vcgeq_s32(a, vlo), vcleq_s32(a, vhi));
    uint32x4_t pb = vandq_u32(vcgeq_s32(b, vlo), vcleq_s32(b, vhi));
    // Narrow 2x u32x4 all-ones/zero lanes to u8x8 of 0/1 bytes.
    uint16x8_t p16 = vcombine_u16(vmovn_u32(pa), vmovn_u32(pb));
    uint8x8_t bytes = vand_u8(vmovn_u16(p16), one);
    vst1_u8(mask + i, vand_u8(vld1_u8(mask + i), bytes));
  }
  for (; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(v[i] >= lo) &
               static_cast<uint8_t>(v[i] <= hi);
  }
}

void RangeMaskI64Neon(const int64_t* v, size_t n, int64_t lo, int64_t hi,
                      uint8_t* mask) {
  const int64x2_t vlo = vdupq_n_s64(lo);
  const int64x2_t vhi = vdupq_n_s64(hi);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    int64x2_t a = vld1q_s64(v + i);
    uint64x2_t p = vandq_u64(vcgeq_s64(a, vlo), vcleq_s64(a, vhi));
    mask[i] &= static_cast<uint8_t>(vgetq_lane_u64(p, 0) & 1);
    mask[i + 1] &= static_cast<uint8_t>(vgetq_lane_u64(p, 1) & 1);
  }
  for (; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(v[i] >= lo) &
               static_cast<uint8_t>(v[i] <= hi);
  }
}

const KernelTable kNeonTable = {
    RangeMaskI32Neon,
    RangeMaskI64Neon,
    nullptr,  // f64: scalar (NaN plumbing not worth it here)
    nullptr,  // verdict: scalar
    nullptr,  // mask_to_sel: scalar
    nullptr,  // gathers: scalar (no hardware gather on NEON)
    nullptr,
    nullptr,
    nullptr,  // hash: scalar
};

}  // namespace

const KernelTable* GetNeonTable() { return &kNeonTable; }

}  // namespace internal
}  // namespace kernels
}  // namespace exec
}  // namespace bdcc

#else  // !__aarch64__

namespace bdcc {
namespace exec {
namespace kernels {
namespace internal {

const KernelTable* GetNeonTable() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace exec
}  // namespace bdcc

#endif
