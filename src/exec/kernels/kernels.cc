#include "exec/kernels/kernels.h"

#include <cmath>
#include <cstring>

namespace bdcc {
namespace exec {
namespace kernels {

namespace internal {

namespace {

// ---- Scalar reference implementations ----
// These are the semantics contract: wider tiers must match them exactly.

void RangeMaskI32Scalar(const int32_t* v, size_t n, int32_t lo, int32_t hi,
                        uint8_t* mask) {
  for (size_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(v[i] >= lo) &
               static_cast<uint8_t>(v[i] <= hi);
  }
}

void RangeMaskI64Scalar(const int64_t* v, size_t n, int64_t lo, int64_t hi,
                        uint8_t* mask) {
  for (size_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(v[i] >= lo) &
               static_cast<uint8_t>(v[i] <= hi);
  }
}

void RangeMaskF64Scalar(const double* v, size_t n, double lo, double hi,
                        bool has_hi, uint8_t* mask) {
  for (size_t i = 0; i < n; ++i) {
    bool nan = std::isnan(v[i]);
    mask[i] &= (static_cast<uint8_t>(v[i] >= lo) | nan) &
               (static_cast<uint8_t>(v[i] <= hi) |
                static_cast<uint8_t>(nan && !has_hi));
  }
}

void VerdictMaskI32Scalar(const int32_t* v, size_t n, const uint8_t* ok,
                          uint8_t* mask) {
  for (size_t i = 0; i < n; ++i) mask[i] &= ok[v[i]];
}

size_t MaskToSelScalar(const uint8_t* mask, size_t n, uint32_t base,
                       std::vector<uint32_t>* out) {
  size_t before = out->size();
  size_t i = 0;
  // Word-at-a-time: skip all-zero octets, bulk-emit all-ones octets.
  constexpr uint64_t kAllOnes = 0x0101010101010101ull;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, mask + i, 8);
    if (w == 0) continue;
    if (w == kAllOnes) {
      for (int b = 0; b < 8; ++b) {
        out->push_back(base + static_cast<uint32_t>(i) + b);
      }
      continue;
    }
    for (int b = 0; b < 8; ++b) {
      if (mask[i + b]) out->push_back(base + static_cast<uint32_t>(i) + b);
    }
  }
  for (; i < n; ++i) {
    if (mask[i]) out->push_back(base + static_cast<uint32_t>(i));
  }
  return out->size() - before;
}

template <typename T>
void GatherScatterScalar(const T* src, const uint32_t* sel, size_t n,
                         T* dst) {
  // 4-wide unrolled so the loads pipeline.
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    T v0 = src[sel[j]];
    T v1 = src[sel[j + 1]];
    T v2 = src[sel[j + 2]];
    T v3 = src[sel[j + 3]];
    dst[j] = v0;
    dst[j + 1] = v1;
    dst[j + 2] = v2;
    dst[j + 3] = v3;
  }
  for (; j < n; ++j) dst[j] = src[sel[j]];
}

inline uint64_t SplitMix64(uint64_t x) {
  // Must agree bit-for-bit with exec::HashKey64 (radix routing contract).
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void HashKeys64Scalar(const uint64_t* keys, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = SplitMix64(keys[i]);
}

const KernelTable kScalarTable = {
    RangeMaskI32Scalar,    RangeMaskI64Scalar,
    RangeMaskF64Scalar,    VerdictMaskI32Scalar,
    MaskToSelScalar,       GatherScatterScalar<int32_t>,
    GatherScatterScalar<int64_t>, GatherScatterScalar<double>,
    HashKeys64Scalar,
};

}  // namespace

const KernelTable* GetScalarTable() { return &kScalarTable; }

}  // namespace internal

namespace {

using internal::KernelTable;

// Effective table for the active tier, with per-entry scalar fallback
// resolved once per tier (cheap enough to rebuild on every lookup miss).
struct Resolved {
  KernelTable t;
  int tier = -1;
};

const KernelTable& Active() {
  thread_local Resolved r;
  int tier = static_cast<int>(simd::ActiveTier());
  if (r.tier != tier) {
    const KernelTable* base = internal::GetScalarTable();
    const KernelTable* wide = nullptr;
    if (tier == static_cast<int>(simd::Tier::kAvx2)) {
      wide = internal::GetAvx2Table();
    } else if (tier == static_cast<int>(simd::Tier::kNeon)) {
      wide = internal::GetNeonTable();
    }
    r.t = *base;
    if (wide != nullptr) {
      if (wide->range_mask_i32) r.t.range_mask_i32 = wide->range_mask_i32;
      if (wide->range_mask_i64) r.t.range_mask_i64 = wide->range_mask_i64;
      if (wide->range_mask_f64) r.t.range_mask_f64 = wide->range_mask_f64;
      if (wide->verdict_mask_i32) {
        r.t.verdict_mask_i32 = wide->verdict_mask_i32;
      }
      if (wide->mask_to_sel) r.t.mask_to_sel = wide->mask_to_sel;
      if (wide->gather_scatter_i32) {
        r.t.gather_scatter_i32 = wide->gather_scatter_i32;
      }
      if (wide->gather_scatter_i64) {
        r.t.gather_scatter_i64 = wide->gather_scatter_i64;
      }
      if (wide->gather_scatter_f64) {
        r.t.gather_scatter_f64 = wide->gather_scatter_f64;
      }
      if (wide->hash_keys64) r.t.hash_keys64 = wide->hash_keys64;
    }
    r.tier = tier;
  }
  return r.t;
}

// Shared run-detecting gather frame: contiguous ascending runs >= kMemcpyRun
// collapse to one memcpy (the dominant shape when a dense chunk carries a
// near-identity selection); scattered stretches go through the tier's
// scatter-gather primitive.
constexpr size_t kMemcpyRun = 8;

template <typename T, typename ScatterFn>
void GatherRuns(const T* src, const uint32_t* sel, size_t n, T* dst,
                ScatterFn scatter) {
  size_t i = 0;
  while (i < n) {
    uint32_t base = sel[i];
    size_t max_run = n - i;
    size_t run = 1;
    while (run < max_run && sel[i + run] == base + run) ++run;
    if (run >= kMemcpyRun) {
      std::memcpy(dst + i, src + base, run * sizeof(T));
      i += run;
      continue;
    }
    // Scattered stretch: extend past short runs until a memcpy-worthy run
    // could start, then hand the stretch to the tier gather.
    size_t end = i + run;
    while (end < n) {
      size_t r = 1;
      while (r < kMemcpyRun && end + r < n && sel[end + r] == sel[end] + r) {
        ++r;
      }
      if (r >= kMemcpyRun) break;
      end += r;
    }
    scatter(src, sel + i, end - i, dst + i);
    i = end;
  }
}

}  // namespace

void RangeMaskI32(const int32_t* v, size_t n, int32_t lo, int32_t hi,
                  uint8_t* mask) {
  Active().range_mask_i32(v, n, lo, hi, mask);
}

void RangeMaskI64(const int64_t* v, size_t n, int64_t lo, int64_t hi,
                  uint8_t* mask) {
  Active().range_mask_i64(v, n, lo, hi, mask);
}

void RangeMaskF64(const double* v, size_t n, double lo, double hi,
                  bool has_hi, uint8_t* mask) {
  Active().range_mask_f64(v, n, lo, hi, has_hi, mask);
}

void VerdictMaskI32(const int32_t* v, size_t n, const uint8_t* ok,
                    uint8_t* mask) {
  Active().verdict_mask_i32(v, n, ok, mask);
}

size_t MaskToSel(const uint8_t* mask, size_t n, uint32_t base,
                 std::vector<uint32_t>* out) {
  return Active().mask_to_sel(mask, n, base, out);
}

size_t CountMask(const uint8_t* mask, size_t n) {
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, mask + i, 8);
    // Mask bytes are 0/1, so the byte-sum fits in one lane-wise add.
    count += static_cast<size_t>((w * 0x0101010101010101ull) >> 56);
  }
  for (; i < n; ++i) count += mask[i];
  return count;
}

void GatherI32(const int32_t* src, const uint32_t* sel, size_t n,
               int32_t* dst) {
  GatherRuns(src, sel, n, dst, Active().gather_scatter_i32);
}

void GatherI64(const int64_t* src, const uint32_t* sel, size_t n,
               int64_t* dst) {
  GatherRuns(src, sel, n, dst, Active().gather_scatter_i64);
}

void GatherF64(const double* src, const uint32_t* sel, size_t n,
               double* dst) {
  GatherRuns(src, sel, n, dst, Active().gather_scatter_f64);
}

void GatherU8(const uint8_t* src, const uint32_t* sel, size_t n,
              uint8_t* dst) {
  GatherRuns(src, sel, n, dst,
             [](const uint8_t* s, const uint32_t* idx, size_t m,
                uint8_t* d) {
               for (size_t j = 0; j < m; ++j) d[j] = s[idx[j]];
             });
}

void HashKeys64(const uint64_t* keys, size_t n, uint64_t* out) {
  Active().hash_keys64(keys, n, out);
}

void PartitionIdsFromKeys(const uint64_t* keys, const uint8_t* valid,
                          size_t n, int part_bits, uint32_t* parts) {
  constexpr size_t kChunk = 256;
  uint64_t hashes[kChunk];
  const int shift = 64 - part_bits;
  auto hash_fn = Active().hash_keys64;
  for (size_t at = 0; at < n; at += kChunk) {
    size_t m = n - at < kChunk ? n - at : kChunk;
    hash_fn(keys + at, m, hashes);
    if (valid == nullptr) {
      for (size_t i = 0; i < m; ++i) {
        parts[at + i] = static_cast<uint32_t>(hashes[i] >> shift);
      }
    } else {
      for (size_t i = 0; i < m; ++i) {
        parts[at + i] = valid[at + i]
                            ? static_cast<uint32_t>(hashes[i] >> shift)
                            : 0;
      }
    }
  }
}

}  // namespace kernels
}  // namespace exec
}  // namespace bdcc
