// Tier-dispatched data-parallel kernels behind the hot scan/filter/probe
// loops: typed range predicates over byte masks, verdict-table lookups,
// mask-to-selection conversion, gathers, and the radix hash routing used by
// partitioned hash builds.
//
// Dispatch contract (see src/exec/README.md for the full rules):
//  * Every kernel has a scalar reference implementation; wider tiers
//    (AVX2, NEON) must be bit-for-bit equal to it for all inputs, including
//    NULL masks and tail lengths 0..vector_width-1.
//  * Masks are byte masks, one uint8_t per value, strictly 0 or 1. Range /
//    verdict kernels AND their result into the caller's mask, so predicates
//    compose by chaining calls.
//  * No alignment requirements: kernels use unaligned loads and handle the
//    ragged tail scalar. Inputs may not overlap outputs.
//  * The tier is resolved per call from simd::ActiveTier(), so tests can
//    flip tiers (simd::ForceTier / BDCC_SIMD) between calls.
#ifndef BDCC_EXEC_KERNELS_KERNELS_H_
#define BDCC_EXEC_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.h"

namespace bdcc {
namespace exec {
namespace kernels {

// ---- Range predicates: mask[i] &= (lo <= v[i] && v[i] <= hi) ----
void RangeMaskI32(const int32_t* v, size_t n, int32_t lo, int32_t hi,
                  uint8_t* mask);
void RangeMaskI64(const int64_t* v, size_t n, int64_t lo, int64_t hi,
                  uint8_t* mask);
// Float ranges mirror the Filter comparator's NaN handling (NaN sorts
// last): NaN passes any lower bound and fails only an explicit upper bound
// (`has_hi`).
void RangeMaskF64(const double* v, size_t n, double lo, double hi,
                  bool has_hi, uint8_t* mask);

// ---- Verdict table (dict codes): mask[i] &= ok[v[i]] ----
// v[i] must index within the table (dict codes by construction).
void VerdictMaskI32(const int32_t* v, size_t n, const uint8_t* ok,
                    uint8_t* mask);

// ---- Mask consumption ----
/// Append base+i for every set mask byte to `out` (in order); returns the
/// number appended.
size_t MaskToSel(const uint8_t* mask, size_t n, uint32_t base,
                 std::vector<uint32_t>* out);
/// Number of set bytes in mask[0..n).
size_t CountMask(const uint8_t* mask, size_t n);

// ---- Gathers: dst[i] = src[sel[i]] ----
// Contiguous ascending runs collapse to memcpy; scattered stretches use the
// tier's gather (hardware gather on AVX2). sel values must be < 2^31.
void GatherI32(const int32_t* src, const uint32_t* sel, size_t n,
               int32_t* dst);
void GatherI64(const int64_t* src, const uint32_t* sel, size_t n,
               int64_t* dst);
void GatherF64(const double* src, const uint32_t* sel, size_t n, double* dst);
void GatherU8(const uint8_t* src, const uint32_t* sel, size_t n,
              uint8_t* dst);

// ---- Hash routing (must agree bit-for-bit with exec::HashKey64) ----
/// out[i] = splitmix64-finalized hash of keys[i].
void HashKeys64(const uint64_t* keys, size_t n, uint64_t* out);
/// Radix partition ids: parts[i] = hash(keys[i]) >> (64 - part_bits), or 0
/// for rows whose key is NULL (valid[i] == 0; valid may be null = all
/// valid). part_bits must be in [1, 32].
void PartitionIdsFromKeys(const uint64_t* keys, const uint8_t* valid,
                          size_t n, int part_bits, uint32_t* parts);

namespace internal {

/// One tier's function table. Wider tiers may leave entries null to
/// inherit the scalar implementation.
struct KernelTable {
  void (*range_mask_i32)(const int32_t*, size_t, int32_t, int32_t,
                         uint8_t*) = nullptr;
  void (*range_mask_i64)(const int64_t*, size_t, int64_t, int64_t,
                         uint8_t*) = nullptr;
  void (*range_mask_f64)(const double*, size_t, double, double, bool,
                         uint8_t*) = nullptr;
  void (*verdict_mask_i32)(const int32_t*, size_t, const uint8_t*,
                           uint8_t*) = nullptr;
  size_t (*mask_to_sel)(const uint8_t*, size_t, uint32_t,
                        std::vector<uint32_t>*) = nullptr;
  void (*gather_scatter_i32)(const int32_t*, const uint32_t*, size_t,
                             int32_t*) = nullptr;
  void (*gather_scatter_i64)(const int64_t*, const uint32_t*, size_t,
                             int64_t*) = nullptr;
  void (*gather_scatter_f64)(const double*, const uint32_t*, size_t,
                             double*) = nullptr;
  void (*hash_keys64)(const uint64_t*, size_t, uint64_t*) = nullptr;
};

/// Tier tables: defined in their own translation units (the AVX2 one is
/// compiled with -mavx2); they return nullptr when the build cannot target
/// the tier, and dispatch falls back to scalar.
const KernelTable* GetScalarTable();
const KernelTable* GetAvx2Table();
const KernelTable* GetNeonTable();

}  // namespace internal

}  // namespace kernels
}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_KERNELS_KERNELS_H_
