// AVX2 kernel tier. This translation unit is compiled with -mavx2 (see
// CMakeLists); everything is guarded so the file degrades to a nullptr
// table on toolchains/architectures that cannot target AVX2. Runtime CPUID
// dispatch (common/simd.h) guarantees these bodies only execute on hardware
// that supports them.
#include "exec/kernels/kernels.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <array>
#include <cstring>

namespace bdcc {
namespace exec {
namespace kernels {
namespace internal {

namespace {

// Expand an 8-bit lane mask to 8 bytes of 0/1 (bit b -> byte b).
// constexpr so this TU has no runtime static initializer: code in an
// -mavx2 TU must never run before the CPUID dispatch check.
constexpr std::array<uint64_t, 256> MakeBitsToBytes() {
  std::array<uint64_t, 256> t{};
  for (int m = 0; m < 256; ++m) {
    uint64_t w = 0;
    for (int b = 0; b < 8; ++b) {
      if ((m >> b) & 1) w |= uint64_t{1} << (8 * b);
    }
    t[m] = w;
  }
  return t;
}
constexpr std::array<uint64_t, 256> kBitsToBytes = MakeBitsToBytes();

// AND the low `nbytes` 0/1 bytes of `bytes` into mask[0..nbytes).
inline void AndBytes8(uint8_t* mask, uint64_t bytes) {
  uint64_t cur;
  std::memcpy(&cur, mask, 8);
  cur &= bytes;
  std::memcpy(mask, &cur, 8);
}

inline void AndBytes4(uint8_t* mask, uint32_t bytes) {
  uint32_t cur;
  std::memcpy(&cur, mask, 4);
  cur &= bytes;
  std::memcpy(mask, &cur, 4);
}

void RangeMaskI32Avx2(const int32_t* v, size_t n, int32_t lo, int32_t hi,
                      uint8_t* mask) {
  const __m256i vlo = _mm256_set1_epi32(lo);
  const __m256i vhi = _mm256_set1_epi32(hi);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    // fail = (lo > x) | (x > hi); pass lanes are the complement.
    __m256i fail = _mm256_or_si256(_mm256_cmpgt_epi32(vlo, x),
                                   _mm256_cmpgt_epi32(x, vhi));
    int pass = (~_mm256_movemask_ps(_mm256_castsi256_ps(fail))) & 0xFF;
    AndBytes8(mask + i, kBitsToBytes[pass]);
  }
  for (; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(v[i] >= lo) &
               static_cast<uint8_t>(v[i] <= hi);
  }
}

void RangeMaskI64Avx2(const int64_t* v, size_t n, int64_t lo, int64_t hi,
                      uint8_t* mask) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i fail = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, x),
                                   _mm256_cmpgt_epi64(x, vhi));
    int pass = (~_mm256_movemask_pd(_mm256_castsi256_pd(fail))) & 0xF;
    AndBytes4(mask + i, static_cast<uint32_t>(kBitsToBytes[pass]));
  }
  for (; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(v[i] >= lo) &
               static_cast<uint8_t>(v[i] <= hi);
  }
}

void RangeMaskF64Avx2(const double* v, size_t n, double lo, double hi,
                      bool has_hi, uint8_t* mask) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d x = _mm256_loadu_pd(v + i);
    // Ordered compares are false for NaN; UNORD picks the NaN lanes out so
    // the scalar semantics (NaN sorts last) reproduce exactly.
    __m256d ge = _mm256_cmp_pd(x, vlo, _CMP_GE_OQ);
    __m256d le = _mm256_cmp_pd(x, vhi, _CMP_LE_OQ);
    __m256d nan = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
    __m256d lo_ok = _mm256_or_pd(ge, nan);
    __m256d hi_ok = has_hi ? le : _mm256_or_pd(le, nan);
    int pass = _mm256_movemask_pd(_mm256_and_pd(lo_ok, hi_ok)) & 0xF;
    AndBytes4(mask + i, static_cast<uint32_t>(kBitsToBytes[pass]));
  }
  for (; i < n; ++i) {
    bool nan = v[i] != v[i];
    mask[i] &= (static_cast<uint8_t>(v[i] >= lo) | nan) &
               (static_cast<uint8_t>(v[i] <= hi) |
                static_cast<uint8_t>(nan && !has_hi));
  }
}

size_t MaskToSelAvx2(const uint8_t* mask, size_t n, uint32_t base,
                     std::vector<uint32_t>* out) {
  size_t before = out->size();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    uint32_t bits = static_cast<uint32_t>(
        ~_mm256_movemask_epi8(_mm256_cmpeq_epi8(m, zero)));
    if (bits == 0) continue;
    uint32_t at = base + static_cast<uint32_t>(i);
    if (bits == 0xFFFFFFFFu) {
      for (uint32_t b = 0; b < 32; ++b) out->push_back(at + b);
      continue;
    }
    while (bits != 0) {
      out->push_back(at + static_cast<uint32_t>(__builtin_ctz(bits)));
      bits &= bits - 1;
    }
  }
  for (; i < n; ++i) {
    if (mask[i]) out->push_back(base + static_cast<uint32_t>(i));
  }
  return out->size() - before;
}

void GatherScatterI32Avx2(const int32_t* src, const uint32_t* sel, size_t n,
                          int32_t* dst) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    __m256i g = _mm256_i32gather_epi32(src, idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), g);
  }
  for (; i < n; ++i) dst[i] = src[sel[i]];
}

void GatherScatterI64Avx2(const int64_t* src, const uint32_t* sel, size_t n,
                          int64_t* dst) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    __m256i g = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(src), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), g);
  }
  for (; i < n; ++i) dst[i] = src[sel[i]];
}

void GatherScatterF64Avx2(const double* src, const uint32_t* sel, size_t n,
                          double* dst) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    __m256d g = _mm256_i32gather_pd(src, idx, 8);
    _mm256_storeu_pd(dst + i, g);
  }
  for (; i < n; ++i) dst[i] = src[sel[i]];
}

// 64x64 -> low 64 multiply from 32-bit partial products (AVX2 has no
// _mm256_mullo_epi64).
inline __m256i Mullo64(__m256i a, __m256i b) {
  __m256i ah = _mm256_srli_epi64(a, 32);
  __m256i bh = _mm256_srli_epi64(b, 32);
  __m256i ll = _mm256_mul_epu32(a, b);
  __m256i lh = _mm256_mul_epu32(a, bh);
  __m256i hl = _mm256_mul_epu32(ah, b);
  __m256i cross = _mm256_add_epi64(lh, hl);
  return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

void HashKeys64Avx2(const uint64_t* keys, size_t n, uint64_t* out) {
  const __m256i c0 = _mm256_set1_epi64x(0x9e3779b97f4a7c15ull);
  const __m256i c1 = _mm256_set1_epi64x(0xbf58476d1ce4e5b9ull);
  const __m256i c2 = _mm256_set1_epi64x(0x94d049bb133111ebull);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    x = _mm256_add_epi64(x, c0);
    x = Mullo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), c1);
    x = Mullo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), c2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
  }
  for (; i < n; ++i) {
    uint64_t x = keys[i] + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    out[i] = x ^ (x >> 31);
  }
}

const KernelTable kAvx2Table = {
    RangeMaskI32Avx2,  RangeMaskI64Avx2, RangeMaskF64Avx2,
    nullptr,  // verdict table lookups stay scalar (byte gathers would
              // over-read the table; the scalar loop is load-bound anyway)
    MaskToSelAvx2,     GatherScatterI32Avx2, GatherScatterI64Avx2,
    GatherScatterF64Avx2, HashKeys64Avx2,
};

}  // namespace

const KernelTable* GetAvx2Table() { return &kAvx2Table; }

}  // namespace internal
}  // namespace kernels
}  // namespace exec
}  // namespace bdcc

#else  // !__AVX2__

namespace bdcc {
namespace exec {
namespace kernels {
namespace internal {

const KernelTable* GetAvx2Table() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace exec
}  // namespace bdcc

#endif
