#include "exec/hash_table.h"

#include <cstring>

namespace bdcc {
namespace exec {

uint64_t ColumnVectorBytes(const ColumnVector& v) {
  return v.i32.capacity() * 4 + v.i64.capacity() * 8 + v.f64.capacity() * 8 +
         v.nulls.capacity();
}

Status KeyEncoder::Bind(const Schema& schema,
                        const std::vector<std::string>& key_cols) {
  indices_.clear();
  types_.clear();
  for (const std::string& name : key_cols) {
    BDCC_ASSIGN_OR_RETURN(int idx, schema.Require(name));
    indices_.push_back(idx);
    types_.push_back(schema.field(idx).type);
  }
  int_path_ = indices_.size() == 1 && types_[0] != TypeId::kString &&
              types_[0] != TypeId::kFloat64;
  return Status::OK();
}

void KeyEncoder::EncodeInts(const Batch& batch, std::vector<int64_t>* keys,
                            std::vector<uint8_t>* valid) const {
  BDCC_CHECK(int_path_);
  const ColumnVector& col = batch.columns[indices_[0]];
  keys->resize(batch.num_rows);
  valid->assign(batch.num_rows, 1);
  if (col.type == TypeId::kInt64) {
    for (size_t i = 0; i < batch.num_rows; ++i) (*keys)[i] = col.i64[i];
  } else {
    for (size_t i = 0; i < batch.num_rows; ++i) (*keys)[i] = col.i32[i];
  }
  if (col.HasNulls()) {
    for (size_t i = 0; i < batch.num_rows; ++i) {
      if (col.nulls[i]) (*valid)[i] = 0;
    }
  }
}

void KeyEncoder::EncodeBytes(const Batch& batch, std::vector<std::string>* keys,
                             std::vector<uint8_t>* valid) const {
  keys->assign(batch.num_rows, std::string());
  valid->assign(batch.num_rows, 1);
  for (size_t i = 0; i < batch.num_rows; ++i) {
    std::string& key = (*keys)[i];
    for (size_t k = 0; k < indices_.size(); ++k) {
      const ColumnVector& col = batch.columns[indices_[k]];
      if (col.IsNull(i)) {
        (*valid)[i] = 0;
        break;
      }
      switch (col.type) {
        case TypeId::kString: {
          std::string_view s = col.GetString(i);
          uint32_t len = static_cast<uint32_t>(s.size());
          key.append(reinterpret_cast<const char*>(&len), 4);
          key.append(s.data(), s.size());
          break;
        }
        case TypeId::kFloat64: {
          double d = col.f64[i];
          key.append(reinterpret_cast<const char*>(&d), 8);
          break;
        }
        case TypeId::kInt64: {
          int64_t v = col.i64[i];
          key.append(reinterpret_cast<const char*>(&v), 8);
          break;
        }
        default: {
          int32_t v = col.i32[i];
          key.append(reinterpret_cast<const char*>(&v), 4);
          break;
        }
      }
    }
  }
}

int64_t DenseKeyMap::Find(int64_t key) const {
  auto it = int_map_.find(key);
  return it == int_map_.end() ? -1 : it->second;
}

int64_t DenseKeyMap::Find(const std::string& key) const {
  auto it = bytes_map_.find(key);
  return it == bytes_map_.end() ? -1 : it->second;
}

int64_t DenseKeyMap::FindOrInsert(int64_t key, bool* out_inserted) {
  auto [it, inserted] =
      int_map_.emplace(key, static_cast<int64_t>(int_map_.size()));
  *out_inserted = inserted;
  return it->second;
}

int64_t DenseKeyMap::FindOrInsert(const std::string& key, bool* out_inserted) {
  auto [it, inserted] =
      bytes_map_.emplace(key, static_cast<int64_t>(bytes_map_.size()));
  *out_inserted = inserted;
  if (inserted) bytes_key_payload_ += key.size();
  return it->second;
}

uint64_t DenseKeyMap::MemoryBytes() const {
  if (int_mode_) {
    // buckets + nodes (key, value, next pointer).
    return int_map_.bucket_count() * 8 + int_map_.size() * 32;
  }
  return bytes_map_.bucket_count() * 8 + bytes_map_.size() * 48 +
         bytes_key_payload_;
}

void DenseKeyMap::Clear() {
  int_map_.clear();
  bytes_map_.clear();
  bytes_key_payload_ = 0;
}

Status JoinHashTable::Init(const Schema& build_schema,
                           const std::vector<std::string>& key_cols) {
  schema_ = build_schema;
  BDCC_RETURN_NOT_OK(encoder_.Bind(build_schema, key_cols));
  key_ids_.SetIntMode(encoder_.int_path());
  columns_.clear();
  for (const Field& f : build_schema.fields()) {
    columns_.emplace_back(f.type);
  }
  num_rows_ = 0;
  heads_.clear();
  next_.clear();
  column_bytes_ = 0;
  return Status::OK();
}

Status JoinHashTable::AddBatch(const Batch& batch) {
  // Materialize the batch's rows.
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ColumnVector& src = batch.columns[c];
    for (size_t r = 0; r < batch.num_rows; ++r) {
      columns_[c].AppendFrom(src, r);
    }
  }
  // Chain rows under their keys.
  auto link = [&](int64_t id, size_t local_row) {
    uint32_t row = static_cast<uint32_t>(num_rows_ + local_row);
    if (static_cast<size_t>(id) >= heads_.size()) {
      heads_.resize(id + 1, kEnd);
    }
    next_.push_back(heads_[id]);
    heads_[id] = row;
  };
  if (encoder_.int_path()) {
    std::vector<int64_t> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeInts(batch, &keys, &valid);
    for (size_t r = 0; r < batch.num_rows; ++r) {
      if (!valid[r]) {
        next_.push_back(kEnd);  // NULL keys never match
        continue;
      }
      bool inserted;
      link(key_ids_.FindOrInsert(keys[r], &inserted), r);
    }
  } else {
    std::vector<std::string> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeBytes(batch, &keys, &valid);
    for (size_t r = 0; r < batch.num_rows; ++r) {
      if (!valid[r]) {
        next_.push_back(kEnd);
        continue;
      }
      bool inserted;
      link(key_ids_.FindOrInsert(keys[r], &inserted), r);
    }
  }
  num_rows_ += batch.num_rows;
  column_bytes_ = 0;
  for (const ColumnVector& c : columns_) column_bytes_ += ColumnVectorBytes(c);
  return Status::OK();
}

uint64_t JoinHashTable::MemoryBytes() const {
  return column_bytes_ + heads_.capacity() * 4 + next_.capacity() * 4 +
         key_ids_.MemoryBytes();
}

void JoinHashTable::Clear() {
  for (ColumnVector& c : columns_) {
    ColumnVector fresh(c.type);
    fresh.dict = c.dict;
    c = std::move(fresh);
  }
  num_rows_ = 0;
  heads_.clear();
  next_.clear();
  key_ids_.Clear();
  column_bytes_ = 0;
}

}  // namespace exec
}  // namespace bdcc
