#include "exec/hash_table.h"

#include <cstring>

namespace bdcc {
namespace exec {

uint64_t ColumnVectorBytes(const ColumnVector& v) {
  return v.i32.capacity() * 4 + v.i64.capacity() * 8 + v.f64.capacity() * 8 +
         v.nulls.capacity();
}

// ---------------- KeyEncoder ----------------

namespace {

bool ExtractableTo32(TypeId t) {
  return IsI32Backed(t) || t == TypeId::kString;
}

}  // namespace

Status KeyEncoder::Bind(const Schema& schema,
                        const std::vector<std::string>& key_cols) {
  indices_.clear();
  types_.clear();
  probe_of_ = nullptr;
  for (const std::string& name : key_cols) {
    BDCC_ASSIGN_OR_RETURN(int idx, schema.Require(name));
    indices_.push_back(idx);
    types_.push_back(schema.field(idx).type);
  }
  spaces_.assign(indices_.size(), StringSpace{});
  caches_.assign(indices_.size(), TranslateCache{});
  if (indices_.size() == 1 && types_[0] != TypeId::kString &&
      types_[0] != TypeId::kFloat64) {
    mode_ = Mode::kInt;
  } else if (indices_.size() == 1 && types_[0] == TypeId::kString) {
    mode_ = Mode::kCode;
  } else if (indices_.size() == 2 && ExtractableTo32(types_[0]) &&
             ExtractableTo32(types_[1])) {
    mode_ = Mode::kPacked;
  } else {
    mode_ = Mode::kBytes;
  }
  return Status::OK();
}

Status KeyEncoder::BindProbe(const Schema& schema,
                             const std::vector<std::string>& key_cols,
                             const KeyEncoder* build) {
  BDCC_RETURN_NOT_OK(Bind(schema, key_cols));
  if (mode_ != build->mode_ || types_.size() != build->types_.size()) {
    return Status::InvalidArgument("join key types incompatible across sides");
  }
  // Same mode is not enough on multi-key paths: a packed raw-i32 key
  // position must not pair with a string position whose packed bits are
  // dictionary codes, or equal bit patterns would join unrelated values.
  for (size_t k = 0; k < types_.size(); ++k) {
    if ((types_[k] == TypeId::kString) != (build->types_[k] == TypeId::kString)) {
      return Status::InvalidArgument(
          "join key types incompatible across sides");
    }
  }
  probe_of_ = build;
  return Status::OK();
}

size_t KeyEncoder::SpaceVersion(size_t k) const {
  const StringSpace& sp = TargetSpace(k);
  return (sp.canon != nullptr ? static_cast<size_t>(sp.canon->size()) : 0) +
         sp.side.size();
}

uint32_t KeyEncoder::StringSlot(size_t k, const std::shared_ptr<Dictionary>& src,
                                int32_t code) const {
  if (probe_of_ == nullptr && spaces_[k].canon == nullptr) {
    // Adopt the first dictionary seen as the canonical space.
    spaces_[k].canon = src;
  }
  const StringSpace& sp = TargetSpace(k);
  if (sp.canon.get() == src.get()) return static_cast<uint32_t>(code);
  if (sp.canon == nullptr) return kMissSlot;  // empty build side
  // Translate through the per-batch cache; invalidated when the source
  // dictionary or the canonical space changed since it was filled.
  TranslateCache& cache = caches_[k];
  size_t version = SpaceVersion(k);
  if (cache.src != src || cache.src_size != static_cast<size_t>(src->size()) ||
      cache.space_version != version) {
    cache.src = src;
    cache.src_size = static_cast<size_t>(src->size());
    cache.space_version = version;
    cache.slot.assign(cache.src_size, kUnresolved);
  }
  int64_t& slot = cache.slot[code];
  if (slot != kUnresolved) return static_cast<uint32_t>(slot);
  std::string_view s = src->Get(code);
  int32_t canon_code = sp.canon->Find(s);
  if (canon_code >= 0) {
    slot = canon_code;
  } else if (probe_of_ != nullptr) {
    auto it = sp.side.find(std::string(s));
    slot = it != sp.side.end() ? it->second : kMissSlot;
  } else {
    auto [it, inserted] = spaces_[k].side.emplace(
        std::string(s), kSideBase + static_cast<uint32_t>(sp.side.size()));
    slot = it->second;
    if (inserted) cache.space_version = SpaceVersion(k);
  }
  return static_cast<uint32_t>(slot);
}

uint32_t KeyEncoder::SlotOf(size_t k, const ColumnVector& col,
                            size_t row) const {
  if (types_[k] == TypeId::kString) {
    return StringSlot(k, col.dict, col.i32[row]);
  }
  return static_cast<uint32_t>(col.i32[row]);
}

void KeyEncoder::EncodeIntsImpl(const ColumnVector* const* cols,
                                size_t num_rows, const uint32_t* sel,
                                std::vector<int64_t>* keys,
                                std::vector<uint8_t>* valid) const {
  BDCC_CHECK(mode_ != Mode::kBytes);
  keys->resize(num_rows);
  valid->assign(num_rows, 1);
  switch (mode_) {
    case Mode::kInt: {
      const ColumnVector& col = *cols[0];
      if (col.type == TypeId::kInt64) {
        for (size_t i = 0; i < num_rows; ++i) {
          (*keys)[i] = col.i64[sel != nullptr ? sel[i] : i];
        }
      } else {
        for (size_t i = 0; i < num_rows; ++i) {
          (*keys)[i] = col.i32[sel != nullptr ? sel[i] : i];
        }
      }
      if (col.HasNulls()) {
        for (size_t i = 0; i < num_rows; ++i) {
          if (col.nulls[sel != nullptr ? sel[i] : i]) (*valid)[i] = 0;
        }
      }
      break;
    }
    case Mode::kCode: {
      const ColumnVector& col = *cols[0];
      for (size_t i = 0; i < num_rows; ++i) {
        size_t row = sel != nullptr ? sel[i] : i;
        if (col.IsNull(row)) {
          (*valid)[i] = 0;
          (*keys)[i] = 0;
          continue;
        }
        uint32_t slot = StringSlot(0, col.dict, col.i32[row]);
        (*keys)[i] = slot == kMissSlot ? -1 : static_cast<int64_t>(slot);
      }
      break;
    }
    case Mode::kPacked: {
      const ColumnVector& c0 = *cols[0];
      const ColumnVector& c1 = *cols[1];
      for (size_t i = 0; i < num_rows; ++i) {
        size_t row = sel != nullptr ? sel[i] : i;
        if (c0.IsNull(row) || c1.IsNull(row)) {
          (*valid)[i] = 0;
          (*keys)[i] = 0;
          continue;
        }
        uint64_t s0 = SlotOf(0, c0, row);
        uint64_t s1 = SlotOf(1, c1, row);
        (*keys)[i] = static_cast<int64_t>((s0 << 32) | s1);
      }
      break;
    }
    case Mode::kBytes:
      break;  // unreachable (checked above)
  }
}

bool KeyEncoder::AppendBytesRow(const ColumnVector* const* cols, size_t row,
                                std::string* key) const {
  bool all_present = true;
  for (size_t k = 0; k < indices_.size(); ++k) {
    const ColumnVector& col = *cols[k];
    // Per-column presence tag: NULL-bearing composite keys stay distinct
    // and group exactly ((1, NULL) != (2, NULL) but NULLs equal NULLs).
    if (col.IsNull(row)) {
      all_present = false;
      key->push_back('\0');
      continue;
    }
    key->push_back('\1');
    switch (col.type) {
      case TypeId::kString: {
        std::string_view s = col.GetString(row);
        uint32_t len = static_cast<uint32_t>(s.size());
        key->append(reinterpret_cast<const char*>(&len), 4);
        key->append(s.data(), s.size());
        break;
      }
      case TypeId::kFloat64: {
        double d = col.f64[row];
        key->append(reinterpret_cast<const char*>(&d), 8);
        break;
      }
      case TypeId::kInt64: {
        int64_t v = col.i64[row];
        key->append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
      default: {
        int32_t v = col.i32[row];
        key->append(reinterpret_cast<const char*>(&v), 4);
        break;
      }
    }
  }
  return all_present;
}

void KeyEncoder::EncodeBytesImpl(const ColumnVector* const* cols,
                                 size_t num_rows, const uint32_t* sel,
                                 std::vector<std::string>* keys,
                                 std::vector<uint8_t>* valid) const {
  keys->assign(num_rows, std::string());
  valid->assign(num_rows, 1);
  for (size_t i = 0; i < num_rows; ++i) {
    size_t row = sel != nullptr ? sel[i] : i;
    if (!AppendBytesRow(cols, row, &(*keys)[i])) (*valid)[i] = 0;
  }
}

// Per-batch encode calls are hot (every probe/consume); gather the key
// column pointers into a caller-provided stack buffer, falling back to the
// heap only for improbably wide keys.
const ColumnVector* const* KeyEncoder::GatherCols(
    const Batch& batch, const ColumnVector* inline_buf[kInlineKeyCols],
    std::vector<const ColumnVector*>* overflow) const {
  const ColumnVector** cols = inline_buf;
  if (indices_.size() > kInlineKeyCols) {
    overflow->resize(indices_.size());
    cols = overflow->data();
  }
  for (size_t k = 0; k < indices_.size(); ++k) {
    cols[k] = &batch.columns[indices_[k]];
  }
  return cols;
}

void KeyEncoder::EncodeInts(const Batch& batch, std::vector<int64_t>* keys,
                            std::vector<uint8_t>* valid) const {
  const ColumnVector* inline_buf[kInlineKeyCols];
  std::vector<const ColumnVector*> overflow;
  EncodeIntsImpl(GatherCols(batch, inline_buf, &overflow), batch.num_rows,
                 batch.has_sel() ? batch.sel.data() : nullptr, keys, valid);
}

void KeyEncoder::EncodeBytes(const Batch& batch, std::vector<std::string>* keys,
                             std::vector<uint8_t>* valid) const {
  const ColumnVector* inline_buf[kInlineKeyCols];
  std::vector<const ColumnVector*> overflow;
  EncodeBytesImpl(GatherCols(batch, inline_buf, &overflow), batch.num_rows,
                  batch.has_sel() ? batch.sel.data() : nullptr, keys, valid);
}

void KeyEncoder::EncodeIntsCols(const std::vector<ColumnVector>& key_cols,
                                size_t num_rows, std::vector<int64_t>* keys,
                                std::vector<uint8_t>* valid) const {
  std::vector<const ColumnVector*> cols(key_cols.size());
  for (size_t k = 0; k < key_cols.size(); ++k) cols[k] = &key_cols[k];
  EncodeIntsImpl(cols.data(), num_rows, nullptr, keys, valid);
}

void KeyEncoder::EncodeBytesCols(const std::vector<ColumnVector>& key_cols,
                                 size_t num_rows,
                                 std::vector<std::string>* keys,
                                 std::vector<uint8_t>* valid) const {
  std::vector<const ColumnVector*> cols(key_cols.size());
  for (size_t k = 0; k < key_cols.size(); ++k) cols[k] = &key_cols[k];
  EncodeBytesImpl(cols.data(), num_rows, nullptr, keys, valid);
}

std::string KeyEncoder::EncodeBytesRow(const Batch& batch,
                                       size_t logical_row) const {
  const ColumnVector* inline_buf[kInlineKeyCols];
  std::vector<const ColumnVector*> overflow;
  std::string key;
  AppendBytesRow(GatherCols(batch, inline_buf, &overflow),
                 batch.RowAt(logical_row), &key);
  return key;
}

std::string KeyEncoder::EncodeBytesRowCols(
    const std::vector<ColumnVector>& key_cols, size_t row) const {
  std::vector<const ColumnVector*> cols(key_cols.size());
  for (size_t k = 0; k < key_cols.size(); ++k) cols[k] = &key_cols[k];
  std::string key;
  AppendBytesRow(cols.data(), row, &key);
  return key;
}

namespace {

// Group-id assignment core shared by the batch and key-columns variants:
// `encode_*` produce the per-row keys, `byte_key(i)` the exact fallback
// for NULL-bearing packed tuples.
template <typename EncodeInts, typename EncodeBytes, typename ByteKey>
void AssignGroupsImpl(const KeyEncoder& encoder, DenseKeyMap* key_map,
                      size_t num_rows, std::vector<uint32_t>* group_of_row,
                      const std::function<void(size_t)>& on_new_group,
                      EncodeInts encode_ints, EncodeBytes encode_bytes,
                      ByteKey byte_key) {
  group_of_row->resize(num_rows);
  bool inserted;
  if (encoder.int_path()) {
    std::vector<int64_t> keys;
    std::vector<uint8_t> valid;
    encode_ints(&keys, &valid);
    for (size_t i = 0; i < num_rows; ++i) {
      int64_t gid;
      if (!valid[i]) {
        // SQL GROUP BY: NULLs group with NULLs. Single keys use the
        // dedicated null group; packed tuples need the exact byte key so
        // distinct non-null parts stay distinct.
        gid = encoder.num_keys() == 1
                  ? key_map->NullId(&inserted)
                  : key_map->FindOrInsert(byte_key(i), &inserted);
      } else {
        gid = key_map->FindOrInsert(keys[i], &inserted);
      }
      if (inserted) on_new_group(i);
      (*group_of_row)[i] = static_cast<uint32_t>(gid);
    }
  } else {
    // Byte keys are complete even for NULL-bearing tuples (per-column null
    // tags), so they group exactly without special casing.
    std::vector<std::string> keys;
    std::vector<uint8_t> valid;
    encode_bytes(&keys, &valid);
    for (size_t i = 0; i < num_rows; ++i) {
      int64_t gid = key_map->FindOrInsert(keys[i], &inserted);
      if (inserted) on_new_group(i);
      (*group_of_row)[i] = static_cast<uint32_t>(gid);
    }
  }
}

}  // namespace

void EncodeAndAssignGroups(const KeyEncoder& encoder, DenseKeyMap* key_map,
                           const Batch& batch,
                           std::vector<uint32_t>* group_of_row,
                           const std::function<void(size_t)>& on_new_group) {
  AssignGroupsImpl(
      encoder, key_map, batch.num_rows, group_of_row, on_new_group,
      [&](std::vector<int64_t>* k, std::vector<uint8_t>* v) {
        encoder.EncodeInts(batch, k, v);
      },
      [&](std::vector<std::string>* k, std::vector<uint8_t>* v) {
        encoder.EncodeBytes(batch, k, v);
      },
      [&](size_t i) { return encoder.EncodeBytesRow(batch, i); });
}

void EncodeAndAssignGroupsCols(const KeyEncoder& encoder,
                               DenseKeyMap* key_map,
                               const std::vector<ColumnVector>& key_cols,
                               size_t num_rows,
                               std::vector<uint32_t>* group_of_row,
                               const std::function<void(size_t)>& on_new_group) {
  AssignGroupsImpl(
      encoder, key_map, num_rows, group_of_row, on_new_group,
      [&](std::vector<int64_t>* k, std::vector<uint8_t>* v) {
        encoder.EncodeIntsCols(key_cols, num_rows, k, v);
      },
      [&](std::vector<std::string>* k, std::vector<uint8_t>* v) {
        encoder.EncodeBytesCols(key_cols, num_rows, k, v);
      },
      [&](size_t i) { return encoder.EncodeBytesRowCols(key_cols, i); });
}

// ---------------- DenseKeyMap ----------------

int64_t DenseKeyMap::Find(int64_t key) const {
  auto it = int_map_.find(key);
  return it == int_map_.end() ? -1 : it->second;
}

int64_t DenseKeyMap::Find(const std::string& key) const {
  auto it = bytes_map_.find(key);
  return it == bytes_map_.end() ? -1 : it->second;
}

int64_t DenseKeyMap::FindOrInsert(int64_t key, bool* out_inserted) {
  auto [it, inserted] = int_map_.emplace(key, NextId());
  *out_inserted = inserted;
  return it->second;
}

int64_t DenseKeyMap::FindOrInsert(const std::string& key, bool* out_inserted) {
  auto [it, inserted] = bytes_map_.emplace(key, NextId());
  *out_inserted = inserted;
  if (inserted) bytes_key_payload_ += key.size();
  return it->second;
}

int64_t DenseKeyMap::NullId(bool* out_inserted) {
  *out_inserted = null_id_ < 0;
  if (null_id_ < 0) null_id_ = NextId();
  return null_id_;
}

uint64_t DenseKeyMap::MemoryBytes() const {
  // buckets + nodes (key, value, next pointer); int mode may additionally
  // hold byte keys for NULL-bearing packed tuples.
  return int_map_.bucket_count() * 8 + int_map_.size() * 32 +
         bytes_map_.bucket_count() * 8 + bytes_map_.size() * 48 +
         bytes_key_payload_;
}

void DenseKeyMap::Clear() {
  int_map_.clear();
  bytes_map_.clear();
  null_id_ = -1;
  bytes_key_payload_ = 0;
}

// ---------------- JoinHashTable ----------------

Status JoinHashTable::Init(const Schema& build_schema,
                           const std::vector<std::string>& key_cols) {
  schema_ = build_schema;
  BDCC_RETURN_NOT_OK(encoder_.Bind(build_schema, key_cols));
  columns_.clear();
  for (const Field& f : build_schema.fields()) {
    columns_.emplace_back(f.type);
  }
  num_rows_ = 0;
  heads_.clear();
  next_.clear();
  column_bytes_ = 0;
  return Status::OK();
}

Status JoinHashTable::AddBatch(const Batch& batch) {
  // Materialize the batch's (selected) rows.
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ColumnVector& src = batch.columns[c];
    for (size_t r = 0; r < batch.num_rows; ++r) {
      columns_[c].AppendFrom(src, batch.RowAt(r));
    }
  }
  // Chain rows under their keys.
  auto link = [&](int64_t id, size_t local_row) {
    uint32_t row = static_cast<uint32_t>(num_rows_ + local_row);
    if (static_cast<size_t>(id) >= heads_.size()) {
      heads_.resize(id + 1, kEnd);
    }
    next_.push_back(heads_[id]);
    heads_[id] = row;
  };
  if (encoder_.int_path()) {
    std::vector<int64_t> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeInts(batch, &keys, &valid);
    for (size_t r = 0; r < batch.num_rows; ++r) {
      if (!valid[r]) {
        next_.push_back(kEnd);  // NULL keys never match
        continue;
      }
      bool inserted;
      link(key_ids_.FindOrInsert(keys[r], &inserted), r);
    }
  } else {
    std::vector<std::string> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeBytes(batch, &keys, &valid);
    for (size_t r = 0; r < batch.num_rows; ++r) {
      if (!valid[r]) {
        next_.push_back(kEnd);
        continue;
      }
      bool inserted;
      link(key_ids_.FindOrInsert(keys[r], &inserted), r);
    }
  }
  num_rows_ += batch.num_rows;
  column_bytes_ = 0;
  for (const ColumnVector& c : columns_) column_bytes_ += ColumnVectorBytes(c);
  return Status::OK();
}

uint64_t JoinHashTable::MemoryBytes() const {
  return column_bytes_ + heads_.capacity() * 4 + next_.capacity() * 4 +
         key_ids_.MemoryBytes();
}

void JoinHashTable::Clear() {
  for (ColumnVector& c : columns_) {
    ColumnVector fresh(c.type);
    fresh.dict = c.dict;
    c = std::move(fresh);
  }
  num_rows_ = 0;
  heads_.clear();
  next_.clear();
  key_ids_.Clear();
  column_bytes_ = 0;
}

}  // namespace exec
}  // namespace bdcc
