#include "exec/hash_table.h"

#include <cstring>

#include "common/fault_injection.h"
#include "common/task_scheduler.h"
#include "exec/kernels/kernels.h"
#include "exec/query_control.h"

namespace bdcc {
namespace exec {

uint64_t ColumnVectorBytes(const ColumnVector& v) {
  return v.i32.capacity() * 4 + v.i64.capacity() * 8 + v.f64.capacity() * 8 +
         v.nulls.capacity();
}

// ---------------- KeyEncoder ----------------

namespace {

bool ExtractableTo32(TypeId t) {
  return IsI32Backed(t) || t == TypeId::kString;
}

}  // namespace

Status KeyEncoder::Bind(const Schema& schema,
                        const std::vector<std::string>& key_cols) {
  indices_.clear();
  types_.clear();
  probe_of_ = nullptr;
  for (const std::string& name : key_cols) {
    BDCC_ASSIGN_OR_RETURN(int idx, schema.Require(name));
    indices_.push_back(idx);
    types_.push_back(schema.field(idx).type);
  }
  spaces_.assign(indices_.size(), StringSpace{});
  caches_.assign(indices_.size(), TranslateCache{});
  if (indices_.size() == 1 && types_[0] != TypeId::kString &&
      types_[0] != TypeId::kFloat64) {
    mode_ = Mode::kInt;
  } else if (indices_.size() == 1 && types_[0] == TypeId::kString) {
    mode_ = Mode::kCode;
  } else if (indices_.size() == 2 && ExtractableTo32(types_[0]) &&
             ExtractableTo32(types_[1])) {
    mode_ = Mode::kPacked;
  } else {
    mode_ = Mode::kBytes;
  }
  return Status::OK();
}

Status KeyEncoder::BindProbe(const Schema& schema,
                             const std::vector<std::string>& key_cols,
                             const KeyEncoder* build) {
  BDCC_RETURN_NOT_OK(Bind(schema, key_cols));
  if (mode_ != build->mode_ || types_.size() != build->types_.size()) {
    return Status::InvalidArgument("join key types incompatible across sides");
  }
  // Same mode is not enough on multi-key paths: a packed raw-i32 key
  // position must not pair with a string position whose packed bits are
  // dictionary codes, or equal bit patterns would join unrelated values.
  for (size_t k = 0; k < types_.size(); ++k) {
    if ((types_[k] == TypeId::kString) != (build->types_[k] == TypeId::kString)) {
      return Status::InvalidArgument(
          "join key types incompatible across sides");
    }
  }
  probe_of_ = build;
  return Status::OK();
}

size_t KeyEncoder::SpaceVersion(size_t k) const {
  const StringSpace& sp = TargetSpace(k);
  return (sp.canon != nullptr ? static_cast<size_t>(sp.canon->size()) : 0) +
         sp.side.size();
}

uint32_t KeyEncoder::StringSlot(size_t k, const std::shared_ptr<Dictionary>& src,
                                int32_t code) const {
  if (probe_of_ == nullptr && spaces_[k].canon == nullptr) {
    // Adopt the first dictionary seen as the canonical space.
    spaces_[k].canon = src;
  }
  const StringSpace& sp = TargetSpace(k);
  if (sp.canon.get() == src.get()) return static_cast<uint32_t>(code);
  if (sp.canon == nullptr) return kMissSlot;  // empty build side
  // Translate through the per-batch cache; invalidated when the source
  // dictionary or the canonical space changed since it was filled.
  TranslateCache& cache = caches_[k];
  size_t version = SpaceVersion(k);
  if (cache.src != src || cache.src_size != static_cast<size_t>(src->size()) ||
      cache.space_version != version) {
    cache.src = src;
    cache.src_size = static_cast<size_t>(src->size());
    cache.space_version = version;
    cache.slot.assign(cache.src_size, kUnresolved);
  }
  int64_t& slot = cache.slot[code];
  if (slot != kUnresolved) return static_cast<uint32_t>(slot);
  std::string_view s = src->Get(code);
  int32_t canon_code = sp.canon->Find(s);
  if (canon_code >= 0) {
    slot = canon_code;
  } else if (probe_of_ != nullptr) {
    auto it = sp.side.find(std::string(s));
    slot = it != sp.side.end() ? it->second : kMissSlot;
  } else {
    auto [it, inserted] = spaces_[k].side.emplace(
        std::string(s), kSideBase + static_cast<uint32_t>(sp.side.size()));
    slot = it->second;
    if (inserted) cache.space_version = SpaceVersion(k);
  }
  return static_cast<uint32_t>(slot);
}

uint32_t KeyEncoder::SlotOf(size_t k, const ColumnVector& col,
                            size_t row) const {
  if (types_[k] == TypeId::kString) {
    return StringSlot(k, col.dict, col.i32_data()[row]);
  }
  return static_cast<uint32_t>(col.i32_data()[row]);
}

void KeyEncoder::EncodeIntsImpl(const ColumnVector* const* cols,
                                size_t num_rows, const uint32_t* sel,
                                std::vector<int64_t>* keys,
                                std::vector<uint8_t>* valid) const {
  BDCC_CHECK(mode_ != Mode::kBytes);
  keys->resize(num_rows);
  valid->assign(num_rows, 1);
  switch (mode_) {
    case Mode::kInt: {
      const ColumnVector& col = *cols[0];
      if (col.type == TypeId::kInt64) {
        const int64_t* lane = col.i64_data();
        for (size_t i = 0; i < num_rows; ++i) {
          (*keys)[i] = lane[sel != nullptr ? sel[i] : i];
        }
      } else {
        const int32_t* lane = col.i32_data();
        for (size_t i = 0; i < num_rows; ++i) {
          (*keys)[i] = lane[sel != nullptr ? sel[i] : i];
        }
      }
      if (col.HasNulls()) {
        for (size_t i = 0; i < num_rows; ++i) {
          if (col.nulls[sel != nullptr ? sel[i] : i]) (*valid)[i] = 0;
        }
      }
      break;
    }
    case Mode::kCode: {
      const ColumnVector& col = *cols[0];
      for (size_t i = 0; i < num_rows; ++i) {
        size_t row = sel != nullptr ? sel[i] : i;
        if (col.IsNull(row)) {
          (*valid)[i] = 0;
          (*keys)[i] = 0;
          continue;
        }
        uint32_t slot = StringSlot(0, col.dict, col.i32_data()[row]);
        (*keys)[i] = slot == kMissSlot ? -1 : static_cast<int64_t>(slot);
      }
      break;
    }
    case Mode::kPacked: {
      const ColumnVector& c0 = *cols[0];
      const ColumnVector& c1 = *cols[1];
      for (size_t i = 0; i < num_rows; ++i) {
        size_t row = sel != nullptr ? sel[i] : i;
        if (c0.IsNull(row) || c1.IsNull(row)) {
          (*valid)[i] = 0;
          (*keys)[i] = 0;
          continue;
        }
        uint64_t s0 = SlotOf(0, c0, row);
        uint64_t s1 = SlotOf(1, c1, row);
        (*keys)[i] = static_cast<int64_t>((s0 << 32) | s1);
      }
      break;
    }
    case Mode::kBytes:
      break;  // unreachable (checked above)
  }
}

bool KeyEncoder::AppendBytesRow(const ColumnVector* const* cols, size_t row,
                                std::string* key) const {
  bool all_present = true;
  for (size_t k = 0; k < indices_.size(); ++k) {
    const ColumnVector& col = *cols[k];
    // Per-column presence tag: NULL-bearing composite keys stay distinct
    // and group exactly ((1, NULL) != (2, NULL) but NULLs equal NULLs).
    if (col.IsNull(row)) {
      all_present = false;
      key->push_back('\0');
      continue;
    }
    key->push_back('\1');
    switch (col.type) {
      case TypeId::kString: {
        std::string_view s = col.GetString(row);
        uint32_t len = static_cast<uint32_t>(s.size());
        key->append(reinterpret_cast<const char*>(&len), 4);
        key->append(s.data(), s.size());
        break;
      }
      case TypeId::kFloat64: {
        double d = col.f64_data()[row];
        key->append(reinterpret_cast<const char*>(&d), 8);
        break;
      }
      case TypeId::kInt64: {
        int64_t v = col.i64_data()[row];
        key->append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
      default: {
        int32_t v = col.i32_data()[row];
        key->append(reinterpret_cast<const char*>(&v), 4);
        break;
      }
    }
  }
  return all_present;
}

void KeyEncoder::EncodeBytesImpl(const ColumnVector* const* cols,
                                 size_t num_rows, const uint32_t* sel,
                                 std::vector<std::string>* keys,
                                 std::vector<uint8_t>* valid) const {
  keys->assign(num_rows, std::string());
  valid->assign(num_rows, 1);
  for (size_t i = 0; i < num_rows; ++i) {
    size_t row = sel != nullptr ? sel[i] : i;
    if (!AppendBytesRow(cols, row, &(*keys)[i])) (*valid)[i] = 0;
  }
}

// Per-batch encode calls are hot (every probe/consume); gather the key
// column pointers into a caller-provided stack buffer, falling back to the
// heap only for improbably wide keys.
const ColumnVector* const* KeyEncoder::GatherCols(
    const Batch& batch, const ColumnVector* inline_buf[kInlineKeyCols],
    std::vector<const ColumnVector*>* overflow) const {
  const ColumnVector** cols = inline_buf;
  if (indices_.size() > kInlineKeyCols) {
    overflow->resize(indices_.size());
    cols = overflow->data();
  }
  for (size_t k = 0; k < indices_.size(); ++k) {
    cols[k] = &batch.columns[indices_[k]];
  }
  return cols;
}

void KeyEncoder::EncodeInts(const Batch& batch, std::vector<int64_t>* keys,
                            std::vector<uint8_t>* valid) const {
  const ColumnVector* inline_buf[kInlineKeyCols];
  std::vector<const ColumnVector*> overflow;
  EncodeIntsImpl(GatherCols(batch, inline_buf, &overflow), batch.num_rows,
                 batch.has_sel() ? batch.sel.data() : nullptr, keys, valid);
}

void KeyEncoder::EncodeBytes(const Batch& batch, std::vector<std::string>* keys,
                             std::vector<uint8_t>* valid) const {
  const ColumnVector* inline_buf[kInlineKeyCols];
  std::vector<const ColumnVector*> overflow;
  EncodeBytesImpl(GatherCols(batch, inline_buf, &overflow), batch.num_rows,
                  batch.has_sel() ? batch.sel.data() : nullptr, keys, valid);
}

void KeyEncoder::EncodeIntsCols(const std::vector<ColumnVector>& key_cols,
                                size_t num_rows, std::vector<int64_t>* keys,
                                std::vector<uint8_t>* valid) const {
  std::vector<const ColumnVector*> cols(key_cols.size());
  for (size_t k = 0; k < key_cols.size(); ++k) cols[k] = &key_cols[k];
  EncodeIntsImpl(cols.data(), num_rows, nullptr, keys, valid);
}

void KeyEncoder::EncodeBytesCols(const std::vector<ColumnVector>& key_cols,
                                 size_t num_rows,
                                 std::vector<std::string>* keys,
                                 std::vector<uint8_t>* valid) const {
  std::vector<const ColumnVector*> cols(key_cols.size());
  for (size_t k = 0; k < key_cols.size(); ++k) cols[k] = &key_cols[k];
  EncodeBytesImpl(cols.data(), num_rows, nullptr, keys, valid);
}

std::string KeyEncoder::EncodeBytesRow(const Batch& batch,
                                       size_t logical_row) const {
  const ColumnVector* inline_buf[kInlineKeyCols];
  std::vector<const ColumnVector*> overflow;
  std::string key;
  AppendBytesRow(GatherCols(batch, inline_buf, &overflow),
                 batch.RowAt(logical_row), &key);
  return key;
}

std::string KeyEncoder::EncodeBytesRowCols(
    const std::vector<ColumnVector>& key_cols, size_t row) const {
  std::vector<const ColumnVector*> cols(key_cols.size());
  for (size_t k = 0; k < key_cols.size(); ++k) cols[k] = &key_cols[k];
  std::string key;
  AppendBytesRow(cols.data(), row, &key);
  return key;
}

namespace {

// Group-id assignment core shared by the batch and key-columns variants:
// `encode_*` produce the per-row keys, `byte_key(i)` the exact fallback
// for NULL-bearing packed tuples.
template <typename EncodeInts, typename EncodeBytes, typename ByteKey>
void AssignGroupsImpl(const KeyEncoder& encoder, DenseKeyMap* key_map,
                      size_t num_rows,
                      std::vector<uint32_t>* group_of_row,
                      const std::function<void(size_t)>& on_new_group,
                      EncodeInts encode_ints, EncodeBytes encode_bytes,
                      ByteKey byte_key) {
  group_of_row->resize(num_rows);
  bool inserted;
  if (encoder.int_path()) {
    std::vector<int64_t> keys;
    std::vector<uint8_t> valid;
    encode_ints(&keys, &valid);
    for (size_t i = 0; i < num_rows; ++i) {
      int64_t gid;
      if (!valid[i]) {
        // SQL GROUP BY: NULLs group with NULLs. Single keys use the
        // dedicated null group; packed tuples need the exact byte key so
        // distinct non-null parts stay distinct.
        gid = encoder.num_keys() == 1
                  ? key_map->NullId(&inserted)
                  : key_map->FindOrInsert(byte_key(i), &inserted);
      } else {
        gid = key_map->FindOrInsert(keys[i], &inserted);
      }
      if (inserted) on_new_group(i);
      (*group_of_row)[i] = static_cast<uint32_t>(gid);
    }
  } else {
    // Byte keys are complete even for NULL-bearing tuples (per-column null
    // tags), so they group exactly without special casing.
    std::vector<std::string> keys;
    std::vector<uint8_t> valid;
    encode_bytes(&keys, &valid);
    for (size_t i = 0; i < num_rows; ++i) {
      int64_t gid = key_map->FindOrInsert(keys[i], &inserted);
      if (inserted) on_new_group(i);
      (*group_of_row)[i] = static_cast<uint32_t>(gid);
    }
  }
}

}  // namespace

void EncodeAndAssignGroups(const KeyEncoder& encoder, DenseKeyMap* key_map,
                           const Batch& batch,
                           std::vector<uint32_t>* group_of_row,
                           const std::function<void(size_t)>& on_new_group) {
  AssignGroupsImpl(
      encoder, key_map, batch.num_rows, group_of_row, on_new_group,
      [&](std::vector<int64_t>* k, std::vector<uint8_t>* v) {
        encoder.EncodeInts(batch, k, v);
      },
      [&](std::vector<std::string>* k, std::vector<uint8_t>* v) {
        encoder.EncodeBytes(batch, k, v);
      },
      [&](size_t i) { return encoder.EncodeBytesRow(batch, i); });
}

void EncodeAndAssignGroupsCols(const KeyEncoder& encoder,
                               DenseKeyMap* key_map,
                               const std::vector<ColumnVector>& key_cols,
                               size_t num_rows,
                               std::vector<uint32_t>* group_of_row,
                               const std::function<void(size_t)>& on_new_group) {
  AssignGroupsImpl(
      encoder, key_map, num_rows, group_of_row, on_new_group,
      [&](std::vector<int64_t>* k, std::vector<uint8_t>* v) {
        encoder.EncodeIntsCols(key_cols, num_rows, k, v);
      },
      [&](std::vector<std::string>* k, std::vector<uint8_t>* v) {
        encoder.EncodeBytesCols(key_cols, num_rows, k, v);
      },
      [&](size_t i) { return encoder.EncodeBytesRowCols(key_cols, i); });
}

// ---------------- DenseKeyMap ----------------

int64_t DenseKeyMap::Find(int64_t key) const {
  auto it = int_map_.find(key);
  return it == int_map_.end() ? -1 : it->second;
}

int64_t DenseKeyMap::Find(const std::string& key) const {
  auto it = bytes_map_.find(key);
  return it == bytes_map_.end() ? -1 : it->second;
}

int64_t DenseKeyMap::FindOrInsert(int64_t key, bool* out_inserted) {
  auto [it, inserted] = int_map_.emplace(key, NextId());
  *out_inserted = inserted;
  return it->second;
}

int64_t DenseKeyMap::FindOrInsert(const std::string& key, bool* out_inserted) {
  auto [it, inserted] = bytes_map_.emplace(key, NextId());
  *out_inserted = inserted;
  if (inserted) bytes_key_payload_ += key.size();
  return it->second;
}

void DenseKeyMap::Reserve(size_t n) {
  int_map_.reserve(n);
}

int64_t DenseKeyMap::NullId(bool* out_inserted) {
  *out_inserted = null_id_ < 0;
  if (null_id_ < 0) null_id_ = NextId();
  return null_id_;
}

uint64_t DenseKeyMap::MemoryBytes() const {
  // buckets + nodes (key, value, next pointer); int mode may additionally
  // hold byte keys for NULL-bearing packed tuples.
  return int_map_.bucket_count() * 8 + int_map_.size() * 32 +
         bytes_map_.bucket_count() * 8 + bytes_map_.size() * 48 +
         bytes_key_payload_;
}

void DenseKeyMap::Clear() {
  int_map_.clear();
  bytes_map_.clear();
  null_id_ = -1;
  bytes_key_payload_ = 0;
}

// ---------------- JoinHashTable ----------------

uint64_t HashKey64(uint64_t x) {
  // splitmix64 finalizer: cheap, well-mixed high bits for radix routing.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashKeyBytes(std::string_view s) {
  // FNV-1a, then one splitmix round so the *high* bits (the radix) mix.
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return HashKey64(h);
}

Status JoinHashTable::Init(const Schema& build_schema,
                           const std::vector<std::string>& key_cols) {
  schema_ = build_schema;
  BDCC_RETURN_NOT_OK(encoder_.Bind(build_schema, key_cols));
  parts_.clear();
  parts_.resize(1);
  for (const Field& f : build_schema.fields()) {
    parts_[0].columns.emplace_back(f.type);
  }
  num_rows_ = 0;
  part_bits_ = 0;
  producers_.clear();
  column_bytes_ = 0;
  return Status::OK();
}

Status JoinHashTable::AddBatch(const Batch& batch) {
  BDCC_CHECK(part_bits_ == 0);  // serial mode only; partitioned uses Scatter
  Partition& part = parts_[0];
  // Materialize the batch's (selected) rows.
  for (size_t c = 0; c < part.columns.size(); ++c) {
    const ColumnVector& src = batch.columns[c];
    for (size_t r = 0; r < batch.num_rows; ++r) {
      part.columns[c].AppendFrom(src, batch.RowAt(r));
    }
  }
  // Chain rows under their keys.
  auto link = [&](int64_t id, size_t local_row) {
    uint32_t row = static_cast<uint32_t>(part.num_rows + local_row);
    if (static_cast<size_t>(id) >= part.heads.size()) {
      part.heads.resize(id + 1, kEnd);
    }
    part.next.push_back(part.heads[id]);
    part.heads[id] = row;
  };
  if (encoder_.int_path()) {
    std::vector<int64_t> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeInts(batch, &keys, &valid);
    for (size_t r = 0; r < batch.num_rows; ++r) {
      if (!valid[r]) {
        part.next.push_back(kEnd);  // NULL keys never match
        continue;
      }
      bool inserted;
      link(part.key_ids.FindOrInsert(keys[r], &inserted), r);
    }
  } else {
    std::vector<std::string> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeBytes(batch, &keys, &valid);
    for (size_t r = 0; r < batch.num_rows; ++r) {
      if (!valid[r]) {
        part.next.push_back(kEnd);
        continue;
      }
      bool inserted;
      link(part.key_ids.FindOrInsert(keys[r], &inserted), r);
    }
  }
  part.num_rows += batch.num_rows;
  num_rows_ += batch.num_rows;
  column_bytes_ = 0;
  for (const ColumnVector& c : part.columns) {
    column_bytes_ += ColumnVectorBytes(c);
  }
  return Status::OK();
}

void JoinHashTable::BeginPartitionedBuild(int partition_bits,
                                          size_t num_producers) {
  BDCC_CHECK(partition_bits >= 1 && partition_bits <= kMaxPartitionBits);
  BDCC_CHECK(num_rows_ == 0 && num_producers >= 1);
  part_bits_ = partition_bits;
  size_t n = size_t{1} << part_bits_;
  parts_.clear();
  parts_.resize(n);
  for (Partition& p : parts_) {
    for (const Field& f : schema_.fields()) p.columns.emplace_back(f.type);
  }
  producers_.clear();
  producers_.resize(num_producers);
  for (ProducerState& ps : producers_) ps.parts.resize(n);
}

Status JoinHashTable::ScatterBatch(size_t producer, Batch batch) {
  BDCC_CHECK(part_bits_ > 0 && producer < producers_.size());
  ProducerState& ps = producers_[producer];
  uint64_t batch_ref = static_cast<uint64_t>(ps.pinned.size()) << 32;
  if (encoder_.int_path()) {
    std::vector<int64_t> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeInts(batch, &keys, &valid);
    // NULL keys never match; the kernel parks them in partition 0 so row
    // counts (and memory accounting) agree with a serial build.
    std::vector<uint32_t> part_ids(batch.num_rows);
    kernels::PartitionIdsFromKeys(
        reinterpret_cast<const uint64_t*>(keys.data()), valid.data(),
        batch.num_rows, part_bits_, part_ids.data());
    for (size_t i = 0; i < batch.num_rows; ++i) {
      RowBuffer& rb = ps.parts[part_ids[i]];
      rb.refs.push_back(batch_ref | batch.RowAt(i));
      rb.int_keys.push_back(keys[i]);
      rb.valid.push_back(valid[i]);
    }
  } else {
    std::vector<std::string> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeBytes(batch, &keys, &valid);
    for (size_t i = 0; i < batch.num_rows; ++i) {
      RowBuffer& rb = ps.parts[valid[i] ? PartOf(keys[i]) : 0];
      rb.refs.push_back(batch_ref | batch.RowAt(i));
      rb.byte_keys.push_back(std::move(keys[i]));
      rb.valid.push_back(valid[i]);
    }
  }
  ps.pinned.push_back(std::move(batch));
  return Status::OK();
}

void JoinHashTable::BuildPartition(size_t p) {
  Partition& part = parts_[p];
  size_t total = 0;
  for (const ProducerState& ps : producers_) total += ps.parts[p].refs.size();
  for (ColumnVector& c : part.columns) c.Reserve(total);
  part.next.reserve(total);
  part.heads.reserve(total);
  bool int_path = encoder_.int_path();
  if (int_path) part.key_ids.Reserve(total);
  auto link = [&part](int64_t id, uint32_t row) {
    if (static_cast<size_t>(id) >= part.heads.size()) {
      part.heads.resize(id + 1, kEnd);
    }
    part.next.push_back(part.heads[id]);
    part.heads[id] = row;
  };
  // Merge producers in producer order: per-key chain contents are then
  // deterministic for a fixed producer count, and identical to a serial
  // build when there is a single producer.
  std::vector<uint32_t> run_rows;
  for (ProducerState& ps : producers_) {
    RowBuffer& rb = ps.parts[p];
    size_t n = rb.refs.size();
    // Materialize: refs arrive in batch order, so each same-batch run
    // bulk-gathers with the typed fast path.
    size_t i = 0;
    while (i < n) {
      uint32_t bidx = static_cast<uint32_t>(rb.refs[i] >> 32);
      size_t run = i + 1;
      while (run < n && static_cast<uint32_t>(rb.refs[run] >> 32) == bidx) {
        ++run;
      }
      run_rows.resize(run - i);
      for (size_t j = i; j < run; ++j) {
        run_rows[j - i] = static_cast<uint32_t>(rb.refs[j]);
      }
      const Batch& src = ps.pinned[bidx];
      for (size_t c = 0; c < part.columns.size(); ++c) {
        part.columns[c].AppendGather(src.columns[c], run_rows.data(),
                                     run_rows.size());
      }
      i = run;
    }
    // Chain the rows under their pre-encoded keys.
    for (size_t r = 0; r < n; ++r) {
      if (!rb.valid[r]) {
        part.next.push_back(kEnd);
        continue;
      }
      bool inserted;
      int64_t id = int_path ? part.key_ids.FindOrInsert(rb.int_keys[r],
                                                        &inserted)
                            : part.key_ids.FindOrInsert(rb.byte_keys[r],
                                                        &inserted);
      link(id, static_cast<uint32_t>(part.num_rows + r));
    }
    part.num_rows += n;
    rb = RowBuffer{};  // free the refs/keys as soon as they are merged
  }
}

Status JoinHashTable::FinishPartitionedBuild(common::TaskScheduler* scheduler,
                                             QueryControl* control) {
  BDCC_CHECK(part_bits_ > 0);
  size_t n = parts_.size();
  // Lifecycle/fault gate between partitions: a cancelled query (or an
  // injected build fault) stops inserting and leaves the table for the
  // caller to Clear().
  auto build_range = [this, control, n](size_t first, size_t stride) -> Status {
    for (size_t p = first; p < n; p += stride) {
      if (control != nullptr) BDCC_RETURN_NOT_OK(control->Check());
      if (BDCC_UNLIKELY(fault::ShouldFail(fault::kJoinBuild))) {
        return Status::IOError("injected join-build fault");
      }
      BuildPartition(p);
    }
    return Status::OK();
  };
  // Dictionary homogeneity: every partition must end up sharing one
  // dictionary per string column (probe emit pre-wires partition 0's dict
  // and bulk-copies codes). With a single dictionary across all pinned
  // batches (the overwhelmingly common case) the parallel per-partition
  // gather adopts it and never interns; with mixed dictionaries we build
  // serially into fresh unified dictionaries instead, because interning
  // from partition tasks would mutate a shared Dictionary concurrently.
  bool dict_mix = false;
  for (size_t c = 0; c < schema_.num_fields() && !dict_mix; ++c) {
    if (schema_.field(c).type != TypeId::kString) continue;
    const Dictionary* first = nullptr;
    for (const ProducerState& ps : producers_) {
      for (const Batch& b : ps.pinned) {
        const Dictionary* d = b.columns[c].dict.get();
        if (d == nullptr) continue;
        if (first == nullptr) {
          first = d;
        } else if (first != d) {
          dict_mix = true;
          break;
        }
      }
      if (dict_mix) break;
    }
  }
  if (dict_mix) {
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      if (schema_.field(c).type != TypeId::kString) continue;
      auto unified = std::make_shared<Dictionary>();
      for (Partition& part : parts_) part.columns[c].dict = unified;
    }
    BDCC_RETURN_NOT_OK(build_range(0, 1));
  } else if (scheduler != nullptr) {
    // One strided worker per producer (== build clone): the insert phase's
    // concurrency stays bounded by the requested build parallelism, not by
    // the shared pool's width. All stripes go through the group so a failed
    // stripe skips the ones not yet started; the coordinator helps inside
    // WaitStatus.
    size_t workers = std::min(n, std::max<size_t>(1, producers_.size()));
    common::TaskScheduler::TaskGroup group(scheduler);
    for (size_t w = 0; w < workers; ++w) {
      group.SubmitFallible(
          [&build_range, w, workers] { return build_range(w, workers); });
    }
    BDCC_RETURN_NOT_OK(group.WaitStatus());
  } else {
    BDCC_RETURN_NOT_OK(build_range(0, 1));
  }
  // Homogeneous-path partitions each adopted the (single) source dict; make
  // empty partitions agree so columns() pre-wiring stays canonical.
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    if (schema_.field(c).type != TypeId::kString) continue;
    std::shared_ptr<Dictionary> common_dict;
    for (Partition& part : parts_) {
      if (part.columns[c].dict != nullptr) {
        common_dict = part.columns[c].dict;
        break;
      }
    }
    for (Partition& part : parts_) {
      if (part.columns[c].dict == nullptr) part.columns[c].dict = common_dict;
    }
  }
  producers_.clear();
  num_rows_ = 0;
  column_bytes_ = 0;
  for (const Partition& part : parts_) {
    num_rows_ += part.num_rows;
    for (const ColumnVector& c : part.columns) {
      column_bytes_ += ColumnVectorBytes(c);
    }
  }
  return Status::OK();
}

uint64_t JoinHashTable::PartitionBytes(const Partition& p) const {
  return p.heads.capacity() * 4 + p.next.capacity() * 4 +
         p.key_ids.MemoryBytes();
}

uint64_t JoinHashTable::MemoryBytes() const {
  uint64_t total = column_bytes_;
  for (const Partition& p : parts_) total += PartitionBytes(p);
  // In-flight scatter state (between Begin and Finish). Callers must not
  // race this walk with concurrent ScatterBatch producers.
  for (const ProducerState& ps : producers_) {
    for (const Batch& b : ps.pinned) {
      for (const ColumnVector& c : b.columns) total += ColumnVectorBytes(c);
    }
    for (const RowBuffer& rb : ps.parts) {
      total += rb.refs.capacity() * 8 + rb.int_keys.capacity() * 8 +
               rb.valid.capacity();
      for (const std::string& k : rb.byte_keys) total += k.capacity();
    }
  }
  return total;
}

void JoinHashTable::Clear() {
  // Keep the single-partition shape (and dictionaries) so a cleared serial
  // table can be refilled; partitioned state resets to serial.
  std::vector<ColumnVector> fresh_cols;
  for (const Field& f : schema_.fields()) fresh_cols.emplace_back(f.type);
  for (size_t c = 0; c < fresh_cols.size(); ++c) {
    if (!parts_.empty()) fresh_cols[c].dict = parts_[0].columns[c].dict;
  }
  parts_.clear();
  parts_.resize(1);
  parts_[0].columns = std::move(fresh_cols);
  num_rows_ = 0;
  part_bits_ = 0;
  producers_.clear();
  column_bytes_ = 0;
}

}  // namespace exec
}  // namespace bdcc
