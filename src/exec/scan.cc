#include "exec/scan.h"

#include <algorithm>

#include "common/bits.h"

namespace bdcc {
namespace exec {

namespace {

// Prepare an empty batch with one typed column per scan output.
Batch PrepareBatch(const Table& table, const std::vector<int>& col_idx,
                   const Schema& schema) {
  Batch out;
  out.columns.reserve(col_idx.size());
  for (size_t c = 0; c < col_idx.size(); ++c) {
    ColumnVector v(schema.field(c).type);
    if (table.column(col_idx[c]).type() == TypeId::kString) {
      v.dict = table.column(col_idx[c]).dict();
    }
    out.columns.push_back(std::move(v));
  }
  return out;
}

// Append rows [begin, end) of the storage columns to `out`, charging
// buffer-pool I/O per contiguous chunk.
void AppendRows(const Table& table, const std::vector<int>& col_idx,
                uint64_t begin, uint64_t end, ExecContext* ctx, Batch* out) {
  for (size_t c = 0; c < col_idx.size(); ++c) {
    const Column& src = table.column(col_idx[c]);
    ColumnVector& v = out->columns[c];
    switch (src.type()) {
      case TypeId::kInt64:
        v.i64.insert(v.i64.end(), src.i64().begin() + begin,
                     src.i64().begin() + end);
        break;
      case TypeId::kFloat64:
        v.f64.insert(v.f64.end(), src.f64().begin() + begin,
                     src.f64().begin() + end);
        break;
      default:
        v.i32.insert(v.i32.end(), src.i32().begin() + begin,
                     src.i32().begin() + end);
        break;
    }
    // Simulated I/O only when the execution context is wired to a pool
    // (plan-time mini-evaluations pass a pool-less context).
    if (table.HasIoHandles() && ctx->buffer_pool() != nullptr) {
      table.buffer_pool()->ReadRows(table.io_handle(col_idx[c]), begin, end);
    }
  }
  out->num_rows += end - begin;
  ctx->stats()->rows_scanned += end - begin;
}

Status ResolveScan(const Table& table, const std::vector<std::string>& names,
                   const std::vector<ScanPredicate>& preds,
                   std::vector<int>* col_idx,
                   std::vector<std::pair<int, ValueRange>>* bound_preds,
                   Schema* schema) {
  col_idx->clear();
  bound_preds->clear();
  std::vector<Field> fields;
  for (const std::string& name : names) {
    BDCC_ASSIGN_OR_RETURN(int idx, table.ColumnIndex(name));
    col_idx->push_back(idx);
    fields.push_back(Field{name, table.column(idx).type()});
  }
  for (const ScanPredicate& p : preds) {
    BDCC_ASSIGN_OR_RETURN(int idx, table.ColumnIndex(p.column));
    bound_preds->push_back({idx, p.range});
  }
  *schema = Schema(std::move(fields));
  return Status::OK();
}

}  // namespace

// ---------------- PlainScan ----------------

PlainScan::PlainScan(const Table* table, std::vector<std::string> columns,
                     std::vector<ScanPredicate> zone_predicates)
    : table_(table),
      col_names_(std::move(columns)),
      preds_(std::move(zone_predicates)) {}

Status PlainScan::Open(ExecContext* ctx) {
  cursor_ = 0;
  morsel_idx_ = morsels_.offset;
  last_zone_counted_ = ~uint64_t{0};
  return ResolveScan(*table_, col_names_, preds_, &col_idx_, &bound_preds_,
                     &schema_);
}

bool PlainScan::ZoneAllowed(uint64_t zone) const {
  if (!table_->HasZoneMaps()) return true;
  for (const auto& [col, range] : bound_preds_) {
    if (!table_->zone_map(col).MayMatch(zone, range)) return false;
  }
  return true;
}

Result<Batch> PlainScan::Next(ExecContext* ctx) {
  uint64_t rows = table_->num_rows();
  uint32_t zone_rows = table_->HasZoneMaps() ? table_->zone_rows() : 0;
  Batch out = PrepareBatch(*table_, col_idx_, schema_);
  while (out.num_rows < ctx->batch_size()) {
    uint64_t limit = rows;
    if (morsels_.valid()) {
      // Walk this clone's strided morsels; a batch may span morsels.
      while (morsel_idx_ < morsels_.morsels->size()) {
        const Morsel& m = (*morsels_.morsels)[morsel_idx_];
        if (cursor_ < m.begin) cursor_ = m.begin;
        if (cursor_ < m.end) break;
        morsel_idx_ += morsels_.stride;
      }
      if (morsel_idx_ >= morsels_.morsels->size()) break;
      limit = (*morsels_.morsels)[morsel_idx_].end;
    } else if (cursor_ >= rows) {
      break;
    }
    uint64_t end =
        std::min(limit, cursor_ + (ctx->batch_size() - out.num_rows));
    if (zone_rows != 0) {
      uint64_t zone = cursor_ / zone_rows;
      if (!ZoneAllowed(zone)) {
        ctx->stats()->zones_skipped += 1;
        cursor_ = (zone + 1) * zone_rows;
        continue;
      }
      if (zone != last_zone_counted_) {
        ctx->stats()->zones_read += 1;
        last_zone_counted_ = zone;
      }
      end = std::min<uint64_t>(end, (zone + 1) * zone_rows);
    }
    AppendRows(*table_, col_idx_, cursor_, end, ctx, &out);
    cursor_ = end;
  }
  return out;  // empty == end-of-stream
}

// ---------------- BdccScan ----------------

BdccScan::BdccScan(const BdccTable* table, std::vector<std::string> columns,
                   std::vector<GroupRange> ranges,
                   std::vector<ScanPredicate> zone_predicates,
                   std::vector<GroupSpec> grouping, uint64_t pruned_groups)
    : table_(table),
      col_names_(std::move(columns)),
      ranges_(std::move(ranges)),
      preds_(std::move(zone_predicates)),
      grouping_(std::move(grouping)),
      pruned_groups_(pruned_groups) {}

Status BdccScan::Open(ExecContext* ctx) {
  range_idx_ = 0;
  cursor_ = 0;
  morsel_pos_ = morsels_.offset;
  // Morsel restriction addresses ranges by index, so grouped scans (which
  // sort/coalesce below) must use group-id chunking instead.
  BDCC_CHECK(!morsels_.valid() || grouping_.empty());
  ctx->stats()->groups_pruned += pruned_groups_;
  BDCC_RETURN_NOT_OK(ResolveScan(table_->data(), col_names_, preds_,
                                 &col_idx_, &bound_preds_, &schema_));
  // Grouped emission must present group ids in ascending order (sandwich
  // operators align on them). Sort by the *emitted* id — the aligned shared
  // prefix — not the full dimension bits; a stable sort keeps physical
  // (key) order within each group for better coalescing below.
  if (!grouping_.empty()) {
    std::stable_sort(ranges_.begin(), ranges_.end(),
                     [&](const GroupRange& a, const GroupRange& b) {
                       return GroupIdOf(a.key) < GroupIdOf(b.key);
                     });
  }
  // Coalesce physically contiguous ranges that share a group id so batches
  // are not fragmented at count-table group boundaries (for an ungrouped
  // scan every contiguous run merges into one span). Skipped under a morsel
  // restriction, whose spans address the ranges by index.
  if (!ranges_.empty() && !morsels_.valid()) {
    std::vector<GroupRange> merged;
    merged.reserve(ranges_.size());
    int64_t last_gid = 0;
    for (const GroupRange& r : ranges_) {
      int64_t gid = GroupIdOf(r.key);
      if (!merged.empty() && merged.back().row_end == r.row_begin &&
          last_gid == gid) {
        merged.back().row_end = r.row_end;
      } else {
        merged.push_back(r);
        last_gid = gid;
      }
    }
    ranges_ = std::move(merged);
  }
  return Status::OK();
}

bool BdccScan::ZoneAllowed(uint64_t zone) const {
  const Table& data = table_->data();
  if (!data.HasZoneMaps()) return true;
  for (const auto& [col, range] : bound_preds_) {
    if (!data.zone_map(col).MayMatch(zone, range)) return false;
  }
  return true;
}

int64_t GroupIdForKey(const BdccTable& table,
                      const std::vector<GroupSpec>& grouping, uint64_t key) {
  if (grouping.empty()) return -1;
  int64_t gid = 0;
  for (const GroupSpec& g : grouping) {
    uint64_t mask = table.ReducedMask(g.use_idx);
    int own_bits = bits::Ones(mask);
    uint64_t prefix = bits::ExtractBits(key, mask);
    BDCC_CHECK(g.shared_bits <= own_bits);
    gid = (gid << g.shared_bits) |
          static_cast<int64_t>(prefix >> (own_bits - g.shared_bits));
  }
  return gid;
}

int64_t BdccScan::GroupIdOf(uint64_t key) const {
  return GroupIdForKey(*table_, grouping_, key);
}

Result<Batch> BdccScan::Next(ExecContext* ctx) {
  const Table& data = table_->data();
  uint32_t zone_rows = data.HasZoneMaps() ? data.zone_rows() : 0;
  Batch out = PrepareBatch(data, col_idx_, schema_);
  int64_t batch_gid = -2;  // unset sentinel
  while (out.num_rows < ctx->batch_size()) {
    if (morsels_.valid()) {
      // Walk this clone's strided morsels of range indices.
      while (morsel_pos_ < morsels_.morsels->size()) {
        const Morsel& m = (*morsels_.morsels)[morsel_pos_];
        if (range_idx_ < m.begin) {
          range_idx_ = m.begin;
          cursor_ = 0;
        }
        if (range_idx_ < m.end) break;
        morsel_pos_ += morsels_.stride;
      }
      if (morsel_pos_ >= morsels_.morsels->size()) break;
    } else if (range_idx_ >= ranges_.size()) {
      break;
    }
    const GroupRange& range = ranges_[range_idx_];
    // A batch never mixes group ids (sandwich alignment contract); ranges
    // are id-sorted, so we only ever cut at id boundaries.
    int64_t gid = GroupIdOf(range.key);
    if (batch_gid != -2 && gid != batch_gid) break;
    if (cursor_ == 0) {
      cursor_ = range.row_begin;
      ctx->stats()->groups_read += 1;
    }
    if (cursor_ >= range.row_end) {
      ++range_idx_;
      cursor_ = 0;
      continue;
    }
    uint64_t end = std::min(range.row_end,
                            cursor_ + (ctx->batch_size() - out.num_rows));
    if (zone_rows != 0) {
      uint64_t zone = cursor_ / zone_rows;
      uint64_t zone_begin = zone * zone_rows;
      uint64_t zone_end = (zone + 1) * zone_rows;
      // Skip zones lying fully inside the range when MinMax excludes them.
      if (zone_begin >= range.row_begin && zone_end <= range.row_end &&
          !ZoneAllowed(zone)) {
        ctx->stats()->zones_skipped += 1;
        cursor_ = zone_end;
        continue;
      }
      end = std::min(end, zone_end);
      ctx->stats()->zones_read += 1;
    }
    AppendRows(data, col_idx_, cursor_, end, ctx, &out);
    batch_gid = gid;
    cursor_ = end;
  }
  out.group_id = batch_gid == -2 ? -1 : batch_gid;
  if (grouping_.empty()) out.group_id = -1;
  return out;
}

}  // namespace exec
}  // namespace bdcc
