#include "exec/scan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bits.h"
#include "exec/kernels/kernels.h"
#include "storage/compression/encoded_column.h"

namespace bdcc {
namespace exec {

namespace internal {

Status ScanFilterState::Bind(const Table& table,
                             const std::vector<ScanPredicate>& preds) {
  bound_.clear();
  for (const ScanPredicate& p : preds) {
    BDCC_ASSIGN_OR_RETURN(int idx, table.ColumnIndex(p.column));
    const Column& col = table.column(idx);
    BoundRowPred b;
    b.col = idx;
    b.type = col.type();
    switch (col.type()) {
      case TypeId::kInt64:
        b.lo_i64 = p.range.lo ? p.range.lo->AsInt64()
                              : std::numeric_limits<int64_t>::min();
        b.hi_i64 = p.range.hi ? p.range.hi->AsInt64()
                              : std::numeric_limits<int64_t>::max();
        break;
      case TypeId::kFloat64:
        b.lo_f64 = p.range.lo ? p.range.lo->AsDouble()
                              : -std::numeric_limits<double>::infinity();
        b.hi_f64 = p.range.hi ? p.range.hi->AsDouble()
                              : std::numeric_limits<double>::infinity();
        b.has_hi_f64 = p.range.hi.has_value();
        break;
      case TypeId::kString: {
        // Bind the range to the dictionary once: one verdict per code.
        const Dictionary& dict = *col.dict();
        b.code_ok.resize(dict.size());
        for (int32_t c = 0; c < dict.size(); ++c) {
          b.code_ok[c] = p.range.Contains(Value::String(dict.Get(c))) ? 1 : 0;
        }
        break;
      }
      default: {  // i32-backed
        int64_t lo = p.range.lo ? p.range.lo->AsInt64()
                                : std::numeric_limits<int32_t>::min();
        int64_t hi = p.range.hi ? p.range.hi->AsInt64()
                                : std::numeric_limits<int32_t>::max();
        if (lo > std::numeric_limits<int32_t>::max() ||
            hi < std::numeric_limits<int32_t>::min()) {
          // The range lies entirely outside the lane's domain: match
          // nothing (a naive clamp would wrongly admit the boundary value).
          b.lo_i32 = 1;
          b.hi_i32 = 0;
        } else {
          b.lo_i32 = static_cast<int32_t>(std::clamp<int64_t>(
              lo, std::numeric_limits<int32_t>::min(),
              std::numeric_limits<int32_t>::max()));
          b.hi_i32 = static_cast<int32_t>(std::clamp<int64_t>(
              hi, std::numeric_limits<int32_t>::min(),
              std::numeric_limits<int32_t>::max()));
        }
        break;
      }
    }
    bound_.push_back(std::move(b));
  }
  return Status::OK();
}

void ScanFilterState::EvalSpan(const Table& table, uint64_t begin,
                               uint64_t end, ExecContext* ctx,
                               std::vector<uint32_t>* rel_sel) {
  using compression::EncodedLane;
  size_t n = static_cast<size_t>(end - begin);
  mask_.assign(n, 1);
  bool none_pass = false;
  for (const BoundRowPred& p : bound_) {
    if (none_pass) break;
    const Column& col = table.column(p.col);
    // i32-backed lanes may carry an encoded mirror; honor the mode.
    const EncodedLane* enc =
        (encoded_eval_ != EncodedEval::kOff && p.type != TypeId::kInt64 &&
         p.type != TypeId::kFloat64)
            ? col.encoded()
            : nullptr;
    switch (p.type) {
      case TypeId::kInt64:
        kernels::RangeMaskI64(col.i64().data() + begin, n, p.lo_i64,
                              p.hi_i64, mask_.data());
        break;
      case TypeId::kFloat64:
        kernels::RangeMaskF64(col.f64().data() + begin, n, p.lo_f64,
                              p.hi_f64, p.has_hi_f64, mask_.data());
        break;
      case TypeId::kString: {
        const uint8_t* ok = p.code_ok.data();
        if (enc != nullptr && encoded_eval_ == EncodedEval::kDecode) {
          decoded_.resize(n);
          enc->DecodeSpan(col.i32().data(), begin, end, decoded_.data());
          kernels::VerdictMaskI32(decoded_.data(), n, ok, mask_.data());
        } else if (enc != nullptr) {
          EncodedLane::SpanVerdict v = enc->VerdictMask(
              col.i32().data(), begin, end, ok, p.code_ok.size(),
              mask_.data());
          ctx->stats()->encoded_spans += 1;
          // kNonePass zeroes the whole span mask, so the AND-chain is done.
          none_pass = v == EncodedLane::SpanVerdict::kNonePass;
        } else {
          kernels::VerdictMaskI32(col.i32().data() + begin, n, ok,
                                  mask_.data());
        }
        break;
      }
      default: {
        if (enc != nullptr && encoded_eval_ == EncodedEval::kDecode) {
          decoded_.resize(n);
          enc->DecodeSpan(col.i32().data(), begin, end, decoded_.data());
          kernels::RangeMaskI32(decoded_.data(), n, p.lo_i32, p.hi_i32,
                                mask_.data());
        } else if (enc != nullptr) {
          EncodedLane::SpanVerdict v =
              enc->RangeMask(col.i32().data(), begin, end, p.lo_i32,
                             p.hi_i32, mask_.data());
          ctx->stats()->encoded_spans += 1;
          none_pass = v == EncodedLane::SpanVerdict::kNonePass;
        } else {
          kernels::RangeMaskI32(col.i32().data() + begin, n, p.lo_i32,
                                p.hi_i32, mask_.data());
        }
        break;
      }
    }
  }
  rel_sel->clear();
  if (!none_pass) kernels::MaskToSel(mask_.data(), n, 0, rel_sel);
}

Batch ScanFilterState::TakeBatch(const Table& table,
                                 const std::vector<int>& col_idx,
                                 const Schema& schema, size_t reserve_rows) {
  Batch out;
  if (!recycled_.empty()) {
    out = std::move(recycled_.back());
    recycled_.pop_back();
    out.num_rows = 0;
    out.sel.clear();
    out.group_id = -1;
    for (ColumnVector& c : out.columns) c.ClearKeepCapacity();
  } else {
    out.columns.reserve(col_idx.size());
    for (size_t c = 0; c < col_idx.size(); ++c) {
      ColumnVector v(schema.field(c).type);
      v.Reserve(reserve_rows);
      out.columns.push_back(std::move(v));
    }
  }
  for (size_t c = 0; c < col_idx.size(); ++c) {
    if (table.column(col_idx[c]).type() == TypeId::kString) {
      out.columns[c].dict = table.column(col_idx[c]).dict();
    }
  }
  return out;
}

void ScanFilterState::Recycle(Batch&& batch, const Schema& schema) {
  RecycleIntoFreeList(std::move(batch), schema, &recycled_);
}

void SelBuilder::AddDense(size_t base, size_t n) {
  if (explicit_) {
    for (size_t i = 0; i < n; ++i) {
      sel_.push_back(static_cast<uint32_t>(base + i));
    }
  }
  logical_ += n;
}

void SelBuilder::AddPartial(size_t base, const std::vector<uint32_t>& rel) {
  if (!explicit_) {
    // Everything so far was dense: materialize the identity prefix.
    sel_.reserve(logical_ + rel.size());
    for (size_t i = 0; i < logical_; ++i) {
      sel_.push_back(static_cast<uint32_t>(i));
    }
    explicit_ = true;
  }
  for (uint32_t r : rel) sel_.push_back(static_cast<uint32_t>(base + r));
  logical_ += rel.size();
}

void SelBuilder::Finish(Batch* out) {
  out->num_rows = logical_;
  if (explicit_) out->sel = std::move(sel_);
}

}  // namespace internal

namespace {

using internal::SelBuilder;

// Append rows [begin, end) of the storage columns to `out` (no I/O or stats
// accounting — see ChargeSpan).
void AppendRows(const Table& table, const std::vector<int>& col_idx,
                uint64_t begin, uint64_t end, Batch* out) {
  for (size_t c = 0; c < col_idx.size(); ++c) {
    const Column& src = table.column(col_idx[c]);
    ColumnVector& v = out->columns[c];
    switch (src.type()) {
      case TypeId::kInt64:
        v.i64.insert(v.i64.end(), src.i64().begin() + begin,
                     src.i64().begin() + end);
        break;
      case TypeId::kFloat64:
        v.f64.insert(v.f64.end(), src.f64().begin() + begin,
                     src.f64().begin() + end);
        break;
      default:
        v.i32.insert(v.i32.end(), src.i32().begin() + begin,
                     src.i32().begin() + end);
        break;
    }
  }
}

// Append only rows begin+rel_sel[i] (sparse chunk: gather straight from
// storage, no intermediate copy).
void AppendSelectedRows(const Table& table, const std::vector<int>& col_idx,
                        uint64_t begin, const std::vector<uint32_t>& rel_sel,
                        Batch* out) {
  for (size_t c = 0; c < col_idx.size(); ++c) {
    const Column& src = table.column(col_idx[c]);
    ColumnVector& v = out->columns[c];
    switch (src.type()) {
      case TypeId::kInt64: {
        const int64_t* data = src.i64().data() + begin;
        for (uint32_t r : rel_sel) v.i64.push_back(data[r]);
        break;
      }
      case TypeId::kFloat64: {
        const double* data = src.f64().data() + begin;
        for (uint32_t r : rel_sel) v.f64.push_back(data[r]);
        break;
      }
      default: {
        const int32_t* data = src.i32().data() + begin;
        for (uint32_t r : rel_sel) v.i32.push_back(data[r]);
        break;
      }
    }
  }
}

// Charge simulated I/O and scan stats for reading rows [begin, end) of the
// scanned columns (the scan reads the span even when predicates then drop
// rows). Simulated I/O only when the execution context is wired to a pool
// (plan-time mini-evaluations pass a pool-less context).
void ChargeSpan(const Table& table, const std::vector<int>& col_idx,
                uint64_t begin, uint64_t end, ExecContext* ctx) {
  if (table.HasIoHandles() && ctx->buffer_pool() != nullptr) {
    for (size_t c = 0; c < col_idx.size(); ++c) {
      table.buffer_pool()->ReadRows(table.io_handle(col_idx[c]), begin, end);
    }
  }
  ctx->stats()->rows_scanned += end - begin;
}

// Minimum chunk size worth emitting as a borrowed view: below this the
// bookkeeping of cutting a single-chunk batch outweighs the saved copy.
constexpr uint64_t kMinViewRows = 256;

// Point every output column at the storage lanes for rows [begin, end):
// the zero-copy emission path for chunks proven fully-passing.
void MakeViews(const Table& table, const std::vector<int>& col_idx,
               uint64_t begin, uint64_t end, Batch* out) {
  size_t n = static_cast<size_t>(end - begin);
  for (size_t c = 0; c < col_idx.size(); ++c) {
    const Column& src = table.column(col_idx[c]);
    ColumnVector& v = out->columns[c];
    switch (src.type()) {
      case TypeId::kInt64:
        v.SetView(src.i64().data() + begin, n);
        break;
      case TypeId::kFloat64:
        v.SetView(src.f64().data() + begin, n);
        break;
      default:
        v.SetView(src.i32().data() + begin, n);
        break;
    }
  }
  out->num_rows = n;
}

// One zone-bounded chunk through the optional row filter (`apply_filter`
// false also covers chunks the zone maps proved fully-passing). Returns the
// number of physical rows appended and records selection state in `selb`.
size_t EmitChunk(const Table& table, const std::vector<int>& col_idx,
                 uint64_t begin, uint64_t end, bool apply_filter,
                 internal::ScanFilterState* filter, ExecContext* ctx,
                 Batch* out, SelBuilder* selb,
                 std::vector<uint32_t>* rel_scratch) {
  size_t base = out->physical_rows();
  size_t n = static_cast<size_t>(end - begin);
  ChargeSpan(table, col_idx, begin, end, ctx);
  if (!apply_filter || !filter->active()) {
    AppendRows(table, col_idx, begin, end, out);
    selb->AddDense(base, n);
    return n;
  }
  filter->EvalSpan(table, begin, end, ctx, rel_scratch);
  size_t k = rel_scratch->size();
  ctx->stats()->rows_filtered_at_scan += n - k;
  if (k == 0) return 0;  // nothing qualifies: no copy at all
  if (k == n) {
    AppendRows(table, col_idx, begin, end, out);
    selb->AddDense(base, n);
    return n;
  }
  double density = static_cast<double>(k) / static_cast<double>(n);
  if (!ctx->sel_enabled() || density < ExecContext::kCompactDensity) {
    // Sparse: gather just the qualifying rows from storage.
    AppendSelectedRows(table, col_idx, begin, *rel_scratch, out);
    selb->AddDense(base, k);
    return k;
  }
  // Dense partial: bulk copy (memcpy-speed) and narrow with a selection.
  AppendRows(table, col_idx, begin, end, out);
  selb->AddPartial(base, *rel_scratch);
  return n;
}

Status ResolveScan(const Table& table, const std::vector<std::string>& names,
                   const std::vector<ScanPredicate>& preds,
                   std::vector<int>* col_idx,
                   std::vector<std::pair<int, ValueRange>>* bound_preds,
                   Schema* schema) {
  col_idx->clear();
  bound_preds->clear();
  std::vector<Field> fields;
  for (const std::string& name : names) {
    BDCC_ASSIGN_OR_RETURN(int idx, table.ColumnIndex(name));
    col_idx->push_back(idx);
    fields.push_back(Field{name, table.column(idx).type()});
  }
  for (const ScanPredicate& p : preds) {
    BDCC_ASSIGN_OR_RETURN(int idx, table.ColumnIndex(p.column));
    bound_preds->push_back({idx, p.range});
  }
  *schema = Schema(std::move(fields));
  return Status::OK();
}

}  // namespace

// ---------------- PlainScan ----------------

PlainScan::PlainScan(const Table* table, std::vector<std::string> columns,
                     std::vector<ScanPredicate> zone_predicates)
    : table_(table),
      col_names_(std::move(columns)),
      preds_(std::move(zone_predicates)) {}

Status PlainScan::Open(ExecContext* ctx) {
  cursor_ = 0;
  morsel_idx_ = morsels_.offset;
  last_zone_counted_ = ~uint64_t{0};
  filter_.ClearRecycled();
  filter_.set_encoded_eval(encoded_eval_);
  if (row_filter_) {
    BDCC_RETURN_NOT_OK(filter_.Bind(*table_, preds_));
  }
  return ResolveScan(*table_, col_names_, preds_, &col_idx_, &bound_preds_,
                     &schema_);
}

bool PlainScan::ZoneAllowed(uint64_t zone) const {
  if (!table_->HasZoneMaps()) return true;
  for (const auto& [col, range] : bound_preds_) {
    if (!table_->zone_map(col).MayMatch(zone, range)) return false;
  }
  return true;
}

bool PlainScan::ZoneAllMatch(uint64_t zone) const {
  if (!table_->HasZoneMaps()) return false;
  for (const auto& [col, range] : bound_preds_) {
    if (!table_->zone_map(col).AllMatch(zone, range)) return false;
  }
  return true;
}

Result<Batch> PlainScan::Next(ExecContext* ctx) {
  uint64_t rows = table_->num_rows();
  uint32_t zone_rows = table_->HasZoneMaps() ? table_->zone_rows() : 0;
  Batch out = filter_.TakeBatch(*table_, col_idx_, schema_, ctx->batch_size());
  SelBuilder selb;
  std::vector<uint32_t> rel_scratch;
  size_t appended = 0;
  while (appended < ctx->batch_size()) {
    BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
    uint64_t limit = rows;
    if (morsels_.valid()) {
      // Walk this clone's strided morsels; a batch may span morsels.
      while (morsel_idx_ < morsels_.morsels->size()) {
        const Morsel& m = (*morsels_.morsels)[morsel_idx_];
        if (cursor_ < m.begin) cursor_ = m.begin;
        if (cursor_ < m.end) break;
        morsel_idx_ += morsels_.stride;
      }
      if (morsel_idx_ >= morsels_.morsels->size()) break;
      limit = (*morsels_.morsels)[morsel_idx_].end;
    } else if (cursor_ >= rows) {
      break;
    }
    uint64_t end = std::min(limit, cursor_ + (ctx->batch_size() - appended));
    bool zone_all_match = false;
    if (zone_rows != 0) {
      uint64_t zone = cursor_ / zone_rows;
      if (!ZoneAllowed(zone)) {
        ctx->stats()->zones_skipped += 1;
        cursor_ = (zone + 1) * zone_rows;
        continue;
      }
      if (zone != last_zone_counted_) {
        ctx->stats()->zones_read += 1;
        last_zone_counted_ = zone;
      }
      end = std::min<uint64_t>(end, (zone + 1) * zone_rows);
      zone_all_match = ZoneAllMatch(zone);
    }
    bool filtering = row_filter_ && filter_.active();
    // Zone maps proving every row passes short-circuit the chunk past
    // predicate evaluation (and any encoded-lane work) entirely.
    if (filtering && zone_all_match) ctx->stats()->decodes_skipped += 1;
    if (BDCC_UNLIKELY(fault::ShouldFail(fault::kScanDecode))) {
      ctx->stats()->faults_injected += 1;
      return Status::IOError("injected decode fault (PlainScan chunk)");
    }
    uint64_t n = end - cursor_;
    if (zero_copy_ && appended == 0 && n >= kMinViewRows &&
        (!filtering || zone_all_match)) {
      ChargeSpan(*table_, col_idx_, cursor_, end, ctx);
      MakeViews(*table_, col_idx_, cursor_, end, &out);
      ctx->stats()->chunks_zero_copy += 1;
      cursor_ = end;
      return out;  // single-chunk borrowed batch
    }
    appended += EmitChunk(*table_, col_idx_, cursor_, end,
                          filtering && !zone_all_match, &filter_, ctx, &out,
                          &selb, &rel_scratch);
    cursor_ = end;
  }
  selb.Finish(&out);
  return out;  // empty == end-of-stream
}

// ---------------- BdccScan ----------------

BdccScan::BdccScan(const BdccTable* table, std::vector<std::string> columns,
                   std::vector<GroupRange> ranges,
                   std::vector<ScanPredicate> zone_predicates,
                   std::vector<GroupSpec> grouping, uint64_t pruned_groups)
    : table_(table),
      col_names_(std::move(columns)),
      ranges_(std::move(ranges)),
      preds_(std::move(zone_predicates)),
      grouping_(std::move(grouping)),
      pruned_groups_(pruned_groups) {}

Status BdccScan::Open(ExecContext* ctx) {
  range_idx_ = 0;
  cursor_ = 0;
  morsel_pos_ = morsels_.offset;
  delta_idx_ = 0;
  delta_cursor_ = 0;
  delta_bound_ = -1;
  main_done_ = false;
  filter_.ClearRecycled();
  // Morsel restriction addresses ranges by index, so grouped scans (which
  // sort/coalesce below) must use group-id chunking instead.
  BDCC_CHECK(!morsels_.valid() || grouping_.empty());
  // The delta is unclustered: grouped emission over it is impossible (the
  // planner must not hand a grouped scan a delta leg).
  BDCC_CHECK(delta_chunks_.empty() || grouping_.empty());
  ctx->stats()->groups_pruned += pruned_groups_;
  filter_.set_encoded_eval(encoded_eval_);
  if (row_filter_) {
    BDCC_RETURN_NOT_OK(filter_.Bind(table_->data(), preds_));
  }
  BDCC_RETURN_NOT_OK(ResolveScan(table_->data(), col_names_, preds_,
                                 &col_idx_, &bound_preds_, &schema_));
  // Grouped emission must present group ids in ascending order (sandwich
  // operators align on them). Sort by the *emitted* id — the aligned shared
  // prefix — not the full dimension bits; a stable sort keeps physical
  // (key) order within each group for better coalescing below.
  if (!grouping_.empty()) {
    std::stable_sort(ranges_.begin(), ranges_.end(),
                     [&](const GroupRange& a, const GroupRange& b) {
                       return GroupIdOf(a.key) < GroupIdOf(b.key);
                     });
  }
  // Coalesce physically contiguous ranges that share a group id so batches
  // are not fragmented at count-table group boundaries (for an ungrouped
  // scan every contiguous run merges into one span). Skipped under a morsel
  // restriction, whose spans address the ranges by index.
  if (!ranges_.empty() && !morsels_.valid()) {
    std::vector<GroupRange> merged;
    merged.reserve(ranges_.size());
    int64_t last_gid = 0;
    for (const GroupRange& r : ranges_) {
      int64_t gid = GroupIdOf(r.key);
      if (!merged.empty() && merged.back().row_end == r.row_begin &&
          last_gid == gid) {
        merged.back().row_end = r.row_end;
      } else {
        merged.push_back(r);
        last_gid = gid;
      }
    }
    ranges_ = std::move(merged);
  }
  return Status::OK();
}

bool BdccScan::ZoneAllowedIn(const Table& data, uint64_t zone) const {
  if (!data.HasZoneMaps()) return true;
  for (const auto& [col, range] : bound_preds_) {
    if (!data.zone_map(col).MayMatch(zone, range)) return false;
  }
  return true;
}

bool BdccScan::ZoneAllMatchIn(const Table& data, uint64_t zone) const {
  if (!data.HasZoneMaps()) return false;
  for (const auto& [col, range] : bound_preds_) {
    if (!data.zone_map(col).AllMatch(zone, range)) return false;
  }
  return true;
}

bool BdccScan::ZoneAllowed(uint64_t zone) const {
  return ZoneAllowedIn(table_->data(), zone);
}

bool BdccScan::ZoneAllMatch(uint64_t zone) const {
  return ZoneAllMatchIn(table_->data(), zone);
}

int64_t GroupIdForKey(const BdccTable& table,
                      const std::vector<GroupSpec>& grouping, uint64_t key) {
  if (grouping.empty()) return -1;
  int64_t gid = 0;
  for (const GroupSpec& g : grouping) {
    uint64_t mask = table.ReducedMask(g.use_idx);
    int own_bits = bits::Ones(mask);
    uint64_t prefix = bits::ExtractBits(key, mask);
    BDCC_CHECK(g.shared_bits <= own_bits);
    gid = (gid << g.shared_bits) |
          static_cast<int64_t>(prefix >> (own_bits - g.shared_bits));
  }
  return gid;
}

int64_t BdccScan::GroupIdOf(uint64_t key) const {
  return GroupIdForKey(*table_, grouping_, key);
}

Result<Batch> BdccScan::Next(ExecContext* ctx) {
  if (main_done_) return NextDelta(ctx);
  const Table& data = table_->data();
  uint32_t zone_rows = data.HasZoneMaps() ? data.zone_rows() : 0;
  Batch out = filter_.TakeBatch(data, col_idx_, schema_, ctx->batch_size());
  SelBuilder selb;
  std::vector<uint32_t> rel_scratch;
  size_t appended = 0;
  int64_t batch_gid = -2;  // unset sentinel
  while (appended < ctx->batch_size()) {
    BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
    if (morsels_.valid()) {
      // Walk this clone's strided morsels of range indices.
      while (morsel_pos_ < morsels_.morsels->size()) {
        const Morsel& m = (*morsels_.morsels)[morsel_pos_];
        if (range_idx_ < m.begin) {
          range_idx_ = m.begin;
          cursor_ = 0;
        }
        if (range_idx_ < m.end) break;
        morsel_pos_ += morsels_.stride;
      }
      if (morsel_pos_ >= morsels_.morsels->size()) break;
    } else if (range_idx_ >= ranges_.size()) {
      break;
    }
    const GroupRange& range = ranges_[range_idx_];
    // A batch never mixes group ids (sandwich alignment contract); ranges
    // are id-sorted, so we only ever cut at id boundaries.
    int64_t gid = GroupIdOf(range.key);
    if (batch_gid != -2 && gid != batch_gid) break;
    if (cursor_ == 0) {
      cursor_ = range.row_begin;
      ctx->stats()->groups_read += 1;
    }
    if (cursor_ >= range.row_end) {
      ++range_idx_;
      cursor_ = 0;
      continue;
    }
    uint64_t end =
        std::min(range.row_end, cursor_ + (ctx->batch_size() - appended));
    bool zone_all_match = false;
    if (zone_rows != 0) {
      uint64_t zone = cursor_ / zone_rows;
      uint64_t zone_begin = zone * zone_rows;
      uint64_t zone_end = (zone + 1) * zone_rows;
      // Skip zones lying fully inside the range when MinMax excludes them.
      if (zone_begin >= range.row_begin && zone_end <= range.row_end &&
          !ZoneAllowed(zone)) {
        ctx->stats()->zones_skipped += 1;
        cursor_ = zone_end;
        continue;
      }
      end = std::min(end, zone_end);
      ctx->stats()->zones_read += 1;
      zone_all_match = ZoneAllMatch(zone);
    }
    bool filtering = row_filter_ && filter_.active();
    if (filtering && zone_all_match) ctx->stats()->decodes_skipped += 1;
    if (BDCC_UNLIKELY(fault::ShouldFail(fault::kScanDecode))) {
      ctx->stats()->faults_injected += 1;
      return Status::IOError("injected decode fault (BdccScan chunk)");
    }
    if (zero_copy_ && appended == 0 && end - cursor_ >= kMinViewRows &&
        (!filtering || zone_all_match)) {
      ChargeSpan(data, col_idx_, cursor_, end, ctx);
      MakeViews(data, col_idx_, cursor_, end, &out);
      ctx->stats()->chunks_zero_copy += 1;
      cursor_ = end;
      out.group_id = grouping_.empty() ? -1 : gid;
      return out;  // single-chunk borrowed batch
    }
    size_t added =
        EmitChunk(data, col_idx_, cursor_, end, filtering && !zone_all_match,
                  &filter_, ctx, &out, &selb, &rel_scratch);
    appended += added;
    // Only chunks that contributed rows pin the batch's group id; a fully
    // filtered group simply emits nothing (like a zone-skipped one).
    if (added > 0) batch_gid = gid;
    cursor_ = end;
  }
  selb.Finish(&out);
  out.group_id = batch_gid == -2 ? -1 : batch_gid;
  if (grouping_.empty()) out.group_id = -1;
  if (out.num_rows == 0 && !delta_chunks_.empty()) {
    // Clustered leg drained without producing a batch: hand off to the
    // delta-side leg (never mixing legs inside one batch).
    main_done_ = true;
    filter_.Recycle(std::move(out), schema_);
    return NextDelta(ctx);
  }
  return out;
}

Result<Batch> BdccScan::NextDelta(ExecContext* ctx) {
  std::vector<uint32_t> rel_scratch;
  while (delta_idx_ < delta_chunks_.size()) {
    const Table& chunk = *delta_chunks_[delta_idx_];
    uint64_t rows = chunk.num_rows();
    if (rows == 0) {
      ++delta_idx_;
      delta_cursor_ = 0;
      continue;
    }
    if (delta_bound_ != static_cast<int>(delta_idx_)) {
      // Entering this chunk: re-bind string verdict tables to its private
      // dictionaries (numeric bounds re-bind for free).
      if (row_filter_) BDCC_RETURN_NOT_OK(filter_.Bind(chunk, preds_));
      delta_bound_ = static_cast<int>(delta_idx_);
      ctx->stats()->delta_chunks += 1;
    }
    // TakeBatch wires output dictionaries from `chunk`, and the batch ends
    // at the chunk boundary — downstream never sees mixed dictionary
    // sources inside one batch.
    Batch out = filter_.TakeBatch(chunk, col_idx_, schema_, ctx->batch_size());
    SelBuilder selb;
    size_t appended = 0;
    uint32_t zone_rows = chunk.HasZoneMaps() ? chunk.zone_rows() : 0;
    while (appended < ctx->batch_size() && delta_cursor_ < rows) {
      BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
      uint64_t end =
          std::min(rows, delta_cursor_ + (ctx->batch_size() - appended));
      bool zone_all_match = false;
      if (zone_rows != 0) {
        uint64_t zone = delta_cursor_ / zone_rows;
        if (!ZoneAllowedIn(chunk, zone)) {
          ctx->stats()->zones_skipped += 1;
          delta_cursor_ = std::min<uint64_t>(rows, (zone + 1) * zone_rows);
          continue;
        }
        end = std::min<uint64_t>(end, (zone + 1) * zone_rows);
        ctx->stats()->zones_read += 1;
        zone_all_match = ZoneAllMatchIn(chunk, zone);
      }
      bool filtering = row_filter_ && filter_.active();
      if (filtering && zone_all_match) ctx->stats()->decodes_skipped += 1;
      if (BDCC_UNLIKELY(fault::ShouldFail(fault::kScanDecode))) {
        ctx->stats()->faults_injected += 1;
        return Status::IOError("injected decode fault (BdccScan delta chunk)");
      }
      ctx->stats()->delta_rows_scanned += end - delta_cursor_;
      appended += EmitChunk(chunk, col_idx_, delta_cursor_, end,
                            filtering && !zone_all_match, &filter_, ctx, &out,
                            &selb, &rel_scratch);
      delta_cursor_ = end;
    }
    if (delta_cursor_ >= rows) {
      ++delta_idx_;
      delta_cursor_ = 0;
    }
    if (selb.logical_rows() > 0 || appended > 0) {
      selb.Finish(&out);
      return out;
    }
    filter_.Recycle(std::move(out), schema_);  // fully filtered: next chunk
  }
  // End of stream: an empty batch typed per the schema (base dictionaries).
  return filter_.TakeBatch(table_->data(), col_idx_, schema_, 0);
}

}  // namespace exec
}  // namespace bdcc
