#include "exec/sandwich_agg.h"

namespace bdcc {
namespace exec {

SandwichAgg::SandwichAgg(OperatorPtr child, std::vector<std::string> group_cols,
                         std::vector<AggSpec> specs)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      spec_templates_(std::move(specs)) {}

Status SandwichAgg::Open(ExecContext* ctx) {
  if (group_cols_.empty()) {
    return Status::InvalidArgument("SandwichAgg requires group columns");
  }
  BDCC_RETURN_NOT_OK(child_->Open(ctx));
  const Schema& in = child_->schema();
  BDCC_RETURN_NOT_OK(core_.Bind(in, spec_templates_));
  BDCC_RETURN_NOT_OK(encoder_.Bind(in, group_cols_));

  std::vector<Field> fields;
  key_store_.clear();
  for (const std::string& g : group_cols_) {
    BDCC_ASSIGN_OR_RETURN(int idx, in.Require(g));
    fields.push_back(in.field(idx));
    key_store_.emplace_back(in.field(idx).type);
  }
  for (const Field& f : core_.output_fields()) fields.push_back(f);
  schema_ = Schema(std::move(fields));

  tracked_ = std::make_unique<TrackedMemory>(ctx->memory());
  key_map_.Clear();
  current_partition_ = -1;
  input_done_ = false;
  ready_.clear();
  return Status::OK();
}

Status SandwichAgg::Consume(const Batch& batch) {
  std::vector<uint32_t> group_of_row;
  const std::vector<int>& key_idx = encoder_.indices();
  EncodeAndAssignGroups(encoder_, &key_map_, batch, &group_of_row,
                        [&](size_t row) {
                          for (size_t k = 0; k < key_idx.size(); ++k) {
                            key_store_[k].AppendInterning(
                                batch.columns[key_idx[k]], batch.RowAt(row));
                          }
                        });
  core_.EnsureGroups(key_map_.size());
  return core_.Update(batch, group_of_row);
}

void SandwichAgg::FlushPartition(ExecContext* ctx) {
  size_t groups = key_map_.size();
  if (groups > 0) {
    Batch out;
    out.num_rows = groups;
    std::vector<uint32_t> all(groups);
    for (size_t g = 0; g < groups; ++g) all[g] = static_cast<uint32_t>(g);
    for (ColumnVector& ks : key_store_) {
      out.columns.push_back(ks.Gather(all));
    }
    core_.EmitRange(0, groups, &out.columns);
    ready_.push_back(std::move(out));
  }
  // Reset partition state.
  key_map_.Clear();
  for (ColumnVector& ks : key_store_) {
    ColumnVector fresh(ks.type);
    ks = std::move(fresh);
  }
  core_.Reset();
  ctx->stats()->sandwich_partitions += 1;
}

Result<Batch> SandwichAgg::Next(ExecContext* ctx) {
  while (ready_.empty() && !input_done_) {
    BDCC_ASSIGN_OR_RETURN(Batch b, child_->Next(ctx));
    if (b.empty()) {
      input_done_ = true;
      FlushPartition(ctx);
      break;
    }
    if (b.group_id < 0) {
      return Status::InvalidArgument(
          "sandwich aggregation input is not group-tagged");
    }
    if (current_partition_ >= 0 && b.group_id != current_partition_) {
      FlushPartition(ctx);
    }
    current_partition_ = b.group_id;
    BDCC_RETURN_NOT_OK(Consume(b));
    child_->Recycle(std::move(b));
    uint64_t store_bytes = 0;
    for (const ColumnVector& v : key_store_) {
      store_bytes += ColumnVectorBytes(v);
    }
    tracked_->Set(key_map_.MemoryBytes() + store_bytes + core_.MemoryBytes());
  }
  if (ready_.empty()) return Batch::Empty();
  Batch out = std::move(ready_.front());
  ready_.pop_front();
  return out;
}

void SandwichAgg::Close(ExecContext* ctx) {
  child_->Close(ctx);
  key_map_.Clear();
  core_.Reset();
  if (tracked_) tracked_->Clear();
}

}  // namespace exec
}  // namespace bdcc
