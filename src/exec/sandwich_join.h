// Sandwich hash join over pre-partitioned (co-clustered) inputs [3].
//
// Both children must emit batches tagged with ascending group ids — the
// aligned shared-dimension prefixes produced by BdccScan. Because the join
// key functionally determines the shared dimension bins, matches only occur
// within equal group ids, so the join builds one small per-group hash table
// at a time: the peak memory is the largest group's build side instead of
// the whole build input. This is the paper's central memory result (Fig. 3).
#ifndef BDCC_EXEC_SANDWICH_JOIN_H_
#define BDCC_EXEC_SANDWICH_JOIN_H_

#include <string>
#include <vector>

#include "exec/hash_join.h"
#include "exec/hash_table.h"
#include "exec/memory_tracker.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

/// \brief Partition-wise hash join (inner / left-outer / left-semi /
/// left-anti).
class SandwichHashJoin : public Operator {
 public:
  SandwichHashJoin(OperatorPtr left, OperatorPtr right,
                   std::vector<std::string> left_keys,
                   std::vector<std::string> right_keys, JoinType type);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

 private:
  Status PullRight(ExecContext* ctx);
  /// Build the first right group with id >= target (skipping earlier ones).
  Status LoadRightGroupUpTo(int64_t target, ExecContext* ctx);
  Result<Batch> ProbeBatch(const Batch& in);

  OperatorPtr left_, right_;
  std::vector<std::string> left_keys_, right_keys_;
  JoinType type_;
  Schema schema_;

  JoinHashTable table_;
  KeyEncoder probe_encoder_;
  std::unique_ptr<TrackedMemory> tracked_;

  Batch pending_right_;
  bool have_pending_right_ = false;
  bool right_done_ = false;
  int64_t current_group_ = -1;  // group currently in table_
  int64_t last_left_group_ = -1;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_SANDWICH_JOIN_H_
