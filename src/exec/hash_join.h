// Hash join (inner / left-outer / left-semi / left-anti).
//
// The right child is the build side and is fully materialized — exactly the
// memory behaviour the paper contrasts against sandwiched execution (e.g.
// Q13's full materialization of CUSTOMER columns under the PK scheme).
#ifndef BDCC_EXEC_HASH_JOIN_H_
#define BDCC_EXEC_HASH_JOIN_H_

#include <string>
#include <vector>

#include "exec/hash_table.h"
#include "exec/memory_tracker.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

enum class JoinType { kInner, kLeftOuter, kLeftSemi, kLeftAnti };

const char* JoinTypeName(JoinType t);

class HashJoin : public Operator {
 public:
  HashJoin(OperatorPtr left, OperatorPtr right,
           std::vector<std::string> left_keys,
           std::vector<std::string> right_keys, JoinType type);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

 private:
  Result<Batch> ProbeBatch(const Batch& in);

  OperatorPtr left_, right_;
  std::vector<std::string> left_keys_, right_keys_;
  JoinType type_;
  Schema schema_;
  JoinHashTable table_;
  KeyEncoder probe_encoder_;
  std::unique_ptr<TrackedMemory> tracked_;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_HASH_JOIN_H_
