// Hash join (inner / left-outer / left-semi / left-anti).
//
// The right child is the build side and is fully materialized — exactly the
// memory behaviour the paper contrasts against sandwiched execution (e.g.
// Q13's full materialization of CUSTOMER columns under the PK scheme).
#ifndef BDCC_EXEC_HASH_JOIN_H_
#define BDCC_EXEC_HASH_JOIN_H_

#include <string>
#include <vector>

#include "exec/hash_table.h"
#include "exec/memory_tracker.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

enum class JoinType { kInner, kLeftOuter, kLeftSemi, kLeftAnti };

const char* JoinTypeName(JoinType t);

/// \brief Probe-side logic of a hash join against a finished build table.
///
/// Thread-safety: ProbeBatch only reads the table, so any number of
/// HashJoinProber instances (one per worker, each with its own encoder) may
/// probe one shared JoinHashTable concurrently — the core of parallel probe
/// pipelines. The table must not be mutated while probers exist.
class HashJoinProber {
 public:
  Status Bind(const Schema& probe_schema,
              const std::vector<std::string>& probe_keys,
              const JoinHashTable* table, JoinType type);

  /// Join output schema (probe columns, then build columns for
  /// inner/left-outer).
  const Schema& schema() const { return schema_; }

  /// Probe one batch. `scratch` (optional) is a previously-emitted output
  /// batch whose lane allocations are reused for the new output
  /// (Operator::Recycle support); it must match this prober's schema.
  Result<Batch> ProbeBatch(const Batch& in, Batch scratch = Batch()) const;

 private:
  const JoinHashTable* table_ = nullptr;
  KeyEncoder encoder_;
  JoinType type_ = JoinType::kInner;
  Schema schema_;
};

class HashJoin : public Operator {
 public:
  HashJoin(OperatorPtr left, OperatorPtr right,
           std::vector<std::string> left_keys,
           std::vector<std::string> right_keys, JoinType type);

  const Schema& schema() const override { return prober_.schema(); }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;
  /// Consumers hand fully-consumed join outputs back; their lane
  /// allocations seed the next ProbeBatch's output.
  void Recycle(Batch&& batch) override;

 private:
  OperatorPtr left_, right_;
  std::vector<std::string> left_keys_, right_keys_;
  JoinType type_;
  JoinHashTable table_;
  HashJoinProber prober_;
  std::unique_ptr<TrackedMemory> tracked_;
  std::vector<Batch> recycled_;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_HASH_JOIN_H_
