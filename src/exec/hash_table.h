// Key encoding and chained hash tables shared by hash join and aggregation.
#ifndef BDCC_EXEC_HASH_TABLE_H_
#define BDCC_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "exec/batch.h"

namespace bdcc {
namespace common {
class TaskScheduler;
}  // namespace common
namespace exec {

class QueryControl;

/// \brief Normalizes one or more key columns per row into either an int64
/// (fast paths, see below) or a byte string. All encoders are sel-aware:
/// they produce one key per *logical* row of a batch.
///
/// int64 fast paths (int_path() == true):
///  - kInt:    single integer-backed key — the raw value (TPC-H FK joins).
///  - kCode:   single string key — the dictionary code, canonicalized
///             against the first dictionary seen (probe sides resolve
///             read-only against the build side's canonical space; absent
///             strings yield a never-matching key).
///  - kPacked: two fixed-width keys (i32-backed and/or string codes) packed
///             into one uint64 (e.g. Q1's (l_returnflag, l_linestatus)).
/// Everything else (kBytes) serializes per row with per-column null tags,
/// so composite keys containing NULLs group exactly.
///
/// NULL keys: `valid[i] = 0` flags rows whose key tuple contains a NULL.
/// Joins skip them (SQL: NULL never matches); aggregations group them
/// through EncodeAndAssignGroups (single keys -> DenseKeyMap::NullId,
/// NULL-bearing packed tuples -> exact tagged byte keys).
///
/// Thread-safety: a build/aggregate encoder mutates its canonical string
/// space while encoding and must stay single-threaded. A probe encoder
/// bound with BindProbe never mutates the build encoder's space — any
/// number of probe encoders (one per worker clone, each with private
/// translation caches) may encode concurrently once the build is done.
class KeyEncoder {
 public:
  Status Bind(const Schema& schema, const std::vector<std::string>& key_cols);
  /// Bind as the probe side of `build`: string keys resolve against the
  /// build encoder's canonical space (read-only; misses never match).
  /// `build` must outlive this encoder and be done encoding before probes
  /// start.
  Status BindProbe(const Schema& schema,
                   const std::vector<std::string>& key_cols,
                   const KeyEncoder* build);

  bool int_path() const { return mode_ != Mode::kBytes; }
  size_t num_keys() const { return indices_.size(); }
  const std::vector<int>& indices() const { return indices_; }

  /// True when the matching Encode* call is read-only and therefore safe to
  /// run concurrently from many threads on this *build* encoder: the int
  /// paths without string keys (raw values / packed i32) and the byte path
  /// (serializes values, never touches the canonical space). Single-string
  /// and packed-with-string encodes intern into the canonical space and
  /// must stay single-threaded. Probe encoders bound with BindProbe are
  /// always concurrent-safe per instance (see thread-safety note above).
  bool concurrent_encode_safe() const {
    if (mode_ == Mode::kBytes) return true;
    for (TypeId t : types_) {
      if (t == TypeId::kString) return false;
    }
    return true;
  }

  /// Fast path: per-logical-row int64 keys; `valid[i]`=0 marks NULL keys.
  void EncodeInts(const Batch& batch, std::vector<int64_t>* keys,
                  std::vector<uint8_t>* valid) const;
  /// Generic path: per-logical-row byte keys (complete even for NULL
  /// tuples); `valid[i]`=0 marks rows with a NULL key column.
  void EncodeBytes(const Batch& batch, std::vector<std::string>* keys,
                   std::vector<uint8_t>* valid) const;

  /// Encode from explicit key columns (key_cols[k] is key k, dense, no
  /// selection) — used when merging partial aggregates, so the partial's
  /// stored keys re-encode in *this* encoder's canonical space.
  void EncodeIntsCols(const std::vector<ColumnVector>& key_cols,
                      size_t num_rows, std::vector<int64_t>* keys,
                      std::vector<uint8_t>* valid) const;
  void EncodeBytesCols(const std::vector<ColumnVector>& key_cols,
                       size_t num_rows, std::vector<std::string>* keys,
                       std::vector<uint8_t>* valid) const;

  /// Byte-encode one logical row's key tuple (same tagged format as
  /// EncodeBytes). Used for NULL-bearing tuples on the packed int path,
  /// which need exact per-tuple grouping that 64 bits cannot express.
  std::string EncodeBytesRow(const Batch& batch, size_t logical_row) const;
  std::string EncodeBytesRowCols(const std::vector<ColumnVector>& key_cols,
                                 size_t row) const;

 private:
  enum class Mode { kInt, kCode, kPacked, kBytes };

  // Canonical space of one string key column: the first dictionary seen
  // (ownership shared so expression-generated dictionaries stay alive) plus
  // stable ids for strings outside it.
  struct StringSpace {
    std::shared_ptr<Dictionary> canon;
    std::unordered_map<std::string, uint32_t> side;
  };
  // Per-batch translation cache: source dictionary code -> slot. Holds a
  // shared_ptr so the cached dictionary cannot be freed and its heap
  // address reused by a different dictionary (which would validate the
  // stale cache and translate through the wrong mapping).
  struct TranslateCache {
    std::shared_ptr<Dictionary> src;
    size_t src_size = 0;
    size_t space_version = 0;
    std::vector<int64_t> slot;
  };

  static constexpr int64_t kUnresolved = -2;
  static constexpr uint32_t kSideBase = 1u << 31;
  static constexpr uint32_t kMissSlot = 0xFFFFFFFFu;
  /// Key-column pointer buffers live on the stack up to this arity.
  static constexpr size_t kInlineKeyCols = 8;

  const ColumnVector* const* GatherCols(
      const Batch& batch, const ColumnVector* inline_buf[kInlineKeyCols],
      std::vector<const ColumnVector*>* overflow) const;

  const StringSpace& TargetSpace(size_t k) const {
    return probe_of_ != nullptr ? probe_of_->spaces_[k] : spaces_[k];
  }
  size_t SpaceVersion(size_t k) const;
  /// Slot of string code `code` from dictionary `src` in key column `k`
  /// (canonical code, side id, or kMissSlot on a frozen probe).
  uint32_t StringSlot(size_t k, const std::shared_ptr<Dictionary>& src,
                      int32_t code) const;
  /// 32-bit slot of logical row value in key column `k` (raw bits for
  /// integer-backed, canonicalized code for strings).
  uint32_t SlotOf(size_t k, const ColumnVector& col, size_t row) const;

  void EncodeIntsImpl(const ColumnVector* const* cols, size_t num_rows,
                      const uint32_t* sel, std::vector<int64_t>* keys,
                      std::vector<uint8_t>* valid) const;
  void EncodeBytesImpl(const ColumnVector* const* cols, size_t num_rows,
                       const uint32_t* sel, std::vector<std::string>* keys,
                       std::vector<uint8_t>* valid) const;
  /// Append one row's tagged key bytes to `key`; returns false when a key
  /// column was NULL.
  bool AppendBytesRow(const ColumnVector* const* cols, size_t row,
                      std::string* key) const;

  std::vector<int> indices_;
  std::vector<TypeId> types_;
  Mode mode_ = Mode::kInt;
  const KeyEncoder* probe_of_ = nullptr;
  // Mutated lazily while encoding (canonical adoption / side interning /
  // translation caches); see thread-safety note above.
  mutable std::vector<StringSpace> spaces_;
  mutable std::vector<TranslateCache> caches_;
};

/// \brief Chained hash table mapping keys to dense ids 0..n-1 (insertion
/// order). Ids index the caller's payload arrays. An optional dedicated
/// null-key id (NullId) shares the dense id space, so aggregations can
/// keep SQL's "NULLs group together" semantics on the int fast paths; in
/// int mode the byte-keyed overloads remain usable as an exact side
/// channel for NULL-bearing composite tuples (both key spaces share the
/// dense id sequence).
class DenseKeyMap {
 public:
  /// Existing id or -1.
  int64_t Find(int64_t key) const;
  int64_t Find(const std::string& key) const;
  /// Existing id, or insert and return the fresh one (out_inserted flags it).
  int64_t FindOrInsert(int64_t key, bool* out_inserted);
  int64_t FindOrInsert(const std::string& key, bool* out_inserted);
  /// Pre-size for ~n keys (partitioned builds know their row counts up
  /// front; skips the incremental rehash storms a serial build pays).
  void Reserve(size_t n);
  /// Dense id reserved for NULL keys (allocated on first use).
  int64_t NullId(bool* out_inserted);

  size_t size() const {
    return int_map_.size() + bytes_map_.size() + (null_id_ >= 0 ? 1 : 0);
  }
  /// Rough heap footprint for memory accounting.
  uint64_t MemoryBytes() const;
  void Clear();

 private:
  int64_t NextId() const { return static_cast<int64_t>(size()); }

  std::unordered_map<int64_t, int64_t> int_map_;
  std::unordered_map<std::string, int64_t> bytes_map_;
  int64_t null_id_ = -1;
  uint64_t bytes_key_payload_ = 0;
};

/// Encode `batch`'s key tuple per logical row through `encoder` and assign
/// dense group ids from `key_map`, calling `on_new_group(logical_row)` for
/// each freshly inserted group (append the row's key values there). NULL
/// keys follow SQL GROUP BY semantics: single-key int paths use the
/// dedicated null group; NULL-bearing packed tuples fall back to exact
/// tagged byte keys so (1, NULL) and (2, NULL) stay distinct; byte keys
/// are exact by construction. Shared by hash and sandwich aggregation.
void EncodeAndAssignGroups(const KeyEncoder& encoder, DenseKeyMap* key_map,
                           const Batch& batch,
                           std::vector<uint32_t>* group_of_row,
                           const std::function<void(size_t)>& on_new_group);
/// Same, over explicit dense key columns (partial-aggregate merge).
void EncodeAndAssignGroupsCols(const KeyEncoder& encoder,
                               DenseKeyMap* key_map,
                               const std::vector<ColumnVector>& key_cols,
                               size_t num_rows,
                               std::vector<uint32_t>* group_of_row,
                               const std::function<void(size_t)>& on_new_group);

/// Stable 64-bit mixers used to route keys to radix partitions. Build and
/// probe must agree bit-for-bit, so these are fixed functions, not
/// std::hash.
uint64_t HashKey64(uint64_t x);
uint64_t HashKeyBytes(std::string_view s);

/// \brief One build row handed to ForEachMatch callbacks: the partition's
/// materialized columns plus the row index within them. In serial
/// (single-partition) mode `columns` is simply the whole build side.
struct BuildRowRef {
  const std::vector<ColumnVector>* columns;
  uint32_t row;
};

/// \brief Materialized build side of a hash join: all build columns plus a
/// key -> row-chain index.
///
/// Two build modes share the probe interface:
///  - serial (Init + AddBatch): one partition, no routing on probe.
///  - partitioned parallel (Init + BeginPartitionedBuild + per-producer
///    ScatterBatch + FinishPartitionedBuild): rows are radix-partitioned by
///    a stable hash of the *encoded* key into 2^bits partitions, each an
///    unshared sub-table (own DenseKeyMap, chains, and columns) built by an
///    independent task with no atomics on the insert path. Probe lookups
///    route by the same radix bits inside ForEachMatch/HasMatch.
///
/// Thread-safety (partitioned build): ScatterBatch(producer, ...) may run
/// concurrently across distinct producer slots iff
/// encoder().concurrent_encode_safe() — otherwise encoding mutates the
/// encoder's canonical string space and producers must scatter serially.
/// FinishPartitionedBuild runs one task per partition on the scheduler
/// (falling back to a serial merge when producers saw heterogeneous
/// dictionaries, which would otherwise force cross-thread interning).
class JoinHashTable {
 public:
  Status Init(const Schema& build_schema,
              const std::vector<std::string>& key_cols);

  Status AddBatch(const Batch& batch);

  /// Switch to partitioned-build mode: 2^partition_bits partitions
  /// (1 <= bits <= kMaxPartitionBits), `num_producers` scatter slots.
  void BeginPartitionedBuild(int partition_bits, size_t num_producers);
  /// Route `batch`'s rows into producer-local partition buffers: the batch
  /// is pinned (moved in) and only (batch, row) refs plus encoded keys are
  /// recorded per partition — materialization happens once, inside the
  /// parallel per-partition insert of FinishPartitionedBuild. Sel-aware.
  /// See class comment for when distinct producers may call this
  /// concurrently.
  Status ScatterBatch(size_t producer, Batch batch);
  /// Build every partition's sub-table from the scattered buffers: one
  /// task per partition when `scheduler` is non-null and dictionaries were
  /// homogeneous, serial otherwise. A non-null `control` is polled between
  /// partitions so a cancelled query stops building (on error the table is
  /// left partially built — callers must Clear()).
  Status FinishPartitionedBuild(common::TaskScheduler* scheduler,
                                QueryControl* control = nullptr);

  size_t num_rows() const { return num_rows_; }
  size_t num_partitions() const { return parts_.size(); }
  const Schema& schema() const { return schema_; }
  /// Partition 0's columns. After a finished build every partition shares
  /// the same dictionary per string column, so this is the correct source
  /// for pre-wiring output dictionaries; row data of other partitions must
  /// go through ForEachMatch's BuildRowRef.
  const std::vector<ColumnVector>& columns() const {
    return parts_.empty() ? empty_columns_ : parts_[0].columns;
  }
  const KeyEncoder& encoder() const { return encoder_; }

  /// Iterate build rows matching an int64 key (newest insertion first).
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn fn) const {
    const Partition& p = PartitionFor(key);
    int64_t id = p.key_ids.Find(key);
    if (id < 0) return;
    for (uint32_t row = p.heads[id]; row != kEnd; row = p.next[row]) {
      fn(BuildRowRef{&p.columns, row});
    }
  }
  template <typename Fn>
  void ForEachMatch(const std::string& key, Fn fn) const {
    const Partition& p = PartitionFor(key);
    int64_t id = p.key_ids.Find(key);
    if (id < 0) return;
    for (uint32_t row = p.heads[id]; row != kEnd; row = p.next[row]) {
      fn(BuildRowRef{&p.columns, row});
    }
  }
  bool HasMatch(int64_t key) const {
    return PartitionFor(key).key_ids.Find(key) >= 0;
  }
  bool HasMatch(const std::string& key) const {
    return PartitionFor(key).key_ids.Find(key) >= 0;
  }

  /// Heap bytes held (columns + chains + key maps) for memory accounting;
  /// includes scatter buffers while a partitioned build is in flight.
  uint64_t MemoryBytes() const;
  void Clear();

  static constexpr int kMaxPartitionBits = 6;  // <= 64 partitions

 private:
  static constexpr uint32_t kEnd = 0xFFFFFFFFu;

  /// One unshared sub-table; in serial mode there is exactly one.
  struct Partition {
    DenseKeyMap key_ids;
    std::vector<uint32_t> heads;  // per key id: first row in chain
    std::vector<uint32_t> next;   // per row: next row with same key
    std::vector<ColumnVector> columns;
    size_t num_rows = 0;
  };

  /// One producer's pending row refs for one partition (scatter phase).
  struct RowBuffer {
    // Pinned-batch refs, batch_index << 32 | physical_row, in arrival
    // order (so refs of one batch form a contiguous ascending-batch run —
    // BuildPartition bulk-gathers per run).
    std::vector<uint64_t> refs;
    std::vector<int64_t> int_keys;
    std::vector<std::string> byte_keys;
    std::vector<uint8_t> valid;
  };
  /// Everything one producer scattered: its pinned input batches plus one
  /// RowBuffer per partition. Touched only by that producer until
  /// FinishPartitionedBuild, then read-only.
  struct ProducerState {
    std::vector<Batch> pinned;
    std::vector<RowBuffer> parts;
  };

  size_t PartOf(int64_t key) const {
    return HashKey64(static_cast<uint64_t>(key)) >> (64 - part_bits_);
  }
  size_t PartOf(const std::string& key) const {
    return HashKeyBytes(key) >> (64 - part_bits_);
  }
  const Partition& PartitionFor(int64_t key) const {
    return part_bits_ == 0 ? parts_[0] : parts_[PartOf(key)];
  }
  const Partition& PartitionFor(const std::string& key) const {
    return part_bits_ == 0 ? parts_[0] : parts_[PartOf(key)];
  }

  void BuildPartition(size_t p);
  uint64_t PartitionBytes(const Partition& p) const;

  Schema schema_;
  KeyEncoder encoder_;
  std::vector<Partition> parts_;
  size_t num_rows_ = 0;
  int part_bits_ = 0;  // 0 = serial single-partition mode
  // Per-producer scatter state; cleared by FinishPartitionedBuild.
  std::vector<ProducerState> producers_;
  uint64_t column_bytes_ = 0;
  std::vector<ColumnVector> empty_columns_;
};

/// Heap bytes of one ColumnVector (accounting helper).
uint64_t ColumnVectorBytes(const ColumnVector& v);

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_HASH_TABLE_H_
