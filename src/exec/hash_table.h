// Key encoding and chained hash tables shared by hash join and aggregation.
#ifndef BDCC_EXEC_HASH_TABLE_H_
#define BDCC_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "exec/batch.h"

namespace bdcc {
namespace exec {

/// \brief Normalizes one or more key columns per row into either an int64
/// (single integer-backed key: the TPC-H join fast path) or a byte string
/// (composite / string / float keys). NULL keys encode distinctly and never
/// match a non-null key.
class KeyEncoder {
 public:
  Status Bind(const Schema& schema, const std::vector<std::string>& key_cols);

  bool int_path() const { return int_path_; }
  size_t num_keys() const { return indices_.size(); }
  const std::vector<int>& indices() const { return indices_; }

  /// Fast path: per-row int64 keys; `valid[i]`=0 marks NULL keys.
  void EncodeInts(const Batch& batch, std::vector<int64_t>* keys,
                  std::vector<uint8_t>* valid) const;
  /// Generic path: per-row byte keys ("" never produced); NULL keys yield
  /// valid[i]=0.
  void EncodeBytes(const Batch& batch, std::vector<std::string>* keys,
                   std::vector<uint8_t>* valid) const;

 private:
  std::vector<int> indices_;
  std::vector<TypeId> types_;
  bool int_path_ = false;
};

/// \brief Chained hash table mapping keys to dense ids 0..n-1 (insertion
/// order). Ids index the caller's payload arrays.
class DenseKeyMap {
 public:
  void SetIntMode(bool int_mode) { int_mode_ = int_mode; }

  /// Existing id or -1.
  int64_t Find(int64_t key) const;
  int64_t Find(const std::string& key) const;
  /// Existing id, or insert and return the fresh one (out_inserted flags it).
  int64_t FindOrInsert(int64_t key, bool* out_inserted);
  int64_t FindOrInsert(const std::string& key, bool* out_inserted);

  size_t size() const {
    return int_mode_ ? int_map_.size() : bytes_map_.size();
  }
  /// Rough heap footprint for memory accounting.
  uint64_t MemoryBytes() const;
  void Clear();

 private:
  bool int_mode_ = true;
  std::unordered_map<int64_t, int64_t> int_map_;
  std::unordered_map<std::string, int64_t> bytes_map_;
  uint64_t bytes_key_payload_ = 0;
};

/// \brief Materialized build side of a hash join: all build columns plus a
/// key -> row-chain index.
class JoinHashTable {
 public:
  Status Init(const Schema& build_schema,
              const std::vector<std::string>& key_cols);

  Status AddBatch(const Batch& batch);

  size_t num_rows() const { return num_rows_; }
  const Schema& schema() const { return schema_; }
  const std::vector<ColumnVector>& columns() const { return columns_; }
  const KeyEncoder& encoder() const { return encoder_; }

  /// Iterate build-row indices matching an int64 key.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn fn) const {
    int64_t id = key_ids_.Find(key);
    if (id < 0) return;
    for (uint32_t row = heads_[id]; row != kEnd; row = next_[row]) fn(row);
  }
  template <typename Fn>
  void ForEachMatch(const std::string& key, Fn fn) const {
    int64_t id = key_ids_.Find(key);
    if (id < 0) return;
    for (uint32_t row = heads_[id]; row != kEnd; row = next_[row]) fn(row);
  }
  bool HasMatch(int64_t key) const { return key_ids_.Find(key) >= 0; }
  bool HasMatch(const std::string& key) const { return key_ids_.Find(key) >= 0; }

  /// Heap bytes held (columns + chains + key map) for memory accounting.
  uint64_t MemoryBytes() const;
  void Clear();

 private:
  static constexpr uint32_t kEnd = 0xFFFFFFFFu;

  Schema schema_;
  KeyEncoder encoder_;
  std::vector<ColumnVector> columns_;
  size_t num_rows_ = 0;
  DenseKeyMap key_ids_;
  std::vector<uint32_t> heads_;  // per key id: first row in chain
  std::vector<uint32_t> next_;   // per row: next row with same key
  uint64_t column_bytes_ = 0;
};

/// Heap bytes of one ColumnVector (accounting helper).
uint64_t ColumnVectorBytes(const ColumnVector& v);

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_HASH_TABLE_H_
