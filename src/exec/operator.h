// Pull-based (Volcano-style) operator interface exchanging batches.
#ifndef BDCC_EXEC_OPERATOR_H_
#define BDCC_EXEC_OPERATOR_H_

#include <memory>

#include "common/result.h"
#include "exec/batch.h"
#include "exec/exec_context.h"

namespace bdcc {
namespace exec {

/// \brief Base class for physical operators.
///
/// Protocol: Open() once, then Next() until it returns an empty batch
/// (num_rows == 0), which signals end-of-stream. Operators never emit empty
/// non-terminal batches.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const Schema& schema() const = 0;
  virtual Status Open(ExecContext* ctx) = 0;
  virtual Result<Batch> Next(ExecContext* ctx) = 0;
  virtual void Close(ExecContext* ctx) {}
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drain `op` fully, concatenating all batches into one (test/driver
/// convenience; also runs Open/Close).
Result<Batch> CollectAll(Operator* op, ExecContext* ctx);

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_OPERATOR_H_
