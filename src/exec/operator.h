// Pull-based (Volcano-style) operator interface exchanging batches.
#ifndef BDCC_EXEC_OPERATOR_H_
#define BDCC_EXEC_OPERATOR_H_

#include <memory>

#include "common/result.h"
#include "exec/batch.h"
#include "exec/exec_context.h"

namespace bdcc {
namespace exec {

/// \brief Base class for physical operators.
///
/// Protocol: Open() once, then Next() until it returns an empty batch
/// (num_rows == 0), which signals end-of-stream. Operators never emit empty
/// non-terminal batches.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const Schema& schema() const = 0;
  virtual Status Open(ExecContext* ctx) = 0;
  virtual Result<Batch> Next(ExecContext* ctx) = 0;
  virtual void Close(ExecContext* ctx) {}

  /// Best-effort buffer return: a consumer that has fully materialized (or
  /// discarded) a batch obtained from this operator's Next may hand it back
  /// so the producer reuses the lane allocations for future batches. The
  /// batch must no longer be referenced by the caller. Default: drop.
  /// Filter forwards to its child (its output may share the child's
  /// buffers); Project recycles its input itself and drops returns (its
  /// output schema differs from the child's).
  virtual void Recycle(Batch&& batch) {}
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drain `op` fully, concatenating all batches into one (test/driver
/// convenience; also runs Open/Close).
Result<Batch> CollectAll(Operator* op, ExecContext* ctx);

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_OPERATOR_H_
