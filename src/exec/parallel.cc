#include "exec/parallel.h"

#include <utility>

namespace bdcc {
namespace exec {

namespace {

common::TaskScheduler* SchedulerOrShared(common::TaskScheduler* scheduler) {
  return scheduler != nullptr ? scheduler : common::TaskScheduler::Shared();
}

uint64_t BatchBytes(const Batch& b) {
  uint64_t total = 0;
  for (const ColumnVector& c : b.columns) total += ColumnVectorBytes(c);
  return total;
}

// Drain `op` on a worker, collecting every non-empty batch; the growing
// buffer is charged to `mem` (one TrackedMemory per clone, single-owner).
// The buffer is a materializing boundary: sparse selections are compacted
// so the barrier does not hold unselected rows in memory.
Status DrainChain(Operator* op, ExecContext* ctx, std::vector<Batch>* out,
                  TrackedMemory* mem) {
  uint64_t bytes = 0;
  while (true) {
    BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
    BDCC_ASSIGN_OR_RETURN(Batch b, op->Next(ctx));
    if (b.empty()) return Status::OK();
    b.CompactIfSparse(ExecContext::kCompactDensity);
    bytes += BatchBytes(b);
    BDCC_RETURN_NOT_OK(ctx->ChargeMemory(mem, bytes));
    out->push_back(std::move(b));
  }
}

}  // namespace

// ---------------- ParallelUnion ----------------

ParallelUnion::ParallelUnion(ChainFactory factory, size_t num_chains,
                             common::TaskScheduler* scheduler)
    : factory_(std::move(factory)),
      num_chains_(num_chains),
      scheduler_(SchedulerOrShared(scheduler)) {
  BDCC_CHECK(num_chains_ > 0);
}

Status ParallelUnion::Open(ExecContext* ctx) {
  chains_.clear();
  child_ctxs_.clear();
  ran_ = false;
  ready_.clear();
  for (size_t i = 0; i < num_chains_; ++i) {
    BDCC_ASSIGN_OR_RETURN(OperatorPtr chain, factory_(i, num_chains_));
    child_ctxs_.push_back(std::make_unique<ExecContext>(*ctx));
    BDCC_RETURN_NOT_OK(chain->Open(child_ctxs_.back().get()));
    chains_.push_back(std::move(chain));
  }
  schema_ = chains_[0]->schema();
  return Status::OK();
}

Status ParallelUnion::RunAll(ExecContext* ctx) {
  std::vector<std::vector<Batch>> outputs(chains_.size());
  std::vector<std::unique_ptr<TrackedMemory>> clone_mem;
  for (size_t i = 0; i < chains_.size(); ++i) {
    clone_mem.push_back(std::make_unique<TrackedMemory>(
        ctx->memory(), "parallel-union buffer"));
  }
  QueryControl* control = ctx->control();
  Status run_status = scheduler_->ParallelForStatus(
      chains_.size(), [&](size_t i) {
        Status s = DrainChain(chains_[i].get(), child_ctxs_[i].get(),
                              &outputs[i], clone_mem[i].get());
        // Publish real failures so sibling clones stop at their next
        // lifecycle check; cancel/deadline are already globally visible.
        if (BDCC_UNLIKELY(!s.ok())) control->ReportError(s);
        return s;
      });
  // Fold every clone's stats in (even on failure: partial scan counters are
  // still real work done) before surfacing the first error.
  for (size_t i = 0; i < chains_.size(); ++i) ctx->MergeStats(*child_ctxs_[i]);
  BDCC_RETURN_NOT_OK(run_status);
  ready_bytes_ = 0;
  for (size_t i = 0; i < chains_.size(); ++i) {
    clone_mem[i]->Clear();
    for (Batch& b : outputs[i]) {
      ready_bytes_ += BatchBytes(b);
      ready_.push_back(std::move(b));
    }
  }
  tracked_ready_ = std::make_unique<TrackedMemory>(ctx->memory(),
                                                   "parallel-union output");
  BDCC_RETURN_NOT_OK(ctx->ChargeMemory(tracked_ready_.get(), ready_bytes_));
  ran_ = true;
  return Status::OK();
}

Result<Batch> ParallelUnion::Next(ExecContext* ctx) {
  if (!ran_) BDCC_RETURN_NOT_OK(RunAll(ctx));
  if (ready_.empty()) return Batch::Empty();
  Batch out = std::move(ready_.front());
  ready_.pop_front();
  ready_bytes_ -= BatchBytes(out);
  tracked_ready_->Set(ready_bytes_);
  return out;
}

void ParallelUnion::Close(ExecContext* ctx) {
  for (size_t i = 0; i < chains_.size(); ++i) {
    chains_[i]->Close(child_ctxs_[i].get());
  }
  chains_.clear();
  child_ctxs_.clear();
  ready_.clear();
  if (tracked_ready_) tracked_ready_->Clear();
}

// ---------------- ParallelHashAgg ----------------

ParallelHashAgg::ParallelHashAgg(ChainFactory child_factory, size_t num_clones,
                                 std::vector<std::string> group_cols,
                                 std::vector<AggSpec> specs,
                                 common::TaskScheduler* scheduler)
    : child_factory_(std::move(child_factory)),
      num_clones_(num_clones),
      group_cols_(std::move(group_cols)),
      spec_templates_(std::move(specs)),
      scheduler_(SchedulerOrShared(scheduler)) {
  BDCC_CHECK(num_clones_ > 0);
}

const Schema& ParallelHashAgg::schema() const { return schema_; }

Status ParallelHashAgg::Open(ExecContext* ctx) {
  partials_.clear();
  mergers_.clear();
  emit_merger_ = 0;
  child_ctxs_.clear();
  merged_ = false;
  for (size_t i = 0; i < num_clones_; ++i) {
    BDCC_ASSIGN_OR_RETURN(OperatorPtr child, child_factory_(i, num_clones_));
    auto agg = std::make_unique<HashAgg>(std::move(child), group_cols_,
                                         spec_templates_);
    child_ctxs_.push_back(std::make_unique<ExecContext>(*ctx));
    BDCC_RETURN_NOT_OK(agg->Open(child_ctxs_.back().get()));
    partials_.push_back(std::move(agg));
  }
  schema_ = partials_[0]->schema();
  return Status::OK();
}

Status ParallelHashAgg::MergeAll(ExecContext* ctx) {
  QueryControl* control = ctx->control();
  Status run_status = scheduler_->ParallelForStatus(
      partials_.size(), [&](size_t i) {
        Status s = partials_[i]->ConsumeAll(child_ctxs_[i].get());
        if (BDCC_UNLIKELY(!s.ok())) control->ReportError(s);
        return s;
      });
  for (size_t i = 0; i < partials_.size(); ++i) {
    ctx->MergeStats(*child_ctxs_[i]);
  }
  BDCC_RETURN_NOT_OK(run_status);
  size_t total_groups = 0;
  for (size_t i = 0; i < partials_.size(); ++i) {
    total_groups += partials_[i]->num_groups();
  }

  if (group_cols_.empty() || total_groups < kMinPartitionedMergeGroups) {
    // Scalar aggregates and small group sets: the pairwise chain is cheap.
    // Merge in clone order: deterministic for a fixed clone count because
    // each clone's morsel subset is a deterministic stride.
    for (size_t i = 1; i < partials_.size(); ++i) {
      BDCC_RETURN_NOT_OK(partials_[0]->MergePartial(partials_[i].get()));
    }
    merged_ = true;
    return Status::OK();
  }

  // Radix-partitioned merge: hash-partition every partial's groups by key
  // value, then fold each partition with an independent task into its own
  // merge-only aggregate. Each task reads the (now immutable) partials and
  // writes only its own merger — no shared mutable state, no atomics.
  int bits = 1;
  while ((size_t{1} << bits) < partials_.size() * 4 &&
         bits < JoinHashTable::kMaxPartitionBits) {
    ++bits;
  }
  size_t num_partitions = size_t{1} << bits;
  std::vector<std::vector<uint32_t>> part_of(partials_.size());
  scheduler_->ParallelFor(partials_.size(), [&](size_t i) {
    part_of[i] = partials_[i]->PartitionGroups(bits);
  });

  mergers_.clear();
  mergers_.reserve(num_partitions);
  merger_mem_.clear();
  merger_mem_.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    auto merger =
        std::make_unique<HashAgg>(nullptr, group_cols_, spec_templates_);
    BDCC_RETURN_NOT_OK(merger->BindMergeOnly(partials_[0]->input_schema()));
    mergers_.push_back(std::move(merger));
    merger_mem_.push_back(
        std::make_unique<TrackedMemory>(ctx->memory(), "hash-agg merge"));
  }
  // Strided over num_clones workers so merge concurrency stays bounded by
  // the requested parallelism, not the shared pool's width. Each partition
  // (and its TrackedMemory) is owned by exactly one worker; the control is
  // polled between partitions and denials go straight to the tracker (the
  // per-context stats are not shared with workers).
  size_t workers = std::min(num_partitions, partials_.size());
  Status merge_status = scheduler_->ParallelForStatus(
      workers, [&](size_t w) -> Status {
        for (size_t p = w; p < num_partitions; p += workers) {
          BDCC_RETURN_NOT_OK(control->Check());
          if (BDCC_UNLIKELY(fault::ShouldFail(fault::kAggMerge))) {
            return Status::Internal("injected aggregation-merge fault");
          }
          // Clone order within the partition keeps float accumulation
          // order — and therefore bitwise results — deterministic for a
          // fixed clone count.
          for (size_t i = 0; i < partials_.size(); ++i) {
            Status s = mergers_[p]->MergePartialPartition(
                *partials_[i], part_of[i], static_cast<uint32_t>(p));
            if (BDCC_UNLIKELY(!s.ok())) {
              control->ReportError(s);
              return s;
            }
          }
          Status charge = merger_mem_[p]->TrySet(mergers_[p]->MemoryBytes());
          if (BDCC_UNLIKELY(!charge.ok())) {
            control->ReportError(charge);
            return charge;
          }
        }
        return Status::OK();
      });
  BDCC_RETURN_NOT_OK(merge_status);
  merged_ = true;
  return Status::OK();
}

Result<Batch> ParallelHashAgg::Next(ExecContext* ctx) {
  if (!merged_) BDCC_RETURN_NOT_OK(MergeAll(ctx));
  if (mergers_.empty()) return partials_[0]->Next(child_ctxs_[0].get());
  // Partitioned merge ran: emit partitions in order.
  while (emit_merger_ < mergers_.size()) {
    BDCC_ASSIGN_OR_RETURN(Batch b,
                          mergers_[emit_merger_]->Next(child_ctxs_[0].get()));
    if (!b.empty()) return b;
    ++emit_merger_;
  }
  return Batch::Empty();
}

void ParallelHashAgg::Close(ExecContext* ctx) {
  for (size_t i = 0; i < partials_.size(); ++i) {
    partials_[i]->Close(child_ctxs_[i].get());
  }
  for (std::unique_ptr<HashAgg>& m : mergers_) m->Close(ctx);
  partials_.clear();
  mergers_.clear();
  merger_mem_.clear();
  emit_merger_ = 0;
  child_ctxs_.clear();
}

// ---------------- ParallelHashJoin ----------------

ParallelHashJoin::ParallelHashJoin(ChainFactory probe_factory,
                                   size_t num_clones, OperatorPtr build,
                                   std::vector<std::string> probe_keys,
                                   std::vector<std::string> build_keys,
                                   JoinType type,
                                   common::TaskScheduler* scheduler)
    : probe_factory_(std::move(probe_factory)),
      num_clones_(num_clones),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)),
      type_(type),
      scheduler_(SchedulerOrShared(scheduler)) {
  BDCC_CHECK(num_clones_ > 0);
}

void ParallelHashJoin::EnableParallelBuild(ChainFactory build_factory,
                                           int partition_bits) {
  BDCC_CHECK(partition_bits >= 1 &&
             partition_bits <= JoinHashTable::kMaxPartitionBits);
  build_factory_ = std::move(build_factory);
  partition_bits_ = partition_bits;
}

int ChoosePartitionBits(uint64_t estimated_rows, size_t threads) {
  // At least one partition per insert task; beyond that, aim for
  // sub-tables of ~64K rows so per-partition key maps stay cache-friendly.
  int bits = 1;
  while ((size_t{1} << bits) < threads &&
         bits < JoinHashTable::kMaxPartitionBits) {
    ++bits;
  }
  while ((estimated_rows >> bits) > 65536 &&
         bits < JoinHashTable::kMaxPartitionBits) {
    ++bits;
  }
  return bits;
}

// Serial build: one operator drained on the coordinating thread.
Status ParallelHashJoin::OpenBuildSerial(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(build_->Open(ctx));
  BDCC_RETURN_NOT_OK(table_.Init(build_->schema(), build_keys_));
  while (true) {
    BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
    BDCC_ASSIGN_OR_RETURN(Batch b, build_->Next(ctx));
    if (b.empty()) break;
    BDCC_RETURN_NOT_OK(table_.AddBatch(b));
    build_->Recycle(std::move(b));
    BDCC_RETURN_NOT_OK(ctx->ChargeMemory(tracked_.get(), table_.MemoryBytes()));
  }
  return Status::OK();
}

// Partitioned parallel build: N build chains scatter into radix partitions,
// then one insert task per partition (see JoinHashTable).
Status ParallelHashJoin::OpenBuildPartitioned(ExecContext* ctx) {
  builds_.clear();
  build_ctxs_.clear();
  for (size_t i = 0; i < num_clones_; ++i) {
    BDCC_ASSIGN_OR_RETURN(OperatorPtr chain, build_factory_(i, num_clones_));
    build_ctxs_.push_back(std::make_unique<ExecContext>(*ctx));
    BDCC_RETURN_NOT_OK(chain->Open(build_ctxs_.back().get()));
    builds_.push_back(std::move(chain));
  }
  BDCC_RETURN_NOT_OK(table_.Init(builds_[0]->schema(), build_keys_));
  table_.BeginPartitionedBuild(partition_bits_, num_clones_);

  QueryControl* control = ctx->control();
  // Per-clone budget charge for the batches each clone pins/drains: the
  // table's own MemoryBytes cannot be read while producers scatter, so the
  // clones charge what they have seen and the pinned total is re-accounted
  // on tracked_ once the parallel phase quiesces.
  std::vector<std::unique_ptr<TrackedMemory>> clone_mem;
  for (size_t i = 0; i < builds_.size(); ++i) {
    clone_mem.push_back(
        std::make_unique<TrackedMemory>(ctx->memory(), "hash-join build"));
  }
  Status run_status;
  std::vector<std::vector<Batch>> drained(builds_.size());
  if (table_.encoder().concurrent_encode_safe()) {
    // Fused drain + scatter: each clone encodes and routes its own batches.
    // Batches are pinned inside the table until FinishPartitionedBuild
    // materializes them, so they cannot be recycled to the scans.
    run_status = scheduler_->ParallelForStatus(
        builds_.size(), [&](size_t i) {
          ExecContext* cctx = build_ctxs_[i].get();
          Status s = [&]() -> Status {
            uint64_t bytes = 0;
            while (true) {
              BDCC_RETURN_NOT_OK(cctx->CheckLifecycle());
              BDCC_ASSIGN_OR_RETURN(Batch b, builds_[i]->Next(cctx));
              if (b.empty()) return Status::OK();
              bytes += BatchBytes(b);
              BDCC_RETURN_NOT_OK(cctx->ChargeMemory(clone_mem[i].get(), bytes));
              BDCC_RETURN_NOT_OK(table_.ScatterBatch(i, std::move(b)));
            }
          }();
          if (BDCC_UNLIKELY(!s.ok())) control->ReportError(s);
          return s;
        });
  } else {
    // String-keyed encoders intern into a shared canonical space: drain the
    // chains in parallel (scan work still scales), scatter serially.
    run_status = scheduler_->ParallelForStatus(
        builds_.size(), [&](size_t i) {
          Status s = DrainChain(builds_[i].get(), build_ctxs_[i].get(),
                                &drained[i], clone_mem[i].get());
          if (BDCC_UNLIKELY(!s.ok())) control->ReportError(s);
          return s;
        });
  }
  for (size_t i = 0; i < builds_.size(); ++i) {
    ctx->MergeStats(*build_ctxs_[i]);
  }
  BDCC_RETURN_NOT_OK(run_status);
  for (size_t i = 0; i < builds_.size(); ++i) {
    for (Batch& b : drained[i]) {
      BDCC_RETURN_NOT_OK(table_.ScatterBatch(i, std::move(b)));
    }
    drained[i].clear();
  }
  // Peak of the build: pinned batches + refs/keys, still held while the
  // partition tables materialize. Re-account on tracked_ (dropping the
  // per-clone charges first so the budget is not billed twice).
  for (size_t i = 0; i < builds_.size(); ++i) clone_mem[i]->Clear();
  BDCC_RETURN_NOT_OK(ctx->ChargeMemory(tracked_.get(), table_.MemoryBytes()));
  BDCC_RETURN_NOT_OK(table_.FinishPartitionedBuild(scheduler_, control));
  BDCC_RETURN_NOT_OK(ctx->ChargeMemory(tracked_.get(), table_.MemoryBytes()));
  return Status::OK();
}

Status ParallelHashJoin::Open(ExecContext* ctx) {
  probes_.clear();
  probers_.clear();
  child_ctxs_.clear();
  ran_ = false;
  ready_.clear();
  if (probe_keys_.size() != build_keys_.size() || probe_keys_.empty()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  tracked_ = std::make_unique<TrackedMemory>(ctx->memory(), "hash-join build");

  if (build_factory_ != nullptr) {
    BDCC_RETURN_NOT_OK(OpenBuildPartitioned(ctx));
  } else {
    BDCC_RETURN_NOT_OK(OpenBuildSerial(ctx));
  }

  probers_.resize(num_clones_);
  for (size_t i = 0; i < num_clones_; ++i) {
    BDCC_ASSIGN_OR_RETURN(OperatorPtr probe, probe_factory_(i, num_clones_));
    child_ctxs_.push_back(std::make_unique<ExecContext>(*ctx));
    BDCC_RETURN_NOT_OK(probe->Open(child_ctxs_.back().get()));
    BDCC_RETURN_NOT_OK(
        probers_[i].Bind(probe->schema(), probe_keys_, &table_, type_));
    probes_.push_back(std::move(probe));
  }
  schema_ = probers_[0].schema();
  return Status::OK();
}

Status ParallelHashJoin::RunAll(ExecContext* ctx) {
  std::vector<std::vector<Batch>> outputs(probes_.size());
  std::vector<std::unique_ptr<TrackedMemory>> clone_mem;
  for (size_t i = 0; i < probes_.size(); ++i) {
    clone_mem.push_back(std::make_unique<TrackedMemory>(
        ctx->memory(), "hash-join probe buffer"));
  }
  QueryControl* control = ctx->control();
  Status run_status = scheduler_->ParallelForStatus(
      probes_.size(), [&](size_t i) {
        Operator* probe = probes_[i].get();
        ExecContext* cctx = child_ctxs_[i].get();
        Status s = [&]() -> Status {
          uint64_t bytes = 0;
          while (true) {
            BDCC_RETURN_NOT_OK(cctx->CheckLifecycle());
            BDCC_ASSIGN_OR_RETURN(Batch in, probe->Next(cctx));
            if (in.empty()) return Status::OK();
            BDCC_ASSIGN_OR_RETURN(Batch out, probers_[i].ProbeBatch(in));
            probe->Recycle(std::move(in));
            if (out.num_rows > 0) {
              bytes += BatchBytes(out);
              BDCC_RETURN_NOT_OK(cctx->ChargeMemory(clone_mem[i].get(), bytes));
              outputs[i].push_back(std::move(out));
            }
          }
        }();
        if (BDCC_UNLIKELY(!s.ok())) control->ReportError(s);
        return s;
      });
  for (size_t i = 0; i < probes_.size(); ++i) ctx->MergeStats(*child_ctxs_[i]);
  BDCC_RETURN_NOT_OK(run_status);
  ready_bytes_ = 0;
  for (size_t i = 0; i < probes_.size(); ++i) {
    clone_mem[i]->Clear();
    for (Batch& b : outputs[i]) {
      ready_bytes_ += BatchBytes(b);
      ready_.push_back(std::move(b));
    }
  }
  tracked_ready_ = std::make_unique<TrackedMemory>(ctx->memory(),
                                                   "hash-join probe output");
  BDCC_RETURN_NOT_OK(ctx->ChargeMemory(tracked_ready_.get(), ready_bytes_));
  ran_ = true;
  return Status::OK();
}

Result<Batch> ParallelHashJoin::Next(ExecContext* ctx) {
  if (!ran_) BDCC_RETURN_NOT_OK(RunAll(ctx));
  if (ready_.empty()) return Batch::Empty();
  Batch out = std::move(ready_.front());
  ready_.pop_front();
  ready_bytes_ -= BatchBytes(out);
  tracked_ready_->Set(ready_bytes_);
  return out;
}

void ParallelHashJoin::Close(ExecContext* ctx) {
  if (build_ != nullptr && builds_.empty()) build_->Close(ctx);
  for (size_t i = 0; i < builds_.size(); ++i) {
    builds_[i]->Close(build_ctxs_[i].get());
  }
  for (size_t i = 0; i < probes_.size(); ++i) {
    probes_[i]->Close(child_ctxs_[i].get());
  }
  builds_.clear();
  build_ctxs_.clear();
  probes_.clear();
  probers_.clear();
  child_ctxs_.clear();
  table_.Clear();
  ready_.clear();
  if (tracked_) tracked_->Clear();
  if (tracked_ready_) tracked_ready_->Clear();
}

}  // namespace exec
}  // namespace bdcc
