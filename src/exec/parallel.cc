#include "exec/parallel.h"

#include <utility>

namespace bdcc {
namespace exec {

namespace {

common::TaskScheduler* SchedulerOrShared(common::TaskScheduler* scheduler) {
  return scheduler != nullptr ? scheduler : common::TaskScheduler::Shared();
}

uint64_t BatchBytes(const Batch& b) {
  uint64_t total = 0;
  for (const ColumnVector& c : b.columns) total += ColumnVectorBytes(c);
  return total;
}

// Drain `op` on a worker, collecting every non-empty batch; the growing
// buffer is charged to `mem` (one TrackedMemory per clone, single-owner).
// The buffer is a materializing boundary: sparse selections are compacted
// so the barrier does not hold unselected rows in memory.
Status DrainChain(Operator* op, ExecContext* ctx, std::vector<Batch>* out,
                  TrackedMemory* mem) {
  uint64_t bytes = 0;
  while (true) {
    BDCC_ASSIGN_OR_RETURN(Batch b, op->Next(ctx));
    if (b.empty()) return Status::OK();
    b.CompactIfSparse(ExecContext::kCompactDensity);
    bytes += BatchBytes(b);
    mem->Set(bytes);
    out->push_back(std::move(b));
  }
}

}  // namespace

// ---------------- ParallelUnion ----------------

ParallelUnion::ParallelUnion(ChainFactory factory, size_t num_chains,
                             common::TaskScheduler* scheduler)
    : factory_(std::move(factory)),
      num_chains_(num_chains),
      scheduler_(SchedulerOrShared(scheduler)) {
  BDCC_CHECK(num_chains_ > 0);
}

Status ParallelUnion::Open(ExecContext* ctx) {
  chains_.clear();
  child_ctxs_.clear();
  ran_ = false;
  ready_.clear();
  for (size_t i = 0; i < num_chains_; ++i) {
    BDCC_ASSIGN_OR_RETURN(OperatorPtr chain, factory_(i, num_chains_));
    child_ctxs_.push_back(std::make_unique<ExecContext>(*ctx));
    BDCC_RETURN_NOT_OK(chain->Open(child_ctxs_.back().get()));
    chains_.push_back(std::move(chain));
  }
  schema_ = chains_[0]->schema();
  return Status::OK();
}

Status ParallelUnion::RunAll(ExecContext* ctx) {
  std::vector<Status> statuses(chains_.size(), Status::OK());
  std::vector<std::vector<Batch>> outputs(chains_.size());
  std::vector<std::unique_ptr<TrackedMemory>> clone_mem;
  for (size_t i = 0; i < chains_.size(); ++i) {
    clone_mem.push_back(std::make_unique<TrackedMemory>(ctx->memory()));
  }
  scheduler_->ParallelFor(chains_.size(), [&](size_t i) {
    statuses[i] = DrainChain(chains_[i].get(), child_ctxs_[i].get(),
                             &outputs[i], clone_mem[i].get());
  });
  ready_bytes_ = 0;
  for (size_t i = 0; i < chains_.size(); ++i) {
    BDCC_RETURN_NOT_OK(statuses[i]);
    ctx->MergeStats(*child_ctxs_[i]);
    clone_mem[i]->Clear();
    for (Batch& b : outputs[i]) {
      ready_bytes_ += BatchBytes(b);
      ready_.push_back(std::move(b));
    }
  }
  tracked_ready_ = std::make_unique<TrackedMemory>(ctx->memory());
  tracked_ready_->Set(ready_bytes_);
  ran_ = true;
  return Status::OK();
}

Result<Batch> ParallelUnion::Next(ExecContext* ctx) {
  if (!ran_) BDCC_RETURN_NOT_OK(RunAll(ctx));
  if (ready_.empty()) return Batch::Empty();
  Batch out = std::move(ready_.front());
  ready_.pop_front();
  ready_bytes_ -= BatchBytes(out);
  tracked_ready_->Set(ready_bytes_);
  return out;
}

void ParallelUnion::Close(ExecContext* ctx) {
  for (size_t i = 0; i < chains_.size(); ++i) {
    chains_[i]->Close(child_ctxs_[i].get());
  }
  chains_.clear();
  child_ctxs_.clear();
  ready_.clear();
  if (tracked_ready_) tracked_ready_->Clear();
}

// ---------------- ParallelHashAgg ----------------

ParallelHashAgg::ParallelHashAgg(ChainFactory child_factory, size_t num_clones,
                                 std::vector<std::string> group_cols,
                                 std::vector<AggSpec> specs,
                                 common::TaskScheduler* scheduler)
    : child_factory_(std::move(child_factory)),
      num_clones_(num_clones),
      group_cols_(std::move(group_cols)),
      spec_templates_(std::move(specs)),
      scheduler_(SchedulerOrShared(scheduler)) {
  BDCC_CHECK(num_clones_ > 0);
}

const Schema& ParallelHashAgg::schema() const {
  return partials_[0]->schema();
}

Status ParallelHashAgg::Open(ExecContext* ctx) {
  partials_.clear();
  child_ctxs_.clear();
  merged_ = false;
  for (size_t i = 0; i < num_clones_; ++i) {
    BDCC_ASSIGN_OR_RETURN(OperatorPtr child, child_factory_(i, num_clones_));
    auto agg = std::make_unique<HashAgg>(std::move(child), group_cols_,
                                         spec_templates_);
    child_ctxs_.push_back(std::make_unique<ExecContext>(*ctx));
    BDCC_RETURN_NOT_OK(agg->Open(child_ctxs_.back().get()));
    partials_.push_back(std::move(agg));
  }
  return Status::OK();
}

Result<Batch> ParallelHashAgg::Next(ExecContext* ctx) {
  if (!merged_) {
    std::vector<Status> statuses(partials_.size(), Status::OK());
    scheduler_->ParallelFor(partials_.size(), [&](size_t i) {
      statuses[i] = partials_[i]->ConsumeAll(child_ctxs_[i].get());
    });
    for (size_t i = 0; i < partials_.size(); ++i) {
      BDCC_RETURN_NOT_OK(statuses[i]);
      ctx->MergeStats(*child_ctxs_[i]);
    }
    // Merge in clone order: deterministic for a fixed clone count because
    // each clone's morsel subset is a deterministic stride.
    for (size_t i = 1; i < partials_.size(); ++i) {
      BDCC_RETURN_NOT_OK(partials_[0]->MergePartial(partials_[i].get()));
    }
    merged_ = true;
  }
  return partials_[0]->Next(child_ctxs_[0].get());
}

void ParallelHashAgg::Close(ExecContext* ctx) {
  for (size_t i = 0; i < partials_.size(); ++i) {
    partials_[i]->Close(child_ctxs_[i].get());
  }
  partials_.clear();
  child_ctxs_.clear();
}

// ---------------- ParallelHashJoin ----------------

ParallelHashJoin::ParallelHashJoin(ChainFactory probe_factory,
                                   size_t num_clones, OperatorPtr build,
                                   std::vector<std::string> probe_keys,
                                   std::vector<std::string> build_keys,
                                   JoinType type,
                                   common::TaskScheduler* scheduler)
    : probe_factory_(std::move(probe_factory)),
      num_clones_(num_clones),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)),
      type_(type),
      scheduler_(SchedulerOrShared(scheduler)) {
  BDCC_CHECK(num_clones_ > 0);
}

Status ParallelHashJoin::Open(ExecContext* ctx) {
  probes_.clear();
  probers_.clear();
  child_ctxs_.clear();
  ran_ = false;
  ready_.clear();
  if (probe_keys_.size() != build_keys_.size() || probe_keys_.empty()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  tracked_ = std::make_unique<TrackedMemory>(ctx->memory());

  // Build once, serially (the build side is typically small; parallel
  // builds would need a concurrent table).
  BDCC_RETURN_NOT_OK(build_->Open(ctx));
  BDCC_RETURN_NOT_OK(table_.Init(build_->schema(), build_keys_));
  while (true) {
    BDCC_ASSIGN_OR_RETURN(Batch b, build_->Next(ctx));
    if (b.empty()) break;
    BDCC_RETURN_NOT_OK(table_.AddBatch(b));
    build_->Recycle(std::move(b));
    tracked_->Set(table_.MemoryBytes());
  }

  probers_.resize(num_clones_);
  for (size_t i = 0; i < num_clones_; ++i) {
    BDCC_ASSIGN_OR_RETURN(OperatorPtr probe, probe_factory_(i, num_clones_));
    child_ctxs_.push_back(std::make_unique<ExecContext>(*ctx));
    BDCC_RETURN_NOT_OK(probe->Open(child_ctxs_.back().get()));
    BDCC_RETURN_NOT_OK(
        probers_[i].Bind(probe->schema(), probe_keys_, &table_, type_));
    probes_.push_back(std::move(probe));
  }
  schema_ = probers_[0].schema();
  return Status::OK();
}

Status ParallelHashJoin::RunAll(ExecContext* ctx) {
  std::vector<Status> statuses(probes_.size(), Status::OK());
  std::vector<std::vector<Batch>> outputs(probes_.size());
  std::vector<std::unique_ptr<TrackedMemory>> clone_mem;
  for (size_t i = 0; i < probes_.size(); ++i) {
    clone_mem.push_back(std::make_unique<TrackedMemory>(ctx->memory()));
  }
  scheduler_->ParallelFor(probes_.size(), [&](size_t i) {
    Operator* probe = probes_[i].get();
    ExecContext* cctx = child_ctxs_[i].get();
    statuses[i] = [&]() -> Status {
      uint64_t bytes = 0;
      while (true) {
        BDCC_ASSIGN_OR_RETURN(Batch in, probe->Next(cctx));
        if (in.empty()) return Status::OK();
        BDCC_ASSIGN_OR_RETURN(Batch out, probers_[i].ProbeBatch(in));
        probe->Recycle(std::move(in));
        if (out.num_rows > 0) {
          bytes += BatchBytes(out);
          clone_mem[i]->Set(bytes);
          outputs[i].push_back(std::move(out));
        }
      }
    }();
  });
  ready_bytes_ = 0;
  for (size_t i = 0; i < probes_.size(); ++i) {
    BDCC_RETURN_NOT_OK(statuses[i]);
    ctx->MergeStats(*child_ctxs_[i]);
    clone_mem[i]->Clear();
    for (Batch& b : outputs[i]) {
      ready_bytes_ += BatchBytes(b);
      ready_.push_back(std::move(b));
    }
  }
  tracked_ready_ = std::make_unique<TrackedMemory>(ctx->memory());
  tracked_ready_->Set(ready_bytes_);
  ran_ = true;
  return Status::OK();
}

Result<Batch> ParallelHashJoin::Next(ExecContext* ctx) {
  if (!ran_) BDCC_RETURN_NOT_OK(RunAll(ctx));
  if (ready_.empty()) return Batch::Empty();
  Batch out = std::move(ready_.front());
  ready_.pop_front();
  ready_bytes_ -= BatchBytes(out);
  tracked_ready_->Set(ready_bytes_);
  return out;
}

void ParallelHashJoin::Close(ExecContext* ctx) {
  build_->Close(ctx);
  for (size_t i = 0; i < probes_.size(); ++i) {
    probes_[i]->Close(child_ctxs_[i].get());
  }
  probes_.clear();
  probers_.clear();
  child_ctxs_.clear();
  table_.Clear();
  ready_.clear();
  if (tracked_) tracked_->Clear();
  if (tracked_ready_) tracked_ready_->Clear();
}

}  // namespace exec
}  // namespace bdcc
