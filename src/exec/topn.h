// Top-N: bounded-memory ORDER BY ... LIMIT n via a max-heap of n rows.
#ifndef BDCC_EXEC_TOPN_H_
#define BDCC_EXEC_TOPN_H_

#include <vector>

#include "exec/memory_tracker.h"
#include "exec/operator.h"
#include "exec/sort.h"

namespace bdcc {
namespace exec {

/// \brief Keeps only the first `n` rows under the sort order while
/// consuming input; memory is O(n), unlike Sort.
class TopN : public Operator {
 public:
  TopN(OperatorPtr child, std::vector<SortKey> keys, uint64_t n);

  const Schema& schema() const override { return child_->schema(); }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  uint64_t n_;
  Batch heap_rows_;                 // candidate rows (interned copies)
  std::vector<uint32_t> heap_;      // indices into heap_rows_, max-heap
  std::vector<std::pair<int, bool>> bound_keys_;
  std::unique_ptr<TrackedMemory> tracked_;
  bool done_ = false;
  size_t cursor_ = 0;
  std::vector<uint32_t> final_order_;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_TOPN_H_
