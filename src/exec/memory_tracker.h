// Operator memory accounting (reproduces the paper's Figure 3).
//
// Operators report the bytes held by their stateful structures (join hash
// tables, aggregation tables, sort buffers, outer-side materializations);
// the tracker keeps the running total and the high-water mark per query.
// With set_limit() the tracker also *enforces* a per-query budget:
// TryAllocate refuses growth that would push the total past the limit, and
// TrackedMemory::TrySet turns the refusal into a ResourceExhausted status
// naming the operator (see the budget-enforcement contract in
// src/exec/README.md).
//
// Thread-safety contract: MemoryTracker is fully thread-safe — one tracker
// is shared by every worker of a parallel query, so the peak reflects the
// query-wide concurrent footprint. Allocate/Release are lock-free atomics;
// peak_bytes() may transiently lag a concurrent Allocate by one CAS round
// but is exact once the query quiesces. Reset() must not race with
// concurrent Allocate/Release (call it between queries only; debug builds
// assert it). TrackedMemory is NOT thread-safe: each instance must be owned
// and adjusted by a single thread (per-clone operator state in parallel
// pipelines owns one TrackedMemory per clone).
#ifndef BDCC_EXEC_MEMORY_TRACKER_H_
#define BDCC_EXEC_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/macros.h"
#include "common/status.h"

namespace bdcc {
namespace exec {

class MemoryTracker {
 public:
  void Allocate(uint64_t bytes) {
#ifndef NDEBUG
    MutationGuard guard(this);
#endif
    uint64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    RaisePeak(now);
  }

  /// Budget-checked growth: false (and no state change, one denial counted)
  /// when a limit is set and `bytes` more would exceed it.
  bool TryAllocate(uint64_t bytes) {
#ifndef NDEBUG
    MutationGuard guard(this);
#endif
    uint64_t limit = limit_.load(std::memory_order_relaxed);
    if (limit == 0) {
      uint64_t now =
          current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
      RaisePeak(now);
      return true;
    }
    uint64_t cur = current_.load(std::memory_order_relaxed);
    do {
      if (bytes > limit || cur > limit - bytes) {
        denials_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    } while (!current_.compare_exchange_weak(cur, cur + bytes,
                                             std::memory_order_relaxed));
    RaisePeak(cur + bytes);
    return true;
  }

  /// `owner` names the releasing operator in the under-release failure
  /// message (an under-release means that operator's delta accounting
  /// double-freed bytes).
  void Release(uint64_t bytes, const char* owner = nullptr) {
#ifndef NDEBUG
    MutationGuard guard(this);
#endif
    uint64_t prev = current_.fetch_sub(bytes, std::memory_order_relaxed);
    if (BDCC_UNLIKELY(bytes > prev)) {
      std::fprintf(stderr,
                   "MemoryTracker under-release by '%s': releasing %llu bytes "
                   "with only %llu tracked\n",
                   owner != nullptr ? owner : "<untracked owner>",
                   static_cast<unsigned long long>(bytes),
                   static_cast<unsigned long long>(prev));
      BDCC_CHECK_MSG(bytes <= prev, "MemoryTracker under-release");
    }
  }

  uint64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  /// Hard per-query budget in bytes; 0 (the default) means unlimited.
  void set_limit(uint64_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t limit() const { return limit_.load(std::memory_order_relaxed); }

  /// TryAllocate refusals since the last Reset().
  uint64_t budget_denials() const {
    return denials_.load(std::memory_order_relaxed);
  }

  /// Rearm for the next query; keeps the limit. Must not race concurrent
  /// Allocate/Release (debug builds assert no mutation is in flight).
  void Reset() {
#ifndef NDEBUG
    BDCC_CHECK_MSG(mutators_.load(std::memory_order_acquire) == 0,
                   "MemoryTracker::Reset raced a concurrent Allocate/Release");
#endif
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    denials_.store(0, std::memory_order_relaxed);
  }

 private:
  void RaisePeak(uint64_t now) {
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }

#ifndef NDEBUG
  struct MutationGuard {
    explicit MutationGuard(MemoryTracker* t) : t(t) {
      t->mutators_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~MutationGuard() { t->mutators_.fetch_sub(1, std::memory_order_acq_rel); }
    MemoryTracker* t;
  };
  std::atomic<int> mutators_{0};
#endif

  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> limit_{0};
  std::atomic<uint64_t> denials_{0};
};

/// \brief RAII registration of a chunk of operator memory. Single-owner:
/// see the thread-safety contract above. `name` identifies the owning
/// operator in budget-denial and under-release messages.
class TrackedMemory {
 public:
  explicit TrackedMemory(MemoryTracker* tracker,
                         const char* name = "operator")
      : tracker_(tracker), name_(name) {}
  ~TrackedMemory() { Clear(); }
  BDCC_DISALLOW_COPY_AND_ASSIGN(TrackedMemory);

  /// Adjust the registered size to `bytes`, bypassing the budget (shrink
  /// paths and legacy callers).
  void Set(uint64_t bytes) {
    if (tracker_ == nullptr) return;
    if (bytes > bytes_) {
      tracker_->Allocate(bytes - bytes_);
    } else {
      tracker_->Release(bytes_ - bytes, name_);
    }
    bytes_ = bytes;
  }

  /// Adjust the registered size to `bytes`, honouring the tracker's budget:
  /// growth that would exceed the limit leaves the registration unchanged
  /// and returns ResourceExhausted naming this operator, the requested
  /// delta, and the query's high-water mark.
  Status TrySet(uint64_t bytes) {
    if (tracker_ == nullptr || bytes <= bytes_) {
      Set(bytes);
      return Status::OK();
    }
    uint64_t delta = bytes - bytes_;
    if (BDCC_UNLIKELY(!tracker_->TryAllocate(delta))) {
      char msg[256];
      std::snprintf(msg, sizeof(msg),
                    "%s: memory budget exceeded: +%llu bytes over the %llu "
                    "held would pass the %llu-byte limit (query now %llu, "
                    "peak %llu)",
                    name_, static_cast<unsigned long long>(delta),
                    static_cast<unsigned long long>(bytes_),
                    static_cast<unsigned long long>(tracker_->limit()),
                    static_cast<unsigned long long>(tracker_->current_bytes()),
                    static_cast<unsigned long long>(tracker_->peak_bytes()));
      return Status::ResourceExhausted(msg);
    }
    bytes_ = bytes;
    return Status::OK();
  }

  void Clear() { Set(0); }
  uint64_t bytes() const { return bytes_; }
  const char* name() const { return name_; }

 private:
  MemoryTracker* tracker_;
  const char* name_;
  uint64_t bytes_ = 0;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_MEMORY_TRACKER_H_
