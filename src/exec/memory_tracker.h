// Operator memory accounting (reproduces the paper's Figure 3).
//
// Operators report the bytes held by their stateful structures (join hash
// tables, aggregation tables, sort buffers, outer-side materializations);
// the tracker keeps the running total and the high-water mark per query.
#ifndef BDCC_EXEC_MEMORY_TRACKER_H_
#define BDCC_EXEC_MEMORY_TRACKER_H_

#include <cstdint>

#include "common/macros.h"

namespace bdcc {
namespace exec {

class MemoryTracker {
 public:
  void Allocate(uint64_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }
  void Release(uint64_t bytes) {
    BDCC_CHECK(bytes <= current_);
    current_ -= bytes;
  }

  uint64_t current_bytes() const { return current_; }
  uint64_t peak_bytes() const { return peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  uint64_t current_ = 0;
  uint64_t peak_ = 0;
};

/// \brief RAII registration of a chunk of operator memory.
class TrackedMemory {
 public:
  explicit TrackedMemory(MemoryTracker* tracker) : tracker_(tracker) {}
  ~TrackedMemory() { Clear(); }
  BDCC_DISALLOW_COPY_AND_ASSIGN(TrackedMemory);

  /// Adjust the registered size to `bytes`.
  void Set(uint64_t bytes) {
    if (tracker_ == nullptr) return;
    if (bytes > bytes_) {
      tracker_->Allocate(bytes - bytes_);
    } else {
      tracker_->Release(bytes_ - bytes);
    }
    bytes_ = bytes;
  }
  void Clear() { Set(0); }
  uint64_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_;
  uint64_t bytes_ = 0;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_MEMORY_TRACKER_H_
