// Operator memory accounting (reproduces the paper's Figure 3).
//
// Operators report the bytes held by their stateful structures (join hash
// tables, aggregation tables, sort buffers, outer-side materializations);
// the tracker keeps the running total and the high-water mark per query.
//
// Thread-safety contract: MemoryTracker is fully thread-safe — one tracker
// is shared by every worker of a parallel query, so the peak reflects the
// query-wide concurrent footprint. Allocate/Release are lock-free atomics;
// peak_bytes() may transiently lag a concurrent Allocate by one CAS round
// but is exact once the query quiesces. Reset() must not race with
// concurrent Allocate/Release (call it between queries only).
// TrackedMemory is NOT thread-safe: each instance must be owned and
// adjusted by a single thread (per-clone operator state in parallel
// pipelines owns one TrackedMemory per clone).
#ifndef BDCC_EXEC_MEMORY_TRACKER_H_
#define BDCC_EXEC_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace bdcc {
namespace exec {

class MemoryTracker {
 public:
  void Allocate(uint64_t bytes) {
    uint64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  void Release(uint64_t bytes) {
    uint64_t prev = current_.fetch_sub(bytes, std::memory_order_relaxed);
    BDCC_CHECK(bytes <= prev);
  }

  uint64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
};

/// \brief RAII registration of a chunk of operator memory. Single-owner:
/// see the thread-safety contract above.
class TrackedMemory {
 public:
  explicit TrackedMemory(MemoryTracker* tracker) : tracker_(tracker) {}
  ~TrackedMemory() { Clear(); }
  BDCC_DISALLOW_COPY_AND_ASSIGN(TrackedMemory);

  /// Adjust the registered size to `bytes`.
  void Set(uint64_t bytes) {
    if (tracker_ == nullptr) return;
    if (bytes > bytes_) {
      tracker_->Allocate(bytes - bytes_);
    } else {
      tracker_->Release(bytes_ - bytes);
    }
    bytes_ = bytes;
  }
  void Clear() { Set(0); }
  uint64_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_;
  uint64_t bytes_ = 0;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_MEMORY_TRACKER_H_
