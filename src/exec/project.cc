#include "exec/project.h"

namespace bdcc {
namespace exec {

OperatorPtr Project::Rename(
    OperatorPtr child,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  std::vector<NamedExpr> exprs;
  exprs.reserve(renames.size());
  for (const auto& [from, to] : renames) {
    exprs.push_back(NamedExpr{to, Col(from)});
  }
  return std::make_unique<Project>(std::move(child), std::move(exprs));
}

OperatorPtr Project::Keep(OperatorPtr child,
                          const std::vector<std::string>& columns) {
  std::vector<NamedExpr> exprs;
  exprs.reserve(columns.size());
  for (const std::string& c : columns) {
    exprs.push_back(NamedExpr{c, Col(c)});
  }
  return std::make_unique<Project>(std::move(child), std::move(exprs));
}

Status Project::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(child_->Open(ctx));
  std::vector<Field> fields;
  for (NamedExpr& ne : exprs_) {
    BDCC_RETURN_NOT_OK(ne.expr->Bind(child_->schema()));
    fields.push_back(Field{ne.name, ne.expr->type()});
  }
  schema_ = Schema(std::move(fields));
  return Status::OK();
}

Result<Batch> Project::Next(ExecContext* ctx) {
  BDCC_ASSIGN_OR_RETURN(Batch in, child_->Next(ctx));
  if (in.empty()) return Batch::Empty();
  Batch out;
  out.num_rows = in.num_rows;
  out.group_id = in.group_id;
  out.columns.reserve(exprs_.size());
  for (const NamedExpr& ne : exprs_) {
    BDCC_ASSIGN_OR_RETURN(ColumnVector v, ne.expr->Eval(in));
    out.columns.push_back(std::move(v));
  }
  // Expression outputs are dense copies (leaves densify), so the input
  // buffers are free to reuse.
  child_->Recycle(std::move(in));
  return out;
}

}  // namespace exec
}  // namespace bdcc
