#include "exec/project.h"

namespace bdcc {
namespace exec {

OperatorPtr Project::Rename(
    OperatorPtr child,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  std::vector<NamedExpr> exprs;
  exprs.reserve(renames.size());
  for (const auto& [from, to] : renames) {
    exprs.push_back(NamedExpr{to, Col(from)});
  }
  return std::make_unique<Project>(std::move(child), std::move(exprs));
}

OperatorPtr Project::Keep(OperatorPtr child,
                          const std::vector<std::string>& columns) {
  std::vector<NamedExpr> exprs;
  exprs.reserve(columns.size());
  for (const std::string& c : columns) {
    exprs.push_back(NamedExpr{c, Col(c)});
  }
  return std::make_unique<Project>(std::move(child), std::move(exprs));
}

Status Project::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(child_->Open(ctx));
  std::vector<Field> fields;
  for (NamedExpr& ne : exprs_) {
    BDCC_RETURN_NOT_OK(ne.expr->Bind(child_->schema()));
    fields.push_back(Field{ne.name, ne.expr->type()});
  }
  schema_ = Schema(std::move(fields));
  return Status::OK();
}

Result<Batch> Project::Next(ExecContext* ctx) {
  BDCC_ASSIGN_OR_RETURN(Batch in, child_->Next(ctx));
  if (in.empty()) return Batch::Empty();
  Batch scratch;
  if (!recycled_.empty()) {
    scratch = std::move(recycled_.back());
    recycled_.pop_back();
  }
  Batch out;
  out.num_rows = in.num_rows;
  out.group_id = in.group_id;
  out.columns.reserve(exprs_.size());
  for (size_t e = 0; e < exprs_.size(); ++e) {
    ColumnVector v;
    if (e < scratch.columns.size()) {
      BDCC_ASSIGN_OR_RETURN(
          v, exprs_[e].expr->EvalReusing(in, std::move(scratch.columns[e])));
    } else {
      BDCC_ASSIGN_OR_RETURN(v, exprs_[e].expr->Eval(in));
    }
    out.columns.push_back(std::move(v));
  }
  // Expression outputs are dense copies (leaves densify), so the input
  // buffers are free to reuse.
  child_->Recycle(std::move(in));
  return out;
}

void Project::Recycle(Batch&& batch) {
  RecycleIntoFreeList(std::move(batch), schema_, &recycled_);
}

}  // namespace exec
}  // namespace bdcc
