#include "exec/operator.h"

namespace bdcc {
namespace exec {

Result<Batch> CollectAll(Operator* op, ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(op->Open(ctx));
  Batch out;
  while (true) {
    BDCC_ASSIGN_OR_RETURN(Batch b, op->Next(ctx));
    if (b.empty()) break;
    b.Compact();  // collected results are always dense
    if (out.columns.empty()) {
      out = std::move(b);
      continue;
    }
    for (size_t c = 0; c < out.columns.size(); ++c) {
      for (size_t r = 0; r < b.num_rows; ++r) {
        out.columns[c].AppendInterning(b.columns[c], r);
      }
    }
    out.num_rows += b.num_rows;
    op->Recycle(std::move(b));
  }
  op->Close(ctx);
  if (out.columns.empty()) {
    // Typed empty result.
    for (const Field& f : op->schema().fields()) {
      out.columns.emplace_back(f.type);
    }
  }
  out.group_id = -1;
  return out;
}

}  // namespace exec
}  // namespace bdcc
