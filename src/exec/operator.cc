#include "exec/operator.h"

namespace bdcc {
namespace exec {

namespace {

// Unwind the tree so every operator releases its tracked state before the
// error surfaces (budget errors, cancellation, injected faults), and drop
// the surfaced error from the query control: the failure now belongs to the
// caller, and the same context must be able to run the next query.
// Cancellation and deadlines persist until QueryControl::Reset().
Status SurfaceFailure(Operator* op, ExecContext* ctx, Status failure) {
  op->Close(ctx);
  ctx->control()->ClearError();
  if (failure.IsCancelled() || failure.IsDeadlineExceeded()) {
    // Worker clones count the polls that observed the stop into their own
    // stats (merged by the parallel operators), but a stop observed at a
    // bare QueryControl::Check site — partition finish, merge loops, which
    // run where no per-thread stats exist — would otherwise go uncounted.
    // The driver abandoning its collect loop is itself a cancelled morsel.
    ++ctx->stats()->morsels_cancelled;
  }
  return failure;
}

}  // namespace

Result<Batch> CollectAll(Operator* op, ExecContext* ctx) {
  Status opened = op->Open(ctx);
  if (BDCC_UNLIKELY(!opened.ok())) {
    // Operators that do work in Open (parallel build sides) may have opened
    // and charged part of the tree before failing; Close is idempotent and
    // tolerates never-opened children.
    return SurfaceFailure(op, ctx, std::move(opened));
  }
  Batch out;
  while (true) {
    Result<Batch> next = op->Next(ctx);
    if (BDCC_UNLIKELY(!next.ok())) {
      return SurfaceFailure(op, ctx, std::move(next).status());
    }
    Batch b = std::move(next).value();
    if (b.empty()) break;
    b.Compact();  // collected results are always dense
    if (out.columns.empty()) {
      out = std::move(b);
      continue;
    }
    for (size_t c = 0; c < out.columns.size(); ++c) {
      for (size_t r = 0; r < b.num_rows; ++r) {
        out.columns[c].AppendInterning(b.columns[c], r);
      }
    }
    out.num_rows += b.num_rows;
    op->Recycle(std::move(b));
  }
  op->Close(ctx);
  if (out.columns.empty()) {
    // Typed empty result.
    for (const Field& f : op->schema().fields()) {
      out.columns.emplace_back(f.type);
    }
  }
  out.group_id = -1;
  return out;
}

}  // namespace exec
}  // namespace bdcc
