#include "exec/sandwich_join.h"

namespace bdcc {
namespace exec {

SandwichHashJoin::SandwichHashJoin(OperatorPtr left, OperatorPtr right,
                                   std::vector<std::string> left_keys,
                                   std::vector<std::string> right_keys,
                                   JoinType type)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      type_(type) {}

Status SandwichHashJoin::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(left_->Open(ctx));
  BDCC_RETURN_NOT_OK(right_->Open(ctx));
  tracked_ = std::make_unique<TrackedMemory>(ctx->memory());
  BDCC_RETURN_NOT_OK(table_.Init(right_->schema(), right_keys_));
  // Per-group builds alternate with probes on this one thread, so sharing
  // the build encoder's canonical string space is race-free.
  BDCC_RETURN_NOT_OK(
      probe_encoder_.BindProbe(left_->schema(), left_keys_, &table_.encoder()));
  if (type_ == JoinType::kLeftSemi || type_ == JoinType::kLeftAnti) {
    schema_ = left_->schema();
  } else {
    schema_ = Schema::Concat(left_->schema(), right_->schema());
  }
  have_pending_right_ = false;
  right_done_ = false;
  current_group_ = -1;
  last_left_group_ = -1;
  return Status::OK();
}

Status SandwichHashJoin::PullRight(ExecContext* ctx) {
  BDCC_ASSIGN_OR_RETURN(Batch b, right_->Next(ctx));
  if (b.empty()) {
    right_done_ = true;
    have_pending_right_ = false;
    return Status::OK();
  }
  if (b.group_id < 0) {
    return Status::InvalidArgument(
        "sandwich join build input is not group-tagged");
  }
  pending_right_ = std::move(b);
  have_pending_right_ = true;
  return Status::OK();
}

Status SandwichHashJoin::LoadRightGroupUpTo(int64_t target, ExecContext* ctx) {
  if (current_group_ >= target) return Status::OK();
  // Discard the stale group.
  table_.Clear();
  tracked_->Set(0);
  current_group_ = -1;

  // Skip right batches below the target group.
  while (true) {
    if (!have_pending_right_ && !right_done_) BDCC_RETURN_NOT_OK(PullRight(ctx));
    if (!have_pending_right_) return Status::OK();  // right exhausted
    if (pending_right_.group_id >= target) break;
    have_pending_right_ = false;
    right_->Recycle(std::move(pending_right_));
  }
  // Build all batches of the chosen group.
  int64_t group = pending_right_.group_id;
  while (have_pending_right_ && pending_right_.group_id == group) {
    BDCC_RETURN_NOT_OK(table_.AddBatch(pending_right_));
    have_pending_right_ = false;
    right_->Recycle(std::move(pending_right_));
    if (!right_done_) BDCC_RETURN_NOT_OK(PullRight(ctx));
  }
  current_group_ = group;
  tracked_->Set(table_.MemoryBytes());
  ctx->stats()->sandwich_partitions += 1;
  return Status::OK();
}

Result<Batch> SandwichHashJoin::ProbeBatch(const Batch& in) {
  size_t left_width = in.columns.size();
  Batch out;
  out.group_id = in.group_id;
  for (const Field& f : schema_.fields()) out.columns.emplace_back(f.type);
  if (type_ == JoinType::kInner || type_ == JoinType::kLeftOuter) {
    for (size_t c = 0; c < table_.columns().size(); ++c) {
      out.columns[left_width + c].dict = table_.columns()[c].dict;
    }
  }

  // `left_row` is logical; map through the probe batch's selection.
  auto emit_match = [&](size_t left_row, BuildRowRef build) {
    for (size_t c = 0; c < left_width; ++c) {
      out.columns[c].AppendFrom(in.columns[c], in.RowAt(left_row));
    }
    for (size_t c = 0; c < build.columns->size(); ++c) {
      out.columns[left_width + c].AppendFrom((*build.columns)[c], build.row);
    }
    ++out.num_rows;
  };
  auto emit_left = [&](size_t left_row, bool null_right) {
    for (size_t c = 0; c < left_width; ++c) {
      out.columns[c].AppendFrom(in.columns[c], in.RowAt(left_row));
    }
    if (null_right) {
      for (size_t c = left_width; c < out.columns.size(); ++c) {
        out.columns[c].AppendNull();
      }
    }
    ++out.num_rows;
  };
  auto probe_row = [&](size_t i, auto&& key, bool valid) {
    bool matched = false;
    if (valid) {
      if (type_ == JoinType::kInner || type_ == JoinType::kLeftOuter) {
        table_.ForEachMatch(key, [&](BuildRowRef build) {
          emit_match(i, build);
          matched = true;
        });
      } else {
        matched = table_.HasMatch(key);
      }
    }
    if (type_ == JoinType::kLeftOuter && !matched) emit_left(i, true);
    if (type_ == JoinType::kLeftSemi && matched) emit_left(i, false);
    if (type_ == JoinType::kLeftAnti && !matched) emit_left(i, false);
  };

  if (probe_encoder_.int_path()) {
    std::vector<int64_t> keys;
    std::vector<uint8_t> valid;
    probe_encoder_.EncodeInts(in, &keys, &valid);
    for (size_t i = 0; i < in.num_rows; ++i) probe_row(i, keys[i], valid[i]);
  } else {
    std::vector<std::string> keys;
    std::vector<uint8_t> valid;
    probe_encoder_.EncodeBytes(in, &keys, &valid);
    for (size_t i = 0; i < in.num_rows; ++i) probe_row(i, keys[i], valid[i]);
  }
  return out;
}

Result<Batch> SandwichHashJoin::Next(ExecContext* ctx) {
  while (true) {
    BDCC_ASSIGN_OR_RETURN(Batch in, left_->Next(ctx));
    if (in.empty()) return Batch::Empty();
    if (in.group_id < 0) {
      return Status::InvalidArgument(
          "sandwich join probe input is not group-tagged");
    }
    if (in.group_id < last_left_group_) {
      return Status::Internal("sandwich join probe groups not ascending");
    }
    last_left_group_ = in.group_id;
    BDCC_RETURN_NOT_OK(LoadRightGroupUpTo(in.group_id, ctx));
    if (current_group_ == in.group_id) {
      BDCC_ASSIGN_OR_RETURN(Batch out, ProbeBatch(in));
      left_->Recycle(std::move(in));  // probe output is freshly materialized
      if (out.num_rows > 0) return out;
      continue;
    }
    // No matching right group: anti rows pass through; left-outer rows pass
    // with NULL right columns (dense, so the appended null columns align).
    if (type_ == JoinType::kLeftAnti) return in;
    if (type_ == JoinType::kLeftOuter) {
      in.Compact();
      Batch out;
      out.group_id = in.group_id;
      out.num_rows = in.num_rows;
      out.columns = std::move(in.columns);
      for (size_t c = left_->schema().num_fields();
           c < schema_.num_fields(); ++c) {
        ColumnVector v(schema_.field(c).type);
        for (size_t r = 0; r < out.num_rows; ++r) v.AppendNull();
        out.columns.push_back(std::move(v));
      }
      return out;
    }
  }
}

void SandwichHashJoin::Close(ExecContext* ctx) {
  left_->Close(ctx);
  right_->Close(ctx);
  table_.Clear();
  if (tracked_) tracked_->Clear();
}

}  // namespace exec
}  // namespace bdcc
