// Shared per-query execution state.
#ifndef BDCC_EXEC_EXEC_CONTEXT_H_
#define BDCC_EXEC_EXEC_CONTEXT_H_

#include <cstdint>

#include "exec/memory_tracker.h"
#include "io/buffer_pool.h"

namespace bdcc {
namespace exec {

/// Counters the planner/benchmarks read after a query finishes.
struct ExecStats {
  uint64_t rows_scanned = 0;
  uint64_t zones_skipped = 0;
  uint64_t zones_read = 0;
  uint64_t groups_pruned = 0;
  uint64_t groups_read = 0;
  uint64_t sandwich_partitions = 0;

  void Reset() { *this = ExecStats{}; }
};

/// \brief Holds the memory tracker, optional buffer pool, and stats for one
/// query execution.
class ExecContext {
 public:
  explicit ExecContext(io::BufferPool* pool = nullptr) : pool_(pool) {}

  MemoryTracker* memory() { return &memory_; }
  io::BufferPool* buffer_pool() { return pool_; }
  ExecStats* stats() { return &stats_; }

  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t n) { batch_size_ = n; }

 private:
  io::BufferPool* pool_;
  MemoryTracker memory_;
  ExecStats stats_;
  size_t batch_size_ = 2048;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_EXEC_CONTEXT_H_
