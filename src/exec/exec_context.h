// Shared per-query execution state.
//
// Thread-safety contract: one ExecContext belongs to one thread. Parallel
// operators hand each worker clone a *child* context (the child constructor)
// which shares the parent's buffer pool and memory tracker — both safe for
// concurrent use — while keeping private ExecStats; the parent merges child
// stats with MergeStats() after the parallel phase (serially, so plain
// uint64 fields suffice).
#ifndef BDCC_EXEC_EXEC_CONTEXT_H_
#define BDCC_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <string>

#include "common/fault_injection.h"
#include "common/status.h"
#include "exec/memory_tracker.h"
#include "exec/query_control.h"
#include "io/buffer_pool.h"

namespace bdcc {
namespace exec {

/// Counters the planner/benchmarks read after a query finishes.
struct ExecStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_filtered_at_scan = 0;  // rows dropped by scan-level predicates
  uint64_t zones_skipped = 0;
  uint64_t zones_read = 0;
  uint64_t groups_pruned = 0;
  uint64_t groups_read = 0;
  uint64_t sandwich_partitions = 0;
  // Scan chunks whose predicate evaluation (and any codec decode) was
  // skipped because zone maps proved every row passes.
  uint64_t decodes_skipped = 0;
  // Scan chunks emitted as zero-copy views over the storage lanes.
  uint64_t chunks_zero_copy = 0;
  // Predicate spans evaluated directly over encoded (RLE/bit-packed)
  // blocks instead of the flat lane.
  uint64_t encoded_spans = 0;
  // Lifecycle checks that observed a stop (cancel/deadline/sibling error)
  // and unwound the morsel or chunk loop they guard.
  uint64_t morsels_cancelled = 0;
  // Operator growth requests refused by the memory budget.
  uint64_t budget_denials = 0;
  // Faults fired by the injection layer on this context's paths.
  uint64_t faults_injected = 0;
  // Rows read from the unclustered delta region of a live table (pre-filter,
  // like rows_scanned which also includes them).
  uint64_t delta_rows_scanned = 0;
  // Delta chunks a scan's delta-side leg entered.
  uint64_t delta_chunks = 0;
  // Background merge passes that published a new snapshot epoch.
  uint64_t merges_completed = 0;

  void Reset() { *this = ExecStats{}; }

  void Merge(const ExecStats& other) {
    rows_scanned += other.rows_scanned;
    rows_filtered_at_scan += other.rows_filtered_at_scan;
    zones_skipped += other.zones_skipped;
    zones_read += other.zones_read;
    groups_pruned += other.groups_pruned;
    groups_read += other.groups_read;
    sandwich_partitions += other.sandwich_partitions;
    decodes_skipped += other.decodes_skipped;
    chunks_zero_copy += other.chunks_zero_copy;
    encoded_spans += other.encoded_spans;
    morsels_cancelled += other.morsels_cancelled;
    budget_denials += other.budget_denials;
    faults_injected += other.faults_injected;
    delta_rows_scanned += other.delta_rows_scanned;
    delta_chunks += other.delta_chunks;
    merges_completed += other.merges_completed;
  }
};

/// \brief Holds the memory tracker, optional buffer pool, and stats for one
/// query execution.
class ExecContext {
 public:
  /// Below this selected-row density, selection vectors are compacted at
  /// materializing boundaries instead of carried (see batch.h contract).
  static constexpr double kCompactDensity = 0.25;

  explicit ExecContext(io::BufferPool* pool = nullptr) : pool_(pool) {}

  /// Child context for one worker of a parallel pipeline: shares the
  /// parent's buffer pool and memory tracker, private stats. (Takes a
  /// reference to stay unambiguous with the BufferPool* constructor.)
  explicit ExecContext(ExecContext& parent)
      : pool_(parent.pool_),
        parent_(&parent),
        batch_size_(parent.batch_size_),
        sel_enabled_(parent.sel_enabled_) {}

  MemoryTracker* memory() {
    return parent_ != nullptr ? parent_->memory() : &memory_;
  }
  io::BufferPool* buffer_pool() { return pool_; }
  ExecStats* stats() { return &stats_; }

  /// The query-wide cancel/deadline/error state; one per query, shared by
  /// every worker clone (child contexts delegate to the root's).
  QueryControl* control() {
    return parent_ != nullptr ? parent_->control() : &control_;
  }

  /// Lifecycle poll for morsel boundaries and chunk loops: OK while the
  /// query is healthy, else the stop status (counted in morsels_cancelled).
  Status CheckLifecycle() {
    Status s = control()->Check();
    if (BDCC_UNLIKELY(!s.ok())) ++stats_.morsels_cancelled;
    return s;
  }

  /// Budget-checked operator growth: TrySet through `mem` plus the
  /// allocation fault-injection point, with denials and injected faults
  /// counted on this context's stats.
  Status ChargeMemory(TrackedMemory* mem, uint64_t bytes) {
    if (BDCC_UNLIKELY(fault::ShouldFail(fault::kAlloc))) {
      ++stats_.faults_injected;
      return Status::ResourceExhausted(
          std::string("injected allocation fault (") + mem->name() + ")");
    }
    Status s = mem->TrySet(bytes);
    if (BDCC_UNLIKELY(!s.ok())) ++stats_.budget_denials;
    return s;
  }

  /// Fold a child's stats into this context (call after the child's worker
  /// has finished; not safe concurrently with other mutations of stats()).
  void MergeStats(const ExecContext& child) { stats_.Merge(child.stats_); }

  /// Rearm this context for another execution attempt of the same query
  /// (the serving layer's retry path after a ResourceExhausted unwind):
  /// clears the recorded error, zeroes the memory counters, and installs
  /// the escalated budget. Cancel and deadline deliberately survive — a
  /// retry is still the same session request. Root contexts only, and only
  /// after the previous attempt fully unwound (CollectAll closed the tree,
  /// so tracked bytes have drained; callers wanting to detect leaks must
  /// read memory()->current_bytes() *before* this call).
  void PrepareRerun(uint64_t new_limit_bytes) {
    BDCC_CHECK_MSG(parent_ == nullptr,
                   "ExecContext::PrepareRerun on a child context");
    control_.ClearError();
    memory_.Reset();
    memory_.set_limit(new_limit_bytes);
  }

  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t n) { batch_size_ = n; }

  /// When false, batches are compacted eagerly wherever a selection vector
  /// would otherwise be attached — the legacy copy path, kept selectable for
  /// benchmarking and sel-vs-compact equality tests.
  bool sel_enabled() const { return sel_enabled_; }
  void set_sel_enabled(bool on) { sel_enabled_ = on; }

 private:
  io::BufferPool* pool_;
  ExecContext* parent_ = nullptr;
  MemoryTracker memory_;
  QueryControl control_;
  ExecStats stats_;
  size_t batch_size_ = 2048;
  bool sel_enabled_ = true;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_EXEC_CONTEXT_H_
