#include "exec/batch.h"

namespace bdcc {
namespace exec {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::Require(const std::string& name) const {
  int idx = IndexOf(name);
  if (idx < 0) {
    return Status::NotFound("column '" + name + "' not in schema " +
                            ToString());
  }
  return idx;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Field> fields = a.fields_;
  fields.insert(fields.end(), b.fields_.begin(), b.fields_.end());
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
  }
  return out + "]";
}

Value ColumnVector::GetValue(size_t row) const {
  if (IsNull(row)) return Value();  // caller must check IsNull for semantics
  switch (type) {
    case TypeId::kInt32:
      return Value::Int32(i32[row]);
    case TypeId::kInt64:
      return Value::Int64(i64[row]);
    case TypeId::kFloat64:
      return Value::Float64(f64[row]);
    case TypeId::kDate:
      return Value::Date(i32[row]);
    case TypeId::kBool:
      return Value::Bool(i32[row] != 0);
    case TypeId::kString:
      return Value::String(dict->Get(i32[row]));
  }
  return Value();
}

void ColumnVector::AppendFromStorage(const Column& col, uint64_t row) {
  switch (type) {
    case TypeId::kInt64:
      i64.push_back(col.i64()[row]);
      break;
    case TypeId::kFloat64:
      f64.push_back(col.f64()[row]);
      break;
    default:
      i32.push_back(col.i32()[row]);
      break;
  }
  if (!nulls.empty()) nulls.push_back(0);
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t row) {
  BDCC_CHECK(type == other.type);
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type) {
    case TypeId::kInt64:
      i64.push_back(other.i64[row]);
      break;
    case TypeId::kFloat64:
      f64.push_back(other.f64[row]);
      break;
    case TypeId::kString:
      if (dict == nullptr) dict = other.dict;
      if (dict == other.dict) {
        i32.push_back(other.i32[row]);
      } else {
        // Source carries a different dictionary (e.g. expression-generated
        // strings): fall back to interning by content. GetOrAdd only ever
        // appends, so existing codes remain valid.
        i32.push_back(dict->GetOrAdd(other.GetString(row)));
      }
      break;
    default:
      i32.push_back(other.i32[row]);
      break;
  }
  if (!nulls.empty()) nulls.push_back(0);
}

void ColumnVector::AppendInterning(const ColumnVector& other, size_t row) {
  BDCC_CHECK(type == other.type);
  if (type != TypeId::kString) {
    AppendFrom(other, row);
    return;
  }
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  if (dict == nullptr) dict = std::make_shared<Dictionary>();
  i32.push_back(dict->GetOrAdd(other.GetString(row)));
  if (!nulls.empty()) nulls.push_back(0);
}

void ColumnVector::AppendNull() {
  if (nulls.empty()) nulls.assign(size(), 0);
  switch (type) {
    case TypeId::kInt64:
      i64.push_back(0);
      break;
    case TypeId::kFloat64:
      f64.push_back(0.0);
      break;
    default:
      i32.push_back(0);
      break;
  }
  nulls.push_back(1);
}

void ColumnVector::Reserve(size_t rows) {
  switch (type) {
    case TypeId::kInt64:
      i64.reserve(rows);
      break;
    case TypeId::kFloat64:
      f64.reserve(rows);
      break;
    default:
      i32.reserve(rows);
      break;
  }
}

void ColumnVector::ClearKeepCapacity() {
  i32.clear();
  i64.clear();
  f64.clear();
  nulls.clear();
}

ColumnVector ColumnVector::Gather(const std::vector<uint32_t>& sel) const {
  ColumnVector out(type);
  out.dict = dict;
  out.Reserve(sel.size());
  switch (type) {
    case TypeId::kInt64:
      for (uint32_t r : sel) out.i64.push_back(i64[r]);
      break;
    case TypeId::kFloat64:
      for (uint32_t r : sel) out.f64.push_back(f64[r]);
      break;
    default:
      for (uint32_t r : sel) out.i32.push_back(i32[r]);
      break;
  }
  if (!nulls.empty()) {
    out.nulls.reserve(sel.size());
    for (uint32_t r : sel) out.nulls.push_back(nulls[r]);
  }
  return out;
}

void Batch::Compact() {
  if (sel.empty()) return;
  for (ColumnVector& c : columns) c = c.Gather(sel);
  sel.clear();
}

void Batch::CompactIfSparse(double min_density) {
  if (has_sel() && density() < min_density) Compact();
}

}  // namespace exec
}  // namespace bdcc
