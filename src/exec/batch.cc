#include "exec/batch.h"

#include <cstring>

#include "exec/kernels/kernels.h"

namespace bdcc {
namespace exec {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::Require(const std::string& name) const {
  int idx = IndexOf(name);
  if (idx < 0) {
    return Status::NotFound("column '" + name + "' not in schema " +
                            ToString());
  }
  return idx;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Field> fields = a.fields_;
  fields.insert(fields.end(), b.fields_.begin(), b.fields_.end());
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
  }
  return out + "]";
}

Value ColumnVector::GetValue(size_t row) const {
  if (IsNull(row)) return Value();  // caller must check IsNull for semantics
  switch (type) {
    case TypeId::kInt32:
      return Value::Int32(i32_data()[row]);
    case TypeId::kInt64:
      return Value::Int64(i64_data()[row]);
    case TypeId::kFloat64:
      return Value::Float64(f64_data()[row]);
    case TypeId::kDate:
      return Value::Date(i32_data()[row]);
    case TypeId::kBool:
      return Value::Bool(i32_data()[row] != 0);
    case TypeId::kString:
      return Value::String(dict->Get(i32_data()[row]));
  }
  return Value();
}

void ColumnVector::SetView(const int32_t* data, size_t rows) {
  ClearKeepCapacity();
  v_i32 = data;
  view_rows = rows;
}

void ColumnVector::SetView(const int64_t* data, size_t rows) {
  ClearKeepCapacity();
  v_i64 = data;
  view_rows = rows;
}

void ColumnVector::SetView(const double* data, size_t rows) {
  ClearKeepCapacity();
  v_f64 = data;
  view_rows = rows;
}

void ColumnVector::Materialize() {
  if (!is_view()) return;
  if (v_i32 != nullptr) i32.assign(v_i32, v_i32 + view_rows);
  if (v_i64 != nullptr) i64.assign(v_i64, v_i64 + view_rows);
  if (v_f64 != nullptr) f64.assign(v_f64, v_f64 + view_rows);
  v_i32 = nullptr;
  v_i64 = nullptr;
  v_f64 = nullptr;
  view_rows = 0;
}

void ColumnVector::AppendFromStorage(const Column& col, uint64_t row) {
  switch (type) {
    case TypeId::kInt64:
      i64.push_back(col.i64()[row]);
      break;
    case TypeId::kFloat64:
      f64.push_back(col.f64()[row]);
      break;
    default:
      i32.push_back(col.i32()[row]);
      break;
  }
  if (!nulls.empty()) nulls.push_back(0);
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t row) {
  BDCC_CHECK(type == other.type);
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type) {
    case TypeId::kInt64:
      i64.push_back(other.i64_data()[row]);
      break;
    case TypeId::kFloat64:
      f64.push_back(other.f64_data()[row]);
      break;
    case TypeId::kString:
      if (dict == nullptr) dict = other.dict;
      if (dict == other.dict) {
        i32.push_back(other.i32_data()[row]);
      } else {
        // Source carries a different dictionary (e.g. expression-generated
        // strings or a delta chunk's private dictionary): fall back to
        // interning by content.
        i32.push_back(InternString(other.GetString(row)));
      }
      break;
    default:
      i32.push_back(other.i32_data()[row]);
      break;
  }
  if (!nulls.empty()) nulls.push_back(0);
}

void ColumnVector::AppendInterning(const ColumnVector& other, size_t row) {
  BDCC_CHECK(type == other.type);
  if (type != TypeId::kString) {
    AppendFrom(other, row);
    return;
  }
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  i32.push_back(InternString(other.GetString(row)));
  if (!nulls.empty()) nulls.push_back(0);
}

int32_t ColumnVector::InternString(std::string_view s) {
  if (dict == nullptr) dict = std::make_shared<Dictionary>();
  int32_t code = dict->Find(s);
  if (code >= 0) return code;
  if (dict.use_count() > 1) {
    // The dictionary is aliased — typically adopted from a scanned batch
    // whose pointer is the table's (or a delta chunk's) own dictionary,
    // which concurrent readers may be using. Adding a genuinely new string
    // would race with them, so swap in a private copy first. GetOrAdd in
    // entry order reassigns identical codes, so codes already appended to
    // this lane stay valid.
    auto copy = std::make_shared<Dictionary>();
    for (int32_t c = 0; c < dict->size(); ++c) copy->GetOrAdd(dict->Get(c));
    dict = std::move(copy);
  }
  return dict->GetOrAdd(s);
}

void ColumnVector::AppendNull() {
  if (nulls.empty()) nulls.assign(size(), 0);
  switch (type) {
    case TypeId::kInt64:
      i64.push_back(0);
      break;
    case TypeId::kFloat64:
      f64.push_back(0.0);
      break;
    default:
      i32.push_back(0);
      break;
  }
  nulls.push_back(1);
}

void ColumnVector::Reserve(size_t rows) {
  switch (type) {
    case TypeId::kInt64:
      i64.reserve(rows);
      break;
    case TypeId::kFloat64:
      f64.reserve(rows);
      break;
    default:
      i32.reserve(rows);
      break;
  }
}

void ColumnVector::ClearKeepCapacity() {
  i32.clear();
  i64.clear();
  f64.clear();
  nulls.clear();
  v_i32 = nullptr;
  v_i64 = nullptr;
  v_f64 = nullptr;
  view_rows = 0;
}

// Gathers run through the tier-dispatched kernels (exec/kernels): the same
// run-collapsing frame as before, with hardware gathers for the scattered
// stretches where the tier provides them.
void ColumnVector::GatherInto(const std::vector<uint32_t>& sel,
                              ColumnVector* out) const {
  out->type = type;
  out->ClearKeepCapacity();
  out->dict = dict;
  size_t n = sel.size();
  switch (type) {
    case TypeId::kInt64:
      out->i64.resize(n);
      kernels::GatherI64(i64_data(), sel.data(), n, out->i64.data());
      break;
    case TypeId::kFloat64:
      out->f64.resize(n);
      kernels::GatherF64(f64_data(), sel.data(), n, out->f64.data());
      break;
    default:
      out->i32.resize(n);
      kernels::GatherI32(i32_data(), sel.data(), n, out->i32.data());
      break;
  }
  if (!nulls.empty()) {
    out->nulls.resize(n);
    kernels::GatherU8(nulls.data(), sel.data(), n, out->nulls.data());
  }
}

ColumnVector ColumnVector::Gather(const std::vector<uint32_t>& sel) const {
  ColumnVector out(type);
  GatherInto(sel, &out);
  return out;
}

namespace {

template <typename T, typename Kernel>
void AppendGatherLane(const T* src, const uint32_t* rows, size_t n,
                      std::vector<T>* dst, Kernel kernel) {
  size_t base = dst->size();
  dst->resize(base + n);
  kernel(src, rows, n, dst->data() + base);
}

}  // namespace

void ColumnVector::AppendGather(const ColumnVector& other,
                                const uint32_t* rows, size_t n) {
  BDCC_CHECK(type == other.type);
  if (n == 0) return;
  if (type == TypeId::kString) {
    if (dict == nullptr) dict = other.dict;
    if (dict != other.dict) {
      // Foreign dictionary: intern by content (slow path, see AppendFrom).
      for (size_t i = 0; i < n; ++i) AppendFrom(other, rows[i]);
      return;
    }
  }
  // NULL-mask alignment first, so lane sizes and mask sizes stay in step.
  if (!other.nulls.empty() || !nulls.empty()) {
    if (nulls.empty()) nulls.assign(size(), 0);
    if (other.nulls.empty()) {
      nulls.resize(nulls.size() + n, 0);
    } else {
      AppendGatherLane(other.nulls.data(), rows, n, &nulls,
                       kernels::GatherU8);
    }
  }
  switch (type) {
    case TypeId::kInt64:
      AppendGatherLane(other.i64_data(), rows, n, &i64, kernels::GatherI64);
      break;
    case TypeId::kFloat64:
      AppendGatherLane(other.f64_data(), rows, n, &f64, kernels::GatherF64);
      break;
    default:
      AppendGatherLane(other.i32_data(), rows, n, &i32, kernels::GatherI32);
      break;
  }
}

void Batch::Compact() {
  if (sel.empty()) {
    for (ColumnVector& c : columns) c.Materialize();
    return;
  }
  for (ColumnVector& c : columns) c = c.Gather(sel);
  sel.clear();
}

void Batch::CompactIfSparse(double min_density) {
  if (has_sel() && density() < min_density) Compact();
}

bool RecycleIntoFreeList(Batch&& batch, const Schema& schema,
                         std::vector<Batch>* free_list, size_t max_size) {
  if (free_list->size() >= max_size) return false;  // keep the list tiny
  if (batch.columns.size() != schema.num_fields()) return false;
  for (size_t c = 0; c < batch.columns.size(); ++c) {
    if (batch.columns[c].type != schema.field(c).type) return false;
  }
  batch.sel.clear();
  free_list->push_back(std::move(batch));
  return true;
}

}  // namespace exec
}  // namespace bdcc
