// Aggregate function specifications and the shared per-group state engine
// used by hash, streaming, and sandwich aggregation.
#ifndef BDCC_EXEC_AGGREGATE_H_
#define BDCC_EXEC_AGGREGATE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

enum class AggKind {
  kSum,
  kCount,       // COUNT(expr): skips NULLs
  kCountStar,   // COUNT(*)
  kAvg,
  kMin,
  kMax,
  kCountDistinct,  // over integer-backed inputs
};

struct AggSpec {
  AggKind kind;
  ExprPtr arg;  // nullptr for kCountStar
  std::string output_name;
};

// Factories.
inline AggSpec AggSum(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kSum, std::move(e), std::move(name)};
}
inline AggSpec AggCount(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kCount, std::move(e), std::move(name)};
}
inline AggSpec AggCountStar(std::string name) {
  return AggSpec{AggKind::kCountStar, nullptr, std::move(name)};
}
inline AggSpec AggAvg(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kAvg, std::move(e), std::move(name)};
}
inline AggSpec AggMin(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kMin, std::move(e), std::move(name)};
}
inline AggSpec AggMax(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kMax, std::move(e), std::move(name)};
}
inline AggSpec AggCountDistinct(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kCountDistinct, std::move(e), std::move(name)};
}

/// \brief Typed per-group aggregate states with vectorized update.
class AggregatorCore {
 public:
  Status Bind(const Schema& input, std::vector<AggSpec> specs);

  const std::vector<Field>& output_fields() const { return output_fields_; }
  size_t num_groups() const { return num_groups_; }

  /// Ensure state exists for groups [0, n).
  void EnsureGroups(size_t n);

  /// Fold `batch` into states; `group_of_row[i]` assigns each row a group.
  Status Update(const Batch& batch, const std::vector<uint32_t>& group_of_row);

  /// Append finalized values of groups [begin, end) to `out` (one
  /// ColumnVector per spec, matching output_fields()).
  void EmitRange(size_t begin, size_t end,
                 std::vector<ColumnVector>* out) const;

  /// Groups mapped to this id in MergeFrom's group_map are skipped —
  /// partition-sliced merges fold only the slice they own.
  static constexpr uint32_t kSkipGroup = 0xFFFFFFFFu;

  /// Fold `other`'s per-group states into this core: other's group g merges
  /// into this core's group `group_map[g]` (kSkipGroup entries are
  /// skipped). Both cores must be bound to the same specs. Used to combine
  /// thread-local partial aggregates after a morsel-parallel consume phase;
  /// read-only on `other`, so several targets may merge slices of one
  /// partial concurrently.
  void MergeFrom(const AggregatorCore& other,
                 const std::vector<uint32_t>& group_map);

  /// Approximate heap bytes (for memory accounting).
  uint64_t MemoryBytes() const;

  /// Drop all group state (sandwich partition reset).
  void Reset();

  /// Keep only the last group's state, renumbered as group 0 (streaming
  /// aggregation carries the open run across batch boundaries).
  void KeepOnlyLastGroup();

 private:
  struct State {
    // One lane per group, per spec (indexed [spec][group]).
    std::vector<double> sum_f64;
    std::vector<int64_t> sum_i64;
    std::vector<int64_t> count;
    std::vector<double> minmax_f64;
    std::vector<int64_t> minmax_i64;
    std::vector<uint8_t> has_value;
    std::vector<std::unordered_set<int64_t>> distinct;
  };

  std::vector<AggSpec> specs_;
  std::vector<TypeId> arg_types_;
  std::vector<Field> output_fields_;
  std::vector<State> states_;  // one per spec
  size_t num_groups_ = 0;
  uint64_t distinct_entries_ = 0;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_AGGREGATE_H_
