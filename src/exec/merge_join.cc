#include "exec/merge_join.h"

namespace bdcc {
namespace exec {

MergeJoin::MergeJoin(OperatorPtr left, OperatorPtr right, std::string left_key,
                     std::string right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)) {}

Status MergeJoin::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(left_->Open(ctx));
  BDCC_RETURN_NOT_OK(right_->Open(ctx));
  BDCC_ASSIGN_OR_RETURN(left_key_idx_, left_->schema().Require(left_key_));
  BDCC_ASSIGN_OR_RETURN(right_key_idx_, right_->schema().Require(right_key_));
  TypeId lt = left_->schema().field(left_key_idx_).type;
  TypeId rt = right_->schema().field(right_key_idx_).type;
  if (lt == TypeId::kString || lt == TypeId::kFloat64 ||
      rt == TypeId::kString || rt == TypeId::kFloat64) {
    return Status::InvalidArgument("merge join requires integer keys");
  }
  schema_ = Schema::Concat(left_->schema(), right_->schema());
  right_batch_ = Batch::Empty();
  right_pos_ = 0;
  right_done_ = false;
  last_right_key_ = INT64_MIN;
  return Status::OK();
}

int64_t MergeJoin::RightKeyAt(size_t row) const {
  const ColumnVector& c = right_batch_.columns[right_key_idx_];
  return c.type == TypeId::kInt64 ? c.i64_data()[row] : c.i32_data()[row];
}

int64_t MergeJoin::LeftKeyAt(const Batch& b, size_t row) const {
  const ColumnVector& c = b.columns[left_key_idx_];
  return c.type == TypeId::kInt64 ? c.i64_data()[row] : c.i32_data()[row];
}

Status MergeJoin::AdvanceRight(ExecContext* ctx) {
  while (!right_done_ && right_pos_ >= right_batch_.num_rows) {
    BDCC_ASSIGN_OR_RETURN(Batch b, right_->Next(ctx));
    if (b.empty()) {
      right_done_ = true;
      break;
    }
    b.Compact();  // the merge cursor walks rows positionally
    right_->Recycle(std::move(right_batch_));  // fully consumed predecessor
    right_batch_ = std::move(b);
    right_pos_ = 0;
  }
  return Status::OK();
}

Result<Batch> MergeJoin::Next(ExecContext* ctx) {
  while (true) {
    BDCC_ASSIGN_OR_RETURN(Batch in, left_->Next(ctx));
    if (in.empty()) return Batch::Empty();
    in.Compact();  // positional row walk below

    Batch out;
    out.group_id = in.group_id;
    for (const Field& f : schema_.fields()) out.columns.emplace_back(f.type);
    size_t left_width = in.columns.size();
    for (size_t c = 0; c < right_->schema().num_fields(); ++c) {
      if (!right_batch_.columns.empty()) {
        out.columns[left_width + c].dict = right_batch_.columns[c].dict;
      }
    }

    for (size_t i = 0; i < in.num_rows; ++i) {
      int64_t lk = LeftKeyAt(in, i);
      // Advance right cursor to the first key >= lk.
      while (true) {
        BDCC_RETURN_NOT_OK(AdvanceRight(ctx));
        if (right_done_ && right_pos_ >= right_batch_.num_rows) break;
        int64_t rk = RightKeyAt(right_pos_);
        if (rk >= lk) {
          BDCC_CHECK_MSG(rk >= last_right_key_, "right input not sorted");
          last_right_key_ = rk;
          break;
        }
        ++right_pos_;
      }
      if (right_pos_ < right_batch_.num_rows && RightKeyAt(right_pos_) == lk) {
        for (size_t c = 0; c < left_width; ++c) {
          out.columns[c].AppendFrom(in.columns[c], i);
        }
        for (size_t c = 0; c < right_batch_.columns.size(); ++c) {
          out.columns[left_width + c].AppendFrom(right_batch_.columns[c],
                                                 right_pos_);
        }
        ++out.num_rows;
      }
    }
    left_->Recycle(std::move(in));  // output rows are copies
    if (out.num_rows > 0) return out;
  }
}

void MergeJoin::Close(ExecContext* ctx) {
  left_->Close(ctx);
  right_->Close(ctx);
}

}  // namespace exec
}  // namespace bdcc
