#include "exec/expr.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"

namespace bdcc {
namespace exec {

namespace {

bool IsNumeric(TypeId t) { return t != TypeId::kString; }

double FetchF64(const ColumnVector& v, size_t row) {
  switch (v.type) {
    case TypeId::kInt64:
      return static_cast<double>(v.i64_data()[row]);
    case TypeId::kFloat64:
      return v.f64_data()[row];
    default:
      return static_cast<double>(v.i32_data()[row]);
  }
}

int64_t FetchI64(const ColumnVector& v, size_t row) {
  switch (v.type) {
    case TypeId::kInt64:
      return v.i64_data()[row];
    case TypeId::kFloat64:
      return static_cast<int64_t>(v.f64_data()[row]);
    default:
      return v.i32_data()[row];
  }
}

// NULL in, NULL out for value-producing expressions: rows where any input
// is NULL get a NULL output (aggregates then skip them, as documented).
void PropagateNulls(const ColumnVector& a, const ColumnVector& b, size_t n,
                    ColumnVector* out) {
  if (!a.HasNulls() && !b.HasNulls()) return;
  out->nulls.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (a.IsNull(i) || b.IsNull(i)) out->nulls[i] = 1;
  }
}

void PropagateNulls(const ColumnVector& a, size_t n, ColumnVector* out) {
  if (!a.HasNulls()) return;
  out->nulls.assign(a.nulls.begin(), a.nulls.begin() + n);
}

// ---------------- Column reference ----------------

class ColExpr : public Expr {
 public:
  explicit ColExpr(std::string name) : name_(std::move(name)) {}

  Status Bind(const Schema& schema) override {
    BDCC_ASSIGN_OR_RETURN(index_, schema.Require(name_));
    type_ = schema.field(index_).type;
    return Status::OK();
  }
  TypeId type() const override { return type_; }
  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_CHECK_MSG(index_ >= 0, "unbound column");
    // Leaves densify: under a selection vector only the referenced column is
    // gathered (late materialization); every non-leaf kernel then runs over
    // dense logical-length vectors.
    if (batch.has_sel()) return batch.columns[index_].Gather(batch.sel);
    // Copy: vectors are cheap at batch granularity and keeps ownership
    // simple. Borrowed (zero-copy view) lanes are materialized here so
    // every non-leaf kernel sees an owned, positionally indexable vector.
    ColumnVector out = batch.columns[index_];
    out.Materialize();
    return out;
  }
  Result<ColumnVector> EvalReusing(const Batch& batch,
                                   ColumnVector&& scratch) const override {
    BDCC_CHECK_MSG(index_ >= 0, "unbound column");
    const ColumnVector& src = batch.columns[index_];
    if (scratch.type != src.type) return Eval(batch);
    if (batch.has_sel()) {
      src.GatherInto(batch.sel, &scratch);
      return std::move(scratch);
    }
    scratch.ClearKeepCapacity();
    scratch.dict = src.dict;
    switch (src.type) {  // typed copy through the view-aware accessors
      case TypeId::kInt64:
        scratch.i64.assign(src.i64_data(), src.i64_data() + src.size());
        break;
      case TypeId::kFloat64:
        scratch.f64.assign(src.f64_data(), src.f64_data() + src.size());
        break;
      default:
        scratch.i32.assign(src.i32_data(), src.i32_data() + src.size());
        break;
    }
    scratch.nulls.assign(src.nulls.begin(), src.nulls.end());
    return std::move(scratch);
  }
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  int index_ = -1;
  TypeId type_ = TypeId::kInt64;
};

// ---------------- Literal ----------------

class LitExpr : public Expr {
 public:
  explicit LitExpr(Value v) : value_(std::move(v)) {}

  Status Bind(const Schema&) override { return Status::OK(); }
  TypeId type() const override { return value_.type(); }
  Result<ColumnVector> Eval(const Batch& batch) const override {
    ColumnVector out(value_.type());
    out.Reserve(batch.num_rows);
    for (size_t i = 0; i < batch.num_rows; ++i) {
      switch (value_.type()) {
        case TypeId::kFloat64:
          out.f64.push_back(value_.AsDouble());
          break;
        case TypeId::kInt64:
          out.i64.push_back(value_.AsInt64());
          break;
        case TypeId::kString: {
          if (out.dict == nullptr) out.dict = std::make_shared<Dictionary>();
          out.i32.push_back(out.dict->GetOrAdd(value_.AsString()));
          break;
        }
        default:
          out.i32.push_back(static_cast<int32_t>(value_.AsInt64()));
          break;
      }
    }
    return out;
  }
  std::string ToString() const override { return "'" + value_.ToString() + "'"; }

  const Value& value() const { return value_; }

 private:
  Value value_;
};

// ---------------- Arithmetic ----------------

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(a_->Bind(schema));
    BDCC_RETURN_NOT_OK(b_->Bind(schema));
    if (!IsNumeric(a_->type()) || !IsNumeric(b_->type())) {
      return Status::InvalidArgument("arithmetic over non-numeric operand");
    }
    type_ = (a_->type() == TypeId::kFloat64 || b_->type() == TypeId::kFloat64)
                ? TypeId::kFloat64
                : TypeId::kInt64;
    return Status::OK();
  }
  TypeId type() const override { return type_; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    BDCC_ASSIGN_OR_RETURN(ColumnVector vb, b_->Eval(batch));
    ColumnVector out(type_);
    out.Reserve(batch.num_rows);
    if (type_ == TypeId::kFloat64) {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        double x = FetchF64(va, i), y = FetchF64(vb, i);
        out.f64.push_back(Apply(x, y));
      }
    } else {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        int64_t x = FetchI64(va, i), y = FetchI64(vb, i);
        out.i64.push_back(Apply(x, y));
      }
    }
    PropagateNulls(va, vb, batch.num_rows, &out);
    return out;
  }
  std::string ToString() const override {
    const char* ops[] = {"+", "-", "*", "/"};
    return "(" + a_->ToString() + ops[static_cast<int>(op_)] + b_->ToString() +
           ")";
  }

 private:
  template <typename T>
  T Apply(T x, T y) const {
    switch (op_) {
      case ArithOp::kAdd:
        return x + y;
      case ArithOp::kSub:
        return x - y;
      case ArithOp::kMul:
        return x * y;
      case ArithOp::kDiv:
        return y == T{} ? T{} : x / y;
    }
    return T{};
  }

  ArithOp op_;
  ExprPtr a_, b_;
  TypeId type_ = TypeId::kInt64;
};

// ---------------- Comparison ----------------

class CmpExpr : public Expr {
 public:
  CmpExpr(CmpOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(a_->Bind(schema));
    BDCC_RETURN_NOT_OK(b_->Bind(schema));
    bool a_str = a_->type() == TypeId::kString;
    bool b_str = b_->type() == TypeId::kString;
    if (a_str != b_str) {
      return Status::InvalidArgument("comparison mixes string / non-string");
    }
    // String = constant: remember the literal so Eval can bind it to a
    // dictionary code once per batch instead of materializing it per row.
    str_lit_ = nullptr;
    if (a_str && (op_ == CmpOp::kEq || op_ == CmpOp::kNe)) {
      if (auto* lb = dynamic_cast<const LitExpr*>(b_.get())) {
        str_lit_ = lb;
        str_col_ = a_;
      } else if (auto* la = dynamic_cast<const LitExpr*>(a_.get())) {
        str_lit_ = la;
        str_col_ = b_;
      }
    }
    return Status::OK();
  }
  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    if (str_lit_ != nullptr) {
      BDCC_ASSIGN_OR_RETURN(ColumnVector va, str_col_->Eval(batch));
      if (va.dict != nullptr) {
        // One dictionary lookup per batch; absent constant -> code -1,
        // which matches no row.
        int32_t code = va.dict->Find(str_lit_->value().AsString());
        ColumnVector out(TypeId::kBool);
        out.i32.resize(batch.num_rows);
        for (size_t i = 0; i < batch.num_rows; ++i) {
          bool eq = code >= 0 && va.i32[i] == code;
          out.i32[i] = (op_ == CmpOp::kEq) ? eq : !eq;
        }
        if (va.HasNulls()) {
          // NULL comparisons are UNKNOWN: value 0 (never passes a filter)
          // plus a null mark so NOT does not turn them into TRUE.
          out.nulls.assign(batch.num_rows, 0);
          for (size_t i = 0; i < batch.num_rows; ++i) {
            if (va.nulls[i]) {
              out.i32[i] = 0;
              out.nulls[i] = 1;
            }
          }
        }
        return out;
      }
    }
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    BDCC_ASSIGN_OR_RETURN(ColumnVector vb, b_->Eval(batch));
    ColumnVector out(TypeId::kBool);
    out.i32.resize(batch.num_rows);
    bool has_nulls = va.HasNulls() || vb.HasNulls();
    if (va.type == TypeId::kString) {
      // Same dictionary: equality can compare codes directly.
      if ((op_ == CmpOp::kEq || op_ == CmpOp::kNe) && va.dict == vb.dict &&
          va.dict != nullptr) {
        for (size_t i = 0; i < batch.num_rows; ++i) {
          bool eq = va.i32[i] == vb.i32[i];
          out.i32[i] = (op_ == CmpOp::kEq) ? eq : !eq;
        }
      } else {
        for (size_t i = 0; i < batch.num_rows; ++i) {
          if (has_nulls && (va.IsNull(i) || vb.IsNull(i))) {
            out.i32[i] = 0;
            continue;
          }
          int c = va.GetString(i).compare(vb.GetString(i));
          out.i32[i] = Decide(c);
        }
      }
    } else if (va.type == TypeId::kFloat64 || vb.type == TypeId::kFloat64) {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        double x = FetchF64(va, i), y = FetchF64(vb, i);
        out.i32[i] = Decide(x < y ? -1 : (x == y ? 0 : 1));
      }
    } else {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        int64_t x = FetchI64(va, i), y = FetchI64(vb, i);
        out.i32[i] = Decide(x < y ? -1 : (x == y ? 0 : 1));
      }
    }
    if (has_nulls) {
      out.nulls.assign(batch.num_rows, 0);
      for (size_t i = 0; i < batch.num_rows; ++i) {
        if (va.IsNull(i) || vb.IsNull(i)) {
          out.i32[i] = 0;
          out.nulls[i] = 1;
        }
      }
    }
    return out;
  }
  std::string ToString() const override {
    const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
    return a_->ToString() + ops[static_cast<int>(op_)] + b_->ToString();
  }

 private:
  int Decide(int cmp) const {
    switch (op_) {
      case CmpOp::kEq:
        return cmp == 0;
      case CmpOp::kNe:
        return cmp != 0;
      case CmpOp::kLt:
        return cmp < 0;
      case CmpOp::kLe:
        return cmp <= 0;
      case CmpOp::kGt:
        return cmp > 0;
      case CmpOp::kGe:
        return cmp >= 0;
    }
    return 0;
  }

  CmpOp op_;
  ExprPtr a_, b_;
  // Set at Bind for string-vs-literal equality (see Bind).
  const LitExpr* str_lit_ = nullptr;
  ExprPtr str_col_;
};

// ---------------- Boolean connectives ----------------

enum class BoolOp { kAnd, kOr, kNot };

class BoolExpr : public Expr {
 public:
  BoolExpr(BoolOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(a_->Bind(schema));
    if (b_) BDCC_RETURN_NOT_OK(b_->Bind(schema));
    return Status::OK();
  }
  TypeId type() const override { return TypeId::kBool; }

  // Three-valued logic over (value, null) pairs. Predicates encode UNKNOWN
  // as value 0 + null mark, so filters (which test the value only) drop
  // UNKNOWN rows at any nesting depth; the null mark exists so NOT and OR
  // do not promote UNKNOWN to TRUE.
  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    ColumnVector out(TypeId::kBool);
    out.i32.resize(batch.num_rows);
    if (op_ == BoolOp::kNot) {
      // NOT TRUE = FALSE, NOT FALSE = TRUE, NOT UNKNOWN = UNKNOWN.
      for (size_t i = 0; i < batch.num_rows; ++i) {
        out.i32[i] = !va.i32[i] && !va.IsNull(i);
      }
      out.nulls = std::move(va.nulls);
      return out;
    }
    BDCC_ASSIGN_OR_RETURN(ColumnVector vb, b_->Eval(batch));
    bool has_nulls = va.HasNulls() || vb.HasNulls();
    if (op_ == BoolOp::kAnd) {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        out.i32[i] = va.i32[i] && vb.i32[i];
      }
      if (has_nulls) {
        // FALSE AND UNKNOWN = FALSE; TRUE/UNKNOWN AND UNKNOWN = UNKNOWN.
        out.nulls.assign(batch.num_rows, 0);
        for (size_t i = 0; i < batch.num_rows; ++i) {
          bool a_false = !va.i32[i] && !va.IsNull(i);
          bool b_false = !vb.i32[i] && !vb.IsNull(i);
          out.nulls[i] =
              (va.IsNull(i) || vb.IsNull(i)) && !a_false && !b_false;
        }
      }
    } else {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        out.i32[i] = va.i32[i] || vb.i32[i];
      }
      if (has_nulls) {
        // TRUE OR UNKNOWN = TRUE; FALSE/UNKNOWN OR UNKNOWN = UNKNOWN.
        out.nulls.assign(batch.num_rows, 0);
        for (size_t i = 0; i < batch.num_rows; ++i) {
          out.nulls[i] = !out.i32[i] && (va.IsNull(i) || vb.IsNull(i));
        }
      }
    }
    return out;
  }
  std::string ToString() const override {
    if (op_ == BoolOp::kNot) return "NOT(" + a_->ToString() + ")";
    return "(" + a_->ToString() +
           (op_ == BoolOp::kAnd ? " AND " : " OR ") + b_->ToString() + ")";
  }

 private:
  BoolOp op_;
  ExprPtr a_, b_;
};

// ---------------- LIKE ----------------

class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr a, std::string pattern, bool negate)
      : a_(std::move(a)), pattern_(std::move(pattern)), negate_(negate) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(a_->Bind(schema));
    if (a_->type() != TypeId::kString) {
      return Status::InvalidArgument("LIKE over non-string");
    }
    return Status::OK();
  }
  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    ColumnVector out(TypeId::kBool);
    out.i32.resize(batch.num_rows);
    if (va.HasNulls()) out.nulls.assign(batch.num_rows, 0);
    // Memoize per-dictionary-code verdicts: dictionaries repeat heavily.
    std::unordered_map<int32_t, bool> memo;
    for (size_t i = 0; i < batch.num_rows; ++i) {
      if (va.IsNull(i)) {
        out.i32[i] = 0;  // NULL [NOT] LIKE ... is UNKNOWN
        out.nulls[i] = 1;
        continue;
      }
      int32_t code = va.i32[i];
      auto it = memo.find(code);
      bool match;
      if (it != memo.end()) {
        match = it->second;
      } else {
        match = LikeMatch(va.dict->Get(code), pattern_);
        memo.emplace(code, match);
      }
      out.i32[i] = negate_ ? !match : match;
    }
    return out;
  }
  std::string ToString() const override {
    return a_->ToString() + (negate_ ? " NOT LIKE '" : " LIKE '") + pattern_ +
           "'";
  }

 private:
  ExprPtr a_;
  std::string pattern_;
  bool negate_;
};

// ---------------- IN lists ----------------

class InStringsExpr : public Expr {
 public:
  InStringsExpr(ExprPtr a, std::vector<std::string> values)
      : a_(std::move(a)), values_(values.begin(), values.end()) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(a_->Bind(schema));
    if (a_->type() != TypeId::kString) {
      return Status::InvalidArgument("IN (strings) over non-string");
    }
    return Status::OK();
  }
  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    ColumnVector out(TypeId::kBool);
    out.i32.resize(batch.num_rows);
    if (va.dict != nullptr) {
      // Bind the IN-list to dictionary codes once per batch: per-row work
      // becomes an integer-set probe instead of a string materialization.
      std::unordered_set<int32_t> codes;
      for (const std::string& v : values_) {
        int32_t c = va.dict->Find(v);
        if (c >= 0) codes.insert(c);
      }
      if (va.HasNulls()) out.nulls.assign(batch.num_rows, 0);
      for (size_t i = 0; i < batch.num_rows; ++i) {
        if (va.IsNull(i)) {
          out.i32[i] = 0;  // NULL IN (...) is UNKNOWN
          out.nulls[i] = 1;
          continue;
        }
        out.i32[i] = codes.count(va.i32[i]) > 0;
      }
      return out;
    }
    if (va.HasNulls()) out.nulls.assign(batch.num_rows, 0);
    for (size_t i = 0; i < batch.num_rows; ++i) {
      if (va.IsNull(i)) {
        out.i32[i] = 0;
        out.nulls[i] = 1;
        continue;
      }
      out.i32[i] = values_.count(std::string(va.GetString(i))) > 0;
    }
    return out;
  }
  std::string ToString() const override { return a_->ToString() + " IN (...)"; }

 private:
  ExprPtr a_;
  std::unordered_set<std::string> values_;
};

class InIntsExpr : public Expr {
 public:
  InIntsExpr(ExprPtr a, std::vector<int64_t> values)
      : a_(std::move(a)), values_(values.begin(), values.end()) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(a_->Bind(schema));
    if (a_->type() == TypeId::kString) {
      return Status::InvalidArgument("IN (ints) over string");
    }
    return Status::OK();
  }
  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    ColumnVector out(TypeId::kBool);
    out.i32.resize(batch.num_rows);
    if (va.HasNulls()) out.nulls.assign(batch.num_rows, 0);
    for (size_t i = 0; i < batch.num_rows; ++i) {
      if (va.IsNull(i)) {
        out.i32[i] = 0;  // NULL IN (...) is UNKNOWN
        out.nulls[i] = 1;
        continue;
      }
      out.i32[i] = values_.count(FetchI64(va, i)) > 0;
    }
    return out;
  }
  std::string ToString() const override { return a_->ToString() + " IN (...)"; }

 private:
  ExprPtr a_;
  std::unordered_set<int64_t> values_;
};

// ---------------- CASE WHEN ----------------

class CaseExpr : public Expr {
 public:
  CaseExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : cond_(std::move(cond)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(cond_->Bind(schema));
    BDCC_RETURN_NOT_OK(then_->Bind(schema));
    BDCC_RETURN_NOT_OK(else_->Bind(schema));
    type_ = then_->type();
    if (type_ == TypeId::kInt32 || type_ == TypeId::kBool) type_ = TypeId::kInt64;
    if (then_->type() == TypeId::kFloat64 || else_->type() == TypeId::kFloat64) {
      type_ = TypeId::kFloat64;
    }
    if (then_->type() == TypeId::kString || else_->type() == TypeId::kString) {
      return Status::NotImplemented("CASE over strings");
    }
    return Status::OK();
  }
  TypeId type() const override { return type_; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector vc, cond_->Eval(batch));
    BDCC_ASSIGN_OR_RETURN(ColumnVector vt, then_->Eval(batch));
    BDCC_ASSIGN_OR_RETURN(ColumnVector ve, else_->Eval(batch));
    ColumnVector out(type_);
    out.Reserve(batch.num_rows);
    if (type_ == TypeId::kFloat64) {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        out.f64.push_back(vc.i32[i] ? FetchF64(vt, i) : FetchF64(ve, i));
      }
    } else {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        out.i64.push_back(vc.i32[i] ? FetchI64(vt, i) : FetchI64(ve, i));
      }
    }
    if (vt.HasNulls() || ve.HasNulls()) {
      out.nulls.assign(batch.num_rows, 0);
      for (size_t i = 0; i < batch.num_rows; ++i) {
        const ColumnVector& chosen = vc.i32[i] ? vt : ve;
        if (chosen.IsNull(i)) out.nulls[i] = 1;
      }
    }
    return out;
  }
  std::string ToString() const override {
    return "CASE WHEN " + cond_->ToString() + " THEN " + then_->ToString() +
           " ELSE " + else_->ToString() + " END";
  }

 private:
  ExprPtr cond_, then_, else_;
  TypeId type_ = TypeId::kInt64;
};

// ---------------- Date / string helpers ----------------

class YearExpr : public Expr {
 public:
  explicit YearExpr(ExprPtr a) : a_(std::move(a)) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(a_->Bind(schema));
    if (a_->type() != TypeId::kDate) {
      return Status::InvalidArgument("YEAR over non-date");
    }
    return Status::OK();
  }
  TypeId type() const override { return TypeId::kInt32; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    ColumnVector out(TypeId::kInt32);
    out.i32.resize(batch.num_rows);
    for (size_t i = 0; i < batch.num_rows; ++i) {
      int y, m, d;
      CivilFromDays(va.i32[i], &y, &m, &d);
      out.i32[i] = y;
    }
    PropagateNulls(va, batch.num_rows, &out);
    return out;
  }
  std::string ToString() const override {
    return "YEAR(" + a_->ToString() + ")";
  }

 private:
  ExprPtr a_;
};

class StrPrefixExpr : public Expr {
 public:
  StrPrefixExpr(ExprPtr a, int len) : a_(std::move(a)), len_(len) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(a_->Bind(schema));
    if (a_->type() != TypeId::kString) {
      return Status::InvalidArgument("prefix over non-string");
    }
    return Status::OK();
  }
  TypeId type() const override { return TypeId::kString; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    ColumnVector out(TypeId::kString);
    out.dict = std::make_shared<Dictionary>();
    out.i32.reserve(batch.num_rows);
    for (size_t i = 0; i < batch.num_rows; ++i) {
      if (va.IsNull(i)) {
        out.i32.push_back(out.dict->GetOrAdd(""));
        continue;
      }
      std::string_view s = va.GetString(i);
      out.i32.push_back(out.dict->GetOrAdd(
          s.substr(0, std::min<size_t>(s.size(), static_cast<size_t>(len_)))));
    }
    PropagateNulls(va, batch.num_rows, &out);
    return out;
  }
  std::string ToString() const override {
    return "PREFIX(" + a_->ToString() + "," + std::to_string(len_) + ")";
  }

 private:
  ExprPtr a_;
  int len_;
};

class IsNullExpr : public Expr {
 public:
  explicit IsNullExpr(ExprPtr a) : a_(std::move(a)) {}

  Status Bind(const Schema& schema) override { return a_->Bind(schema); }
  TypeId type() const override { return TypeId::kBool; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    ColumnVector out(TypeId::kBool);
    out.i32.resize(batch.num_rows);
    for (size_t i = 0; i < batch.num_rows; ++i) {
      out.i32[i] = va.IsNull(i) ? 1 : 0;
    }
    return out;
  }
  std::string ToString() const override {
    return a_->ToString() + " IS NULL";
  }

 private:
  ExprPtr a_;
};

// coalesce(a, b): a when non-null else b. Output type follows a.
class CoalesceExpr : public Expr {
 public:
  CoalesceExpr(ExprPtr a, ExprPtr b) : a_(std::move(a)), b_(std::move(b)) {}

  Status Bind(const Schema& schema) override {
    BDCC_RETURN_NOT_OK(a_->Bind(schema));
    BDCC_RETURN_NOT_OK(b_->Bind(schema));
    type_ = a_->type();
    return Status::OK();
  }
  TypeId type() const override { return type_; }

  Result<ColumnVector> Eval(const Batch& batch) const override {
    BDCC_ASSIGN_OR_RETURN(ColumnVector va, a_->Eval(batch));
    if (!va.HasNulls()) return va;
    BDCC_ASSIGN_OR_RETURN(ColumnVector vb, b_->Eval(batch));
    ColumnVector out(type_);
    out.dict = va.dict;
    out.Reserve(batch.num_rows);
    for (size_t i = 0; i < batch.num_rows; ++i) {
      if (va.IsNull(i)) {
        out.AppendFrom(vb, i);
      } else {
        out.AppendFrom(va, i);
      }
    }
    return out;
  }
  std::string ToString() const override {
    return "COALESCE(" + a_->ToString() + "," + b_->ToString() + ")";
  }

 private:
  ExprPtr a_, b_;
  TypeId type_ = TypeId::kInt64;
};

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Greedy two-pointer with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

ExprPtr Col(std::string name) { return std::make_shared<ColExpr>(std::move(name)); }
ExprPtr Lit(Value v) { return std::make_shared<LitExpr>(std::move(v)); }
ExprPtr LitI64(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr LitF64(double v) { return Lit(Value::Float64(v)); }
ExprPtr LitStr(std::string_view s) { return Lit(Value::String(s)); }
ExprPtr LitDate(std::string_view s) { return Lit(Value::Date(ParseDate(s))); }

ExprPtr Arith(ArithOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(op, std::move(a), std::move(b));
}
ExprPtr Cmp(CmpOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(op, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<BoolExpr>(BoolOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<BoolExpr>(BoolOp::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) {
  return std::make_shared<BoolExpr>(BoolOp::kNot, std::move(a), nullptr);
}
ExprPtr AndAll(std::vector<ExprPtr> exprs) {
  ExprPtr out;
  for (ExprPtr& e : exprs) {
    if (!e) continue;
    out = out ? And(out, e) : e;
  }
  BDCC_CHECK_MSG(out != nullptr, "AndAll needs at least one expression");
  return out;
}
ExprPtr Like(ExprPtr a, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(a), std::move(pattern), false);
}
ExprPtr NotLike(ExprPtr a, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(a), std::move(pattern), true);
}
ExprPtr InStrings(ExprPtr a, std::vector<std::string> values) {
  return std::make_shared<InStringsExpr>(std::move(a), std::move(values));
}
ExprPtr InInts(ExprPtr a, std::vector<int64_t> values) {
  return std::make_shared<InIntsExpr>(std::move(a), std::move(values));
}
ExprPtr Between(ExprPtr a, ExprPtr lo, ExprPtr hi) {
  ExprPtr a_again = a;  // shared node; Bind is idempotent per schema
  return And(Ge(std::move(a), std::move(lo)),
             Le(std::move(a_again), std::move(hi)));
}
ExprPtr CaseWhen(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  return std::make_shared<CaseExpr>(std::move(cond), std::move(then_expr),
                                    std::move(else_expr));
}
ExprPtr Year(ExprPtr date_expr) {
  return std::make_shared<YearExpr>(std::move(date_expr));
}
ExprPtr StrPrefix(ExprPtr a, int len) {
  return std::make_shared<StrPrefixExpr>(std::move(a), len);
}
ExprPtr IsNull(ExprPtr a) { return std::make_shared<IsNullExpr>(std::move(a)); }
ExprPtr Coalesce(ExprPtr a, ExprPtr b) {
  return std::make_shared<CoalesceExpr>(std::move(a), std::move(b));
}

}  // namespace exec
}  // namespace bdcc
