// Morsels: the work units of parallel scans.
//
// A morsel plan is computed once at plan time and shared (read-only) by all
// scan clones of a pipeline. Each clone walks a deterministic strided subset
// (clone i takes morsels i, i+stride, i+2*stride, ...), so the rows a clone
// processes — and therefore per-clone aggregate partials — do not depend on
// runtime scheduling. Morsels are aligned to zone boundaries for plain
// tables and to GroupRange boundaries for BDCC tables, so zone skipping and
// group pruning compose with parallel execution.
#ifndef BDCC_EXEC_MORSEL_H_
#define BDCC_EXEC_MORSEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bdcc/scatter_scan.h"

namespace bdcc {
namespace exec {

/// Half-open span. For plain scans the units are physical rows; for BDCC
/// scans they are indices into the scan's GroupRange vector.
struct Morsel {
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// \brief Immutable, shareable list of morsels plus the strided view a
/// single scan clone walks.
struct MorselSet {
  std::shared_ptr<const std::vector<Morsel>> morsels;
  size_t offset = 0;  // first morsel index for this clone
  size_t stride = 1;  // step between this clone's morsels

  bool valid() const { return morsels != nullptr; }
};

/// Row morsels of ~`target_rows`, aligned up to multiples of `zone_rows`
/// (pass 0 when the table has no zone maps).
std::vector<Morsel> MakeRowMorsels(uint64_t num_rows, uint32_t zone_rows,
                                   uint64_t target_rows);

/// GroupRange-index morsels: consecutive ranges are packed until a morsel
/// covers ~`target_rows` physical rows. Never splits a range.
std::vector<Morsel> MakeRangeMorsels(const std::vector<GroupRange>& ranges,
                                     uint64_t target_rows);

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_MORSEL_H_
