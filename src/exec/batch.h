// Vectorized execution batches (Vectorwise-style batch-at-a-time flow).
#ifndef BDCC_EXEC_BATCH_H_
#define BDCC_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/types.h"

namespace bdcc {
namespace exec {

struct Field {
  std::string name;
  TypeId type = TypeId::kInt64;
};

/// \brief Ordered, named, typed column list describing operator output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of `name` or -1.
  int IndexOf(const std::string& name) const;
  /// Index of `name` or error.
  Result<int> Require(const std::string& name) const;

  void Append(Field f) { fields_.push_back(std::move(f)); }
  /// Concatenation (for join outputs).
  static Schema Concat(const Schema& a, const Schema& b);

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// \brief One column's worth of vectorized values.
///
/// Lanes mirror storage::Column; strings carry dictionary codes in the i32
/// lane plus a shared Dictionary. An optional null mask (1 = NULL) supports
/// outer-join results.
///
/// Zero-copy views: a vector may instead *borrow* a storage lane (scan
/// chunks the zone maps prove fully-passing are emitted without copying).
/// View vectors never carry nulls and are read-only; readers must go
/// through the `*_data()` accessors (or row helpers built on them), and
/// writers/materializing operators call Materialize() (Batch::Compact does
/// so when no selection is attached). The borrowed lane must outlive the
/// batch — scans borrow from the scanned Table, which outlives the query.
struct ColumnVector {
  TypeId type = TypeId::kInt64;
  std::vector<int32_t> i32;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::shared_ptr<Dictionary> dict;
  std::vector<uint8_t> nulls;  // empty = no nulls

  // Borrowed-lane view state (at most one pointer set; see class comment).
  const int32_t* v_i32 = nullptr;
  const int64_t* v_i64 = nullptr;
  const double* v_f64 = nullptr;
  size_t view_rows = 0;

  explicit ColumnVector(TypeId t = TypeId::kInt64) : type(t) {}

  bool is_view() const {
    return v_i32 != nullptr || v_i64 != nullptr || v_f64 != nullptr;
  }
  /// Borrow `rows` values (the i32 overload also serves string code lanes).
  void SetView(const int32_t* data, size_t rows);
  void SetView(const int64_t* data, size_t rows);
  void SetView(const double* data, size_t rows);
  /// Copy a borrowed lane into the owned vectors (no-op when not a view).
  void Materialize();

  /// Typed lane base pointers, view-aware — the only valid way to read a
  /// lane that might be borrowed.
  const int32_t* i32_data() const { return v_i32 != nullptr ? v_i32 : i32.data(); }
  const int64_t* i64_data() const { return v_i64 != nullptr ? v_i64 : i64.data(); }
  const double* f64_data() const { return v_f64 != nullptr ? v_f64 : f64.data(); }

  size_t size() const {
    if (is_view()) return view_rows;
    switch (type) {
      case TypeId::kInt64:
        return i64.size();
      case TypeId::kFloat64:
        return f64.size();
      default:
        return i32.size();
    }
  }
  bool HasNulls() const { return !nulls.empty(); }
  bool IsNull(size_t row) const { return !nulls.empty() && nulls[row]; }

  /// Generic accessor (strings materialized through the dictionary).
  Value GetValue(size_t row) const;
  std::string_view GetString(size_t row) const {
    return dict->Get(i32_data()[row]);
  }

  /// Append a (non-null) value from a storage column.
  void AppendFromStorage(const Column& col, uint64_t row);
  /// Append row `row` of `other` (same type). String vectors must share the
  /// source dictionary (fast path used inside joins).
  void AppendFrom(const ColumnVector& other, size_t row);
  /// Append row `row` of `other`, interning strings into this vector's own
  /// dictionary. Safe across inputs whose dictionaries differ per batch
  /// (e.g. expression-generated strings); used by materializing operators.
  void AppendInterning(const ColumnVector& other, size_t row);
  /// Intern `s` into this vector's dictionary and return its code. Never
  /// writes to an aliased dictionary (a scanned batch's pointer is the
  /// table's own, possibly read concurrently): adding a new string to a
  /// shared dictionary first swaps in a private code-preserving copy.
  int32_t InternString(std::string_view s);
  /// Append an explicit NULL (lane gets a zero placeholder).
  void AppendNull();

  void Reserve(size_t rows);
  /// Drop all values (and the null mask) but keep lane capacity and the
  /// dictionary pointer — buffer-recycling support (see Operator::Recycle).
  void ClearKeepCapacity();
  /// Rows selected by `sel` (indices into this vector). Fixed-width lanes
  /// take a fast path: contiguous ascending runs become one memcpy and
  /// scattered stretches a 4-wide unrolled gather.
  ColumnVector Gather(const std::vector<uint32_t>& sel) const;
  /// Append rows[0..n) of `other` (same type) to this vector: the bulk,
  /// typed-loop counterpart of n AppendFrom calls. String vectors adopt
  /// `other`'s dictionary when unset, copy codes when it matches, and fall
  /// back to per-row interning otherwise.
  void AppendGather(const ColumnVector& other, const uint32_t* rows, size_t n);
  /// Gather into `out`, reusing its lane allocations (cleared first) —
  /// the allocation-free flavour behind Operator::Recycle paths.
  void GatherInto(const std::vector<uint32_t>& sel, ColumnVector* out) const;
};

/// \brief A batch of rows flowing between operators.
///
/// Selection-vector contract (late materialization): when `sel` is
/// non-empty it holds, in emission order, the *physical* indices of the
/// selected rows within `columns`, and `num_rows == sel.size()` counts the
/// selected (logical) rows only — the columns keep their full physical
/// length. Producers (Scan predicate pushdown, Filter) attach `sel` instead
/// of compacting so downstream operators touch only the lanes they read.
/// Consumers must either iterate logical rows through RowAt()/sel-aware
/// helpers (KeyEncoder, hash join/agg) or call Compact() up front
/// (materializing operators: sort, merge, streaming). See
/// src/exec/README.md for the full contract.
struct Batch {
  std::vector<ColumnVector> columns;
  size_t num_rows = 0;
  /// Selected physical row indices; empty = identity (all physical rows).
  std::vector<uint32_t> sel;
  /// Sandwich group tag: >= 0 when the producing scan emits group-aligned
  /// batches (a batch never spans two groups); -1 otherwise.
  int64_t group_id = -1;

  bool empty() const { return num_rows == 0; }
  static Batch Empty() { return Batch{}; }

  bool has_sel() const { return !sel.empty(); }
  /// Physical index of logical row `i`.
  uint32_t RowAt(size_t i) const {
    return sel.empty() ? static_cast<uint32_t>(i) : sel[i];
  }
  /// Rows physically held by the columns (>= num_rows under a selection).
  size_t physical_rows() const {
    return columns.empty() ? num_rows : columns[0].size();
  }
  /// Selected fraction of the physical rows (1.0 without a selection).
  double density() const {
    size_t phys = physical_rows();
    return (sel.empty() || phys == 0)
               ? 1.0
               : static_cast<double>(num_rows) / static_cast<double>(phys);
  }
  /// Materialize the selection: gather every column down to the selected
  /// rows and drop `sel`. Without a selection, materializes any borrowed
  /// (zero-copy view) columns instead — after Compact() every lane is owned
  /// and positionally walkable.
  void Compact();
  /// Compact only when density() < `min_density` (materializing-boundary
  /// policy: keep dense selections lazy, squeeze sparse ones).
  void CompactIfSparse(double min_density);
};

/// Accept `batch` onto a small free list iff it matches `schema` column for
/// column — the shared validator behind every Operator::Recycle free list
/// (scans, HashJoin, Project). Returns false (dropping the batch) when the
/// list is full or the shape mismatches; clears any selection on accept.
bool RecycleIntoFreeList(Batch&& batch, const Schema& schema,
                         std::vector<Batch>* free_list,
                         size_t max_size = 2);

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_BATCH_H_
