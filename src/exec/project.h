// Expression projection (also used for column renaming).
#ifndef BDCC_EXEC_PROJECT_H_
#define BDCC_EXEC_PROJECT_H_

#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

/// \brief Computes named expressions over its child's batches.
class Project : public Operator {
 public:
  struct NamedExpr {
    std::string name;
    ExprPtr expr;
  };

  Project(OperatorPtr child, std::vector<NamedExpr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}

  /// Identity projection that renames columns: (from, to) pairs; columns
  /// not listed are dropped.
  static OperatorPtr Rename(
      OperatorPtr child,
      const std::vector<std::pair<std::string, std::string>>& renames);

  /// Keep only the listed columns (by name).
  static OperatorPtr Keep(OperatorPtr child,
                          const std::vector<std::string>& columns);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override {
    child_->Close(ctx);
    recycled_.clear();
  }
  /// Fully-consumed output batches come back here; their lanes are reused
  /// for the next batch's expression outputs (column leaves gather into
  /// them via Expr::EvalReusing).
  void Recycle(Batch&& batch) override;

 private:
  OperatorPtr child_;
  std::vector<NamedExpr> exprs_;
  Schema schema_;
  std::vector<Batch> recycled_;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_PROJECT_H_
