#include "exec/stream_agg.h"

namespace bdcc {
namespace exec {

StreamAgg::StreamAgg(OperatorPtr child, std::vector<std::string> group_cols,
                     std::vector<AggSpec> specs)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      spec_templates_(std::move(specs)) {}

Status StreamAgg::Open(ExecContext* ctx) {
  if (group_cols_.empty()) {
    return Status::InvalidArgument("StreamAgg requires group columns");
  }
  BDCC_RETURN_NOT_OK(child_->Open(ctx));
  const Schema& in = child_->schema();
  BDCC_RETURN_NOT_OK(core_.Bind(in, spec_templates_));
  BDCC_RETURN_NOT_OK(encoder_.Bind(in, group_cols_));

  std::vector<Field> fields;
  current_key_row_.clear();
  pending_.clear();
  for (const std::string& g : group_cols_) {
    BDCC_ASSIGN_OR_RETURN(int idx, in.Require(g));
    fields.push_back(in.field(idx));
    current_key_row_.emplace_back(in.field(idx).type);
    pending_.emplace_back(in.field(idx).type);
  }
  for (const Field& f : core_.output_fields()) {
    fields.push_back(f);
    pending_.emplace_back(f.type);
  }
  schema_ = Schema(std::move(fields));
  have_current_ = false;
  input_done_ = false;
  pending_rows_ = 0;
  return Status::OK();
}

void StreamAgg::FlushCurrentGroup() {
  // EOS flush: emit the carried group (group 0 of the core).
  if (!have_current_) return;
  for (size_t k = 0; k < current_key_row_.size(); ++k) {
    pending_[k].AppendInterning(current_key_row_[k], 0);
  }
  std::vector<ColumnVector> agg_out;
  core_.EmitRange(0, 1, &agg_out);
  for (size_t a = 0; a < agg_out.size(); ++a) {
    pending_[current_key_row_.size() + a].AppendFrom(agg_out[a], 0);
  }
  ++pending_rows_;
  core_.Reset();
  have_current_ = false;
}

Result<Batch> StreamAgg::Next(ExecContext* ctx) {
  while (!input_done_ && pending_rows_ < ctx->batch_size()) {
    BDCC_ASSIGN_OR_RETURN(Batch b, child_->Next(ctx));
    if (b.empty()) {
      input_done_ = true;
      FlushCurrentGroup();
      break;
    }
    // Run detection walks rows positionally; materialize any selection.
    b.Compact();
    // Encode keys once, assign run-local group ids (group 0 = carried run).
    std::vector<uint8_t> valid;
    std::vector<int64_t> ikeys;
    std::vector<std::string> bkeys;
    bool int_path = encoder_.int_path();
    if (int_path) {
      encoder_.EncodeInts(b, &ikeys, &valid);
    } else {
      encoder_.EncodeBytes(b, &bkeys, &valid);
    }
    auto key_equals_current = [&](size_t i) {
      return int_path ? (ikeys[i] == current_key_i64_)
                      : (bkeys[i] == current_key_);
    };
    auto key_equals_prev_row = [&](size_t i) {
      return int_path ? (ikeys[i] == ikeys[i - 1]) : (bkeys[i] == bkeys[i - 1]);
    };

    std::vector<uint32_t> group_of_row(b.num_rows);
    // Key-column source row of each fresh run, parallel to new run ids.
    std::vector<uint32_t> run_first_row;
    uint32_t gid = 0;
    if (!have_current_ || !key_equals_current(0)) {
      // Row 0 starts a new run.
      gid = have_current_ ? 1 : 0;
      run_first_row.push_back(0);
    }
    group_of_row[0] = gid;
    for (size_t i = 1; i < b.num_rows; ++i) {
      if (!key_equals_prev_row(i)) {
        ++gid;
        run_first_row.push_back(static_cast<uint32_t>(i));
      }
      group_of_row[i] = gid;
    }
    size_t total_groups = gid + 1;
    core_.EnsureGroups(total_groups);
    BDCC_RETURN_NOT_OK(core_.Update(b, group_of_row));

    // Emit all complete groups (everything except the last).
    if (total_groups > 1) {
      // Keys: the carried key (if it was group 0), then fresh run keys.
      size_t emitted = total_groups - 1;
      size_t fresh_emitted =
          run_first_row.size() >= 1 ? run_first_row.size() - 1 : 0;
      if (have_current_ && !run_first_row.empty() &&
          group_of_row[run_first_row[0]] == 1) {
        // Group 0 was the carry: emit its stored key first.
        for (size_t k = 0; k < current_key_row_.size(); ++k) {
          pending_[k].AppendInterning(current_key_row_[k], 0);
        }
        fresh_emitted = run_first_row.size() - 1;
      } else if (!have_current_) {
        fresh_emitted = run_first_row.size() - 1;
      }
      // Fresh runs that completed within this batch.
      const std::vector<int>& key_idx = encoder_.indices();
      for (size_t rid = 0; rid < fresh_emitted; ++rid) {
        uint32_t row = run_first_row[rid];
        for (size_t k = 0; k < key_idx.size(); ++k) {
          pending_[k].AppendInterning(b.columns[key_idx[k]], row);
        }
      }
      std::vector<ColumnVector> agg_out;
      core_.EmitRange(0, emitted, &agg_out);
      for (size_t a = 0; a < agg_out.size(); ++a) {
        for (size_t g = 0; g < emitted; ++g) {
          pending_[current_key_row_.size() + a].AppendFrom(agg_out[a], g);
        }
      }
      pending_rows_ += emitted;
      core_.KeepOnlyLastGroup();
    }
    // Carry the last (open) run.
    have_current_ = true;
    size_t last_row = b.num_rows - 1;
    if (int_path) {
      current_key_i64_ = ikeys[last_row];
    } else {
      current_key_ = bkeys[last_row];
    }
    const std::vector<int>& key_idx = encoder_.indices();
    for (size_t k = 0; k < current_key_row_.size(); ++k) {
      ColumnVector fresh(current_key_row_[k].type);
      current_key_row_[k] = std::move(fresh);
      current_key_row_[k].AppendInterning(b.columns[key_idx[k]], last_row);
    }
    child_->Recycle(std::move(b));  // carried key/state are copies
  }
  if (pending_rows_ == 0) return Batch::Empty();
  Batch out;
  out.num_rows = pending_rows_;
  out.columns = std::move(pending_);
  pending_.clear();
  for (const Field& f : schema_.fields()) pending_.emplace_back(f.type);
  pending_rows_ = 0;
  return out;
}

void StreamAgg::Close(ExecContext* ctx) {
  child_->Close(ctx);
  core_.Reset();
}

}  // namespace exec
}  // namespace bdcc
