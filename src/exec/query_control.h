// Shared cancel/deadline/first-error state for one query execution.
//
// One QueryControl lives in the root ExecContext and is shared (via
// ExecContext::control()) by every worker clone of the query. Operators poll
// Check() at morsel boundaries and chunk loops (the cancellation-point
// contract in src/exec/README.md); a non-OK result means "stop producing,
// unwind with this status". The three stop reasons and their precedence:
//
//   1. first error   — a worker failed; every sibling should drain and the
//                      query root returns that error, not a generic cancel.
//   2. cancellation  — RequestCancel() was called (user abort, admission
//                      control); Check() returns Status::Cancelled.
//   3. deadline      — a wall-clock deadline passed; Check() returns
//                      kDeadlineExceeded.
//
// Thread-safety: all members are safe to call from any thread. Check() is
// the hot path: a single relaxed atomic load when the query is healthy; the
// mutex is touched only after a stop flag is set.
#ifndef BDCC_EXEC_QUERY_CONTROL_H_
#define BDCC_EXEC_QUERY_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/macros.h"
#include "common/status.h"

namespace bdcc {
namespace exec {

class QueryControl {
 public:
  QueryControl() = default;
  BDCC_DISALLOW_COPY_AND_ASSIGN(QueryControl);

  /// Ask the query to stop; in-flight operators observe it at their next
  /// Check() and unwind with Status::Cancelled.
  void RequestCancel() {
    flags_.fetch_or(kCancelBit, std::memory_order_release);
  }
  bool cancel_requested() const {
    return (flags_.load(std::memory_order_acquire) & kCancelBit) != 0;
  }

  /// Stop the query once the steady clock passes `deadline`.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    flags_.fetch_or(kDeadlineBit, std::memory_order_release);
  }
  void SetTimeout(std::chrono::nanoseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }

  /// Record a worker's failure; the first reported error wins and every
  /// subsequent Check() returns it. Cancelled/DeadlineExceeded statuses are
  /// ignored — they are consequences of a stop already visible through this
  /// control, and recording one could mask the root-cause error.
  void ReportError(const Status& error) {
    if (error.ok() || error.IsCancelled() || error.IsDeadlineExceeded()) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = error;
    }
    flags_.fetch_or(kErrorBit, std::memory_order_release);
  }

  /// The stop-or-go poll. OK while the query is healthy; otherwise the
  /// first error, Status::Cancelled, or kDeadlineExceeded (in that
  /// precedence).
  Status Check() const {
    uint32_t flags = flags_.load(std::memory_order_acquire);
    if (BDCC_LIKELY(flags == 0)) return Status::OK();
    if ((flags & kErrorBit) != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      return first_error_;
    }
    if ((flags & kCancelBit) != 0) {
      return Status::Cancelled("query cancelled");
    }
    int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
    if (now >= deadline_ns_.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  Status first_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }

  /// Forget a surfaced error so the same context can run another query.
  /// Called by the query driver (CollectAll) after the failure has been
  /// returned to the caller: a worker's error is scoped to the query that
  /// produced it, while cancellation and deadlines are externally imposed
  /// and persist until Reset(). Only the error bit is dropped — a cancel
  /// raced in from another thread stays visible.
  void ClearError() {
    std::lock_guard<std::mutex> lock(mu_);
    first_error_ = Status::OK();
    flags_.fetch_and(~kErrorBit, std::memory_order_release);
  }

  /// Rearm for the next query on the same context. Must not race in-flight
  /// Check()/ReportError() calls (call between queries only).
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    first_error_ = Status::OK();
    deadline_ns_.store(0, std::memory_order_relaxed);
    flags_.store(0, std::memory_order_release);
  }

 private:
  enum : uint32_t { kCancelBit = 1u, kErrorBit = 2u, kDeadlineBit = 4u };

  std::atomic<uint32_t> flags_{0};
  // steady_clock nanoseconds since its epoch; valid only while kDeadlineBit
  // is set.
  std::atomic<int64_t> deadline_ns_{0};
  mutable std::mutex mu_;
  Status first_error_;  // guarded by mu_
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_QUERY_CONTROL_H_
