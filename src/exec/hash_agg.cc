#include "exec/hash_agg.h"

#include <cstring>

namespace bdcc {
namespace exec {

HashAgg::HashAgg(OperatorPtr child, std::vector<std::string> group_cols,
                 std::vector<AggSpec> specs)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      spec_templates_(std::move(specs)) {}

Status HashAgg::Bind(const Schema& in) {
  input_schema_ = in;
  BDCC_RETURN_NOT_OK(core_.Bind(in, spec_templates_));
  std::vector<Field> fields;
  key_store_.clear();
  if (!group_cols_.empty()) {
    BDCC_RETURN_NOT_OK(encoder_.Bind(in, group_cols_));
    for (const std::string& g : group_cols_) {
      BDCC_ASSIGN_OR_RETURN(int idx, in.Require(g));
      fields.push_back(in.field(idx));
      key_store_.emplace_back(in.field(idx).type);
    }
  }
  for (const Field& f : core_.output_fields()) fields.push_back(f);
  schema_ = Schema(std::move(fields));
  key_map_.Clear();
  emit_cursor_ = 0;
  consumed_ = false;
  return Status::OK();
}

Status HashAgg::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(child_->Open(ctx));
  BDCC_RETURN_NOT_OK(Bind(child_->schema()));
  tracked_ = std::make_unique<TrackedMemory>(ctx->memory(), "hash-agg");
  return Status::OK();
}

Status HashAgg::BindMergeOnly(const Schema& input) {
  BDCC_CHECK(child_ == nullptr);
  BDCC_RETURN_NOT_OK(Bind(input));
  // Nothing to consume: Next() emits whatever partitions merge in.
  consumed_ = true;
  return Status::OK();
}

const Schema& HashAgg::input_schema() const { return input_schema_; }

Status HashAgg::Consume(const Batch& batch) {
  std::vector<uint32_t> group_of_row(batch.num_rows);
  if (group_cols_.empty()) {
    core_.EnsureGroups(1);
    std::fill(group_of_row.begin(), group_of_row.end(), 0);
  } else {
    const std::vector<int>& key_idx = encoder_.indices();
    // A fresh group stores its key values from the source row (NULL key
    // parts append as NULLs); AppendInterning resolves through RowAt.
    EncodeAndAssignGroups(encoder_, &key_map_, batch, &group_of_row,
                          [&](size_t row) {
                            for (size_t k = 0; k < key_idx.size(); ++k) {
                              key_store_[k].AppendInterning(
                                  batch.columns[key_idx[k]], batch.RowAt(row));
                            }
                          });
    core_.EnsureGroups(key_map_.size());
  }
  return core_.Update(batch, group_of_row);
}

uint64_t HashAgg::MemoryBytes() const {
  uint64_t store_bytes = 0;
  for (const ColumnVector& v : key_store_) {
    store_bytes += ColumnVectorBytes(v);
  }
  return key_map_.MemoryBytes() + store_bytes + core_.MemoryBytes();
}

Status HashAgg::ConsumeAll(ExecContext* ctx) {
  if (consumed_) return Status::OK();
  while (true) {
    BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
    BDCC_ASSIGN_OR_RETURN(Batch b, child_->Next(ctx));
    if (b.empty()) break;
    BDCC_RETURN_NOT_OK(Consume(b));
    child_->Recycle(std::move(b));
    BDCC_RETURN_NOT_OK(ctx->ChargeMemory(tracked_.get(), MemoryBytes()));
  }
  if (group_cols_.empty()) core_.EnsureGroups(1);  // scalar agg: one row
  consumed_ = true;
  return Status::OK();
}

Status HashAgg::MergePartial(HashAgg* other) {
  BDCC_CHECK(consumed_ && other->consumed_);
  if (group_cols_.empty()) {
    core_.MergeFrom(other->core_, {0});
    return Status::OK();
  }
  size_t other_groups = other->key_map_.size();
  if (other_groups == 0) return Status::OK();
  // Re-encode the partial's group keys (its key store is one row per group)
  // through *this* aggregate's encoder, so string keys land in the same
  // canonical code space — and NULL-bearing groups fold into the matching
  // null/byte-fallback groups — as the keys consumed directly.
  const std::vector<ColumnVector>& keys = other->key_store_;
  std::vector<uint32_t> group_map;
  EncodeAndAssignGroupsCols(encoder_, &key_map_, keys, other_groups,
                            &group_map, [&](size_t row) {
                              for (size_t k = 0; k < key_store_.size(); ++k) {
                                key_store_[k].AppendInterning(keys[k], row);
                              }
                            });
  core_.EnsureGroups(key_map_.size());
  core_.MergeFrom(other->core_, group_map);
  return Status::OK();
}

std::vector<uint32_t> HashAgg::PartitionGroups(int bits) const {
  BDCC_CHECK(bits >= 1 && bits <= 30);
  size_t groups = key_map_.size();
  std::vector<uint32_t> out(groups);
  for (size_t g = 0; g < groups; ++g) {
    // Value-based hash: strings by content, numerics by lane bits, NULLs
    // as a fixed tag — the same group key lands in the same partition no
    // matter which clone (and which private dictionary) stored it.
    uint64_t h = 0x2545f4914f6cdd1dull;
    for (const ColumnVector& col : key_store_) {
      uint64_t v;
      if (col.IsNull(g)) {
        v = 0x9ae16a3b2f90404full;  // NULL tag
      } else if (col.type == TypeId::kString) {
        v = HashKeyBytes(col.GetString(g));
      } else if (col.type == TypeId::kInt64) {
        v = static_cast<uint64_t>(col.i64[g]);
      } else if (col.type == TypeId::kFloat64) {
        double d = col.f64[g];
        std::memcpy(&v, &d, sizeof(v));
      } else {
        v = static_cast<uint64_t>(static_cast<uint32_t>(col.i32[g]));
      }
      h = HashKey64(h ^ v);
    }
    out[g] = static_cast<uint32_t>(h >> (64 - bits));
  }
  return out;
}

Status HashAgg::MergePartialPartition(const HashAgg& other,
                                      const std::vector<uint32_t>& part_of_group,
                                      uint32_t partition) {
  BDCC_CHECK(consumed_ && other.consumed_ && !group_cols_.empty());
  size_t other_groups = other.key_map_.size();
  if (other_groups == 0) return Status::OK();
  // Gather only the owned groups' key rows, then encode just that subset:
  // total encode work across all partition tasks stays O(groups), and this
  // merger's encoder only ever sees (and side-interns) its own partition's
  // strings.
  std::vector<uint32_t> rows;
  for (size_t g = 0; g < other_groups; ++g) {
    if (part_of_group[g] == partition) {
      rows.push_back(static_cast<uint32_t>(g));
    }
  }
  if (rows.empty()) return Status::OK();
  std::vector<ColumnVector> sub;
  sub.reserve(other.key_store_.size());
  for (const ColumnVector& col : other.key_store_) {
    sub.push_back(col.Gather(rows));
  }
  std::vector<uint32_t> sub_map;
  EncodeAndAssignGroupsCols(encoder_, &key_map_, sub, rows.size(), &sub_map,
                            [&](size_t row) {
                              for (size_t k = 0; k < key_store_.size(); ++k) {
                                key_store_[k].AppendInterning(sub[k], row);
                              }
                            });
  core_.EnsureGroups(key_map_.size());
  std::vector<uint32_t> group_map(other_groups, AggregatorCore::kSkipGroup);
  for (size_t i = 0; i < rows.size(); ++i) group_map[rows[i]] = sub_map[i];
  core_.MergeFrom(other.core_, group_map);
  return Status::OK();
}

Result<Batch> HashAgg::Next(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(ConsumeAll(ctx));
  size_t total = group_cols_.empty() ? 1 : key_map_.size();
  if (emit_cursor_ >= total) return Batch::Empty();
  size_t end = std::min(total, emit_cursor_ + ctx->batch_size());

  Batch out;
  out.num_rows = end - emit_cursor_;
  for (size_t k = 0; k < key_store_.size(); ++k) {
    std::vector<uint32_t> sel;
    sel.reserve(out.num_rows);
    for (size_t g = emit_cursor_; g < end; ++g) {
      sel.push_back(static_cast<uint32_t>(g));
    }
    out.columns.push_back(key_store_[k].Gather(sel));
  }
  core_.EmitRange(emit_cursor_, end, &out.columns);
  emit_cursor_ = end;
  return out;
}

void HashAgg::Close(ExecContext* ctx) {
  if (child_ != nullptr) child_->Close(ctx);
  key_map_.Clear();
  key_store_.clear();
  core_.Reset();
  if (tracked_) tracked_->Clear();
}

}  // namespace exec
}  // namespace bdcc
