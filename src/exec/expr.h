// Vectorized expression trees.
//
// Expressions are built name-based (Col("l_shipdate")), then Bind()-ed to an
// operator's schema, which resolves column indices and output types; Eval()
// produces one ColumnVector per batch.
//
// Null semantics (documented simplification, sufficient for TPC-H): NULLs
// arise only from left-outer joins; comparisons involving NULL evaluate to
// false, IsNull() observes them, and aggregates skip NULL inputs.
#ifndef BDCC_EXEC_EXPR_H_
#define BDCC_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/batch.h"

namespace bdcc {
namespace exec {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

class Expr {
 public:
  virtual ~Expr() = default;

  /// Resolve column references and output types against `schema`.
  virtual Status Bind(const Schema& schema) = 0;
  /// Output type; valid only after a successful Bind.
  virtual TypeId type() const = 0;
  virtual Result<ColumnVector> Eval(const Batch& batch) const = 0;
  /// Eval reusing `scratch`'s lane allocations where profitable (batch
  /// recycling through Project outputs). Default ignores scratch; column
  /// leaves override — they produce a copy/gather per batch, which is
  /// exactly the allocation recycling saves.
  virtual Result<ColumnVector> EvalReusing(const Batch& batch,
                                           ColumnVector&& scratch) const {
    (void)scratch;
    return Eval(batch);
  }
  /// Pretty-printed form for EXPLAIN output.
  virtual std::string ToString() const = 0;
};

// ---- Factories ----

/// Reference to a column by name.
ExprPtr Col(std::string name);
/// Constant.
ExprPtr Lit(Value v);
/// Convenience literals.
ExprPtr LitI64(int64_t v);
ExprPtr LitF64(double v);
ExprPtr LitStr(std::string_view s);
ExprPtr LitDate(std::string_view yyyy_mm_dd);

/// Arithmetic (numeric promotion: any float operand -> float64, else int64).
ExprPtr Arith(ArithOp op, ExprPtr a, ExprPtr b);
inline ExprPtr Add(ExprPtr a, ExprPtr b) { return Arith(ArithOp::kAdd, a, b); }
inline ExprPtr Sub(ExprPtr a, ExprPtr b) { return Arith(ArithOp::kSub, a, b); }
inline ExprPtr Mul(ExprPtr a, ExprPtr b) { return Arith(ArithOp::kMul, a, b); }
inline ExprPtr Div(ExprPtr a, ExprPtr b) { return Arith(ArithOp::kDiv, a, b); }

/// Comparison -> bool.
ExprPtr Cmp(CmpOp op, ExprPtr a, ExprPtr b);
inline ExprPtr Eq(ExprPtr a, ExprPtr b) { return Cmp(CmpOp::kEq, a, b); }
inline ExprPtr Ne(ExprPtr a, ExprPtr b) { return Cmp(CmpOp::kNe, a, b); }
inline ExprPtr Lt(ExprPtr a, ExprPtr b) { return Cmp(CmpOp::kLt, a, b); }
inline ExprPtr Le(ExprPtr a, ExprPtr b) { return Cmp(CmpOp::kLe, a, b); }
inline ExprPtr Gt(ExprPtr a, ExprPtr b) { return Cmp(CmpOp::kGt, a, b); }
inline ExprPtr Ge(ExprPtr a, ExprPtr b) { return Cmp(CmpOp::kGe, a, b); }

/// Boolean connectives over bool inputs.
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
/// Variadic AND (ignores nullptr entries; must leave >= 1).
ExprPtr AndAll(std::vector<ExprPtr> exprs);

/// SQL LIKE with % and _ wildcards over a string expression.
ExprPtr Like(ExprPtr a, std::string pattern);
ExprPtr NotLike(ExprPtr a, std::string pattern);

/// Membership tests.
ExprPtr InStrings(ExprPtr a, std::vector<std::string> values);
ExprPtr InInts(ExprPtr a, std::vector<int64_t> values);

/// a BETWEEN lo AND hi (inclusive).
ExprPtr Between(ExprPtr a, ExprPtr lo, ExprPtr hi);

/// CASE WHEN cond THEN t ELSE e END (t/e must agree on type).
ExprPtr CaseWhen(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr);

/// EXTRACT(YEAR FROM date) -> int32.
ExprPtr Year(ExprPtr date_expr);

/// substring(s, 1, n) -> string (fresh per-batch dictionary).
ExprPtr StrPrefix(ExprPtr a, int len);

/// TRUE where the input is NULL.
ExprPtr IsNull(ExprPtr a);
/// coalesce(a, b).
ExprPtr Coalesce(ExprPtr a, ExprPtr b);

/// SQL LIKE matcher used by Like() (exposed for tests).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_EXPR_H_
