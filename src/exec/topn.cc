#include "exec/topn.h"

#include <algorithm>

#include "exec/hash_table.h"

namespace bdcc {
namespace exec {

TopN::TopN(OperatorPtr child, std::vector<SortKey> keys, uint64_t n)
    : child_(std::move(child)), keys_(std::move(keys)), n_(n) {}

Status TopN::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(child_->Open(ctx));
  bound_keys_.clear();
  for (const SortKey& k : keys_) {
    BDCC_ASSIGN_OR_RETURN(int idx, child_->schema().Require(k.column));
    bound_keys_.push_back({idx, k.descending});
  }
  heap_rows_ = Batch::Empty();
  for (const Field& f : child_->schema().fields()) {
    heap_rows_.columns.emplace_back(f.type);
  }
  heap_.clear();
  final_order_.clear();
  done_ = false;
  cursor_ = 0;
  tracked_ = std::make_unique<TrackedMemory>(ctx->memory(), "top-n heap");
  return Status::OK();
}

Result<Batch> TopN::Next(ExecContext* ctx) {
  auto worse = [&](uint32_t a, uint32_t b) {
    // true when row a sorts before row b (max-heap keeps the worst on top).
    return CompareRows(heap_rows_.columns, a, heap_rows_.columns, b,
                       bound_keys_) < 0;
  };
  if (!done_) {
    while (true) {
      BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
      BDCC_ASSIGN_OR_RETURN(Batch b, child_->Next(ctx));
      if (b.empty()) break;
      for (size_t r = 0; r < b.num_rows; ++r) {
        // Append candidate row.
        uint32_t idx = static_cast<uint32_t>(heap_rows_.num_rows);
        for (size_t c = 0; c < b.columns.size(); ++c) {
          heap_rows_.columns[c].AppendInterning(b.columns[c], b.RowAt(r));
        }
        heap_rows_.num_rows += 1;
        heap_.push_back(idx);
        std::push_heap(heap_.begin(), heap_.end(), worse);
        if (heap_.size() > n_) {
          std::pop_heap(heap_.begin(), heap_.end(), worse);
          heap_.pop_back();
        }
      }
      // Note: heap_rows_ grows with dropped rows too; compact when 4x over.
      if (heap_rows_.num_rows > 4 * std::max<uint64_t>(n_, 1024)) {
        std::vector<uint32_t> keep = heap_;
        std::sort(keep.begin(), keep.end());
        Batch compact;
        compact.num_rows = keep.size();
        for (const ColumnVector& c : heap_rows_.columns) {
          compact.columns.push_back(c.Gather(keep));
        }
        for (size_t i = 0; i < heap_.size(); ++i) {
          // New position of old index heap_[i] in `keep`.
          heap_[i] = static_cast<uint32_t>(
              std::lower_bound(keep.begin(), keep.end(), heap_[i]) -
              keep.begin());
        }
        heap_rows_ = std::move(compact);
        std::make_heap(heap_.begin(), heap_.end(), worse);
      }
      uint64_t bytes = 0;
      for (const ColumnVector& c : heap_rows_.columns) {
        bytes += ColumnVectorBytes(c);
      }
      BDCC_RETURN_NOT_OK(ctx->ChargeMemory(tracked_.get(), bytes));
      child_->Recycle(std::move(b));  // heap rows are interned copies
    }
    final_order_ = heap_;
    std::sort(final_order_.begin(), final_order_.end(),
              [&](uint32_t a, uint32_t b) {
                return CompareRows(heap_rows_.columns, a, heap_rows_.columns,
                                   b, bound_keys_) < 0;
              });
    done_ = true;
  }
  if (cursor_ >= final_order_.size()) return Batch::Empty();
  size_t end = std::min(final_order_.size(), cursor_ + ctx->batch_size());
  std::vector<uint32_t> sel(final_order_.begin() + cursor_,
                            final_order_.begin() + end);
  Batch out;
  out.num_rows = sel.size();
  for (const ColumnVector& c : heap_rows_.columns) {
    out.columns.push_back(c.Gather(sel));
  }
  cursor_ = end;
  return out;
}

void TopN::Close(ExecContext* ctx) {
  child_->Close(ctx);
  heap_rows_ = Batch::Empty();
  heap_.clear();
  if (tracked_) tracked_->Clear();
}

}  // namespace exec
}  // namespace bdcc
