// Streaming merge join for inputs sorted on a single integer key, with
// unique keys on the right side (the PK-scheme joins: LINEITEM⋈ORDERS on
// orderkey and PARTSUPP⋈PART on partkey). Memory: O(batch).
#ifndef BDCC_EXEC_MERGE_JOIN_H_
#define BDCC_EXEC_MERGE_JOIN_H_

#include <string>

#include "exec/operator.h"

namespace bdcc {
namespace exec {

/// \brief Inner merge join; right side must be key-unique and ascending,
/// left side ascending (duplicates fine).
class MergeJoin : public Operator {
 public:
  MergeJoin(OperatorPtr left, OperatorPtr right, std::string left_key,
            std::string right_key);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

 private:
  int64_t RightKeyAt(size_t row) const;
  int64_t LeftKeyAt(const Batch& b, size_t row) const;
  Status AdvanceRight(ExecContext* ctx);  // refill right batch when drained

  OperatorPtr left_, right_;
  std::string left_key_, right_key_;
  int left_key_idx_ = -1, right_key_idx_ = -1;
  Schema schema_;
  Batch right_batch_;
  size_t right_pos_ = 0;
  bool right_done_ = false;
  int64_t last_right_key_ = INT64_MIN;  // uniqueness/sortedness check
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_MERGE_JOIN_H_
