// Sandwich aggregation over pre-grouped input [3].
//
// Requires that the grouping keys functionally determine the partition
// (e.g. Q18's GROUP BY l_orderkey under orderkey-derived clustering): a key
// then never spans two partitions, so the hash table can be flushed after
// every partition — the aggregation state peaks at the largest partition,
// not the whole key domain.
#ifndef BDCC_EXEC_SANDWICH_AGG_H_
#define BDCC_EXEC_SANDWICH_AGG_H_

#include <deque>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/hash_table.h"
#include "exec/memory_tracker.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

class SandwichAgg : public Operator {
 public:
  SandwichAgg(OperatorPtr child, std::vector<std::string> group_cols,
              std::vector<AggSpec> specs);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

 private:
  Status Consume(const Batch& batch);
  void FlushPartition(ExecContext* ctx);

  OperatorPtr child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> spec_templates_;
  Schema schema_;

  KeyEncoder encoder_;
  DenseKeyMap key_map_;
  std::vector<ColumnVector> key_store_;
  AggregatorCore core_;
  std::unique_ptr<TrackedMemory> tracked_;

  int64_t current_partition_ = -1;
  bool input_done_ = false;
  std::deque<Batch> ready_;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_SANDWICH_AGG_H_
