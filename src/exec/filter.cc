#include "exec/filter.h"

namespace bdcc {
namespace exec {

Status Filter::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(child_->Open(ctx));
  return predicate_->Bind(child_->schema());
}

Result<Batch> Filter::Next(ExecContext* ctx) {
  while (true) {
    BDCC_ASSIGN_OR_RETURN(Batch in, child_->Next(ctx));
    if (in.empty()) return Batch::Empty();
    BDCC_ASSIGN_OR_RETURN(ColumnVector verdict, predicate_->Eval(in));
    std::vector<uint32_t> sel;
    sel.reserve(in.num_rows);
    for (size_t i = 0; i < in.num_rows; ++i) {
      if (verdict.i32[i]) sel.push_back(static_cast<uint32_t>(i));
    }
    if (sel.empty()) continue;  // try the next batch
    if (sel.size() == in.num_rows) return in;
    Batch out;
    out.num_rows = sel.size();
    out.group_id = in.group_id;
    out.columns.reserve(in.columns.size());
    for (const ColumnVector& c : in.columns) {
      out.columns.push_back(c.Gather(sel));
    }
    return out;
  }
}

}  // namespace exec
}  // namespace bdcc
