#include "exec/filter.h"

namespace bdcc {
namespace exec {

Status Filter::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(child_->Open(ctx));
  return predicate_->Bind(child_->schema());
}

Result<Batch> Filter::Next(ExecContext* ctx) {
  while (true) {
    BDCC_ASSIGN_OR_RETURN(Batch in, child_->Next(ctx));
    if (in.empty()) return Batch::Empty();
    BDCC_ASSIGN_OR_RETURN(ColumnVector verdict, predicate_->Eval(in));
    // The verdict is dense over logical rows; compose with any incoming
    // selection so `sel` stays in physical row indices.
    std::vector<uint32_t> sel;
    sel.reserve(in.num_rows);
    for (size_t i = 0; i < in.num_rows; ++i) {
      if (verdict.i32[i]) sel.push_back(in.RowAt(i));
    }
    if (sel.empty()) {
      child_->Recycle(std::move(in));
      continue;  // try the next batch
    }
    if (sel.size() == in.num_rows) return in;  // all pass: keep representation
    Batch out;
    out.num_rows = sel.size();
    out.group_id = in.group_id;
    double density =
        static_cast<double>(sel.size()) / static_cast<double>(in.physical_rows());
    if (ctx->sel_enabled() && density >= ExecContext::kCompactDensity) {
      // Late materialization: share the columns, narrow the selection.
      out.columns = std::move(in.columns);
      out.sel = std::move(sel);
    } else {
      // Sparse (or legacy mode): compact now and recycle the input buffers.
      out.columns.reserve(in.columns.size());
      for (const ColumnVector& c : in.columns) {
        out.columns.push_back(c.Gather(sel));
      }
      child_->Recycle(std::move(in));
    }
    return out;
  }
}

}  // namespace exec
}  // namespace bdcc
