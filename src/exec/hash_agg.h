// Hash aggregation (GROUP BY), including the scalar (no-group) case.
#ifndef BDCC_EXEC_HASH_AGG_H_
#define BDCC_EXEC_HASH_AGG_H_

#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/hash_table.h"
#include "exec/memory_tracker.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

class HashAgg : public Operator {
 public:
  HashAgg(OperatorPtr child, std::vector<std::string> group_cols,
          std::vector<AggSpec> specs);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

  /// Drain the child and fold every batch into the aggregation state without
  /// emitting (idempotent; Next calls it lazily). Distinct HashAgg instances
  /// may run ConsumeAll concurrently on distinct ExecContexts — this is the
  /// thread-local consume phase of morsel-parallel aggregation.
  Status ConsumeAll(ExecContext* ctx);

  /// Fold `other`'s consumed-but-unemitted partial state into this
  /// aggregate; `other` must share this aggregate's group columns and specs.
  /// Called serially (merge phase) after the parallel consume phase.
  Status MergePartial(HashAgg* other);

  /// Bind as a merge-only target (no child operator): `input` is the schema
  /// the partials consumed. Afterwards only MergePartial/
  /// MergePartialPartition, Next (emission) and Close are valid — Next
  /// emits whatever was merged in.
  Status BindMergeOnly(const Schema& input);

  /// Schema of the child this aggregate consumed (valid once Open ran);
  /// what merge-only peers must be bound with.
  const Schema& input_schema() const;

  size_t num_groups() const { return key_map_.size(); }

  /// Bytes held by the aggregation state (key map + stored keys +
  /// accumulators); what budget charges for this aggregate track.
  uint64_t MemoryBytes() const;

  /// Partition this aggregate's groups into 1 << bits radix partitions by
  /// a *value-based* hash of the stored group keys — consistent across
  /// aggregates even though each clone interned strings into private
  /// dictionaries. out[g] = partition of group g.
  std::vector<uint32_t> PartitionGroups(int bits) const;

  /// Fold only the groups of `other` whose part_of_group[g] == partition
  /// into this aggregate. Read-only on `other`: distinct targets may merge
  /// disjoint slices of one partial concurrently.
  Status MergePartialPartition(const HashAgg& other,
                               const std::vector<uint32_t>& part_of_group,
                               uint32_t partition);

 private:
  Status Bind(const Schema& in);
  Status Consume(const Batch& batch);

  OperatorPtr child_;  // null for merge-only instances (BindMergeOnly)
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> spec_templates_;
  Schema schema_;
  Schema input_schema_;

  KeyEncoder encoder_;
  DenseKeyMap key_map_;
  std::vector<ColumnVector> key_store_;  // one row per group
  AggregatorCore core_;
  std::unique_ptr<TrackedMemory> tracked_;
  size_t emit_cursor_ = 0;
  bool consumed_ = false;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_HASH_AGG_H_
