// Hash aggregation (GROUP BY), including the scalar (no-group) case.
#ifndef BDCC_EXEC_HASH_AGG_H_
#define BDCC_EXEC_HASH_AGG_H_

#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/hash_table.h"
#include "exec/memory_tracker.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

class HashAgg : public Operator {
 public:
  HashAgg(OperatorPtr child, std::vector<std::string> group_cols,
          std::vector<AggSpec> specs);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

  /// Drain the child and fold every batch into the aggregation state without
  /// emitting (idempotent; Next calls it lazily). Distinct HashAgg instances
  /// may run ConsumeAll concurrently on distinct ExecContexts — this is the
  /// thread-local consume phase of morsel-parallel aggregation.
  Status ConsumeAll(ExecContext* ctx);

  /// Fold `other`'s consumed-but-unemitted partial state into this
  /// aggregate; `other` must share this aggregate's group columns and specs.
  /// Called serially (merge phase) after the parallel consume phase.
  Status MergePartial(HashAgg* other);

 private:
  Status Consume(const Batch& batch);

  OperatorPtr child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> spec_templates_;
  Schema schema_;

  KeyEncoder encoder_;
  DenseKeyMap key_map_;
  std::vector<ColumnVector> key_store_;  // one row per group
  AggregatorCore core_;
  std::unique_ptr<TrackedMemory> tracked_;
  size_t emit_cursor_ = 0;
  bool consumed_ = false;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_HASH_AGG_H_
