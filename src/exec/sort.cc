#include "exec/sort.h"

#include <algorithm>
#include <numeric>

#include "exec/hash_table.h"

namespace bdcc {
namespace exec {

namespace {

int CompareCell(const ColumnVector& a, size_t ra, const ColumnVector& b,
                size_t rb) {
  bool na = a.IsNull(ra), nb = b.IsNull(rb);
  if (na || nb) return (na == nb) ? 0 : (na ? -1 : 1);  // NULLS FIRST
  switch (a.type) {
    case TypeId::kString: {
      int c = a.GetString(ra).compare(b.GetString(rb));
      return c < 0 ? -1 : (c == 0 ? 0 : 1);
    }
    case TypeId::kFloat64: {
      double x = a.f64[ra], y = b.f64[rb];
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    case TypeId::kInt64: {
      int64_t x = a.i64[ra], y = b.i64[rb];
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    default: {
      int32_t x = a.i32[ra], y = b.i32[rb];
      return x < y ? -1 : (x == y ? 0 : 1);
    }
  }
}

}  // namespace

int CompareRows(const std::vector<ColumnVector>& a, size_t row_a,
                const std::vector<ColumnVector>& b, size_t row_b,
                const std::vector<std::pair<int, bool>>& keys) {
  for (const auto& [col, desc] : keys) {
    int c = CompareCell(a[col], row_a, b[col], row_b);
    if (c != 0) return desc ? -c : c;
  }
  return 0;
}

Sort::Sort(OperatorPtr child, std::vector<SortKey> keys, int64_t limit)
    : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {}

Status Sort::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(child_->Open(ctx));
  materialized_ = Batch::Empty();
  order_.clear();
  cursor_ = 0;
  done_ = false;
  tracked_ = std::make_unique<TrackedMemory>(ctx->memory(), "sort buffer");
  return Status::OK();
}

Result<Batch> Sort::Next(ExecContext* ctx) {
  if (!done_) {
    // Materialize the whole input.
    while (true) {
      BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
      BDCC_ASSIGN_OR_RETURN(Batch b, child_->Next(ctx));
      if (b.empty()) break;
      if (materialized_.columns.empty()) {
        for (const Field& f : child_->schema().fields()) {
          materialized_.columns.emplace_back(f.type);
        }
      }
      for (size_t c = 0; c < b.columns.size(); ++c) {
        for (size_t r = 0; r < b.num_rows; ++r) {
          materialized_.columns[c].AppendInterning(b.columns[c], b.RowAt(r));
        }
      }
      materialized_.num_rows += b.num_rows;
      child_->Recycle(std::move(b));
      // Charge per input batch so a budget overrun stops the materialize
      // loop instead of surfacing only after the whole input is buffered.
      uint64_t bytes = 0;
      for (const ColumnVector& c : materialized_.columns) {
        bytes += ColumnVectorBytes(c);
      }
      BDCC_RETURN_NOT_OK(ctx->ChargeMemory(
          tracked_.get(), bytes + materialized_.num_rows * 4));
    }

    std::vector<std::pair<int, bool>> bound;
    for (const SortKey& k : keys_) {
      BDCC_ASSIGN_OR_RETURN(int idx, child_->schema().Require(k.column));
      bound.push_back({idx, k.descending});
    }
    order_.resize(materialized_.num_rows);
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(),
                     [&](uint32_t x, uint32_t y) {
                       return CompareRows(materialized_.columns, x,
                                          materialized_.columns, y,
                                          bound) < 0;
                     });
    if (limit_ >= 0 && static_cast<uint64_t>(limit_) < order_.size()) {
      order_.resize(limit_);
    }
    done_ = true;
  }
  if (cursor_ >= order_.size()) return Batch::Empty();
  size_t end = std::min(order_.size(), cursor_ + ctx->batch_size());
  std::vector<uint32_t> sel(order_.begin() + cursor_, order_.begin() + end);
  Batch out;
  out.num_rows = sel.size();
  for (const ColumnVector& c : materialized_.columns) {
    out.columns.push_back(c.Gather(sel));
  }
  cursor_ = end;
  return out;
}

void Sort::Close(ExecContext* ctx) {
  child_->Close(ctx);
  materialized_ = Batch::Empty();
  order_.clear();
  if (tracked_) tracked_->Clear();
}

Result<Batch> Limit::Next(ExecContext* ctx) {
  if (emitted_ >= limit_) return Batch::Empty();
  BDCC_ASSIGN_OR_RETURN(Batch b, child_->Next(ctx));
  if (b.empty()) return b;
  if (emitted_ + b.num_rows > limit_) {
    size_t keep = static_cast<size_t>(limit_ - emitted_);
    std::vector<uint32_t> sel(keep);
    for (size_t i = 0; i < keep; ++i) sel[i] = b.RowAt(i);
    Batch out;
    out.num_rows = keep;
    for (const ColumnVector& c : b.columns) out.columns.push_back(c.Gather(sel));
    emitted_ = limit_;
    return out;
  }
  emitted_ += b.num_rows;
  return b;
}

}  // namespace exec
}  // namespace bdcc
