#include "exec/hash_join.h"

namespace bdcc {
namespace exec {

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeftOuter:
      return "left-outer";
    case JoinType::kLeftSemi:
      return "semi";
    case JoinType::kLeftAnti:
      return "anti";
  }
  return "?";
}

HashJoin::HashJoin(OperatorPtr left, OperatorPtr right,
                   std::vector<std::string> left_keys,
                   std::vector<std::string> right_keys, JoinType type)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      type_(type) {}

Status HashJoinProber::Bind(const Schema& probe_schema,
                            const std::vector<std::string>& probe_keys,
                            const JoinHashTable* table, JoinType type) {
  table_ = table;
  type_ = type;
  // Probe keys encode in the build side's canonical space (string keys
  // resolve to build dictionary codes; absent strings never match).
  BDCC_RETURN_NOT_OK(
      encoder_.BindProbe(probe_schema, probe_keys, &table->encoder()));
  if (type_ == JoinType::kLeftSemi || type_ == JoinType::kLeftAnti) {
    schema_ = probe_schema;
  } else {
    schema_ = Schema::Concat(probe_schema, table->schema());
  }
  return Status::OK();
}

Status HashJoin::Open(ExecContext* ctx) {
  BDCC_RETURN_NOT_OK(left_->Open(ctx));
  BDCC_RETURN_NOT_OK(right_->Open(ctx));
  if (left_keys_.size() != right_keys_.size() || left_keys_.empty()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  tracked_ = std::make_unique<TrackedMemory>(ctx->memory(), "hash-join build");

  // Build.
  BDCC_RETURN_NOT_OK(table_.Init(right_->schema(), right_keys_));
  while (true) {
    BDCC_RETURN_NOT_OK(ctx->CheckLifecycle());
    BDCC_ASSIGN_OR_RETURN(Batch b, right_->Next(ctx));
    if (b.empty()) break;
    BDCC_RETURN_NOT_OK(table_.AddBatch(b));
    right_->Recycle(std::move(b));
    BDCC_RETURN_NOT_OK(ctx->ChargeMemory(tracked_.get(), table_.MemoryBytes()));
  }

  return prober_.Bind(left_->schema(), left_keys_, &table_, type_);
}

Result<Batch> HashJoinProber::ProbeBatch(const Batch& in, Batch scratch) const {
  const JoinHashTable& table = *table_;
  size_t left_width = in.columns.size();
  Batch out;
  out.group_id = in.group_id;
  if (scratch.columns.size() == schema_.num_fields()) {
    // Reuse a recycled output batch's lanes. Dictionaries are re-wired
    // below / re-adopted on first append, so a stale dictionary pointer
    // from the previous batch can never be interned into.
    out.columns = std::move(scratch.columns);
    for (ColumnVector& c : out.columns) {
      c.ClearKeepCapacity();
      c.dict = nullptr;
    }
  } else {
    for (const Field& f : schema_.fields()) {
      out.columns.emplace_back(f.type);
    }
  }
  // Pre-wire right-side dictionaries so empty results stay typed.
  if (type_ == JoinType::kInner || type_ == JoinType::kLeftOuter) {
    for (size_t c = 0; c < table.columns().size(); ++c) {
      out.columns[left_width + c].dict = table.columns()[c].dict;
    }
  }

  // `left_row` below is a logical row; map through the probe batch's
  // selection when materializing.
  auto emit_match = [&](size_t left_row, BuildRowRef build) {
    for (size_t c = 0; c < left_width; ++c) {
      out.columns[c].AppendFrom(in.columns[c], in.RowAt(left_row));
    }
    for (size_t c = 0; c < build.columns->size(); ++c) {
      out.columns[left_width + c].AppendFrom((*build.columns)[c], build.row);
    }
    ++out.num_rows;
  };
  auto emit_left_only = [&](size_t left_row, bool null_right) {
    for (size_t c = 0; c < left_width; ++c) {
      out.columns[c].AppendFrom(in.columns[c], in.RowAt(left_row));
    }
    if (null_right) {
      for (size_t c = left_width; c < out.columns.size(); ++c) {
        out.columns[c].AppendNull();
      }
    }
    ++out.num_rows;
  };

  auto probe_row = [&](size_t i, auto&& key, bool valid) {
    bool matched = false;
    if (valid) {
      switch (type_) {
        case JoinType::kInner:
        case JoinType::kLeftOuter:
          table.ForEachMatch(key, [&](BuildRowRef build) {
            emit_match(i, build);
            matched = true;
          });
          break;
        case JoinType::kLeftSemi:
        case JoinType::kLeftAnti:
          matched = table.HasMatch(key);
          break;
      }
    }
    switch (type_) {
      case JoinType::kInner:
        break;
      case JoinType::kLeftOuter:
        if (!matched) emit_left_only(i, /*null_right=*/true);
        break;
      case JoinType::kLeftSemi:
        if (matched) emit_left_only(i, false);
        break;
      case JoinType::kLeftAnti:
        if (!matched) emit_left_only(i, false);
        break;
    }
  };

  if (encoder_.int_path()) {
    std::vector<int64_t> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeInts(in, &keys, &valid);
    for (size_t i = 0; i < in.num_rows; ++i) probe_row(i, keys[i], valid[i]);
  } else {
    std::vector<std::string> keys;
    std::vector<uint8_t> valid;
    encoder_.EncodeBytes(in, &keys, &valid);
    for (size_t i = 0; i < in.num_rows; ++i) probe_row(i, keys[i], valid[i]);
  }
  return out;
}

Result<Batch> HashJoin::Next(ExecContext* ctx) {
  while (true) {
    BDCC_ASSIGN_OR_RETURN(Batch in, left_->Next(ctx));
    if (in.empty()) return Batch::Empty();
    Batch scratch;
    if (!recycled_.empty()) {
      scratch = std::move(recycled_.back());
      recycled_.pop_back();
    }
    BDCC_ASSIGN_OR_RETURN(Batch out,
                          prober_.ProbeBatch(in, std::move(scratch)));
    left_->Recycle(std::move(in));  // probe output is freshly materialized
    if (out.num_rows > 0) return out;
  }
}

void HashJoin::Recycle(Batch&& batch) {
  RecycleIntoFreeList(std::move(batch), schema(), &recycled_);
}

void HashJoin::Close(ExecContext* ctx) {
  left_->Close(ctx);
  right_->Close(ctx);
  table_.Clear();
  recycled_.clear();
  if (tracked_) tracked_->Clear();
}

}  // namespace exec
}  // namespace bdcc
