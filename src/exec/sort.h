// Materializing sort (and the shared sort-key machinery used by TopN).
#ifndef BDCC_EXEC_SORT_H_
#define BDCC_EXEC_SORT_H_

#include <string>
#include <vector>

#include "exec/memory_tracker.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

struct SortKey {
  std::string column;
  bool descending = false;
};

/// Three-way comparison of two rows of (possibly different) batches on the
/// given key column indices.
int CompareRows(const std::vector<ColumnVector>& a, size_t row_a,
                const std::vector<ColumnVector>& b, size_t row_b,
                const std::vector<std::pair<int, bool>>& keys);

/// \brief Full sort: materializes the child, orders rows by the keys.
class Sort : public Operator {
 public:
  Sort(OperatorPtr child, std::vector<SortKey> keys, int64_t limit = -1);

  const Schema& schema() const override { return child_->schema(); }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  int64_t limit_;
  Batch materialized_;
  std::vector<uint32_t> order_;
  size_t cursor_ = 0;
  std::unique_ptr<TrackedMemory> tracked_;
  bool done_ = false;
};

/// \brief LIMIT n passthrough.
class Limit : public Operator {
 public:
  Limit(OperatorPtr child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& schema() const override { return child_->schema(); }
  Status Open(ExecContext* ctx) override {
    emitted_ = 0;
    return child_->Open(ctx);
  }
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override { child_->Close(ctx); }

 private:
  OperatorPtr child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_SORT_H_
