#include "exec/aggregate.h"

namespace bdcc {
namespace exec {

namespace {

double FetchF64(const ColumnVector& v, size_t row) {
  switch (v.type) {
    case TypeId::kInt64:
      return static_cast<double>(v.i64[row]);
    case TypeId::kFloat64:
      return v.f64[row];
    default:
      return static_cast<double>(v.i32[row]);
  }
}

int64_t FetchI64(const ColumnVector& v, size_t row) {
  switch (v.type) {
    case TypeId::kInt64:
      return v.i64[row];
    case TypeId::kFloat64:
      return static_cast<int64_t>(v.f64[row]);
    default:
      return v.i32[row];
  }
}

}  // namespace

Status AggregatorCore::Bind(const Schema& input, std::vector<AggSpec> specs) {
  specs_ = std::move(specs);
  arg_types_.clear();
  output_fields_.clear();
  states_.assign(specs_.size(), State{});
  num_groups_ = 0;
  distinct_entries_ = 0;
  for (AggSpec& spec : specs_) {
    TypeId arg_type = TypeId::kInt64;
    if (spec.arg) {
      BDCC_RETURN_NOT_OK(spec.arg->Bind(input));
      arg_type = spec.arg->type();
    }
    arg_types_.push_back(arg_type);
    TypeId out_type = TypeId::kInt64;
    switch (spec.kind) {
      case AggKind::kSum:
        out_type = (arg_type == TypeId::kFloat64) ? TypeId::kFloat64
                                                  : TypeId::kInt64;
        break;
      case AggKind::kAvg:
        out_type = TypeId::kFloat64;
        break;
      case AggKind::kCount:
      case AggKind::kCountStar:
      case AggKind::kCountDistinct:
        out_type = TypeId::kInt64;
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        if (arg_type == TypeId::kString) {
          return Status::NotImplemented("MIN/MAX over strings");
        }
        out_type = (arg_type == TypeId::kFloat64) ? TypeId::kFloat64
                                                  : arg_type;
        break;
    }
    if (spec.kind == AggKind::kCountDistinct &&
        (arg_type == TypeId::kString || arg_type == TypeId::kFloat64)) {
      return Status::NotImplemented("COUNT DISTINCT over non-integer input");
    }
    output_fields_.push_back(Field{spec.output_name, out_type});
  }
  return Status::OK();
}

void AggregatorCore::EnsureGroups(size_t n) {
  if (n <= num_groups_) return;
  for (size_t s = 0; s < specs_.size(); ++s) {
    State& st = states_[s];
    switch (specs_[s].kind) {
      case AggKind::kSum:
        if (arg_types_[s] == TypeId::kFloat64) {
          st.sum_f64.resize(n, 0.0);
        } else {
          st.sum_i64.resize(n, 0);
        }
        break;
      case AggKind::kAvg:
        st.sum_f64.resize(n, 0.0);
        st.count.resize(n, 0);
        break;
      case AggKind::kCount:
      case AggKind::kCountStar:
        st.count.resize(n, 0);
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        if (arg_types_[s] == TypeId::kFloat64) {
          st.minmax_f64.resize(n, 0.0);
        } else {
          st.minmax_i64.resize(n, 0);
        }
        st.has_value.resize(n, 0);
        break;
      case AggKind::kCountDistinct:
        st.distinct.resize(n);
        break;
    }
  }
  num_groups_ = n;
}

Status AggregatorCore::Update(const Batch& batch,
                              const std::vector<uint32_t>& group_of_row) {
  BDCC_CHECK(group_of_row.size() == batch.num_rows);
  for (size_t s = 0; s < specs_.size(); ++s) {
    const AggSpec& spec = specs_[s];
    State& st = states_[s];
    if (spec.kind == AggKind::kCountStar) {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        st.count[group_of_row[i]] += 1;
      }
      continue;
    }
    BDCC_ASSIGN_OR_RETURN(ColumnVector arg, spec.arg->Eval(batch));
    switch (spec.kind) {
      case AggKind::kSum:
        if (arg_types_[s] == TypeId::kFloat64) {
          for (size_t i = 0; i < batch.num_rows; ++i) {
            if (arg.IsNull(i)) continue;
            st.sum_f64[group_of_row[i]] += arg.f64[i];
          }
        } else {
          for (size_t i = 0; i < batch.num_rows; ++i) {
            if (arg.IsNull(i)) continue;
            st.sum_i64[group_of_row[i]] += FetchI64(arg, i);
          }
        }
        break;
      case AggKind::kAvg:
        for (size_t i = 0; i < batch.num_rows; ++i) {
          if (arg.IsNull(i)) continue;
          st.sum_f64[group_of_row[i]] += FetchF64(arg, i);
          st.count[group_of_row[i]] += 1;
        }
        break;
      case AggKind::kCount:
        for (size_t i = 0; i < batch.num_rows; ++i) {
          if (arg.IsNull(i)) continue;
          st.count[group_of_row[i]] += 1;
        }
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        bool is_min = spec.kind == AggKind::kMin;
        if (arg_types_[s] == TypeId::kFloat64) {
          for (size_t i = 0; i < batch.num_rows; ++i) {
            if (arg.IsNull(i)) continue;
            uint32_t g = group_of_row[i];
            double v = arg.f64[i];
            if (!st.has_value[g] || (is_min ? v < st.minmax_f64[g]
                                            : v > st.minmax_f64[g])) {
              st.minmax_f64[g] = v;
              st.has_value[g] = 1;
            }
          }
        } else {
          for (size_t i = 0; i < batch.num_rows; ++i) {
            if (arg.IsNull(i)) continue;
            uint32_t g = group_of_row[i];
            int64_t v = FetchI64(arg, i);
            if (!st.has_value[g] || (is_min ? v < st.minmax_i64[g]
                                            : v > st.minmax_i64[g])) {
              st.minmax_i64[g] = v;
              st.has_value[g] = 1;
            }
          }
        }
        break;
      }
      case AggKind::kCountDistinct:
        for (size_t i = 0; i < batch.num_rows; ++i) {
          if (arg.IsNull(i)) continue;
          auto [it, inserted] =
              st.distinct[group_of_row[i]].insert(FetchI64(arg, i));
          if (inserted) ++distinct_entries_;
        }
        break;
      case AggKind::kCountStar:
        break;  // handled above
    }
  }
  return Status::OK();
}

void AggregatorCore::EmitRange(size_t begin, size_t end,
                               std::vector<ColumnVector>* out) const {
  for (size_t s = 0; s < specs_.size(); ++s) {
    const AggSpec& spec = specs_[s];
    const State& st = states_[s];
    ColumnVector v(output_fields_[s].type);
    v.Reserve(end - begin);
    for (size_t g = begin; g < end; ++g) {
      switch (spec.kind) {
        case AggKind::kSum:
          if (arg_types_[s] == TypeId::kFloat64) {
            v.f64.push_back(st.sum_f64[g]);
          } else {
            v.i64.push_back(st.sum_i64[g]);
          }
          break;
        case AggKind::kAvg:
          v.f64.push_back(st.count[g] == 0
                              ? 0.0
                              : st.sum_f64[g] /
                                    static_cast<double>(st.count[g]));
          break;
        case AggKind::kCount:
        case AggKind::kCountStar:
          v.i64.push_back(st.count[g]);
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          if (output_fields_[s].type == TypeId::kFloat64) {
            v.f64.push_back(st.has_value[g] ? st.minmax_f64[g] : 0.0);
          } else if (output_fields_[s].type == TypeId::kInt64) {
            v.i64.push_back(st.has_value[g] ? st.minmax_i64[g] : 0);
          } else {
            v.i32.push_back(st.has_value[g]
                                ? static_cast<int32_t>(st.minmax_i64[g])
                                : 0);
          }
          break;
        case AggKind::kCountDistinct:
          v.i64.push_back(static_cast<int64_t>(st.distinct[g].size()));
          break;
      }
    }
    out->push_back(std::move(v));
  }
}

void AggregatorCore::MergeFrom(const AggregatorCore& other,
                               const std::vector<uint32_t>& group_map) {
  BDCC_CHECK(specs_.size() == other.specs_.size());
  BDCC_CHECK(group_map.size() == other.num_groups_);
  for (size_t s = 0; s < specs_.size(); ++s) {
    State& st = states_[s];
    const State& os = other.states_[s];
    for (size_t g = 0; g < other.num_groups_; ++g) {
      uint32_t m = group_map[g];
      if (m == kSkipGroup) continue;  // partition-sliced merge: not ours
      switch (specs_[s].kind) {
        case AggKind::kSum:
          if (arg_types_[s] == TypeId::kFloat64) {
            st.sum_f64[m] += os.sum_f64[g];
          } else {
            st.sum_i64[m] += os.sum_i64[g];
          }
          break;
        case AggKind::kAvg:
          st.sum_f64[m] += os.sum_f64[g];
          st.count[m] += os.count[g];
          break;
        case AggKind::kCount:
        case AggKind::kCountStar:
          st.count[m] += os.count[g];
          break;
        case AggKind::kMin:
        case AggKind::kMax: {
          if (!os.has_value[g]) break;
          bool is_min = specs_[s].kind == AggKind::kMin;
          if (arg_types_[s] == TypeId::kFloat64) {
            double v = os.minmax_f64[g];
            if (!st.has_value[m] || (is_min ? v < st.minmax_f64[m]
                                            : v > st.minmax_f64[m])) {
              st.minmax_f64[m] = v;
            }
          } else {
            int64_t v = os.minmax_i64[g];
            if (!st.has_value[m] || (is_min ? v < st.minmax_i64[m]
                                            : v > st.minmax_i64[m])) {
              st.minmax_i64[m] = v;
            }
          }
          st.has_value[m] = 1;
          break;
        }
        case AggKind::kCountDistinct:
          for (int64_t v : os.distinct[g]) {
            auto [it, inserted] = st.distinct[m].insert(v);
            if (inserted) ++distinct_entries_;
          }
          break;
      }
    }
  }
}

uint64_t AggregatorCore::MemoryBytes() const {
  uint64_t total = 0;
  for (const State& st : states_) {
    total += st.sum_f64.capacity() * 8 + st.sum_i64.capacity() * 8 +
             st.count.capacity() * 8 + st.minmax_f64.capacity() * 8 +
             st.minmax_i64.capacity() * 8 + st.has_value.capacity() +
             st.distinct.capacity() * sizeof(std::unordered_set<int64_t>);
  }
  total += distinct_entries_ * 24;  // set nodes
  return total;
}

void AggregatorCore::Reset() {
  for (State& st : states_) st = State{};
  num_groups_ = 0;
  distinct_entries_ = 0;
}

void AggregatorCore::KeepOnlyLastGroup() {
  if (num_groups_ == 0) return;
  size_t last = num_groups_ - 1;
  for (State& st : states_) {
    auto keep = [last](auto& lane) {
      if (lane.empty()) return;
      lane[0] = std::move(lane[last]);
      lane.resize(1);
    };
    keep(st.sum_f64);
    keep(st.sum_i64);
    keep(st.count);
    keep(st.minmax_f64);
    keep(st.minmax_i64);
    keep(st.has_value);
    if (!st.distinct.empty()) {
      distinct_entries_ -= [&] {
        uint64_t dropped = 0;
        for (size_t g = 0; g < last; ++g) dropped += st.distinct[g].size();
        return dropped;
      }();
      st.distinct[0] = std::move(st.distinct[last]);
      st.distinct.resize(1);
    }
  }
  num_groups_ = 1;
}

}  // namespace exec
}  // namespace bdcc
