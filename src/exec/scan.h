// Table scans: plain (zone-map pruned) and BDCC (group-pruned, optionally
// group-ordered for sandwich consumers). Both charge simulated I/O through
// the buffer pool when the table is registered with one.
//
// Scans optionally enforce their sargable predicates *row-level* (planner
// pushdown): each zone-bounded chunk is evaluated with typed, branch-free
// kernels directly over the storage lanes (string ranges pre-resolved to a
// per-dictionary-code verdict table at Open), then
//  - fully-passing chunks bulk-append as before,
//  - fully-failing chunks append nothing (no copy at all),
//  - dense partial chunks bulk-append and attach a selection vector,
//  - sparse partial chunks gather only the qualifying rows.
// Batches returned to Recycle() are reused, so steady-state scanning does
// not allocate per batch.
#ifndef BDCC_EXEC_SCAN_H_
#define BDCC_EXEC_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "bdcc/bdcc_table.h"
#include "bdcc/scatter_scan.h"
#include "exec/morsel.h"
#include "exec/operator.h"
#include "storage/zonemap.h"

namespace bdcc {
namespace exec {

/// Sargable predicate usable against zone maps (MinMax pushdown) and, when
/// row filtering is enabled, enforced per row inside the scan.
struct ScanPredicate {
  std::string column;
  ValueRange range;
};

/// How scan predicates use a column's encoded mirror (Table::
/// BuildEncodedLanes) when one exists:
///  kAuto   — evaluate directly over the encoded blocks (one comparison per
///            RLE run, unpack-compare for bit-packed spans);
///  kOff    — ignore the encoding, evaluate over the flat lane;
///  kDecode — decode the span to scratch first, then evaluate flat (the
///            baseline the benches compare kAuto against).
enum class EncodedEval { kAuto, kOff, kDecode };

namespace internal {

/// One bound row-level predicate with constants pre-typed for the column's
/// storage lane ("bind constants once"): numeric bounds as lane values,
/// string ranges as a per-dictionary-code verdict table.
struct BoundRowPred {
  int col = 0;
  TypeId type = TypeId::kInt64;
  int64_t lo_i64 = 0, hi_i64 = 0;
  int32_t lo_i32 = 0, hi_i32 = 0;
  double lo_f64 = 0, hi_f64 = 0;
  // Whether the float range had an explicit upper bound: NaN mirrors the
  // Filter path's comparison semantics (NaN compares "greater"), passing
  // lower bounds and failing only explicit upper bounds.
  bool has_hi_f64 = false;
  std::vector<uint8_t> code_ok;  // string columns: verdict per dict code
};

/// Shared scan-side machinery: row-predicate kernels, selection building,
/// and batch recycling.
class ScanFilterState {
 public:
  /// Resolve `preds` against `table`'s columns (call at Open).
  Status Bind(const Table& table, const std::vector<ScanPredicate>& preds);

  bool active() const { return !bound_.empty(); }

  void set_encoded_eval(EncodedEval mode) { encoded_eval_ = mode; }

  /// Evaluate all predicates over storage rows [begin, end); selected
  /// chunk-relative indices land in `rel_sel` (scratch reused across calls).
  /// `ctx` takes the encoded-span stats.
  void EvalSpan(const Table& table, uint64_t begin, uint64_t end,
                ExecContext* ctx, std::vector<uint32_t>* rel_sel);

  /// Take a batch for filling: a recycled one when available, else fresh
  /// (typed per `schema`, string dictionaries wired from storage).
  Batch TakeBatch(const Table& table, const std::vector<int>& col_idx,
                  const Schema& schema, size_t reserve_rows);
  /// Return a no-longer-referenced batch for reuse (type-checked).
  void Recycle(Batch&& batch, const Schema& schema);
  void ClearRecycled() { recycled_.clear(); }

 private:
  std::vector<BoundRowPred> bound_;
  EncodedEval encoded_eval_ = EncodedEval::kOff;
  std::vector<uint8_t> mask_;      // scratch
  std::vector<int32_t> decoded_;   // scratch (kDecode baseline)
  std::vector<Batch> recycled_;
};

/// Builds the output selection while chunks append: identity until the
/// first partial chunk, explicit afterwards.
class SelBuilder {
 public:
  /// `n` appended rows, all selected (base = physical rows before append).
  void AddDense(size_t base, size_t n);
  /// Bulk-appended chunk of which only `rel` (chunk-relative) are selected.
  void AddPartial(size_t base, const std::vector<uint32_t>& rel);
  size_t logical_rows() const { return logical_; }
  /// Install num_rows/sel on `out` (physical = rows actually appended).
  void Finish(Batch* out);

 private:
  std::vector<uint32_t> sel_;
  bool explicit_ = false;
  size_t logical_ = 0;
};

}  // namespace internal

/// \brief Sequential scan over a plain table with MinMax zone skipping.
class PlainScan : public Operator {
 public:
  PlainScan(const Table* table, std::vector<std::string> columns,
            std::vector<ScanPredicate> zone_predicates = {});

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override { filter_.ClearRecycled(); }
  void Recycle(Batch&& batch) override {
    filter_.Recycle(std::move(batch), schema_);
  }

  /// Enforce the zone predicates row-level inside the scan (emitting
  /// selection vectors / gathered rows). Call before Open.
  void EnableRowFilter(bool on) { row_filter_ = on; }

  /// Evaluate pushed predicates over encoded lanes per `mode` (when the
  /// table has them; see EncodedEval). Call before Open.
  void SetEncodedEval(EncodedEval mode) { encoded_eval_ = mode; }

  /// Emit zone-sized chunks the zone maps prove fully-passing (or any chunk
  /// when no filter is enforced) as zero-copy views over the storage lanes
  /// instead of copying. Call before Open; consumers must honor the
  /// ColumnVector view contract (see exec/batch.h).
  void EnableZeroCopy(bool on) { zero_copy_ = on; }

  /// Restrict this scan to a strided subset of row morsels (parallel clone
  /// path; see exec/morsel.h). Call before Open.
  void RestrictToMorsels(MorselSet morsels) { morsels_ = std::move(morsels); }

 private:
  bool ZoneAllowed(uint64_t zone) const;
  bool ZoneAllMatch(uint64_t zone) const;

  const Table* table_;
  std::vector<std::string> col_names_;
  std::vector<ScanPredicate> preds_;
  std::vector<int> col_idx_;
  std::vector<std::pair<int, ValueRange>> bound_preds_;
  Schema schema_;
  MorselSet morsels_;
  size_t morsel_idx_ = 0;
  uint64_t cursor_ = 0;
  uint64_t last_zone_counted_ = ~uint64_t{0};
  bool row_filter_ = false;
  bool zero_copy_ = false;
  EncodedEval encoded_eval_ = EncodedEval::kOff;
  internal::ScanFilterState filter_;
};

/// How a BDCC scan should tag batches for sandwich consumers: group id is
/// the concatenation of the listed uses' aligned bin prefixes.
struct GroupSpec {
  size_t use_idx = 0;
  int shared_bits = 0;
};

/// \brief Scan over a BDCC table driven by (pruned, possibly reordered)
/// group ranges from the scatter-scan planner.
class BdccScan : public Operator {
 public:
  BdccScan(const BdccTable* table, std::vector<std::string> columns,
           std::vector<GroupRange> ranges,
           std::vector<ScanPredicate> zone_predicates = {},
           std::vector<GroupSpec> grouping = {}, uint64_t pruned_groups = 0);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override { filter_.ClearRecycled(); }
  void Recycle(Batch&& batch) override {
    filter_.Recycle(std::move(batch), schema_);
  }

  /// Enforce the zone predicates row-level inside the scan. Call before
  /// Open.
  void EnableRowFilter(bool on) { row_filter_ = on; }

  /// Evaluate pushed predicates over encoded lanes per `mode`. Call before
  /// Open.
  void SetEncodedEval(EncodedEval mode) { encoded_eval_ = mode; }

  /// Emit provably fully-passing chunks as zero-copy views (see PlainScan::
  /// EnableZeroCopy). Call before Open.
  void EnableZeroCopy(bool on) { zero_copy_ = on; }

  /// Group id a given reduced key maps to under `grouping`.
  int64_t GroupIdOf(uint64_t key) const;

  /// Restrict this scan to a strided subset of GroupRange-index morsels
  /// (parallel clone path). Only valid for ungrouped scans — grouped scans
  /// parallelize by group-id chunking instead. Call before Open.
  void RestrictToMorsels(MorselSet morsels) { morsels_ = std::move(morsels); }

  /// Attach the delta-side leg of a live-table snapshot: once the clustered
  /// ranges drain, the scan walks `chunks` (sealed delta chunk tables in the
  /// base data()'s column schema) under the same zone pruning and row-level
  /// sarg filtering. Batches are cut at chunk boundaries and string verdicts
  /// are re-bound per chunk — every chunk carries its own dictionaries (see
  /// src/delta/delta_store.h). `pin` keeps the snapshot (base version +
  /// chunks) alive for the scan's lifetime; `table` passed to the
  /// constructor must be that snapshot's base. Only valid for ungrouped
  /// scans (the delta is unclustered, so grouped emission is impossible —
  /// the planner falls back to ungrouped plans while a delta is live). Call
  /// before Open.
  void AttachDelta(std::shared_ptr<const void> pin,
                   std::vector<const Table*> chunks) {
    delta_pin_ = std::move(pin);
    delta_chunks_ = std::move(chunks);
  }

 private:
  bool ZoneAllowed(uint64_t zone) const;
  bool ZoneAllMatch(uint64_t zone) const;
  bool ZoneAllowedIn(const Table& data, uint64_t zone) const;
  bool ZoneAllMatchIn(const Table& data, uint64_t zone) const;
  Result<Batch> NextDelta(ExecContext* ctx);

  const BdccTable* table_;
  std::vector<std::string> col_names_;
  std::vector<GroupRange> ranges_;
  std::vector<ScanPredicate> preds_;
  std::vector<GroupSpec> grouping_;
  uint64_t pruned_groups_;
  std::vector<int> col_idx_;
  std::vector<std::pair<int, ValueRange>> bound_preds_;
  Schema schema_;
  MorselSet morsels_;
  size_t morsel_pos_ = 0;
  size_t range_idx_ = 0;
  uint64_t cursor_ = 0;  // within current range
  bool row_filter_ = false;
  bool zero_copy_ = false;
  EncodedEval encoded_eval_ = EncodedEval::kOff;
  internal::ScanFilterState filter_;
  // Delta-side leg (AttachDelta): snapshot pin, chunk walk state, and the
  // chunk the filter's dictionary verdicts are currently bound to.
  std::shared_ptr<const void> delta_pin_;
  std::vector<const Table*> delta_chunks_;
  size_t delta_idx_ = 0;
  uint64_t delta_cursor_ = 0;
  int delta_bound_ = -1;
  bool main_done_ = false;
};

/// Group id `key` maps to under `grouping` (-1 when grouping is empty):
/// the concatenation of each use's aligned bin prefix, major first. Shared
/// by BdccScan and the planner's group-chunked parallel pipelines.
int64_t GroupIdForKey(const BdccTable& table,
                      const std::vector<GroupSpec>& grouping, uint64_t key);

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_SCAN_H_
