// Table scans: plain (zone-map pruned) and BDCC (group-pruned, optionally
// group-ordered for sandwich consumers). Both charge simulated I/O through
// the buffer pool when the table is registered with one.
#ifndef BDCC_EXEC_SCAN_H_
#define BDCC_EXEC_SCAN_H_

#include <string>
#include <vector>

#include "bdcc/bdcc_table.h"
#include "bdcc/scatter_scan.h"
#include "exec/morsel.h"
#include "exec/operator.h"
#include "storage/zonemap.h"

namespace bdcc {
namespace exec {

/// Sargable predicate usable against zone maps (MinMax pushdown).
struct ScanPredicate {
  std::string column;
  ValueRange range;
};

/// \brief Sequential scan over a plain table with MinMax zone skipping.
class PlainScan : public Operator {
 public:
  PlainScan(const Table* table, std::vector<std::string> columns,
            std::vector<ScanPredicate> zone_predicates = {});

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;

  /// Restrict this scan to a strided subset of row morsels (parallel clone
  /// path; see exec/morsel.h). Call before Open.
  void RestrictToMorsels(MorselSet morsels) { morsels_ = std::move(morsels); }

 private:
  bool ZoneAllowed(uint64_t zone) const;

  const Table* table_;
  std::vector<std::string> col_names_;
  std::vector<ScanPredicate> preds_;
  std::vector<int> col_idx_;
  std::vector<std::pair<int, ValueRange>> bound_preds_;
  Schema schema_;
  MorselSet morsels_;
  size_t morsel_idx_ = 0;
  uint64_t cursor_ = 0;
  uint64_t last_zone_counted_ = ~uint64_t{0};
};

/// How a BDCC scan should tag batches for sandwich consumers: group id is
/// the concatenation of the listed uses' aligned bin prefixes.
struct GroupSpec {
  size_t use_idx = 0;
  int shared_bits = 0;
};

/// \brief Scan over a BDCC table driven by (pruned, possibly reordered)
/// group ranges from the scatter-scan planner.
class BdccScan : public Operator {
 public:
  BdccScan(const BdccTable* table, std::vector<std::string> columns,
           std::vector<GroupRange> ranges,
           std::vector<ScanPredicate> zone_predicates = {},
           std::vector<GroupSpec> grouping = {}, uint64_t pruned_groups = 0);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;

  /// Group id a given reduced key maps to under `grouping`.
  int64_t GroupIdOf(uint64_t key) const;

  /// Restrict this scan to a strided subset of GroupRange-index morsels
  /// (parallel clone path). Only valid for ungrouped scans — grouped scans
  /// parallelize by group-id chunking instead. Call before Open.
  void RestrictToMorsels(MorselSet morsels) { morsels_ = std::move(morsels); }

 private:
  bool ZoneAllowed(uint64_t zone) const;

  const BdccTable* table_;
  std::vector<std::string> col_names_;
  std::vector<GroupRange> ranges_;
  std::vector<ScanPredicate> preds_;
  std::vector<GroupSpec> grouping_;
  uint64_t pruned_groups_;
  std::vector<int> col_idx_;
  std::vector<std::pair<int, ValueRange>> bound_preds_;
  Schema schema_;
  MorselSet morsels_;
  size_t morsel_pos_ = 0;
  size_t range_idx_ = 0;
  uint64_t cursor_ = 0;  // within current range
};

/// Group id `key` maps to under `grouping` (-1 when grouping is empty):
/// the concatenation of each use's aligned bin prefix, major first. Shared
/// by BdccScan and the planner's group-chunked parallel pipelines.
int64_t GroupIdForKey(const BdccTable& table,
                      const std::vector<GroupSpec>& grouping, uint64_t key);

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_SCAN_H_
