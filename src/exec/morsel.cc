#include "exec/morsel.h"

#include <algorithm>

namespace bdcc {
namespace exec {

std::vector<Morsel> MakeRowMorsels(uint64_t num_rows, uint32_t zone_rows,
                                   uint64_t target_rows) {
  std::vector<Morsel> out;
  if (num_rows == 0) return out;
  uint64_t step = std::max<uint64_t>(1, target_rows);
  if (zone_rows > 0) {
    // Round up to a whole number of zones so no zone spans two morsels.
    step = ((step + zone_rows - 1) / zone_rows) * zone_rows;
  }
  for (uint64_t begin = 0; begin < num_rows; begin += step) {
    out.push_back(Morsel{begin, std::min(num_rows, begin + step)});
  }
  return out;
}

std::vector<Morsel> MakeRangeMorsels(const std::vector<GroupRange>& ranges,
                                     uint64_t target_rows) {
  std::vector<Morsel> out;
  uint64_t acc = 0;
  uint64_t begin = 0;
  for (uint64_t i = 0; i < ranges.size(); ++i) {
    acc += ranges[i].row_end - ranges[i].row_begin;
    if (acc >= target_rows) {
      out.push_back(Morsel{begin, i + 1});
      begin = i + 1;
      acc = 0;
    }
  }
  if (begin < ranges.size()) out.push_back(Morsel{begin, ranges.size()});
  return out;
}

}  // namespace exec
}  // namespace bdcc
