// Row-level filtering by a boolean expression.
#ifndef BDCC_EXEC_FILTER_H_
#define BDCC_EXEC_FILTER_H_

#include "exec/expr.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

/// \brief Emits the rows of its child for which `predicate` is true,
/// preserving schema and group tags.
class Filter : public Operator {
 public:
  Filter(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  const Schema& schema() const override { return child_->schema(); }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override { child_->Close(ctx); }
  void Recycle(Batch&& batch) override { child_->Recycle(std::move(batch)); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_FILTER_H_
