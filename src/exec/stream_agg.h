// Streaming (ordered) aggregation: input sorted on the group columns, state
// for exactly one group at a time (the PK scheme's Q18-style aggregate that
// "cannot be beaten" per the paper).
#ifndef BDCC_EXEC_STREAM_AGG_H_
#define BDCC_EXEC_STREAM_AGG_H_

#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/hash_table.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

class StreamAgg : public Operator {
 public:
  StreamAgg(OperatorPtr child, std::vector<std::string> group_cols,
            std::vector<AggSpec> specs);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

 private:
  void FlushCurrentGroup();

  OperatorPtr child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> spec_templates_;
  Schema schema_;

  KeyEncoder encoder_;
  AggregatorCore core_;
  bool have_current_ = false;
  std::string current_key_;
  int64_t current_key_i64_ = 0;
  std::vector<ColumnVector> current_key_row_;  // 1 row
  // Finished groups waiting to be emitted.
  std::vector<ColumnVector> pending_;
  size_t pending_rows_ = 0;
  bool input_done_ = false;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_STREAM_AGG_H_
