// Morsel-driven parallel execution operators.
//
// Compiled plans are split into pipelines at blocking operators; these
// operators run N clones of a pipeline on the shared TaskScheduler and
// recombine the results:
//
//  - ParallelUnion: clone chunks are independent (group-id-chunked sandwich
//    joins/aggregates) — outputs are concatenated in chunk order, which
//    preserves the ascending-group-id contract for downstream sandwich
//    consumers.
//  - ParallelHashAgg: each clone aggregates its morsels into a thread-local
//    HashAgg; partial hash tables are merged serially, in clone order, so
//    results are deterministic for a fixed clone count.
//  - ParallelHashJoin: the build side is materialized once, then per-clone
//    probe pipelines probe the shared read-only table concurrently.
//
// Each clone runs on a child ExecContext (shared buffer pool and memory
// tracker, private stats — see exec_context.h); clones are constructed and
// Open()ed serially on the coordinating thread, because shared ExprPtrs may
// be rebound during Open, and only the Next() drain runs on workers.
#ifndef BDCC_EXEC_PARALLEL_H_
#define BDCC_EXEC_PARALLEL_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/task_scheduler.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/operator.h"

namespace bdcc {
namespace exec {

/// Builds clone `i` of `total` of a pipeline (a scan chain restricted to
/// the clone's morsels or group-id chunk, possibly with a blocking operator
/// on top).
using ChainFactory =
    std::function<Result<OperatorPtr>(size_t i, size_t total)>;

/// \brief Runs `num_chains` independent chains and emits their outputs
/// concatenated in chain order.
class ParallelUnion : public Operator {
 public:
  ParallelUnion(ChainFactory factory, size_t num_chains,
                common::TaskScheduler* scheduler = nullptr);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

 private:
  Status RunAll(ExecContext* ctx);

  ChainFactory factory_;
  size_t num_chains_;
  common::TaskScheduler* scheduler_;
  std::vector<OperatorPtr> chains_;
  std::vector<std::unique_ptr<ExecContext>> child_ctxs_;
  Schema schema_;
  bool ran_ = false;
  std::deque<Batch> ready_;
  // The buffered outputs are real operator memory (the barrier cost of the
  // all-at-once hand-off): registered with the query's tracker, per clone
  // while draining and as one block while emitting.
  std::unique_ptr<TrackedMemory> tracked_ready_;
  uint64_t ready_bytes_ = 0;
};

/// \brief Morsel-parallel hash aggregation: thread-local partials, then a
/// radix-partitioned parallel merge.
///
/// Each clone aggregates its morsels into a thread-local HashAgg exactly as
/// before. The merge phase hash-partitions every partial's *groups* by a
/// value-based key hash (consistent across clones regardless of per-clone
/// dictionaries) and folds each partition with an independent task into its
/// own merge-only HashAgg — no lock-step pairwise MergeFrom chain. Group
/// sums still accumulate in clone order within each partition, so float
/// results are bitwise deterministic for a fixed clone count. Small group
/// counts skip the partitioned machinery and merge serially.
class ParallelHashAgg : public Operator {
 public:
  ParallelHashAgg(ChainFactory child_factory, size_t num_clones,
                  std::vector<std::string> group_cols,
                  std::vector<AggSpec> specs,
                  common::TaskScheduler* scheduler = nullptr);

  const Schema& schema() const override;
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

  /// Total groups across partials below which the merge stays serial (the
  /// partitioned merge's task overhead would dominate).
  static constexpr size_t kMinPartitionedMergeGroups = 4096;

 private:
  Status MergeAll(ExecContext* ctx);

  ChainFactory child_factory_;
  size_t num_clones_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> spec_templates_;
  common::TaskScheduler* scheduler_;
  std::vector<std::unique_ptr<HashAgg>> partials_;
  // Partitioned-merge targets (one per radix partition); empty when the
  // serial merge path ran (scalar aggregate or few groups). Each merger's
  // budget charge is owned by the single worker that merged the partition.
  std::vector<std::unique_ptr<HashAgg>> mergers_;
  std::vector<std::unique_ptr<TrackedMemory>> merger_mem_;
  size_t emit_merger_ = 0;
  std::vector<std::unique_ptr<ExecContext>> child_ctxs_;
  bool merged_ = false;
  // Cached at Open: schema() must stay valid after Close clears partials_
  // (CollectAll builds its typed-empty result from the closed tree).
  Schema schema_;
};

/// Radix partition count (log2) for a parallel hash-join build of
/// `estimated_rows`: enough partitions to feed `threads` insert tasks,
/// growing toward cache-sized sub-tables on big builds, capped at
/// JoinHashTable::kMaxPartitionBits.
int ChoosePartitionBits(uint64_t estimated_rows, size_t threads);

/// \brief Hash join with a shared build table and parallel probe clones.
///
/// By default the build side is one operator drained serially. With
/// EnableParallelBuild the build side becomes N chain clones feeding a
/// two-phase partitioned build (JoinHashTable::ScatterBatch /
/// FinishPartitionedBuild): clones radix-partition their batches into
/// producer-local buffers — fully parallel when the key encoding is
/// read-only, with a serial scatter fallback for string-keyed encoders —
/// then one task per partition builds an unshared sub-table. Probe clones
/// route by the same radix bits inside the shared table.
class ParallelHashJoin : public Operator {
 public:
  ParallelHashJoin(ChainFactory probe_factory, size_t num_clones,
                   OperatorPtr build, std::vector<std::string> probe_keys,
                   std::vector<std::string> build_keys, JoinType type,
                   common::TaskScheduler* scheduler = nullptr);

  /// Switch the build side to `num_clones` parallel chains with a radix-
  /// partitioned table of 2^partition_bits sub-tables. The serial `build`
  /// operator passed to the constructor is ignored (may be null).
  void EnableParallelBuild(ChainFactory build_factory, int partition_bits);

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Result<Batch> Next(ExecContext* ctx) override;
  void Close(ExecContext* ctx) override;

 private:
  Status OpenBuildSerial(ExecContext* ctx);
  Status OpenBuildPartitioned(ExecContext* ctx);
  Status RunAll(ExecContext* ctx);

  ChainFactory probe_factory_;
  size_t num_clones_;
  OperatorPtr build_;
  ChainFactory build_factory_;
  int partition_bits_ = 0;
  std::vector<std::string> probe_keys_, build_keys_;
  JoinType type_;
  common::TaskScheduler* scheduler_;

  JoinHashTable table_;
  std::vector<OperatorPtr> builds_;
  std::vector<OperatorPtr> probes_;
  std::vector<HashJoinProber> probers_;
  std::vector<std::unique_ptr<ExecContext>> child_ctxs_;
  std::vector<std::unique_ptr<ExecContext>> build_ctxs_;
  std::unique_ptr<TrackedMemory> tracked_;
  Schema schema_;
  bool ran_ = false;
  std::deque<Batch> ready_;
  std::unique_ptr<TrackedMemory> tracked_ready_;
  uint64_t ready_bytes_ = 0;
};

}  // namespace exec
}  // namespace bdcc

#endif  // BDCC_EXEC_PARALLEL_H_
