#include "opt/pushdown.h"

#include <algorithm>
#include <set>

#include "exec/filter.h"
#include "exec/scan.h"

namespace bdcc {
namespace opt {

namespace {

struct Edge {
  const LogicalNode* from_scan;  // referencing side
  const LogicalNode* to_scan;    // referenced side
  std::string fk_id;
};

void CollectScans(const NodePtr& node, std::vector<const LogicalNode*>* out) {
  if (node->kind == NodeKind::kScan) {
    out->push_back(node.get());
  }
  for (const NodePtr& c : node->children) CollectScans(c, out);
}

// Scans under `node` of a given table.
void ScansOfTable(const NodePtr& node, const std::string& table,
                  std::vector<const LogicalNode*>* out) {
  if (node->kind == NodeKind::kScan && node->scan.table == table) {
    out->push_back(node.get());
  }
  for (const NodePtr& c : node->children) ScansOfTable(c, table, out);
}

void CollectEdges(const NodePtr& node, const PhysicalDb& db,
                  std::vector<Edge>* edges) {
  for (const NodePtr& c : node->children) CollectEdges(c, db, edges);
  if (node->kind != NodeKind::kJoin || node->join.fk_id.empty()) return;
  // Propagation across anti / outer joins can change semantics; restrict
  // edges to inner and semi joins (see header).
  if (node->join.type != exec::JoinType::kInner &&
      node->join.type != exec::JoinType::kLeftSemi) {
    return;
  }
  auto fk_result = db.schema_catalog().GetForeignKey(node->join.fk_id);
  if (!fk_result.ok()) return;
  const catalog::ForeignKey* fk = fk_result.value();
  // Locate the unique referencing/referenced scan on either side.
  for (int from_side = 0; from_side < 2; ++from_side) {
    std::vector<const LogicalNode*> from_scans, to_scans;
    ScansOfTable(node->children[from_side], fk->from_table, &from_scans);
    ScansOfTable(node->children[1 - from_side], fk->to_table, &to_scans);
    if (from_scans.size() == 1 && to_scans.size() == 1) {
      edges->push_back(Edge{from_scans[0], to_scans[0], fk->id});
      return;
    }
  }
}

// Plan-time evaluation: rows of `scan`'s table surviving its own sargs and
// residual. Returns the filtered rows of `wanted_columns`. Null pool so no
// simulated I/O is charged.
Result<exec::Batch> EvalScanAtPlanTime(const ScanNode& scan,
                                       const std::vector<std::string>& extra,
                                       const PhysicalDb& db) {
  const Table* table = db.storage(scan.table);
  if (table == nullptr) return Status::NotFound("no table " + scan.table);
  std::vector<std::string> cols = scan.columns;
  for (const std::string& c : extra) {
    if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
      cols.push_back(c);
    }
  }
  exec::OperatorPtr op =
      std::make_unique<exec::PlainScan>(table, cols);
  std::vector<exec::ExprPtr> conjuncts;
  for (const Sarg& s : scan.sargs) conjuncts.push_back(SargRowExpr(s));
  if (scan.residual) conjuncts.push_back(scan.residual);
  if (!conjuncts.empty()) {
    op = std::make_unique<exec::Filter>(std::move(op),
                                        exec::AndAll(conjuncts));
  }
  exec::ExecContext ctx(nullptr);
  exec::Operator* raw = op.get();
  return exec::CollectAll(raw, &ctx);
}

bool ScanHasFilters(const ScanNode& scan) {
  return !scan.sargs.empty() || scan.residual != nullptr;
}

}  // namespace

Result<PushdownAnalysis> AnalyzePushdown(const NodePtr& root,
                                         const PhysicalDb& db,
                                         uint64_t max_host_rows) {
  PushdownAnalysis out;
  CollectScans(root, &out.scans);
  if (db.scheme() != Scheme::kBdcc) return out;

  std::vector<Edge> edges;
  CollectEdges(root, db, &edges);

  // The dimensions in play: union over BDCC scans' uses.
  struct HostKey {
    const LogicalNode* host_scan;
    std::string dim_name;
    bool operator<(const HostKey& o) const {
      return std::tie(host_scan, dim_name) < std::tie(o.host_scan, o.dim_name);
    }
  };
  struct BinRange {
    uint64_t lo, hi;
  };
  std::map<HostKey, BinRange> resolved;
  std::map<HostKey, std::string> provenance;
  std::set<HostKey> attempted;

  // Small tables may be fully evaluated at plan time to resolve arbitrary
  // residual filters into bin ranges (NATION / REGION style); larger hosts
  // only contribute through sargs on key-prefix columns, which translate to
  // bin ranges without touching data.
  constexpr uint64_t kEvalRowLimit = 4096;

  // Resolve the restriction a host scan implies for dimension `dim`.
  auto resolve_host = [&](const LogicalNode* host_scan,
                          const DimensionPtr& dim) -> Status {
    HostKey key{host_scan, dim->name()};
    if (attempted.count(key)) return Status::OK();
    attempted.insert(key);

    const Table* host_table = db.storage(host_scan->scan.table);
    if (host_table == nullptr) return Status::OK();
    bool have = false;
    uint64_t lo = 0, hi = 0;
    std::string source;

    // Rule 1a: a sarg on the dimension key's first column maps straight to
    // a bin range (exact for single-column keys; a consecutive prefix range
    // for composite keys) — no data access needed.
    for (const Sarg& s : host_scan->scan.sargs) {
      if (dim->key_columns().empty() || s.column != dim->key_columns()[0]) {
        continue;
      }
      CompositeValue plo, phi;
      if (s.range.lo) plo.push_back(*s.range.lo);
      if (s.range.hi) phi.push_back(*s.range.hi);
      uint64_t slo, shi;
      if (!dim->BinRangePrefix(s.range.lo ? &plo : nullptr,
                               s.range.hi ? &phi : nullptr, &slo, &shi)) {
        continue;
      }
      if (have) {
        lo = std::max(lo, slo);
        hi = std::min(hi, shi);
      } else {
        lo = slo;
        hi = shi;
        have = true;
      }
      source += (source.empty() ? "" : " & ");
      source += "selection on " + host_scan->scan.table + "." + s.column;
    }

    // Rule 1b: small hosts -> evaluate all filters at plan time and take
    // the qualifying rows' bin range.
    if (ScanHasFilters(host_scan->scan) &&
        host_table->num_rows() <= std::min<uint64_t>(kEvalRowLimit,
                                                     max_host_rows)) {
      BDCC_ASSIGN_OR_RETURN(
          exec::Batch rows,
          EvalScanAtPlanTime(host_scan->scan, dim->key_columns(), db));
      if (rows.num_rows < host_table->num_rows() && rows.num_rows > 0) {
        // Key column positions in the evaluated output.
        std::vector<int> key_pos;
        {
          std::vector<std::string> cols = host_scan->scan.columns;
          for (const std::string& c : dim->key_columns()) {
            if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
              cols.push_back(c);
            }
          }
          for (const std::string& k : dim->key_columns()) {
            key_pos.push_back(static_cast<int>(
                std::find(cols.begin(), cols.end(), k) - cols.begin()));
          }
        }
        uint64_t min_bin = ~uint64_t{0}, max_bin = 0;
        for (size_t r = 0; r < rows.num_rows; ++r) {
          CompositeValue v;
          for (int p : key_pos) v.push_back(rows.columns[p].GetValue(r));
          uint64_t bin = dim->BinOf(v);
          min_bin = std::min(min_bin, bin);
          max_bin = std::max(max_bin, bin);
        }
        if (have) {
          lo = std::max(lo, min_bin);
          hi = std::min(hi, max_bin);
        } else {
          lo = min_bin;
          hi = max_bin;
          have = true;
        }
        source += (source.empty() ? "" : " & ");
        source += "selection on " + host_scan->scan.table;
      }
    }

    // Rule 2 (snowflake): a filtered scan one FK hop below the host whose
    // FK columns form a prefix of the dimension key (REGION -> D_NATION).
    for (const Edge& e : edges) {
      if (e.from_scan != host_scan) continue;
      auto fk_result = db.schema_catalog().GetForeignKey(e.fk_id);
      if (!fk_result.ok()) continue;
      const catalog::ForeignKey* fk = fk_result.value();
      if (fk->from_columns.size() != 1 || dim->key_columns().empty() ||
          fk->from_columns[0] != dim->key_columns()[0]) {
        continue;
      }
      if (!ScanHasFilters(e.to_scan->scan)) continue;
      const Table* target = db.storage(e.to_scan->scan.table);
      if (target == nullptr || target->num_rows() > max_host_rows) continue;
      BDCC_ASSIGN_OR_RETURN(
          exec::Batch rows,
          EvalScanAtPlanTime(e.to_scan->scan, fk->to_columns, db));
      if (rows.num_rows == 0 || rows.num_rows >= target->num_rows()) continue;
      // Qualifying prefix values -> prefix bin range.
      std::vector<std::string> cols = e.to_scan->scan.columns;
      if (std::find(cols.begin(), cols.end(), fk->to_columns[0]) ==
          cols.end()) {
        cols.push_back(fk->to_columns[0]);
      }
      int pos = static_cast<int>(
          std::find(cols.begin(), cols.end(), fk->to_columns[0]) -
          cols.begin());
      Value vmin = rows.columns[pos].GetValue(0);
      Value vmax = vmin;
      for (size_t r = 1; r < rows.num_rows; ++r) {
        Value v = rows.columns[pos].GetValue(r);
        if (v.Compare(vmin) < 0) vmin = v;
        if (v.Compare(vmax) > 0) vmax = v;
      }
      CompositeValue plo{vmin}, phi{vmax};
      uint64_t slo, shi;
      if (!dim->BinRangePrefix(&plo, &phi, &slo, &shi)) continue;
      if (have) {
        lo = std::max(lo, slo);
        hi = std::min(hi, shi);
      } else {
        lo = slo;
        hi = shi;
        have = true;
      }
      source += (source.empty() ? "" : " & ");
      source += "selection on " + e.to_scan->scan.table + " via " + fk->id;
    }

    if (have && lo <= hi) {
      resolved[key] = BinRange{lo, hi};
      provenance[key] = source;
    }
    return Status::OK();
  };

  // For every BDCC scan and every use, find the host scan whose FK chain
  // matches the use's path, resolve it, and record the restriction.
  for (const LogicalNode* scan : out.scans) {
    const BdccTable* bt = db.bdcc(scan->scan.table);
    if (bt == nullptr) continue;
    for (size_t u = 0; u < bt->uses().size(); ++u) {
      const DimensionUse& use = bt->uses()[u];
      // Follow the use's FK chain through the query's join edges.
      const LogicalNode* at = scan;
      bool ok = true;
      for (const std::string& fk_id : use.path.fk_ids) {
        const LogicalNode* next = nullptr;
        for (const Edge& e : edges) {
          if (e.from_scan == at && e.fk_id == fk_id) {
            next = e.to_scan;
            break;
          }
        }
        if (next == nullptr) {
          ok = false;
          break;
        }
        at = next;
      }
      if (!ok || at->scan.table != use.dimension->table()) continue;
      BDCC_RETURN_NOT_OK(resolve_host(at, use.dimension));
      HostKey key{at, use.dimension->name()};
      auto it = resolved.find(key);
      if (it == resolved.end()) continue;
      out.restrictions.push_back(UseRestriction{
          scan, u, it->second.lo, it->second.hi, provenance[key]});
    }
  }
  return out;
}

}  // namespace opt
}  // namespace bdcc
