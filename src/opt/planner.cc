#include "opt/planner.h"

#include <algorithm>
#include <map>

#include "bdcc/scatter_scan.h"
#include "common/bits.h"
#include "common/task_scheduler.h"
#include "delta/live_table.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/merge_join.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/project.h"
#include "exec/sandwich_agg.h"
#include "exec/sandwich_join.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/stream_agg.h"
#include "exec/topn.h"

namespace bdcc {
namespace opt {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPlain:
      return "plain";
    case Scheme::kPk:
      return "pk";
    case Scheme::kBdcc:
      return "bdcc";
  }
  return "?";
}

namespace {

/// Drops the `shift` minor bits of the group tag so a (major..minor) grouped
/// stream aligns with a coarser-partitioned partner.
class GroupRetag : public exec::Operator {
 public:
  GroupRetag(exec::OperatorPtr child, int shift)
      : child_(std::move(child)), shift_(shift) {}

  const exec::Schema& schema() const override { return child_->schema(); }
  Status Open(exec::ExecContext* ctx) override { return child_->Open(ctx); }
  Result<exec::Batch> Next(exec::ExecContext* ctx) override {
    BDCC_ASSIGN_OR_RETURN(exec::Batch b, child_->Next(ctx));
    if (!b.empty() && b.group_id >= 0) b.group_id >>= shift_;
    return b;
  }
  void Close(exec::ExecContext* ctx) override { child_->Close(ctx); }
  void Recycle(exec::Batch&& b) override { child_->Recycle(std::move(b)); }

 private:
  exec::OperatorPtr child_;
  int shift_;
};

struct AbsorbedTable {
  std::string table;
  std::vector<std::string> path;  // FK chain from the probe base table
};

// ---- Parallel pipeline support ------------------------------------------
//
// When PlannerOptions::num_threads > 1, scan chains additionally carry a
// *leaf factory*: a closure that instantiates another copy of the chain
// restricted to one clone's share of the work. Two restriction modes exist:
//  - morsel mode (ungrouped scans): clone i walks a deterministic strided
//    subset of the shared morsel plan;
//  - group-id mode (grouped BDCC scans): the clone scans only the ranges
//    whose group id falls in [gid_lo, gid_hi], so sandwich operators can be
//    chunked with both sides aligned on the same group-id span.

/// Rows per morsel; zone-aligned for plain tables, a pack target for
/// GroupRange morsels.
constexpr uint64_t kMorselRows = 8192;
/// Leaf size below which parallel pipelines are not worth their overhead.
constexpr uint64_t kMinParallelRows = 2 * kMorselRows;
/// Build-side floor for the partitioned parallel build: builds are cheap
/// per row, so the bar is lower than for probe pipelines — a couple of
/// batches per producer already amortizes the scatter refs.
constexpr uint64_t kMinParallelBuildRows = 4096;

struct LeafClone {
  size_t instance = 0;
  size_t total = 1;
  // When >= 0: restrict a grouped BDCC scan to group ids in [gid_lo, gid_hi].
  int64_t gid_lo = -1;
  int64_t gid_hi = -1;
};

using LeafFactory =
    std::function<Result<exec::OperatorPtr>(const LeafClone&)>;

/// Contiguous chunk of the ascending distinct-group-id universe.
struct GidSpan {
  int64_t lo = 0;
  int64_t hi = 0;
};

std::vector<GidSpan> ChunkGids(const std::vector<int64_t>& gids,
                               size_t max_chunks) {
  size_t chunks = std::min(max_chunks, gids.size());
  std::vector<GidSpan> out;
  if (chunks == 0) return out;
  size_t per = (gids.size() + chunks - 1) / chunks;
  for (size_t b = 0; b < gids.size(); b += per) {
    size_t e = std::min(gids.size(), b + per);
    out.push_back(GidSpan{gids[b], gids[e - 1]});
  }
  return out;
}

struct SubPlan {
  exec::OperatorPtr op;
  const LogicalNode* base_scan = nullptr;  // set for scan-chains
  std::string sorted_on;
  const BdccTable* grouped_base = nullptr;
  std::vector<exec::GroupSpec> grouping;  // major..minor
  std::vector<AbsorbedTable> absorbed;

  // Parallel-clone support (empty/0 unless num_threads > 1 and the subplan
  // is a pure scan chain).
  LeafFactory leaf_factory;
  uint64_t leaf_rows = 0;
  // Ascending distinct group ids of a grouped scan chain (group-id mode).
  std::shared_ptr<const std::vector<int64_t>> leaf_gids;
};

struct GroupRequest {
  std::vector<size_t> order;  // scatter-scan use order (major first)
  std::vector<exec::GroupSpec> specs;
};

// Chain of Filter nodes over a Scan?
const LogicalNode* ScanChainBase(const NodePtr& node) {
  const LogicalNode* at = node.get();
  while (at->kind == NodeKind::kFilter) at = at->children[0].get();
  return at->kind == NodeKind::kScan ? at : nullptr;
}

class PlannerImpl {
 public:
  PlannerImpl(const PhysicalDb& db, const PlannerOptions& opts,
              PushdownAnalysis analysis)
      : db_(db), opts_(opts), analysis_(std::move(analysis)) {}

  Result<SubPlan> Compile(const NodePtr& node, const GroupRequest* req);
  std::vector<std::string> TakeNotes() { return std::move(notes_); }

 private:
  void Note(std::string note) { notes_.push_back(std::move(note)); }

  Result<SubPlan> CompileScan(const NodePtr& node, const GroupRequest* req);
  Result<SubPlan> CompileJoin(const NodePtr& node);
  Result<SubPlan> CompileAgg(const NodePtr& node);

  // Sandwich helpers ------------------------------------------------------

  struct SharedUse {
    size_t probe_use;  // use index on the probe-side base table
    size_t build_use;  // use index on the build-side base table
    int shared_bits;
    size_t probe_path_len;
  };

  // Shared co-clustered uses between two base tables joined along `fk`,
  // where `probe_prefix` is the FK chain from the probe base table to the
  // FK's from-table.
  std::vector<SharedUse> FindSharedUses(
      const BdccTable* probe, const BdccTable* build,
      const catalog::ForeignKey* fk,
      const std::vector<std::string>& probe_prefix, bool fk_from_probe_side);

  // True when `table` currently has unmerged delta rows. Grouped (sandwich)
  // plans are skipped for such tables: the delta is unclustered, so a scan
  // cannot emit it under the group-id contract. This only disables the
  // grouping/pruning *optimizations* — predicates stay enforced row-level
  // by scan sargs, Filters and joins, so results are unchanged; the
  // sandwich paths light back up once the background merger drains the
  // delta.
  bool LiveDelta(const std::string& table) const {
    std::shared_ptr<const delta::TableSnapshot> snap = db_.snapshot(table);
    return snap != nullptr && !snap->chunks.empty();
  }

  const PhysicalDb& db_;
  PlannerOptions opts_;
  PushdownAnalysis analysis_;
  std::vector<std::string> notes_;
};

std::vector<PlannerImpl::SharedUse> PlannerImpl::FindSharedUses(
    const BdccTable* probe, const BdccTable* build,
    const catalog::ForeignKey* fk,
    const std::vector<std::string>& probe_prefix, bool fk_from_probe_side) {
  std::vector<SharedUse> out;
  for (size_t pu = 0; pu < probe->uses().size(); ++pu) {
    const DimensionUse& use_p = probe->uses()[pu];
    // The probe use's path must be probe_prefix + [fk] + build_path when the
    // FK points from the probe side; when the FK points from the build side
    // (build references probe), the build use's path is [fk] + probe_path.
    for (size_t bu = 0; bu < build->uses().size(); ++bu) {
      const DimensionUse& use_b = build->uses()[bu];
      if (use_p.dimension->name() != use_b.dimension->name()) continue;
      bool match = false;
      if (fk_from_probe_side) {
        std::vector<std::string> expect = probe_prefix;
        expect.push_back(fk->id);
        expect.insert(expect.end(), use_b.path.fk_ids.begin(),
                      use_b.path.fk_ids.end());
        match = use_p.path.fk_ids == expect;
      } else {
        // Build references probe: build path = [fk] + probe path, and the
        // probe must be the FK chain start (no prefix).
        if (!probe_prefix.empty()) continue;
        std::vector<std::string> expect;
        expect.push_back(fk->id);
        expect.insert(expect.end(), use_p.path.fk_ids.begin(),
                      use_p.path.fk_ids.end());
        match = use_b.path.fk_ids == expect;
      }
      if (!match) continue;
      int bits_p = bits::Ones(probe->ReducedMask(pu));
      int bits_b = bits::Ones(build->ReducedMask(bu));
      int shared = std::min(bits_p, bits_b);
      if (shared <= 0) continue;
      out.push_back(SharedUse{pu, bu, shared, use_p.path.fk_ids.size()});
    }
  }
  // Longest probe path first: dimensions reachable further up the join
  // chain stay major, enabling cascaded sandwiches via retagging.
  std::stable_sort(out.begin(), out.end(),
                   [](const SharedUse& a, const SharedUse& b) {
                     return a.probe_path_len > b.probe_path_len;
                   });
  // One entry per probe use (a use can only be interleaved once).
  std::vector<SharedUse> dedup;
  for (const SharedUse& s : out) {
    bool seen = false;
    for (const SharedUse& d : dedup) {
      if (d.probe_use == s.probe_use || d.build_use == s.build_use) {
        seen = true;
        break;
      }
    }
    if (!seen) dedup.push_back(s);
  }
  return dedup;
}

Result<SubPlan> PlannerImpl::CompileScan(const NodePtr& node,
                                         const GroupRequest* req) {
  const ScanNode& scan = node->scan;
  const Table* storage = db_.storage(scan.table);
  if (storage == nullptr) {
    return Status::NotFound("no storage for table " + scan.table);
  }
  std::vector<exec::ScanPredicate> zone_preds;
  if (opts_.enable_zonemaps) {
    for (const Sarg& s : scan.sargs) {
      zone_preds.push_back(exec::ScanPredicate{s.column, s.range});
    }
  }

  // Row-level enforcement of sargs + residual (applied below and inside
  // every parallel clone). Range-exact sargs are pushed into the scan
  // itself (selection-vector kernels); sargs with a custom row expression
  // (whose range over-approximates, e.g. prefix LIKE) and residuals keep a
  // Filter on top.
  bool scan_filters_rows = opts_.enable_scan_filter_pushdown &&
                           opts_.enable_zonemaps &&
                           std::any_of(scan.sargs.begin(), scan.sargs.end(),
                                       [](const Sarg& s) {
                                         return s.row_expr == nullptr;
                                       });
  exec::EncodedEval encoded_eval = opts_.enable_encoded_exec
                                       ? exec::EncodedEval::kAuto
                                       : exec::EncodedEval::kOff;
  bool zero_copy = opts_.enable_zero_copy_views;
  std::vector<exec::ExprPtr> conjuncts;
  for (const Sarg& s : scan.sargs) {
    if (scan_filters_rows && s.row_expr == nullptr) continue;
    conjuncts.push_back(SargRowExpr(s));
  }
  if (scan.residual) conjuncts.push_back(scan.residual);
  auto add_filter = [&conjuncts](exec::OperatorPtr op) -> exec::OperatorPtr {
    if (conjuncts.empty()) return op;
    return std::make_unique<exec::Filter>(std::move(op),
                                          exec::AndAll(conjuncts));
  };

  SubPlan out;
  const BdccTable* bt =
      db_.scheme() == Scheme::kBdcc ? db_.bdcc(scan.table) : nullptr;
  if (bt != nullptr) {
    // Live table: pin the db's snapshot and collect the delta-side chunk
    // tables. The pin (copied into every scan leaf) keeps the base version
    // and chunks alive for the plan's whole lifetime.
    std::shared_ptr<const delta::TableSnapshot> snap = db_.snapshot(scan.table);
    std::vector<const Table*> delta_tables;
    if (snap != nullptr) {
      BDCC_CHECK(snap->base.get() == bt);  // snapshot()/bdcc() must agree
      for (const auto& chunk : snap->chunks) {
        delta_tables.push_back(&chunk->data());
      }
    }
    if (!delta_tables.empty() && req != nullptr) {
      // Callers gate grouped requests on LiveDelta(); reaching here means a
      // sandwich site missed the gate.
      return Status::Internal("grouped scan requested over live table " +
                              scan.table + " with unmerged delta rows");
    }
    std::vector<GroupRange> ranges;
    if (req != nullptr && !req->order.empty()) {
      BDCC_ASSIGN_OR_RETURN(ranges, PlanScatterScan(*bt, req->order));
    } else {
      ranges = PlanNaturalScan(*bt);
    }
    uint64_t before = ranges.size();
    if (opts_.enable_group_pruning) {
      for (const UseRestriction& r : analysis_.restrictions) {
        if (r.scan != node.get()) continue;
        uint64_t lo, hi;
        if (!bt->BinRangeToGroupPrefix(r.use_idx, r.lo_bin, r.hi_bin, &lo,
                                       &hi)) {
          continue;
        }
        ranges = FilterGroupsByPrefix(*bt, std::move(ranges), r.use_idx, lo, hi);
        Note("pushdown: " + scan.table + " groups via " +
             bt->uses()[r.use_idx].dimension->name() + " (" + r.source + ")");
      }
    }
    uint64_t pruned = before - ranges.size();
    std::vector<exec::GroupSpec> grouping =
        req != nullptr ? req->specs : std::vector<exec::GroupSpec>{};

    if (opts_.num_threads > 1) {
      auto shared_ranges =
          std::make_shared<const std::vector<GroupRange>>(ranges);
      out.leaf_rows = bt->data().num_rows();
      std::shared_ptr<const std::vector<exec::Morsel>> morsels;
      if (grouping.empty()) {
        morsels = std::make_shared<const std::vector<exec::Morsel>>(
            exec::MakeRangeMorsels(*shared_ranges, kMorselRows));
      } else {
        // Group-id mode: record the ascending distinct group ids so callers
        // can chunk sandwich pipelines.
        auto gids = std::make_shared<std::vector<int64_t>>();
        for (const GroupRange& r : *shared_ranges) {
          gids->push_back(exec::GroupIdForKey(*bt, grouping, r.key));
        }
        std::sort(gids->begin(), gids->end());
        gids->erase(std::unique(gids->begin(), gids->end()), gids->end());
        out.leaf_gids = std::move(gids);
      }
      out.leaf_factory = [bt, cols = scan.columns, shared_ranges, zone_preds,
                          grouping, pruned, morsels, conjuncts,
                          scan_filters_rows, encoded_eval, zero_copy, snap,
                          delta_tables](
                             const LeafClone& c) -> Result<exec::OperatorPtr> {
        std::vector<GroupRange> clone_ranges;
        if (c.gid_lo >= 0) {
          for (const GroupRange& r : *shared_ranges) {
            int64_t g = exec::GroupIdForKey(*bt, grouping, r.key);
            if (g >= c.gid_lo && g <= c.gid_hi) clone_ranges.push_back(r);
          }
        } else {
          BDCC_CHECK(grouping.empty());
          clone_ranges = *shared_ranges;
        }
        auto scan_op = std::make_unique<exec::BdccScan>(
            bt, cols, std::move(clone_ranges), zone_preds, grouping,
            c.instance == 0 ? pruned : 0);
        scan_op->EnableRowFilter(scan_filters_rows);
        scan_op->SetEncodedEval(encoded_eval);
        scan_op->EnableZeroCopy(zero_copy);
        if (c.gid_lo < 0 && morsels != nullptr) {
          scan_op->RestrictToMorsels(
              exec::MorselSet{morsels, c.instance, c.total});
        }
        if (!delta_tables.empty()) {
          // Stride whole chunks across clones: chunks are disjoint, so the
          // union over clones covers the delta exactly once.
          std::vector<const Table*> clone_chunks;
          for (size_t i = c.instance; i < delta_tables.size(); i += c.total) {
            clone_chunks.push_back(delta_tables[i]);
          }
          scan_op->AttachDelta(snap, std::move(clone_chunks));
        }
        exec::OperatorPtr op = std::move(scan_op);
        if (!conjuncts.empty()) {
          op = std::make_unique<exec::Filter>(std::move(op),
                                              exec::AndAll(conjuncts));
        }
        return op;
      };
    }

    auto bdcc_scan = std::make_unique<exec::BdccScan>(
        bt, scan.columns, std::move(ranges), zone_preds, grouping, pruned);
    bdcc_scan->EnableRowFilter(scan_filters_rows);
    bdcc_scan->SetEncodedEval(encoded_eval);
    bdcc_scan->EnableZeroCopy(zero_copy);
    if (!delta_tables.empty()) {
      bdcc_scan->AttachDelta(snap, delta_tables);
      Note("delta leg: " + scan.table + " + " +
           std::to_string(delta_tables.size()) + " chunk(s), " +
           std::to_string(snap->delta_rows) + " rows @epoch " +
           std::to_string(snap->epoch));
    }
    out.op = add_filter(std::move(bdcc_scan));
    if (req != nullptr) {
      out.grouped_base = bt;
      out.grouping = req->specs;
    }
  } else {
    if (opts_.num_threads > 1) {
      uint32_t zone_rows = storage->HasZoneMaps() ? storage->zone_rows() : 0;
      auto morsels = std::make_shared<const std::vector<exec::Morsel>>(
          exec::MakeRowMorsels(storage->num_rows(), zone_rows, kMorselRows));
      out.leaf_rows = storage->num_rows();
      out.leaf_factory = [storage, cols = scan.columns, zone_preds, morsels,
                          conjuncts, scan_filters_rows, encoded_eval,
                          zero_copy](
                             const LeafClone& c) -> Result<exec::OperatorPtr> {
        BDCC_CHECK(c.gid_lo < 0);  // plain scans have no group ids
        auto scan_op =
            std::make_unique<exec::PlainScan>(storage, cols, zone_preds);
        scan_op->EnableRowFilter(scan_filters_rows);
        scan_op->SetEncodedEval(encoded_eval);
        scan_op->EnableZeroCopy(zero_copy);
        scan_op->RestrictToMorsels(
            exec::MorselSet{morsels, c.instance, c.total});
        exec::OperatorPtr op = std::move(scan_op);
        if (!conjuncts.empty()) {
          op = std::make_unique<exec::Filter>(std::move(op),
                                              exec::AndAll(conjuncts));
        }
        return op;
      };
    }
    auto plain_scan = std::make_unique<exec::PlainScan>(
        storage, scan.columns, zone_preds);
    plain_scan->EnableRowFilter(scan_filters_rows);
    plain_scan->SetEncodedEval(encoded_eval);
    plain_scan->EnableZeroCopy(zero_copy);
    out.op = add_filter(std::move(plain_scan));
    out.sorted_on = db_.sorted_on(scan.table);
  }

  out.base_scan = node.get();
  out.absorbed.push_back(AbsorbedTable{scan.table, {}});
  return out;
}

Result<SubPlan> PlannerImpl::CompileJoin(const NodePtr& node) {
  const JoinNode& jn = node->join;
  const NodePtr& left_l = node->children[0];
  const NodePtr& right_l = node->children[1];
  const LogicalNode* left_base = ScanChainBase(left_l);
  const LogicalNode* right_base = ScanChainBase(right_l);

  const catalog::ForeignKey* fk = nullptr;
  if (!jn.fk_id.empty()) {
    auto fk_result = db_.schema_catalog().GetForeignKey(jn.fk_id);
    if (fk_result.ok()) fk = fk_result.value();
  }

  // ---- BDCC: sandwich join between co-clustered inputs ----
  if (db_.scheme() == Scheme::kBdcc && opts_.enable_sandwich && fk != nullptr) {
    // Case A: both sides are scan chains over BDCC tables.
    if (left_base != nullptr && right_base != nullptr) {
      const BdccTable* bt_l = db_.bdcc(left_base->scan.table);
      const BdccTable* bt_r = db_.bdcc(right_base->scan.table);
      // Unmerged delta rows on either side rule out grouped emission (the
      // hash-join fallback below still sees them via the delta scan leg).
      if (bt_l != nullptr && bt_r != nullptr &&
          !LiveDelta(left_base->scan.table) &&
          !LiveDelta(right_base->scan.table)) {
        bool fk_from_left = fk->from_table == left_base->scan.table &&
                            fk->to_table == right_base->scan.table;
        bool fk_from_right = fk->from_table == right_base->scan.table &&
                             fk->to_table == left_base->scan.table;
        if (fk_from_left || fk_from_right) {
          std::vector<SharedUse> shared =
              FindSharedUses(bt_l, bt_r, fk, {}, fk_from_left);
          if (!shared.empty()) {
            GroupRequest left_req, right_req;
            std::string dims;
            for (const SharedUse& s : shared) {
              left_req.order.push_back(s.probe_use);
              left_req.specs.push_back(
                  exec::GroupSpec{s.probe_use, s.shared_bits});
              right_req.order.push_back(s.build_use);
              right_req.specs.push_back(
                  exec::GroupSpec{s.build_use, s.shared_bits});
              if (!dims.empty()) dims += ",";
              dims += bt_l->uses()[s.probe_use].dimension->name();
            }
            BDCC_ASSIGN_OR_RETURN(SubPlan left, Compile(left_l, &left_req));
            BDCC_ASSIGN_OR_RETURN(SubPlan right, Compile(right_l, &right_req));
            Note("sandwich join " + left_base->scan.table + "⋈" +
                 right_base->scan.table + " on [" + dims + "]");
            SubPlan out;
            if (opts_.num_threads > 1 && left.leaf_factory &&
                right.leaf_factory && left.leaf_gids &&
                left.leaf_gids->size() >= 2 &&
                left.leaf_rows >= kMinParallelRows) {
              // Chunk the probe side's group-id universe; each chunk joins a
              // gid-aligned slice of both sides independently.
              std::vector<GidSpan> spans =
                  ChunkGids(*left.leaf_gids,
                            static_cast<size_t>(opts_.num_threads));
              LeafFactory lf = left.leaf_factory;
              LeafFactory rf = right.leaf_factory;
              auto lk = jn.left_keys;
              auto rk = jn.right_keys;
              auto type = jn.type;
              exec::ChainFactory factory =
                  [lf, rf, spans, lk, rk, type](
                      size_t i, size_t n) -> Result<exec::OperatorPtr> {
                LeafClone c{i, n, spans[i].lo, spans[i].hi};
                BDCC_ASSIGN_OR_RETURN(exec::OperatorPtr l, lf(c));
                BDCC_ASSIGN_OR_RETURN(exec::OperatorPtr r, rf(c));
                return exec::OperatorPtr(
                    std::make_unique<exec::SandwichHashJoin>(
                        std::move(l), std::move(r), lk, rk, type));
              };
              Note("parallel sandwich join x" +
                   std::to_string(spans.size()));
              out.op = std::make_unique<exec::ParallelUnion>(
                  std::move(factory), spans.size(), opts_.scheduler);
            } else {
              out.op = std::make_unique<exec::SandwichHashJoin>(
                  std::move(left.op), std::move(right.op), jn.left_keys,
                  jn.right_keys, jn.type);
            }
            out.grouped_base = bt_l;
            out.grouping = left_req.specs;
            out.absorbed = left.absorbed;
            if (fk_from_left &&
                (jn.type == exec::JoinType::kInner ||
                 jn.type == exec::JoinType::kLeftOuter)) {
              for (const AbsorbedTable& a : right.absorbed) {
                std::vector<std::string> path{fk->id};
                path.insert(path.end(), a.path.begin(), a.path.end());
                out.absorbed.push_back(AbsorbedTable{a.table, path});
              }
            }
            return out;
          }
        }
      }
    }
    // Case B: left is an already-grouped stream, right is a scan chain.
    if (left_base == nullptr && right_base != nullptr) {
      BDCC_ASSIGN_OR_RETURN(SubPlan left, Compile(left_l, nullptr));
      const BdccTable* bt_r = db_.bdcc(right_base->scan.table);
      if (left.grouped_base != nullptr && bt_r != nullptr &&
          !LiveDelta(right_base->scan.table) &&
          fk->to_table == right_base->scan.table) {
        // FK chain from the probe base to the FK's from-table.
        const std::vector<std::string>* prefix = nullptr;
        for (const AbsorbedTable& a : left.absorbed) {
          if (a.table == fk->from_table) {
            prefix = &a.path;
            break;
          }
        }
        if (prefix != nullptr) {
          std::vector<SharedUse> shared = FindSharedUses(
              left.grouped_base, bt_r, fk, *prefix, /*fk_from_probe=*/true);
          // Align against the existing grouping: the needed uses must form a
          // prefix of left.grouping with at least the same width available
          // on the build side.
          size_t matched = 0;
          GroupRequest right_req;
          while (matched < left.grouping.size()) {
            const exec::GroupSpec& g = left.grouping[matched];
            const SharedUse* hit = nullptr;
            for (const SharedUse& s : shared) {
              if (s.probe_use == g.use_idx && s.shared_bits >= g.shared_bits) {
                hit = &s;
                break;
              }
            }
            if (hit == nullptr) break;
            right_req.order.push_back(hit->build_use);
            right_req.specs.push_back(
                exec::GroupSpec{hit->build_use, g.shared_bits});
            ++matched;
          }
          if (matched > 0) {
            int shift = 0;
            for (size_t i = matched; i < left.grouping.size(); ++i) {
              shift += left.grouping[i].shared_bits;
            }
            exec::OperatorPtr probe = std::move(left.op);
            if (shift > 0) {
              probe = std::make_unique<GroupRetag>(std::move(probe), shift);
            }
            BDCC_ASSIGN_OR_RETURN(SubPlan right, Compile(right_l, &right_req));
            Note("sandwich join <stream>⋈" + right_base->scan.table +
                 " (cascade, " + std::to_string(matched) + " dims)");
            SubPlan out;
            out.op = std::make_unique<exec::SandwichHashJoin>(
                std::move(probe), std::move(right.op), jn.left_keys,
                jn.right_keys, jn.type);
            out.grouped_base = left.grouped_base;
            out.grouping.assign(left.grouping.begin(),
                                left.grouping.begin() + matched);
            out.absorbed = left.absorbed;
            if (jn.type == exec::JoinType::kInner ||
                jn.type == exec::JoinType::kLeftOuter) {
              std::vector<std::string> path = *prefix;
              path.push_back(fk->id);
              out.absorbed.push_back(
                  AbsorbedTable{right_base->scan.table, path});
            }
            return out;
          }
        }
      }
      // No sandwich: finish as a hash join with the already-compiled left.
      BDCC_ASSIGN_OR_RETURN(SubPlan right, Compile(right_l, nullptr));
      SubPlan out;
      out.sorted_on = left.sorted_on;
      out.grouped_base = left.grouped_base;
      out.grouping = left.grouping;
      out.absorbed = left.absorbed;
      out.op = std::make_unique<exec::HashJoin>(std::move(left.op),
                                                std::move(right.op),
                                                jn.left_keys, jn.right_keys,
                                                jn.type);
      return out;
    }
  }

  // ---- PK: merge join along a sorted, unique foreign key ----
  if (db_.scheme() == Scheme::kPk && opts_.enable_merge_join &&
      fk != nullptr && jn.type == exec::JoinType::kInner &&
      jn.left_keys.size() == 1 && fk->from_columns.size() == 1 &&
      left_base != nullptr && right_base != nullptr) {
    bool fk_from_left = fk->from_table == left_base->scan.table;
    const LogicalNode* probe_base = fk_from_left ? left_base : right_base;
    const LogicalNode* ref_base = fk_from_left ? right_base : left_base;
    if (fk->from_table == probe_base->scan.table &&
        fk->to_table == ref_base->scan.table &&
        db_.sorted_on(probe_base->scan.table) == fk->from_columns[0] &&
        db_.sorted_on(ref_base->scan.table) == fk->to_columns[0] &&
        db_.unique_key(ref_base->scan.table, fk->to_columns[0])) {
      const NodePtr& probe_l = fk_from_left ? left_l : right_l;
      const NodePtr& ref_l = fk_from_left ? right_l : left_l;
      std::string probe_key = fk_from_left ? jn.left_keys[0] : jn.right_keys[0];
      std::string ref_key = fk_from_left ? jn.right_keys[0] : jn.left_keys[0];
      BDCC_ASSIGN_OR_RETURN(SubPlan probe, Compile(probe_l, nullptr));
      BDCC_ASSIGN_OR_RETURN(SubPlan ref, Compile(ref_l, nullptr));
      Note("merge join " + probe_base->scan.table + "⋈" +
           ref_base->scan.table + " on " + probe_key);
      SubPlan out;
      out.sorted_on = probe.sorted_on;
      out.op = std::make_unique<exec::MergeJoin>(
          std::move(probe.op), std::move(ref.op), probe_key, ref_key);
      return out;
    }
  }

  // ---- Fallback: hash join ----
  BDCC_ASSIGN_OR_RETURN(SubPlan left, Compile(left_l, nullptr));
  BDCC_ASSIGN_OR_RETURN(SubPlan right, Compile(right_l, nullptr));
  SubPlan out;
  out.sorted_on = left.sorted_on;
  out.grouped_base = left.grouped_base;
  out.grouping = left.grouping;
  out.absorbed = left.absorbed;
  // Parallel probe: build once, probe with morsel clones. Requires an
  // order-insensitive probe side — morsel interleaving destroys sortedness,
  // so PK chains that may feed merge/stream consumers stay serial.
  if (opts_.num_threads > 1 && left.leaf_factory && left.grouping.empty() &&
      left.sorted_on.empty() && left.leaf_rows >= kMinParallelRows) {
    LeafFactory inner = left.leaf_factory;
    exec::ChainFactory probe_factory = [inner](size_t i, size_t n) {
      LeafClone c;
      c.instance = i;
      c.total = n;
      return inner(c);
    };
    Note("parallel hash join probe x" + std::to_string(opts_.num_threads));
    // Parallel partitioned build when the build side is itself a clonable
    // scan chain of useful size: partition count follows the estimated
    // build cardinality (base-table rows; filters only shrink it). The
    // serial build operator is not compiled into the plan in that case.
    bool partitioned_build = opts_.enable_parallel_build &&
                             right.leaf_factory &&
                             right.leaf_gids == nullptr &&
                             right.leaf_rows >= kMinParallelBuildRows;
    auto pj = std::make_unique<exec::ParallelHashJoin>(
        std::move(probe_factory), static_cast<size_t>(opts_.num_threads),
        partitioned_build ? nullptr : std::move(right.op), jn.left_keys,
        jn.right_keys, jn.type, opts_.scheduler);
    if (partitioned_build) {
      LeafFactory build_inner = right.leaf_factory;
      exec::ChainFactory build_factory = [build_inner](size_t i, size_t n) {
        LeafClone c;
        c.instance = i;
        c.total = n;
        return build_inner(c);
      };
      int bits = exec::ChoosePartitionBits(
          right.leaf_rows, static_cast<size_t>(opts_.num_threads));
      pj->EnableParallelBuild(std::move(build_factory), bits);
      Note("parallel partitioned hash join build x" +
           std::to_string(opts_.num_threads) + " (" +
           std::to_string(size_t{1} << bits) + " partitions)");
    }
    out.op = std::move(pj);
  } else {
    out.op = std::make_unique<exec::HashJoin>(
        std::move(left.op), std::move(right.op), jn.left_keys, jn.right_keys,
        jn.type);
  }
  return out;
}

Result<SubPlan> PlannerImpl::CompileAgg(const NodePtr& node) {
  const AggregateNode& an = node->agg;
  const NodePtr& child_l = node->children[0];
  const LogicalNode* base = ScanChainBase(child_l);

  auto contains_all = [&](const std::vector<std::string>& cols) {
    return !cols.empty() &&
           std::all_of(cols.begin(), cols.end(), [&](const std::string& k) {
             return std::find(an.group_cols.begin(), an.group_cols.end(),
                              k) != an.group_cols.end();
           });
  };
  // A use is functionally determined by the group keys when some table
  // absorbed into the stream pins the rows the use's bins come from:
  // grouping by a table's primary key (Q13: c_custkey implies the nation)
  // or by an FK's source columns (Q18: l_orderkey implies orderdate bins)
  // fixes every dimension reached through that table.
  auto determined_uses = [&](const BdccTable* bt,
                             const std::vector<AbsorbedTable>& absorbed) {
    std::vector<size_t> uses;
    for (size_t u = 0; u < bt->uses().size(); ++u) {
      const DimensionUse& use = bt->uses()[u];
      bool det = false;
      for (const AbsorbedTable& a : absorbed) {
        if (use.path.fk_ids.size() < a.path.size()) continue;
        if (!std::equal(a.path.begin(), a.path.end(),
                        use.path.fk_ids.begin())) {
          continue;
        }
        auto def_result = db_.schema_catalog().GetTable(a.table);
        if (def_result.ok() && contains_all(def_result.value()->primary_key)) {
          det = true;
          break;
        }
        std::vector<std::string> rest(
            use.path.fk_ids.begin() + a.path.size(), use.path.fk_ids.end());
        if (rest.empty()) {
          if (contains_all(use.dimension->key_columns())) {
            det = true;
            break;
          }
        } else {
          auto fk_result = db_.schema_catalog().GetForeignKey(rest[0]);
          if (fk_result.ok() &&
              fk_result.value()->from_table == a.table &&
              contains_all(fk_result.value()->from_columns)) {
            det = true;
            break;
          }
        }
      }
      if (det && bits::Ones(bt->ReducedMask(u)) > 0) uses.push_back(u);
    }
    return uses;
  };

  // ---- BDCC sandwich aggregation over a direct scan chain ----
  if (db_.scheme() == Scheme::kBdcc && opts_.enable_sandwich &&
      base != nullptr && !an.group_cols.empty()) {
    const BdccTable* bt = db_.bdcc(base->scan.table);
    if (bt != nullptr && !LiveDelta(base->scan.table)) {
      std::vector<AbsorbedTable> self{{base->scan.table, {}}};
      std::vector<size_t> uses = determined_uses(bt, self);
      if (!uses.empty()) {
        GroupRequest req;
        for (size_t u : uses) {
          req.order.push_back(u);
          req.specs.push_back(
              exec::GroupSpec{u, bits::Ones(bt->ReducedMask(u))});
        }
        BDCC_ASSIGN_OR_RETURN(SubPlan child, Compile(child_l, &req));
        Note("sandwich aggregation on " + base->scan.table);
        SubPlan out;
        if (opts_.num_threads > 1 && child.leaf_factory && child.leaf_gids &&
            child.leaf_gids->size() >= 2 &&
            child.leaf_rows >= kMinParallelRows) {
          // Partitions are disjoint across group-id chunks (the group keys
          // determine the partition), so chunk outputs simply concatenate.
          std::vector<GidSpan> spans = ChunkGids(
              *child.leaf_gids, static_cast<size_t>(opts_.num_threads));
          LeafFactory inner = child.leaf_factory;
          auto group_cols = an.group_cols;
          auto specs = an.specs;
          exec::ChainFactory factory =
              [inner, spans, group_cols, specs](
                  size_t i, size_t n) -> Result<exec::OperatorPtr> {
            LeafClone c{i, n, spans[i].lo, spans[i].hi};
            BDCC_ASSIGN_OR_RETURN(exec::OperatorPtr chain, inner(c));
            return exec::OperatorPtr(std::make_unique<exec::SandwichAgg>(
                std::move(chain), group_cols, specs));
          };
          Note("parallel sandwich aggregation x" +
               std::to_string(spans.size()));
          out.op = std::make_unique<exec::ParallelUnion>(
              std::move(factory), spans.size(), opts_.scheduler);
        } else {
          out.op = std::make_unique<exec::SandwichAgg>(
              std::move(child.op), an.group_cols, an.specs);
        }
        return out;
      }
    }
  }

  BDCC_ASSIGN_OR_RETURN(SubPlan child, Compile(child_l, nullptr));

  // ---- BDCC sandwich aggregation over an already-grouped stream ----
  if (db_.scheme() == Scheme::kBdcc && opts_.enable_sandwich &&
      child.grouped_base != nullptr && !an.group_cols.empty()) {
    std::vector<size_t> det =
        determined_uses(child.grouped_base, child.absorbed);
    bool all_determined = !child.grouping.empty();
    for (const exec::GroupSpec& g : child.grouping) {
      if (std::find(det.begin(), det.end(), g.use_idx) == det.end()) {
        all_determined = false;
        break;
      }
    }
    if (all_determined) {
      Note("sandwich aggregation over co-clustered stream");
      SubPlan out;
      out.op = std::make_unique<exec::SandwichAgg>(std::move(child.op),
                                                   an.group_cols, an.specs);
      return out;
    }
  }

  // ---- Ordered aggregation when the input is sorted on the single key ----
  if (opts_.enable_stream_agg && an.group_cols.size() == 1 &&
      !child.sorted_on.empty() && child.sorted_on == an.group_cols[0]) {
    Note("streaming aggregation on " + an.group_cols[0]);
    SubPlan out;
    out.sorted_on = an.group_cols[0];
    out.op = std::make_unique<exec::StreamAgg>(std::move(child.op),
                                               an.group_cols, an.specs);
    return out;
  }

  SubPlan out;
  if (opts_.num_threads > 1 && child.leaf_factory && child.grouping.empty() &&
      child.leaf_rows >= kMinParallelRows) {
    LeafFactory inner = child.leaf_factory;
    exec::ChainFactory factory = [inner](size_t i, size_t n) {
      LeafClone c;
      c.instance = i;
      c.total = n;
      return inner(c);
    };
    Note("parallel hash aggregation x" + std::to_string(opts_.num_threads));
    out.op = std::make_unique<exec::ParallelHashAgg>(
        std::move(factory), static_cast<size_t>(opts_.num_threads),
        an.group_cols, an.specs, opts_.scheduler);
  } else {
    out.op = std::make_unique<exec::HashAgg>(std::move(child.op),
                                             an.group_cols, an.specs);
  }
  return out;
}

Result<SubPlan> PlannerImpl::Compile(const NodePtr& node,
                                     const GroupRequest* req) {
  switch (node->kind) {
    case NodeKind::kScan:
      return CompileScan(node, req);
    case NodeKind::kFilter: {
      BDCC_ASSIGN_OR_RETURN(SubPlan child, Compile(node->children[0], req));
      SubPlan out = std::move(child);
      out.op = std::make_unique<exec::Filter>(std::move(out.op),
                                              node->filter.predicate);
      if (out.leaf_factory) {
        LeafFactory inner = std::move(out.leaf_factory);
        exec::ExprPtr pred = node->filter.predicate;
        out.leaf_factory =
            [inner, pred](const LeafClone& c) -> Result<exec::OperatorPtr> {
          BDCC_ASSIGN_OR_RETURN(exec::OperatorPtr op, inner(c));
          return exec::OperatorPtr(
              std::make_unique<exec::Filter>(std::move(op), pred));
        };
      }
      return out;
    }
    case NodeKind::kProject: {
      BDCC_ASSIGN_OR_RETURN(SubPlan child, Compile(node->children[0], nullptr));
      SubPlan out;
      out.grouped_base = child.grouped_base;
      out.grouping = child.grouping;
      out.absorbed = child.absorbed;
      out.leaf_rows = child.leaf_rows;
      out.leaf_gids = child.leaf_gids;
      if (child.leaf_factory) {
        LeafFactory inner = std::move(child.leaf_factory);
        auto exprs = node->project.exprs;
        out.leaf_factory =
            [inner, exprs](const LeafClone& c) -> Result<exec::OperatorPtr> {
          BDCC_ASSIGN_OR_RETURN(exec::OperatorPtr op, inner(c));
          return exec::OperatorPtr(
              std::make_unique<exec::Project>(std::move(op), exprs));
        };
      }
      out.op = std::make_unique<exec::Project>(std::move(child.op),
                                               node->project.exprs);
      return out;
    }
    case NodeKind::kJoin:
      return CompileJoin(node);
    case NodeKind::kAggregate:
      return CompileAgg(node);
    case NodeKind::kSort: {
      BDCC_ASSIGN_OR_RETURN(SubPlan child, Compile(node->children[0], nullptr));
      SubPlan out;
      if (node->sort.limit >= 0) {
        out.op = std::make_unique<exec::TopN>(
            std::move(child.op), node->sort.keys,
            static_cast<uint64_t>(node->sort.limit));
      } else {
        out.op = std::make_unique<exec::Sort>(std::move(child.op),
                                              node->sort.keys);
      }
      return out;
    }
    case NodeKind::kLimit: {
      BDCC_ASSIGN_OR_RETURN(SubPlan child, Compile(node->children[0], nullptr));
      SubPlan out;
      out.op = std::make_unique<exec::Limit>(std::move(child.op),
                                             node->limit.n);
      return out;
    }
  }
  return Status::Internal("unknown logical node kind");
}

}  // namespace

Result<CompiledQuery> Compile(const NodePtr& plan, const PhysicalDb& db,
                              const PlannerOptions& options) {
  PushdownAnalysis analysis;
  if (options.enable_group_pruning) {
    BDCC_ASSIGN_OR_RETURN(analysis, AnalyzePushdown(plan, db));
  }
  PlannerImpl impl(db, options, std::move(analysis));
  BDCC_ASSIGN_OR_RETURN(SubPlan root, impl.Compile(plan, nullptr));
  CompiledQuery out;
  out.root = std::move(root.op);
  out.notes = impl.TakeNotes();
  return out;
}

}  // namespace opt
}  // namespace bdcc
