#include "opt/explain.h"

namespace bdcc {
namespace opt {

namespace {

void Render(const NodePtr& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (node->kind) {
    case NodeKind::kScan: {
      out->append("Scan " + node->scan.table + " cols=" +
                  std::to_string(node->scan.columns.size()));
      if (!node->scan.sargs.empty()) {
        out->append(" sargs=[");
        for (size_t i = 0; i < node->scan.sargs.size(); ++i) {
          if (i) out->append(", ");
          out->append(node->scan.sargs[i].column);
        }
        out->append("]");
      }
      if (node->scan.residual) {
        out->append(" filter=" + node->scan.residual->ToString());
      }
      break;
    }
    case NodeKind::kFilter:
      out->append("Filter " + node->filter.predicate->ToString());
      break;
    case NodeKind::kProject: {
      out->append("Project [");
      for (size_t i = 0; i < node->project.exprs.size(); ++i) {
        if (i) out->append(", ");
        out->append(node->project.exprs[i].name);
      }
      out->append("]");
      break;
    }
    case NodeKind::kJoin: {
      out->append(std::string("Join ") +
                  exec::JoinTypeName(node->join.type) + " on (");
      for (size_t i = 0; i < node->join.left_keys.size(); ++i) {
        if (i) out->append(", ");
        out->append(node->join.left_keys[i]);
      }
      out->append(")=(");
      for (size_t i = 0; i < node->join.right_keys.size(); ++i) {
        if (i) out->append(", ");
        out->append(node->join.right_keys[i]);
      }
      out->append(")");
      if (!node->join.fk_id.empty()) {
        out->append(" fk=" + node->join.fk_id);
      }
      break;
    }
    case NodeKind::kAggregate: {
      out->append("Aggregate group=[");
      for (size_t i = 0; i < node->agg.group_cols.size(); ++i) {
        if (i) out->append(", ");
        out->append(node->agg.group_cols[i]);
      }
      out->append("] aggs=[");
      for (size_t i = 0; i < node->agg.specs.size(); ++i) {
        if (i) out->append(", ");
        out->append(node->agg.specs[i].output_name);
      }
      out->append("]");
      break;
    }
    case NodeKind::kSort: {
      out->append("Sort [");
      for (size_t i = 0; i < node->sort.keys.size(); ++i) {
        if (i) out->append(", ");
        out->append(node->sort.keys[i].column);
        if (node->sort.keys[i].descending) out->append(" desc");
      }
      out->append("]");
      if (node->sort.limit >= 0) {
        out->append(" limit " + std::to_string(node->sort.limit));
      }
      break;
    }
    case NodeKind::kLimit:
      out->append("Limit " + std::to_string(node->limit.n));
      break;
  }
  out->append("\n");
  for (const NodePtr& child : node->children) {
    Render(child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const NodePtr& plan) {
  std::string out;
  Render(plan, 0, &out);
  return out;
}

}  // namespace opt
}  // namespace bdcc
