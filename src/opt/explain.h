// Logical-plan pretty printer (EXPLAIN), used by examples and debugging.
#ifndef BDCC_OPT_EXPLAIN_H_
#define BDCC_OPT_EXPLAIN_H_

#include <string>

#include "opt/logical_plan.h"

namespace bdcc {
namespace opt {

/// \brief Render a logical plan tree as an indented outline, e.g.
///
///   Sort [revenue desc] limit 10
///     Aggregate group=[l_orderkey, o_orderdate] aggs=[revenue]
///       Join inner on (o_custkey)=(c_custkey) fk=FK_O_C
///         Join inner on (l_orderkey)=(o_orderkey) fk=FK_L_O
///           Scan LINEITEM cols=4 sargs=[l_shipdate]
///           Scan ORDERS cols=4 sargs=[o_orderdate]
///         Scan CUSTOMER cols=2 sargs=[c_mktsegment]
std::string ExplainPlan(const NodePtr& plan);

}  // namespace opt
}  // namespace bdcc

#endif  // BDCC_OPT_EXPLAIN_H_
