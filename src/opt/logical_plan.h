// Logical query plans.
//
// Queries are written once as logical trees (joins annotated with the
// foreign key they follow); the planner compiles them per physical scheme
// (Plain / PK / BDCC), deciding join strategy, selection pushdown, and
// propagation. This mirrors the paper's setup where the same 22 TPC-H
// queries run against three physical designs of the same engine.
#ifndef BDCC_OPT_LOGICAL_PLAN_H_
#define BDCC_OPT_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/expr.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/sort.h"
#include "storage/zonemap.h"

namespace bdcc {
namespace opt {

enum class NodeKind {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
};

struct LogicalNode;
using NodePtr = std::shared_ptr<LogicalNode>;

/// Sargable conjunct on a scan: a value range on one column, usable against
/// zone maps and dimension bins. `row_expr` overrides the generated
/// row-level residual (e.g. a LIKE whose prefix defines the range).
struct Sarg {
  std::string column;
  ValueRange range;
  exec::ExprPtr row_expr;  // optional
};

struct ScanNode {
  std::string table;
  std::vector<std::string> columns;
  std::vector<Sarg> sargs;
  exec::ExprPtr residual;  // non-sargable scan-level predicate (optional)
};

struct FilterNode {
  exec::ExprPtr predicate;
};

struct ProjectNode {
  std::vector<exec::Project::NamedExpr> exprs;
};

struct JoinNode {
  exec::JoinType type = exec::JoinType::kInner;
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
  /// The declared FK this join follows ("" when not an FK equi-join). Used
  /// for merge-join detection (PK) and co-clustering detection (BDCC).
  std::string fk_id;
};

struct AggregateNode {
  std::vector<std::string> group_cols;
  std::vector<exec::AggSpec> specs;
};

struct SortNode {
  std::vector<exec::SortKey> keys;
  int64_t limit = -1;  // >= 0: ORDER BY ... LIMIT n (TopN)
};

struct LimitNode {
  uint64_t n = 0;
};

struct LogicalNode {
  NodeKind kind;
  std::vector<NodePtr> children;
  ScanNode scan;
  FilterNode filter;
  ProjectNode project;
  JoinNode join;
  AggregateNode agg;
  SortNode sort;
  LimitNode limit;
};

// ---- Builders ----

NodePtr LScan(std::string table, std::vector<std::string> columns,
              std::vector<Sarg> sargs = {}, exec::ExprPtr residual = nullptr);
NodePtr LFilter(NodePtr child, exec::ExprPtr predicate);
NodePtr LProject(NodePtr child, std::vector<exec::Project::NamedExpr> exprs);
NodePtr LJoin(NodePtr left, NodePtr right, exec::JoinType type,
              std::vector<std::string> left_keys,
              std::vector<std::string> right_keys, std::string fk_id = "");
NodePtr LAgg(NodePtr child, std::vector<std::string> group_cols,
             std::vector<exec::AggSpec> specs);
NodePtr LSort(NodePtr child, std::vector<exec::SortKey> keys,
              int64_t limit = -1);
NodePtr LLimit(NodePtr child, uint64_t n);

/// Sarg helpers.
Sarg SargEq(std::string column, Value v);
Sarg SargRange(std::string column, std::optional<Value> lo,
               std::optional<Value> hi);
/// Prefix LIKE: zone range [prefix, prefix+0xFF) plus the LIKE row filter.
Sarg SargPrefixLike(std::string column, std::string prefix_pattern);

/// Row-level expression enforcing a sarg (its row_expr if set, otherwise
/// comparisons generated from the range).
exec::ExprPtr SargRowExpr(const Sarg& sarg);

}  // namespace opt
}  // namespace bdcc

#endif  // BDCC_OPT_LOGICAL_PLAN_H_
