// Scheme-aware physical planner.
//
// Compiles one logical plan against one PhysicalDb:
//   Plain : full scans (zone maps rarely selective), hash joins everywhere.
//   PK    : tables sorted on primary keys; FK joins whose keys align with
//           the sort become merge joins (LINEITEM⋈ORDERS, PARTSUPP⋈PART);
//           single-column aggregates over the sort key stream (Q18).
//   BDCC  : dimension-selection pushdown & propagation prune scatter-scan
//           groups; FK joins between co-clustered tables become sandwich
//           joins (cascading via group retagging); aggregates whose keys
//           determine the clustering become sandwich aggregates.
#ifndef BDCC_OPT_PLANNER_H_
#define BDCC_OPT_PLANNER_H_

#include <string>
#include <vector>

#include "exec/operator.h"
#include "opt/logical_plan.h"
#include "opt/physical_db.h"
#include "opt/pushdown.h"

namespace bdcc {
namespace common {
class TaskScheduler;
}  // namespace common

namespace opt {

struct PlannerOptions {
  bool enable_sandwich = true;      // BDCC: sandwich joins/aggregates
  bool enable_group_pruning = true; // BDCC: bin-range group pruning
  bool enable_zonemaps = true;      // all schemes: MinMax zone skipping
  bool enable_merge_join = true;    // PK: merge joins on sorted keys
  bool enable_stream_agg = true;    // PK: ordered aggregation
  /// All schemes: enforce range-exact sargs row-level inside the scan
  /// (branch-free kernels over the storage lanes emitting selection
  /// vectors) instead of a Filter over copied batches. Sargs with a custom
  /// row expression (e.g. LIKE) and residual predicates stay in the Filter.
  bool enable_scan_filter_pushdown = true;
  /// All schemes: when the scanned table carries encoded lanes
  /// (Table::BuildEncodedLanes), pushed range-exact sargs evaluate directly
  /// over the encoded blocks — one comparison per RLE run, packed-domain
  /// compares for bit-packed spans — instead of the flat lane.
  bool enable_encoded_exec = true;
  /// All schemes: scan chunks the zone maps prove fully-passing (or any
  /// chunk when no predicate is enforced in the scan) are emitted as
  /// zero-copy views borrowing the storage lanes instead of copying.
  bool enable_zero_copy_views = true;

  /// Degree of intra-query parallelism. 1 (default) compiles the classic
  /// single-threaded pull plan; N > 1 splits eligible pipelines into N
  /// morsel-driven clones at blocking operators (hash aggregation, hash-join
  /// probe, sandwich join/aggregate). Results are identical either way
  /// (modulo float summation order); plans too small to benefit stay serial.
  int num_threads = 1;
  /// With num_threads > 1: build the hash-join build side with N parallel
  /// chains feeding a radix-partitioned table (partition count derived from
  /// the estimated build cardinality), instead of one serial drain. Only
  /// applies when the build side is a scan chain the planner can clone.
  bool enable_parallel_build = true;
  /// Worker pool used when num_threads > 1; nullptr = the process-wide
  /// TaskScheduler::Shared().
  common::TaskScheduler* scheduler = nullptr;
  /// Per-query memory budget in bytes enforced through the ExecContext's
  /// MemoryTracker (0 = unlimited). Applied at execution time by drivers
  /// (RunPlan/RunTpchQuery): stateful operators whose tracked growth would
  /// pass the limit fail the query with ResourceExhausted instead of
  /// growing — see the budget contract in src/exec/README.md.
  uint64_t memory_limit_bytes = 0;
};

struct CompiledQuery {
  exec::OperatorPtr root;
  /// Plan decisions for EXPLAIN-style reporting (mechanism attribution in
  /// the paper's "Detailed Analysis").
  std::vector<std::string> notes;
};

/// Compile `plan` for `db`.
Result<CompiledQuery> Compile(const NodePtr& plan, const PhysicalDb& db,
                              const PlannerOptions& options = {});

}  // namespace opt
}  // namespace bdcc

#endif  // BDCC_OPT_PLANNER_H_
