// The planner's view of one physical design of a database.
#ifndef BDCC_OPT_PHYSICAL_DB_H_
#define BDCC_OPT_PHYSICAL_DB_H_

#include <memory>
#include <string>

#include "bdcc/bdcc_table.h"
#include "catalog/catalog.h"
#include "storage/table.h"

namespace bdcc {

namespace delta {
struct TableSnapshot;
}  // namespace delta

namespace opt {

enum class Scheme { kPlain = 0, kPk = 1, kBdcc = 2 };

const char* SchemeName(Scheme scheme);

/// \brief One physical instantiation of a schema (Plain, PK or BDCC), plus
/// the catalog. The same logical plans compile against any of them.
class PhysicalDb {
 public:
  virtual ~PhysicalDb() = default;

  virtual Scheme scheme() const = 0;
  virtual const catalog::Catalog& schema_catalog() const = 0;

  /// Row storage of `table` (always available; for the BDCC scheme this is
  /// the clustered table's data). Null if the table is unknown.
  virtual const Table* storage(const std::string& table) const = 0;

  /// BDCC metadata for `table`; null unless scheme()==kBdcc and the advisor
  /// clustered it (e.g. REGION stays unclustered).
  virtual const BdccTable* bdcc(const std::string& table) const = 0;

  /// Column the stored table is physically sorted on ("" if none). Under
  /// the PK scheme this is the first primary-key column.
  virtual std::string sorted_on(const std::string& table) const = 0;

  /// True when `table`'s primary key is exactly this single column
  /// (merge-join uniqueness precondition).
  virtual bool unique_key(const std::string& table,
                          const std::string& column) const = 0;

  /// Pinned snapshot of `table` when it is live (taking online appends);
  /// null for static tables (the default). When non-null, bdcc(table) and
  /// storage(table) must return the snapshot's base version, and the
  /// planner adds a delta-side scan leg over the snapshot's chunks (see
  /// src/delta/snapshot_db.h). Compiled plans copy the returned shared_ptr
  /// into their scan leaves, so they stay consistent even if the db is
  /// refreshed to a newer epoch while they run.
  virtual std::shared_ptr<const delta::TableSnapshot> snapshot(
      const std::string& table) const {
    (void)table;
    return nullptr;
  }
};

}  // namespace opt
}  // namespace bdcc

#endif  // BDCC_OPT_PHYSICAL_DB_H_
