#include "opt/logical_plan.h"

namespace bdcc {
namespace opt {

NodePtr LScan(std::string table, std::vector<std::string> columns,
              std::vector<Sarg> sargs, exec::ExprPtr residual) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = NodeKind::kScan;
  node->scan =
      ScanNode{std::move(table), std::move(columns), std::move(sargs),
               std::move(residual)};
  return node;
}

NodePtr LFilter(NodePtr child, exec::ExprPtr predicate) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = NodeKind::kFilter;
  node->children.push_back(std::move(child));
  node->filter = FilterNode{std::move(predicate)};
  return node;
}

NodePtr LProject(NodePtr child, std::vector<exec::Project::NamedExpr> exprs) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = NodeKind::kProject;
  node->children.push_back(std::move(child));
  node->project = ProjectNode{std::move(exprs)};
  return node;
}

NodePtr LJoin(NodePtr left, NodePtr right, exec::JoinType type,
              std::vector<std::string> left_keys,
              std::vector<std::string> right_keys, std::string fk_id) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = NodeKind::kJoin;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->join = JoinNode{type, std::move(left_keys), std::move(right_keys),
                        std::move(fk_id)};
  return node;
}

NodePtr LAgg(NodePtr child, std::vector<std::string> group_cols,
             std::vector<exec::AggSpec> specs) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = NodeKind::kAggregate;
  node->children.push_back(std::move(child));
  node->agg = AggregateNode{std::move(group_cols), std::move(specs)};
  return node;
}

NodePtr LSort(NodePtr child, std::vector<exec::SortKey> keys, int64_t limit) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = NodeKind::kSort;
  node->children.push_back(std::move(child));
  node->sort = SortNode{std::move(keys), limit};
  return node;
}

NodePtr LLimit(NodePtr child, uint64_t n) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = NodeKind::kLimit;
  node->children.push_back(std::move(child));
  node->limit = LimitNode{n};
  return node;
}

Sarg SargEq(std::string column, Value v) {
  Sarg s;
  s.column = std::move(column);
  s.range.lo = v;
  s.range.hi = v;
  return s;
}

Sarg SargRange(std::string column, std::optional<Value> lo,
               std::optional<Value> hi) {
  Sarg s;
  s.column = std::move(column);
  s.range.lo = std::move(lo);
  s.range.hi = std::move(hi);
  return s;
}

Sarg SargPrefixLike(std::string column, std::string prefix_pattern) {
  size_t wild = prefix_pattern.find_first_of("%_");
  std::string prefix = prefix_pattern.substr(0, wild);
  Sarg s;
  s.column = column;
  if (!prefix.empty()) {
    s.range.lo = Value::String(prefix);
    std::string upper = prefix;
    upper.push_back('\xfe');
    upper.push_back('\xfe');
    s.range.hi = Value::String(upper);
  }
  s.row_expr = exec::Like(exec::Col(column), std::move(prefix_pattern));
  return s;
}

exec::ExprPtr SargRowExpr(const Sarg& sarg) {
  if (sarg.row_expr) return sarg.row_expr;
  exec::ExprPtr out;
  if (sarg.range.lo && sarg.range.hi &&
      sarg.range.lo->Compare(*sarg.range.hi) == 0) {
    return exec::Eq(exec::Col(sarg.column), exec::Lit(*sarg.range.lo));
  }
  if (sarg.range.lo) {
    out = exec::Ge(exec::Col(sarg.column), exec::Lit(*sarg.range.lo));
  }
  if (sarg.range.hi) {
    exec::ExprPtr hi =
        exec::Le(exec::Col(sarg.column), exec::Lit(*sarg.range.hi));
    out = out ? exec::And(out, hi) : hi;
  }
  BDCC_CHECK_MSG(out != nullptr, "sarg with empty range");
  return out;
}

}  // namespace opt
}  // namespace bdcc
