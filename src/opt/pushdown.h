// Dimension-selection pushdown and propagation (the BDCC query rewrites).
//
// The analysis pass walks a logical plan and derives, per BDCC scan and per
// dimension use, a bin-number restriction:
//
//  1. Host restrictions: a scan of a dimension's host table whose sargs /
//     residual filters restrict it is evaluated *at plan time* over the
//     (small) host table; qualifying rows map to bins -> [min_bin, max_bin].
//     This implements the paper's rewrite where e.g. a NATION selection (or
//     a REGION equi-selection one FK hop below the host) determines a
//     consecutive D_NATION bin range.
//  2. Propagation: the restriction applies to every scan whose FK-edge
//     chain in the join tree (edges = joins annotated with fk ids) equals a
//     dimension use's path ending at that host scan. A selection on ORDERS'
//     o_orderdate therefore prunes LINEITEM via FK_L_O (co-clustering), and
//     the host's own scan via the empty path (plain pushdown).
#ifndef BDCC_OPT_PUSHDOWN_H_
#define BDCC_OPT_PUSHDOWN_H_

#include <map>
#include <string>
#include <vector>

#include "opt/logical_plan.h"
#include "opt/physical_db.h"

namespace bdcc {
namespace opt {

/// A resolved restriction on one dimension use of one scan node.
struct UseRestriction {
  const LogicalNode* scan = nullptr;  // the restricted scan
  size_t use_idx = 0;                 // index into its BdccTable's uses
  uint64_t lo_bin = 0;                // inclusive full-granularity bin range
  uint64_t hi_bin = 0;
  std::string source;                 // human-readable provenance (explain)
};

struct PushdownAnalysis {
  std::vector<const LogicalNode*> scans;
  std::vector<UseRestriction> restrictions;
};

/// Run the analysis over `root` for `db`. Plan-time evaluation only touches
/// tables up to `max_host_rows` rows (dimension hosts are small).
Result<PushdownAnalysis> AnalyzePushdown(const NodePtr& root,
                                         const PhysicalDb& db,
                                         uint64_t max_host_rows = 65536);

}  // namespace opt
}  // namespace bdcc

#endif  // BDCC_OPT_PUSHDOWN_H_
