// Bump-pointer arena for string payloads with stable addresses.
#ifndef BDCC_COMMON_ARENA_H_
#define BDCC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/macros.h"

namespace bdcc {

/// \brief Append-only allocator; all memory is released when the arena dies.
///
/// Blocks never move once allocated, so returned string_views stay valid for
/// the arena's lifetime.
class Arena {
 public:
  explicit Arena(size_t block_size = 64 * 1024) : block_size_(block_size) {}
  BDCC_DISALLOW_COPY_AND_ASSIGN(Arena);

  /// Copy `s` into the arena and return a stable view of it.
  std::string_view Intern(std::string_view s);

  /// Raw allocation of `n` bytes (unaligned).
  char* Allocate(size_t n);

  /// Total bytes reserved by the arena (capacity, not just used).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  size_t block_size_;
  size_t offset_ = 0;       // offset into current block
  size_t current_cap_ = 0;  // capacity of current block
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t bytes_reserved_ = 0;
};

}  // namespace bdcc

#endif  // BDCC_COMMON_ARENA_H_
