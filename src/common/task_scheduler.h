// Work-stealing task scheduler for morsel-driven parallel execution.
//
// A TaskScheduler owns N worker threads, each with a private deque of tasks.
// A thread pushes and pops its own deque at the *bottom* (LIFO — the freshest
// task is cache-hot), while idle threads steal from the *top* of a victim's
// deque (FIFO — the oldest task, most likely to represent a large untouched
// chunk of work). Threads with no scheduler affinity (the query's
// coordinating thread, tests) submit into a shared injection queue that
// workers drain like any other victim.
//
// Work is submitted through TaskGroup, which tracks completion of its own
// tasks; TaskGroup::Wait() *helps*: while its tasks are outstanding the
// waiting thread pops/steals and runs queued tasks (of any group) instead of
// blocking, so nested fork-join (a parallel operator inside a parallel
// operator) cannot deadlock even on a pool with zero workers.
//
// Thread-safety contract: all members of TaskScheduler are safe to call from
// any thread. A TaskGroup must be driven by one owner thread (Submit/Wait);
// the tasks it submitted may run on any worker or on the owner during Wait.
#ifndef BDCC_COMMON_TASK_SCHEDULER_H_
#define BDCC_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace bdcc {
namespace common {

struct GroupState;

/// Scheduling class of a task group. High-priority tasks route through a
/// dedicated injection lane that every worker checks *before* its own
/// deque, so a short interactive query's morsels jump ahead of a long
/// batch scan's backlog instead of queueing behind it. Priority is
/// ambient: a TaskGroup captures the submitting thread's current priority
/// (see ScopedTaskPriority) at creation, and a worker running a
/// high-priority task submits nested work at high priority too.
enum class TaskPriority : uint8_t { kNormal = 0, kHigh = 1 };

/// RAII override of the calling thread's ambient task priority. The query
/// serving layer wraps interactive query execution in a kHigh scope so
/// every TaskGroup the query's operators create inherits it.
class ScopedTaskPriority {
 public:
  explicit ScopedTaskPriority(TaskPriority priority);
  ~ScopedTaskPriority();
  ScopedTaskPriority(const ScopedTaskPriority&) = delete;
  ScopedTaskPriority& operator=(const ScopedTaskPriority&) = delete;

  /// The calling thread's current ambient priority (kNormal by default).
  static TaskPriority Current();

 private:
  TaskPriority previous_;
};

class TaskScheduler {
 public:
  /// \param num_workers Worker threads to spawn (0 is valid: all work then
  /// runs on the threads that Wait()).
  explicit TaskScheduler(int num_workers);
  ~TaskScheduler();
  BDCC_DISALLOW_COPY_AND_ASSIGN(TaskScheduler);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool, created on first use with hardware_concurrency - 1
  /// workers (min 1). Query execution uses this unless handed a specific
  /// scheduler.
  static TaskScheduler* Shared();

  /// \brief Completion tracker for a batch of tasks.
  class TaskGroup {
   public:
    explicit TaskGroup(TaskScheduler* scheduler) : scheduler_(scheduler) {}
    ~TaskGroup() { Wait(); }
    BDCC_DISALLOW_COPY_AND_ASSIGN(TaskGroup);

    void Submit(std::function<void()> fn);
    /// Submit a fallible task. A non-OK return (or a thrown exception, from
    /// either Submit flavour) marks the group failed: the *first* failure is
    /// recorded, and queued sibling tasks of a failed group are skipped at
    /// dispatch instead of run (already-running siblings finish on their
    /// own — operators poll QueryControl for prompt stops).
    void SubmitFallible(std::function<Status()> fn);
    /// Block until every task submitted through this group has finished,
    /// running queued tasks on the calling thread while it waits.
    void Wait();
    /// Wait, then surface the group's failure at this join point: rethrows
    /// the first captured exception, or returns the first non-OK Status
    /// (OK when nothing failed). Clears the failure so the group is
    /// reusable for the next batch of tasks.
    Status WaitStatus();
    /// True once any task of this group has failed (siblings can poll it to
    /// stop early even without a QueryControl).
    bool failed() const;

   private:
    TaskScheduler* scheduler_;
    std::shared_ptr<GroupState> state_;
  };

  /// Run fn(0..n-1) across the pool and the calling thread; returns when all
  /// iterations completed.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Fallible ParallelFor: runs fn(0..n-1), skips iterations not yet started
  /// once one fails, and returns the first failure (first-error-wins) after
  /// all started iterations finished. Exceptions escape at the join point.
  Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn);

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    std::shared_ptr<GroupState> group;
  };

  // One worker's deque. The mutex is private to the deque, so local
  // push/pop and steals only contend when a thief actually targets this
  // worker; the common case (owner-only access) is an uncontended lock.
  // (Deques are held by unique_ptr, so each lives in its own heap
  // allocation and neighbouring mutexes do not share cache lines.)
  struct WorkerDeque {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void Enqueue(Task task);
  /// Find and run one task: the high-priority injection lane first (its
  /// counter makes the empty case one relaxed load), then the local deque
  /// bottom (LIFO), then the normal injection queue, then steal from a
  /// victim's top (FIFO). Returns false when no task anywhere was runnable.
  bool RunOneTask();
  void RunTask(Task task);
  bool PopLocal(Task* out);
  bool PopInjected(Task* out);
  bool PopInjectedHigh(Task* out);
  bool StealFrom(size_t victim, Task* out);
  void WorkerLoop(size_t worker_index);

  // Injection queue for external (non-worker) submitters; also the wakeup
  // rendezvous — workers sleep on `work_available_` and every Enqueue
  // notifies it.
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<Task> injected_;
  // High-priority lane: all kHigh tasks land here (even worker-local
  // submissions — visibility to every worker beats cache-hot LIFO for
  // latency-sensitive work) and are drained FIFO ahead of everything else.
  std::deque<Task> injected_high_;
  bool shutdown_ = false;

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  // Tasks queued anywhere (injection queues + all deques). Lets idle workers
  // and helpers skip the scan when the scheduler is empty.
  std::atomic<size_t> num_queued_{0};
  // Tasks waiting in the high-priority lane; lets RunOneTask skip the lane's
  // mutex on the (common) no-interactive-work path.
  std::atomic<size_t> num_queued_high_{0};
  // Workers blocked on work_available_. Lets Enqueue skip the global-mutex
  // fence and the notify when nobody could be asleep (the common case on a
  // busy pool), so local submissions stay on the per-deque mutex only.
  std::atomic<size_t> num_sleeping_{0};
  // Rotates steal start positions so thieves do not all hammer worker 0.
  std::atomic<size_t> steal_seed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace common
}  // namespace bdcc

#endif  // BDCC_COMMON_TASK_SCHEDULER_H_
