// Fixed-pool task scheduler for morsel-driven parallel execution.
//
// A TaskScheduler owns N worker threads draining one shared FIFO queue.
// Work is submitted through TaskGroup, which tracks completion of its own
// tasks; TaskGroup::Wait() *helps*: while its tasks are outstanding the
// waiting thread pops and runs queued tasks (of any group) instead of
// blocking, so nested fork-join (a parallel operator inside a parallel
// operator) cannot deadlock even on a pool with zero workers.
//
// Thread-safety contract: all members of TaskScheduler are safe to call from
// any thread. A TaskGroup must be driven by one owner thread (Submit/Wait);
// the tasks it submitted may run on any worker or on the owner during Wait.
#ifndef BDCC_COMMON_TASK_SCHEDULER_H_
#define BDCC_COMMON_TASK_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace bdcc {
namespace common {

struct GroupState;

class TaskScheduler {
 public:
  /// \param num_workers Worker threads to spawn (0 is valid: all work then
  /// runs on the threads that Wait()).
  explicit TaskScheduler(int num_workers);
  ~TaskScheduler();
  BDCC_DISALLOW_COPY_AND_ASSIGN(TaskScheduler);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool, created on first use with hardware_concurrency - 1
  /// workers (min 1). Query execution uses this unless handed a specific
  /// scheduler.
  static TaskScheduler* Shared();

  /// \brief Completion tracker for a batch of tasks.
  class TaskGroup {
   public:
    explicit TaskGroup(TaskScheduler* scheduler) : scheduler_(scheduler) {}
    ~TaskGroup() { Wait(); }
    BDCC_DISALLOW_COPY_AND_ASSIGN(TaskGroup);

    void Submit(std::function<void()> fn);
    /// Block until every task submitted through this group has finished,
    /// running queued tasks on the calling thread while it waits.
    void Wait();

   private:
    TaskScheduler* scheduler_;
    std::shared_ptr<GroupState> state_;
  };

  /// Run fn(0..n-1) across the pool and the calling thread; returns when all
  /// iterations completed.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    std::shared_ptr<GroupState> group;
  };

  void Enqueue(Task task);
  /// Pop one task if available and run it (used by helping waiters).
  bool RunOneTask();
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace common
}  // namespace bdcc

#endif  // BDCC_COMMON_TASK_SCHEDULER_H_
