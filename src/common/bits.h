// Bit-manipulation utilities underlying BDCC key construction.
//
// Conventions used throughout the library:
//  * A BDCC key (`_bdcc_`) of a table clustered on b bits is stored in the
//    low b bits of a uint64_t; bit (b-1) is the *major* (most significant)
//    clustering bit, bit 0 the minor-most.
//  * A dimension-use mask M is a uint64_t whose set bits mark the positions
//    of that dimension's bits inside the key. The paper prints masks as
//    binary strings of length b, leftmost character = major bit; FormatMask /
//    ParseMask implement exactly that textual form.
#ifndef BDCC_COMMON_BITS_H_
#define BDCC_COMMON_BITS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace bdcc {
namespace bits {

/// Number of set bits (the paper's ones(M)).
inline int Ones(uint64_t mask) { return __builtin_popcountll(mask); }

/// ceil(log2(x)) for x >= 1; 0 for x <= 1. The paper's bits(D) = ceil(log2|S|).
int CeilLog2(uint64_t x);

/// floor(log2(x)) for x >= 1.
int FloorLog2(uint64_t x);

/// \brief Deposit the low Ones(mask) bits of `value` into the positions of
/// the set bits of `mask`, preserving significance order (software PDEP).
///
/// The most significant deposited bit of `value` lands on the most
/// significant set bit of `mask`.
uint64_t SpreadBits(uint64_t value, uint64_t mask);

/// \brief Gather the bits of `key` selected by `mask` into a compact value
/// (software PEXT). Inverse of SpreadBits on the masked positions.
uint64_t ExtractBits(uint64_t key, uint64_t mask);

/// \brief Render `mask` as the paper's binary-string form with `width`
/// characters (leftmost = most significant). Leading zeros are kept.
std::string FormatMask(uint64_t mask, int width);

/// \brief Parse a binary mask string ("10101" etc.). Accepts 1..64 chars.
Result<uint64_t> ParseMask(std::string_view text);

/// Low `n` bits set (n in [0,64]).
inline uint64_t LowMask(int n) {
  return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/// \brief Significance rank of each set bit: returns for the i-th most
/// significant set bit of `mask` its position. Positions are written to
/// `out_positions` which must hold Ones(mask) ints; out[0] is the most
/// significant set position.
void SetBitPositionsDesc(uint64_t mask, int* out_positions);

}  // namespace bits
}  // namespace bdcc

#endif  // BDCC_COMMON_BITS_H_
