#include "common/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/fault_injection.h"

namespace bdcc {
namespace common {

namespace {

// Worker identity: set once per worker thread, read on every Submit to
// route tasks to the local deque. External threads (coordinators, tests)
// keep the default and submit through the injection queue.
struct WorkerTls {
  TaskScheduler* scheduler = nullptr;
  size_t index = 0;
};
thread_local WorkerTls tls_worker;

// Ambient priority of the calling thread; captured by a TaskGroup when it
// creates its state, and set by workers for the duration of a task so
// nested fork-join inherits the spawning query's priority.
thread_local TaskPriority tls_priority = TaskPriority::kNormal;

}  // namespace

ScopedTaskPriority::ScopedTaskPriority(TaskPriority priority)
    : previous_(tls_priority) {
  tls_priority = priority;
}

ScopedTaskPriority::~ScopedTaskPriority() { tls_priority = previous_; }

TaskPriority ScopedTaskPriority::Current() { return tls_priority; }

// Shared between a TaskGroup and its in-flight tasks; outlives the group if
// the group is destroyed after Wait (Wait guarantees pending == 0).
struct GroupState {
  std::mutex mu;
  std::condition_variable done;
  size_t pending = 0;
  // Scheduling class of every task in this group, captured from the
  // submitting thread's ambient priority when the group state is created.
  TaskPriority priority = TaskPriority::kNormal;
  // First-failure capture: `failed` flips once (released by the failing
  // task, acquired at dispatch so queued siblings skip their body);
  // whichever of first_exception/first_status got there first holds the
  // failure, both guarded by mu. WaitStatus() drains and resets them.
  std::atomic<bool> failed{false};
  std::exception_ptr first_exception;
  Status first_status;

  void RecordException(std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (first_exception == nullptr && first_status.ok()) {
        first_exception = std::move(e);
      }
    }
    failed.store(true, std::memory_order_release);
  }
  void RecordStatus(Status s) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (first_exception == nullptr && first_status.ok()) {
        first_status = std::move(s);
      }
    }
    failed.store(true, std::memory_order_release);
  }
};

TaskScheduler::TaskScheduler(int num_workers) {
  int n = std::max(0, num_workers);
  deques_.reserve(n);
  for (int i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Any tasks still queued are dropped; their groups are notified so no
  // waiter hangs. (Normal use never reaches this: TaskGroup::Wait drains.)
  auto drop = [](std::deque<Task>& tasks) {
    for (Task& t : tasks) {
      std::lock_guard<std::mutex> lock(t.group->mu);
      if (--t.group->pending == 0) t.group->done.notify_all();
    }
    tasks.clear();
  };
  drop(injected_);
  drop(injected_high_);
  for (std::unique_ptr<WorkerDeque>& d : deques_) drop(d->tasks);
}

TaskScheduler* TaskScheduler::Shared() {
  static TaskScheduler* shared = [] {
    unsigned hw = std::thread::hardware_concurrency();
    return new TaskScheduler(std::max(1, static_cast<int>(hw) - 1));
  }();
  return shared;
}

void TaskScheduler::Enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(task.group->mu);
    ++task.group->pending;
  }
  // Count before publishing (seq_cst, paired with the sleep protocol in
  // WorkerLoop): a thief that steals the task the moment the deque mutex
  // drops must never drive num_queued_ below the number of still-queued
  // tasks (an over-count merely causes one spurious scan).
  num_queued_.fetch_add(1);
  if (task.group->priority == TaskPriority::kHigh) {
    // All high-priority tasks go through the dedicated lane — even from
    // workers. A local LIFO push would be invisible to other workers until
    // stolen; the lane is checked by everyone before any other source.
    num_queued_high_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      injected_high_.push_back(std::move(task));
    }
    work_available_.notify_one();
    return;
  }
  if (tls_worker.scheduler == this) {
    // Local push at the bottom: the submitting worker will pop it LIFO
    // (cache-hot); idle workers steal from the top.
    {
      WorkerDeque& d = *deques_[tls_worker.index];
      std::lock_guard<std::mutex> lock(d.mu);
      d.tasks.push_back(std::move(task));
    }
    // Dekker-style handoff: our num_queued_ increment is seq_cst-ordered
    // before this num_sleeping_ read, and a worker going to sleep
    // increments num_sleeping_ before re-checking num_queued_ — so either
    // we see the sleeper (and wake it through mu_) or the sleeper sees our
    // task. Busy pools skip the global mutex entirely.
    if (num_sleeping_.load() > 0) {
      { std::lock_guard<std::mutex> lock(mu_); }
      work_available_.notify_one();
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      injected_.push_back(std::move(task));
    }
    work_available_.notify_one();
  }
}

bool TaskScheduler::PopLocal(Task* out) {
  if (tls_worker.scheduler != this) return false;
  WorkerDeque& d = *deques_[tls_worker.index];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.tasks.empty()) return false;
  *out = std::move(d.tasks.back());  // LIFO
  d.tasks.pop_back();
  return true;
}

bool TaskScheduler::PopInjected(Task* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (injected_.empty()) return false;
  *out = std::move(injected_.front());  // FIFO
  injected_.pop_front();
  return true;
}

bool TaskScheduler::PopInjectedHigh(Task* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (injected_high_.empty()) return false;
  *out = std::move(injected_high_.front());  // FIFO
  injected_high_.pop_front();
  num_queued_high_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool TaskScheduler::StealFrom(size_t victim, Task* out) {
  WorkerDeque& d = *deques_[victim];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.tasks.empty()) return false;
  *out = std::move(d.tasks.front());  // FIFO: steal the oldest task
  d.tasks.pop_front();
  return true;
}

void TaskScheduler::RunTask(Task task) {
  num_queued_.fetch_sub(1, std::memory_order_acquire);
  // Skip the body once a sibling failed — the group is unwinding and the
  // join point only wants the first failure. The pending decrement below
  // still runs, so Wait() sees every task accounted for.
  if (!task.group->failed.load(std::memory_order_acquire)) {
    fault::MaybeDelay(fault::kTaskDelay);
    // Run under the group's priority so nested submissions (fork-join
    // inside an interactive query's morsel) inherit it.
    TaskPriority saved = tls_priority;
    tls_priority = task.group->priority;
    try {
      task.fn();
    } catch (...) {
      task.group->RecordException(std::current_exception());
    }
    tls_priority = saved;
  }
  std::lock_guard<std::mutex> lock(task.group->mu);
  --task.group->pending;
  if (task.group->pending == 0) task.group->done.notify_all();
}

bool TaskScheduler::RunOneTask() {
  if (num_queued_.load(std::memory_order_acquire) == 0) return false;
  Task task;
  // Interactive work first: the lane counter keeps this one relaxed load
  // when no high-priority task is queued (the common case).
  if (num_queued_high_.load(std::memory_order_relaxed) > 0 &&
      PopInjectedHigh(&task)) {
    RunTask(std::move(task));
    return true;
  }
  if (PopLocal(&task)) {
    RunTask(std::move(task));
    return true;
  }
  if (PopInjected(&task)) {
    RunTask(std::move(task));
    return true;
  }
  // Steal sweep, starting at a rotating position; skip our own deque (it
  // was empty a moment ago, and stealing from ourselves is just a pop).
  size_t n = deques_.size();
  if (n == 0) return false;
  size_t start = steal_seed_.fetch_add(1, std::memory_order_relaxed);
  bool local = tls_worker.scheduler == this;
  for (size_t i = 0; i < n; ++i) {
    size_t victim = (start + i) % n;
    if (local && victim == tls_worker.index) continue;
    if (StealFrom(victim, &task)) {
      RunTask(std::move(task));
      return true;
    }
  }
  return false;
}

void TaskScheduler::WorkerLoop(size_t worker_index) {
  tls_worker.scheduler = this;
  tls_worker.index = worker_index;
  while (true) {
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    // Untimed block. Sleep protocol (see Enqueue): announce the sleep
    // first (seq_cst), then re-check for work under mu_ — an enqueuer
    // either observes num_sleeping_ > 0 and notifies through mu_, or this
    // predicate observes its num_queued_ increment.
    num_sleeping_.fetch_add(1);
    work_available_.wait(lock, [this] {
      return shutdown_ || num_queued_.load() > 0;
    });
    num_sleeping_.fetch_sub(1);
    if (shutdown_) return;
  }
}

void TaskScheduler::TaskGroup::Submit(std::function<void()> fn) {
  if (!state_) {
    state_ = std::make_shared<GroupState>();
    state_->priority = tls_priority;
  }
  scheduler_->Enqueue(Task{std::move(fn), state_});
}

void TaskScheduler::TaskGroup::SubmitFallible(std::function<Status()> fn) {
  if (!state_) {
    state_ = std::make_shared<GroupState>();
    state_->priority = tls_priority;
  }
  GroupState* state = state_.get();
  // The wrapper holds no owning reference to the state: the Task's `group`
  // member already keeps it alive for the duration of the run.
  scheduler_->Enqueue(Task{[state, fn = std::move(fn)] {
                             Status s = fn();
                             if (BDCC_UNLIKELY(!s.ok())) {
                               state->RecordStatus(std::move(s));
                             }
                           },
                           state_});
}

void TaskScheduler::TaskGroup::Wait() {
  if (!state_) return;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->pending == 0) return;
    }
    // Help: run queued tasks (local, injected, or stolen) instead of
    // blocking. Only once nothing is runnable (our remaining tasks are
    // executing on workers) do we block.
    if (scheduler_->RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->done.wait_for(lock, std::chrono::milliseconds(1),
                          [this] { return state_->pending == 0; });
    if (state_->pending == 0) return;
  }
}

Status TaskScheduler::TaskGroup::WaitStatus() {
  Wait();
  if (!state_) return Status::OK();
  // pending == 0 here, so no task can touch the failure fields concurrently.
  std::lock_guard<std::mutex> lock(state_->mu);
  std::exception_ptr e = state_->first_exception;
  Status s = std::move(state_->first_status);
  state_->first_exception = nullptr;
  state_->first_status = Status::OK();
  state_->failed.store(false, std::memory_order_release);
  if (e != nullptr) std::rethrow_exception(e);
  return s;
}

bool TaskScheduler::TaskGroup::failed() const {
  return state_ != nullptr && state_->failed.load(std::memory_order_acquire);
}

void TaskScheduler::ParallelFor(size_t n,
                                const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  TaskGroup group(this);
  for (size_t i = 1; i < n; ++i) {
    group.Submit([&fn, i] { fn(i); });
  }
  fn(0);
  group.Wait();
}

Status TaskScheduler::ParallelForStatus(
    size_t n, const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (n == 1) return fn(0);
  TaskGroup group(this);
  // All iterations go through the group (none runs inline first) so that a
  // failure in any iteration can skip the ones not yet started; the calling
  // thread still executes its share by helping inside WaitStatus()'s Wait.
  for (size_t i = 0; i < n; ++i) {
    group.SubmitFallible([&fn, i] { return fn(i); });
  }
  return group.WaitStatus();
}

}  // namespace common
}  // namespace bdcc
