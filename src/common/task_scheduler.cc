#include "common/task_scheduler.h"

#include <algorithm>
#include <chrono>

namespace bdcc {
namespace common {

namespace {

// Worker identity: set once per worker thread, read on every Submit to
// route tasks to the local deque. External threads (coordinators, tests)
// keep the default and submit through the injection queue.
struct WorkerTls {
  TaskScheduler* scheduler = nullptr;
  size_t index = 0;
};
thread_local WorkerTls tls_worker;

}  // namespace

// Shared between a TaskGroup and its in-flight tasks; outlives the group if
// the group is destroyed after Wait (Wait guarantees pending == 0).
struct GroupState {
  std::mutex mu;
  std::condition_variable done;
  size_t pending = 0;
};

TaskScheduler::TaskScheduler(int num_workers) {
  int n = std::max(0, num_workers);
  deques_.reserve(n);
  for (int i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Any tasks still queued are dropped; their groups are notified so no
  // waiter hangs. (Normal use never reaches this: TaskGroup::Wait drains.)
  auto drop = [](std::deque<Task>& tasks) {
    for (Task& t : tasks) {
      std::lock_guard<std::mutex> lock(t.group->mu);
      if (--t.group->pending == 0) t.group->done.notify_all();
    }
    tasks.clear();
  };
  drop(injected_);
  for (std::unique_ptr<WorkerDeque>& d : deques_) drop(d->tasks);
}

TaskScheduler* TaskScheduler::Shared() {
  static TaskScheduler* shared = [] {
    unsigned hw = std::thread::hardware_concurrency();
    return new TaskScheduler(std::max(1, static_cast<int>(hw) - 1));
  }();
  return shared;
}

void TaskScheduler::Enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(task.group->mu);
    ++task.group->pending;
  }
  // Count before publishing (seq_cst, paired with the sleep protocol in
  // WorkerLoop): a thief that steals the task the moment the deque mutex
  // drops must never drive num_queued_ below the number of still-queued
  // tasks (an over-count merely causes one spurious scan).
  num_queued_.fetch_add(1);
  if (tls_worker.scheduler == this) {
    // Local push at the bottom: the submitting worker will pop it LIFO
    // (cache-hot); idle workers steal from the top.
    {
      WorkerDeque& d = *deques_[tls_worker.index];
      std::lock_guard<std::mutex> lock(d.mu);
      d.tasks.push_back(std::move(task));
    }
    // Dekker-style handoff: our num_queued_ increment is seq_cst-ordered
    // before this num_sleeping_ read, and a worker going to sleep
    // increments num_sleeping_ before re-checking num_queued_ — so either
    // we see the sleeper (and wake it through mu_) or the sleeper sees our
    // task. Busy pools skip the global mutex entirely.
    if (num_sleeping_.load() > 0) {
      { std::lock_guard<std::mutex> lock(mu_); }
      work_available_.notify_one();
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      injected_.push_back(std::move(task));
    }
    work_available_.notify_one();
  }
}

bool TaskScheduler::PopLocal(Task* out) {
  if (tls_worker.scheduler != this) return false;
  WorkerDeque& d = *deques_[tls_worker.index];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.tasks.empty()) return false;
  *out = std::move(d.tasks.back());  // LIFO
  d.tasks.pop_back();
  return true;
}

bool TaskScheduler::PopInjected(Task* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (injected_.empty()) return false;
  *out = std::move(injected_.front());  // FIFO
  injected_.pop_front();
  return true;
}

bool TaskScheduler::StealFrom(size_t victim, Task* out) {
  WorkerDeque& d = *deques_[victim];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.tasks.empty()) return false;
  *out = std::move(d.tasks.front());  // FIFO: steal the oldest task
  d.tasks.pop_front();
  return true;
}

void TaskScheduler::RunTask(Task task) {
  num_queued_.fetch_sub(1, std::memory_order_acquire);
  task.fn();
  std::lock_guard<std::mutex> lock(task.group->mu);
  --task.group->pending;
  if (task.group->pending == 0) task.group->done.notify_all();
}

bool TaskScheduler::RunOneTask() {
  if (num_queued_.load(std::memory_order_acquire) == 0) return false;
  Task task;
  if (PopLocal(&task)) {
    RunTask(std::move(task));
    return true;
  }
  if (PopInjected(&task)) {
    RunTask(std::move(task));
    return true;
  }
  // Steal sweep, starting at a rotating position; skip our own deque (it
  // was empty a moment ago, and stealing from ourselves is just a pop).
  size_t n = deques_.size();
  if (n == 0) return false;
  size_t start = steal_seed_.fetch_add(1, std::memory_order_relaxed);
  bool local = tls_worker.scheduler == this;
  for (size_t i = 0; i < n; ++i) {
    size_t victim = (start + i) % n;
    if (local && victim == tls_worker.index) continue;
    if (StealFrom(victim, &task)) {
      RunTask(std::move(task));
      return true;
    }
  }
  return false;
}

void TaskScheduler::WorkerLoop(size_t worker_index) {
  tls_worker.scheduler = this;
  tls_worker.index = worker_index;
  while (true) {
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    // Untimed block. Sleep protocol (see Enqueue): announce the sleep
    // first (seq_cst), then re-check for work under mu_ — an enqueuer
    // either observes num_sleeping_ > 0 and notifies through mu_, or this
    // predicate observes its num_queued_ increment.
    num_sleeping_.fetch_add(1);
    work_available_.wait(lock, [this] {
      return shutdown_ || num_queued_.load() > 0;
    });
    num_sleeping_.fetch_sub(1);
    if (shutdown_) return;
  }
}

void TaskScheduler::TaskGroup::Submit(std::function<void()> fn) {
  if (!state_) state_ = std::make_shared<GroupState>();
  scheduler_->Enqueue(Task{std::move(fn), state_});
}

void TaskScheduler::TaskGroup::Wait() {
  if (!state_) return;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->pending == 0) return;
    }
    // Help: run queued tasks (local, injected, or stolen) instead of
    // blocking. Only once nothing is runnable (our remaining tasks are
    // executing on workers) do we block.
    if (scheduler_->RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->done.wait_for(lock, std::chrono::milliseconds(1),
                          [this] { return state_->pending == 0; });
    if (state_->pending == 0) return;
  }
}

void TaskScheduler::ParallelFor(size_t n,
                                const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  TaskGroup group(this);
  for (size_t i = 1; i < n; ++i) {
    group.Submit([&fn, i] { fn(i); });
  }
  fn(0);
  group.Wait();
}

}  // namespace common
}  // namespace bdcc
