#include "common/task_scheduler.h"

#include <algorithm>
#include <chrono>

namespace bdcc {
namespace common {

// Shared between a TaskGroup and its in-flight tasks; outlives the group if
// the group is destroyed after Wait (Wait guarantees pending == 0).
struct GroupState {
  std::mutex mu;
  std::condition_variable done;
  size_t pending = 0;
};

TaskScheduler::TaskScheduler(int num_workers) {
  workers_.reserve(std::max(0, num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Any tasks still queued are dropped; their groups are notified so no
  // waiter hangs. (Normal use never reaches this: TaskGroup::Wait drains.)
  for (Task& t : queue_) {
    std::lock_guard<std::mutex> lock(t.group->mu);
    if (--t.group->pending == 0) t.group->done.notify_all();
  }
}

TaskScheduler* TaskScheduler::Shared() {
  static TaskScheduler* shared = [] {
    unsigned hw = std::thread::hardware_concurrency();
    return new TaskScheduler(std::max(1, static_cast<int>(hw) - 1));
  }();
  return shared;
}

void TaskScheduler::Enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(task.group->mu);
    ++task.group->pending;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool TaskScheduler::RunOneTask() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task.fn();
  {
    std::lock_guard<std::mutex> lock(task.group->mu);
    --task.group->pending;
    if (task.group->pending == 0) task.group->done.notify_all();
  }
  return true;
}

void TaskScheduler::WorkerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
    }
    RunOneTask();
  }
}

void TaskScheduler::TaskGroup::Submit(std::function<void()> fn) {
  if (!state_) state_ = std::make_shared<GroupState>();
  scheduler_->Enqueue(Task{std::move(fn), state_});
}

void TaskScheduler::TaskGroup::Wait() {
  if (!state_) return;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->pending == 0) return;
    }
    // Help: run queued tasks instead of blocking. Only once the queue is
    // empty (our remaining tasks are running on workers) do we block.
    if (scheduler_->RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->done.wait_for(lock, std::chrono::milliseconds(1),
                          [this] { return state_->pending == 0; });
    if (state_->pending == 0) return;
  }
}

void TaskScheduler::ParallelFor(size_t n,
                                const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  TaskGroup group(this);
  for (size_t i = 1; i < n; ++i) {
    group.Submit([&fn, i] { fn(i); });
  }
  fn(0);
  group.Wait();
}

}  // namespace common
}  // namespace bdcc
