// Runtime SIMD tier selection for the exec kernels (see exec/kernels/).
//
// The active tier is resolved once from hardware detection (CPUID on x86,
// compile-time NEON on aarch64), optionally narrowed by the BDCC_SIMD
// environment variable, and overridable programmatically for tests:
//
//   BDCC_SIMD=scalar | neon | avx2 | native
//
// Requesting a tier the hardware cannot run clamps down to the best
// supported one — forcing "avx2" on a NEON machine silently yields scalar,
// so equality tests can sweep every tier name on any host.
#ifndef BDCC_COMMON_SIMD_H_
#define BDCC_COMMON_SIMD_H_

namespace bdcc {
namespace simd {

/// Instruction-set tiers, ordered by preference (higher = wider).
enum class Tier : int { kScalar = 0, kNeon = 1, kAvx2 = 2 };

const char* TierName(Tier t);

/// Best tier this machine supports (ignores BDCC_SIMD and ForceTier).
Tier DetectTier();

/// Tier kernels should dispatch on right now: ForceTier override if set,
/// else BDCC_SIMD (read once), else DetectTier(). Thread-safe.
Tier ActiveTier();

/// Force a tier for testing; clamps to hardware support and returns the
/// tier actually applied. Call ResetTier() to drop the override.
Tier ForceTier(Tier t);

/// Return to env/hardware-based selection.
void ResetTier();

}  // namespace simd
}  // namespace bdcc

#endif  // BDCC_COMMON_SIMD_H_
