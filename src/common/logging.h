// Minimal leveled logging to stderr.
#ifndef BDCC_COMMON_LOGGING_H_
#define BDCC_COMMON_LOGGING_H_

#include <string>

namespace bdcc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kWarn so
/// library use is quiet; benches/examples raise verbosity explicitly.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, const std::string& msg);

#define BDCC_LOG(level, msg)                                            \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::bdcc::GetLogLevel())) {                      \
      ::bdcc::LogMessage(level, (msg));                                 \
    }                                                                   \
  } while (0)

}  // namespace bdcc

#endif  // BDCC_COMMON_LOGGING_H_
