#include "common/fault_injection.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace bdcc {
namespace fault {

namespace {

struct Config {
  bool enabled = false;
  uint64_t seed = 0;
  // Fire when the hash draw is below this; UINT64_MAX means "always".
  uint64_t threshold = 0;
  // Exact point-name filter; empty matches every point.
  std::string only_point;
};

// The active config is swapped atomically so readers never lock. Configs are
// never freed: a ShouldFail racing a scope exit may still be reading the
// outgoing config, and the few bytes per test scope are not worth a hazard
// scheme. Retire() parks them in a static registry so they stay reachable
// (keeps LeakSanitizer quiet about the deliberate retention).
std::atomic<const Config*> g_active{nullptr};

void Retire(const Config* c) {
  static std::mutex* mu = new std::mutex();
  static std::vector<const Config*>* retired = new std::vector<const Config*>();
  std::lock_guard<std::mutex> lock(*mu);
  retired->push_back(c);
}
std::atomic<uint64_t> g_draws{0};
std::atomic<uint64_t> g_injected{0};

uint64_t ThresholdFor(double probability) {
  if (probability >= 1.0) return UINT64_MAX;
  if (probability <= 0.0) return 0;
  return static_cast<uint64_t>(
      probability * static_cast<double>(UINT64_MAX >> 11) * 2048.0);
}

const Config* EnvConfig() {
  static const Config* env = [] {
    Config* c = new Config();
    const char* seed = std::getenv("BDCC_FAULT_SEED");
    if (seed != nullptr && *seed != '\0') {
      c->enabled = true;
      c->seed = std::strtoull(seed, nullptr, 10);
      double prob = 0.001;
      const char* p = std::getenv("BDCC_FAULT_PROB");
      if (p != nullptr && *p != '\0') prob = std::atof(p);
      c->threshold = ThresholdFor(prob);
      const char* points = std::getenv("BDCC_FAULT_POINTS");
      if (points != nullptr) c->only_point = points;
    }
    return c;
  }();
  return env;
}

const Config* Active() {
  const Config* c = g_active.load(std::memory_order_acquire);
  return c != nullptr ? c : EnvConfig();
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashPoint(const char* point) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char* p = point; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint64_t>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

bool Draw(const Config* c, const char* point) {
  if (!c->only_point.empty() && c->only_point != point) return false;
  uint64_t n = g_draws.fetch_add(1, std::memory_order_relaxed);
  uint64_t h = SplitMix64(c->seed ^ SplitMix64(n) ^ HashPoint(point));
  if (c->threshold == UINT64_MAX || h < c->threshold) {
    g_injected.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace

bool Enabled() { return Active()->enabled; }

bool ShouldFail(const char* point) {
  const Config* c = Active();
  if (BDCC_LIKELY(!c->enabled)) return false;
  return Draw(c, point);
}

void MaybeDelay(const char* point) {
  const Config* c = Active();
  if (BDCC_LIKELY(!c->enabled)) return;
  if (Draw(c, point)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

uint64_t InjectedCount() {
  return g_injected.load(std::memory_order_relaxed);
}

ScopedFaultInjection::ScopedFaultInjection(uint64_t seed, double probability,
                                           const char* only_point) {
  Config* c = new Config();
  c->enabled = true;
  c->seed = seed;
  c->threshold = ThresholdFor(probability);
  if (only_point != nullptr) c->only_point = only_point;
  Retire(c);
  previous_ = g_active.exchange(c, std::memory_order_acq_rel);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  g_active.store(static_cast<const Config*>(previous_),
                 std::memory_order_release);
}

}  // namespace fault
}  // namespace bdcc
