#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bdcc {
namespace simd {

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kNeon:
      return "neon";
    case Tier::kAvx2:
      return "avx2";
  }
  return "?";
}

Tier DetectTier() {
#if defined(__aarch64__)
  return Tier::kNeon;  // NEON is architecturally guaranteed on aarch64
#elif defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") ? Tier::kAvx2 : Tier::kScalar;
#else
  return Tier::kScalar;
#endif
}

namespace {

Tier Clamp(Tier want) {
  Tier max = DetectTier();
  return static_cast<int>(want) <= static_cast<int>(max) ? want
                                                         : Tier::kScalar;
}

Tier EnvTier() {
  const char* env = std::getenv("BDCC_SIMD");
  if (env == nullptr || std::strcmp(env, "native") == 0) return DetectTier();
  if (std::strcmp(env, "scalar") == 0) return Tier::kScalar;
  if (std::strcmp(env, "neon") == 0) return Clamp(Tier::kNeon);
  if (std::strcmp(env, "avx2") == 0) return Clamp(Tier::kAvx2);
  return DetectTier();  // unknown value: ignore
}

// -1 = not yet resolved; otherwise the Tier value in effect.
std::atomic<int> g_tier{-1};

}  // namespace

Tier ActiveTier() {
  int t = g_tier.load(std::memory_order_relaxed);
  if (t < 0) {
    t = static_cast<int>(EnvTier());
    g_tier.store(t, std::memory_order_relaxed);
  }
  return static_cast<Tier>(t);
}

Tier ForceTier(Tier t) {
  Tier applied = Clamp(t);
  g_tier.store(static_cast<int>(applied), std::memory_order_relaxed);
  return applied;
}

void ResetTier() {
  g_tier.store(static_cast<int>(EnvTier()), std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace bdcc
