#include "common/bits.h"

#include "common/macros.h"

namespace bdcc {
namespace bits {

int CeilLog2(uint64_t x) {
  if (x <= 1) return 0;
  return 64 - __builtin_clzll(x - 1);
}

int FloorLog2(uint64_t x) {
  BDCC_CHECK(x >= 1);
  return 63 - __builtin_clzll(x);
}

uint64_t SpreadBits(uint64_t value, uint64_t mask) {
  // Deposit from least significant mask bit upward; the low Ones(mask) bits
  // of `value` are consumed in significance order, so relative order of the
  // value's bits is preserved.
  uint64_t out = 0;
  uint64_t m = mask;
  while (m != 0) {
    uint64_t lowest = m & (~m + 1);  // lowest set bit
    if (value & 1) out |= lowest;
    value >>= 1;
    m ^= lowest;
  }
  return out;
}

uint64_t ExtractBits(uint64_t key, uint64_t mask) {
  uint64_t out = 0;
  int shift = 0;
  uint64_t m = mask;
  while (m != 0) {
    uint64_t lowest = m & (~m + 1);
    if (key & lowest) out |= (uint64_t{1} << shift);
    ++shift;
    m ^= lowest;
  }
  return out;
}

std::string FormatMask(uint64_t mask, int width) {
  BDCC_CHECK(width >= 1 && width <= 64);
  std::string out(static_cast<size_t>(width), '0');
  for (int i = 0; i < width; ++i) {
    if (mask & (uint64_t{1} << (width - 1 - i))) out[static_cast<size_t>(i)] = '1';
  }
  return out;
}

Result<uint64_t> ParseMask(std::string_view text) {
  if (text.empty() || text.size() > 64) {
    return Status::InvalidArgument("mask string must have 1..64 characters");
  }
  uint64_t mask = 0;
  for (char c : text) {
    mask <<= 1;
    if (c == '1') {
      mask |= 1;
    } else if (c != '0') {
      return Status::ParseError("mask string may contain only '0'/'1'");
    }
  }
  return mask;
}

void SetBitPositionsDesc(uint64_t mask, int* out_positions) {
  int idx = 0;
  for (int pos = 63; pos >= 0; --pos) {
    if (mask & (uint64_t{1} << pos)) out_positions[idx++] = pos;
  }
}

}  // namespace bits
}  // namespace bdcc
