// Core macros shared across the BDCC library.
//
// The library follows the Arrow/RocksDB convention of returning Status /
// Result<T> from fallible operations; exceptions are not used on library
// paths. BDCC_CHECK is reserved for internal invariants whose violation is a
// programming error, never for user input.
#ifndef BDCC_COMMON_MACROS_H_
#define BDCC_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define BDCC_LIKELY(x) (__builtin_expect(!!(x), 1))
#define BDCC_UNLIKELY(x) (__builtin_expect(!!(x), 0))

#define BDCC_STRINGIFY_IMPL(x) #x
#define BDCC_STRINGIFY(x) BDCC_STRINGIFY_IMPL(x)

// Internal invariant check; aborts with location info on failure.
#define BDCC_CHECK(cond)                                                     \
  do {                                                                       \
    if (BDCC_UNLIKELY(!(cond))) {                                            \
      ::std::fprintf(stderr, "BDCC_CHECK failed at %s:%d: %s\n", __FILE__,   \
                     __LINE__, #cond);                                       \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

#define BDCC_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (BDCC_UNLIKELY(!(cond))) {                                            \
      ::std::fprintf(stderr, "BDCC_CHECK failed at %s:%d: %s (%s)\n",        \
                     __FILE__, __LINE__, #cond, (msg));                      \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

// Propagate a non-OK Status from the current function.
#define BDCC_RETURN_NOT_OK(expr)                                             \
  do {                                                                       \
    ::bdcc::Status _st = (expr);                                             \
    if (BDCC_UNLIKELY(!_st.ok())) return _st;                                \
  } while (0)

#define BDCC_CONCAT_IMPL(a, b) a##b
#define BDCC_CONCAT(a, b) BDCC_CONCAT_IMPL(a, b)

// Evaluate an expression returning Result<T>; on success bind the value to
// `lhs`, otherwise propagate the error status.
#define BDCC_ASSIGN_OR_RETURN(lhs, expr)                                     \
  BDCC_ASSIGN_OR_RETURN_IMPL(BDCC_CONCAT(_res_, __LINE__), lhs, expr)

#define BDCC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)                           \
  auto tmp = (expr);                                                         \
  if (BDCC_UNLIKELY(!tmp.ok())) return tmp.status();                         \
  lhs = std::move(tmp).value();

#define BDCC_DISALLOW_COPY_AND_ASSIGN(T)                                     \
  T(const T&) = delete;                                                      \
  T& operator=(const T&) = delete

#endif  // BDCC_COMMON_MACROS_H_
