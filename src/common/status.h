// Status: the error model of the BDCC library (Arrow/RocksDB idiom).
#ifndef BDCC_COMMON_STATUS_H_
#define BDCC_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace bdcc {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kParseError = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
  kResourceExhausted = 11,
  kUnavailable = 12,
};

/// \brief Lightweight success/error value returned by fallible operations.
///
/// An OK status carries no allocation; error states carry a code and message.
class Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The service refused the request before doing any work (admission
  /// queue full, shed under overload); safe to retry after a backoff.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// Message text ("" when OK).
  std::string_view message() const {
    return state_ == nullptr ? std::string_view() : state_->msg;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Abort the process if not OK (for use in tests and examples).
  void AbortIfNotOK() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  std::shared_ptr<State> state_;  // nullptr == OK
};

const char* StatusCodeName(StatusCode code);

}  // namespace bdcc

#endif  // BDCC_COMMON_STATUS_H_
