// Deterministic fault injection for lifecycle testing.
//
// Execution code asks `ShouldFail(point)` at named injection points; when
// injection is enabled the answer is a deterministic function of the seed,
// a global draw counter, and the point name — so a given seed replays the
// same fault sequence, and different seeds explore different interleavings.
// Disabled (the default) every query costs one predicted-false branch per
// point.
//
// Two ways to enable it:
//  - Environment (CI sweeps): BDCC_FAULT_SEED=<n> turns injection on for the
//    whole process; BDCC_FAULT_PROB=<p in [0,1]> sets the per-draw fault
//    probability (default 0.001); BDCC_FAULT_POINTS=<name> restricts faults
//    to one point. Read once on first use.
//  - ScopedFaultInjection (tests): installs a config for the current scope
//    and restores the previous one on destruction. With probability 1.0 and
//    a single point this gives a deterministic failure at a chosen site.
//
// Point registry (keep src/exec/README.md in sync):
//   memory.alloc     ExecContext::ChargeMemory — budget charge fails as if
//                    the tracker denied it (ResourceExhausted).
//   scan.decode      PlainScan/BdccScan chunk decode fails with IOError.
//   scheduler.delay  TaskScheduler::RunTask sleeps briefly before the task
//                    body, perturbing morsel interleavings.
//   join.build       JoinHashTable partitioned build partition fails.
//   agg.merge        ParallelHashAgg partitioned merge partition fails.
//   scheduler.inject serve::QueryRunner dispatch — an admitted query fails
//                    as if its first budget charge was denied
//                    (ResourceExhausted), exercising the retry path.
//   delta.append     delta::DeltaStore::Append — the chunk build fails with
//                    IOError before any state is published (the store is
//                    unchanged; the caller can retry the same batch).
//   delta.merge      delta::LiveTable merge pass — a dirty-group merge step
//                    fails with Internal; the pass unwinds without
//                    publishing, leaving the prior snapshot intact and
//                    re-publishable.
//
// Thread-safety: all free functions are safe from any thread.
// ScopedFaultInjection construction/destruction is serialized internally but
// is meant for test code; scopes must nest (LIFO).
#ifndef BDCC_COMMON_FAULT_INJECTION_H_
#define BDCC_COMMON_FAULT_INJECTION_H_

#include <cstdint>

namespace bdcc {
namespace fault {

inline constexpr const char* kAlloc = "memory.alloc";
inline constexpr const char* kScanDecode = "scan.decode";
inline constexpr const char* kTaskDelay = "scheduler.delay";
inline constexpr const char* kJoinBuild = "join.build";
inline constexpr const char* kAggMerge = "agg.merge";
inline constexpr const char* kSchedulerInject = "scheduler.inject";
inline constexpr const char* kDeltaAppend = "delta.append";
inline constexpr const char* kDeltaMerge = "delta.merge";

/// True when any config (env or scoped) has injection turned on.
bool Enabled();

/// Draw once at the named point; true means "fail here now". Counts the
/// injected fault when it fires.
bool ShouldFail(const char* point);

/// Sleep briefly (sub-millisecond) when a draw at `point` fires; no-op
/// otherwise. Used to perturb task scheduling, not to fail anything.
void MaybeDelay(const char* point);

/// Process-wide count of faults that fired (all points, all configs).
uint64_t InjectedCount();

/// \brief Test-scoped override of the injection config (RAII).
///
/// `probability` 1.0 fires on every draw; `only_point` non-null restricts
/// faults to that point name. The previous config is restored on
/// destruction. Configs are intentionally leaked (never freed) so a racing
/// reader on another thread can never observe a dangling config.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(uint64_t seed, double probability,
                       const char* only_point = nullptr);
  ~ScopedFaultInjection();
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  const void* previous_;
};

}  // namespace fault
}  // namespace bdcc

#endif  // BDCC_COMMON_FAULT_INJECTION_H_
