#include "common/arena.h"

#include <algorithm>
#include <cstring>

namespace bdcc {

char* Arena::Allocate(size_t n) {
  if (offset_ + n > current_cap_) {
    size_t cap = std::max(block_size_, n);
    blocks_.push_back(std::make_unique<char[]>(cap));
    current_cap_ = cap;
    offset_ = 0;
    bytes_reserved_ += cap;
  }
  char* ptr = blocks_.back().get() + offset_;
  offset_ += n;
  return ptr;
}

std::string_view Arena::Intern(std::string_view s) {
  if (s.empty()) return {};
  char* dst = Allocate(s.size());
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

}  // namespace bdcc
