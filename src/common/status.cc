#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace bdcc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

void Status::AbortIfNotOK() const {
  if (!ok()) {
    std::fprintf(stderr, "fatal status: %s\n", ToString().c_str());
    std::abort();
  }
}

}  // namespace bdcc
