// Deterministic pseudo-random number generation (splitmix64 + xoshiro-style
// mixing). Used by the TPC-H generator and by property tests; determinism
// guarantees all three physical schemes are built from identical rows.
#ifndef BDCC_COMMON_RNG_H_
#define BDCC_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace bdcc {

/// \brief Small, fast, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {
    // Warm up so nearby seeds diverge immediately.
    Next64();
    Next64();
  }

  /// Next 64 uniformly distributed bits (splitmix64).
  uint64_t Next64() {
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    BDCC_CHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next64() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace bdcc

#endif  // BDCC_COMMON_RNG_H_
