// Result<T>: value-or-Status, the return type of fallible producers.
#ifndef BDCC_COMMON_RESULT_H_
#define BDCC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace bdcc {

/// \brief Holds either a T or an error Status.
///
/// Use BDCC_ASSIGN_OR_RETURN to unwrap inside Status-returning functions.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    BDCC_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    BDCC_CHECK_MSG(ok(), "value() on errored Result");
    return *value_;
  }
  T& value() & {
    BDCC_CHECK_MSG(ok(), "value() on errored Result");
    return *value_;
  }
  T value() && {
    BDCC_CHECK_MSG(ok(), "value() on errored Result");
    return std::move(*value_);
  }

  /// Unwrap, aborting on error (tests/examples only).
  T ValueOrDie() && {
    status_.AbortIfNotOK();
    return std::move(*value_);
  }
  const T& ValueOrDie() const& {
    status_.AbortIfNotOK();
    return *value_;
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

}  // namespace bdcc

#endif  // BDCC_COMMON_RESULT_H_
