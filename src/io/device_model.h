// Storage-device cost model.
//
// The paper's self-tuning algorithm (Algorithm 1) is parameterized by the
// "efficient random access size" AR: the request size at which random reads
// approach sequential throughput (the paper cites ~a few MB for magnetic
// disk, ~32KB for flash [5]). The original evaluation ran on a RAID0 of four
// SSDs; we reproduce the evaluation in memory but charge every page touched
// to an explicit device model, so access-pattern effects (scattered scans
// vs. sequential runs) remain first-class and AR is derived, not hardcoded.
#ifndef BDCC_IO_DEVICE_MODEL_H_
#define BDCC_IO_DEVICE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace bdcc {
namespace io {

/// \brief Describes a storage device's performance envelope.
struct DeviceProfile {
  std::string name;
  double sequential_bandwidth_bytes_per_sec = 1e9;  // paper: ~1GB/s RAID0 SSD
  double seek_latency_sec = 8e-6;                   // per random access
  size_t page_size_bytes = 32 * 1024;               // paper: 32KB pages

  /// The paper's SSD-RAID setup (AR ~= 32KB at 80% efficiency).
  static DeviceProfile SsdRaid0();
  /// A magnetic-disk profile (AR ~= a few MB at 80% efficiency).
  static DeviceProfile MagneticDisk();
  /// Single flash device per [5] (AR = 32KB).
  static DeviceProfile Flash();
};

/// \brief Accumulated simulated I/O work.
struct IoStats {
  uint64_t sequential_requests = 0;
  uint64_t random_requests = 0;
  uint64_t bytes_read = 0;
  double simulated_seconds = 0.0;

  IoStats& operator+=(const IoStats& other) {
    sequential_requests += other.sequential_requests;
    random_requests += other.random_requests;
    bytes_read += other.bytes_read;
    simulated_seconds += other.simulated_seconds;
    return *this;
  }
};

/// \brief Charges simulated time for access patterns against a profile.
class DeviceModel {
 public:
  explicit DeviceModel(DeviceProfile profile = DeviceProfile::SsdRaid0())
      : profile_(profile) {}

  const DeviceProfile& profile() const { return profile_; }

  /// \brief The efficient random access size AR: smallest request size whose
  /// effective throughput reaches `efficiency` (default 80%) of sequential.
  ///
  /// Solving  (s/bw) / (seek + s/bw) = e  gives  s = bw*seek*e/(1-e).
  /// Rounded up to a whole number of pages.
  size_t EfficientRandomAccessSize(double efficiency = 0.8) const;

  /// Time to read `bytes` as one contiguous run following the previous
  /// request (no seek charged).
  double SequentialCost(uint64_t bytes) const;

  /// Time to read `bytes` at a random position (one seek + transfer).
  double RandomCost(uint64_t bytes) const;

  /// Record a contiguous read continuing the current pattern.
  void ChargeSequential(uint64_t bytes);

  /// Record a read at an unrelated position (seek + transfer).
  void ChargeRandom(uint64_t bytes);

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

 private:
  DeviceProfile profile_;
  IoStats stats_;
};

}  // namespace io
}  // namespace bdcc

#endif  // BDCC_IO_DEVICE_MODEL_H_
