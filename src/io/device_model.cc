#include "io/device_model.h"

#include <cmath>

#include "common/macros.h"

namespace bdcc {
namespace io {

DeviceProfile DeviceProfile::SsdRaid0() {
  DeviceProfile p;
  p.name = "ssd-raid0";
  p.sequential_bandwidth_bytes_per_sec = 1e9;
  p.seek_latency_sec = 8e-6;
  p.page_size_bytes = 32 * 1024;
  return p;
}

DeviceProfile DeviceProfile::MagneticDisk() {
  DeviceProfile p;
  p.name = "magnetic-disk";
  p.sequential_bandwidth_bytes_per_sec = 150e6;
  p.seek_latency_sec = 5e-3;
  p.page_size_bytes = 32 * 1024;
  return p;
}

DeviceProfile DeviceProfile::Flash() {
  DeviceProfile p;
  p.name = "flash";
  p.sequential_bandwidth_bytes_per_sec = 250e6;
  p.seek_latency_sec = 32e-6;
  p.page_size_bytes = 32 * 1024;
  return p;
}

size_t DeviceModel::EfficientRandomAccessSize(double efficiency) const {
  BDCC_CHECK(efficiency > 0.0 && efficiency < 1.0);
  double bytes = profile_.sequential_bandwidth_bytes_per_sec *
                 profile_.seek_latency_sec * efficiency / (1.0 - efficiency);
  size_t pages = static_cast<size_t>(
      std::ceil(bytes / static_cast<double>(profile_.page_size_bytes)));
  if (pages == 0) pages = 1;
  return pages * profile_.page_size_bytes;
}

double DeviceModel::SequentialCost(uint64_t bytes) const {
  return static_cast<double>(bytes) /
         profile_.sequential_bandwidth_bytes_per_sec;
}

double DeviceModel::RandomCost(uint64_t bytes) const {
  return profile_.seek_latency_sec + SequentialCost(bytes);
}

void DeviceModel::ChargeSequential(uint64_t bytes) {
  stats_.sequential_requests += 1;
  stats_.bytes_read += bytes;
  stats_.simulated_seconds += SequentialCost(bytes);
}

void DeviceModel::ChargeRandom(uint64_t bytes) {
  stats_.random_requests += 1;
  stats_.bytes_read += bytes;
  stats_.simulated_seconds += RandomCost(bytes);
}

}  // namespace io
}  // namespace bdcc
