#include "io/buffer_pool.h"

#include <algorithm>

namespace bdcc {
namespace io {

BufferPool::BufferPool(DeviceModel* device, uint64_t capacity_bytes)
    : device_(device) {
  BDCC_CHECK(device != nullptr);
  uint64_t page = device->profile().page_size_bytes;
  capacity_pages_ = std::max<uint64_t>(1, capacity_bytes / page);
}

ColumnHandle BufferPool::RegisterColumn(const std::string& name,
                                        uint64_t total_bytes,
                                        uint64_t row_count) {
  uint64_t page = device_->profile().page_size_bytes;
  ColumnInfo info;
  info.name = name;
  info.total_bytes = total_bytes;
  info.row_count = row_count;
  info.pages = (total_bytes + page - 1) / page;
  if (info.pages == 0) info.pages = 1;
  columns_.push_back(info);
  return static_cast<ColumnHandle>(columns_.size() - 1);
}

uint64_t BufferPool::ColumnPages(ColumnHandle handle) const {
  BDCC_CHECK(handle < columns_.size());
  return columns_[handle].pages;
}

double BufferPool::ColumnBytesPerRow(ColumnHandle handle) const {
  BDCC_CHECK(handle < columns_.size());
  const ColumnInfo& c = columns_[handle];
  if (c.row_count == 0) return 0.0;
  return static_cast<double>(c.total_bytes) /
         static_cast<double>(c.row_count);
}

void BufferPool::Touch(PageKey key) {
  auto it = resident_.find(key);
  BDCC_CHECK(it != resident_.end());
  lru_.splice(lru_.begin(), lru_, it->second);
}

void BufferPool::Insert(PageKey key) {
  while (resident_.size() >= capacity_pages_) {
    PageKey victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(key);
  resident_[key] = lru_.begin();
}

void BufferPool::ReadRows(ColumnHandle handle, uint64_t row_begin,
                          uint64_t row_end) {
  BDCC_CHECK(handle < columns_.size());
  const ColumnInfo& col = columns_[handle];
  if (row_end <= row_begin || col.row_count == 0) return;
  row_end = std::min(row_end, col.row_count);
  uint64_t page_bytes = device_->profile().page_size_bytes;
  double bytes_per_row = ColumnBytesPerRow(handle);
  uint64_t first_page =
      static_cast<uint64_t>(static_cast<double>(row_begin) * bytes_per_row) /
      page_bytes;
  uint64_t last_byte = static_cast<uint64_t>(
      static_cast<double>(row_end) * bytes_per_row);
  uint64_t last_page = last_byte == 0 ? 0 : (last_byte - 1) / page_bytes;
  last_page = std::min(last_page, col.pages - 1);
  first_page = std::min(first_page, last_page);

  std::lock_guard<std::mutex> lock(mu_);
  // Walk the page range, coalescing runs of misses.
  uint64_t run_start = 0;
  uint64_t run_len = 0;
  auto flush_run = [&]() {
    if (run_len == 0) return;
    // First page of a run pays the seek; the rest stream sequentially.
    device_->ChargeRandom(page_bytes);
    if (run_len > 1) device_->ChargeSequential((run_len - 1) * page_bytes);
    run_len = 0;
  };
  for (uint64_t p = first_page; p <= last_page; ++p) {
    PageKey key = MakeKey(handle, p);
    if (resident_.count(key)) {
      stats_.page_hits.fetch_add(1, std::memory_order_relaxed);
      flush_run();
      Touch(key);
    } else {
      stats_.page_misses.fetch_add(1, std::memory_order_relaxed);
      if (run_len == 0) run_start = p;
      (void)run_start;
      ++run_len;
      Insert(key);
    }
  }
  flush_run();
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  resident_.clear();
}

}  // namespace io
}  // namespace bdcc
