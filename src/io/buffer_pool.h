// Page-granular buffer pool simulation.
//
// Scans request row ranges of registered columns; the pool translates ranges
// to page sets, coalesces adjacent misses into sequential runs, and charges
// the DeviceModel. This is how the reproduction keeps the paper's central
// I/O argument (scattered group access must stay >= AR per group to be
// efficient) observable in an in-memory engine.
//
// Thread-safety contract: ReadRows/Clear/ResetStats are safe to call from
// any thread — the LRU structures and the DeviceModel charge are serialized
// by an internal mutex, and the hit/miss/eviction counters are atomics so
// stats() can be sampled without the lock (counters are monotonically
// consistent; a sample taken during a concurrent ReadRows may miss its
// in-flight increments). RegisterColumn is NOT safe concurrently with
// reads — register all columns before query execution starts (table load
// time), which is how every caller uses it.
#ifndef BDCC_IO_BUFFER_POOL_H_
#define BDCC_IO_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "io/device_model.h"

namespace bdcc {
namespace io {

/// Identifies a registered column inside the pool.
using ColumnHandle = uint32_t;

struct BufferPoolStats {
  std::atomic<uint64_t> page_hits{0};
  std::atomic<uint64_t> page_misses{0};
  std::atomic<uint64_t> evictions{0};
};

/// \brief LRU page cache backed by a DeviceModel.
class BufferPool {
 public:
  /// \param device The device charged for misses (not owned, must outlive).
  /// DeviceModel itself is not thread-safe; the pool serializes all charges
  /// to it under its mutex, so a device must not be shared by two pools that
  /// run concurrently.
  /// \param capacity_bytes Cache capacity; the paper used a 4GB buffer pool.
  BufferPool(DeviceModel* device, uint64_t capacity_bytes);
  BDCC_DISALLOW_COPY_AND_ASSIGN(BufferPool);

  /// Register a column of `total_bytes` payload; returns its handle.
  /// Not thread-safe; call during table load only.
  ColumnHandle RegisterColumn(const std::string& name, uint64_t total_bytes,
                              uint64_t row_count);

  /// Number of pages a registered column occupies.
  uint64_t ColumnPages(ColumnHandle handle) const;

  /// Bytes per value (density) as stored; used by Algorithm 1.
  double ColumnBytesPerRow(ColumnHandle handle) const;

  /// \brief Read rows [row_begin, row_end) of a column. Misses are coalesced:
  /// consecutive missing pages become one request (first charged as random,
  /// continuation pages as sequential transfer). Thread-safe.
  void ReadRows(ColumnHandle handle, uint64_t row_begin, uint64_t row_end);

  /// Drop all cached pages (simulates a cold run). Thread-safe.
  void Clear();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.page_hits.store(0, std::memory_order_relaxed);
    stats_.page_misses.store(0, std::memory_order_relaxed);
    stats_.evictions.store(0, std::memory_order_relaxed);
  }
  DeviceModel* device() { return device_; }

 private:
  struct ColumnInfo {
    std::string name;
    uint64_t total_bytes = 0;
    uint64_t row_count = 0;
    uint64_t pages = 0;
  };
  using PageKey = uint64_t;  // (handle << 40) | page_no

  static PageKey MakeKey(ColumnHandle h, uint64_t page) {
    return (static_cast<uint64_t>(h) << 40) | page;
  }

  // Both require mu_ held.
  void Touch(PageKey key);
  void Insert(PageKey key);

  DeviceModel* device_;
  uint64_t capacity_pages_;
  std::vector<ColumnInfo> columns_;
  // Guards lru_/resident_ and all DeviceModel charges.
  std::mutex mu_;
  // LRU: list front = most recent; map points into list.
  std::list<PageKey> lru_;
  std::unordered_map<PageKey, std::list<PageKey>::iterator> resident_;
  BufferPoolStats stats_;
};

}  // namespace io
}  // namespace bdcc

#endif  // BDCC_IO_BUFFER_POOL_H_
