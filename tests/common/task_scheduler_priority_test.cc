// Priority injection lanes: kHigh task groups route through a dedicated
// FIFO lane every worker (and helping waiter) checks before its own deque,
// the ambient priority is captured when a group's state is created and
// inherited by nested submissions, and the lane coexists with stealing
// under load. The deterministic tests use a zero-worker scheduler (all
// dispatch happens on the thread that Waits, in a fixed order); the stress
// tests run under TSan in CI (suite name matches the concurrency filter).
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/task_scheduler.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace common {
namespace {

TEST(TaskSchedulerPriorityTest, DefaultPriorityIsNormal) {
  EXPECT_EQ(ScopedTaskPriority::Current(), TaskPriority::kNormal);
  {
    ScopedTaskPriority high(TaskPriority::kHigh);
    EXPECT_EQ(ScopedTaskPriority::Current(), TaskPriority::kHigh);
    {
      ScopedTaskPriority normal(TaskPriority::kNormal);
      EXPECT_EQ(ScopedTaskPriority::Current(), TaskPriority::kNormal);
    }
    EXPECT_EQ(ScopedTaskPriority::Current(), TaskPriority::kHigh);
  }
  EXPECT_EQ(ScopedTaskPriority::Current(), TaskPriority::kNormal);
}

TEST(TaskSchedulerPriorityTest, HighLaneDrainsBeforeNormalBacklog) {
  TaskScheduler scheduler(0);  // all dispatch happens in Wait, in order
  std::vector<int> order;  // single-threaded with zero workers

  TaskScheduler::TaskGroup normal(&scheduler);
  for (int i = 0; i < 10; ++i) {
    normal.Submit([&order, i] { order.push_back(i); });
  }
  TaskScheduler::TaskGroup high(&scheduler);
  {
    ScopedTaskPriority scope(TaskPriority::kHigh);
    for (int i = 100; i < 105; ++i) {
      high.Submit([&order, i] { order.push_back(i); });
    }
  }

  // Waiting on the *normal* group still drains the high lane first: the
  // helper runs RunOneTask, which checks the lane before anything else.
  normal.Wait();
  high.Wait();
  ASSERT_EQ(order.size(), 15u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(order[i], 100) << "normal task ran before the high lane drained";
  }
  // Both lanes are FIFO.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], 100 + i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[5 + i], i);
}

TEST(TaskSchedulerPriorityTest, PriorityCapturedAtStateCreation) {
  TaskScheduler scheduler(0);
  std::vector<TaskPriority> seen;
  TaskScheduler::TaskGroup group(&scheduler);
  {
    ScopedTaskPriority scope(TaskPriority::kHigh);
    group.Submit([&seen] { seen.push_back(ScopedTaskPriority::Current()); });
  }
  // Submitted outside the scope, but the group's state (and priority) was
  // created by the first Submit — the whole group stays high.
  group.Submit([&seen] { seen.push_back(ScopedTaskPriority::Current()); });
  group.Wait();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], TaskPriority::kHigh);
  EXPECT_EQ(seen[1], TaskPriority::kHigh);
}

TEST(TaskSchedulerPriorityTest, NestedSubmissionsInheritPriority) {
  TaskScheduler scheduler(0);
  std::atomic<int> high_nested{0};
  TaskScheduler::TaskGroup outer(&scheduler);
  {
    ScopedTaskPriority scope(TaskPriority::kHigh);
    outer.Submit([&scheduler, &high_nested] {
      // Runs under the group's priority; the nested group created here
      // must capture kHigh from the worker's ambient state.
      TaskScheduler::TaskGroup inner(&scheduler);
      for (int i = 0; i < 3; ++i) {
        inner.Submit([&high_nested] {
          if (ScopedTaskPriority::Current() == TaskPriority::kHigh) {
            high_nested.fetch_add(1);
          }
        });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(high_nested.load(), 3);
}

TEST(TaskSchedulerPriorityTest, ParallelForStatusUnderHighPriority) {
  TaskScheduler scheduler(2);
  ScopedTaskPriority scope(TaskPriority::kHigh);
  std::atomic<int> ran{0};
  Status s = scheduler.ParallelForStatus(64, [&ran](size_t) -> Status {
    ran.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(ran.load(), 64);
}

TEST(TaskSchedulerPriorityTest, StressMixedPrioritiesAllComplete) {
  TaskScheduler scheduler(3);
  std::atomic<int> normal_ran{0};
  std::atomic<int> high_ran{0};
  std::atomic<int> high_mislabelled{0};

  std::thread normal_submitter([&] {
    TaskScheduler::TaskGroup group(&scheduler);
    for (int i = 0; i < 500; ++i) {
      group.Submit([&normal_ran] { normal_ran.fetch_add(1); });
    }
    group.Wait();
  });
  std::thread high_submitter([&] {
    ScopedTaskPriority scope(TaskPriority::kHigh);
    TaskScheduler::TaskGroup group(&scheduler);
    for (int i = 0; i < 500; ++i) {
      group.Submit([&high_ran, &high_mislabelled] {
        high_ran.fetch_add(1);
        if (ScopedTaskPriority::Current() != TaskPriority::kHigh) {
          high_mislabelled.fetch_add(1);
        }
      });
    }
    group.Wait();
  });
  normal_submitter.join();
  high_submitter.join();
  EXPECT_EQ(normal_ran.load(), 500);
  EXPECT_EQ(high_ran.load(), 500);
  EXPECT_EQ(high_mislabelled.load(), 0);
}

TEST(TaskSchedulerPriorityTest, FailedHighGroupSurfacesErrorAtJoin) {
  TaskScheduler scheduler(2);
  ScopedTaskPriority scope(TaskPriority::kHigh);
  TaskScheduler::TaskGroup group(&scheduler);
  for (int i = 0; i < 32; ++i) {
    group.SubmitFallible([i]() -> Status {
      if (i == 5) return Status::ResourceExhausted("high lane budget");
      return Status::OK();
    });
  }
  Status s = group.WaitStatus();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsResourceExhausted());
}

}  // namespace
}  // namespace common
}  // namespace bdcc
