// Rng, Arena, logging, memory tracker.
#include <set>
#include <thread>

#include "common/arena.h"
#include "common/logging.h"
#include "common/rng.h"
#include "exec/memory_tracker.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next64();
    EXPECT_EQ(va, b.Next64());
    EXPECT_NE(va, c.Next64());  // overwhelmingly likely
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_EQ(rng.Uniform(5, 5), 5);
}

TEST(RngTest, DoubleAndChance) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 250);
}

TEST(ArenaTest, InternStableAcrossGrowth) {
  Arena arena(64);  // tiny blocks to force growth
  std::vector<std::string_view> views;
  for (int i = 0; i < 200; ++i) {
    views.push_back(arena.Intern("string-" + std::to_string(i)));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(views[i], "string-" + std::to_string(i));
  }
  EXPECT_GT(arena.bytes_reserved(), 1000u);
  EXPECT_EQ(arena.Intern(""), std::string_view());
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(16);
  std::string big(1000, 'x');
  std::string_view v = arena.Intern(big);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v, big);
}

TEST(LoggingTest, ThresholdRespected) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(MemoryTrackerTest, PeakTracksHighWater) {
  exec::MemoryTracker tracker;
  tracker.Allocate(100);
  tracker.Allocate(50);
  EXPECT_EQ(tracker.current_bytes(), 150u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Release(120);
  EXPECT_EQ(tracker.current_bytes(), 30u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Allocate(10);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
}

TEST(MemoryTrackerTest, TrackedMemoryRaii) {
  exec::MemoryTracker tracker;
  {
    exec::TrackedMemory mem(&tracker);
    mem.Set(500);
    EXPECT_EQ(tracker.current_bytes(), 500u);
    mem.Set(200);
    EXPECT_EQ(tracker.current_bytes(), 200u);
    mem.Set(800);
    EXPECT_EQ(tracker.peak_bytes(), 800u);
  }
  EXPECT_EQ(tracker.current_bytes(), 0u);  // released on destruction
  exec::TrackedMemory null_ok(nullptr);
  null_ok.Set(100);  // no-op, no crash
}

}  // namespace
}  // namespace bdcc
