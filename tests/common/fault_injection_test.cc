// The deterministic fault-injection layer: disabled by default, scoped
// overrides fire with the configured probability, point filters restrict
// where faults land, and nested scopes restore their predecessor.
#include "common/fault_injection.h"

#include "gtest/gtest.h"

namespace bdcc {
namespace fault {
namespace {

TEST(FaultInjectionTest, DisabledByDefault) {
  if (Enabled()) {
    GTEST_SKIP() << "BDCC_FAULT_SEED is set; env injection is active";
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ShouldFail(kAlloc));
    EXPECT_FALSE(ShouldFail(kScanDecode));
  }
}

TEST(FaultInjectionTest, ProbabilityOneFiresEveryDraw) {
  ScopedFaultInjection scope(42, 1.0);
  uint64_t before = InjectedCount();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(Enabled());
    EXPECT_TRUE(ShouldFail(kAlloc));
  }
  EXPECT_EQ(InjectedCount(), before + 50);
}

TEST(FaultInjectionTest, ProbabilityZeroNeverFires) {
  ScopedFaultInjection scope(42, 0.0);
  uint64_t before = InjectedCount();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(Enabled());  // enabled but never firing
    EXPECT_FALSE(ShouldFail(kAlloc));
  }
  EXPECT_EQ(InjectedCount(), before);
}

TEST(FaultInjectionTest, PointFilterRestrictsFaults) {
  ScopedFaultInjection scope(7, 1.0, kScanDecode);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(ShouldFail(kAlloc));
    EXPECT_FALSE(ShouldFail(kJoinBuild));
    EXPECT_TRUE(ShouldFail(kScanDecode));
  }
}

TEST(FaultInjectionTest, LowProbabilityFiresRoughlyAtRate) {
  ScopedFaultInjection scope(1234, 0.5);
  int fired = 0;
  for (int i = 0; i < 400; ++i) {
    if (ShouldFail(kAlloc)) ++fired;
  }
  // Deterministic hash sequence; a 0.5 threshold over 400 draws lands well
  // inside this band for any reasonable mixing function.
  EXPECT_GT(fired, 100);
  EXPECT_LT(fired, 300);
}

TEST(FaultInjectionTest, NestedScopesRestoreLifo) {
  bool env_enabled = Enabled();
  {
    ScopedFaultInjection outer(9, 1.0, kAlloc);
    EXPECT_TRUE(ShouldFail(kAlloc));
    {
      ScopedFaultInjection inner(9, 0.0);
      EXPECT_FALSE(ShouldFail(kAlloc));
    }
    // Outer config restored.
    EXPECT_TRUE(ShouldFail(kAlloc));
  }
  EXPECT_EQ(Enabled(), env_enabled);
}

TEST(FaultInjectionTest, MaybeDelayNeverFails) {
  ScopedFaultInjection scope(5, 1.0, kTaskDelay);
  uint64_t before = InjectedCount();
  MaybeDelay(kTaskDelay);  // fires: sleeps briefly, returns normally
  EXPECT_GT(InjectedCount(), before);
  // Filtered out at another point: a no-op.
  MaybeDelay(kAggMerge);
  EXPECT_EQ(InjectedCount(), before + 1);
}

}  // namespace
}  // namespace fault
}  // namespace bdcc
