// Scheduler error propagation: the first failing task of a TaskGroup (error
// Status or thrown exception) is captured, queued siblings are skipped at
// dispatch, and the failure surfaces at the WaitStatus join — after which
// the group and the scheduler remain reusable. The stress tests run under
// TSan in CI (suite name matches the concurrency-job filter).
#include <atomic>
#include <stdexcept>
#include <string>

#include "common/status.h"
#include "common/task_scheduler.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace common {
namespace {

TEST(TaskSchedulerErrorTest, WaitStatusOkWhenNothingFails) {
  TaskScheduler scheduler(2);
  std::atomic<int> count{0};
  TaskScheduler::TaskGroup group(&scheduler);
  for (int i = 0; i < 100; ++i) {
    group.SubmitFallible([&count]() -> Status {
      count.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.WaitStatus().ok());
  EXPECT_EQ(count.load(), 100);
  EXPECT_FALSE(group.failed());
}

TEST(TaskSchedulerErrorTest, FirstErrorStatusSurfacesAtJoin) {
  TaskScheduler scheduler(2);
  TaskScheduler::TaskGroup group(&scheduler);
  for (int i = 0; i < 50; ++i) {
    group.SubmitFallible([i]() -> Status {
      if (i == 7) return Status::IOError("disk on fire");
      return Status::OK();
    });
  }
  Status s = group.WaitStatus();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("disk on fire"), std::string::npos);
}

TEST(TaskSchedulerErrorTest, ExceptionRethrownAtJoin) {
  TaskScheduler scheduler(2);
  TaskScheduler::TaskGroup group(&scheduler);
  group.SubmitFallible(
      []() -> Status { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.WaitStatus(), std::runtime_error);
  // The group reset itself at the join: fresh work runs clean.
  std::atomic<int> count{0};
  group.SubmitFallible([&count]() -> Status {
    count.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(group.WaitStatus().ok());
  EXPECT_EQ(count.load(), 1);
}

TEST(TaskSchedulerErrorTest, PlainSubmitExceptionAlsoCaptured) {
  TaskScheduler scheduler(2);
  TaskScheduler::TaskGroup group(&scheduler);
  group.Submit([] { throw std::logic_error("void task boom"); });
  EXPECT_THROW(group.WaitStatus(), std::logic_error);
}

// Zero workers makes dispatch deterministic: nothing runs until the owner
// helps inside Wait, and the injection queue drains FIFO — so the first
// (failing) task marks the group failed before any sibling is dispatched,
// and every sibling must be skipped.
TEST(TaskSchedulerErrorTest, QueuedSiblingsSkippedAfterFailure) {
  TaskScheduler scheduler(0);
  std::atomic<int> ran{0};
  TaskScheduler::TaskGroup group(&scheduler);
  group.SubmitFallible([]() -> Status { return Status::Internal("first"); });
  for (int i = 0; i < 50; ++i) {
    group.SubmitFallible([&ran]() -> Status {
      ran.fetch_add(1);
      return Status::OK();
    });
  }
  Status s = group.WaitStatus();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("first"), std::string::npos);
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskSchedulerErrorTest, GroupReusableAfterFailure) {
  TaskScheduler scheduler(2);
  TaskScheduler::TaskGroup group(&scheduler);
  group.SubmitFallible([]() -> Status { return Status::Internal("one"); });
  EXPECT_FALSE(group.WaitStatus().ok());
  EXPECT_FALSE(group.failed());  // WaitStatus cleared the failure
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    group.SubmitFallible([&count]() -> Status {
      count.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.WaitStatus().ok());
  EXPECT_EQ(count.load(), 20);
}

TEST(TaskSchedulerErrorTest, ParallelForStatusPropagatesError) {
  TaskScheduler scheduler(3);
  Status s = scheduler.ParallelForStatus(64, [](size_t i) -> Status {
    if (i == 13) return Status::InvalidArgument("iteration 13");
    return Status::OK();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("iteration 13"), std::string::npos);
  // Single-iteration inline path.
  EXPECT_TRUE(scheduler
                  .ParallelForStatus(1, [](size_t) { return Status::OK(); })
                  .ok());
  EXPECT_FALSE(scheduler
                   .ParallelForStatus(
                       1, [](size_t) { return Status::Internal("solo"); })
                   .ok());
  EXPECT_TRUE(
      scheduler.ParallelForStatus(0, [](size_t) { return Status::OK(); })
          .ok());
}

TEST(TaskSchedulerErrorTest, ParallelForStatusSkipsUnstartedIterations) {
  TaskScheduler scheduler(0);  // deterministic FIFO dispatch (see above)
  std::atomic<int> ran{0};
  Status s = scheduler.ParallelForStatus(40, [&ran](size_t i) -> Status {
    if (i == 0) return Status::Internal("early");
    ran.fetch_add(1);
    return Status::OK();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(ran.load(), 0);
}

// Nested fork-join with deterministic sporadic failures across both levels:
// first-error-wins, every round joins (no deadlock, no stuck group), and
// the scheduler keeps working round after round. TSan checks the failure
// bookkeeping for races.
TEST(TaskSchedulerErrorTest, NestedForkJoinFailureStress) {
  TaskScheduler scheduler(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> inner_ran{0};
    bool fail_round = (round % 3 != 2);
    // An exception thrown in an inner group rethrows at the inner join,
    // escapes the outer iteration, is captured by the outer group, and
    // rethrows again at the *outer* join — so a failing round surfaces as
    // either a non-OK Status or a throw from ParallelForStatus itself.
    Status s;
    bool threw = false;
    try {
      s = scheduler.ParallelForStatus(8, [&](size_t i) -> Status {
        return scheduler.ParallelForStatus(16, [&](size_t j) -> Status {
          inner_ran.fetch_add(1);
          size_t id = i * 16 + j;
          if (fail_round && id % 37 == 0) {
            if (id % 2 == 0) return Status::Internal("injected failure");
            throw std::runtime_error("injected throw");
          }
          return Status::OK();
        });
      });
    } catch (const std::exception&) {
      threw = true;
    }
    if (fail_round) {
      EXPECT_TRUE(threw || !s.ok()) << "round " << round;
    } else {
      ASSERT_FALSE(threw) << "round " << round;
      EXPECT_TRUE(s.ok()) << "round " << round << ": " << s.ToString();
      EXPECT_EQ(inner_ran.load(), 8 * 16);
    }
  }
  // Scheduler still healthy after all the failures.
  std::atomic<int> count{0};
  scheduler.ParallelFor(128, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 128);
}

}  // namespace
}  // namespace common
}  // namespace bdcc
