#include "common/bits.h"

#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace bits {
namespace {

TEST(BitsTest, Ones) {
  EXPECT_EQ(Ones(0), 0);
  EXPECT_EQ(Ones(0b1011), 3);
  EXPECT_EQ(Ones(~uint64_t{0}), 64);
}

TEST(BitsTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(0), 0);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
  // The paper's LINEITEM anecdote: ceil(log2(550000)) = 20.
  EXPECT_EQ(CeilLog2(550000), 20);
}

TEST(BitsTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
}

TEST(BitsTest, SpreadBitsBasic) {
  // Deposit 0b101 into mask 0b10101 -> bits land at positions 0,2,4.
  EXPECT_EQ(SpreadBits(0b101, 0b10101), 0b10001u);
  EXPECT_EQ(SpreadBits(0b111, 0b10101), 0b10101u);
  EXPECT_EQ(SpreadBits(0, 0b10101), 0u);
  // Significance order preserved: high value bit -> high mask bit.
  EXPECT_EQ(SpreadBits(0b10, 0b1100), 0b1000u);
}

TEST(BitsTest, ExtractBitsBasic) {
  EXPECT_EQ(ExtractBits(0b10001, 0b10101), 0b101u);
  EXPECT_EQ(ExtractBits(0b11111, 0b10101), 0b111u);
  EXPECT_EQ(ExtractBits(0, 0b10101), 0u);
}

TEST(BitsTest, SpreadExtractRoundTripProperty) {
  Rng rng(1234);
  for (int trial = 0; trial < 1000; ++trial) {
    uint64_t mask = rng.Next64() & rng.Next64();  // sparse-ish mask
    int n = Ones(mask);
    uint64_t value = rng.Next64() & LowMask(n);
    EXPECT_EQ(ExtractBits(SpreadBits(value, mask), mask), value);
    // Spread never sets bits outside the mask.
    EXPECT_EQ(SpreadBits(value, mask) & ~mask, 0u);
  }
}

TEST(BitsTest, SpreadIsMonotonicProperty) {
  // For a fixed mask, spreading preserves order (key composition relies on
  // this for Z-order range pushdown).
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    uint64_t mask = rng.Next64() & rng.Next64();
    int n = Ones(mask);
    if (n == 0) continue;
    uint64_t a = rng.Next64() & LowMask(n);
    uint64_t b = rng.Next64() & LowMask(n);
    if (a > b) std::swap(a, b);
    EXPECT_LE(SpreadBits(a, mask), SpreadBits(b, mask));
  }
}

TEST(BitsTest, FormatMask) {
  EXPECT_EQ(FormatMask(0b10101, 5), "10101");
  EXPECT_EQ(FormatMask(0b00101, 5), "00101");
  EXPECT_EQ(FormatMask(0, 3), "000");
}

TEST(BitsTest, ParseMask) {
  EXPECT_EQ(ParseMask("10101").ValueOrDie(), 0b10101u);
  EXPECT_EQ(ParseMask("0001").ValueOrDie(), 1u);
  EXPECT_FALSE(ParseMask("").ok());
  EXPECT_FALSE(ParseMask("10x01").ok());
  // Paper mask strings survive a round trip.
  const char* paper = "101010101011111111";
  EXPECT_EQ(FormatMask(ParseMask(paper).ValueOrDie(), 18), paper);
}

TEST(BitsTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(3), 0b111u);
  EXPECT_EQ(LowMask(64), ~uint64_t{0});
}

TEST(BitsTest, SetBitPositionsDesc) {
  int pos[3];
  SetBitPositionsDesc(0b10101, pos);
  EXPECT_EQ(pos[0], 4);
  EXPECT_EQ(pos[1], 2);
  EXPECT_EQ(pos[2], 0);
}

}  // namespace
}  // namespace bits
}  // namespace bdcc
