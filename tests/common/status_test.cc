#include "common/status.h"

#include "common/result.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(st.message(), "");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad bits");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad bits");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad bits");
}

TEST(StatusTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented), "NotImplemented");
}

TEST(StatusTest, CopyShares) {
  Status a = Status::Internal("x");
  Status b = a;
  EXPECT_EQ(b.ToString(), "Internal: x");
}

TEST(ResultTest, Value) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, Error) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Helper(bool fail) {
  Result<int> r = fail ? Result<int>(Status::OutOfRange("x")) : Result<int>(1);
  BDCC_ASSIGN_OR_RETURN(int v, r);
  (void)v;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_TRUE(Helper(true).IsOutOfRange());
}

}  // namespace
}  // namespace bdcc
