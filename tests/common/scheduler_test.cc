// Stress tests for the morsel-execution TaskScheduler: correctness of
// fork-join counting under contention, nested parallelism (help-while-wait
// must not deadlock), zero-worker degradation, and the thread-safety of the
// shared MemoryTracker. Built with -fsanitize=thread in the CI Debug job.
#include "common/task_scheduler.h"

#include <atomic>
#include <vector>

#include "exec/memory_tracker.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace common {
namespace {

TEST(TaskSchedulerTest, RunsEveryTask) {
  TaskScheduler scheduler(4);
  std::atomic<int> count{0};
  TaskScheduler::TaskGroup group(&scheduler);
  for (int i = 0; i < 1000; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(TaskSchedulerTest, ParallelForCoversAllIndices) {
  TaskScheduler scheduler(4);
  std::vector<std::atomic<int>> hits(512);
  scheduler.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskSchedulerTest, ZeroWorkersRunsOnWaiter) {
  TaskScheduler scheduler(0);
  std::atomic<int> count{0};
  scheduler.ParallelFor(64, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(TaskSchedulerTest, NestedParallelForDoesNotDeadlock) {
  TaskScheduler scheduler(2);
  std::atomic<int> count{0};
  scheduler.ParallelFor(8, [&](size_t) {
    scheduler.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(TaskSchedulerTest, WaitIsReusableAndIdempotent) {
  TaskScheduler scheduler(2);
  std::atomic<int> count{0};
  TaskScheduler::TaskGroup group(&scheduler);
  group.Submit([&count] { count.fetch_add(1); });
  group.Wait();
  group.Wait();  // no-op
  group.Submit([&count] { count.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(TaskSchedulerTest, ManySmallGroupsStress) {
  TaskScheduler scheduler(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 100; ++round) {
    TaskScheduler::TaskGroup group(&scheduler);
    for (int i = 0; i < 20; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    group.Wait();
  }
  EXPECT_EQ(count.load(), 2000);
}

TEST(TaskSchedulerTest, SharedPoolExists) {
  TaskScheduler* shared = TaskScheduler::Shared();
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared, TaskScheduler::Shared());
  EXPECT_GE(shared->num_workers(), 1);
  std::atomic<int> count{0};
  shared->ParallelFor(32, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

// Steal-heavy: every task is submitted from one external thread (so all
// work lands in the injection queue and workers race to claim it), and the
// tasks themselves fan out nested subtasks from worker threads (local
// deques), which idle workers then steal. Run under TSan in CI.
TEST(TaskSchedulerTest, StealHeavyNestedSubmission) {
  TaskScheduler scheduler(4);
  std::atomic<int> count{0};
  TaskScheduler::TaskGroup group(&scheduler);
  for (int i = 0; i < 64; ++i) {
    group.Submit([&scheduler, &count] {
      // Nested fan-out from a worker: pushed LIFO onto its own deque,
      // stolen FIFO by the other workers.
      TaskScheduler::TaskGroup inner(&scheduler);
      for (int j = 0; j < 32; ++j) {
        inner.Submit([&count] { count.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 64 * 32);
}

// Uneven task sizes: a few long tasks pin workers while many short tasks
// queue behind them — completion requires the free workers (and the
// helping waiter) to steal around the stragglers.
TEST(TaskSchedulerTest, UnevenTaskSizesComplete) {
  TaskScheduler scheduler(3);
  std::atomic<uint64_t> sum{0};
  TaskScheduler::TaskGroup group(&scheduler);
  for (int i = 0; i < 200; ++i) {
    int spin = (i % 17 == 0) ? 40000 : 10;  // sporadic heavy tasks
    group.Submit([&sum, spin] {
      uint64_t acc = 0;
      for (int k = 0; k < spin; ++k) acc += static_cast<uint64_t>(k) * k;
      sum.fetch_add(acc + 1);
    });
  }
  group.Wait();
  // Every task ran exactly once: 200 "+1"s plus deterministic spin sums.
  uint64_t expect = 0;
  for (int i = 0; i < 200; ++i) {
    int spin = (i % 17 == 0) ? 40000 : 10;
    uint64_t acc = 0;
    for (int k = 0; k < spin; ++k) acc += static_cast<uint64_t>(k) * k;
    expect += acc + 1;
  }
  EXPECT_EQ(sum.load(), expect);
}

// Two schedulers interleaved from the same threads: worker-local deques
// must stay per-scheduler (a worker of A submitting to B goes through B's
// injection queue, not A's deques).
TEST(TaskSchedulerTest, CrossSchedulerSubmission) {
  TaskScheduler a(2), b(2);
  std::atomic<int> count{0};
  a.ParallelFor(16, [&](size_t) {
    b.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16 * 8);
}

// One MemoryTracker shared by many workers: the running total must return
// to zero and the peak must be at least any single worker's footprint and
// at most the theoretical concurrent maximum.
TEST(TaskSchedulerTest, MemoryTrackerIsThreadSafe) {
  TaskScheduler scheduler(4);
  exec::MemoryTracker tracker;
  constexpr uint64_t kPerTask = 1000;
  scheduler.ParallelFor(256, [&](size_t) {
    exec::TrackedMemory mem(&tracker);
    mem.Set(kPerTask);
    mem.Set(kPerTask / 2);
    mem.Clear();
  });
  EXPECT_EQ(tracker.current_bytes(), 0u);
  EXPECT_GE(tracker.peak_bytes(), kPerTask);
  EXPECT_LE(tracker.peak_bytes(), kPerTask * 256);
}

}  // namespace
}  // namespace common
}  // namespace bdcc
