// Partitioned parallel hash-join build vs. the serial build: identical join
// results across every KeyEncoder mode (raw int, dictionary-code string,
// packed pair, packed pair with a string, tagged bytes), NULL keys on both
// sides, producer counts {1, 3}, and clone counts {2, 4}. Suite name
// contains "Parallel" so the CI TSan job picks it up.
#include <memory>
#include <string>
#include <vector>

#include "common/task_scheduler.h"
#include "exec/hash_join.h"
#include "exec/hash_table.h"
#include "exec/parallel.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

// Emits (copies of) prepared batches; clone (i, n) of the factory variant
// emits the strided subset j % n == i, mimicking morsel-restricted scans.
class VectorSource : public Operator {
 public:
  VectorSource(std::shared_ptr<const std::vector<Batch>> batches,
               Schema schema, size_t offset = 0, size_t stride = 1)
      : batches_(std::move(batches)),
        schema_(std::move(schema)),
        offset_(offset),
        stride_(stride) {}

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override {
    cursor_ = offset_;
    return Status::OK();
  }
  Result<Batch> Next(ExecContext* ctx) override {
    if (cursor_ >= batches_->size()) return Batch::Empty();
    Batch out;
    const Batch& src = (*batches_)[cursor_];
    out.num_rows = src.num_rows;
    out.sel = src.sel;
    out.group_id = src.group_id;
    out.columns = src.columns;  // copy; dictionaries stay shared
    cursor_ += stride_;
    return out;
  }

 private:
  std::shared_ptr<const std::vector<Batch>> batches_;
  Schema schema_;
  size_t offset_, stride_, cursor_ = 0;
};

struct TestInput {
  Schema build_schema, probe_schema;
  std::shared_ptr<const std::vector<Batch>> build, probe;
  std::vector<std::string> build_keys, probe_keys;
};

ColumnVector MakeCol(TypeId type, const std::vector<int64_t>& values,
                     const std::vector<uint8_t>& nulls,
                     const std::shared_ptr<Dictionary>& dict = nullptr) {
  ColumnVector c(type);
  c.dict = dict;
  for (int64_t v : values) {
    switch (type) {
      case TypeId::kInt64:
        c.i64.push_back(v);
        break;
      case TypeId::kFloat64:
        c.f64.push_back(static_cast<double>(v) * 1.5);
        break;
      default:
        c.i32.push_back(static_cast<int32_t>(v));
        break;
    }
  }
  c.nulls = nulls;
  return c;
}

// Key columns cycle over a small domain so chains have real duplicates;
// every 11th build key and every 7th probe key is NULL.
TestInput MakeInput(const std::vector<TypeId>& key_types, size_t build_rows,
                    size_t probe_rows, size_t batch_rows) {
  TestInput in;
  auto dict = std::make_shared<Dictionary>();
  for (int i = 0; i < 40; ++i) dict->GetOrAdd("str_" + std::to_string(i));

  std::vector<Field> bf, pf;
  for (size_t k = 0; k < key_types.size(); ++k) {
    bf.push_back(Field{"bk" + std::to_string(k), key_types[k]});
    pf.push_back(Field{"pk" + std::to_string(k), key_types[k]});
    in.build_keys.push_back(bf.back().name);
    in.probe_keys.push_back(pf.back().name);
  }
  bf.push_back(Field{"bpay", TypeId::kInt64});
  pf.push_back(Field{"ppay", TypeId::kInt64});
  in.build_schema = Schema(bf);
  in.probe_schema = Schema(pf);

  auto make_batches = [&](size_t rows, size_t null_every, bool build) {
    auto out = std::make_shared<std::vector<Batch>>();
    for (size_t begin = 0; begin < rows; begin += batch_rows) {
      size_t n = std::min(batch_rows, rows - begin);
      Batch b;
      b.num_rows = n;
      for (size_t k = 0; k < key_types.size(); ++k) {
        std::vector<int64_t> vals;
        std::vector<uint8_t> nulls;
        bool has_null = false;
        for (size_t r = 0; r < n; ++r) {
          size_t global = begin + r;
          // Distinct cycles per key column; strings stay inside the dict.
          int64_t v = static_cast<int64_t>((global * (k + 3)) % 37);
          vals.push_back(v);
          bool is_null = (global + k) % null_every == 0;
          nulls.push_back(is_null ? 1 : 0);
          has_null |= is_null;
        }
        if (!has_null) nulls.clear();
        b.columns.push_back(MakeCol(
            key_types[k], vals, nulls,
            key_types[k] == TypeId::kString ? dict : nullptr));
      }
      std::vector<int64_t> pay;
      for (size_t r = 0; r < n; ++r) {
        pay.push_back(static_cast<int64_t>((begin + r) * (build ? 1 : -1)));
      }
      b.columns.push_back(MakeCol(TypeId::kInt64, pay, {}));
      out->push_back(std::move(b));
    }
    return out;
  };
  in.build = make_batches(build_rows, 11, true);
  in.probe = make_batches(probe_rows, 7, false);
  return in;
}

Batch RunSerial(const TestInput& in, JoinType type) {
  ExecContext ctx(nullptr);
  HashJoin join(
      std::make_unique<VectorSource>(in.probe, in.probe_schema),
      std::make_unique<VectorSource>(in.build, in.build_schema),
      in.probe_keys, in.build_keys, type);
  return CollectAll(&join, &ctx).ValueOrDie();
}

Batch RunPartitioned(const TestInput& in, JoinType type, size_t clones,
                     int bits, common::TaskScheduler* scheduler) {
  ExecContext ctx(nullptr);
  ChainFactory probe_factory = [&in](size_t i,
                                     size_t n) -> Result<OperatorPtr> {
    return OperatorPtr(
        std::make_unique<VectorSource>(in.probe, in.probe_schema, i, n));
  };
  ChainFactory build_factory = [&in](size_t i,
                                     size_t n) -> Result<OperatorPtr> {
    return OperatorPtr(
        std::make_unique<VectorSource>(in.build, in.build_schema, i, n));
  };
  ParallelHashJoin join(probe_factory, clones, nullptr, in.probe_keys,
                        in.build_keys, type, scheduler);
  join.EnableParallelBuild(build_factory, bits);
  return CollectAll(&join, &ctx).ValueOrDie();
}

void CheckAllJoinTypes(const std::vector<TypeId>& key_types,
                       const std::string& label) {
  TestInput in = MakeInput(key_types, 3000, 5000, 256);
  common::TaskScheduler scheduler(3);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    Batch expect = RunSerial(in, type);
    for (size_t clones : {size_t{2}, size_t{4}}) {
      for (int bits : {1, 4}) {
        Batch got = RunPartitioned(in, type, clones, bits, &scheduler);
        testutil::ExpectBatchesEqual(
            expect, got,
            label + " " + JoinTypeName(type) + " clones=" +
                std::to_string(clones) + " bits=" + std::to_string(bits));
      }
    }
  }
}

TEST(ParallelPartitionedBuildTest, IntKeyMatchesSerial) {
  CheckAllJoinTypes({TypeId::kInt32}, "int key");
}

TEST(ParallelPartitionedBuildTest, Int64KeyMatchesSerial) {
  CheckAllJoinTypes({TypeId::kInt64}, "int64 key");
}

TEST(ParallelPartitionedBuildTest, StringKeyMatchesSerial) {
  // kCode mode: encoder is not concurrent-safe, exercising the serial
  // scatter fallback with parallel drain + parallel per-partition insert.
  CheckAllJoinTypes({TypeId::kString}, "string key");
}

TEST(ParallelPartitionedBuildTest, PackedIntPairMatchesSerial) {
  CheckAllJoinTypes({TypeId::kInt32, TypeId::kInt32}, "packed int pair");
}

TEST(ParallelPartitionedBuildTest, PackedStringIntMatchesSerial) {
  CheckAllJoinTypes({TypeId::kString, TypeId::kInt32}, "packed string+int");
}

TEST(ParallelPartitionedBuildTest, ByteKeysMatchSerial) {
  CheckAllJoinTypes({TypeId::kInt32, TypeId::kInt64, TypeId::kString},
                    "tagged byte keys");
}

// Direct JoinHashTable-level equivalence: serial AddBatch vs Scatter/Finish
// with multiple producers, checked per key via ForEachMatch row contents.
TEST(ParallelPartitionedBuildTest, TableLevelChainsEquivalent) {
  TestInput in = MakeInput({TypeId::kInt32}, 2000, 0, 128);
  JoinHashTable serial;
  ASSERT_TRUE(serial.Init(in.build_schema, in.build_keys).ok());
  for (const Batch& b : *in.build) ASSERT_TRUE(serial.AddBatch(b).ok());

  common::TaskScheduler scheduler(2);
  for (size_t producers : {size_t{1}, size_t{3}}) {
    JoinHashTable part;
    ASSERT_TRUE(part.Init(in.build_schema, in.build_keys).ok());
    part.BeginPartitionedBuild(3, producers);
    for (size_t j = 0; j < in.build->size(); ++j) {
      ASSERT_TRUE(part.ScatterBatch(j % producers, (*in.build)[j]).ok());
    }
    ASSERT_TRUE(part.FinishPartitionedBuild(&scheduler).ok());
    EXPECT_EQ(part.num_rows(), serial.num_rows());
    EXPECT_EQ(part.num_partitions(), 8u);
    for (int64_t key = -1; key < 40; ++key) {
      EXPECT_EQ(serial.HasMatch(key), part.HasMatch(key)) << "key " << key;
      std::vector<int64_t> expect_pay, got_pay;
      serial.ForEachMatch(key, [&](BuildRowRef b) {
        expect_pay.push_back((*b.columns)[1].i64[b.row]);
      });
      part.ForEachMatch(key, [&](BuildRowRef b) {
        got_pay.push_back((*b.columns)[1].i64[b.row]);
      });
      std::sort(expect_pay.begin(), expect_pay.end());
      std::sort(got_pay.begin(), got_pay.end());
      EXPECT_EQ(expect_pay, got_pay) << "key " << key;
      // Single producer preserves arrival order exactly, so even the
      // (unsorted) chain orders agree with the serial build.
      if (producers == 1) {
        std::vector<int64_t> ordered;
        part.ForEachMatch(key, [&](BuildRowRef b) {
          ordered.push_back((*b.columns)[1].i64[b.row]);
        });
        std::vector<int64_t> serial_ordered;
        serial.ForEachMatch(key, [&](BuildRowRef b) {
          serial_ordered.push_back((*b.columns)[1].i64[b.row]);
        });
        EXPECT_EQ(ordered, serial_ordered) << "key " << key;
      }
    }
  }
}

// Heterogeneous dictionaries across build batches: the scatter path must
// privatize before interning and the finish path must unify dictionaries
// (serial fallback), with results identical to the serial build.
TEST(ParallelPartitionedBuildTest, MixedDictionariesFallBackSafely) {
  TestInput in = MakeInput({TypeId::kString}, 1500, 2500, 128);
  // Re-dictionary every other build batch: same strings, fresh Dictionary
  // objects with a different code order.
  auto mixed = std::make_shared<std::vector<Batch>>(*in.build);
  for (size_t j = 1; j < mixed->size(); j += 2) {
    Batch& b = (*mixed)[j];
    ColumnVector& key = b.columns[0];
    auto fresh = std::make_shared<Dictionary>();
    for (int i = 39; i >= 0; --i) fresh->GetOrAdd("str_" + std::to_string(i));
    for (int32_t& code : key.i32) {
      code = fresh->Find(key.dict->Get(code));
    }
    key.dict = fresh;
  }
  TestInput mixed_in = in;
  mixed_in.build = mixed;

  common::TaskScheduler scheduler(3);
  Batch expect = RunSerial(mixed_in, JoinType::kInner);
  Batch got = RunPartitioned(mixed_in, JoinType::kInner, 3, 3, &scheduler);
  testutil::ExpectBatchesEqual(expect, got, "mixed dictionaries");
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
