// Null-mask propagation audit: NULLs born in left-outer joins must survive
// Gather/AppendFrom hops, flow through value expressions (arithmetic, CASE,
// YEAR) as NULLs, be skipped by aggregates, and group into a dedicated
// null group when they are the GROUP BY key — through full
// filter -> outer-join -> aggregate chains.
#include <limits>
#include <memory>

#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

// LEFT table: ids 0..9; RIGHT table: even ids only, with a payload.
Table LeftTable() {
  Table t("L");
  Column id(TypeId::kInt32), grp(TypeId::kString);
  for (int i = 0; i < 10; ++i) {
    id.AppendInt32(i);
    grp.AppendString(i < 5 ? "lo" : "hi");
  }
  t.AddColumn("id", std::move(id)).AbortIfNotOK();
  t.AddColumn("grp", std::move(grp)).AbortIfNotOK();
  return t;
}

Table RightTable() {
  Table t("R");
  Column id(TypeId::kInt32), pay(TypeId::kInt64), d(TypeId::kDate);
  for (int i = 0; i < 10; i += 2) {
    id.AppendInt32(i);
    pay.AppendInt64(i * 100);
    d.AppendDate(DaysFromCivil(2000 + i, 1, 1));
  }
  t.AddColumn("rid", std::move(id)).AbortIfNotOK();
  t.AddColumn("pay", std::move(pay)).AbortIfNotOK();
  t.AddColumn("d", std::move(d)).AbortIfNotOK();
  return t;
}

OperatorPtr OuterJoinPlan(const Table& l, const Table& r) {
  auto left = std::make_unique<PlainScan>(
      &l, std::vector<std::string>{"id", "grp"});
  auto right = std::make_unique<PlainScan>(
      &r, std::vector<std::string>{"rid", "pay", "d"});
  return std::make_unique<HashJoin>(std::move(left), std::move(right),
                                    std::vector<std::string>{"id"},
                                    std::vector<std::string>{"rid"},
                                    JoinType::kLeftOuter);
}

TEST(NullPropagationTest, GatherAndAppendPreserveMasks) {
  ColumnVector v(TypeId::kInt64);
  v.i64 = {1, 2, 3};
  v.nulls = {0, 1, 0};
  ColumnVector g = v.Gather({1, 2, 1});
  ASSERT_TRUE(g.HasNulls());
  EXPECT_EQ(g.nulls, (std::vector<uint8_t>{1, 0, 1}));
  ColumnVector a(TypeId::kInt64);
  a.AppendFrom(v, 0);
  a.AppendFrom(v, 1);
  a.AppendFrom(g, 0);
  EXPECT_FALSE(a.IsNull(0));
  EXPECT_TRUE(a.IsNull(1));
  EXPECT_TRUE(a.IsNull(2));
}

TEST(NullPropagationTest, ValueExpressionsPropagateNulls) {
  Table l = LeftTable();
  Table r = RightTable();
  ExecContext ctx(nullptr);
  OperatorPtr join = OuterJoinPlan(l, r);
  std::vector<Project::NamedExpr> exprs;
  exprs.push_back({"id", Col("id")});
  exprs.push_back({"pay2", Mul(Col("pay"), LitI64(2))});
  exprs.push_back({"year", Year(Col("d"))});
  exprs.push_back({"branch", CaseWhen(Lt(Col("id"), Lit(Value::Int32(100))),
                                      Col("pay"), LitI64(-1))});
  exprs.push_back({"fallback", Coalesce(Col("pay"), LitI64(-7))});
  Project project(std::move(join), std::move(exprs));
  Batch out = CollectAll(&project, &ctx).ValueOrDie();
  ASSERT_EQ(out.num_rows, 10u);
  for (size_t i = 0; i < out.num_rows; ++i) {
    bool odd = out.columns[0].i32[i] % 2 != 0;
    // Odd ids had no right match: every derived value must be NULL, and
    // COALESCE must observe the NULL.
    EXPECT_EQ(out.columns[1].IsNull(i), odd) << "pay*2 row " << i;
    EXPECT_EQ(out.columns[2].IsNull(i), odd) << "YEAR row " << i;
    EXPECT_EQ(out.columns[3].IsNull(i), odd) << "CASE row " << i;
    EXPECT_FALSE(out.columns[4].IsNull(i));
    if (odd) {
      EXPECT_EQ(out.columns[4].i64[i], -7);
    } else {
      EXPECT_EQ(out.columns[4].i64[i], out.columns[0].i32[i] * 100);
    }
  }
}

TEST(NullPropagationTest, AggregatesSkipDerivedNulls) {
  Table l = LeftTable();
  Table r = RightTable();
  ExecContext ctx(nullptr);
  OperatorPtr join = OuterJoinPlan(l, r);
  // SUM/COUNT/AVG/MIN/MAX over pay*2: only matched (even) rows count. With
  // the old mask-dropping arithmetic, unmatched rows contributed zeros to
  // the count.
  HashAgg agg(std::move(join), {"grp"},
              {AggSum(Mul(Col("pay"), LitI64(2)), "s"),
               AggCount(Mul(Col("pay"), LitI64(2)), "c"),
               AggCountStar("n"), AggMin(Col("pay"), "mn"),
               AggMax(Col("pay"), "mx")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  ASSERT_EQ(out.num_rows, 2u);
  for (size_t i = 0; i < out.num_rows; ++i) {
    bool lo = out.columns[0].GetString(i) == "lo";
    // lo: ids 0..4, matched 0,2,4 -> sum 2*(0+200+400)=1200, count 3.
    // hi: ids 5..9, matched 6,8 -> sum 2*(600+800)=2800, count 2.
    EXPECT_EQ(out.columns[1].i64[i], lo ? 1200 : 2800);
    EXPECT_EQ(out.columns[2].i64[i], lo ? 3 : 2);
    EXPECT_EQ(out.columns[3].i64[i], 5);  // COUNT(*) keeps outer rows
    EXPECT_EQ(out.columns[4].i64[i], lo ? 0 : 600);
    EXPECT_EQ(out.columns[5].i64[i], lo ? 400 : 800);
  }
}

TEST(NullPropagationTest, NullKeysFormTheirOwnGroup) {
  Table l = LeftTable();
  Table r = RightTable();
  // GROUP BY the (nullable) right payload after a left-outer join: the 5
  // unmatched rows must form ONE null group — not merge into the pay=0
  // group (the old behaviour of the int fast path).
  ExecContext ctx(nullptr);
  OperatorPtr join = OuterJoinPlan(l, r);
  HashAgg agg(std::move(join), {"pay"}, {AggCountStar("n")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  // Groups: pay 0,200,400,600,800 (1 row each) + NULL (5 rows).
  ASSERT_EQ(out.num_rows, 6u);
  int64_t null_count = 0, zero_count = 0;
  for (size_t i = 0; i < out.num_rows; ++i) {
    if (out.columns[0].IsNull(i)) {
      null_count = out.columns[1].i64[i];
    } else if (out.columns[0].i64[i] == 0) {
      zero_count = out.columns[1].i64[i];
    }
  }
  EXPECT_EQ(null_count, 5);
  EXPECT_EQ(zero_count, 1);
}

TEST(NullPropagationTest, FilterOuterJoinAggChainWithSel) {
  Table l = LeftTable();
  Table r = RightTable();
  // filter (id >= 2, via scan pushdown w/ selection vectors)
  //   -> left outer join -> aggregate; sel and compact modes must agree.
  auto run = [&](bool sel_enabled) {
    ExecContext ctx(nullptr);
    ctx.set_sel_enabled(sel_enabled);
    auto left = std::make_unique<PlainScan>(
        &l, std::vector<std::string>{"id", "grp"},
        std::vector<ScanPredicate>{
            {"id", ValueRange{Value::Int32(2), std::nullopt}}});
    left->EnableRowFilter(true);
    auto right = std::make_unique<PlainScan>(
        &r, std::vector<std::string>{"rid", "pay", "d"});
    auto join = std::make_unique<HashJoin>(
        std::move(left), std::move(right), std::vector<std::string>{"id"},
        std::vector<std::string>{"rid"}, JoinType::kLeftOuter);
    HashAgg agg(std::move(join), {"grp"},
                {AggSum(Col("pay"), "s"), AggCount(Col("pay"), "c"),
                 AggCountStar("n")});
    return CollectAll(&agg, &ctx).ValueOrDie();
  };
  Batch a = run(true);
  Batch b = run(false);
  ASSERT_EQ(a.num_rows, 2u);
  testutil::ExpectBatchesEqual(a, b, "null chain sel-vs-compact");
  for (size_t i = 0; i < a.num_rows; ++i) {
    bool lo = a.columns[0].GetString(i) == "lo";
    // lo now ids 2..4 (matched 2,4): sum 600, count 2, rows 3.
    // hi ids 5..9 (matched 6,8): sum 1400, count 2, rows 5.
    EXPECT_EQ(a.columns[1].i64[i], lo ? 600 : 1400);
    EXPECT_EQ(a.columns[2].i64[i], 2);
    EXPECT_EQ(a.columns[3].i64[i], lo ? 3 : 5);
  }
}

TEST(NullPropagationTest, PackedNullTuplesStayDistinctGroups) {
  Table l = LeftTable();
  Table r = RightTable();
  // GROUP BY (grp, pay): packed two-column keys where pay is NULL for
  // unmatched rows. ("lo", NULL) and ("hi", NULL) must stay separate
  // groups, distinct from any non-null pay group.
  ExecContext ctx(nullptr);
  OperatorPtr join = OuterJoinPlan(l, r);
  HashAgg agg(std::move(join), {"grp", "pay"}, {AggCountStar("n")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  // lo: pays {0,200,400} + NULL x2; hi: pays {600,800} + NULL x3.
  ASSERT_EQ(out.num_rows, 7u);
  int64_t lo_null = -1, hi_null = -1;
  for (size_t i = 0; i < out.num_rows; ++i) {
    if (!out.columns[1].IsNull(i)) {
      EXPECT_EQ(out.columns[2].i64[i], 1);
      continue;
    }
    if (out.columns[0].GetString(i) == "lo") {
      lo_null = out.columns[2].i64[i];
    } else {
      hi_null = out.columns[2].i64[i];
    }
  }
  EXPECT_EQ(lo_null, 2);
  EXPECT_EQ(hi_null, 3);
}

TEST(NullPropagationTest, ScanPushdownOutOfRangeBoundMatchesNothing) {
  // A pushed-down bound outside the int32 domain must not clamp into it
  // and admit the boundary value.
  Table t("B");
  Column c(TypeId::kInt32);
  c.AppendInt32(std::numeric_limits<int32_t>::max());
  c.AppendInt32(std::numeric_limits<int32_t>::min());
  c.AppendInt32(0);
  t.AddColumn("x", std::move(c)).AbortIfNotOK();
  ExecContext ctx(nullptr);
  PlainScan scan(&t, {"x"},
                 {{"x", ValueRange{Value::Int64(3000000000LL), std::nullopt}}});
  scan.EnableRowFilter(true);
  Batch out = CollectAll(&scan, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 0u);

  ExecContext ctx2(nullptr);
  PlainScan scan2(&t, {"x"},
                  {{"x", ValueRange{std::nullopt, Value::Int64(-3000000000LL)}}});
  scan2.EnableRowFilter(true);
  Batch out2 = CollectAll(&scan2, &ctx2).ValueOrDie();
  EXPECT_EQ(out2.num_rows, 0u);
}

TEST(NullPropagationTest, PredicatesTreatNullAsFalse) {
  Table l = LeftTable();
  Table r = RightTable();
  ExecContext ctx(nullptr);
  // WHERE pay >= 0 after the outer join keeps only matched rows; NOT and
  // IN over NULL inputs must not resurrect them.
  OperatorPtr join = OuterJoinPlan(l, r);
  Filter filter(std::move(join), Ge(Col("pay"), LitI64(0)));
  Batch out = CollectAll(&filter, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 5u);

  ExecContext ctx2(nullptr);
  OperatorPtr join2 = OuterJoinPlan(l, r);
  Filter filter2(std::move(join2), InInts(Col("pay"), {0, 200, 999}));
  Batch out2 = CollectAll(&filter2, &ctx2).ValueOrDie();
  EXPECT_EQ(out2.num_rows, 2u);

  ExecContext ctx3(nullptr);
  OperatorPtr join3 = OuterJoinPlan(l, r);
  Filter filter3(std::move(join3), IsNull(Col("pay")));
  Batch out3 = CollectAll(&filter3, &ctx3).ValueOrDie();
  EXPECT_EQ(out3.num_rows, 5u);
}

TEST(NullPropagationTest, NotOverNullPredicateStaysUnknown) {
  // SQL three-valued logic: NOT(UNKNOWN) is UNKNOWN, so NOT(pay = 0) must
  // reject NULL-pay rows exactly like pay <> 0 does — NOT must not turn
  // the null-as-false fold into null-as-true.
  Table l = LeftTable();
  Table r = RightTable();
  ExecContext ctx(nullptr);
  OperatorPtr join = OuterJoinPlan(l, r);
  Filter negated_eq(std::move(join), Not(Eq(Col("pay"), LitI64(0))));
  Batch out = CollectAll(&negated_eq, &ctx).ValueOrDie();

  ExecContext ctx2(nullptr);
  OperatorPtr join2 = OuterJoinPlan(l, r);
  Filter ne(std::move(join2), Ne(Col("pay"), LitI64(0)));
  Batch out2 = CollectAll(&ne, &ctx2).ValueOrDie();
  EXPECT_EQ(out.num_rows, out2.num_rows);
  EXPECT_EQ(out.num_rows, 4u);  // matched rows with pay != 0 only

  // NOT IN: NULL IN (...) is UNKNOWN, so NOT(IN) drops NULL rows too.
  ExecContext ctx3(nullptr);
  OperatorPtr join3 = OuterJoinPlan(l, r);
  Filter not_in(std::move(join3), Not(InInts(Col("pay"), {0, 200})));
  Batch out3 = CollectAll(&not_in, &ctx3).ValueOrDie();
  EXPECT_EQ(out3.num_rows, 3u);  // pay in {400, 600, 800}

  // Connectives: TRUE OR UNKNOWN keeps the row, AND with UNKNOWN drops it,
  // and NOT over the OR result stays UNKNOWN for NULL rows.
  ExecContext ctx4(nullptr);
  OperatorPtr join4 = OuterJoinPlan(l, r);
  Filter or_true(std::move(join4),
                 Or(Ge(Col("id"), LitI64(0)), Eq(Col("pay"), LitI64(0))));
  Batch out4 = CollectAll(&or_true, &ctx4).ValueOrDie();
  EXPECT_EQ(out4.num_rows, 10u);  // id >= 0 is TRUE for every row

  ExecContext ctx5(nullptr);
  OperatorPtr join5 = OuterJoinPlan(l, r);
  Filter not_or(std::move(join5),
                Not(Or(Eq(Col("pay"), LitI64(0)), Eq(Col("pay"), LitI64(200)))));
  Batch out5 = CollectAll(&not_or, &ctx5).ValueOrDie();
  EXPECT_EQ(out5.num_rows, 3u);  // pay in {400, 600, 800}; NULLs stay out
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
