// Hash, merge, and sandwich join tests, including the key equivalence
// property: all join strategies produce the same result multiset.
#include <numeric>

#include "common/rng.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/sandwich_join.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

// Operator feeding pre-built batches.
class VectorSource : public Operator {
 public:
  VectorSource(Schema schema, std::vector<Batch> batches)
      : schema_(std::move(schema)), batches_(std::move(batches)) {}

  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext*) override {
    at_ = 0;
    return Status::OK();
  }
  Result<Batch> Next(ExecContext*) override {
    if (at_ >= batches_.size()) return Batch::Empty();
    Batch out;
    const Batch& src = batches_[at_++];
    out.num_rows = src.num_rows;
    out.group_id = src.group_id;
    out.columns = src.columns;  // copy
    return out;
  }

 private:
  Schema schema_;
  std::vector<Batch> batches_;
  size_t at_ = 0;
};

Batch RowsBatch(std::vector<int32_t> keys, std::vector<int64_t> payloads,
                int64_t group_id = -1) {
  Batch b;
  ColumnVector k(TypeId::kInt32), p(TypeId::kInt64);
  k.i32 = std::move(keys);
  p.i64 = std::move(payloads);
  b.num_rows = k.i32.size();
  b.columns = {std::move(k), std::move(p)};
  b.group_id = group_id;
  return b;
}

Schema LeftSchema() {
  return Schema({{"lk", TypeId::kInt32}, {"lp", TypeId::kInt64}});
}
Schema RightSchema() {
  return Schema({{"rk", TypeId::kInt32}, {"rp", TypeId::kInt64}});
}

OperatorPtr Left(std::vector<Batch> b) {
  return std::make_unique<VectorSource>(LeftSchema(), std::move(b));
}
OperatorPtr Right(std::vector<Batch> b) {
  return std::make_unique<VectorSource>(RightSchema(), std::move(b));
}

TEST(HashJoinTest, Inner) {
  ExecContext ctx(nullptr);
  HashJoin join(Left({RowsBatch({1, 2, 3, 2}, {10, 20, 30, 21})}),
                Right({RowsBatch({2, 4, 2}, {200, 400, 201})}), {"lk"},
                {"rk"}, JoinType::kInner);
  Batch out = CollectAll(&join, &ctx).ValueOrDie();
  // Left rows with key 2 match two build rows each -> 4 results.
  EXPECT_EQ(out.num_rows, 4u);
  ASSERT_EQ(out.columns.size(), 4u);
  for (size_t r = 0; r < out.num_rows; ++r) {
    EXPECT_EQ(out.columns[0].i32[r], out.columns[2].i32[r]);
  }
}

TEST(HashJoinTest, LeftOuterProducesNulls) {
  ExecContext ctx(nullptr);
  HashJoin join(Left({RowsBatch({1, 2}, {10, 20})}),
                Right({RowsBatch({2}, {200})}), {"lk"}, {"rk"},
                JoinType::kLeftOuter);
  Batch out = CollectAll(&join, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 2u);
  int null_rows = 0;
  for (size_t r = 0; r < out.num_rows; ++r) {
    if (out.columns[2].IsNull(r)) {
      ++null_rows;
      EXPECT_EQ(out.columns[0].i32[r], 1);
    }
  }
  EXPECT_EQ(null_rows, 1);
}

TEST(HashJoinTest, SemiAndAnti) {
  ExecContext ctx(nullptr);
  HashJoin semi(Left({RowsBatch({1, 2, 3}, {10, 20, 30})}),
                Right({RowsBatch({2, 2, 5}, {0, 0, 0})}), {"lk"}, {"rk"},
                JoinType::kLeftSemi);
  Batch s = CollectAll(&semi, &ctx).ValueOrDie();
  ASSERT_EQ(s.num_rows, 1u);  // key 2 once, despite two matches
  EXPECT_EQ(s.columns[0].i32[0], 2);
  EXPECT_EQ(s.columns.size(), 2u);  // left columns only

  HashJoin anti(Left({RowsBatch({1, 2, 3}, {10, 20, 30})}),
                Right({RowsBatch({2}, {0})}), {"lk"}, {"rk"},
                JoinType::kLeftAnti);
  Batch a = CollectAll(&anti, &ctx).ValueOrDie();
  EXPECT_EQ(a.num_rows, 2u);
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Batch left = RowsBatch({1, 2}, {10, 20});
  left.columns[0].nulls = {0, 1};
  Batch right = RowsBatch({2, 1}, {200, 100});
  right.columns[0].nulls = {1, 0};
  ExecContext ctx(nullptr);
  HashJoin join(Left({left}), Right({right}), {"lk"}, {"rk"},
                JoinType::kInner);
  Batch out = CollectAll(&join, &ctx).ValueOrDie();
  ASSERT_EQ(out.num_rows, 1u);
  EXPECT_EQ(out.columns[0].i32[0], 1);
}

TEST(HashJoinTest, TracksBuildMemory) {
  ExecContext ctx(nullptr);
  std::vector<int32_t> keys(5000);
  std::vector<int64_t> vals(5000);
  std::iota(keys.begin(), keys.end(), 0);
  HashJoin join(Left({RowsBatch({1}, {1})}),
                Right({RowsBatch(keys, vals)}), {"lk"}, {"rk"},
                JoinType::kInner);
  (void)CollectAll(&join, &ctx).ValueOrDie();
  // Build side ~5000 rows * 12B plus table overhead; peak reflects it.
  EXPECT_GT(ctx.memory()->peak_bytes(), 50000u);
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);  // released on Close
}

TEST(MergeJoinTest, InnerWithDuplicateProbe) {
  ExecContext ctx(nullptr);
  MergeJoin join(Left({RowsBatch({1, 1, 2, 5, 5, 9}, {0, 1, 2, 3, 4, 5})}),
                 Right({RowsBatch({1, 2, 3, 5}, {100, 200, 300, 500})}),
                 "lk", "rk");
  Batch out = CollectAll(&join, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 5u);  // 1,1,2,5,5 match; 9 has no partner
  for (size_t r = 0; r < out.num_rows; ++r) {
    EXPECT_EQ(out.columns[0].i32[r], out.columns[2].i32[r]);
    EXPECT_EQ(out.columns[3].i64[r], out.columns[0].i32[r] * 100);
  }
}

TEST(MergeJoinTest, BatchBoundaries) {
  // Runs span batch boundaries on both sides.
  ExecContext ctx(nullptr);
  MergeJoin join(
      Left({RowsBatch({1, 3}, {0, 1}), RowsBatch({3, 7}, {2, 3})}),
      Right({RowsBatch({1, 2}, {10, 20}), RowsBatch({3, 7}, {30, 70})}),
      "lk", "rk");
  Batch out = CollectAll(&join, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 4u);
}

TEST(SandwichJoinTest, AlignedGroups) {
  ExecContext ctx(nullptr);
  SandwichHashJoin join(
      Left({RowsBatch({1, 2}, {10, 20}, 0), RowsBatch({5}, {50}, 2)}),
      Right({RowsBatch({2, 1}, {200, 100}, 0), RowsBatch({5, 6}, {500, 600}, 2)}),
      {"lk"}, {"rk"}, JoinType::kInner);
  Batch out = CollectAll(&join, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 3u);
}

TEST(SandwichJoinTest, MissingGroupsEitherSide) {
  ExecContext ctx(nullptr);
  // Left group 1 has no right partner; right group 3 has no left partner.
  SandwichHashJoin join(
      Left({RowsBatch({1}, {10}, 0), RowsBatch({2}, {20}, 1)}),
      Right({RowsBatch({1}, {100}, 0), RowsBatch({9}, {900}, 3)}), {"lk"},
      {"rk"}, JoinType::kInner);
  Batch out = CollectAll(&join, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 1u);
  EXPECT_EQ(out.columns[0].i32[0], 1);
}

TEST(SandwichJoinTest, AntiEmitsUnmatchedGroups) {
  ExecContext ctx(nullptr);
  SandwichHashJoin join(
      Left({RowsBatch({1}, {10}, 0), RowsBatch({2}, {20}, 1)}),
      Right({RowsBatch({1}, {100}, 0)}), {"lk"}, {"rk"},
      JoinType::kLeftAnti);
  Batch out = CollectAll(&join, &ctx).ValueOrDie();
  ASSERT_EQ(out.num_rows, 1u);
  EXPECT_EQ(out.columns[0].i32[0], 2);
}

TEST(SandwichJoinTest, LeftOuterAcrossGroups) {
  ExecContext ctx(nullptr);
  SandwichHashJoin join(
      Left({RowsBatch({1, 2}, {10, 20}, 0), RowsBatch({7}, {70}, 5)}),
      Right({RowsBatch({2}, {200}, 0)}), {"lk"}, {"rk"},
      JoinType::kLeftOuter);
  Batch out = CollectAll(&join, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 3u);
  int nulls = 0;
  for (size_t r = 0; r < out.num_rows; ++r) {
    if (out.columns[2].IsNull(r)) ++nulls;
  }
  EXPECT_EQ(nulls, 2);  // key 1 (group present) and key 7 (group absent)
}

TEST(SandwichJoinTest, RejectsUntaggedInput) {
  ExecContext ctx(nullptr);
  SandwichHashJoin join(Left({RowsBatch({1}, {10})}),
                        Right({RowsBatch({1}, {100}, 0)}), {"lk"}, {"rk"},
                        JoinType::kInner);
  ASSERT_TRUE(join.Open(&ctx).ok());
  auto result = join.Next(&ctx);
  EXPECT_FALSE(result.ok());
}

TEST(SandwichJoinTest, MemoryPeaksAtLargestGroup) {
  // 4 groups of build rows; sandwich peak ~ one group, hash join ~ all.
  std::vector<Batch> build_batches, probe_batches;
  for (int g = 0; g < 4; ++g) {
    std::vector<int32_t> keys(1000);
    std::vector<int64_t> vals(1000);
    std::iota(keys.begin(), keys.end(), g * 1000);
    build_batches.push_back(RowsBatch(keys, vals, g));
    probe_batches.push_back(RowsBatch({g * 1000 + 5}, {1}, g));
  }
  uint64_t sandwich_peak, hash_peak;
  {
    ExecContext ctx(nullptr);
    SandwichHashJoin join(Left(probe_batches), Right(build_batches), {"lk"},
                          {"rk"}, JoinType::kInner);
    Batch out = CollectAll(&join, &ctx).ValueOrDie();
    EXPECT_EQ(out.num_rows, 4u);
    sandwich_peak = ctx.memory()->peak_bytes();
  }
  {
    ExecContext ctx(nullptr);
    HashJoin join(Left(probe_batches), Right(build_batches), {"lk"}, {"rk"},
                  JoinType::kInner);
    Batch out = CollectAll(&join, &ctx).ValueOrDie();
    EXPECT_EQ(out.num_rows, 4u);
    hash_peak = ctx.memory()->peak_bytes();
  }
  EXPECT_LT(sandwich_peak * 2, hash_peak)
      << "sandwich=" << sandwich_peak << " hash=" << hash_peak;
}

TEST(JoinEquivalenceTest, SandwichMatchesHashJoinProperty) {
  // Random co-grouped data: results must agree across strategies.
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Batch> lbatches, rbatches;
    for (int g = 0; g < 8; ++g) {
      std::vector<int32_t> lk, rk;
      std::vector<int64_t> lp, rp;
      int ln = static_cast<int>(rng.Uniform(0, 20));
      int rn = static_cast<int>(rng.Uniform(0, 20));
      for (int i = 0; i < ln; ++i) {
        lk.push_back(static_cast<int32_t>(g * 100 + rng.Uniform(0, 9)));
        lp.push_back(rng.Uniform(0, 1000));
      }
      for (int i = 0; i < rn; ++i) {
        rk.push_back(static_cast<int32_t>(g * 100 + rng.Uniform(0, 9)));
        rp.push_back(rng.Uniform(0, 1000));
      }
      if (ln) lbatches.push_back(RowsBatch(lk, lp, g));
      if (rn) rbatches.push_back(RowsBatch(rk, rp, g));
    }
    for (JoinType type : {JoinType::kInner, JoinType::kLeftSemi,
                          JoinType::kLeftAnti, JoinType::kLeftOuter}) {
      ExecContext ctx(nullptr);
      SandwichHashJoin sj(Left(lbatches), Right(rbatches), {"lk"}, {"rk"},
                          type);
      Batch a = CollectAll(&sj, &ctx).ValueOrDie();
      HashJoin hj(Left(lbatches), Right(rbatches), {"lk"}, {"rk"}, type);
      Batch b = CollectAll(&hj, &ctx).ValueOrDie();
      testutil::ExpectBatchesEqual(a, b,
                                   std::string("trial ") +
                                       std::to_string(trial) + " " +
                                       JoinTypeName(type));
    }
  }
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
