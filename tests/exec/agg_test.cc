// Aggregation tests: every aggregate kind, plus the equivalence property
// that hash, streaming (sorted input), and sandwich (grouped input)
// aggregation agree.
#include <numeric>

#include "common/rng.h"
#include "exec/hash_agg.h"
#include "exec/sandwich_agg.h"
#include "exec/stream_agg.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

class VectorSource : public Operator {
 public:
  VectorSource(Schema schema, std::vector<Batch> batches)
      : schema_(std::move(schema)), batches_(std::move(batches)) {}
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext*) override {
    at_ = 0;
    return Status::OK();
  }
  Result<Batch> Next(ExecContext*) override {
    if (at_ >= batches_.size()) return Batch::Empty();
    Batch out;
    const Batch& src = batches_[at_++];
    out.num_rows = src.num_rows;
    out.group_id = src.group_id;
    out.columns = src.columns;
    return out;
  }

 private:
  Schema schema_;
  std::vector<Batch> batches_;
  size_t at_ = 0;
};

Schema S() {
  return Schema({{"k", TypeId::kInt32}, {"v", TypeId::kFloat64}});
}

Batch B(std::vector<int32_t> keys, std::vector<double> vals,
        int64_t gid = -1) {
  Batch b;
  ColumnVector k(TypeId::kInt32), v(TypeId::kFloat64);
  k.i32 = std::move(keys);
  v.f64 = std::move(vals);
  b.num_rows = k.i32.size();
  b.columns = {std::move(k), std::move(v)};
  b.group_id = gid;
  return b;
}

OperatorPtr Src(std::vector<Batch> b) {
  return std::make_unique<VectorSource>(S(), std::move(b));
}

std::vector<AggSpec> AllSpecs() {
  return {AggSum(Col("v"), "s"),       AggCount(Col("v"), "c"),
          AggCountStar("cs"),          AggAvg(Col("v"), "a"),
          AggMin(Col("v"), "mn"),      AggMax(Col("v"), "mx"),
          AggCountDistinct(Col("k"), "cd")};
}

TEST(HashAggTest, AllKindsSingleGroup) {
  ExecContext ctx(nullptr);
  HashAgg agg(Src({B({1, 1, 1}, {2.0, 4.0, 6.0})}), {"k"}, AllSpecs());
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  ASSERT_EQ(out.num_rows, 1u);
  EXPECT_DOUBLE_EQ(out.columns[1].f64[0], 12.0);  // sum
  EXPECT_EQ(out.columns[2].i64[0], 3);            // count
  EXPECT_EQ(out.columns[3].i64[0], 3);            // count(*)
  EXPECT_DOUBLE_EQ(out.columns[4].f64[0], 4.0);   // avg
  EXPECT_DOUBLE_EQ(out.columns[5].f64[0], 2.0);   // min
  EXPECT_DOUBLE_EQ(out.columns[6].f64[0], 6.0);   // max
  EXPECT_EQ(out.columns[7].i64[0], 1);            // distinct k
}

TEST(HashAggTest, ScalarAggregateOnEmptyInputEmitsOneRow) {
  ExecContext ctx(nullptr);
  HashAgg agg(Src({}), {}, {AggSum(Col("v"), "s"), AggCountStar("c")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  ASSERT_EQ(out.num_rows, 1u);
  EXPECT_DOUBLE_EQ(out.columns[0].f64[0], 0.0);
  EXPECT_EQ(out.columns[1].i64[0], 0);
}

TEST(HashAggTest, GroupedAggregateOnEmptyInputEmitsNoRows) {
  ExecContext ctx(nullptr);
  HashAgg agg(Src({}), {"k"}, {AggCountStar("c")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 0u);
}

TEST(HashAggTest, NullsSkipped) {
  Batch b = B({1, 1, 1}, {1.0, 2.0, 3.0});
  b.columns[1].nulls = {0, 1, 0};
  ExecContext ctx(nullptr);
  HashAgg agg(Src({b}), {"k"},
              {AggSum(Col("v"), "s"), AggCount(Col("v"), "c"),
               AggCountStar("cs"), AggAvg(Col("v"), "a")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.columns[1].f64[0], 4.0);
  EXPECT_EQ(out.columns[2].i64[0], 2);
  EXPECT_EQ(out.columns[3].i64[0], 3);
  EXPECT_DOUBLE_EQ(out.columns[4].f64[0], 2.0);
}

TEST(HashAggTest, CountDistinct) {
  ExecContext ctx(nullptr);
  HashAgg agg(Src({B({1, 1, 2, 2, 2}, {5, 5, 7, 8, 7})}), {},
              {AggCountDistinct(Col("k"), "cd")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  EXPECT_EQ(out.columns[0].i64[0], 2);
}

TEST(StreamAggTest, SortedRunsAcrossBatches) {
  ExecContext ctx(nullptr);
  StreamAgg agg(Src({B({1, 1, 2}, {1, 2, 3}), B({2, 2}, {4, 5}),
                     B({3}, {6})}),
                {"k"}, {AggSum(Col("v"), "s"), AggCountStar("c")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  ASSERT_EQ(out.num_rows, 3u);
  EXPECT_EQ(out.columns[0].i32[0], 1);
  EXPECT_DOUBLE_EQ(out.columns[1].f64[0], 3.0);
  EXPECT_EQ(out.columns[2].i64[1], 3);  // key 2 spans batches: 3 rows
  EXPECT_DOUBLE_EQ(out.columns[1].f64[2], 6.0);
}

TEST(StreamAggTest, SingleRowGroups) {
  ExecContext ctx(nullptr);
  StreamAgg agg(Src({B({1, 2, 3, 4}, {1, 2, 3, 4})}), {"k"},
                {AggSum(Col("v"), "s")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  ASSERT_EQ(out.num_rows, 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out.columns[0].i32[i], i + 1);
    EXPECT_DOUBLE_EQ(out.columns[1].f64[i], i + 1.0);
  }
}

TEST(SandwichAggTest, FlushesPerPartition) {
  ExecContext ctx(nullptr);
  SandwichAgg agg(Src({B({1, 2}, {1, 2}, 0), B({1}, {5}, 0),
                       B({1, 3}, {7, 9}, 4)}),
                  {"k"}, {AggSum(Col("v"), "s")});
  Batch out = CollectAll(&agg, &ctx).ValueOrDie();
  // Partition 0: keys 1 (sum 6), 2 (sum 2); partition 4: keys 1 (7), 3 (9).
  ASSERT_EQ(out.num_rows, 4u);
  EXPECT_EQ(ctx.stats()->sandwich_partitions, 2u);
  double total = 0;
  for (size_t r = 0; r < out.num_rows; ++r) total += out.columns[1].f64[r];
  EXPECT_DOUBLE_EQ(total, 24.0);
}

TEST(SandwichAggTest, RejectsUntaggedInput) {
  ExecContext ctx(nullptr);
  SandwichAgg agg(Src({B({1}, {1})}), {"k"}, {AggSum(Col("v"), "s")});
  ASSERT_TRUE(agg.Open(&ctx).ok());
  EXPECT_FALSE(agg.Next(&ctx).ok());
}

TEST(AggEquivalenceTest, StrategiesAgreeProperty) {
  Rng rng(55);
  for (int trial = 0; trial < 8; ++trial) {
    // Keys ascending (valid for StreamAgg), grouped by key/8 (valid for
    // SandwichAgg since a key never spans partitions).
    std::vector<Batch> sorted_batches, grouped_batches, shuffled_batches;
    std::vector<std::pair<int32_t, double>> rows;
    int n = 50 + static_cast<int>(rng.Uniform(0, 200));
    for (int i = 0; i < n; ++i) {
      rows.push_back({static_cast<int32_t>(rng.Uniform(0, 63)),
                      static_cast<double>(rng.Uniform(-50, 50))});
    }
    std::sort(rows.begin(), rows.end());
    // Sorted batches (random cut points).
    for (size_t at = 0; at < rows.size();) {
      size_t end = std::min(rows.size(), at + 1 + rng.Next64() % 40);
      std::vector<int32_t> k;
      std::vector<double> v;
      for (size_t i = at; i < end; ++i) {
        k.push_back(rows[i].first);
        v.push_back(rows[i].second);
      }
      sorted_batches.push_back(B(k, v));
      at = end;
    }
    // Grouped batches: partition = key >> 3, cut at partition boundaries.
    for (size_t at = 0; at < rows.size();) {
      int64_t part = rows[at].first >> 3;
      size_t end = at;
      while (end < rows.size() && (rows[end].first >> 3) == part) ++end;
      std::vector<int32_t> k;
      std::vector<double> v;
      for (size_t i = at; i < end; ++i) {
        k.push_back(rows[i].first);
        v.push_back(rows[i].second);
      }
      grouped_batches.push_back(B(k, v, part));
      at = end;
    }
    shuffled_batches = sorted_batches;  // hash agg order-insensitive anyway

    std::vector<AggSpec> specs = AllSpecs();
    ExecContext ctx(nullptr);
    HashAgg hash(Src(shuffled_batches), {"k"}, specs);
    Batch a = CollectAll(&hash, &ctx).ValueOrDie();
    StreamAgg stream(Src(sorted_batches), {"k"}, AllSpecs());
    Batch b = CollectAll(&stream, &ctx).ValueOrDie();
    SandwichAgg sandwich(Src(grouped_batches), {"k"}, AllSpecs());
    Batch c = CollectAll(&sandwich, &ctx).ValueOrDie();
    testutil::ExpectBatchesEqual(a, b, "hash-vs-stream t" +
                                           std::to_string(trial));
    testutil::ExpectBatchesEqual(a, c, "hash-vs-sandwich t" +
                                           std::to_string(trial));
  }
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
