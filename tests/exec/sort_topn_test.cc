#include <numeric>

#include "common/rng.h"
#include "exec/sort.h"
#include "exec/topn.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

class VectorSource : public Operator {
 public:
  VectorSource(Schema schema, std::vector<Batch> batches)
      : schema_(std::move(schema)), batches_(std::move(batches)) {}
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext*) override {
    at_ = 0;
    return Status::OK();
  }
  Result<Batch> Next(ExecContext*) override {
    if (at_ >= batches_.size()) return Batch::Empty();
    Batch out;
    const Batch& src = batches_[at_++];
    out.num_rows = src.num_rows;
    out.columns = src.columns;
    return out;
  }

 private:
  Schema schema_;
  std::vector<Batch> batches_;
  size_t at_ = 0;
};

Schema S() {
  return Schema({{"k", TypeId::kInt32}, {"v", TypeId::kFloat64}});
}

Batch B(std::vector<int32_t> keys, std::vector<double> vals) {
  Batch b;
  ColumnVector k(TypeId::kInt32), v(TypeId::kFloat64);
  k.i32 = std::move(keys);
  v.f64 = std::move(vals);
  b.num_rows = k.i32.size();
  b.columns = {std::move(k), std::move(v)};
  return b;
}

TEST(SortTest, AscendingAndDescending) {
  ExecContext ctx(nullptr);
  Sort sort(std::make_unique<VectorSource>(
                S(), std::vector<Batch>{B({3, 1, 2}, {0.3, 0.1, 0.2})}),
            {SortKey{"k", false}});
  Batch out = CollectAll(&sort, &ctx).ValueOrDie();
  EXPECT_EQ(out.columns[0].i32[0], 1);
  EXPECT_EQ(out.columns[0].i32[2], 3);

  Sort desc(std::make_unique<VectorSource>(
                S(), std::vector<Batch>{B({3, 1, 2}, {0.3, 0.1, 0.2})}),
            {SortKey{"v", true}});
  Batch out2 = CollectAll(&desc, &ctx).ValueOrDie();
  EXPECT_DOUBLE_EQ(out2.columns[1].f64[0], 0.3);
}

TEST(SortTest, MultiKeyWithTies) {
  ExecContext ctx(nullptr);
  Sort sort(std::make_unique<VectorSource>(
                S(), std::vector<Batch>{B({2, 1, 2, 1}, {5, 6, 3, 4})}),
            {SortKey{"k", false}, SortKey{"v", true}});
  Batch out = CollectAll(&sort, &ctx).ValueOrDie();
  EXPECT_EQ(out.columns[0].i32[0], 1);
  EXPECT_DOUBLE_EQ(out.columns[1].f64[0], 6.0);
  EXPECT_DOUBLE_EQ(out.columns[1].f64[1], 4.0);
  EXPECT_DOUBLE_EQ(out.columns[1].f64[2], 5.0);
}

TEST(SortTest, LimitTruncates) {
  ExecContext ctx(nullptr);
  Sort sort(std::make_unique<VectorSource>(
                S(), std::vector<Batch>{B({5, 4, 3, 2, 1}, {5, 4, 3, 2, 1})}),
            {SortKey{"k", false}}, 2);
  Batch out = CollectAll(&sort, &ctx).ValueOrDie();
  ASSERT_EQ(out.num_rows, 2u);
  EXPECT_EQ(out.columns[0].i32[1], 2);
}

TEST(LimitTest, CutsMidBatch) {
  ExecContext ctx(nullptr);
  Limit limit(std::make_unique<VectorSource>(
                  S(), std::vector<Batch>{B({1, 2, 3}, {1, 2, 3}),
                                          B({4, 5}, {4, 5})}),
              4);
  Batch out = CollectAll(&limit, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 4u);
}

TEST(TopNTest, MatchesSortPlusLimitProperty) {
  Rng rng(91);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Batch> batches;
    int n = 100 + static_cast<int>(rng.Uniform(0, 8000));
    std::vector<int32_t> k;
    std::vector<double> v;
    for (int i = 0; i < n; ++i) {
      k.push_back(static_cast<int32_t>(rng.Uniform(0, 1 << 20)));
      v.push_back(rng.NextDouble());
      if (k.size() == 777 || i == n - 1) {
        batches.push_back(B(k, v));
        k.clear();
        v.clear();
      }
    }
    uint64_t limit = 1 + rng.Next64() % 50;
    ExecContext ctx(nullptr);
    TopN topn(std::make_unique<VectorSource>(S(), batches),
              {SortKey{"k", trial % 2 == 0}}, limit);
    Batch a = CollectAll(&topn, &ctx).ValueOrDie();
    Sort sort(std::make_unique<VectorSource>(S(), batches),
              {SortKey{"k", trial % 2 == 0}}, static_cast<int64_t>(limit));
    Batch b = CollectAll(&sort, &ctx).ValueOrDie();
    ASSERT_EQ(a.num_rows, b.num_rows);
    for (size_t r = 0; r < a.num_rows; ++r) {
      EXPECT_EQ(a.columns[0].i32[r], b.columns[0].i32[r]) << "row " << r;
    }
  }
}

TEST(TopNTest, BoundedMemory) {
  // TopN over many rows keeps memory near the limit, far below Sort.
  std::vector<Batch> batches;
  Rng rng(92);
  for (int chunk = 0; chunk < 40; ++chunk) {
    std::vector<int32_t> k(2048);
    std::vector<double> v(2048);
    for (int i = 0; i < 2048; ++i) {
      k[i] = static_cast<int32_t>(rng.Next64());
      v[i] = rng.NextDouble();
    }
    batches.push_back(B(k, v));
  }
  uint64_t topn_peak, sort_peak;
  {
    ExecContext ctx(nullptr);
    TopN topn(std::make_unique<VectorSource>(S(), batches),
              {SortKey{"k", false}}, 10);
    (void)CollectAll(&topn, &ctx).ValueOrDie();
    topn_peak = ctx.memory()->peak_bytes();
  }
  {
    ExecContext ctx(nullptr);
    Sort sort(std::make_unique<VectorSource>(S(), batches),
              {SortKey{"k", false}}, 10);
    (void)CollectAll(&sort, &ctx).ValueOrDie();
    sort_peak = ctx.memory()->peak_bytes();
  }
  EXPECT_LT(topn_peak * 4, sort_peak);
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
