// SIMD-vs-scalar kernel equality: every dispatchable tier must produce
// bit-identical results to the scalar reference for all kernels, across
// NULL masks, adversarial values, and every tail length 0..vector_width-1.
// Forcing a tier the host cannot run clamps to scalar (simd::ForceTier
// returns what was applied), so the sweep is safe on any machine.
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "exec/kernels/kernels.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace exec {
namespace kernels {
namespace {

constexpr simd::Tier kAllTiers[] = {simd::Tier::kScalar, simd::Tier::kNeon,
                                    simd::Tier::kAvx2};

// Restores env/hardware tier selection when a test scope ends.
struct TierGuard {
  ~TierGuard() { simd::ResetTier(); }
};

// Lengths that cover empty input, every ragged tail of an 8-lane vector,
// exact multiples, and a stretch long enough to hit unrolled main loops.
std::vector<size_t> TestLengths() {
  std::vector<size_t> n;
  for (size_t i = 0; i <= 9; ++i) n.push_back(i);
  n.push_back(15);
  n.push_back(16);
  n.push_back(17);
  n.push_back(255);
  n.push_back(256);
  n.push_back(1000);
  return n;
}

std::vector<uint8_t> RandomMask(Rng* rng, size_t n) {
  std::vector<uint8_t> m(n);
  for (size_t i = 0; i < n; ++i) m[i] = rng->Uniform(0, 1);
  return m;
}

TEST(KernelDispatchTest, ForceTierClampsAndReports) {
  TierGuard guard;
  simd::Tier hw = simd::DetectTier();
  for (simd::Tier t : kAllTiers) {
    simd::Tier applied = simd::ForceTier(t);
    EXPECT_EQ(applied, simd::ActiveTier());
    // Never wider than the hardware, and exact when the request fits.
    EXPECT_LE(static_cast<int>(applied), static_cast<int>(hw));
    if (static_cast<int>(t) <= static_cast<int>(hw)) {
      EXPECT_EQ(applied, t);
    }
  }
  simd::ResetTier();
  EXPECT_EQ(simd::ActiveTier(), simd::DetectTier());
}

TEST(KernelEqualityTest, RangeMaskI32AllTiers) {
  TierGuard guard;
  Rng rng(7);
  constexpr int32_t kMin = std::numeric_limits<int32_t>::min();
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  for (size_t n : TestLengths()) {
    std::vector<int32_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Uniform(0, 3)) {
        case 0: v[i] = static_cast<int32_t>(rng.Uniform(0, 1000)) - 500; break;
        case 1: v[i] = kMin; break;
        case 2: v[i] = kMax; break;
        default: v[i] = static_cast<int32_t>(rng.Next64()); break;
      }
    }
    struct Bounds { int32_t lo, hi; };
    const Bounds bounds[] = {
        {-100, 100}, {kMin, kMax}, {kMax, kMin} /* empty */, {0, 0},
        {kMin, 0},   {0, kMax}};
    for (const Bounds& b : bounds) {
      std::vector<uint8_t> init = RandomMask(&rng, n);
      simd::ForceTier(simd::Tier::kScalar);
      std::vector<uint8_t> want = init;
      RangeMaskI32(v.data(), n, b.lo, b.hi, want.data());
      for (simd::Tier t : kAllTiers) {
        simd::ForceTier(t);
        std::vector<uint8_t> got = init;
        RangeMaskI32(v.data(), n, b.lo, b.hi, got.data());
        ASSERT_EQ(got, want) << "tier=" << simd::TierName(t) << " n=" << n
                             << " lo=" << b.lo << " hi=" << b.hi;
      }
    }
  }
}

TEST(KernelEqualityTest, RangeMaskI64AllTiers) {
  TierGuard guard;
  Rng rng(11);
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  for (size_t n : TestLengths()) {
    std::vector<int64_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      int c = rng.Uniform(0, 3);
      v[i] = c == 0 ? static_cast<int64_t>(rng.Uniform(0, 1000)) - 500
             : c == 1 ? kMin
             : c == 2 ? kMax
                      : static_cast<int64_t>(rng.Next64());
    }
    struct Bounds { int64_t lo, hi; };
    const Bounds bounds[] = {{-100, 100}, {kMin, kMax}, {1, 0}, {kMin, -1}};
    for (const Bounds& b : bounds) {
      std::vector<uint8_t> init = RandomMask(&rng, n);
      simd::ForceTier(simd::Tier::kScalar);
      std::vector<uint8_t> want = init;
      RangeMaskI64(v.data(), n, b.lo, b.hi, want.data());
      for (simd::Tier t : kAllTiers) {
        simd::ForceTier(t);
        std::vector<uint8_t> got = init;
        RangeMaskI64(v.data(), n, b.lo, b.hi, got.data());
        ASSERT_EQ(got, want) << "tier=" << simd::TierName(t) << " n=" << n;
      }
    }
  }
}

TEST(KernelEqualityTest, RangeMaskF64AllTiersIncludingNaN) {
  TierGuard guard;
  Rng rng(13);
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  for (size_t n : TestLengths()) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Uniform(0, 4)) {
        case 0: v[i] = rng.NextDouble() * 200 - 100; break;
        case 1: v[i] = kNan; break;
        case 2: v[i] = kInf; break;
        case 3: v[i] = -kInf; break;
        default: v[i] = -0.0; break;
      }
    }
    struct Bounds { double lo, hi; bool has_hi; };
    const Bounds bounds[] = {{-50.0, 50.0, true},
                             {-kInf, kInf, true},
                             {0.0, kInf, false},  // no upper: NaN passes
                             {-kInf, 0.0, true}};
    for (const Bounds& b : bounds) {
      std::vector<uint8_t> init = RandomMask(&rng, n);
      simd::ForceTier(simd::Tier::kScalar);
      std::vector<uint8_t> want = init;
      RangeMaskF64(v.data(), n, b.lo, b.hi, b.has_hi, want.data());
      for (simd::Tier t : kAllTiers) {
        simd::ForceTier(t);
        std::vector<uint8_t> got = init;
        RangeMaskF64(v.data(), n, b.lo, b.hi, b.has_hi, got.data());
        ASSERT_EQ(got, want) << "tier=" << simd::TierName(t) << " n=" << n
                             << " has_hi=" << b.has_hi;
      }
    }
  }
}

TEST(KernelEqualityTest, RangeMaskF64NanSemantics) {
  TierGuard guard;
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  double v[3] = {kNan, 1.0, kNan};
  for (simd::Tier t : kAllTiers) {
    simd::ForceTier(t);
    // NaN sorts last: passes any lower bound when there is no upper bound.
    uint8_t m1[3] = {1, 1, 1};
    RangeMaskF64(v, 3, 1e300, 0.0, /*has_hi=*/false, m1);
    EXPECT_EQ(m1[0], 1) << simd::TierName(t);
    EXPECT_EQ(m1[1], 0) << simd::TierName(t);
    EXPECT_EQ(m1[2], 1) << simd::TierName(t);
    // ...and fails any explicit upper bound.
    uint8_t m2[3] = {1, 1, 1};
    RangeMaskF64(v, 3, -1e300, 1e300, /*has_hi=*/true, m2);
    EXPECT_EQ(m2[0], 0) << simd::TierName(t);
    EXPECT_EQ(m2[1], 1) << simd::TierName(t);
    EXPECT_EQ(m2[2], 0) << simd::TierName(t);
  }
}

TEST(KernelEqualityTest, PredicatesComposeByChaining) {
  TierGuard guard;
  Rng rng(17);
  const size_t n = 333;
  std::vector<int32_t> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.Uniform(0, 100));
    b[i] = static_cast<int32_t>(rng.Uniform(0, 100));
  }
  for (simd::Tier t : kAllTiers) {
    simd::ForceTier(t);
    std::vector<uint8_t> mask(n, 1);
    RangeMaskI32(a.data(), n, 20, 80, mask.data());
    RangeMaskI32(b.data(), n, 0, 50, mask.data());
    for (size_t i = 0; i < n; ++i) {
      uint8_t want = (a[i] >= 20 && a[i] <= 80 && b[i] >= 0 && b[i] <= 50);
      ASSERT_EQ(mask[i], want) << "tier=" << simd::TierName(t) << " i=" << i;
    }
  }
}

TEST(KernelEqualityTest, VerdictMaskI32AllTiers) {
  TierGuard guard;
  Rng rng(19);
  const size_t num_codes = 61;
  std::vector<uint8_t> ok(num_codes);
  for (size_t i = 0; i < num_codes; ++i) ok[i] = rng.Uniform(0, 1);
  for (size_t n : TestLengths()) {
    std::vector<int32_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<int32_t>(rng.Uniform(0, num_codes - 1));
    }
    std::vector<uint8_t> init = RandomMask(&rng, n);
    simd::ForceTier(simd::Tier::kScalar);
    std::vector<uint8_t> want = init;
    VerdictMaskI32(v.data(), n, ok.data(), want.data());
    for (simd::Tier t : kAllTiers) {
      simd::ForceTier(t);
      std::vector<uint8_t> got = init;
      VerdictMaskI32(v.data(), n, ok.data(), got.data());
      ASSERT_EQ(got, want) << "tier=" << simd::TierName(t) << " n=" << n;
    }
  }
}

TEST(KernelEqualityTest, MaskToSelAndCountAllTiers) {
  TierGuard guard;
  Rng rng(23);
  for (size_t n : TestLengths()) {
    // Dense, sparse, empty, and full masks.
    for (int pct : {0, 3, 50, 97, 100}) {
      std::vector<uint8_t> mask(n);
      for (size_t i = 0; i < n; ++i) {
        mask[i] = rng.Uniform(0, 99) < pct;
      }
      std::vector<uint32_t> want;
      want.push_back(777);  // pre-existing content must be preserved
      simd::ForceTier(simd::Tier::kScalar);
      size_t want_n = MaskToSel(mask.data(), n, 100, &want);
      size_t want_cnt = CountMask(mask.data(), n);
      for (simd::Tier t : kAllTiers) {
        simd::ForceTier(t);
        std::vector<uint32_t> got;
        got.push_back(777);
        size_t got_n = MaskToSel(mask.data(), n, 100, &got);
        ASSERT_EQ(got_n, want_n) << "tier=" << simd::TierName(t) << " n=" << n;
        ASSERT_EQ(got, want) << "tier=" << simd::TierName(t) << " n=" << n;
        ASSERT_EQ(CountMask(mask.data(), n), want_cnt)
            << "tier=" << simd::TierName(t) << " n=" << n;
      }
    }
  }
}

TEST(KernelEqualityTest, GathersAllTiers) {
  TierGuard guard;
  Rng rng(29);
  const size_t src_n = 2048;
  std::vector<int32_t> s32(src_n);
  std::vector<int64_t> s64(src_n);
  std::vector<double> sf(src_n);
  std::vector<uint8_t> s8(src_n);
  for (size_t i = 0; i < src_n; ++i) {
    s32[i] = static_cast<int32_t>(rng.Next64());
    s64[i] = static_cast<int64_t>(rng.Next64());
    sf[i] = rng.NextDouble();
    s8[i] = static_cast<uint8_t>(rng.Uniform(0, 255));
  }
  for (size_t n : TestLengths()) {
    // Mix contiguous runs (memcpy collapse) with scattered jumps.
    std::vector<uint32_t> sel(n);
    uint32_t pos = 0;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform(0, 3) == 0 || pos + 1 >= src_n) {
        pos = static_cast<uint32_t>(rng.Uniform(0, src_n - 1));
      } else {
        ++pos;  // extend an ascending run
      }
      sel[i] = pos;
    }
    for (simd::Tier t : kAllTiers) {
      simd::ForceTier(t);
      std::vector<int32_t> d32(n + 1, -1);
      std::vector<int64_t> d64(n + 1, -1);
      std::vector<double> df(n + 1, -1);
      std::vector<uint8_t> d8(n + 1, 0xEE);
      GatherI32(s32.data(), sel.data(), n, d32.data());
      GatherI64(s64.data(), sel.data(), n, d64.data());
      GatherF64(sf.data(), sel.data(), n, df.data());
      GatherU8(s8.data(), sel.data(), n, d8.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(d32[i], s32[sel[i]]) << simd::TierName(t) << " i=" << i;
        ASSERT_EQ(d64[i], s64[sel[i]]) << simd::TierName(t) << " i=" << i;
        ASSERT_EQ(df[i], sf[sel[i]]) << simd::TierName(t) << " i=" << i;
        ASSERT_EQ(d8[i], s8[sel[i]]) << simd::TierName(t) << " i=" << i;
      }
      // One-past-the-end slot untouched (no overwrite past n).
      EXPECT_EQ(d32[n], -1);
      EXPECT_EQ(d8[n], 0xEE);
    }
  }
}

// Scalar splitmix64 reference (the exec::HashKey64 finalizer).
uint64_t RefHash(uint64_t k) {
  k += 0x9e3779b97f4a7c15ULL;
  k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
  k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
  return k ^ (k >> 31);
}

TEST(KernelEqualityTest, HashKeys64AllTiers) {
  TierGuard guard;
  Rng rng(31);
  for (size_t n : TestLengths()) {
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.Uniform(0, 2) == 0 ? rng.Next64()
                                       : static_cast<uint64_t>(i);  // dense too
    }
    for (simd::Tier t : kAllTiers) {
      simd::ForceTier(t);
      std::vector<uint64_t> out(n, 0);
      HashKeys64(keys.data(), n, out.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], RefHash(keys[i]))
            << "tier=" << simd::TierName(t) << " i=" << i;
      }
    }
  }
}

TEST(KernelEqualityTest, PartitionIdsFromKeysAllTiers) {
  TierGuard guard;
  Rng rng(37);
  for (size_t n : TestLengths()) {
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = rng.Next64();
    std::vector<uint8_t> valid = RandomMask(&rng, n);
    for (int part_bits : {1, 3, 8, 16}) {
      const uint8_t* valid_options[] = {valid.data(), nullptr};
      for (const uint8_t* vptr : valid_options) {
        for (simd::Tier t : kAllTiers) {
          simd::ForceTier(t);
          std::vector<uint32_t> parts(n, ~0u);
          PartitionIdsFromKeys(keys.data(), vptr, n, part_bits, parts.data());
          for (size_t i = 0; i < n; ++i) {
            uint32_t want =
                (vptr != nullptr && vptr[i] == 0)
                    ? 0
                    : static_cast<uint32_t>(RefHash(keys[i]) >>
                                            (64 - part_bits));
            ASSERT_EQ(parts[i], want)
                << "tier=" << simd::TierName(t) << " n=" << n
                << " bits=" << part_bits << " i=" << i;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace kernels
}  // namespace exec
}  // namespace bdcc
