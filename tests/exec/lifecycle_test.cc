// Query lifecycle at the operator level: QueryControl semantics,
// budget-enforced memory growth (ResourceExhausted naming the operator,
// state released on unwind, rerunnable afterwards), and cancellation/error
// propagation through the parallel operators (the ParallelLifecycleTest
// suite runs under TSan in CI).
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/task_scheduler.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/query_control.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/topn.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

Table MakeTable(uint64_t rows) {
  Rng rng(17);
  Table t("T");
  Column k(TypeId::kInt32), g(TypeId::kInt32), v(TypeId::kFloat64);
  for (uint64_t i = 0; i < rows; ++i) {
    k.AppendInt32(static_cast<int32_t>(i));  // unique: many groups
    g.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 9)));
    v.AppendFloat64(rng.NextDouble());
  }
  t.AddColumn("k", std::move(k)).AbortIfNotOK();
  t.AddColumn("g", std::move(g)).AbortIfNotOK();
  t.AddColumn("v", std::move(v)).AbortIfNotOK();
  return t;
}

// ---------------------------------------------------------------- control

TEST(QueryControlTest, HealthyByDefault) {
  QueryControl control;
  EXPECT_TRUE(control.Check().ok());
  EXPECT_FALSE(control.cancel_requested());
}

TEST(QueryControlTest, CancelObservedAtNextCheck) {
  QueryControl control;
  control.RequestCancel();
  EXPECT_TRUE(control.cancel_requested());
  EXPECT_TRUE(control.Check().IsCancelled());
}

TEST(QueryControlTest, PastDeadlineExpires) {
  QueryControl control;
  control.SetDeadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  EXPECT_TRUE(control.Check().IsDeadlineExceeded());
}

TEST(QueryControlTest, FutureDeadlineStaysHealthy) {
  QueryControl control;
  control.SetTimeout(std::chrono::hours(1));
  EXPECT_TRUE(control.Check().ok());
}

TEST(QueryControlTest, FirstErrorWinsOverCancelAndLaterErrors) {
  QueryControl control;
  control.ReportError(Status::IOError("root cause"));
  control.ReportError(Status::Internal("secondary"));
  control.RequestCancel();
  Status s = control.Check();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("root cause"), std::string::npos);
}

TEST(QueryControlTest, CancelStatusesNotRecordedAsErrors) {
  QueryControl control;
  control.ReportError(Status::Cancelled("cascade"));
  control.ReportError(Status::DeadlineExceeded("cascade"));
  EXPECT_TRUE(control.Check().ok());
  EXPECT_TRUE(control.first_error().ok());
}

TEST(QueryControlTest, ResetRearms) {
  QueryControl control;
  control.RequestCancel();
  control.ReportError(Status::Internal("x"));
  control.Reset();
  EXPECT_TRUE(control.Check().ok());
  EXPECT_TRUE(control.first_error().ok());
}

// ---------------------------------------------------------------- budgets

TEST(MemoryBudgetTest, TryAllocateDeniesGrowthPastLimit) {
  MemoryTracker tracker;
  tracker.set_limit(1000);
  EXPECT_TRUE(tracker.TryAllocate(600));
  EXPECT_FALSE(tracker.TryAllocate(500));
  EXPECT_EQ(tracker.current_bytes(), 600u);
  EXPECT_EQ(tracker.budget_denials(), 1u);
  EXPECT_TRUE(tracker.TryAllocate(400));  // exactly at the limit is fine
  EXPECT_EQ(tracker.current_bytes(), 1000u);
}

TEST(MemoryBudgetTest, TrySetNamesTheOperator) {
  MemoryTracker tracker;
  tracker.set_limit(100);
  TrackedMemory mem(&tracker, "hash-agg");
  Status s = mem.TrySet(4096);
  ASSERT_TRUE(s.IsResourceExhausted());
  EXPECT_NE(s.ToString().find("hash-agg"), std::string::npos);
  EXPECT_NE(s.ToString().find("memory budget exceeded"), std::string::npos);
  EXPECT_EQ(mem.bytes(), 0u);  // refused growth left registration unchanged
  // Shrinking and releasing are always allowed.
  EXPECT_TRUE(mem.TrySet(50).ok());
  EXPECT_TRUE(mem.TrySet(10).ok());
  mem.Clear();
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(MemoryBudgetTest, HashAggRefusesThenSucceedsWithoutLimit) {
  Table t = MakeTable(20000);
  ExecContext ctx(nullptr);
  ctx.memory()->set_limit(4096);
  {
    HashAgg agg(std::make_unique<PlainScan>(
                    &t, std::vector<std::string>{"k", "v"}),
                {"k"}, std::vector<AggSpec>{AggSum(Col("v"), "sum_v")});
    auto result = CollectAll(&agg, &ctx);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsResourceExhausted())
        << result.status().ToString();
    EXPECT_NE(result.status().ToString().find("hash-agg"), std::string::npos);
  }
  // The error unwind released every tracked byte; the same context runs the
  // query to completion once the cap is lifted.
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
  EXPECT_GE(ctx.stats()->budget_denials, 1u);
  ctx.memory()->set_limit(0);
  HashAgg agg(std::make_unique<PlainScan>(
                  &t, std::vector<std::string>{"k", "v"}),
              {"k"}, std::vector<AggSpec>{AggSum(Col("v"), "sum_v")});
  auto result = CollectAll(&agg, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_rows, t.num_rows());
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
}

TEST(MemoryBudgetTest, SortRefusesUnderTinyBudget) {
  Table t = MakeTable(20000);
  ExecContext ctx(nullptr);
  ctx.memory()->set_limit(4096);
  Sort sort(std::make_unique<PlainScan>(&t,
                                        std::vector<std::string>{"k", "v"}),
            {SortKey{"v", false}});
  auto result = CollectAll(&sort, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("sort buffer"),
            std::string::npos);
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
}

TEST(MemoryBudgetTest, HashJoinBuildRefusesUnderTinyBudget) {
  Table probe = MakeTable(100);
  Table build = MakeTable(20000);
  ExecContext ctx(nullptr);
  ctx.memory()->set_limit(4096);
  HashJoin join(
      std::make_unique<PlainScan>(&probe, std::vector<std::string>{"k"}),
      std::make_unique<PlainScan>(&build,
                                  std::vector<std::string>{"k", "v"}),
      {"k"}, {"k"}, JoinType::kInner);
  auto result = CollectAll(&join, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("hash-join build"),
            std::string::npos);
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
}

TEST(MemoryBudgetTest, TopNRefusesUnderTinyBudget) {
  Table t = MakeTable(20000);
  ExecContext ctx(nullptr);
  ctx.memory()->set_limit(256);
  TopN topn(std::make_unique<PlainScan>(&t,
                                        std::vector<std::string>{"k", "v"}),
            {SortKey{"v", false}}, 5000);
  auto result = CollectAll(&topn, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("top-n heap"),
            std::string::npos);
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
}

// ----------------------------------------------------- cancellation points

TEST(MemoryBudgetTest, CancelledScanStopsWithinOneChunk) {
  Table t = MakeTable(20000);
  ExecContext ctx(nullptr);
  ctx.control()->RequestCancel();
  PlainScan scan(&t, std::vector<std::string>{"k"});
  auto result = CollectAll(&scan, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_GE(ctx.stats()->morsels_cancelled, 1u);
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
  // Reset rearms the same context for a clean rerun.
  ctx.control()->Reset();
  PlainScan again(&t, std::vector<std::string>{"k"});
  auto rerun = CollectAll(&again, &ctx);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun.value().num_rows, t.num_rows());
}

TEST(MemoryBudgetTest, PastDeadlineStopsAggregation) {
  Table t = MakeTable(20000);
  ExecContext ctx(nullptr);
  ctx.control()->SetDeadline(std::chrono::steady_clock::now() -
                             std::chrono::milliseconds(1));
  HashAgg agg(std::make_unique<PlainScan>(
                  &t, std::vector<std::string>{"g", "v"}),
              {"g"}, std::vector<AggSpec>{AggSum(Col("v"), "sum_v")});
  auto result = CollectAll(&agg, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
}

// ------------------------------------------------------- parallel operators

// A source whose Next fails immediately — stands in for one broken clone in
// a parallel fan-out.
class FailingSource : public Operator {
 public:
  explicit FailingSource(Schema schema) : schema_(std::move(schema)) {}
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext*) override { return Status::OK(); }
  Result<Batch> Next(ExecContext*) override {
    return Status::IOError("injected probe failure");
  }

 private:
  Schema schema_;
};

ChainFactory MixedFactory(const Table* t,
                          std::shared_ptr<const std::vector<Morsel>> morsels,
                          size_t failing_clone) {
  return [t, morsels, failing_clone](size_t i,
                                     size_t n) -> Result<OperatorPtr> {
    if (i == failing_clone) {
      return OperatorPtr(std::make_unique<FailingSource>(
          Schema({{"k", TypeId::kInt32}})));
    }
    auto scan =
        std::make_unique<PlainScan>(t, std::vector<std::string>{"k"});
    scan->RestrictToMorsels(MorselSet{morsels, i, n});
    return OperatorPtr(std::move(scan));
  };
}

TEST(ParallelLifecycleTest, FailingCloneSurfacesErrorAndSchedulerSurvives) {
  Table t = MakeTable(20000);
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(t.num_rows(), 0, 1024));
  common::TaskScheduler scheduler(3);
  {
    ExecContext ctx(nullptr);
    ParallelUnion u(MixedFactory(&t, morsels, 2), 4, &scheduler);
    auto result = CollectAll(&u, &ctx);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().ToString().find("injected probe failure"),
              std::string::npos)
        << result.status().ToString();
    EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
  }
  // Same scheduler, healthy clones: runs to completion.
  ExecContext ctx(nullptr);
  ParallelUnion u(MixedFactory(&t, morsels, 99), 4, &scheduler);
  auto result = CollectAll(&u, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_rows, t.num_rows());
}

TEST(ParallelLifecycleTest, CancelledParallelAggReturnsCancelled) {
  Table t = MakeTable(20000);
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(t.num_rows(), 0, 1024));
  common::TaskScheduler scheduler(3);
  ExecContext ctx(nullptr);
  ctx.control()->RequestCancel();  // before the drain: deterministic
  ParallelHashAgg agg(
      [&t, morsels](size_t i, size_t n) -> Result<OperatorPtr> {
        auto scan = std::make_unique<PlainScan>(
            &t, std::vector<std::string>{"g", "v"});
        scan->RestrictToMorsels(MorselSet{morsels, i, n});
        return OperatorPtr(std::move(scan));
      },
      4, {"g"}, std::vector<AggSpec>{AggSum(Col("v"), "sum_v")}, &scheduler);
  auto result = CollectAll(&agg, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_GE(ctx.stats()->morsels_cancelled, 1u);
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
}

// Cancellation raced from another thread mid-drain: whichever side wins,
// the query either completes or returns Cancelled, memory drains, and the
// scheduler stays reusable. TSan checks the flag handshakes.
TEST(ParallelLifecycleTest, ConcurrentCancelIsCleanEitherWay) {
  Table t = MakeTable(50000);
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(t.num_rows(), 0, 512));
  common::TaskScheduler scheduler(3);
  for (int round = 0; round < 5; ++round) {
    ExecContext ctx(nullptr);
    std::thread canceller([&ctx, round] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      ctx.control()->RequestCancel();
    });
    ParallelHashJoin join(
        MixedFactory(&t, morsels, 99), 4,
        std::make_unique<PlainScan>(&t, std::vector<std::string>{"k", "v"}),
        {"k"}, {"k"}, JoinType::kInner, &scheduler);
    auto result = CollectAll(&join, &ctx);
    canceller.join();
    if (result.ok()) {
      EXPECT_EQ(result.value().num_rows, t.num_rows());
    } else {
      EXPECT_TRUE(result.status().IsCancelled())
          << result.status().ToString();
    }
    EXPECT_EQ(ctx.memory()->current_bytes(), 0u) << "round " << round;
  }
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
