// Direct execution over encoded lanes and zero-copy view emission: the
// three EncodedEval modes (off / decode-baseline / direct) must produce
// identical scan results, zero-copy scans must match copying scans, and the
// new ExecStats counters (encoded_spans, decodes_skipped, chunks_zero_copy)
// must fire exactly where the design says they do.
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/exec_context.h"
#include "exec/operator.h"
#include "exec/scan.h"
#include "gtest/gtest.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

// Clustered-ish table: k arrives in runs (RLE-friendly), c is a narrow
// dict-coded tag column, v/w exercise the float and int64 kernel paths.
Table RunsTable(uint64_t rows, uint32_t zone_rows, uint64_t seed = 5) {
  Rng rng(seed);
  Table t("T");
  Column k(TypeId::kInt32), v(TypeId::kFloat64), s(TypeId::kString),
      w(TypeId::kInt64);
  const char* tags[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  int32_t cur = 0;
  uint64_t run_left = 0;
  for (uint64_t i = 0; i < rows; ++i) {
    if (run_left == 0) {
      cur = static_cast<int32_t>(rng.Uniform(0, 999));
      run_left = static_cast<uint64_t>(rng.Uniform(1, 300));
    }
    --run_left;
    k.AppendInt32(cur);
    v.AppendFloat64(rng.NextDouble());
    s.AppendString(tags[rng.Uniform(0, 4)]);
    w.AppendInt64(static_cast<int64_t>(i));
  }
  t.AddColumn("k", std::move(k)).AbortIfNotOK();
  t.AddColumn("v", std::move(v)).AbortIfNotOK();
  t.AddColumn("s", std::move(s)).AbortIfNotOK();
  t.AddColumn("w", std::move(w)).AbortIfNotOK();
  t.BuildZoneMaps(zone_rows);
  t.BuildEncodedLanes();
  return t;
}

struct ScanRun {
  Batch result;
  ExecStats stats;
};

ScanRun RunScan(const Table& t, std::vector<ScanPredicate> preds,
                EncodedEval mode, bool row_filter, bool zero_copy) {
  ExecContext ctx(nullptr);
  PlainScan scan(&t, {"k", "v", "s", "w"}, std::move(preds));
  scan.EnableRowFilter(row_filter);
  scan.SetEncodedEval(mode);
  scan.EnableZeroCopy(zero_copy);
  ScanRun out;
  out.result = CollectAll(&scan, &ctx).ValueOrDie();
  out.stats = *ctx.stats();
  return out;
}

std::vector<ScanPredicate> KRange(int32_t lo, int32_t hi) {
  return {{"k", ValueRange{Value::Int32(lo), Value::Int32(hi)}}};
}

TEST(EncodedScanTest, AllEvalModesAgree) {
  Table t = RunsTable(20000, 256);
  ASSERT_TRUE(t.HasEncodedLanes());
  struct Case {
    int32_t lo, hi;
  } cases[] = {{0, 0}, {0, 49}, {100, 349}, {0, 899}, {0, 999}};
  for (const Case& c : cases) {
    ScanRun off = RunScan(t, KRange(c.lo, c.hi), EncodedEval::kOff,
                          /*row_filter=*/true, /*zero_copy=*/false);
    ScanRun decode = RunScan(t, KRange(c.lo, c.hi), EncodedEval::kDecode,
                             true, false);
    ScanRun direct = RunScan(t, KRange(c.lo, c.hi), EncodedEval::kAuto,
                             true, false);
    std::string label = "k in [" + std::to_string(c.lo) + "," +
                        std::to_string(c.hi) + "]";
    testutil::ExpectBatchesEqual(off.result, decode.result,
                                 label + " decode");
    testutil::ExpectBatchesEqual(off.result, direct.result,
                                 label + " direct");
    EXPECT_EQ(off.stats.encoded_spans, 0u) << label;
    // Direct mode must actually have gone through the encoded lane for
    // every mixed span it evaluated (all-match zones skip evaluation, and
    // supertight ranges may zone-prune the entire table).
    if ((c.lo > 0 || c.hi < 999) && direct.stats.rows_scanned > 0) {
      EXPECT_GT(direct.stats.encoded_spans, 0u) << label;
    }
  }
}

TEST(EncodedScanTest, StringPredicateUsesEncodedVerdicts) {
  Table t = RunsTable(20000, 256);
  std::vector<ScanPredicate> preds = {
      {"s", ValueRange{Value::String("beta"), Value::String("delta")}}};
  ScanRun off = RunScan(t, preds, EncodedEval::kOff, true, false);
  ScanRun direct = RunScan(t, preds, EncodedEval::kAuto, true, false);
  testutil::ExpectBatchesEqual(off.result, direct.result, "string verdicts");
  EXPECT_GT(direct.stats.encoded_spans, 0u);
  EXPECT_GT(direct.result.num_rows, 0u);
}

TEST(EncodedScanTest, CombinedPredicatesAgreeAcrossModes) {
  Table t = RunsTable(20000, 256);
  std::vector<ScanPredicate> preds = {
      {"k", ValueRange{Value::Int32(100), Value::Int32(700)}},
      {"s", ValueRange{Value::String("beta"), Value::String("gamma")}},
      {"w", ValueRange{Value::Int64(1000), Value::Int64(15000)}}};
  ScanRun off = RunScan(t, preds, EncodedEval::kOff, true, false);
  ScanRun decode = RunScan(t, preds, EncodedEval::kDecode, true, false);
  ScanRun direct = RunScan(t, preds, EncodedEval::kAuto, true, false);
  testutil::ExpectBatchesEqual(off.result, decode.result, "combined decode");
  testutil::ExpectBatchesEqual(off.result, direct.result, "combined direct");
}

TEST(EncodedScanTest, WorksWithoutEncodedLanes) {
  // kAuto on a table that never built encodings silently evaluates flat.
  Table t = RunsTable(5000, 256);
  Table plain = t.Clone();
  plain.BuildZoneMaps(256);  // zone maps but no encoded lanes
  ASSERT_FALSE(plain.HasEncodedLanes());
  ScanRun off = RunScan(plain, KRange(100, 400), EncodedEval::kOff, true,
                        false);
  ScanRun direct = RunScan(plain, KRange(100, 400), EncodedEval::kAuto, true,
                           false);
  testutil::ExpectBatchesEqual(off.result, direct.result, "no encodings");
  EXPECT_EQ(direct.stats.encoded_spans, 0u);
}

TEST(ZeroCopyScanTest, UnfilteredScanEmitsViews) {
  Table t = RunsTable(20000, 256);
  ScanRun copy = RunScan(t, {}, EncodedEval::kOff, false, false);
  ScanRun views = RunScan(t, {}, EncodedEval::kOff, false, true);
  testutil::ExpectBatchesEqual(copy.result, views.result, "unfiltered views");
  EXPECT_EQ(copy.stats.chunks_zero_copy, 0u);
  EXPECT_GT(views.stats.chunks_zero_copy, 0u);
  EXPECT_EQ(views.result.num_rows, 20000u);
}

TEST(ZeroCopyScanTest, ZoneAllMatchShortCircuitsDecode) {
  Table t = RunsTable(20000, 256);
  // A predicate the whole table satisfies: every zone proves all-match, so
  // a filtered scan never evaluates a row and emits pure views.
  ScanRun copy = RunScan(t, KRange(0, 999), EncodedEval::kAuto, true, false);
  ScanRun views = RunScan(t, KRange(0, 999), EncodedEval::kAuto, true, true);
  testutil::ExpectBatchesEqual(copy.result, views.result, "all-match views");
  EXPECT_GT(views.stats.decodes_skipped, 0u);
  EXPECT_GT(views.stats.chunks_zero_copy, 0u);
  EXPECT_EQ(views.result.num_rows, 20000u);

  // A selective predicate still filters correctly with zero-copy enabled
  // (partial chunks fall back to the copying path).
  ScanRun sel_copy = RunScan(t, KRange(0, 99), EncodedEval::kAuto, true,
                             false);
  ScanRun sel_views = RunScan(t, KRange(0, 99), EncodedEval::kAuto, true,
                              true);
  testutil::ExpectBatchesEqual(sel_copy.result, sel_views.result,
                               "selective with zero-copy enabled");
}

TEST(ZeroCopyScanTest, ViewBatchesCompactToOwnedLanes) {
  Table t = RunsTable(4096, 512);
  ExecContext ctx(nullptr);
  PlainScan scan(&t, {"k", "v", "w"});
  scan.EnableZeroCopy(true);
  ASSERT_TRUE(scan.Open(&ctx).ok());
  bool saw_view = false;
  uint64_t rows = 0;
  while (true) {
    Batch b = scan.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    for (ColumnVector& c : b.columns) saw_view |= c.is_view();
    // Views read through the typed accessors...
    const int32_t* kd = b.columns[0].i32_data();
    for (size_t i = 0; i < b.num_rows; ++i) {
      ASSERT_EQ(kd[i], t.column(0).i32()[rows + i]);
    }
    // ...and Compact() turns them into ordinary owned lanes.
    b.Compact();
    for (ColumnVector& c : b.columns) ASSERT_FALSE(c.is_view());
    ASSERT_EQ(b.columns[0].i32.size(), b.num_rows);
    rows += b.num_rows;
  }
  scan.Close(&ctx);
  EXPECT_TRUE(saw_view);
  EXPECT_EQ(rows, 4096u);
}

TEST(ZeroCopyScanTest, StatsMergePropagatesNewCounters) {
  ExecStats a, b;
  a.decodes_skipped = 3;
  a.chunks_zero_copy = 5;
  a.encoded_spans = 7;
  b.Merge(a);
  b.Merge(a);
  EXPECT_EQ(b.decodes_skipped, 6u);
  EXPECT_EQ(b.chunks_zero_copy, 10u);
  EXPECT_EQ(b.encoded_spans, 14u);
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
