// Selection vectors & late materialization: the Batch::sel contract, scan
// predicate pushdown (selection emission, sparse gathering, zone-map
// composition), Filter selection composition and the density gate, batch
// recycling, and sel-path vs compact-path result equality.
#include <limits>
#include <map>
#include <memory>

#include "bdcc/bdcc_table.h"
#include "bdcc/binning.h"
#include "catalog/catalog.h"
#include "common/rng.h"
#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

class NoFkResolver : public TableResolver {
 public:
  explicit NoFkResolver(const Table* t) : t_(t) {}
  Result<const Table*> GetTable(const std::string& name) const override {
    if (name == t_->name()) return t_;
    return Status::NotFound(name);
  }
  Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const override {
    return Status::NotFound(id);
  }

 private:
  const Table* t_;
};

Table MixedTable(uint64_t rows, uint64_t seed = 3) {
  Rng rng(seed);
  Table t("T");
  Column k(TypeId::kInt32), v(TypeId::kFloat64), s(TypeId::kString),
      w(TypeId::kInt64);
  const char* tags[] = {"alpha", "beta", "gamma", "delta"};
  for (uint64_t i = 0; i < rows; ++i) {
    k.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 999)));
    v.AppendFloat64(rng.NextDouble());
    s.AppendString(tags[rng.Uniform(0, 3)]);
    w.AppendInt64(static_cast<int64_t>(i));
  }
  t.AddColumn("k", std::move(k)).AbortIfNotOK();
  t.AddColumn("v", std::move(v)).AbortIfNotOK();
  t.AddColumn("s", std::move(s)).AbortIfNotOK();
  t.AddColumn("w", std::move(w)).AbortIfNotOK();
  t.BuildZoneMaps(128);
  return t;
}

// ---------------- Batch mechanics ----------------

TEST(BatchSelTest, RowAtDensityCompact) {
  Batch b;
  ColumnVector c(TypeId::kInt32);
  c.i32 = {10, 20, 30, 40};
  ColumnVector n(TypeId::kInt64);
  n.i64 = {1, 2, 3, 4};
  n.nulls = {0, 1, 0, 1};
  b.columns = {std::move(c), std::move(n)};
  b.num_rows = 2;
  b.sel = {1, 3};
  EXPECT_TRUE(b.has_sel());
  EXPECT_EQ(b.physical_rows(), 4u);
  EXPECT_EQ(b.RowAt(0), 1u);
  EXPECT_EQ(b.RowAt(1), 3u);
  EXPECT_DOUBLE_EQ(b.density(), 0.5);
  b.Compact();
  EXPECT_FALSE(b.has_sel());
  EXPECT_EQ(b.physical_rows(), 2u);
  EXPECT_EQ(b.columns[0].i32, (std::vector<int32_t>{20, 40}));
  // Null masks gather along with the lanes.
  EXPECT_EQ(b.columns[1].nulls, (std::vector<uint8_t>{1, 1}));
}

TEST(BatchSelTest, ExprLeavesDensifyUnderSel) {
  Batch b;
  ColumnVector c(TypeId::kInt32);
  c.i32 = {1, 2, 3, 4, 5};
  b.columns = {std::move(c)};
  b.num_rows = 2;
  b.sel = {0, 4};
  Schema schema({{"k", TypeId::kInt32}});
  ExprPtr e = Add(Col("k"), LitI64(100));
  ASSERT_TRUE(e->Bind(schema).ok());
  ColumnVector out = e->Eval(b).ValueOrDie();
  ASSERT_EQ(out.i64.size(), 2u);
  EXPECT_EQ(out.i64[0], 101);
  EXPECT_EQ(out.i64[1], 105);
}

// ---------------- Scan pushdown ----------------

// Reference: scan without pushdown + Filter, fully compacted (seed shape).
Batch LegacyScanFilter(const Table& t, int32_t lo, int32_t hi) {
  ExecContext ctx(nullptr);
  ctx.set_sel_enabled(false);
  auto scan = std::make_unique<PlainScan>(
      &t, std::vector<std::string>{"k", "v", "s", "w"},
      std::vector<ScanPredicate>{
          {"k", ValueRange{Value::Int32(lo), Value::Int32(hi)}}});
  Filter filter(std::move(scan),
                Between(Col("k"), Lit(Value::Int32(lo)), Lit(Value::Int32(hi))));
  return CollectAll(&filter, &ctx).ValueOrDie();
}

Batch PushdownScan(const Table& t, int32_t lo, int32_t hi, bool sel_enabled) {
  ExecContext ctx(nullptr);
  ctx.set_sel_enabled(sel_enabled);
  PlainScan scan(&t, {"k", "v", "s", "w"},
                 {{"k", ValueRange{Value::Int32(lo), Value::Int32(hi)}}});
  scan.EnableRowFilter(true);
  return CollectAll(&scan, &ctx).ValueOrDie();
}

TEST(ScanPushdownTest, MatchesLegacyFilterAcrossSelectivities) {
  Table t = MixedTable(10000);
  struct Case {
    int32_t lo, hi;
  } cases[] = {{0, 0}, {0, 9}, {100, 349}, {0, 899}, {0, 999}};
  for (const Case& c : cases) {
    Batch legacy = LegacyScanFilter(t, c.lo, c.hi);
    Batch sel = PushdownScan(t, c.lo, c.hi, /*sel_enabled=*/true);
    Batch compact = PushdownScan(t, c.lo, c.hi, /*sel_enabled=*/false);
    testutil::ExpectBatchesEqual(legacy, sel, "sel path lo=" +
                                                  std::to_string(c.lo));
    testutil::ExpectBatchesEqual(legacy, compact,
                                 "compact path lo=" + std::to_string(c.lo));
  }
}

TEST(ScanPushdownTest, StringPredicateBindsCodesOnce) {
  Table t = MixedTable(5000);
  ExecContext ctx(nullptr);
  PlainScan scan(&t, {"s", "w"},
                 {{"s", ValueRange{Value::String("beta"),
                                   Value::String("beta")}}});
  scan.EnableRowFilter(true);
  Batch got = CollectAll(&scan, &ctx).ValueOrDie();
  uint64_t expect = 0;
  for (uint64_t r = 0; r < t.num_rows(); ++r) {
    if (t.column(2).GetString(r) == "beta") ++expect;
  }
  EXPECT_EQ(got.num_rows, expect);
  for (size_t i = 0; i < got.num_rows; ++i) {
    EXPECT_EQ(got.columns[0].GetString(i), "beta");
  }
  EXPECT_GT(ctx.stats()->rows_filtered_at_scan, 0u);
}

TEST(ScanPushdownTest, FloatNaNMatchesLegacyComparatorSemantics) {
  // NaN must behave identically in the pushdown kernel and the legacy
  // Filter comparator (where NaN compares as "greater"): it passes
  // lower-bound-only predicates and fails predicates with an upper bound.
  Table t("F");
  Column v(TypeId::kFloat64);
  v.AppendFloat64(0.5);
  v.AppendFloat64(std::numeric_limits<double>::quiet_NaN());
  v.AppendFloat64(2.0);
  t.AddColumn("v", std::move(v)).AbortIfNotOK();

  auto run = [&](std::optional<Value> lo, std::optional<Value> hi,
                 bool pushdown) {
    ExecContext ctx(nullptr);
    ctx.set_sel_enabled(pushdown);
    auto scan = std::make_unique<PlainScan>(
        &t, std::vector<std::string>{"v"},
        std::vector<ScanPredicate>{{"v", ValueRange{lo, hi}}});
    scan->EnableRowFilter(pushdown);
    if (pushdown) return CollectAll(scan.get(), &ctx).ValueOrDie();
    std::vector<ExprPtr> conjuncts;
    if (lo) conjuncts.push_back(Ge(Col("v"), Lit(*lo)));
    if (hi) conjuncts.push_back(Le(Col("v"), Lit(*hi)));
    Filter filter(std::move(scan), AndAll(conjuncts));
    return CollectAll(&filter, &ctx).ValueOrDie();
  };
  // Lower bound only: both paths keep NaN (legacy comparator quirk).
  EXPECT_EQ(run(Value::Float64(0.1), std::nullopt, true).num_rows,
            run(Value::Float64(0.1), std::nullopt, false).num_rows);
  // Upper bound present: both paths drop NaN.
  EXPECT_EQ(run(Value::Float64(0.1), Value::Float64(3.0), true).num_rows,
            run(Value::Float64(0.1), Value::Float64(3.0), false).num_rows);
  EXPECT_EQ(run(Value::Float64(0.1), Value::Float64(3.0), true).num_rows, 2u);
}

TEST(ScanPushdownTest, FilteredRowsCountedInStats) {
  Table t = MixedTable(4000);
  ExecContext ctx(nullptr);
  PlainScan scan(&t, {"k"},
                 {{"k", ValueRange{Value::Int32(0), Value::Int32(99)}}});
  scan.EnableRowFilter(true);
  Batch got = CollectAll(&scan, &ctx).ValueOrDie();
  EXPECT_EQ(ctx.stats()->rows_scanned,
            got.num_rows + ctx.stats()->rows_filtered_at_scan);
}

TEST(ScanPushdownTest, BdccScanPushdownMatchesLegacy) {
  Table t = MixedTable(8000);
  Table copy = t.Clone();
  auto dim = binning::CreateRangeDimension("D_K", "T", "k", 0, 999, 6)
                 .ValueOrDie();
  std::vector<DimensionUse> uses(1);
  uses[0].dimension = std::make_shared<const Dimension>(std::move(dim));
  NoFkResolver resolver(&t);
  BdccTable bt =
      BuildBdccTable(std::move(copy), uses, resolver, {}).ValueOrDie();

  auto run = [&](bool row_filter, bool sel_enabled) {
    ExecContext ctx(nullptr);
    ctx.set_sel_enabled(sel_enabled);
    auto scan = std::make_unique<BdccScan>(
        &bt, std::vector<std::string>{"k", "v", "w"}, PlanNaturalScan(bt),
        std::vector<ScanPredicate>{
            {"k", ValueRange{Value::Int32(120), Value::Int32(380)}}});
    scan->EnableRowFilter(row_filter);
    if (row_filter) {
      return CollectAll(scan.get(), &ctx).ValueOrDie();
    }
    Filter filter(std::move(scan),
                  Between(Col("k"), Lit(Value::Int32(120)),
                          Lit(Value::Int32(380))));
    return CollectAll(&filter, &ctx).ValueOrDie();
  };
  Batch legacy = run(false, false);
  Batch sel = run(true, true);
  Batch compact = run(true, false);
  ASSERT_GT(legacy.num_rows, 0u);
  testutil::ExpectBatchesEqual(legacy, sel, "bdcc sel");
  testutil::ExpectBatchesEqual(legacy, compact, "bdcc compact");
}

// ---------------- Filter selection composition ----------------

TEST(FilterSelTest, ComposesWithScanSelection) {
  Table t = MixedTable(6000);
  // Scan keeps k < 500 (densely selected -> sel batches); Filter keeps even
  // w. The two selections must compose.
  ExecContext ctx(nullptr);
  auto scan = std::make_unique<PlainScan>(
      &t, std::vector<std::string>{"k", "w"},
      std::vector<ScanPredicate>{
          {"k", ValueRange{Value::Int32(0), Value::Int32(499)}}});
  scan->EnableRowFilter(true);
  Filter filter(std::move(scan),
                Eq(Sub(Col("w"), Mul(Div(Col("w"), LitI64(2)), LitI64(2))),
                   LitI64(0)));
  Batch got = CollectAll(&filter, &ctx).ValueOrDie();
  uint64_t expect = 0;
  for (uint64_t r = 0; r < t.num_rows(); ++r) {
    if (t.column(0).i32()[r] < 500 && t.column(3).i64()[r] % 2 == 0) ++expect;
  }
  EXPECT_EQ(got.num_rows, expect);
  for (size_t i = 0; i < got.num_rows; ++i) {
    EXPECT_LT(got.columns[0].i32[i], 500);
    EXPECT_EQ(got.columns[1].i64[i] % 2, 0);
  }
}

TEST(FilterSelTest, DensityGateCompactsSparseBatches) {
  Table t = MixedTable(4000);
  ExecContext ctx(nullptr);
  // ~1% selectivity: far below kCompactDensity, so emitted batches must be
  // compacted even with sel enabled.
  auto scan = std::make_unique<PlainScan>(&t, std::vector<std::string>{"k"});
  Filter filter(std::move(scan), Lt(Col("k"), Lit(Value::Int32(10))));
  ASSERT_TRUE(filter.Open(&ctx).ok());
  while (true) {
    Batch b = filter.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    EXPECT_FALSE(b.has_sel());
  }
  filter.Close(&ctx);

  // ~90% selectivity: above the gate, batches carry a selection.
  ExecContext ctx2(nullptr);
  auto scan2 = std::make_unique<PlainScan>(&t, std::vector<std::string>{"k"});
  Filter filter2(std::move(scan2), Lt(Col("k"), Lit(Value::Int32(900))));
  ASSERT_TRUE(filter2.Open(&ctx2).ok());
  bool saw_sel = false;
  while (true) {
    Batch b = filter2.Next(&ctx2).ValueOrDie();
    if (b.empty()) break;
    saw_sel |= b.has_sel();
  }
  filter2.Close(&ctx2);
  EXPECT_TRUE(saw_sel);

  // Legacy mode never emits selections.
  ExecContext ctx3(nullptr);
  ctx3.set_sel_enabled(false);
  auto scan3 = std::make_unique<PlainScan>(&t, std::vector<std::string>{"k"});
  Filter filter3(std::move(scan3), Lt(Col("k"), Lit(Value::Int32(900))));
  ASSERT_TRUE(filter3.Open(&ctx3).ok());
  while (true) {
    Batch b = filter3.Next(&ctx3).ValueOrDie();
    if (b.empty()) break;
    EXPECT_FALSE(b.has_sel());
  }
  filter3.Close(&ctx3);
}

// ---------------- Recycling ----------------

TEST(RecycleTest, ScanReusesReturnedBatches) {
  Table t = MixedTable(10000);
  ExecContext ctx(nullptr);
  PlainScan scan(&t, {"k", "v", "w"});
  ASSERT_TRUE(scan.Open(&ctx).ok());
  uint64_t rows = 0;
  int64_t expect_w = 0;
  while (true) {
    Batch b = scan.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    for (size_t i = 0; i < b.num_rows; ++i) {
      ASSERT_EQ(b.columns[2].i64[i], expect_w++);
    }
    rows += b.num_rows;
    scan.Recycle(std::move(b));
  }
  EXPECT_EQ(rows, t.num_rows());
}

TEST(RecycleTest, TypeMismatchedBatchesAreDropped) {
  Table t = MixedTable(100);
  ExecContext ctx(nullptr);
  PlainScan scan(&t, {"k"});
  ASSERT_TRUE(scan.Open(&ctx).ok());
  Batch wrong;
  wrong.columns.emplace_back(TypeId::kFloat64);
  scan.Recycle(std::move(wrong));  // silently dropped, must not corrupt
  Batch b = scan.Next(&ctx).ValueOrDie();
  EXPECT_EQ(b.columns[0].type, TypeId::kInt32);
}

// ---------------- Sel-aware blocking operators ----------------

// Aggregation and join over sel-carrying inputs must agree with the same
// pipeline in legacy (compact) mode.
TEST(SelAwareOperatorsTest, AggAndJoinAgreeWithCompactMode) {
  Table t = MixedTable(8000);
  auto make_agg = [&](bool sel_enabled) {
    ExecContext ctx(nullptr);
    ctx.set_sel_enabled(sel_enabled);
    auto scan = std::make_unique<PlainScan>(
        &t, std::vector<std::string>{"k", "v", "s"},
        std::vector<ScanPredicate>{
            {"k", ValueRange{Value::Int32(0), Value::Int32(599)}}});
    scan->EnableRowFilter(true);
    HashAgg agg(std::move(scan), {"s"},
                {AggSum(Col("v"), "sv"), AggCountStar("n"),
                 AggMin(Col("k"), "mn"), AggMax(Col("k"), "mx")});
    return CollectAll(&agg, &ctx).ValueOrDie();
  };
  Batch a = make_agg(true);
  Batch b = make_agg(false);
  ASSERT_GT(a.num_rows, 0u);
  testutil::ExpectBatchesEqual(a, b, "agg sel-vs-compact");

  auto make_join = [&](bool sel_enabled) {
    ExecContext ctx(nullptr);
    ctx.set_sel_enabled(sel_enabled);
    auto probe = std::make_unique<PlainScan>(
        &t, std::vector<std::string>{"k", "w"},
        std::vector<ScanPredicate>{
            {"k", ValueRange{Value::Int32(0), Value::Int32(499)}}});
    probe->EnableRowFilter(true);
    auto build = std::make_unique<PlainScan>(
        &t, std::vector<std::string>{"k", "v"},
        std::vector<ScanPredicate>{
            {"k", ValueRange{Value::Int32(300), Value::Int32(799)}}});
    build->EnableRowFilter(true);
    auto build_renamed =
        Project::Rename(std::move(build), {{"k", "bk"}, {"v", "bv"}});
    HashJoin join(std::move(probe), std::move(build_renamed), {"k"}, {"bk"},
                  JoinType::kInner);
    return CollectAll(&join, &ctx).ValueOrDie();
  };
  Batch ja = make_join(true);
  Batch jb = make_join(false);
  ASSERT_GT(ja.num_rows, 0u);
  testutil::ExpectBatchesEqual(ja, jb, "join sel-vs-compact");
}

// String group-by via the dict-code path and packed two-column keys must
// agree with results computed through a reference double-check.
TEST(SelAwareOperatorsTest, StringAndPackedGroupByCorrect) {
  Table t = MixedTable(5000);
  ExecContext ctx(nullptr);
  auto scan = std::make_unique<PlainScan>(
      &t, std::vector<std::string>{"k", "s", "w"});
  HashAgg agg(std::move(scan), {"s"}, {AggCountStar("n")});
  Batch got = CollectAll(&agg, &ctx).ValueOrDie();
  // Reference counts.
  std::map<std::string, int64_t> expect;
  for (uint64_t r = 0; r < t.num_rows(); ++r) {
    expect[std::string(t.column(2).GetString(r))]++;
  }
  ASSERT_EQ(got.num_rows, expect.size());
  for (size_t i = 0; i < got.num_rows; ++i) {
    EXPECT_EQ(got.columns[1].i64[i],
              expect[std::string(got.columns[0].GetString(i))])
        << got.columns[0].GetString(i);
  }

  // Packed (string, i32-bucket) pair.
  ExecContext ctx2(nullptr);
  auto scan2 = std::make_unique<PlainScan>(
      &t, std::vector<std::string>{"k", "s", "w"});
  auto bucketed = std::make_unique<Project>(
      std::move(scan2),
      std::vector<Project::NamedExpr>{
          {"s", Col("s")},
          {"b", Year(LitDate("1995-01-01"))},  // constant i32 column
          {"w", Col("w")}});
  HashAgg agg2(std::move(bucketed), {"s", "b"}, {AggCountStar("n")});
  Batch got2 = CollectAll(&agg2, &ctx2).ValueOrDie();
  EXPECT_EQ(got2.num_rows, expect.size());  // b is constant
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
