// Morsel-driven parallel execution: morsel plans partition the input
// exactly, morsel-restricted scan clones cover every row exactly once, and
// the parallel blocking operators (ParallelHashAgg, ParallelHashJoin,
// ParallelUnion) agree with their single-threaded counterparts.
#include "exec/parallel.h"

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/task_scheduler.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/morsel.h"
#include "exec/scan.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

Table MakeTable(uint64_t rows, uint32_t zone_rows) {
  Rng rng(11);
  Table t("T");
  Column k(TypeId::kInt32), g(TypeId::kInt32), v(TypeId::kFloat64);
  for (uint64_t i = 0; i < rows; ++i) {
    k.AppendInt32(static_cast<int32_t>(i));
    g.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 9)));
    v.AppendFloat64(rng.NextDouble());
  }
  t.AddColumn("k", std::move(k)).AbortIfNotOK();
  t.AddColumn("g", std::move(g)).AbortIfNotOK();
  t.AddColumn("v", std::move(v)).AbortIfNotOK();
  if (zone_rows > 0) t.BuildZoneMaps(zone_rows);
  return t;
}

TEST(MorselTest, RowMorselsPartitionAndAlign) {
  std::vector<Morsel> morsels = MakeRowMorsels(10240, 100, 1000);
  ASSERT_FALSE(morsels.empty());
  uint64_t expect_begin = 0;
  for (const Morsel& m : morsels) {
    EXPECT_EQ(m.begin, expect_begin);
    EXPECT_GT(m.end, m.begin);
    EXPECT_EQ(m.begin % 100, 0u);  // zone aligned
    expect_begin = m.end;
  }
  EXPECT_EQ(morsels.back().end, 10240u);
}

TEST(MorselTest, RangeMorselsNeverSplitARange) {
  std::vector<GroupRange> ranges;
  for (uint64_t i = 0; i < 57; ++i) {
    ranges.push_back(GroupRange{i, i * 100, i * 100 + 100, 0});
  }
  std::vector<Morsel> morsels = MakeRangeMorsels(ranges, 1000);
  uint64_t expect = 0;
  for (const Morsel& m : morsels) {
    EXPECT_EQ(m.begin, expect);
    expect = m.end;
  }
  EXPECT_EQ(expect, ranges.size());
}

// Three strided scan clones over one morsel plan must emit each row exactly
// once in total.
TEST(MorselTest, StridedPlainScanClonesCoverAllRowsOnce) {
  Table t = MakeTable(5000, 128);
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(t.num_rows(), 128, 512));
  ASSERT_GE(morsels->size(), 3u);
  std::vector<int> seen(t.num_rows(), 0);
  for (size_t clone = 0; clone < 3; ++clone) {
    ExecContext ctx(nullptr);
    PlainScan scan(&t, {"k"});
    scan.RestrictToMorsels(MorselSet{morsels, clone, 3});
    ASSERT_TRUE(scan.Open(&ctx).ok());
    while (true) {
      Batch b = scan.Next(&ctx).ValueOrDie();
      if (b.empty()) break;
      for (size_t i = 0; i < b.num_rows; ++i) ++seen[b.columns[0].i32[i]];
    }
  }
  for (uint64_t r = 0; r < t.num_rows(); ++r) {
    ASSERT_EQ(seen[r], 1) << "row " << r;
  }
}

ChainFactory ScanFactory(const Table* t,
                         std::shared_ptr<const std::vector<Morsel>> morsels,
                         std::vector<std::string> cols) {
  return [t, morsels, cols](size_t i,
                            size_t n) -> Result<OperatorPtr> {
    auto scan = std::make_unique<PlainScan>(t, cols);
    scan->RestrictToMorsels(MorselSet{morsels, i, n});
    return OperatorPtr(std::move(scan));
  };
}

TEST(ParallelHashAggTest, MatchesSerialGroupedAggregate) {
  Table t = MakeTable(20000, 256);
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(t.num_rows(), 256, 1024));
  std::vector<AggSpec> specs;
  specs.push_back(AggSum(Col("k"), "sum_k"));
  specs.push_back(AggAvg(Col("v"), "avg_v"));
  specs.push_back(AggCountStar("n"));
  specs.push_back(AggMin(Col("k"), "min_k"));
  specs.push_back(AggMax(Col("k"), "max_k"));
  specs.push_back(AggCountDistinct(Col("g"), "dist_g"));

  ExecContext serial_ctx(nullptr);
  HashAgg serial(std::make_unique<PlainScan>(
                     &t, std::vector<std::string>{"k", "g", "v"}),
                 {"g"}, specs);
  Batch expect = CollectAll(&serial, &serial_ctx).ValueOrDie();

  common::TaskScheduler scheduler(3);
  ExecContext ctx(nullptr);
  ParallelHashAgg parallel(ScanFactory(&t, morsels, {"k", "g", "v"}), 4,
                           {"g"}, specs, &scheduler);
  Batch got = CollectAll(&parallel, &ctx).ValueOrDie();
  testutil::ExpectBatchesEqual(expect, got, "parallel grouped agg");
  EXPECT_EQ(ctx.stats()->rows_scanned, t.num_rows());
}

TEST(ParallelHashAggTest, MatchesSerialScalarAggregate) {
  Table t = MakeTable(20000, 256);
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(t.num_rows(), 256, 1024));
  std::vector<AggSpec> specs;
  specs.push_back(AggSum(Col("v"), "sum_v"));
  specs.push_back(AggCountStar("n"));

  ExecContext serial_ctx(nullptr);
  HashAgg serial(
      std::make_unique<PlainScan>(&t, std::vector<std::string>{"v"}), {},
      specs);
  Batch expect = CollectAll(&serial, &serial_ctx).ValueOrDie();

  common::TaskScheduler scheduler(3);
  ExecContext ctx(nullptr);
  ParallelHashAgg parallel(ScanFactory(&t, morsels, {"v"}), 4, {}, specs,
                           &scheduler);
  Batch got = CollectAll(&parallel, &ctx).ValueOrDie();
  ASSERT_EQ(got.num_rows, 1u);
  testutil::ExpectBatchesEqual(expect, got, "parallel scalar agg");
}

// Enough groups to cross kMinPartitionedMergeGroups: the radix-partitioned
// parallel merge must agree with the serial aggregate (and with itself
// across runs, bitwise, for the float sums).
TEST(ParallelHashAggTest, PartitionedMergeMatchesSerialManyGroups) {
  Rng rng(23);
  Table t("T");
  {
    Column g(TypeId::kInt32), v(TypeId::kFloat64);
    for (uint64_t i = 0; i < 60000; ++i) {
      g.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 19999)));
      v.AppendFloat64(rng.NextDouble());
    }
    t.AddColumn("g", std::move(g)).AbortIfNotOK();
    t.AddColumn("v", std::move(v)).AbortIfNotOK();
  }
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(t.num_rows(), 0, 1024));
  std::vector<AggSpec> specs;
  specs.push_back(AggSum(Col("v"), "sum_v"));
  specs.push_back(AggCountStar("n"));
  specs.push_back(AggMax(Col("v"), "max_v"));

  ExecContext serial_ctx(nullptr);
  HashAgg serial(std::make_unique<PlainScan>(
                     &t, std::vector<std::string>{"g", "v"}),
                 {"g"}, specs);
  Batch expect = CollectAll(&serial, &serial_ctx).ValueOrDie();
  ASSERT_GT(expect.num_rows, ParallelHashAgg::kMinPartitionedMergeGroups);

  common::TaskScheduler scheduler(3);
  double first_sum = 0;
  for (int run = 0; run < 2; ++run) {
    ExecContext ctx(nullptr);
    ParallelHashAgg parallel(ScanFactory(&t, morsels, {"g", "v"}), 4, {"g"},
                             specs, &scheduler);
    Batch got = CollectAll(&parallel, &ctx).ValueOrDie();
    testutil::ExpectBatchesEqual(expect, got, "partitioned merge agg");
    double sum = 0;
    for (size_t i = 0; i < got.num_rows; ++i) sum += got.columns[1].f64[i];
    if (run == 0) {
      first_sum = sum;
    } else {
      EXPECT_EQ(first_sum, sum);  // bitwise deterministic across runs
    }
  }
}

// Deterministic: two runs with the same clone count produce bitwise-equal
// float sums (strided morsel assignment + ordered merge).
TEST(ParallelHashAggTest, DeterministicAcrossRuns) {
  Table t = MakeTable(20000, 256);
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(t.num_rows(), 256, 1024));
  std::vector<AggSpec> specs;
  specs.push_back(AggSum(Col("v"), "sum_v"));
  common::TaskScheduler scheduler(3);
  double first = 0;
  for (int run = 0; run < 3; ++run) {
    ExecContext ctx(nullptr);
    ParallelHashAgg agg(ScanFactory(&t, morsels, {"g", "v"}), 4, {"g"}, specs,
                        &scheduler);
    Batch out = CollectAll(&agg, &ctx).ValueOrDie();
    double sum = 0;
    for (size_t i = 0; i < out.num_rows; ++i) sum += out.columns[1].f64[i];
    if (run == 0) {
      first = sum;
    } else {
      EXPECT_EQ(first, sum);  // bitwise equality
    }
  }
}

TEST(ParallelHashJoinTest, MatchesSerialJoin) {
  Table probe = MakeTable(20000, 256);
  Table build("B");
  {
    Column bk(TypeId::kInt32), bv(TypeId::kInt64);
    for (int32_t i = 0; i < 10; i += 2) {  // even groups only
      bk.AppendInt32(i);
      bv.AppendInt64(i * 100);
    }
    build.AddColumn("bk", std::move(bk)).AbortIfNotOK();
    build.AddColumn("bv", std::move(bv)).AbortIfNotOK();
  }
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(probe.num_rows(), 256, 1024));
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    ExecContext serial_ctx(nullptr);
    HashJoin serial(
        std::make_unique<PlainScan>(&probe,
                                    std::vector<std::string>{"k", "g"}),
        std::make_unique<PlainScan>(&build,
                                    std::vector<std::string>{"bk", "bv"}),
        {"g"}, {"bk"}, type);
    Batch expect = CollectAll(&serial, &serial_ctx).ValueOrDie();

    common::TaskScheduler scheduler(3);
    ExecContext ctx(nullptr);
    ParallelHashJoin parallel(
        ScanFactory(&probe, morsels, {"k", "g"}), 4,
        std::make_unique<PlainScan>(&build,
                                    std::vector<std::string>{"bk", "bv"}),
        {"g"}, {"bk"}, type, &scheduler);
    Batch got = CollectAll(&parallel, &ctx).ValueOrDie();
    testutil::ExpectBatchesEqual(
        expect, got,
        std::string("parallel hash join ") + JoinTypeName(type));
  }
}

TEST(ParallelUnionTest, ConcatenatesChunkOutputsInOrder) {
  Table t = MakeTable(5000, 128);
  auto morsels = std::make_shared<const std::vector<Morsel>>(
      MakeRowMorsels(t.num_rows(), 128, 512));
  common::TaskScheduler scheduler(3);
  ExecContext ctx(nullptr);
  ParallelUnion u(ScanFactory(&t, morsels, {"k"}), 4, &scheduler);
  Batch all = CollectAll(&u, &ctx).ValueOrDie();
  EXPECT_EQ(all.num_rows, t.num_rows());
  // Chunk order: clone 0's first batch starts at row 0.
  EXPECT_EQ(all.columns[0].i32[0], 0);
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
