#include "exec/hash_table.h"

#include "gtest/gtest.h"

namespace bdcc {
namespace exec {
namespace {

Batch MakeBatch() {
  Batch b;
  ColumnVector i(TypeId::kInt32);
  i.i32 = {7, 7, 9};
  ColumnVector l(TypeId::kInt64);
  l.i64 = {100, 200, 100};
  ColumnVector s(TypeId::kString);
  s.dict = std::make_shared<Dictionary>();
  for (const char* v : {"x", "y", "x"}) s.i32.push_back(s.dict->GetOrAdd(v));
  ColumnVector f(TypeId::kFloat64);
  f.f64 = {1.0, 2.0, 1.0};
  b.columns = {std::move(i), std::move(l), std::move(s), std::move(f)};
  b.num_rows = 3;
  return b;
}

Schema MakeSchema() {
  return Schema({{"i", TypeId::kInt32},
                 {"l", TypeId::kInt64},
                 {"s", TypeId::kString},
                 {"f", TypeId::kFloat64}});
}

TEST(KeyEncoderTest, IntFastPath) {
  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(MakeSchema(), {"i"}).ok());
  EXPECT_TRUE(enc.int_path());
  std::vector<int64_t> keys;
  std::vector<uint8_t> valid;
  Batch b = MakeBatch();
  enc.EncodeInts(b, &keys, &valid);
  EXPECT_EQ(keys, (std::vector<int64_t>{7, 7, 9}));
  EXPECT_EQ(valid, (std::vector<uint8_t>{1, 1, 1}));
}

TEST(KeyEncoderTest, BytesPathForStringsFloatsComposite) {
  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(MakeSchema(), {"s"}).ok());
  EXPECT_FALSE(enc.int_path());
  KeyEncoder enc2;
  ASSERT_TRUE(enc2.Bind(MakeSchema(), {"f"}).ok());
  EXPECT_FALSE(enc2.int_path());
  KeyEncoder enc3;
  ASSERT_TRUE(enc3.Bind(MakeSchema(), {"i", "l"}).ok());
  EXPECT_FALSE(enc3.int_path());

  std::vector<std::string> keys;
  std::vector<uint8_t> valid;
  Batch b = MakeBatch();
  enc3.EncodeBytes(b, &keys, &valid);
  EXPECT_EQ(keys[0].size(), 12u);  // 4 + 8 bytes
  EXPECT_NE(keys[0], keys[1]);     // (7,100) vs (7,200)
  EXPECT_NE(keys[0], keys[2]);     // (7,100) vs (9,100)

  // String keys compare by content, not code.
  enc.EncodeBytes(b, &keys, &valid);
  EXPECT_EQ(keys[0], keys[2]);  // both "x"
  EXPECT_NE(keys[0], keys[1]);
}

TEST(KeyEncoderTest, NullKeysFlaggedInvalid) {
  Batch b = MakeBatch();
  b.columns[0].nulls = {0, 1, 0};
  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(MakeSchema(), {"i"}).ok());
  std::vector<int64_t> keys;
  std::vector<uint8_t> valid;
  enc.EncodeInts(b, &keys, &valid);
  EXPECT_EQ(valid, (std::vector<uint8_t>{1, 0, 1}));
  KeyEncoder enc2;
  ASSERT_TRUE(enc2.Bind(MakeSchema(), {"i", "l"}).ok());
  std::vector<std::string> bkeys;
  enc2.EncodeBytes(b, &bkeys, &valid);
  EXPECT_EQ(valid[1], 0);
}

TEST(KeyEncoderTest, MissingColumnFailsBind) {
  KeyEncoder enc;
  EXPECT_FALSE(enc.Bind(MakeSchema(), {"nope"}).ok());
}

TEST(DenseKeyMapTest, DenseIdsInsertionOrder) {
  DenseKeyMap map;
  map.SetIntMode(true);
  bool inserted;
  EXPECT_EQ(map.FindOrInsert(100, &inserted), 0);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.FindOrInsert(-5, &inserted), 1);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.FindOrInsert(100, &inserted), 0);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(map.Find(-5), 1);
  EXPECT_EQ(map.Find(42), -1);
  EXPECT_EQ(map.size(), 2u);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
}

TEST(DenseKeyMapTest, BytesMode) {
  DenseKeyMap map;
  map.SetIntMode(false);
  bool inserted;
  EXPECT_EQ(map.FindOrInsert(std::string("abc"), &inserted), 0);
  EXPECT_EQ(map.FindOrInsert(std::string("def"), &inserted), 1);
  EXPECT_EQ(map.Find(std::string("abc")), 0);
  EXPECT_GT(map.MemoryBytes(), 0u);
}

TEST(JoinHashTableTest, ChainsDuplicates) {
  JoinHashTable table;
  ASSERT_TRUE(table.Init(MakeSchema(), {"i"}).ok());
  ASSERT_TRUE(table.AddBatch(MakeBatch()).ok());
  ASSERT_TRUE(table.AddBatch(MakeBatch()).ok());
  EXPECT_EQ(table.num_rows(), 6u);
  int matches_7 = 0, matches_9 = 0;
  table.ForEachMatch(int64_t{7}, [&](uint32_t) { ++matches_7; });
  table.ForEachMatch(int64_t{9}, [&](uint32_t) { ++matches_9; });
  EXPECT_EQ(matches_7, 4);
  EXPECT_EQ(matches_9, 2);
  EXPECT_TRUE(table.HasMatch(int64_t{7}));
  EXPECT_FALSE(table.HasMatch(int64_t{8}));
  EXPECT_GT(table.MemoryBytes(), 0u);
  table.Clear();
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_FALSE(table.HasMatch(int64_t{7}));
}

TEST(JoinHashTableTest, MaterializedColumnsPreserveValues) {
  JoinHashTable table;
  ASSERT_TRUE(table.Init(MakeSchema(), {"i"}).ok());
  ASSERT_TRUE(table.AddBatch(MakeBatch()).ok());
  table.ForEachMatch(int64_t{9}, [&](uint32_t row) {
    EXPECT_EQ(table.columns()[1].i64[row], 100);
    EXPECT_EQ(table.columns()[2].GetString(row), "x");
    EXPECT_DOUBLE_EQ(table.columns()[3].f64[row], 1.0);
  });
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
